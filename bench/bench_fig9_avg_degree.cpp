// Fig. 9: speedup over the single-GPU runtime as the average degree grows —
// the §6.4 BTER study. Arxiv-shaped synthetic graphs with the average
// degree scaled 1x..128x, 512 features, 40 classes, DGX-V100.
//
// Paper landmark: super-linear speedup appears for 2 and 4 GPUs from ~32x
// scaling and for 8 GPUs from ~64x — denser adjacency means the gather
// working set dominates, and narrower per-GPU tiles fit the L2 (the
// "blocking effect of partitioning").
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 9 reproduction: average-degree scaling study");
  cli.option("degrees", "1,2,4,8,16,32,64,128", "degree scale factors");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.option("scale", "16", "replica scale");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Fig. 9",
      "speedup w.r.t. 1-GPU MG-GCN on BTER-scaled Arxiv (512 features), "
      "DGX-V100");

  const auto gpu_list = cli.get_int_list("gpus");
  std::vector<std::string> header = {"Degree scale", "avg deg", "1 GPU(s)"};
  for (std::size_t i = 1; i < gpu_list.size(); ++i) {
    header.push_back(std::to_string(gpu_list[i]) + " GPUs speedup");
  }
  util::Table table(std::move(header));

  for (const auto deg : cli.get_int_list("degrees")) {
    const graph::DatasetSpec spec =
        graph::scaled_arxiv_spec(static_cast<double>(deg));
    const graph::Dataset ds =
        bench::load_replica(spec, cli.get_double("scale"));
    const sim::MachineProfile profile = sim::dgx_v100();

    std::vector<double> seconds;
    for (const auto gpus : gpu_list) {
      const auto r = bench::run_epoch(bench::System::kMgGcn, profile,
                                      static_cast<int>(gpus), ds,
                                      core::model_hidden512());
      seconds.push_back(r.oom ? -1.0 : r.seconds);
    }

    std::vector<std::string> row = {
        std::to_string(deg) + "x",
        util::format_double(static_cast<double>(ds.nnz()) /
                                static_cast<double>(ds.n()),
                            1),
        seconds[0] > 0 ? util::format_double(seconds[0], 4) : "OOM"};
    for (std::size_t i = 1; i < gpu_list.size(); ++i) {
      row.push_back(seconds[i] > 0 && seconds[0] > 0
                        ? util::format_speedup(seconds[0] / seconds[i])
                        : "OOM");
    }
    table.add_row(std::move(row));
  }

  std::cout << table.to_string()
            << "\n(speedup > #GPUs = super-linear, the paper's §6.4 "
               "cache-blocking effect)\n";
  return 0;
}
