// Fig. 6: timeline of one distributed SpMM on Products with 4 GPUs, under
// the original (community/degree-skewed) vertex ordering and the §5.2
// random permutation. The original ordering shows per-stage computational
// imbalance (stragglers delay every broadcast); permutation evens the
// stage lengths.
//
// Paper landmark: on Products/4 GPUs, permutation cuts the SpMM from ~50 ms
// to ~38 ms (no overlap in this figure).
#include <iostream>

#include "bench/common.hpp"
#include "core/part_mode.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

void print_stage_table(const bench::SpmmTimeline& t) {
  std::vector<std::string> header = {"GPU"};
  const auto stages = t.stage_seconds.empty() ? 0 : t.stage_seconds[0].size();
  for (std::size_t s = 0; s < stages; ++s) {
    header.push_back("s" + std::to_string(s) + " comm");
    header.push_back("s" + std::to_string(s) + " comp");
  }
  util::Table table(std::move(header));
  for (std::size_t g = 0; g < t.stage_seconds.size(); ++g) {
    std::vector<std::string> row = {std::to_string(g)};
    for (const auto& [comm, comp] : t.stage_seconds[g]) {
      row.push_back(util::format_seconds(comm));
      row.push_back(util::format_seconds(comp));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 6 reproduction: SpMM timeline, original vs "
                      "permuted ordering");
  cli.option("dataset", "Products", "dataset name");
  cli.option("gpus", "4", "GPU count");
  cli.option("d", "512", "dense width of the SpMM");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.option("part", "",
             "extra partitioner mode to draw a third timeline for "
             "(random|balanced|locality|hier|auto; empty = none)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const graph::DatasetSpec spec = graph::dataset_by_name(cli.get("dataset"));
  const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                   : bench::default_scale(spec);
  const graph::Dataset ds = bench::load_replica(spec, scale);
  const sim::MachineProfile profile = sim::dgx_v100();
  const int gpus = static_cast<int>(cli.get_int("gpus"));
  const auto d = cli.get_int("d");

  bench::print_header(
      "Fig. 6", "staged-SpMM timeline, original vs permuted ordering", spec,
      ds.scale);

  const bench::SpmmTimeline original = bench::run_spmm_timeline(
      ds, profile, gpus, d, /*permute=*/false, /*overlap=*/false);
  const bench::SpmmTimeline permuted = bench::run_spmm_timeline(
      ds, profile, gpus, d, /*permute=*/true, /*overlap=*/false);

  std::cout << "Original ordering — total "
            << util::format_seconds(original.total_seconds) << ":\n";
  print_stage_table(original);
  std::cout << original.gantt << '\n';

  std::cout << "Permuted ordering — total "
            << util::format_seconds(permuted.total_seconds) << ":\n";
  print_stage_table(permuted);
  std::cout << permuted.gantt << '\n';

  std::cout << "permutation speedup: "
            << util::format_speedup(original.total_seconds /
                                    permuted.total_seconds)
            << " (paper: 50 ms -> 38 ms on Products / 4 GPUs)\n";

  if (!cli.get("part").empty()) {
    const auto mode = core::parse_part_mode(cli.get("part"));
    if (!mode.has_value()) {
      std::cerr << "unknown --part mode: " << cli.get("part") << '\n';
      return 1;
    }
    const bench::SpmmTimeline partitioned = bench::run_spmm_timeline(
        ds, profile, gpus, d, /*permute=*/true, /*overlap=*/false,
        /*seed=*/1, *mode);
    std::cout << "\n" << core::part_mode_name(*mode)
              << " partitioner — total "
              << util::format_seconds(partitioned.total_seconds) << ":\n";
    print_stage_table(partitioned);
    std::cout << partitioned.gantt << '\n'
              << core::part_mode_name(*mode) << " vs permuted: "
              << util::format_speedup(permuted.total_seconds /
                                      partitioned.total_seconds)
              << " (locality trades the permutation's perfect balance for "
                 "a smaller cut: it pays off with MGGCN_COMM=compact and "
                 "multi-node fabrics, not under single-node dense "
                 "broadcasts)\n";
  }
  return 0;
}
