// google-benchmark microbenchmarks of the host compute kernels that stand in
// for cuSPARSE/cuBLAS: CSR SpMM, the three GeMM variants, the fused masked
// input-gradient GeMM, and the elementwise/optimizer kernels. These measure
// the *real* host implementations (the ones the correctness tests train
// with), not the simulated-time model.
//
// The policy-dispatched kernels are registered once per KernelPolicy
// (".../naive/...", ".../tiled/...", and for SpMM ".../planned/...") and
// swept over feature dimensions d in {32, 128, 512}, each reporting a
// flops_per_s counter — the stable unit scripts/check_perf.py gates CI perf
// regressions on. The GeMM benches stay {naive, tiled}: the planned policy
// shares the tiled dense kernels, so planned rows would be duplicates.
// Planned SpMM rows additionally report plan_build_s (the one-time
// inspector cost), and SpmmAmortized rows measure one inspection plus a
// burst of executions — the shape a training run actually sees. SpmmSkew
// rows use a heavy-tailed (lognormal sigma = 2) degree distribution, the
// regime the degree-binned executors are built for. Emit JSON with
//   bench_kernels --benchmark_format=json --benchmark_out=kernels.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "core/gcn_kernels.hpp"
#include "dense/kernel_policy.hpp"
#include "dense/kernels.hpp"
#include "graph/generators.hpp"
#include "sparse/sddmm.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/rng.hpp"

using namespace mggcn;

namespace {

constexpr std::int64_t kFeatureSweep[] = {32, 128, 512};
constexpr dense::KernelPolicy kPolicies[] = {dense::KernelPolicy::kNaive,
                                             dense::KernelPolicy::kTiled};
constexpr dense::KernelPolicy kSpmmPolicies[] = {dense::KernelPolicy::kNaive,
                                                 dense::KernelPolicy::kTiled,
                                                 dense::KernelPolicy::kPlanned};

sparse::Csr random_graph(std::int64_t n, double degree,
                         double degree_sigma = 1.0) {
  util::Rng rng(7);
  graph::BterParams params;
  params.n = n;
  params.avg_degree = degree;
  params.degree_sigma = degree_sigma;
  return sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
}

dense::HostMatrix random_matrix(std::int64_t rows, std::int64_t cols) {
  util::Rng rng(11);
  dense::HostMatrix m(rows, cols);
  m.init_gaussian(rng);
  return m;
}

/// Reports total floating-point throughput as the counter the CI perf gate
/// keys on (rendered as GFLOP/s by the console reporter).
void set_flops_counter(benchmark::State& state, double flops_per_iteration) {
  state.counters["flops_per_s"] = benchmark::Counter(
      flops_per_iteration, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void bm_spmm(benchmark::State& state, dense::KernelPolicy policy,
             std::int64_t n, std::int64_t d, double degree_sigma) {
  dense::ScopedKernelPolicy scope(policy);
  const sparse::Csr a = random_graph(n, 16.0, degree_sigma);
  const dense::HostMatrix b = random_matrix(n, d);
  dense::HostMatrix c(n, d);
  if (policy == dense::KernelPolicy::kPlanned) {
    // Measure the one-time inspector cost explicitly, then pre-warm the
    // process-wide plan cache so the timed loop sees the steady state a
    // training run sees (plan hit on every call).
    const auto t0 = std::chrono::steady_clock::now();
    const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(plan.nnz());
    state.counters["plan_build_s"] =
        std::chrono::duration<double>(t1 - t0).count();
    sparse::spmm(a, b.view(), c.view());
  }
  for (auto _ : state) {
    sparse::spmm(a, b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * d);
  set_flops_counter(state, 2.0 * static_cast<double>(a.nnz() * d));
}

void bm_spmm_amortized(benchmark::State& state, std::int64_t n,
                       std::int64_t d) {
  // The shape a training run sees: one inspection amortized over a burst of
  // executions of the same tile (2 * L * P^2 launches per epoch in the
  // distributed trainer). flops_per_s here is the *amortized* per-call
  // throughput, inspector included.
  constexpr int kExecsPerPlan = 32;
  const sparse::Csr a = random_graph(n, 16.0);
  const dense::HostMatrix b = random_matrix(n, d);
  dense::HostMatrix c(n, d);
  for (auto _ : state) {
    const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
    for (int i = 0; i < kExecsPerPlan; ++i) {
      plan.execute(a, b.view(), c.view(), 1.0f, 0.0f);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kExecsPerPlan * a.nnz() * d);
  set_flops_counter(
      state, 2.0 * static_cast<double>(kExecsPerPlan) *
                 static_cast<double>(a.nnz() * d));
}

void bm_gemm(benchmark::State& state, dense::KernelPolicy policy,
             std::int64_t m, std::int64_t d) {
  dense::ScopedKernelPolicy scope(policy);
  const dense::HostMatrix a = random_matrix(m, d);
  const dense::HostMatrix b = random_matrix(d, d);
  dense::HostMatrix c(m, d);
  for (auto _ : state) {
    dense::gemm(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * d * d);
  set_flops_counter(state, 2.0 * static_cast<double>(m * d * d));
}

void bm_gemm_at_b(benchmark::State& state, dense::KernelPolicy policy,
                  std::int64_t m, std::int64_t d) {
  dense::ScopedKernelPolicy scope(policy);
  const dense::HostMatrix a = random_matrix(m, d);
  const dense::HostMatrix b = random_matrix(m, d);
  dense::HostMatrix c(d, d);
  for (auto _ : state) {
    dense::gemm_at_b(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  set_flops_counter(state, 2.0 * static_cast<double>(m * d * d));
}

void bm_gemm_a_bt_masked(benchmark::State& state, dense::KernelPolicy policy,
                         std::int64_t m, std::int64_t d) {
  dense::ScopedKernelPolicy scope(policy);
  const dense::HostMatrix a = random_matrix(m, d);
  const dense::HostMatrix w = random_matrix(d, d);
  const dense::HostMatrix activation = random_matrix(m, d);
  dense::HostMatrix c(m, d);
  for (auto _ : state) {
    state.PauseTiming();
    c = activation;  // the mask is consumed in place each iteration
    state.ResumeTiming();
    dense::gemm_a_bt_relu_masked(a.view(), w.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  set_flops_counter(state, 2.0 * static_cast<double>(m * d * d));
}

void register_policy_benchmarks() {
  for (const auto policy : kSpmmPolicies) {
    const std::string tag = dense::kernel_policy_name(policy);
    for (const std::int64_t d : kFeatureSweep) {
      for (const std::int64_t n : {4096, 16384}) {
        benchmark::RegisterBenchmark(
            ("Spmm/" + tag + "/n:" + std::to_string(n) +
             "/d:" + std::to_string(d))
                .c_str(),
            bm_spmm, policy, n, d, /*degree_sigma=*/1.0);
      }
      // The heavy-tailed case (hub rows next to near-empty ones) only at
      // the large size: this is the distribution the planned policy's
      // degree bins target, and what the CI skew gate keys on.
      benchmark::RegisterBenchmark(
          ("SpmmSkew/" + tag + "/n:16384/d:" + std::to_string(d)).c_str(),
          bm_spmm, policy, 16384, d, /*degree_sigma=*/2.0);
    }
  }
  for (const std::int64_t d : kFeatureSweep) {
    benchmark::RegisterBenchmark(
        ("SpmmAmortized/planned/n:16384/d:" + std::to_string(d)).c_str(),
        bm_spmm_amortized, 16384, d);
  }
  for (const auto policy : kPolicies) {
    const std::string tag = dense::kernel_policy_name(policy);
    for (const std::int64_t d : kFeatureSweep) {
      benchmark::RegisterBenchmark(
          ("Gemm/" + tag + "/m:2048/d:" + std::to_string(d)).c_str(), bm_gemm,
          policy, 2048, d);
      benchmark::RegisterBenchmark(
          ("GemmAtB/" + tag + "/m:2048/d:" + std::to_string(d)).c_str(),
          bm_gemm_at_b, policy, 2048, d);
      benchmark::RegisterBenchmark(
          ("GemmABtMasked/" + tag + "/m:2048/d:" + std::to_string(d)).c_str(),
          bm_gemm_a_bt_masked, policy, 2048, d);
    }
  }
}

// --- policy-independent kernels (sparse attention, elementwise, optimizer) --

void BM_Sddmm(benchmark::State& state) {
  const auto n = state.range(0);
  const auto d = state.range(1);
  const sparse::Csr pattern = random_graph(n, 16.0);
  const dense::HostMatrix u = random_matrix(n, d);
  const dense::HostMatrix v = random_matrix(n, d);
  for (auto _ : state) {
    sparse::Csr out = sparse::sddmm(pattern, u.view(), v.view());
    benchmark::DoNotOptimize(out.values().data());
  }
  state.SetItemsProcessed(state.iterations() * pattern.nnz() * d);
  set_flops_counter(state, 2.0 * static_cast<double>(pattern.nnz() * d));
}
BENCHMARK(BM_Sddmm)->Args({4096, 32})->Args({4096, 128});

void BM_EdgeSoftmax(benchmark::State& state) {
  const auto n = state.range(0);
  sparse::Csr m = random_graph(n, 16.0);
  for (auto _ : state) {
    sparse::edge_softmax(m);
    benchmark::DoNotOptimize(m.values().data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_EdgeSoftmax)->Arg(4096)->Arg(16384);

void BM_ReluForward(benchmark::State& state) {
  const auto n = state.range(0);
  dense::HostMatrix x = random_matrix(n, 64);
  for (auto _ : state) {
    dense::relu_forward(x.data(), x.data(), x.size());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() * x.size() * 8);
}
BENCHMARK(BM_ReluForward)->Arg(1 << 14)->Arg(1 << 17);

void BM_SoftmaxXent(benchmark::State& state) {
  const auto n = state.range(0);
  const std::int64_t classes = 40;
  util::Rng rng(3);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(40));
  const dense::HostMatrix base = random_matrix(n, classes);
  dense::HostMatrix logits(n, classes);
  for (auto _ : state) {
    state.PauseTiming();
    logits = base;
    state.ResumeTiming();
    auto r = core::softmax_cross_entropy_inplace(logits.view(), labels.data(),
                                                 nullptr, n);
    benchmark::DoNotOptimize(r.loss_sum);
  }
}
BENCHMARK(BM_SoftmaxXent)->Arg(4096)->Arg(16384);

void BM_Adam(benchmark::State& state) {
  const auto n = state.range(0);
  dense::HostMatrix w = random_matrix(n, 1);
  dense::HostMatrix g = random_matrix(n, 1);
  dense::HostMatrix m(n, 1), v(n, 1);
  int step = 0;
  for (auto _ : state) {
    core::adam_update(w.data(), g.data(), m.data(), v.data(), n, ++step,
                      1e-2, 0.9, 0.999, 1e-8);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Adam)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  register_policy_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
