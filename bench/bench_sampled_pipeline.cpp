// Sampled-pipeline sweep: the pipelined distributed mini-batch engine vs
// the serialized baseline, and the frequency-aware feature cache across
// capacity fractions.
//
// For each dataset replica and device count the bench measures one warm
// steady-state epoch (phantom mode; the first epoch absorbs cold-cache
// admissions) for:
//
//   - the serialized engine, cache off   (the DistDGL-style baseline);
//   - the pipelined engine, cache off    (overlap win in isolation);
//   - the pipelined engine with the static (degree) and freq (LFU) caches
//     at each requested capacity fraction;
//   - the pipelined engine under MGGCN_CACHE=auto pricing.
//
// scripts/check_perf.py --cache gates the --json output: the pipelined
// engine must beat the serialized baseline by the locked factor on >= 4
// devices, auto must never lose to off, and the freq hit rate must be
// monotone in capacity.
#include <iostream>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "core/sampled_pipeline.hpp"
#include "core/trainer.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

struct RunResult {
  double seconds = 0.0;
  double hit_rate = 0.0;
  std::uint64_t wire_bytes = 0;
  double occupancy = 0.0;
  std::string resolved_mode;
  core::EpochStats stats;
};

RunResult run_config(const graph::Dataset& ds,
                     const sim::MachineProfile& profile, int gpus,
                     core::SampledPipeline::Options options) {
  const std::vector<std::int64_t> dims = [&] {
    std::vector<std::int64_t> d;
    d.push_back(ds.spec.feature_dim);
    d.insert(d.end(), options.hidden_dims.begin(), options.hidden_dims.end());
    d.push_back(ds.spec.num_classes);
    return d;
  }();
  const std::uint64_t invariant = core::replicated_state_bytes(dims);
  sim::Machine machine(sim::scale_profile(profile, ds.scale, invariant),
                       gpus, sim::ExecutionMode::kPhantom);
  core::SampledPipeline pipeline(machine, ds, options);

  pipeline.train_epoch();  // cold epoch: prefill + admission churn
  const core::EpochStats stats = pipeline.train_epoch();

  RunResult result;
  const double x = ds.extrapolation();
  result.seconds = stats.sim_seconds * x;
  result.hit_rate = stats.cache_hit_rate;
  result.wire_bytes = static_cast<std::uint64_t>(
      static_cast<double>(stats.comm_wire_bytes) * x);
  result.occupancy = stats.pipe_occupancy;
  result.resolved_mode = core::cache_mode_name(pipeline.resolved_cache_mode());
  result.stats = stats;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Sampled pipeline: stage overlap and feature-cache capacity sweep");
  bench::add_dataset_options(cli, "Arxiv,Products");
  cli.option("gpus", "4,8", "device counts");
  cli.option("fanout", "10,10", "per-hop fanout (also fixes model depth)");
  cli.option("batch", "256", "seeds per device per round");
  cli.option("hidden", "64", "hidden width");
  cli.option("caps", "0.01,0.05,0.1", "cache capacity fractions");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "sampled pipeline",
      "pipelined mini-batch engine vs serialized + feature-cache sweep, "
      "fanout " + cli.get("fanout") + ", batch " + cli.get("batch") +
      "/device, DGX-V100");

  core::SampledPipeline::Options base;
  base.fanout = cli.get_int_list("fanout");
  base.hidden_dims.assign(base.fanout.size() - 1, cli.get_int("hidden"));
  base.batch_size = cli.get_int("batch");
  base.seed = 7;

  const std::vector<std::string> caps = cli.get_list("caps");
  util::Table table({"Dataset", "GPUs", "engine", "cache", "cap", "epoch(s)",
                     "vs serial", "hit rate", "wire GB", "occupancy"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    const sim::MachineProfile profile = sim::dgx_v100();
    std::cout << "  [" << ds.spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    for (const auto gpus : cli.get_int_list("gpus")) {
      struct Config {
        const char* engine;
        bool pipeline;
        core::CacheMode mode;
        double fraction;
      };
      std::vector<Config> configs = {
          {"serialized", false, core::CacheMode::kOff, 0.0},
          {"pipelined", true, core::CacheMode::kOff, 0.0},
      };
      for (const auto& cap : caps) {
        configs.push_back(
            {"pipelined", true, core::CacheMode::kStatic, std::stod(cap)});
        configs.push_back(
            {"pipelined", true, core::CacheMode::kFreq, std::stod(cap)});
      }
      configs.push_back({"pipelined", true, core::CacheMode::kAuto,
                         core::cache_capacity_fraction()});

      double serial_seconds = 0.0;
      for (const Config& config : configs) {
        core::SampledPipeline::Options options = base;
        options.pipeline = config.pipeline;
        options.cache_mode = config.mode;
        options.cache_capacity_fraction = config.fraction;
        const RunResult r =
            run_config(ds, profile, static_cast<int>(gpus), options);
        if (!config.pipeline) serial_seconds = r.seconds;

        table.add_row(
            {ds.spec.name, std::to_string(gpus), config.engine,
             core::cache_mode_name(config.mode),
             util::format_double(config.fraction, 3),
             util::format_double(r.seconds, 4),
             serial_seconds > 0
                 ? util::format_double(serial_seconds / r.seconds, 2) + "x"
                 : "-",
             util::format_double(r.hit_rate, 3),
             util::format_double(
                 static_cast<double>(r.wire_bytes) / 1e9, 3),
             util::format_double(r.occupancy, 3)});

        if (!first_row) json_rows << ",\n";
        first_row = false;
        json_rows << "    {\"dataset\": \"" << ds.spec.name
                  << "\", \"gpus\": " << gpus << ", \"engine\": \""
                  << config.engine << "\", \"cache_mode\": \""
                  << core::cache_mode_name(config.mode)
                  << "\", \"resolved_mode\": \"" << r.resolved_mode
                  << "\", \"capacity_fraction\": " << config.fraction
                  << ", \"fanout\": \"" << cli.get("fanout")
                  << "\", \"seconds\": " << r.seconds
                  << ", \"hit_rate\": " << r.hit_rate
                  << ", \"wire_bytes\": " << r.wire_bytes
                  << ", \"occupancy\": " << r.occupancy << ", "
                  << bench::pipeline_json_fragment(r.stats,
                                                   ds.extrapolation())
                  << "}";
      }
    }
  }

  std::cout << '\n'
            << table.to_string()
            << "\n(the pipelined engine hides next-batch extraction behind "
               "training; the cache converts remote feature reads into HBM "
               "hits — hit rate grows with capacity, wire bytes shrink.)\n";
  return bench::write_json(cli, "sampled_pipeline", json_rows.str()) ? 0 : 1;
}
