// Workspace-pool footprint sweep: MGGCN_POOL=off (static allocation) vs
// the stream-ordered pool, per tenant and on a combined co-resident
// pipeline + serving workload sharing one mem::PoolSet budget.
//
// Every cell runs the same workload twice on real-mode, hazard-checked
// machines — once with static buffers, once leased from the pool — and
// reports the device-ledger high-water mark of each. A parity pass
// re-runs the pooled mode under MGGCN_SCHED_FUZZ seeds and checks that
// losses (and served predictions on the combined cell) stay bit-identical
// to the static baseline: recycling changes where scratch lives, never
// what it holds.
//
// scripts/check_perf.py --mem gates the --json output: pooled peak <=
// static peak on every cell, the combined pipeline+serving cell must cut
// the footprint by the locked factor (reuse of recycled training scratch
// by the serving tier), and every cell must report parity and a clean
// hazard ledger.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/config.hpp"
#include "core/inference_server.hpp"
#include "core/sampled_pipeline.hpp"
#include "core/trainer.hpp"
#include "core/workload.hpp"
#include "dense/matrix.hpp"
#include "mem/pool_mode.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

/// RAII environment override for the sched-fuzz parity axis.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

/// One workload execution's footprint + numerics.
struct RunResult {
  std::uint64_t peak = 0;  ///< max device-ledger high water (replica scale)
  std::vector<double> losses;
  dense::HostMatrix predictions;  ///< combined cells only
  std::uint64_t reuse_hits = 0;
  double fragmentation = 0.0;
  bool hazard_clean = true;
};

struct CellParams {
  int gpus = 4;
  int layers = 3;  ///< total GCN layers (hidden count = layers - 1)
  std::int64_t hidden = 32;
  std::int64_t batch = 256;
  std::int64_t requests = 512;
  int epochs = 2;
};

void finish(sim::Machine& machine, RunResult* out) {
  out->peak = machine.max_memory_peak();
  const sim::PoolCounters pool = machine.trace().pool_counters();
  out->reuse_hits = pool.reuse_hits;
  out->fragmentation = pool.fragmentation_peak;
  out->hazard_clean = machine.trace().hazard_count() == 0;
}

RunResult run_trainer(const graph::Dataset& ds,
                      const sim::MachineProfile& profile,
                      const CellParams& p, mem::PoolMode mode) {
  RunResult out;
  sim::Machine machine(profile, p.gpus, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  core::TrainConfig config;
  config.hidden_dims.assign(static_cast<std::size_t>(p.layers - 1), p.hidden);
  config.seed = 7;
  config.pool_mode = mode;
  core::MgGcnTrainer trainer(machine, ds, config);
  for (const auto& stats : trainer.train(p.epochs)) {
    out.losses.push_back(stats.loss);
  }
  finish(machine, &out);
  return out;
}

RunResult run_pipeline(const graph::Dataset& ds,
                       const sim::MachineProfile& profile,
                       const CellParams& p, mem::PoolMode mode) {
  RunResult out;
  sim::Machine machine(profile, p.gpus, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  core::SampledPipeline::Options options;
  options.hidden_dims.assign(static_cast<std::size_t>(p.layers - 1), p.hidden);
  options.fanout.assign(static_cast<std::size_t>(p.layers), 10);
  options.batch_size = p.batch;
  options.seed = 3;
  options.pool_mode = mode;
  core::SampledPipeline pipeline(machine, ds, options);
  for (const auto& stats : pipeline.train(p.epochs)) {
    out.losses.push_back(stats.loss);
  }
  finish(machine, &out);
  return out;
}

/// The cross-component cell: a full-batch trainer (store producer), the
/// sampled pipeline, and the inference server co-resident on one machine.
/// Pooled runs share one mem::PoolSet, so the serving tier's shards and
/// gather scratch reuse the blocks the pipeline's rounds recycled, and the
/// second training epoch reuses the serve scratch recycled between calls.
RunResult run_combined(const graph::Dataset& ds,
                       const sim::MachineProfile& profile,
                       const CellParams& p, mem::PoolMode mode) {
  RunResult out;
  sim::Machine machine(profile, p.gpus, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  std::shared_ptr<mem::PoolSet> pools;
  const bool pooled = mode != mem::PoolMode::kOff;
  if (pooled) pools = mem::PoolSet::create(machine);
  const mem::PoolMode tenant_mode =
      pooled ? mem::PoolMode::kAuto : mem::PoolMode::kOff;

  core::TrainConfig config;
  config.hidden_dims = {p.hidden};
  config.seed = 7;
  config.pool_mode = tenant_mode;
  config.pool = pools;
  core::MgGcnTrainer trainer(machine, ds, config);
  trainer.train(1);
  trainer.run_forward();

  core::SampledPipeline::Options popt;
  popt.hidden_dims.assign(static_cast<std::size_t>(p.layers - 1), p.hidden);
  popt.fanout.assign(static_cast<std::size_t>(p.layers), 10);
  popt.batch_size = p.batch;
  popt.seed = 3;
  popt.pool_mode = tenant_mode;
  popt.pool = pools;
  core::SampledPipeline pipeline(machine, ds, popt);
  out.losses.push_back(pipeline.train_epoch().loss);

  serve::WorkloadOptions wl;
  wl.rate_qps = 100000.0;
  wl.seed = 11;
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(p.requests);

  core::ServeOptions sopt;
  sopt.max_batch = 32;
  sopt.pool_mode = tenant_mode;
  sopt.pool = pools;
  core::InferenceServer server(machine, trainer, ds, sopt);
  server.serve(requests);
  // Second epoch with the server resident: statically its gather scratch
  // stays allocated for the server's lifetime; pooled, it was recycled at
  // the end of serve() and the pipeline's rounds lease it back.
  out.losses.push_back(pipeline.train_epoch().loss);
  server.serve(requests);
  out.predictions = server.predictions();

  machine.synchronize();
  finish(machine, &out);
  return out;
}

bool same_losses(const std::vector<double>& a, const std::vector<double>& b) {
  return a == b;  // bit-exact, no tolerance
}

bool same_predictions(const dense::HostMatrix& a, const dense::HostMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      if (a.at(i, c) != b.at(i, c)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Workspace-pool footprint: static vs pooled peak bytes per tenant and "
      "on the combined pipeline+serving workload");
  bench::add_dataset_options(cli, "Arxiv");
  cli.option("gpus", "4", "device counts");
  cli.option("layers", "3,4", "total GCN layers per tenant cell");
  cli.option("hidden", "32", "hidden width");
  cli.option("batch", "256", "pipeline seeds per device per round");
  cli.option("requests", "512", "serving trace length (combined cell)");
  cli.option("epochs", "2", "training epochs per cell");
  cli.option("fuzz-seeds", "1,2,3", "MGGCN_SCHED_FUZZ parity seeds");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "memory-pool",
      "stream-ordered workspace pool vs static allocation, DGX-V100");

  const auto fuzz_seeds = cli.get_list("fuzz-seeds");
  CellParams base;
  base.hidden = cli.get_int("hidden");
  base.batch = cli.get_int("batch");
  base.requests = cli.get_int("requests");
  base.epochs = static_cast<int>(cli.get_int("epochs"));

  util::Table table({"Workload", "Dataset", "GPUs", "L", "static peak",
                     "pooled peak", "gain", "reuse", "parity", "hazards"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_featured_replica(cli, name);
    std::cout << "  [" << ds.spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    core::TrainConfig invariant_probe;
    invariant_probe.hidden_dims.assign(2, base.hidden);
    const std::uint64_t invariant = core::replicated_state_bytes(
        core::layer_dims(ds, invariant_probe));
    const sim::MachineProfile profile =
        sim::scale_profile(sim::dgx_v100(), ds.scale, invariant);
    const double x = ds.extrapolation();

    for (const auto gpus : cli.get_int_list("gpus")) {
      const auto layer_list = cli.get_int_list("layers");
      for (std::size_t w = 0; w < 3; ++w) {
        const std::string workload =
            w == 0 ? "trainer" : (w == 1 ? "pipeline" : "combined");
        // The combined cell runs once per GPU count at the deepest model;
        // the tenant cells sweep the layer axis.
        std::vector<std::int64_t> layers_axis(layer_list);
        if (w == 2) {
          layers_axis = {*std::max_element(layer_list.begin(),
                                           layer_list.end())};
        }
        for (const auto layers : layers_axis) {
          CellParams p = base;
          p.gpus = static_cast<int>(gpus);
          p.layers = static_cast<int>(layers);
          const auto run = [&](mem::PoolMode mode) {
            switch (w) {
              case 0: return run_trainer(ds, profile, p, mode);
              case 1: return run_pipeline(ds, profile, p, mode);
              default: return run_combined(ds, profile, p, mode);
            }
          };

          const RunResult off = run(mem::PoolMode::kOff);
          const RunResult on = run(mem::PoolMode::kOn);
          const RunResult aut = run(mem::PoolMode::kAuto);

          bool parity = same_losses(on.losses, off.losses) &&
                        same_losses(aut.losses, off.losses);
          if (w == 2) {
            parity = parity && same_predictions(on.predictions,
                                                off.predictions) &&
                     same_predictions(aut.predictions, off.predictions);
          }
          bool hazard_clean =
              off.hazard_clean && on.hazard_clean && aut.hazard_clean;
          // Sched-fuzz axis: the pooled recycling must stay bit-identical
          // and hazard-clean under perturbed schedules.
          for (const auto& seed : fuzz_seeds) {
            ScopedEnv fuzz("MGGCN_SCHED_FUZZ", seed.c_str());
            const RunResult fuzzed = run(mem::PoolMode::kOn);
            parity = parity && same_losses(fuzzed.losses, off.losses);
            if (w == 2) {
              parity = parity &&
                       same_predictions(fuzzed.predictions, off.predictions);
            }
            hazard_clean = hazard_clean && fuzzed.hazard_clean;
          }

          const auto extrapolate = [x](std::uint64_t bytes) {
            return static_cast<std::uint64_t>(static_cast<double>(bytes) * x);
          };
          const std::uint64_t static_peak = extrapolate(off.peak);
          const std::uint64_t pooled_peak = extrapolate(on.peak);
          const double reduction =
              pooled_peak > 0 ? static_cast<double>(static_peak) /
                                    static_cast<double>(pooled_peak)
                              : 1.0;

          table.add_row({workload, ds.spec.name, std::to_string(gpus),
                         std::to_string(layers),
                         util::format_bytes(static_peak),
                         util::format_bytes(pooled_peak),
                         util::format_double(reduction, 2) + "x",
                         std::to_string(on.reuse_hits),
                         parity ? "yes" : "NO",
                         hazard_clean ? "clean" : "DIRTY"});

          if (!first_row) json_rows << ",\n";
          first_row = false;
          json_rows << "    {\"workload\": \"" << workload
                    << "\", \"dataset\": \"" << ds.spec.name
                    << "\", \"gpus\": " << gpus << ", \"layers\": " << layers
                    << ", \"static_peak_bytes\": " << static_peak
                    << ", \"pooled_peak_bytes\": " << pooled_peak
                    << ", \"reduction\": " << reduction
                    << ", \"reuse_hits\": " << on.reuse_hits
                    << ", \"fragmentation\": " << on.fragmentation
                    << ", \"fuzz_seeds\": " << fuzz_seeds.size()
                    << ", \"parity\": " << (parity ? "true" : "false")
                    << ", \"hazard_clean\": "
                    << (hazard_clean ? "true" : "false") << "}";
        }
      }
    }
  }

  std::cout << '\n'
            << table.to_string()
            << "\n(the trainer's L+3 buffers are live for the engine's "
               "lifetime, so pooling matches but cannot beat its static "
               "peak; the pipeline's round scratch recycles at each level's "
               "last consumer; the combined cell time-multiplexes one "
               "budget between training rounds and serving gathers.)\n";
  return bench::write_json(cli, "memory-pool", json_rows.str()) ? 0 : 1;
}
