// Fig. 7: effect of the §5.2 random permutation and the §4.3
// communication/computation overlap on epoch runtime, per dataset and GPU
// count on DGX-V100, normalized to the original-ordering run.
//
// Paper landmarks: permutation can be slightly slower at low GPU counts but
// reaches ~1.5x at 8 GPUs on Products/Reddit; overlap adds a further
// ~1.15x at 8 GPUs.
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 7 reproduction: permutation + overlap speedups");
  cli.option("datasets", "Cora,Arxiv,Products,Proteins,Reddit", "datasets");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Fig. 7",
      "speedup of permuted and permuted+overlapped execution w.r.t. the "
      "original ordering, 2-layer GCN hidden=512, DGX-V100");

  util::Table table({"Dataset", "GPUs", "orig(s)", "perm(s)", "perm+ovlp(s)",
                     "perm speedup", "perm+ovlp speedup", "imbalance orig"});

  for (const auto& name : cli.get_list("datasets")) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                     : bench::default_scale(spec);
    const graph::Dataset ds = bench::load_replica(spec, scale);
    const sim::MachineProfile profile = sim::dgx_v100();

    for (const auto gpus : cli.get_int_list("gpus")) {
      core::TrainConfig orig = core::model_hidden512();
      orig.permute = false;
      orig.overlap = false;
      core::TrainConfig perm = orig;
      perm.permute = true;
      core::TrainConfig perm_ovlp = perm;
      perm_ovlp.overlap = true;

      const auto g = static_cast<int>(gpus);
      const auto r_orig =
          bench::run_epoch(bench::System::kMgGcn, profile, g, ds, orig);
      const auto r_perm =
          bench::run_epoch(bench::System::kMgGcn, profile, g, ds, perm);
      const auto r_both =
          bench::run_epoch(bench::System::kMgGcn, profile, g, ds, perm_ovlp);

      if (r_orig.oom || r_perm.oom || r_both.oom) {
        table.add_row({spec.name, std::to_string(gpus), "OOM", "OOM", "OOM",
                       "-", "-", "-"});
        continue;
      }
      table.add_row(
          {spec.name, std::to_string(gpus), bench::cell_seconds(r_orig),
           bench::cell_seconds(r_perm), bench::cell_seconds(r_both),
           util::format_speedup(r_orig.seconds / r_perm.seconds),
           util::format_speedup(r_orig.seconds / r_both.seconds),
           util::format_double(r_orig.imbalance, 2)});
    }
  }

  std::cout << table.to_string() << '\n';
  return 0;
}
