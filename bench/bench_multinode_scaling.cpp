// Beyond one machine: MG-GCN's 1D algorithm on a multi-node DGX-A100
// cluster (the paper's future work, §7), reproducing the phenomenon that
// frames the whole paper — "communication becomes a bottleneck, and
// scaling is blocked outside of the single machine regime" (abstract),
// previously observed by CAGNET, which "fails to scale beyond a single
// node (4 GPUs)".
//
// The cluster model keeps NVSwitch bandwidth inside each 8-GPU node but
// funnels cross-node collectives through one HDR NIC per node; the staged
// broadcast's bandwidth collapses as soon as the group spans two nodes.
// This bench sweeps the MGGCN_PART partitioner modes against that wall on
// a community-structured (BTER) graph: `random` pays the full ghost bill,
// `locality` prices the cut down, `hier` additionally folds the cut onto
// the cheap intra-node links, and `auto` must match the best candidate.
// scripts/check_perf.py --part gates this bench's --json output.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

std::string gigabytes(std::uint64_t bytes) {
  return util::format_double(static_cast<double>(bytes) / 1e9, 3);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Future work (§7): partitioner modes vs DGX-A100 cluster scaling");
  cli.option("gpus", "8,16,32,64", "GPU counts (8 per node)");
  cli.option("part", "random,locality,hier,auto", "partitioner modes");
  cli.option("n", "786432", "full-scale vertices");
  cli.option("d", "128", "feature width");
  cli.option("hidden", "512", "hidden width");
  cli.option("degree", "8", "average degree");
  cli.option("sigma", "0.6", "degree-distribution skew (lognormal sigma)");
  cli.option("clustering", "0.9", "community density (BTER rho)");
  cli.option("scale", "8", "replica scale");
  cli.option("json", "", "write results to this JSON file");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  graph::DatasetSpec spec;
  spec.name = "PartSweep-k" + cli.get("degree") + "-s" +
              std::to_string(static_cast<int>(
                  cli.get_double("sigma") * 100.0)) +
              "-c" +
              std::to_string(static_cast<int>(
                  cli.get_double("clustering") * 100.0));
  spec.n = cli.get_int("n");
  spec.m = spec.n * cli.get_int("degree");
  spec.feature_dim = cli.get_int("d");
  spec.num_classes = 40;
  spec.avg_degree = cli.get_double("degree");
  spec.degree_sigma = cli.get_double("sigma");
  spec.clustering = cli.get_double("clustering");
  const graph::Dataset ds = bench::load_replica(spec, cli.get_double("scale"));

  bench::print_header(
      "§7 / abstract",
      "partitioner modes vs cluster scaling (8 GPUs/node, HDR inter-node "
      "fabric), 2-layer GCN hidden=" + cli.get("hidden"),
      spec, ds.scale);
  std::cout << "  [replica: n=" << ds.n() << " nnz=" << ds.nnz()
            << " scale=1/" << ds.scale << "]\n\n";

  util::Table table({"GPUs", "nodes", "part", "epoch(s)", "vs random",
                     "wire GB", "inter GB", "ghosts", "inter ghosts",
                     "imbal"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto gpus64 : cli.get_int_list("gpus")) {
    const int gpus = static_cast<int>(gpus64);
    const int nodes = (gpus + 7) / 8;
    const sim::MachineProfile profile = sim::dgx_a100_cluster(nodes);
    double random_seconds = 0.0;

    for (const std::string& part : cli.get_list("part")) {
      core::TrainConfig config;
      config.hidden_dims = {cli.get_int("hidden")};
      const auto mode = core::parse_part_mode(part);
      if (!mode.has_value()) {
        std::cerr << "error: unknown partitioner mode '" << part << "'\n";
        return 1;
      }
      config.part_mode = *mode;
      // The sweep is about the 1D staged exchange's wire bill; pin the
      // strategy so the auto-planner cannot reroute products and dilute
      // the partitioner comparison.
      config.plan_mode = core::PlanMode::k1D;
      const bench::EpochResult r = bench::run_epoch(
          bench::System::kMgGcn, profile, gpus, ds, config);
      if (part == "random") random_seconds = r.oom ? 0.0 : r.seconds;

      if (!first_row) json_rows << ",\n";
      first_row = false;
      if (r.oom) {
        table.add_row({std::to_string(gpus), std::to_string(nodes), part,
                       "OOM", "-", "-", "-", "-", "-", "-"});
        json_rows << "    {\"machine\": \"dgx-a100-cluster\", \"gpus\": "
                  << gpus << ", \"nodes\": " << nodes << ", \"part\": \""
                  << part << "\", \"oom\": true}";
        continue;
      }

      const double vs_random =
          (random_seconds > 0.0 && r.seconds > 0.0)
              ? random_seconds / r.seconds
              : 0.0;
      table.add_row(
          {std::to_string(gpus), std::to_string(nodes), part,
           bench::cell_seconds(r), util::format_speedup(vs_random),
           gigabytes(r.comm_wire_bytes), gigabytes(r.comm_wire_bytes_inter),
           std::to_string(r.part_ghost_rows),
           std::to_string(r.part_inter_node_ghost_rows),
           util::format_double(r.part_imbalance, 3)});
      json_rows << "    {\"machine\": \"dgx-a100-cluster\", \"gpus\": "
                << gpus << ", \"nodes\": " << nodes << ", \"part\": \""
                << part << "\", \"oom\": false, \"epoch_seconds\": "
                << r.seconds << ", \"wire_bytes\": " << r.comm_wire_bytes
                << ", \"wire_bytes_inter\": " << r.comm_wire_bytes_inter
                << ", \"imbalance\": " << r.part_imbalance << ", "
                << bench::part_json_fragment(r) << ", "
                << bench::comm_json_fragment(r) << ", "
                << bench::plan_json_fragment(r) << "}";
    }
  }

  std::cout << table.to_string()
            << "\n(random stalls across nodes; locality cuts the wire "
               "bytes, hier folds the remaining cut onto intra-node links, "
               "and auto must match the winner.)\n";

  return bench::write_json(cli, "multinode_scaling", json_rows.str()) ? 0 : 1;
}
