// Beyond one machine: MG-GCN's 1D algorithm on a multi-node DGX-A100
// cluster (the paper's future work, §7), reproducing the phenomenon that
// frames the whole paper — "communication becomes a bottleneck, and
// scaling is blocked outside of the single machine regime" (abstract),
// previously observed by CAGNET, which "fails to scale beyond a single
// node (4 GPUs)".
//
// The cluster model keeps NVSwitch bandwidth inside each 8-GPU node but
// funnels cross-node collectives through one HDR NIC per node; the staged
// broadcast's bandwidth collapses as soon as the group spans two nodes.
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Future work (§7): MG-GCN scaling across DGX-A100 nodes");
  cli.option("dataset", "Products", "dataset");
  cli.option("gpus", "1,2,4,8,16,32", "GPU counts (8 per node)");
  cli.option("scale", "0", "replica scale override");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const graph::DatasetSpec spec = graph::dataset_by_name(cli.get("dataset"));
  const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                   : bench::default_scale(spec);
  const graph::Dataset ds = bench::load_replica(spec, scale);

  bench::print_header("§7 / abstract",
                      "epoch runtime across cluster nodes (8 GPUs/node, "
                      "HDR inter-node fabric), 2-layer GCN hidden=512",
                      spec, ds.scale);

  util::Table table(
      {"GPUs", "nodes", "epoch(s)", "speedup vs 1 GPU", "efficiency"});
  double base = 0.0;
  for (const auto gpus : cli.get_int_list("gpus")) {
    const int g = static_cast<int>(gpus);
    const int nodes = (g + 7) / 8;
    const bench::EpochResult r =
        bench::run_epoch(bench::System::kMgGcn, sim::dgx_a100_cluster(nodes),
                         g, ds, core::model_hidden512());
    if (r.oom) {
      table.add_row({std::to_string(gpus), std::to_string(nodes), "OOM", "-",
                     "-"});
      continue;
    }
    if (g == 1) base = r.seconds;
    const double speedup = base > 0 ? base / r.seconds : 0.0;
    table.add_row({std::to_string(gpus), std::to_string(nodes),
                   bench::cell_seconds(r), util::format_speedup(speedup),
                   util::format_double(100.0 * speedup / g, 1) + "%"});
  }

  std::cout << table.to_string()
            << "\n(speedup should climb to 8 GPUs and stall/regress across "
               "nodes — the single-machine regime the paper targets.)\n";
  return 0;
}
