// Table 3: MG-GCN epoch times on DGX-A100 with the DistGNN-comparison
// models (§6.6): Reddit with the 2-layer hidden-16 model, Products and
// Proteins with the 3-layer hidden-256 model, Papers with the 3-layer
// hidden-208 model (the largest that fits).
//
// Paper landmarks (epoch seconds): Reddit 0.033 -> 0.012 (flat after 4
// GPUs: the model is tiny), Products 0.355 -> 0.067, Proteins 4.221 ->
// 0.641, Papers OOM below 8 GPUs and 2.89 s at 8.
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

core::TrainConfig model_for(const std::string& dataset) {
  if (dataset == "Reddit") return core::model_hidden16();
  if (dataset == "Papers") return core::model_hidden208x2();
  return core::model_hidden256x2();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Table 3 reproduction: MG-GCN on DGX-A100");
  bench::add_dataset_options(cli, "Reddit,Papers,Products,Proteins");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header("Table 3",
                      "MG-GCN epoch seconds on DGX-A100 "
                      "(models per §6: Reddit 2x16, Products/Proteins 3x256, "
                      "Papers 3x208)");

  const auto gpu_list = cli.get_int_list("gpus");
  std::vector<std::string> header = {"#GPUs"};
  for (const auto& name : cli.get_list("datasets")) header.push_back(name);
  util::Table table(std::move(header));

  std::vector<std::vector<std::string>> columns;
  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    const graph::DatasetSpec& spec = ds.spec;
    const sim::MachineProfile profile = sim::dgx_a100();

    std::vector<std::string> column;
    for (const auto gpus : gpu_list) {
      const bench::EpochResult r =
          bench::run_epoch(bench::System::kMgGcn, profile,
                           static_cast<int>(gpus), ds, model_for(spec.name));
      column.push_back(r.oom ? "-" : bench::cell_seconds(r));
    }
    columns.push_back(std::move(column));
  }

  for (std::size_t g = 0; g < gpu_list.size(); ++g) {
    std::vector<std::string> row = {std::to_string(gpu_list[g])};
    for (const auto& column : columns) row.push_back(column[g]);
    table.add_row(std::move(row));
  }

  std::cout << table.to_string()
            << "\n('-' marks configurations that ran out of memory, as in "
               "the paper's Table 3.)\n";
  return 0;
}
