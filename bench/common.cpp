#include "bench/common.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include <array>

#include "baselines/cagnet.hpp"
#include "baselines/dgl_like.hpp"
#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "core/trainer.hpp"
#include "sparse/io.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace mggcn::bench {

double default_scale(const graph::DatasetSpec& spec) {
  if (spec.name == "Cora") return 1.0;
  if (spec.name == "Arxiv") return 4.0;
  if (spec.name == "Products") return 48.0;
  if (spec.name == "Proteins") return 256.0;
  if (spec.name == "Reddit") return 24.0;
  if (spec.name == "Papers") return 2048.0;
  return std::max(1.0, static_cast<double>(spec.n) / 50'000.0);
}

graph::Dataset load_replica(const graph::DatasetSpec& spec, double scale,
                            std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path cache_dir = fs::temp_directory_path() / "mggcn_bench_cache";
  std::error_code ec;
  fs::create_directories(cache_dir, ec);

  const fs::path path =
      cache_dir / (spec.name + "_s" + std::to_string(static_cast<int>(scale)) +
                   "_r" + std::to_string(seed) + ".csr");

  graph::Dataset ds;
  ds.spec = spec;
  if (!ec && fs::exists(path)) {
    ds.adjacency = sparse::read_csr(path.string());
    ds.scale = static_cast<double>(spec.n) /
               static_cast<double>(ds.adjacency.rows());
    return ds;
  }

  graph::DatasetOptions options;
  options.scale = scale;
  options.seed = seed;
  options.with_features = false;
  ds = graph::make_dataset(spec, options);
  if (!ec) sparse::write_csr(ds.adjacency, path.string());
  return ds;
}

void add_dataset_options(util::CliParser& cli,
                         const std::string& default_datasets) {
  cli.option("datasets", default_datasets, "datasets");
  cli.option("scale", "0", "replica scale override (0 = per-dataset default)");
  cli.option("json", "", "write results to this JSON file");
}

double resolved_scale(const util::CliParser& cli,
                      const graph::DatasetSpec& spec) {
  const double requested = cli.get_double("scale");
  return requested > 0 ? requested : default_scale(spec);
}

graph::Dataset load_cli_replica(const util::CliParser& cli,
                                const std::string& name) {
  const graph::DatasetSpec spec = graph::dataset_by_name(name);
  return load_replica(spec, resolved_scale(cli, spec));
}

graph::Dataset load_cli_featured_replica(const util::CliParser& cli,
                                         const std::string& name) {
  const graph::DatasetSpec spec = graph::dataset_by_name(name);
  graph::DatasetOptions options;
  options.scale = resolved_scale(cli, spec);
  options.seed = 42;
  options.with_features = true;
  return graph::make_dataset(spec, options);
}

bool write_json(const util::CliParser& cli, const std::string& bench_name,
                const std::string& rows) {
  const std::string path = cli.get("json");
  if (path.empty()) return true;
  std::ofstream os(path);
  os << "{\n  \"bench\": \"" << bench_name << "\",\n  \"rows\": [\n"
     << rows << "\n  ]\n}\n";
  if (!os.good()) {
    std::cerr << "error: could not write " << path << '\n';
    return false;
  }
  std::cout << "wrote " << path << '\n';
  return true;
}

const char* system_name(System system) {
  switch (system) {
    case System::kMgGcn: return "MG-GCN";
    case System::kDgl: return "DGL";
    case System::kCagnet: return "CAGNET";
  }
  return "?";
}

EpochResult run_epoch(System system, const sim::MachineProfile& machine_prof,
                      int gpus, const graph::Dataset& dataset,
                      const core::TrainConfig& config) {
  EpochResult result;
  try {
    core::TrainConfig effective = config;
    switch (system) {
      case System::kMgGcn: break;
      case System::kDgl: effective = baselines::dgl_like_config(effective); break;
      case System::kCagnet: effective = baselines::cagnet_config(effective); break;
    }

    const std::uint64_t invariant =
        core::replicated_state_bytes(core::layer_dims(dataset, effective));
    sim::Machine machine(
        sim::scale_profile(machine_prof, dataset.scale, invariant), gpus,
        sim::ExecutionMode::kPhantom);
    core::MgGcnTrainer trainer(machine, dataset, effective);

    // Two epochs; the second is steady state (Adam state touched, clocks
    // aligned). Phantom mode is deterministic, so no further repeats.
    trainer.train_epoch();
    const core::EpochStats stats = trainer.train_epoch();

    const double x = dataset.extrapolation();
    result.seconds = stats.sim_seconds * x;
    for (const auto& [kind, busy] : stats.busy_by_kind) {
      result.busy[kind] = busy * x;
    }
    const std::uint64_t invariant_part =
        std::min<std::uint64_t>(stats.peak_memory_bytes, invariant);
    result.peak_memory =
        invariant_part +
        static_cast<std::uint64_t>(
            static_cast<double>(stats.peak_memory_bytes - invariant_part) * x);
    result.imbalance = trainer.tile_imbalance();
    result.comm_wire_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stats.comm_wire_bytes) * x);
    result.comm_bytes_saved = static_cast<std::uint64_t>(
        static_cast<double>(stats.comm_bytes_saved) * x);
    result.comm_packs = stats.comm_packs;
    result.comm_compact_stages = stats.comm_compact_stages;
    result.comm_dense_stages = stats.comm_dense_stages;
    result.plan_products_1d = stats.plan_products_1d;
    result.plan_products_15d = stats.plan_products_15d;
    result.plan_products_replicated = stats.plan_products_replicated;
    result.plan_decisions = stats.plan_decisions;
    result.plan_fallbacks = stats.plan_fallbacks;
    result.comm_wire_bytes_inter = static_cast<std::uint64_t>(
        static_cast<double>(stats.comm_wire_bytes_inter) * x);
    result.part_cut_edges = static_cast<std::int64_t>(
        static_cast<double>(stats.part_cut_edges) * x);
    result.part_inter_node_cut_edges = static_cast<std::int64_t>(
        static_cast<double>(stats.part_inter_node_cut_edges) * x);
    result.part_ghost_rows = static_cast<std::int64_t>(
        static_cast<double>(stats.part_ghost_rows) * x);
    result.part_inter_node_ghost_rows = static_cast<std::int64_t>(
        static_cast<double>(stats.part_inter_node_ghost_rows) * x);
    result.part_avg_ghost_density = stats.part_avg_ghost_density;
    result.part_imbalance = stats.part_imbalance;
    result.pool_peak_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stats.pool_peak_bytes) * x);
    result.pool_reuse_hits = stats.pool_reuse_hits;
    result.pool_fragmentation = stats.pool_fragmentation;
  } catch (const OutOfMemoryError&) {
    result.oom = true;
  }
  return result;
}

SpmmTimeline run_spmm_timeline(const graph::Dataset& dataset,
                               const sim::MachineProfile& profile, int gpus,
                               std::int64_t d, bool permute, bool overlap,
                               std::uint64_t seed, core::PartMode part_mode) {
  sim::Machine machine(sim::scale_profile(profile, dataset.scale), gpus,
                       sim::ExecutionMode::kPhantom);

  const bool overlapping = overlap && gpus > 1;
  comm::CommOptions comm_options;
  comm_options.duration_scale = overlapping ? 1.10 : 1.0;
  comm::Communicator comm(machine, comm_options);

  // Preprocessing identical to the trainer's (Â§5.2 + eq. (2)), routed
  // through the partitioner registry so the structured orderings are
  // available to the timeline figures too.
  core::PartitionerOptions popt;
  popt.parts = gpus;
  popt.permute_random = permute;
  popt.seed = seed;
  popt.devices_per_node = profile.interconnect.devices_per_node;
  core::PartitionResult planned =
      core::plan_partition(dataset.adjacency, part_mode, popt);
  const bool identity_perm =
      std::is_sorted(planned.perm.begin(), planned.perm.end());
  const sparse::Csr adj =
      identity_perm ? dataset.adjacency
                    : dataset.adjacency.permute_symmetric(planned.perm);
  const sparse::Csr op = adj.normalize_gcn().transpose();
  const core::PartitionVector partition = std::move(planned.partition);
  core::DistSpmm spmm(machine, comm, core::make_tile_grid(op, partition));

  const auto np = static_cast<std::size_t>(gpus);
  std::vector<sim::DeviceBuffer> input(np), output(np), bc1(np), bc2(np);
  for (int r = 0; r < gpus; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    sim::Device& dev = machine.device(r);
    const auto block = static_cast<std::size_t>(partition.size(r) * d);
    const auto bc = static_cast<std::size_t>(partition.max_part_size() * d);
    input[rr] = sim::DeviceBuffer(dev, block, "H");
    output[rr] = sim::DeviceBuffer(dev, block, "AHW");
    bc1[rr] = sim::DeviceBuffer(dev, bc, "BC1");
    if (overlapping) bc2[rr] = sim::DeviceBuffer(dev, bc, "BC2");
  }

  std::vector<std::array<sim::Event, 2>> slot_readers(np);
  core::DistSpmm::Io io;
  for (auto& b : input) io.input.push_back(&b);
  for (auto& b : output) io.output.push_back(&b);
  for (auto& b : bc1) io.bc1.push_back(&b);
  for (auto& b : bc2) io.bc2.push_back(&b);
  io.d = d;
  io.overlap = overlapping;
  io.compute_bandwidth_scale =
      overlapping
          ? std::max(0.5, 1.0 - profile.interconnect.collective_bandwidth() /
                                    profile.device.memory_bandwidth)
          : 1.0;
  io.slot_readers = &slot_readers;

  const double mark = machine.align_clocks();
  spmm.run(io);
  machine.synchronize();

  SpmmTimeline result;
  const double x = dataset.extrapolation();
  result.total_seconds = (machine.sim_time() - mark) * x;
  result.stage_seconds.assign(
      np, std::vector<std::pair<double, double>>(np, {0.0, 0.0}));
  for (const auto& rec : machine.trace().records()) {
    if (rec.t_begin < mark || rec.stage < 0) continue;
    auto& cell = result.stage_seconds[static_cast<std::size_t>(rec.device)]
                                     [static_cast<std::size_t>(rec.stage)];
    if (rec.kind == sim::TaskKind::kComm) {
      cell.first += rec.duration() * x;
    } else {
      cell.second += rec.duration() * x;
    }
  }
  result.gantt = machine.trace().render_timeline(mark, machine.sim_time());
  return result;
}

std::string cell_seconds(const EpochResult& result) {
  if (result.oom) return "OOM";
  return util::format_double(result.seconds, result.seconds < 0.1 ? 4 : 3);
}

std::string comm_json_fragment(const EpochResult& result) {
  std::ostringstream os;
  os << "\"comm\": {\"wire_bytes\": " << result.comm_wire_bytes
     << ", \"bytes_saved\": " << result.comm_bytes_saved
     << ", \"packs\": " << result.comm_packs
     << ", \"compact_stages\": " << result.comm_compact_stages
     << ", \"dense_stages\": " << result.comm_dense_stages << "}";
  return os.str();
}

std::string plan_json_fragment(const EpochResult& result) {
  std::ostringstream os;
  os << "\"plan_counters\": {\"products_1d\": " << result.plan_products_1d
     << ", \"products_15d\": " << result.plan_products_15d
     << ", \"products_replicated\": " << result.plan_products_replicated
     << ", \"decisions\": " << result.plan_decisions
     << ", \"fallbacks\": " << result.plan_fallbacks << "}";
  return os.str();
}

std::string part_json_fragment(const EpochResult& result) {
  std::ostringstream os;
  os << "\"part_stats\": {\"cut_edges\": " << result.part_cut_edges
     << ", \"inter_node_cut_edges\": " << result.part_inter_node_cut_edges
     << ", \"ghost_rows\": " << result.part_ghost_rows
     << ", \"inter_node_ghost_rows\": " << result.part_inter_node_ghost_rows
     << ", \"avg_ghost_density\": " << result.part_avg_ghost_density
     << ", \"imbalance\": " << result.part_imbalance << "}";
  return os.str();
}

std::string pool_json_fragment(const EpochResult& result) {
  std::ostringstream os;
  os << "\"pool\": {\"peak_bytes\": " << result.pool_peak_bytes
     << ", \"reuse_hits\": " << result.pool_reuse_hits
     << ", \"fragmentation\": " << result.pool_fragmentation << "}";
  return os.str();
}

std::string pipeline_json_fragment(const core::EpochStats& stats, double x) {
  std::ostringstream os;
  os << "\"pipeline\": {\"rounds\": " << stats.pipe_rounds
     << ", \"cache_hits\": " << stats.cache_hits
     << ", \"cache_misses\": " << stats.cache_misses
     << ", \"cache_evictions\": " << stats.cache_evictions
     << ", \"cache_hit_rate\": " << stats.cache_hit_rate
     << ", \"sample_seconds\": " << stats.pipe_sample_seconds * x
     << ", \"extract_seconds\": " << stats.pipe_extract_seconds * x
     << ", \"train_seconds\": " << stats.pipe_train_seconds * x
     << ", \"occupancy\": " << stats.pipe_occupancy << "}";
  return os.str();
}

void print_header(const std::string& id, const std::string& what,
                  const graph::DatasetSpec& spec, double scale) {
  std::cout << "=== " << id << ": " << what << " ===\n"
            << "dataset " << spec.name << " (full scale n=" << spec.n
            << ", m=" << spec.m << "), replica scale 1/" << scale
            << "; timings extrapolated to full scale\n\n";
}

void print_header(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << ": " << what << " ===\n\n";
}

}  // namespace mggcn::bench
