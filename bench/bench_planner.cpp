// Mixture-of-parallelism planner study: steady-state epoch time for
// MGGCN_PLAN=1d|15d|replicated|auto across regimes chosen to flip the
// cheapest strategy, plus the planner's decision counters.
//
// Landmarks: on small graphs the staged 1D pipeline is launch-bound (P
// broadcasts and P^2 tile kernels per product), so gathering the operand
// once and running ONE fused SpMM wins — the replicated regime. On a
// multi-node cluster the 1D broadcast crosses the NIC every stage, while
// the chained 1.5D schedule keeps its group broadcasts inside a node and
// pays the NIC only for the three pair hand-off transfers — the 15d
// regime. On a single fat node with a wide hidden layer, the paper's 1D
// pipeline (overlapped, compact-capable) stays the cheapest. `auto` must
// match the best fixed strategy everywhere; scripts/check_perf.py --plan
// gates exactly that on this bench's JSON.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

/// One sweep point: a machine/graph/width regime the strategies disagree on.
struct Scenario {
  const char* machine;  ///< profile name ("-cN" suffix = N-node A100 cluster)
  int gpus;
  std::int64_t n;
  int avg_degree;
  std::int64_t d;  ///< feature width and the single hidden width
  double scale;    ///< replica scale
};

sim::MachineProfile machine_by_bench_name(const std::string& name) {
  if (name == "dgx-a100-c2") return sim::dgx_a100_cluster(2);
  if (name == "dgx-a100-c4") return sim::dgx_a100_cluster(4);
  return sim::machine_by_name(name);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Per-layer planner strategy sweep (1d / 15d / replicated / auto)");
  cli.option("json", "", "write results to this JSON file");
  cli.option("sigma", "1.5", "degree-distribution skew (lognormal sigma)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  // The three landmark regimes plus a mid-size control point. Replica
  // scales keep the smoke run under a few seconds.
  const std::vector<Scenario> scenarios = {
      // Launch-bound small graph: replicated should win.
      {"dgx-v100", 8, 16384, 8, 16, 1.0},
      // Two-node cluster, NIC-bound broadcasts: chained 1.5d should win.
      {"dgx-a100-c2", 16, 262144, 16, 256, 8.0},
      // Single fat node, wide hidden: the paper's 1D pipeline should win.
      {"dgx-v100", 8, 262144, 16, 512, 8.0},
      // Mid-size control point on A100.
      {"dgx-a100", 8, 262144, 8, 128, 8.0},
  };

  std::cout << "=== planner: mixture-of-parallelism strategy sweep ===\n"
            << "epoch time per forced strategy vs the auto planner; "
               "timings extrapolated to full scale\n\n";

  util::Table table({"machine", "gpus", "n", "deg", "d", "plan", "epoch(s)",
                     "products 1d/15d/rep", "fallbacks", "vs 1d"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const Scenario& sc : scenarios) {
    graph::DatasetSpec spec;
    spec.name = "PlanSweep-" + std::string(sc.machine) + "-d" +
                std::to_string(sc.d);
    spec.n = sc.n;
    spec.m = sc.n * sc.avg_degree;
    spec.feature_dim = sc.d;
    spec.num_classes = 32;
    spec.avg_degree = static_cast<double>(sc.avg_degree);
    spec.degree_sigma = cli.get_double("sigma");
    const graph::Dataset ds = bench::load_replica(spec, sc.scale);
    std::cout << "  [" << spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    const sim::MachineProfile profile = machine_by_bench_name(sc.machine);
    double seconds_1d = 0.0;
    for (const core::PlanMode mode :
         {core::PlanMode::k1D, core::PlanMode::k15D,
          core::PlanMode::kReplicated, core::PlanMode::kAuto}) {
      core::TrainConfig config;
      config.hidden_dims = {sc.d};
      config.plan_mode = mode;
      const bench::EpochResult r =
          bench::run_epoch(bench::System::kMgGcn, profile, sc.gpus, ds,
                           config);
      if (mode == core::PlanMode::k1D) seconds_1d = r.seconds;

      if (!first_row) json_rows << ",\n";
      first_row = false;
      const std::string products =
          std::to_string(r.plan_products_1d) + "/" +
          std::to_string(r.plan_products_15d) + "/" +
          std::to_string(r.plan_products_replicated);
      if (r.oom) {
        table.add_row({sc.machine, std::to_string(sc.gpus),
                       std::to_string(sc.n), std::to_string(sc.avg_degree),
                       std::to_string(sc.d), core::plan_mode_name(mode),
                       "OOM", "-", "-", "-"});
        json_rows << "    {\"machine\": \"" << sc.machine
                  << "\", \"gpus\": " << sc.gpus << ", \"n\": " << sc.n
                  << ", \"avg_degree\": " << sc.avg_degree
                  << ", \"d\": " << sc.d << ", \"plan\": \""
                  << core::plan_mode_name(mode) << "\", \"oom\": true}";
        continue;
      }
      const double vs_1d = r.seconds > 0.0 ? seconds_1d / r.seconds : 0.0;
      table.add_row({sc.machine, std::to_string(sc.gpus),
                     std::to_string(sc.n), std::to_string(sc.avg_degree),
                     std::to_string(sc.d), core::plan_mode_name(mode),
                     util::format_double(r.seconds, 4), products,
                     std::to_string(r.plan_fallbacks),
                     util::format_speedup(vs_1d)});
      json_rows << "    {\"machine\": \"" << sc.machine
                << "\", \"gpus\": " << sc.gpus << ", \"n\": " << sc.n
                << ", \"avg_degree\": " << sc.avg_degree << ", \"d\": "
                << sc.d << ", \"plan\": \"" << core::plan_mode_name(mode)
                << "\", \"oom\": false, \"epoch_seconds\": " << r.seconds
                << ", " << bench::plan_json_fragment(r) << "}";
    }
  }

  std::cout << '\n'
            << table.to_string()
            << "\n(auto must match the best fixed strategy in every regime; "
               "the non-1d wins concentrate on small launch-bound graphs "
               "and NIC-bound clusters)\n";

  return bench::write_json(cli, "planner", json_rows.str()) ? 0 : 1;
}
