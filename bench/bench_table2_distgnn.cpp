// Table 2 (+ the §6.6 energy comparison): DistGNN epoch times on Xeon 9242
// sockets. DistGNN's source is unavailable (to the paper's authors as
// well), so the bench prints our analytic model next to the numbers the
// paper quotes from the DistGNN publication, then reproduces §6.6's
// MG-GCN-vs-DistGNN ratios and the back-of-the-envelope energy analysis.
#include <iostream>
#include <map>

#include "baselines/distgnn.hpp"
#include "bench/common.hpp"
#include "core/trainer.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

core::TrainConfig model_for(const std::string& dataset) {
  if (dataset == "Reddit") return core::model_hidden16();
  if (dataset == "Papers") return core::model_hidden208x2();
  return core::model_hidden256x2();
}

struct Reported {
  int sockets;
  double seconds;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Table 2 reproduction: DistGNN epoch times (modeled)");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Table 2 + §6.6",
      "DistGNN epoch seconds (our analytic model vs the numbers the paper "
      "quotes) and the MG-GCN 8-GPU comparison");

  // The rows the paper reproduces from the DistGNN publication.
  const std::map<std::string, std::vector<Reported>> reported = {
      {"Reddit", {{1, 0.60}, {16, 0.61}}},
      {"Papers", {{1, 1000.0}, {128, 36.45}}},
      {"Products", {{1, 11.0}, {64, 1.74}}},
      {"Proteins", {{1, 100.0}, {64, 2.63}}},
  };

  baselines::DistGnnModel model;
  util::Table table({"Dataset", "#Sockets", "reported(s)", "modeled(s)"});
  std::map<std::string, double> best_reported;

  for (const auto& [name, rows] : reported) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const core::TrainConfig config = model_for(name);
    std::vector<std::int64_t> dims = {spec.feature_dim};
    for (const auto h : config.hidden_dims) dims.push_back(h);
    dims.push_back(spec.num_classes);

    for (const auto& row : rows) {
      table.add_row({spec.name, std::to_string(row.sockets),
                     util::format_double(row.seconds, 2),
                     util::format_double(
                         model.epoch_seconds(spec, dims, row.sockets), 2)});
      best_reported[name] = std::min(
          best_reported.count(name) ? best_reported[name] : 1e30,
          row.seconds);
    }
  }
  std::cout << table.to_string() << '\n';

  // §6.6: MG-GCN (8x A100) vs DistGNN's best reported configuration.
  util::Table versus({"Dataset", "DistGNN best(s)", "MG-GCN 8xA100(s)",
                      "MG-GCN speedup"});
  double papers_epoch = 0.0;
  for (const auto& name : {"Reddit", "Papers", "Products", "Proteins"}) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const double scale = cli.get_double("scale") > 0
                             ? cli.get_double("scale")
                             : bench::default_scale(spec);
    const graph::Dataset ds = bench::load_replica(spec, scale);
    const sim::MachineProfile profile = sim::dgx_a100();
    const bench::EpochResult r = bench::run_epoch(
        bench::System::kMgGcn, profile, 8, ds, model_for(name));
    if (name == std::string("Papers")) papers_epoch = r.seconds;

    const double best = best_reported[name];
    versus.add_row({spec.name, util::format_double(best, 2),
                    bench::cell_seconds(r),
                    r.oom ? "-" : util::format_speedup(best / r.seconds)});
  }
  std::cout << "§6.6 — single node (8x A100) vs DistGNN best:\n"
            << versus.to_string() << '\n';

  // §6.6 energy: TDP x devices x time, scaled by 208/256 hidden dims.
  if (papers_epoch > 0.0) {
    const double cpu_energy = 350.0 * 128.0 * 36.45;
    const double gpu_energy = 400.0 * 8.0 * papers_epoch * (208.0 / 256.0);
    std::cout << "§6.6 — Papers energy ratio (DistGNN 128 sockets vs MG-GCN "
                 "8x A100): "
              << util::format_double(cpu_energy / gpu_energy, 1)
              << "x (paper: 143.5x)\n";
  }
  return 0;
}
