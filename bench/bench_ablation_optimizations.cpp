// Ablation study over MG-GCN's design choices (DESIGN.md §5): starting
// from the full configuration, disable one optimization at a time and
// measure the epoch-time regression, plus the nnz-balanced-partition
// alternative to the §5.2 permutation.
//
// Not a paper figure — this bench quantifies the individual contribution
// of each §4/§5 mechanism on the same workloads the paper evaluates.
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

struct Variant {
  const char* name;
  core::TrainConfig (*apply)(core::TrainConfig);
};

core::TrainConfig full(core::TrainConfig c) { return c; }
core::TrainConfig no_permute(core::TrainConfig c) {
  c.permute = false;
  return c;
}
core::TrainConfig no_overlap(core::TrainConfig c) {
  c.overlap = false;
  return c;
}
core::TrainConfig no_reorder(core::TrainConfig c) {
  c.reorder_gemm_spmm = false;
  return c;
}
core::TrainConfig no_skip(core::TrainConfig c) {
  c.skip_first_backward_spmm = false;
  return c;
}
core::TrainConfig no_reuse(core::TrainConfig c) {
  c.reuse_buffers = false;
  return c;
}
core::TrainConfig balanced_cuts(core::TrainConfig c) {
  // The alternative load-balancing strategy: keep the natural order but
  // cut at nnz-balanced points instead of permuting.
  c.permute = false;
  c.part_mode = core::PartMode::kBalanced;
  return c;
}

constexpr Variant kVariants[] = {
    {"full MG-GCN", full},
    {"- permutation (5.2)", no_permute},
    {"  ~ balanced-nnz cuts instead", balanced_cuts},
    {"- overlap (4.3)", no_overlap},
    {"- order switch (4.4)", no_reorder},
    {"- first-layer skip (4.4)", no_skip},
    {"- buffer reuse (4.2, memory only)", no_reuse},
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Ablation: per-optimization epoch-time contribution");
  cli.option("datasets", "Products,Reddit", "datasets");
  cli.option("gpus", "8", "GPU count");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Ablation", "epoch time with each optimization disabled in isolation "
                  "(2-layer GCN hidden=512, DGX-V100)");

  const int gpus = static_cast<int>(cli.get_int("gpus"));
  util::Table table(
      {"Dataset", "Variant", "epoch(s)", "vs full", "peak GiB/GPU"});

  for (const auto& name : cli.get_list("datasets")) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                     : bench::default_scale(spec);
    const graph::Dataset ds = bench::load_replica(spec, scale);

    double full_seconds = 0.0;
    for (const auto& variant : kVariants) {
      const bench::EpochResult r =
          bench::run_epoch(bench::System::kMgGcn, sim::dgx_v100(), gpus, ds,
                           variant.apply(core::model_hidden512()));
      if (r.oom) {
        table.add_row({spec.name, variant.name, "OOM", "-", "-"});
        continue;
      }
      if (variant.apply == full) full_seconds = r.seconds;
      table.add_row(
          {spec.name, variant.name, bench::cell_seconds(r),
           full_seconds > 0
               ? util::format_double(r.seconds / full_seconds, 2) + "x"
               : "-",
           util::format_double(
               static_cast<double>(r.peak_memory) / (1ULL << 30), 2)});
    }
  }

  std::cout << table.to_string()
            << "\n(>1.00x = slower without that optimization; buffer reuse "
               "shows up in the memory column.)\n";
  return 0;
}
