// Figs. 10 + 11: epoch runtime on DGX-V100 for CAGNET / DGL / MG-GCN across
// datasets and GPU counts (Fig. 10), and the same runs expressed as speedup
// over single-GPU DGL (Fig. 11).
//
// Paper landmarks: MG-GCN single-GPU beats DGL by 2.72x (Reddit), 1.42x
// (Products), 1.76x (Arxiv), 3.1x (Cora); at 8 GPUs it beats CAGNET by
// 2.66x / 8.6x / 2.35x on Reddit / Products / Arxiv; Proteins OOMs for
// DGL and CAGNET everywhere and for MG-GCN below 4 GPUs; Cora is too small
// for anyone to scale.
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("Figs. 10-11 reproduction: DGX-V100 comparison");
  bench::add_dataset_options(cli, "Cora,Arxiv,Products,Proteins,Reddit");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Figs. 10-11",
      "epoch runtime and speedup vs DGL, 2-layer GCN hidden=512, DGX-V100");

  util::Table runtime(
      {"Dataset", "System", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});
  util::Table speedup(
      {"Dataset", "System", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});

  const auto gpu_list = cli.get_int_list("gpus");
  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    const graph::DatasetSpec& spec = ds.spec;
    const sim::MachineProfile profile = sim::dgx_v100();

    std::map<std::pair<bench::System, int>, bench::EpochResult> results;
    for (const bench::System system :
         {bench::System::kCagnet, bench::System::kDgl, bench::System::kMgGcn}) {
      for (const auto gpus : gpu_list) {
        if (system == bench::System::kDgl && gpus != 1) continue;  // no MG DGL
        results[{system, static_cast<int>(gpus)}] =
            bench::run_epoch(system, profile, static_cast<int>(gpus), ds,
                             core::model_hidden512());
      }
    }

    const bench::EpochResult& dgl1 = results[{bench::System::kDgl, 1}];
    for (const bench::System system :
         {bench::System::kCagnet, bench::System::kDgl, bench::System::kMgGcn}) {
      std::vector<std::string> rt_row = {spec.name,
                                         bench::system_name(system)};
      std::vector<std::string> sp_row = rt_row;
      for (const auto gpus : gpu_list) {
        const auto it = results.find({system, static_cast<int>(gpus)});
        if (it == results.end()) {
          rt_row.push_back("-");
          sp_row.push_back("-");
          continue;
        }
        rt_row.push_back(bench::cell_seconds(it->second));
        if (it->second.oom || dgl1.oom || dgl1.seconds <= 0.0) {
          sp_row.push_back(it->second.oom ? "OOM" : "-");
        } else {
          sp_row.push_back(
              util::format_speedup(dgl1.seconds / it->second.seconds));
        }
      }
      runtime.add_row(std::move(rt_row));
      speedup.add_row(std::move(sp_row));
    }
  }

  std::cout << "Fig. 10 — epoch runtime (seconds):\n"
            << runtime.to_string() << '\n'
            << "Fig. 11 — speedup w.r.t. single-GPU DGL:\n"
            << speedup.to_string() << '\n';
  return 0;
}
