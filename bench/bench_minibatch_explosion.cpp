// §1's motivation, quantified: the neighborhood-explosion work multiplier
// of mini-batch (sampled) training versus full-batch training.
//
// For each dataset replica and model depth, the bench samples DistDGL-style
// fanout-capped computation graphs and reports how many vertices/edges one
// batch touches and how much *more* work one mini-batch epoch does than a
// full-batch epoch (which touches every edge exactly once per layer) —
// the paper's argument for attacking full-batch multi-GPU training.
//
// With --epochs > 0 the bench also trains a single-device MiniBatchTrainer
// on a feature-bearing replica and records per-epoch sampled edges, loss,
// and train accuracy — the convergence-vs-work trace the --json output
// exposes for the CI artifact.
#include <iostream>
#include <sstream>

#include "baselines/minibatch.hpp"
#include "bench/common.hpp"
#include "graph/sampling.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("§1 reproduction: neighborhood-explosion work study");
  bench::add_dataset_options(cli, "Arxiv,Products,Reddit");
  cli.option("batch", "512", "mini-batch size (seeds)");
  cli.option("fanout", "10", "neighbors sampled per vertex per hop");
  cli.option("batches", "4", "batches sampled per measurement");
  cli.option("epochs", "4", "training epochs for the convergence trace");
  cli.option("train-n", "1200", "feature-bearing replica size for training");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "§1", "neighborhood explosion: per-epoch work of mini-batch sampling "
            "relative to full-batch");

  const auto batch = cli.get_int("batch");
  const auto fanout = cli.get_int("fanout");
  util::Table table({"Dataset", "hops", "batch verts", "graph n",
                     "touched/batch", "epoch work vs full-batch"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    const graph::DatasetSpec& spec = ds.spec;
    util::Rng rng(99);

    for (const int hops : {1, 2, 3}) {
      const std::vector<std::int64_t> fanouts(
          static_cast<std::size_t>(hops), fanout);
      const std::int64_t batch_scaled =
          std::max<std::int64_t>(8, std::min<std::int64_t>(batch, ds.n() / 4));
      const graph::ExplosionStats stats =
          graph::measure_neighborhood_explosion(
              ds.adjacency, fanouts, batch_scaled,
              static_cast<int>(cli.get_int("batches")), rng);

      table.add_row(
          {spec.name, std::to_string(hops), std::to_string(batch_scaled),
           std::to_string(ds.n()),
           util::format_double(stats.mean_vertices, 0) + " v / " +
               util::format_double(stats.mean_edges, 0) + " e",
           util::format_double(stats.epoch_work_multiplier, 2) + "x"});
      if (!first_row) json_rows << ",\n";
      first_row = false;
      json_rows << "    {\"dataset\": \"" << spec.name
                << "\", \"kind\": \"explosion\", \"hops\": " << hops
                << ", \"batch\": " << batch_scaled
                << ", \"mean_vertices\": " << stats.mean_vertices
                << ", \"mean_edges\": " << stats.mean_edges
                << ", \"epoch_work_multiplier\": "
                << stats.epoch_work_multiplier << "}";
    }
  }

  std::cout << table.to_string()
            << "\n(>1x = a sampled epoch does more aggregation work than a "
               "full-batch epoch; grows with depth — §1's neighborhood "
               "explosion.)\n";

  // Convergence trace: real-mode sampled training on a small replica with
  // synthetic community-correlated features.
  const int epochs = static_cast<int>(cli.get_int("epochs"));
  if (epochs > 0) {
    graph::DatasetSpec spec = graph::arxiv();
    spec.n = cli.get_int("train-n");
    spec.feature_dim = 32;
    spec.num_classes = 8;
    graph::DatasetOptions options;
    options.seed = 17;
    options.feature_snr = 2.0;
    const graph::Dataset ds = graph::make_dataset(spec, options);

    baselines::MiniBatchTrainer::Options mb;
    mb.hidden_dims = {32};
    mb.fanout = {fanout, fanout};
    mb.batch_size = std::min<std::int64_t>(batch, ds.n() / 8);
    baselines::MiniBatchTrainer trainer(ds, mb);

    util::Table trace({"epoch", "sampled edges", "loss", "train acc"});
    for (int e = 0; e < epochs; ++e) {
      const auto r = trainer.train_epoch();
      trace.add_row({std::to_string(e), std::to_string(r.sampled_edges),
                     util::format_double(r.loss, 4),
                     util::format_double(r.train_accuracy, 3)});
      json_rows << ",\n    {\"dataset\": \"" << spec.name
                << "\", \"kind\": \"training\", \"epoch\": " << e
                << ", \"sampled_edges\": " << r.sampled_edges
                << ", \"loss\": " << r.loss
                << ", \"accuracy\": " << r.train_accuracy << "}";
    }
    std::cout << "\nconvergence trace (n=" << ds.n() << ", fanout " << fanout
              << "x" << fanout << ", batch " << mb.batch_size << "):\n"
              << trace.to_string();
  }

  return bench::write_json(cli, "minibatch_explosion", json_rows.str()) ? 0
                                                                        : 1;
}
