// §1's motivation, quantified: the neighborhood-explosion work multiplier
// of mini-batch (sampled) training versus full-batch training.
//
// For each dataset replica and model depth, the bench samples DistDGL-style
// fanout-capped computation graphs and reports how many vertices/edges one
// batch touches and how much *more* work one mini-batch epoch does than a
// full-batch epoch (which touches every edge exactly once per layer) —
// the paper's argument for attacking full-batch multi-GPU training.
#include <iostream>

#include "bench/common.hpp"
#include "graph/sampling.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("§1 reproduction: neighborhood-explosion work study");
  cli.option("datasets", "Arxiv,Products,Reddit", "datasets");
  cli.option("batch", "512", "mini-batch size (seeds)");
  cli.option("fanout", "10", "neighbors sampled per vertex per hop");
  cli.option("batches", "4", "batches sampled per measurement");
  cli.option("scale", "0", "replica scale override");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "§1", "neighborhood explosion: per-epoch work of mini-batch sampling "
            "relative to full-batch");

  const auto batch = cli.get_int("batch");
  const auto fanout = cli.get_int("fanout");
  util::Table table({"Dataset", "hops", "batch verts", "graph n",
                     "touched/batch", "epoch work vs full-batch"});

  for (const auto& name : cli.get_list("datasets")) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                     : bench::default_scale(spec);
    const graph::Dataset ds = bench::load_replica(spec, scale);
    util::Rng rng(99);

    for (const int hops : {1, 2, 3}) {
      const std::vector<std::int64_t> fanouts(
          static_cast<std::size_t>(hops), fanout);
      const std::int64_t batch_scaled =
          std::max<std::int64_t>(8, std::min<std::int64_t>(batch, ds.n() / 4));
      const graph::ExplosionStats stats =
          graph::measure_neighborhood_explosion(
              ds.adjacency, fanouts, batch_scaled,
              static_cast<int>(cli.get_int("batches")), rng);

      table.add_row(
          {spec.name, std::to_string(hops), std::to_string(batch_scaled),
           std::to_string(ds.n()),
           util::format_double(stats.mean_vertices, 0) + " v / " +
               util::format_double(stats.mean_edges, 0) + " e",
           util::format_double(stats.epoch_work_multiplier, 2) + "x"});
    }
  }

  std::cout << table.to_string()
            << "\n(>1x = a sampled epoch does more aggregation work than a "
               "full-batch epoch; grows with depth — §1's neighborhood "
               "explosion.)\n";
  return 0;
}
