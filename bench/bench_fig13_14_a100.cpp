// Figs. 13 + 14: epoch runtime on DGX-A100 (DGL vs MG-GCN, Fig. 13) and
// speedup over single-GPU DGL (Fig. 14). CAGNET is absent, as in the paper
// (it does not build against CUDA 11).
//
// Paper landmarks: MG-GCN single-GPU beats DGL by 2.2x (Cora), 1.8x
// (Arxiv), 1.5x (Products), 1.5x (Reddit); with 8 GPUs it reaches 8.5x
// (Products) and 8.3x (Reddit) over single-GPU DGL.
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("Figs. 13-14 reproduction: DGX-A100 comparison");
  cli.option("datasets", "Cora,Arxiv,Products,Proteins,Reddit", "datasets");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "Figs. 13-14",
      "epoch runtime and speedup vs DGL, 2-layer GCN hidden=512, DGX-A100");

  util::Table runtime(
      {"Dataset", "System", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});
  util::Table speedup(
      {"Dataset", "System", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs"});

  const auto gpu_list = cli.get_int_list("gpus");
  for (const auto& name : cli.get_list("datasets")) {
    const graph::DatasetSpec spec = graph::dataset_by_name(name);
    const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                     : bench::default_scale(spec);
    const graph::Dataset ds = bench::load_replica(spec, scale);
    const sim::MachineProfile profile = sim::dgx_a100();

    std::map<std::pair<bench::System, int>, bench::EpochResult> results;
    for (const bench::System system :
         {bench::System::kDgl, bench::System::kMgGcn}) {
      for (const auto gpus : gpu_list) {
        if (system == bench::System::kDgl && gpus != 1) continue;
        results[{system, static_cast<int>(gpus)}] =
            bench::run_epoch(system, profile, static_cast<int>(gpus), ds,
                             core::model_hidden512());
      }
    }

    const bench::EpochResult& dgl1 = results[{bench::System::kDgl, 1}];
    for (const bench::System system :
         {bench::System::kDgl, bench::System::kMgGcn}) {
      std::vector<std::string> rt_row = {spec.name,
                                         bench::system_name(system)};
      std::vector<std::string> sp_row = rt_row;
      for (const auto gpus : gpu_list) {
        const auto it = results.find({system, static_cast<int>(gpus)});
        if (it == results.end()) {
          rt_row.push_back("-");
          sp_row.push_back("-");
          continue;
        }
        rt_row.push_back(bench::cell_seconds(it->second));
        if (it->second.oom || dgl1.oom || dgl1.seconds <= 0.0) {
          sp_row.push_back(it->second.oom ? "OOM" : "-");
        } else {
          sp_row.push_back(
              util::format_speedup(dgl1.seconds / it->second.seconds));
        }
      }
      runtime.add_row(std::move(rt_row));
      speedup.add_row(std::move(sp_row));
    }
  }

  std::cout << "Fig. 13 — epoch runtime (seconds):\n"
            << runtime.to_string() << '\n'
            << "Fig. 14 — speedup w.r.t. single-GPU DGL:\n"
            << speedup.to_string() << '\n';
  return 0;
}
