// Fig. 12: per-GPU memory consumption on Reddit (hidden 512) as a function
// of the number of layers — DGL vs MG-GCN on 1 GPU, CAGNET vs MG-GCN on 8
// GPUs. Memory grows linearly in the layer count; the slopes differ by the
// §4.2 buffer-reuse scheme (1 big buffer per layer vs ~3).
//
// Paper landmarks at a 30 GiB budget: DGL fits ~20 layers where MG-GCN fits
// ~50 (1 GPU); CAGNET fits ~150 where MG-GCN fits ~450 (8 GPUs).
#include <iostream>

#include "baselines/cagnet.hpp"
#include "baselines/dgl_like.hpp"
#include "bench/common.hpp"
#include "comm/comm_mode.hpp"
#include "core/trainer.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

constexpr double kBudgetGiB = 30.0;

/// Peak per-GPU bytes (full-scale extrapolated) for an L-layer model, or
/// -1 when construction itself OOMs against the (scaled) 32 GiB V100.
double peak_gib(bench::System system, const sim::MachineProfile& profile,
                int gpus, const graph::Dataset& ds, int layers,
                comm::CommMode mode = comm::CommMode::kDense) {
  core::TrainConfig config = core::model_hidden512();
  config.hidden_dims.assign(static_cast<std::size_t>(layers - 1), 512);
  config.comm_mode = mode;
  const bench::EpochResult r =
      bench::run_epoch(system, profile, gpus, ds, config);
  if (r.oom) return -1.0;
  return static_cast<double>(r.peak_memory) / (1024.0 * 1024.0 * 1024.0);
}

/// Largest layer count whose peak memory fits the 30 GiB budget.
int max_layers(bench::System system, const sim::MachineProfile& profile,
               int gpus, const graph::Dataset& ds,
               comm::CommMode mode = comm::CommMode::kDense) {
  int lo = 1, hi = 2;
  while (true) {
    const double gib = peak_gib(system, profile, gpus, ds, hi, mode);
    if (gib < 0 || gib > kBudgetGiB) break;
    lo = hi;
    hi *= 2;
    if (hi > 4096) return lo;
  }
  while (lo + 1 < hi) {
    const int mid = (lo + hi) / 2;
    const double gib = peak_gib(system, profile, gpus, ds, mid, mode);
    if (gib >= 0 && gib <= kBudgetGiB) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 12 reproduction: memory vs number of layers");
  cli.option("scale", "96", "replica scale for Reddit");
  cli.option("layers", "2,5,10,20,50,100,150,300,450", "layer counts");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const graph::DatasetSpec spec = graph::reddit();
  const graph::Dataset ds =
      bench::load_replica(spec, cli.get_double("scale"));
  // Remove the capacity ceiling so the sweep can exceed 32 GiB like the
  // figure's y-axis does; the budget line is applied afterwards.
  sim::MachineProfile profile = sim::dgx_v100();
  profile.device.memory_bytes *= 64;

  bench::print_header("Fig. 12",
                      "per-GPU memory vs layers, Reddit hidden=512", spec,
                      ds.scale);

  util::Table table({"Layers", "DGL 1GPU (GiB)", "MG-GCN 1GPU (GiB)",
                     "CAGNET 8GPU (GiB)", "MG-GCN 8GPU (GiB)",
                     "MG-GCN 8GPU compact (GiB)"});
  for (const auto layers : cli.get_int_list("layers")) {
    const int l = static_cast<int>(layers);
    auto cell = [&](bench::System system, int gpus,
                    comm::CommMode mode = comm::CommMode::kDense) {
      const double gib = peak_gib(system, profile, gpus, ds, l, mode);
      return gib < 0 ? std::string("OOM") : util::format_double(gib, 2);
    };
    table.add_row({std::to_string(l), cell(bench::System::kDgl, 1),
                   cell(bench::System::kMgGcn, 1),
                   cell(bench::System::kCagnet, 8),
                   cell(bench::System::kMgGcn, 8),
                   cell(bench::System::kMgGcn, 8,
                        comm::CommMode::kCompact)});
  }
  std::cout << table.to_string()
            << "(compact adds only the layer-count-independent ghost maps, "
               "so the L+3 slope is unchanged)\n\n";

  util::Table fits({"Setting", "System", "max layers under 30 GiB"});
  fits.add_row({"1 GPU", "DGL",
                std::to_string(max_layers(bench::System::kDgl, profile, 1, ds))});
  fits.add_row({"1 GPU", "MG-GCN",
                std::to_string(max_layers(bench::System::kMgGcn, profile, 1, ds))});
  fits.add_row({"8 GPUs", "CAGNET",
                std::to_string(max_layers(bench::System::kCagnet, profile, 8, ds))});
  fits.add_row({"8 GPUs", "MG-GCN",
                std::to_string(max_layers(bench::System::kMgGcn, profile, 8, ds))});
  fits.add_row({"8 GPUs", "MG-GCN compact",
                std::to_string(max_layers(bench::System::kMgGcn, profile, 8,
                                          ds, comm::CommMode::kCompact))});
  std::cout << fits.to_string()
            << "\n(paper: ~20 vs ~50 on 1 GPU; ~150 vs ~450 on 8 GPUs)\n";
  return 0;
}
