// Fault-recovery overhead: elastic training under an injected fault schedule
// versus the fault-free run on the same dataset.
//
// Runs real-mode training (small synthetic graph), so losses are exact: the
// bench reports the recovery overhead in simulated seconds alongside the
// final-loss deviation, which stays within distributed-summation noise of
// the fault-free run — the elastic driver's correctness claim.
//
// Scenarios: an explicit --faults schedule (see FaultPlan::parse grammar)
// and/or a sweep of random per-epoch device-failure rates (--fault-rates,
// drawn deterministically from --seed).
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/elastic.hpp"
#include "sim/fault.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace mggcn;

namespace {

struct ScenarioResult {
  std::string name;
  std::string schedule;
  int devices_end = 0;
  int recoveries = 0;
  int replayed_epochs = 0;
  int comm_retries = 0;
  double final_loss = 0.0;
  double loss_delta = 0.0;    // vs fault-free
  double sim_seconds = 0.0;
  double overhead_pct = 0.0;  // sim-time overhead vs fault-free
};

graph::Dataset bench_dataset(std::int64_t n, std::uint64_t seed) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = n;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  options.feature_snr = 4.0;
  return graph::make_dataset(spec, options);
}

ScenarioResult run_scenario(const std::string& name,
                            std::shared_ptr<sim::FaultPlan> plan,
                            const graph::Dataset& ds, int gpus, int epochs) {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.permute = false;
  config.seed = 3;

  ScenarioResult r;
  r.name = name;
  r.schedule = plan ? plan->describe() : "(no faults)";
  core::ElasticTrainer elastic(sim::dgx_v100(), gpus, ds, config,
                               std::move(plan));
  const auto stats = elastic.train(epochs);
  r.devices_end = elastic.num_devices();
  r.recoveries = static_cast<int>(elastic.recoveries().size());
  for (const auto& event : elastic.recoveries()) {
    r.replayed_epochs += event.replayed_epochs;
  }
  for (const auto& s : stats) r.comm_retries += s.comm_retries;
  r.final_loss = stats.back().loss;
  r.sim_seconds = elastic.total_sim_seconds();
  return r;
}

bool write_json(const std::string& path, int gpus, int epochs,
                const std::vector<ScenarioResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"fault_recovery\",\n  \"gpus\": " << gpus
     << ",\n  \"epochs\": " << epochs << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"schedule\": \"" << r.schedule
       << "\", \"devices_end\": " << r.devices_end
       << ", \"recoveries\": " << r.recoveries
       << ", \"replayed_epochs\": " << r.replayed_epochs
       << ", \"comm_retries\": " << r.comm_retries
       << ", \"final_loss\": " << r.final_loss
       << ", \"loss_delta\": " << r.loss_delta
       << ", \"sim_seconds\": " << r.sim_seconds
       << ", \"overhead_pct\": " << r.overhead_pct << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Elastic fault-recovery overhead vs the fault-free run (real mode)");
  cli.option("n", "400", "synthetic graph vertices");
  cli.option("gpus", "4", "starting device count");
  cli.option("epochs", "60", "training epochs");
  cli.option("faults", "kill:2@20;flaky:3@10;degrade:0.5@30x5",
             "explicit fault schedule (FaultPlan::parse grammar; '' = skip)");
  cli.option("fault-rates", "0.01,0.02",
             "per-epoch device-failure rates for the random sweep");
  cli.option("seed", "42", "seed for random schedules and the dataset");
  cli.option("json", "", "write results to this JSON file");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const int gpus = static_cast<int>(cli.get_int("gpus"));
  const int epochs = static_cast<int>(cli.get_int("epochs"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const graph::Dataset ds = bench_dataset(cli.get_int("n"), seed);

  bench::print_header("Fault recovery",
                      "elastic training under injected faults; overhead and "
                      "loss deviation vs the fault-free run");
  std::cout << "  [synthetic replica: n=" << ds.n() << " nnz=" << ds.nnz()
            << " gpus=" << gpus << " epochs=" << epochs << "]\n\n";

  std::vector<ScenarioResult> results;
  results.push_back(run_scenario("fault-free", nullptr, ds, gpus, epochs));

  const std::string schedule = cli.get("faults");
  if (!schedule.empty()) {
    results.push_back(run_scenario(
        "explicit",
        std::make_shared<sim::FaultPlan>(sim::FaultPlan::parse(schedule)), ds,
        gpus, epochs));
  }
  for (const std::string& token : cli.get_list("fault-rates")) {
    const double rate = std::stod(token);
    sim::FaultPlan::RandomRates rates;
    rates.device_failure = rate;
    rates.transient = rate * 4.0;
    rates.degrade = rate * 2.0;
    auto plan = std::make_shared<sim::FaultPlan>(
        sim::FaultPlan::random(seed, epochs, gpus, rates));
    results.push_back(run_scenario(
        "random p=" + util::format_double(rate, 3), std::move(plan), ds, gpus,
        epochs));
  }

  const ScenarioResult& base = results.front();
  for (ScenarioResult& r : results) {
    r.loss_delta = r.final_loss - base.final_loss;
    r.overhead_pct = base.sim_seconds > 0.0
                         ? 100.0 * (r.sim_seconds / base.sim_seconds - 1.0)
                         : 0.0;
  }

  util::Table table({"Scenario", "GPUs end", "Recoveries", "Replayed",
                     "Retries", "Final loss", "dLoss", "sim(s)",
                     "Overhead%"});
  for (const ScenarioResult& r : results) {
    table.add_row({r.name, std::to_string(r.devices_end),
                   std::to_string(r.recoveries),
                   std::to_string(r.replayed_epochs),
                   std::to_string(r.comm_retries),
                   util::format_double(r.final_loss, 6),
                   util::format_double(r.loss_delta, 6),
                   util::format_double(r.sim_seconds, 5),
                   util::format_double(r.overhead_pct, 1)});
  }
  std::cout << table.to_string() << '\n';

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    if (!write_json(json_path, gpus, epochs, results)) {
      std::cerr << "error: could not write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
