// Shared infrastructure for the per-figure/table benchmark binaries.
//
// Scaling methodology: replicas are generated at spec.n / scale vertices
// with the full-scale average degree and feature dimensions. To keep the
// simulation scale-invariant, the machine profile's extensive quantities
// (HBM capacity, L2 capacity, kernel launch overhead) are divided by the
// same factor — every term of the cost model is then exactly 1/scale of its
// full-scale value, so `sim_seconds * scale` reproduces the full-scale
// estimate and out-of-memory cells appear for exactly the configurations
// that would OOM at full scale. Each bench prints the scale it used.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mggcn::bench {

/// Default structure-reduction factor per dataset, tuned so every bench
/// runs in seconds on one host core.
double default_scale(const graph::DatasetSpec& spec);

/// Generates (or loads from the on-disk cache) a structure-only replica.
graph::Dataset load_replica(const graph::DatasetSpec& spec, double scale,
                            std::uint64_t seed = 42);

/// Registers the option set shared by per-dataset sweep benches:
/// --datasets, --scale (0 = the per-dataset default_scale), and --json.
void add_dataset_options(util::CliParser& cli,
                         const std::string& default_datasets);

/// Resolves --scale against the spec: explicit positive value wins,
/// otherwise default_scale(spec).
double resolved_scale(const util::CliParser& cli,
                      const graph::DatasetSpec& spec);

/// dataset_by_name + resolved_scale + load_replica in one call — the
/// per-dataset loop body every sweep bench used to spell out.
graph::Dataset load_cli_replica(const util::CliParser& cli,
                                const std::string& name);

/// load_cli_replica for benches that run real-mode numerics (e.g. the
/// workspace-pool parity cells): materializes features/labels/splits.
/// Not disk-cached — the feature matrix dominates the file size and
/// regenerates in milliseconds at bench scales.
graph::Dataset load_cli_featured_replica(const util::CliParser& cli,
                                         const std::string& name);

/// Writes `{"bench": <name>, "rows": [<rows>]}` to the --json path if one
/// was given. Returns false (after printing an error) when the write
/// failed, so mains can `return write_json(...) ? 0 : 1;`.
bool write_json(const util::CliParser& cli, const std::string& bench_name,
                const std::string& rows);

enum class System { kMgGcn, kDgl, kCagnet };
const char* system_name(System system);

struct EpochResult {
  bool oom = false;
  /// Full-scale-extrapolated epoch seconds.
  double seconds = 0.0;
  /// Full-scale-extrapolated busy seconds per kind (summed over devices).
  std::map<sim::TaskKind, double> busy;
  /// Full-scale-extrapolated peak per-device memory (bytes).
  std::uint64_t peak_memory = 0;
  /// Load imbalance of the tiling (max/mean tile-row nnz).
  double imbalance = 1.0;
  /// Full-scale-extrapolated staged-exchange wire bytes and the bytes the
  /// compacted path avoided vs all-dense broadcasts (0 under dense mode).
  std::uint64_t comm_wire_bytes = 0;
  std::uint64_t comm_bytes_saved = 0;
  /// Per-destination pack operations and per-path stage counts (replica
  /// counts; scale-invariant, not extrapolated).
  std::uint64_t comm_packs = 0;
  int comm_compact_stages = 0;
  int comm_dense_stages = 0;
  /// Planner decision counters (replica counts; scale-invariant): products
  /// routed per strategy, distinct (d, overlap) decisions priced, and
  /// infeasible choices that fell back to 1d.
  int plan_products_1d = 0;
  int plan_products_15d = 0;
  int plan_products_replicated = 0;
  int plan_decisions = 0;
  int plan_fallbacks = 0;
  /// Wire bytes that crossed a node boundary (full-scale extrapolated;
  /// 0 on single-node profiles).
  std::uint64_t comm_wire_bytes_inter = 0;
  /// Partitioner cut quality of the active ordering (replica counts;
  /// scale-invariant ratios, extrapolated edge/row counts).
  std::int64_t part_cut_edges = 0;
  std::int64_t part_inter_node_cut_edges = 0;
  std::int64_t part_ghost_rows = 0;
  std::int64_t part_inter_node_ghost_rows = 0;
  double part_avg_ghost_density = 0.0;
  double part_imbalance = 1.0;
  /// Workspace-pool counters (peak full-scale extrapolated, hits replica
  /// counts; all zero when MGGCN_POOL resolves to the static path).
  std::uint64_t pool_peak_bytes = 0;
  std::uint64_t pool_reuse_hits = 0;
  double pool_fragmentation = 0.0;
};

/// Builds a phantom-mode machine + the requested system and measures one
/// steady-state epoch. `machine` is the UNSCALED profile; it is scaled by
/// dataset.scale internally (with the replicated model state held
/// invariant). OOM configurations return oom = true.
EpochResult run_epoch(System system, const sim::MachineProfile& machine,
                      int gpus, const graph::Dataset& dataset,
                      const core::TrainConfig& config);

/// Pretty seconds for table cells ("0.033" style, like the paper's tables);
/// "OOM" when the configuration did not fit.
std::string cell_seconds(const EpochResult& result);

/// The epoch's exchange-path counters as a JSON object fragment
/// (`"comm": {...}`), for splicing into a bench's --json rows.
std::string comm_json_fragment(const EpochResult& result);

/// The epoch's planner counters as a JSON object fragment
/// (`"plan_counters": {...}`), for splicing into a bench's --json rows.
std::string plan_json_fragment(const EpochResult& result);

/// The epoch's partitioner cut-quality counters as a JSON object fragment
/// (`"part_stats": {...}`), for splicing into a bench's --json rows.
std::string part_json_fragment(const EpochResult& result);

/// The epoch's workspace-pool counters as a JSON object fragment
/// (`"pool": {...}`), for splicing into a bench's --json rows.
std::string pool_json_fragment(const EpochResult& result);

/// The sampled pipeline's cache + stage counters as a JSON object fragment
/// (`"pipeline": {...}`). Stage seconds are extrapolated by `x`; counters
/// are replica counts.
std::string pipeline_json_fragment(const core::EpochStats& stats, double x);

/// Isolated one-shot distributed SpMM for the timeline figures (6 and 8):
/// partitions the dataset's normalized adjacency transpose, allocates the
/// dense blocks, runs one staged product, and returns the per-stage
/// compute/communication trace plus an ASCII Gantt chart.
struct SpmmTimeline {
  /// Simulated seconds of the whole staged SpMM (full-scale extrapolated).
  double total_seconds = 0.0;
  /// [gpu][stage] -> {comm, compute} simulated seconds (extrapolated).
  std::vector<std::vector<std::pair<double, double>>> stage_seconds;
  std::string gantt;
};

/// `profile` is the unscaled machine profile (scaled internally).
/// `part_mode` selects the vertex ordering (core::PartMode); kRandom with
/// permute=false reproduces the natural-order baseline, kRandom with
/// permute=true the §5.2 shuffle, and the structured modes route through
/// core::plan_partition.
SpmmTimeline run_spmm_timeline(const graph::Dataset& dataset,
                               const sim::MachineProfile& profile, int gpus,
                               std::int64_t d, bool permute, bool overlap,
                               std::uint64_t seed = 1,
                               core::PartMode part_mode = core::PartMode::kRandom);

/// Prints the standard bench header (what is reproduced, scale used).
void print_header(const std::string& id, const std::string& what,
                  const graph::DatasetSpec& spec, double scale);
void print_header(const std::string& id, const std::string& what);

}  // namespace mggcn::bench
