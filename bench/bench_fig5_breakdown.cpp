// Fig. 5: runtime decomposition of the operations in one training epoch
// (Activation / Adam / GeMM / Loss-Layer / SpMM percentages) per dataset and
// GPU count on DGX-V100, 2-layer model with hidden 512.
//
// The paper's headline from this figure: SpMM takes 60-94% on the large
// datasets (Proteins, Products, Reddit) and GeMM dominates the small ones
// (Cora); Proteins OOMs below 4 GPUs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Fig. 5 reproduction: per-operation runtime breakdown (DGX-V100)");
  bench::add_dataset_options(cli, "Cora,Arxiv,Products,Proteins,Reddit");
  cli.option("gpus", "1,2,4,8", "GPU counts");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header("Fig. 5",
                      "operation breakdown of a training epoch, 2-layer GCN "
                      "hidden=512, DGX-V100");

  util::Table table({"Dataset", "GPUs", "SpMM%", "GeMM%", "Activation%",
                     "Loss-Layer%", "Adam%", "epoch(s)"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    const graph::DatasetSpec& spec = ds.spec;
    const sim::MachineProfile profile = sim::dgx_v100();
    std::cout << "  [" << spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    for (const auto gpus : cli.get_int_list("gpus")) {
      const bench::EpochResult r = bench::run_epoch(
          bench::System::kMgGcn, profile, static_cast<int>(gpus), ds,
          core::model_hidden512());
      if (!first_row) json_rows << ",\n";
      first_row = false;
      if (r.oom) {
        table.add_row({spec.name, std::to_string(gpus), "OOM", "OOM", "OOM",
                       "OOM", "OOM", "OOM"});
        json_rows << "    {\"dataset\": \"" << spec.name << "\", \"gpus\": "
                  << gpus << ", \"oom\": true}";
        continue;
      }

      auto busy = [&](sim::TaskKind kind) {
        const auto it = r.busy.find(kind);
        return it == r.busy.end() ? 0.0 : it->second;
      };
      // The paper attributes the broadcast wait to the SpMM stage.
      const double spmm = busy(sim::TaskKind::kSpMM) + busy(sim::TaskKind::kComm);
      const double gemm = busy(sim::TaskKind::kGeMM);
      const double act = busy(sim::TaskKind::kActivation);
      const double loss = busy(sim::TaskKind::kLoss);
      const double adam = busy(sim::TaskKind::kOptimizer);
      const double total = spmm + gemm + act + loss + adam;
      auto pct = [&](double x) {
        return util::format_double(total > 0 ? 100.0 * x / total : 0.0, 1);
      };
      table.add_row({spec.name, std::to_string(gpus), pct(spmm), pct(gemm),
                     pct(act), pct(loss), pct(adam),
                     util::format_double(r.seconds, 4)});
      json_rows << "    {\"dataset\": \"" << spec.name << "\", \"gpus\": "
                << gpus << ", \"oom\": false, \"epoch_seconds\": " << r.seconds
                << ", \"busy_seconds\": {\"spmm\": " << spmm
                << ", \"gemm\": " << gemm << ", \"activation\": " << act
                << ", \"loss\": " << loss << ", \"adam\": " << adam << "}, "
                << bench::comm_json_fragment(r) << "}";
    }
  }

  std::cout << '\n' << table.to_string() << '\n';

  return bench::write_json(cli, "fig5_breakdown", json_rows.str()) ? 0 : 1;
}
