// Communication-volume study for the compacted (ghost-row) exchange: epoch
// time and wire bytes for MGGCN_COMM=dense|compact|auto across a density
// sweep, with and without the §5.2 random permutation, on the DGX-1-class
// cube-mesh interconnect where bandwidth is scarcest.
//
// Landmarks: at low average degree each stage's consumers need only a small
// fraction of the broadcast block, so the compacted sendv wins despite its
// per-destination latency and pack cost; as density grows the ghost sets
// approach the full block and the auto-selector falls back to the dense
// multicast — auto must therefore match the better of the two everywhere.
// scripts/check_perf.py --comm gates exactly that on this bench's JSON.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

const char* mode_label(comm::CommMode mode) {
  return comm::comm_mode_name(mode);
}

std::string gigabytes(std::uint64_t bytes) {
  return util::format_double(static_cast<double>(bytes) / 1e9, 3);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Compacted-exchange communication volume and epoch time sweep");
  cli.option("degrees", "1,2,4,8,16", "average degrees to sweep");
  cli.option("n", "262144", "full-scale vertices");
  cli.option("d", "128", "feature/hidden width");
  cli.option("sigma", "1.5", "degree-distribution skew (lognormal sigma)");
  cli.option("gpus", "2,8", "GPU counts");
  cli.option("machine", "dgx-v100", "machine profile name");
  cli.option("scale", "8", "replica scale");
  cli.option("json", "", "write results to this JSON file");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const sim::MachineProfile profile =
      sim::machine_by_name(cli.get("machine"));
  const std::int64_t d = cli.get_int("d");

  bench::print_header(
      "comm-volume",
      "staged-exchange path comparison (dense broadcast vs compacted "
      "ghost-row sendv vs cost-model auto), " +
          cli.get("machine") + ", gpus=" + cli.get("gpus") +
          "; small cube-mesh groups see the fewest usable links (§5.1), so "
          "they are the low-bandwidth gate configs");

  util::Table table({"gpus", "avg deg", "permute", "mode", "epoch(s)",
                     "wire GB", "saved GB", "packs", "stages c/d",
                     "vs dense"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto deg : cli.get_int_list("degrees")) {
    graph::DatasetSpec spec;
    spec.name = "CommSweep-k" + std::to_string(deg);
    spec.n = cli.get_int("n");
    spec.m = spec.n * deg;
    spec.feature_dim = d;
    spec.num_classes = 32;
    spec.avg_degree = static_cast<double>(deg);
    spec.degree_sigma = cli.get_double("sigma");
    const graph::Dataset ds =
        bench::load_replica(spec, cli.get_double("scale"));
    std::cout << "  [" << spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    for (const auto gpus64 : cli.get_int_list("gpus")) {
      const int gpus = static_cast<int>(gpus64);
      for (const bool permute : {false, true}) {
        double dense_seconds = 0.0;
        for (const comm::CommMode mode :
             {comm::CommMode::kDense, comm::CommMode::kCompact,
              comm::CommMode::kAuto}) {
          core::TrainConfig config;
          config.hidden_dims = {d};
          config.permute = permute;
          config.comm_mode = mode;
          // The dense/compact comparison is about the 1D staged exchange;
          // pin the strategy so the auto-planner cannot reroute products.
          config.plan_mode = core::PlanMode::k1D;
          const bench::EpochResult r = bench::run_epoch(
              bench::System::kMgGcn, profile, gpus, ds, config);
          if (mode == comm::CommMode::kDense) dense_seconds = r.seconds;

          if (!first_row) json_rows << ",\n";
          first_row = false;
          if (r.oom) {
            table.add_row({std::to_string(gpus), std::to_string(deg),
                           permute ? "on" : "off", mode_label(mode), "OOM",
                           "-", "-", "-", "-", "-"});
            json_rows << "    {\"machine\": \"" << cli.get("machine")
                      << "\", \"gpus\": " << gpus
                      << ", \"avg_degree\": " << deg << ", \"permute\": "
                      << (permute ? "true" : "false") << ", \"mode\": \""
                      << mode_label(mode) << "\", \"oom\": true}";
            continue;
          }

          const double vs_dense =
              r.seconds > 0.0 ? dense_seconds / r.seconds : 0.0;
          table.add_row({std::to_string(gpus), std::to_string(deg),
                         permute ? "on" : "off", mode_label(mode),
                         util::format_double(r.seconds, 4),
                         gigabytes(r.comm_wire_bytes),
                         gigabytes(r.comm_bytes_saved),
                         std::to_string(r.comm_packs),
                         std::to_string(r.comm_compact_stages) + "/" +
                             std::to_string(r.comm_dense_stages),
                         util::format_speedup(vs_dense)});
          json_rows << "    {\"machine\": \"" << cli.get("machine")
                    << "\", \"gpus\": " << gpus << ", \"avg_degree\": " << deg
                    << ", \"permute\": " << (permute ? "true" : "false")
                    << ", \"mode\": \"" << mode_label(mode)
                    << "\", \"oom\": false, \"epoch_seconds\": " << r.seconds
                    << ", \"wire_bytes\": " << r.comm_wire_bytes
                    << ", \"bytes_saved\": " << r.comm_bytes_saved
                    << ", \"packs\": " << r.comm_packs
                    << ", \"compact_stages\": " << r.comm_compact_stages
                    << ", \"dense_stages\": " << r.comm_dense_stages << "}";
        }
      }
    }
  }

  std::cout << '\n'
            << table.to_string()
            << "\n(auto must match the better path everywhere; the compact "
               "win concentrates at low density, where ghost sets are a "
               "small fraction of the block)\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n  \"bench\": \"comm_volume\",\n  \"rows\": [\n"
       << json_rows.str() << "\n  ]\n}\n";
    if (!os.good()) {
      std::cerr << "error: could not write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
