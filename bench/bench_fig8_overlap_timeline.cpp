// Fig. 8: timeline of one distributed SpMM on Products (permuted ordering,
// 4 GPUs) without and with communication/computation overlap. With overlap,
// broadcasts run one stage ahead on the comm stream into the BC1/BC2 double
// buffer; both the broadcasts and the SpMMs get individually slower (shared
// HBM bandwidth) but the total improves.
//
// Paper landmark: on Products/4 GPUs the SpMM drops from ~38 ms to ~30 ms.
#include <iostream>

#include "bench/common.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 8 reproduction: SpMM timeline with overlap");
  cli.option("dataset", "Products", "dataset name");
  cli.option("gpus", "4", "GPU count");
  cli.option("d", "512", "dense width of the SpMM");
  cli.option("scale", "0", "replica scale override (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const graph::DatasetSpec spec = graph::dataset_by_name(cli.get("dataset"));
  const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                   : bench::default_scale(spec);
  const graph::Dataset ds = bench::load_replica(spec, scale);
  const sim::MachineProfile profile = sim::dgx_v100();
  const int gpus = static_cast<int>(cli.get_int("gpus"));
  const auto d = cli.get_int("d");

  bench::print_header("Fig. 8",
                      "staged-SpMM timeline without and with "
                      "communication/computation overlap (permuted ordering)",
                      spec, ds.scale);

  const bench::SpmmTimeline serial = bench::run_spmm_timeline(
      ds, profile, gpus, d, /*permute=*/true, /*overlap=*/false);
  const bench::SpmmTimeline overlapped = bench::run_spmm_timeline(
      ds, profile, gpus, d, /*permute=*/true, /*overlap=*/true);

  std::cout << "No overlap — total "
            << util::format_seconds(serial.total_seconds) << ":\n"
            << serial.gantt << '\n'
            << "Overlap — total "
            << util::format_seconds(overlapped.total_seconds)
            << " (stream 0 = compute, stream 1 = broadcasts):\n"
            << overlapped.gantt << '\n';

  // Per-stage dilation: both phases slow down individually under overlap.
  double serial_comp = 0.0, overlap_comp = 0.0;
  double serial_comm = 0.0, overlap_comm = 0.0;
  for (std::size_t g = 0; g < serial.stage_seconds.size(); ++g) {
    for (std::size_t s = 0; s < serial.stage_seconds[g].size(); ++s) {
      serial_comm += serial.stage_seconds[g][s].first;
      serial_comp += serial.stage_seconds[g][s].second;
      overlap_comm += overlapped.stage_seconds[g][s].first;
      overlap_comp += overlapped.stage_seconds[g][s].second;
    }
  }
  std::cout << "sum of compute phases: " << util::format_seconds(serial_comp)
            << " -> " << util::format_seconds(overlap_comp)
            << " (slower under overlap: shared HBM bandwidth)\n"
            << "sum of comm phases:    " << util::format_seconds(serial_comm)
            << " -> " << util::format_seconds(overlap_comm) << '\n'
            << "overlap speedup: "
            << util::format_speedup(serial.total_seconds /
                                    overlapped.total_seconds)
            << " (paper: 38 ms -> 30 ms on Products / 4 GPUs)\n";
  return 0;
}
