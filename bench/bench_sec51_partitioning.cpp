// §5.1: the bandwidth analysis behind MG-GCN's choice of 1D partitioning.
//
// Reproduces the paper's arithmetic with the Topology model: a full
// feature-matrix rotation (n*d floats) as (a) the 1D algorithm — P
// broadcasts of n*d/P — and (b) the 1.5D algorithm with replication factor
// c = 2 — two rounds of group broadcasts plus a cross-group reduction that,
// on DGX-1's hybrid cube mesh, only has 2 links. The paper's conclusions:
// 1.5D is ~2/3 the speed of 1D on DGX-1 but ~4/3 on DGX-A100, and always
// needs twice the memory — which is why MG-GCN implements 1D only.
#include <iostream>

#include "bench/common.hpp"
#include "comm/topology.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace mggcn;

namespace {

struct Analysis {
  double one_d = 0.0;
  double one_5d = 0.0;
};

Analysis analyze(const comm::Topology& topology, std::uint64_t nd_bytes,
                 int gpus) {
  Analysis a;
  // 1D: P broadcasts of nd/P bytes across all P devices.
  a.one_d = gpus * topology.broadcast_seconds(nd_bytes / gpus, gpus);

  // 1.5D with c = 2: two rounds of broadcasts of nd/4 within each group of
  // P/2, plus a reduction of nd/4 between the two groups (2 links on the
  // cube mesh; full links behind the switch).
  const int group = gpus / 2;
  a.one_5d = 2.0 * topology.broadcast_seconds(nd_bytes / 4, group) +
             topology.reduce_seconds(nd_bytes / 4, 2);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("§5.1 reproduction: 1D vs 1.5D bandwidth analysis");
  cli.option("n", "233000", "vertices (default: Reddit)");
  cli.option("d", "512", "feature width");
  cli.option("gpus", "8", "GPU count");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const auto nd_bytes = static_cast<std::uint64_t>(cli.get_int("n")) *
                        static_cast<std::uint64_t>(cli.get_int("d")) * 4;
  const int gpus = static_cast<int>(cli.get_int("gpus"));

  bench::print_header("§5.1",
                      "communication time of a full H rotation: 1D vs 1.5D "
                      "(c=2), per machine");

  util::Table table({"Machine", "1D (ms)", "1.5D (ms)", "1.5D/1D speed",
                     "1.5D memory"});
  for (const auto& machine : {sim::dgx_v100(), sim::dgx_a100()}) {
    const comm::Topology topology(machine.interconnect);
    const Analysis a = analyze(topology, nd_bytes, gpus);
    table.add_row({machine.name, util::format_double(a.one_d * 1e3, 2),
                   util::format_double(a.one_5d * 1e3, 2),
                   util::format_speedup(a.one_d / a.one_5d), "2x"});
  }
  std::cout << table.to_string()
            << "\n(paper: 1.5D is 2/3x on DGX-1 — the cross-group reduction "
               "only has 2 links — but 4/3x on DGX-A100; both need twice "
               "the memory, so MG-GCN implements 1D.)\n";
  return 0;
}
