// §5.1: the bandwidth analysis behind MG-GCN's choice of 1D partitioning.
//
// Reproduces the paper's arithmetic with the Topology model: a full
// feature-matrix rotation (n*d floats) as (a) the 1D algorithm — P
// broadcasts of n*d/P — and (b) the 1.5D algorithm with replication factor
// c = 2 — two rounds of group broadcasts plus a cross-group reduction that,
// on DGX-1's hybrid cube mesh, only has 2 links. The paper's conclusions:
// 1.5D is ~2/3 the speed of 1D on DGX-1 but ~4/3 on DGX-A100, and always
// needs twice the memory — which is why MG-GCN implements 1D only.
#include <iostream>

#include "bench/common.hpp"
#include "comm/topology.hpp"
#include "core/part_mode.hpp"
#include "core/partitioner.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mggcn;

namespace {

struct Analysis {
  double one_d = 0.0;
  double one_5d = 0.0;
};

Analysis analyze(const comm::Topology& topology, std::uint64_t nd_bytes,
                 int gpus) {
  Analysis a;
  // 1D: P broadcasts of nd/P bytes across all P devices.
  a.one_d = gpus * topology.broadcast_seconds(nd_bytes / gpus, gpus);

  // 1.5D with c = 2: two rounds of broadcasts of nd/4 within each group of
  // P/2, plus a reduction of nd/4 between the two groups (2 links on the
  // cube mesh; full links behind the switch).
  const int group = gpus / 2;
  a.one_5d = 2.0 * topology.broadcast_seconds(nd_bytes / 4, group) +
             topology.reduce_seconds(nd_bytes / 4, 2);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("§5.1 reproduction: 1D vs 1.5D bandwidth analysis");
  cli.option("n", "233000", "vertices (default: Reddit)");
  cli.option("d", "512", "feature width");
  cli.option("gpus", "8", "GPU count");
  cli.option("part", "locality",
             "partitioner mode for the compacted-rotation section "
             "(random|balanced|locality|hier|auto)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const auto nd_bytes = static_cast<std::uint64_t>(cli.get_int("n")) *
                        static_cast<std::uint64_t>(cli.get_int("d")) * 4;
  const int gpus = static_cast<int>(cli.get_int("gpus"));

  bench::print_header("§5.1",
                      "communication time of a full H rotation: 1D vs 1.5D "
                      "(c=2), per machine");

  util::Table table({"Machine", "1D (ms)", "1.5D (ms)", "1.5D/1D speed",
                     "1.5D memory"});
  for (const auto& machine : {sim::dgx_v100(), sim::dgx_a100()}) {
    const comm::Topology topology(machine.interconnect);
    const Analysis a = analyze(topology, nd_bytes, gpus);
    table.add_row({machine.name, util::format_double(a.one_d * 1e3, 2),
                   util::format_double(a.one_5d * 1e3, 2),
                   util::format_speedup(a.one_d / a.one_5d), "2x"});
  }
  std::cout << table.to_string()
            << "\n(paper: 1.5D is 2/3x on DGX-1 — the cross-group reduction "
               "only has 2 links — but 4/3x on DGX-A100; both need twice "
               "the memory, so MG-GCN implements 1D.)\n";

  // Partitioner extension: the §5.1 arithmetic assumes every stage moves a
  // full nd/P block. With the compacted exchange the rotation only moves
  // ghost rows, so the partitioner's cut directly prices the rotation.
  const auto mode = core::parse_part_mode(cli.get("part"));
  if (!mode.has_value()) {
    std::cerr << "unknown --part mode: " << cli.get("part") << '\n';
    return 1;
  }
  const std::int64_t n = cli.get_int("n");
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(cli.get_int("d")) * 4;
  util::Rng rng(1);
  const sparse::Csr adjacency = sparse::Csr::from_coo(
      graph::bter_like({.n = n,
                        .avg_degree = 8.0,
                        .degree_sigma = 0.6,
                        .clustering = 0.9},
                       rng)
          .edges);
  core::PartitionerOptions popt;
  popt.parts = gpus;

  std::cout << "\ncompacted rotation (ghost rows only), clustered graph "
               "(BTER k=8 sigma=0.6 c=0.9), "
            << gpus << " GPUs:\n";
  util::Table ghost_table({"Machine", "partitioner", "ghost rows",
                           "avg density", "rotation (ms)", "vs dense 1D"});
  for (const auto& machine : {sim::dgx_v100(), sim::dgx_a100()}) {
    const comm::Topology topology(machine.interconnect);
    const Analysis a = analyze(topology, nd_bytes, gpus);
    for (const core::PartMode candidate :
         {core::PartMode::kRandom, *mode}) {
      const core::PartitionResult plan =
          core::plan_partition(adjacency, candidate, popt);
      const core::PartitionCutStats stats = core::partition_cut_stats(
          adjacency, plan.perm, plan.partition, /*devices_per_node=*/0);
      // P sendv stages: each root sends its ghost rows to P-1 peers.
      const double rotation = topology.sendv_seconds(
          static_cast<std::uint64_t>(stats.ghost_rows) * row_bytes,
          gpus * (gpus - 1), gpus);
      ghost_table.add_row(
          {machine.name, core::part_mode_name(plan.mode),
           std::to_string(stats.ghost_rows),
           util::format_double(stats.avg_ghost_density, 3),
           util::format_double(rotation * 1e3, 2),
           util::format_speedup(a.one_d / rotation)});
    }
  }
  std::cout << ghost_table.to_string()
            << "(the §5.2 random permutation densifies every tile; the "
               "locality cut is what makes the compacted rotation beat the "
               "dense 1D bound.)\n";
  return 0;
}
