// Empirical counterpart of §5.1: run the implemented 1D and 1.5D (c = 2)
// distributed SpMMs on both machines and compare the measured ratio with
// the paper's closed-form prediction (1.5D = 2/3x of 1D on DGX-1, 4/3x on
// DGX-A100, at 2x dense-input memory).
#include <array>
#include <iostream>

#include "bench/common.hpp"
#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/dist_spmm_15d.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

struct Measured {
  double total = 0.0;
  double comm = 0.0;  // max over devices of summed collective time
};

Measured measure(sim::Machine& machine, double t0) {
  machine.synchronize();
  Measured m;
  m.total = machine.sim_time() - t0;
  for (int r = 0; r < machine.num_devices(); ++r) {
    double comm = 0.0;
    for (const auto& rec : machine.trace().device_records(r, t0)) {
      if (rec.kind == sim::TaskKind::kComm) comm += rec.duration();
    }
    m.comm = std::max(m.comm, comm);
  }
  return m;
}

Measured time_1d(const sim::MachineProfile& profile, const sparse::Csr& op,
               std::int64_t d, int gpus) {
  sim::Machine machine(profile, gpus, sim::ExecutionMode::kPhantom);
  comm::Communicator comm(machine);
  const auto partition = core::PartitionVector::uniform(op.rows(), gpus);
  core::DistSpmm spmm(machine, comm, core::make_tile_grid(op, partition));

  std::vector<sim::DeviceBuffer> input, output, bc1, bc2;
  for (int r = 0; r < gpus; ++r) {
    sim::Device& dev = machine.device(r);
    input.emplace_back(dev,
                       static_cast<std::size_t>(partition.size(r) * d), "H");
    output.emplace_back(dev,
                        static_cast<std::size_t>(partition.size(r) * d), "C");
    bc1.emplace_back(
        dev, static_cast<std::size_t>(partition.max_part_size() * d), "BC1");
    bc2.emplace_back(
        dev, static_cast<std::size_t>(partition.max_part_size() * d), "BC2");
  }
  std::vector<std::array<sim::Event, 2>> readers(
      static_cast<std::size_t>(gpus));
  core::DistSpmm::Io io;
  for (auto& b : input) io.input.push_back(&b);
  for (auto& b : output) io.output.push_back(&b);
  for (auto& b : bc1) io.bc1.push_back(&b);
  for (auto& b : bc2) io.bc2.push_back(&b);
  io.d = d;
  io.slot_readers = &readers;
  const double t0 = machine.align_clocks();
  spmm.run(io);
  return measure(machine, t0);
}

Measured time_15d(const sim::MachineProfile& profile, const sparse::Csr& op,
                std::int64_t d, int gpus) {
  sim::Machine machine(profile, gpus, sim::ExecutionMode::kPhantom);
  core::DistSpmm15D spmm(machine, op);
  const auto& partition = spmm.partition();

  std::vector<sim::DeviceBuffer> input, output, bc;
  for (int r = 0; r < gpus; ++r) {
    sim::Device& dev = machine.device(r);
    const int block = spmm.block_of(r);
    input.emplace_back(
        dev, static_cast<std::size_t>(partition.size(block) * d), "H");
    output.emplace_back(
        dev, static_cast<std::size_t>(partition.size(block) * d), "C");
    bc.emplace_back(
        dev, static_cast<std::size_t>(partition.max_part_size() * d), "BC");
  }
  core::DistSpmm15D::Io io;
  for (auto& b : input) io.input.push_back(&b);
  for (auto& b : output) io.output.push_back(&b);
  for (auto& b : bc) io.bc1.push_back(&b);
  io.d = d;
  const double t0 = machine.align_clocks();
  spmm.run(io);
  return measure(machine, t0);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Ablation: measured 1D vs 1.5D distributed SpMM (the §5.1 decision)");
  cli.option("dataset", "Reddit", "dataset replica to partition");
  cli.option("d", "512", "dense width");
  cli.option("gpus", "8", "GPU count (even)");
  cli.option("scale", "0", "replica scale override");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const graph::DatasetSpec spec = graph::dataset_by_name(cli.get("dataset"));
  const double scale = cli.get_double("scale") > 0 ? cli.get_double("scale")
                                                   : bench::default_scale(spec);
  const graph::Dataset ds = bench::load_replica(spec, scale);
  const sparse::Csr op = ds.adjacency.normalize_gcn().transpose();
  const auto d = cli.get_int("d");
  const int gpus = static_cast<int>(cli.get_int("gpus"));

  bench::print_header("§5.1 (measured)",
                      "1D vs 1.5D distributed SpMM on both machines", spec,
                      ds.scale);

  // §5.1 reasons about the *communication* time; the comm-only column is
  // the apples-to-apples comparison with its prediction. Totals include
  // compute, where 1.5D's wider tiles also have worse cache behaviour.
  util::Table table({"Machine", "1D total/comm (ms)", "1.5D total/comm (ms)",
                     "comm speed 1.5D/1D", "paper's prediction (comm)"});
  for (const auto& [machine, prediction] :
       {std::pair{sim::dgx_v100(), "2/3x (slower)"},
        std::pair{sim::dgx_a100(), "4/3x (faster)"}}) {
    const sim::MachineProfile profile =
        sim::scale_profile(machine, ds.scale);
    const double x = ds.extrapolation();
    const Measured m1d = time_1d(profile, op, d, gpus);
    const Measured m15d = time_15d(profile, op, d, gpus);
    table.add_row(
        {machine.name,
         util::format_double(m1d.total * x * 1e3, 2) + " / " +
             util::format_double(m1d.comm * x * 1e3, 2),
         util::format_double(m15d.total * x * 1e3, 2) + " / " +
             util::format_double(m15d.comm * x * 1e3, 2),
         util::format_speedup(m1d.comm / m15d.comm), prediction});
  }
  std::cout << table.to_string()
            << "\n(1.5D also replicates H twofold; MG-GCN therefore ships "
               "1D only — §5.1.)\n";
  return 0;
}
