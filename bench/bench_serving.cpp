// Inference serving sweep: open-loop load x query skew x micro-batch policy
// x embedding-cache mode, reporting p50/p99 latency and sustained QPS.
//
// Each cell replays the same seeded request trace (serve::WorkloadGen)
// against a phantom-mode server built from a trainer on the dataset
// replica. Per-request dispatch is the latency baseline; the fixed and
// deadline batchers trade queueing delay for amortized gathers; the
// embedding cache converts remote store pulls into HBM reads.
//
// scripts/check_perf.py --serve gates the --json output: deadline batching
// must beat per-request QPS by the locked factor at equal-or-better p99 on
// >= 4 devices under saturating load, and the auto cache must never lose
// to off.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/inference_server.hpp"
#include "core/trainer.hpp"
#include "core/workload.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace mggcn;

namespace {

serve::QuerySkew parse_skew(const std::string& name) {
  if (name == "uniform") return serve::QuerySkew::kUniform;
  if (name == "zipf") return serve::QuerySkew::kZipf;
  throw InvalidArgumentError("invalid skew for --skews: '" + name +
                             "' (expected uniform or zipf)");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Inference serving: load x skew x batch policy x cache mode sweep");
  bench::add_dataset_options(cli, "Arxiv");
  cli.option("gpus", "4,8", "device counts");
  cli.option("loads", "20000,400000", "offered load (queries/s)");
  cli.option("skews", "uniform,zipf", "query distributions");
  cli.option("requests", "2048", "trace length per cell");
  cli.option("hidden", "64", "hidden width");
  cli.option("batch", "16", "micro-batch cap");
  cli.option("deadline", "0.002", "per-request deadline (s)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  bench::print_header(
      "serving",
      "open-loop node-classification serving, batch cap " + cli.get("batch") +
          ", deadline " + cli.get("deadline") + "s, DGX-V100");

  core::TrainConfig config;
  config.hidden_dims = {cli.get_int("hidden")};
  config.seed = 7;

  const std::int64_t n_requests = cli.get_int("requests");
  const std::int64_t max_batch = cli.get_int("batch");
  const double deadline = cli.get_double("deadline");

  util::Table table({"Dataset", "GPUs", "load", "skew", "policy", "cache",
                     "QPS", "p50(us)", "p99(us)", "miss%", "hit rate",
                     "batch"});
  std::ostringstream json_rows;
  bool first_row = true;

  for (const auto& name : cli.get_list("datasets")) {
    const graph::Dataset ds = bench::load_cli_replica(cli, name);
    std::cout << "  [" << ds.spec.name << " replica: n=" << ds.n()
              << " nnz=" << ds.nnz() << " scale=1/" << ds.scale << "]\n";

    for (const auto gpus : cli.get_int_list("gpus")) {
      sim::Machine machine(sim::dgx_v100(), static_cast<int>(gpus),
                           sim::ExecutionMode::kPhantom);
      core::MgGcnTrainer trainer(machine, ds, config);
      trainer.run_forward();

      for (const auto& load : cli.get_list("loads")) {
        for (const auto& skew : cli.get_list("skews")) {
          serve::WorkloadOptions wl;
          wl.rate_qps = std::stod(load);
          wl.skew = parse_skew(skew);
          wl.deadline = deadline;
          wl.seed = 11;
          serve::WorkloadGen gen(ds.n(), wl);
          const auto requests = gen.generate(n_requests);

          for (const core::BatchPolicy policy :
               {core::BatchPolicy::kPerRequest, core::BatchPolicy::kFixed,
                core::BatchPolicy::kDeadline}) {
            for (const core::ServeCacheMode cache :
                 {core::ServeCacheMode::kOff, core::ServeCacheMode::kAuto}) {
              core::ServeOptions options;
              options.policy = policy;
              options.max_batch = max_batch;
              options.cache_mode = cache;
              core::InferenceServer server(machine, trainer, ds, options);
              const auto stats = server.serve(requests);

              table.add_row(
                  {ds.spec.name, std::to_string(gpus), load, skew,
                   core::batch_policy_name(policy),
                   core::serve_cache_mode_name(cache),
                   util::format_double(stats.serve_qps, 0),
                   util::format_double(stats.serve_p50_latency * 1e6, 1),
                   util::format_double(stats.serve_p99_latency * 1e6, 1),
                   util::format_double(stats.serve_deadline_miss_rate * 100,
                                       1),
                   util::format_double(stats.serve_cache_hit_rate, 3),
                   util::format_double(stats.serve_mean_batch_size, 1)});

              if (!first_row) json_rows << ",\n";
              first_row = false;
              json_rows
                  << "    {\"dataset\": \"" << ds.spec.name
                  << "\", \"gpus\": " << gpus << ", \"load_qps\": " << load
                  << ", \"skew\": \"" << skew << "\", \"policy\": \""
                  << core::batch_policy_name(policy) << "\", \"cache_mode\": \""
                  << core::serve_cache_mode_name(cache)
                  << "\", \"resolved_cache\": \""
                  << core::serve_cache_mode_name(server.cache_mode_used())
                  << "\", \"requests\": " << stats.serve_requests
                  << ", \"batches\": " << stats.serve_batches
                  << ", \"mean_batch\": " << stats.serve_mean_batch_size
                  << ", \"qps\": " << stats.serve_qps
                  << ", \"p50\": " << stats.serve_p50_latency
                  << ", \"p99\": " << stats.serve_p99_latency
                  << ", \"max_latency\": " << stats.serve_max_latency
                  << ", \"deadline_miss_rate\": "
                  << stats.serve_deadline_miss_rate
                  << ", \"hit_rate\": " << stats.serve_cache_hit_rate << "}";
            }
          }
        }
      }
    }
  }

  std::cout << '\n'
            << table.to_string()
            << "\n(per-request is the latency floor at low load; under "
               "saturating load the deadline batcher amortizes gathers into "
               "micro-batches, raising QPS without spending the p99 budget; "
               "the cache trims remote-pull time from every batch.)\n";
  return bench::write_json(cli, "serving", json_rows.str()) ? 0 : 1;
}
