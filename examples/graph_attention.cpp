// Graph attention on the MG-GCN substrate (the paper's §7 future-work
// direction): build an attention operator with SDDMM + edge softmax, apply
// it as an SpMM, and compare its behaviour against the fixed GCN operator.
//
//   ./build/examples/graph_attention
#include <iostream>

#include "core/gat_layer.hpp"
#include "dense/kernels.hpp"
#include "graph/datasets.hpp"
#include "sparse/sddmm.hpp"
#include "sparse/spmm.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main() {
  graph::DatasetOptions options;
  options.scale = 128.0;
  options.seed = 5;
  const graph::Dataset ds = graph::make_dataset(graph::arxiv(), options);
  std::cout << "Arxiv replica: n=" << ds.n() << ", nnz=" << ds.nnz()
            << "\n\n";

  // A single additive-attention head and a dot-product head.
  for (const auto [kind, name] :
       {std::pair{core::AttentionKind::kAdditive, "additive (GATv1)"},
        std::pair{core::AttentionKind::kDotProduct, "scaled dot-product"}}) {
    core::GraphAttentionLayer layer(ds.adjacency, ds.spec.feature_dim, 32,
                                    kind, 17);
    const dense::HostMatrix out = layer.forward(ds.features.view());

    // How far does learned attention deviate from eq. (2)'s uniform 1/deg?
    const sparse::Csr& attention = layer.last_attention();
    const sparse::Csr uniform = ds.adjacency.normalize_gcn().transpose();
    double max_dev = 0.0, mean_dev = 0.0;
    const auto a_values = attention.values();
    const auto u_values = uniform.values();
    for (std::size_t e = 0; e < a_values.size(); ++e) {
      const double dev = std::abs(
          static_cast<double>(a_values[e]) - u_values[e]);
      max_dev = std::max(max_dev, dev);
      mean_dev += dev;
    }
    mean_dev /= static_cast<double>(a_values.size());

    std::cout << name << " attention:\n"
              << "  output shape " << out.rows() << " x " << out.cols()
              << ", |deviation from uniform 1/deg| mean "
              << util::format_double(mean_dev, 4) << ", max "
              << util::format_double(max_dev, 4) << '\n';
  }

  // The SDDMM kernel cost at the paper's scales — what §7 proposes to
  // accelerate next.
  const auto cost = sparse::sddmm_cost(ds.nnz(), ds.n(), ds.n(), 32);
  std::cout << "\nSDDMM on this replica (d=32): "
            << util::format_bytes(static_cast<std::uint64_t>(
                   cost.gather_bytes))
            << " gathered, "
            << util::format_double(cost.flops / 1e6, 1) << " MFLOP\n";
  return 0;
}
