// Reddit-comparable end-to-end run (§6's transductive-Reddit experiment):
// trains the 2-layer hidden-16 model the paper uses in the DistGNN
// comparison on a Reddit-shaped replica across 8 simulated V100s, reports
// per-epoch loss/accuracy plus accumulated *simulated* training time, and
// finishes with held-out test accuracy from the gathered logits.
//
// The paper's run: 95.95% train accuracy after 466 epochs, one minute of
// wall-clock on eight V100s (20 s of it preprocessing). Our replica is a
// synthetic stand-in, so accuracy converges to the replica's Bayes limit
// rather than 95.95 — the pipeline (preprocess, train to convergence,
// evaluate transductively) is the same.
//
//   ./build/examples/reddit_comparable [epochs] [scale]
#include <cstdlib>
#include <iostream>

#include "core/gcn_kernels.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 120;
  const double scale = argc > 2 ? std::atof(argv[2]) : 512.0;

  graph::DatasetOptions options;
  options.scale = scale;
  options.seed = 42;
  options.feature_snr = 2.0;
  const graph::Dataset dataset =
      graph::make_dataset(graph::reddit(), options);
  std::cout << "Reddit replica: n=" << dataset.n() << ", nnz="
            << dataset.nnz() << ", d=" << dataset.spec.feature_dim
            << ", classes=" << dataset.spec.num_classes << "\n";

  sim::Machine machine(sim::dgx_v100(), 8, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, dataset, core::model_hidden16());

  util::WallTimer wall;
  double sim_total = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const core::EpochStats stats = trainer.train_epoch();
    sim_total += stats.sim_seconds;
    if (epoch % 20 == 0 || epoch == epochs - 1) {
      std::cout << "epoch " << epoch << "  loss "
                << util::format_double(stats.loss, 3) << "  train acc "
                << util::format_double(stats.train_accuracy, 3) << '\n';
    }
  }

  // Transductive evaluation: forward over the full graph, gather the
  // logits in original vertex order, score the test mask.
  trainer.run_forward();
  const dense::HostMatrix logits = trainer.gather_logits();
  const core::LossResult test = core::evaluate_accuracy(
      logits.view(), dataset.labels.data(), dataset.test_mask.data());
  const core::LossResult val = core::evaluate_accuracy(
      logits.view(), dataset.labels.data(), dataset.val_mask.data());

  std::cout << "\nval accuracy  "
            << util::format_double(
                   static_cast<double>(val.correct) / val.counted, 4)
            << "\ntest accuracy "
            << util::format_double(
                   static_cast<double>(test.correct) / test.counted, 4)
            << "\nsimulated training time (8x V100, " << epochs
            << " epochs): " << util::format_seconds(sim_total)
            << "\nhost wall-clock: " << util::format_seconds(
                   wall.elapsed_seconds())
            << "\npreprocessing: "
            << util::format_seconds(trainer.preprocessing_seconds()) << '\n';
  return 0;
}
