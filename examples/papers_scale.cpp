// Capacity planning at Papers scale (§6.5's headline capability: MG-GCN is
// the only system that fits ogbn-papers100M — 111M vertices, 1.6B edges —
// into a single DGX-A100).
//
// Runs in phantom mode: the scheduler, memory accounting, and cost model
// execute against a structure-only replica with the machine profile scaled
// by the same factor, so the OOM boundary and the epoch-time estimate are
// the full-scale ones. Sweeps GPU counts and hidden sizes to find what
// fits, reproducing the paper's choice of hidden=208 as the largest
// 3-layer model that fits 8x A100.
//
//   ./build/examples/papers_scale [scale]
#include <cstdlib>
#include <iostream>

#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace mggcn;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 4096.0;

  graph::DatasetOptions options;
  options.scale = scale;
  options.with_features = false;  // structure-only, phantom execution
  const graph::Dataset dataset =
      graph::make_dataset(graph::papers(), options);
  std::cout << "Papers replica: n=" << dataset.n() << ", nnz="
            << dataset.nnz() << " (structure scale 1/" << dataset.scale
            << "; capacities and times below are full-scale)\n\n";

  util::Table table({"hidden", "GPUs", "fits?", "peak GiB/GPU", "epoch(s)"});
  for (const std::int64_t hidden : {128, 208, 256}) {
    for (const int gpus : {4, 8}) {
      core::TrainConfig config;
      config.hidden_dims = {hidden, hidden};
      try {
        // Scale the A100 capacities to the replica, holding the replicated
        // weight/optimizer state at its true (scale-invariant) size.
        const sim::MachineProfile profile = sim::scale_profile(
            sim::dgx_a100(), dataset.scale,
            core::replicated_state_bytes(
                core::layer_dims(dataset, config)));
        sim::Machine machine(profile, gpus, sim::ExecutionMode::kPhantom);
        core::MgGcnTrainer trainer(machine, dataset, config);
        trainer.train_epoch();
        const core::EpochStats stats = trainer.train_epoch();
        table.add_row(
            {std::to_string(hidden), std::to_string(gpus), "yes",
             util::format_double(static_cast<double>(stats.peak_memory_bytes) *
                                     dataset.scale / (1ULL << 30),
                                 1),
             util::format_double(stats.sim_seconds * dataset.scale, 2)});
      } catch (const OutOfMemoryError&) {
        table.add_row({std::to_string(hidden), std::to_string(gpus),
                       "OOM", "-", "-"});
      }
    }
  }

  std::cout << table.to_string()
            << "\n(paper: hidden=208 is the largest 3-layer model fitting "
               "8x A100; epoch 2.89 s)\n";
  return 0;
}
