// Using the substrate directly: define a custom machine (a hypothetical
// 4-GPU box with a weak interconnect), drive the NCCL-like communicator and
// the staged distributed SpMM by hand, and inspect the execution trace —
// the workflow for extending MG-GCN to new hardware profiles.
//
//   ./build/examples/custom_topology
#include <array>
#include <iostream>

#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace mggcn;

int main() {
  // A machine profile from scratch: 4 accelerators with V100-like compute
  // but only one PCIe-class link each.
  sim::MachineProfile profile;
  profile.name = "pcie-box";
  profile.device = {.name = "generic-16GB",
                    .memory_bytes = 16ULL << 30,
                    .memory_bandwidth = 700e9,
                    .l2_bytes = 4ULL << 20,
                    .peak_flops = 10e12,
                    .kernel_launch_overhead = 10e-6};
  profile.interconnect = {.kind = sim::InterconnectKind::kSwitch,
                          .links_per_device = 1,
                          .link_bandwidth = 16e9,  // PCIe 3.0 x16-ish
                          .efficiency = 0.85};
  profile.max_devices = 4;

  const int gpus = 4;
  sim::Machine machine(profile, gpus, sim::ExecutionMode::kReal);
  comm::Communicator comm(machine);

  // A random power-law graph and its 1D row tiling.
  util::Rng rng(5);
  graph::BterParams params{.n = 4096, .avg_degree = 32.0,
                           .degree_sigma = 1.0, .clustering = 0.5};
  const sparse::Csr adj =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
  const sparse::Csr op = adj.normalize_gcn().transpose();
  const auto partition = core::PartitionVector::uniform(op.rows(), gpus);
  core::DistSpmm spmm(machine, comm, core::make_tile_grid(op, partition));
  std::cout << "tile-row nnz imbalance: "
            << util::format_double(spmm.grid().imbalance(), 2) << '\n';

  // Dense blocks: H filled with ones so the product of the normalized
  // adjacency must be (nearly) all ones again — a quick sanity check.
  const std::int64_t d = 64;
  std::vector<sim::DeviceBuffer> input, output, bc1, bc2;
  for (int r = 0; r < gpus; ++r) {
    sim::Device& dev = machine.device(r);
    const auto block = static_cast<std::size_t>(partition.size(r) * d);
    input.emplace_back(dev, block, "H");
    output.emplace_back(dev, block, "AH");
    bc1.emplace_back(dev,
                     static_cast<std::size_t>(partition.max_part_size() * d),
                     "BC1");
    bc2.emplace_back(dev,
                     static_cast<std::size_t>(partition.max_part_size() * d),
                     "BC2");
    for (float& x : input.back().span()) x = 1.0f;
  }

  std::vector<std::array<sim::Event, 2>> slot_readers(
      static_cast<std::size_t>(gpus));
  core::DistSpmm::Io io;
  for (auto& b : input) io.input.push_back(&b);
  for (auto& b : output) io.output.push_back(&b);
  for (auto& b : bc1) io.bc1.push_back(&b);
  for (auto& b : bc2) io.bc2.push_back(&b);
  io.d = d;
  io.overlap = true;
  io.compute_bandwidth_scale = 0.9;
  io.slot_readers = &slot_readers;

  const double t0 = machine.align_clocks();
  spmm.run(io);
  machine.synchronize();
  const double t1 = machine.sim_time();

  double max_err = 0.0;
  for (auto& buf : output) {
    for (const float x : buf.span()) {
      max_err = std::max(max_err, std::abs(static_cast<double>(x) - 1.0));
    }
  }
  std::cout << "distributed A_hat^T * ones: max |x - 1| = " << max_err
            << " (column-normalized operator preserves ones)\n"
            << "simulated SpMM time on the PCIe box: "
            << util::format_seconds(t1 - t0) << "\n\n"
            << machine.trace().render_timeline(t0, t1, 80);

  // The weak interconnect makes the broadcasts dominate — compare against
  // a DGX-A100 with the identical workload.
  sim::Machine dgx(sim::dgx_a100(), gpus, sim::ExecutionMode::kPhantom);
  comm::Communicator dgx_comm(dgx);
  core::DistSpmm dgx_spmm(dgx, dgx_comm, core::make_tile_grid(op, partition));
  std::vector<sim::DeviceBuffer> di, doo, db1, db2;
  for (int r = 0; r < gpus; ++r) {
    sim::Device& dev = dgx.device(r);
    const auto block = static_cast<std::size_t>(partition.size(r) * d);
    di.emplace_back(dev, block, "H");
    doo.emplace_back(dev, block, "AH");
    db1.emplace_back(dev,
                     static_cast<std::size_t>(partition.max_part_size() * d),
                     "BC1");
    db2.emplace_back(dev,
                     static_cast<std::size_t>(partition.max_part_size() * d),
                     "BC2");
  }
  std::vector<std::array<sim::Event, 2>> dgx_readers(
      static_cast<std::size_t>(gpus));
  core::DistSpmm::Io dio = io;
  dio.input.clear();
  dio.output.clear();
  dio.bc1.clear();
  dio.bc2.clear();
  for (auto& b : di) dio.input.push_back(&b);
  for (auto& b : doo) dio.output.push_back(&b);
  for (auto& b : db1) dio.bc1.push_back(&b);
  for (auto& b : db2) dio.bc2.push_back(&b);
  dio.slot_readers = &dgx_readers;

  const double u0 = dgx.align_clocks();
  dgx_spmm.run(dio);
  dgx.synchronize();
  std::cout << "\nsame SpMM on DGX-A100: "
            << util::format_seconds(dgx.sim_time() - u0) << '\n';
  return 0;
}
