// Quickstart: train a 2-layer GCN on a synthetic citation graph across 4
// simulated GPUs and watch loss, accuracy, and the simulated epoch time.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/format.hpp"

using namespace mggcn;

int main() {
  // 1. A dataset. Replicas of the paper's benchmarks are generated with
  //    shape parameters from Table 1; here a small Arxiv-like graph with
  //    features and labels (scale 64 => ~2.6k vertices).
  graph::DatasetOptions options;
  options.scale = 64.0;
  options.seed = 1;
  options.feature_snr = 2.0;
  const graph::Dataset dataset =
      graph::make_dataset(graph::arxiv(), options);
  std::cout << "dataset: " << dataset.spec.name << " replica, n="
            << dataset.n() << ", nnz=" << dataset.nnz() << "\n";

  // 2. A machine. Real execution mode: kernels compute actual numbers on
  //    host threads; time advances on the simulated DGX-1 clock.
  sim::Machine machine(sim::dgx_v100(), /*num_devices=*/4,
                       sim::ExecutionMode::kReal);

  // 3. A trainer. Defaults enable all MG-GCN optimizations: random
  //    permutation, comm/comp overlap, buffer reuse, GeMM/SpMM reorder,
  //    first-layer backward-SpMM skip.
  core::TrainConfig config;
  config.hidden_dims = {64};
  config.learning_rate = 1e-2;
  core::MgGcnTrainer trainer(machine, dataset, config);
  std::cout << "preprocessing took "
            << util::format_seconds(trainer.preprocessing_seconds())
            << ", tile imbalance "
            << util::format_double(trainer.tile_imbalance(), 2) << "\n\n";

  // 4. Train.
  for (int epoch = 0; epoch < 40; ++epoch) {
    const core::EpochStats stats = trainer.train_epoch();
    if (epoch % 5 == 0 || epoch == 39) {
      std::cout << "epoch " << epoch << "  loss "
                << util::format_double(stats.loss, 3) << "  train acc "
                << util::format_double(stats.train_accuracy, 3)
                << "  sim epoch time "
                << util::format_seconds(stats.sim_seconds) << '\n';
    }
  }

  std::cout << "\npeak device memory: "
            << util::format_bytes(trainer.peak_memory_bytes()) << '\n';
  return 0;
}
