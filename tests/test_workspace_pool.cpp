// Workspace-pool tests: allocator edge cases (zero-byte, budget-exact,
// split/coalesce round-trips), stream-ordered reuse under the hazard
// checker (including the negative case: an omitted ready() wait is
// flagged), the Device::release_memory underflow counter, the documented
// L+3 memory slope under MGGCN_POOL=off vs the pooled reduction, elastic
// 4→3 recovery returning every block, and bit-identical numerics across
// MGGCN_POOL=off|on|auto × sched-fuzz seeds for all three tenants.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/elastic.hpp"
#include "core/inference_server.hpp"
#include "core/sampled_pipeline.hpp"
#include "core/trainer.hpp"
#include "core/workload.hpp"
#include "graph/datasets.hpp"
#include "mem/pool_mode.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config() {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  return config;
}

core::SampledPipeline::Options pipeline_options() {
  core::SampledPipeline::Options options;
  options.hidden_dims = {16, 16};
  options.fanout = {8, 8, 8};
  options.batch_size = 48;
  options.seed = 3;
  return options;
}

/// RAII environment override (for the sched-fuzz axis).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

constexpr std::size_t kF = sizeof(float);

// --- allocator edge cases ------------------------------------------------

TEST(WorkspacePool, ZeroByteAcquireReservesNothing) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  mem::WorkspacePool pool(machine.device(0));
  mem::PooledBuffer lease = pool.acquire(0, "empty");
  EXPECT_TRUE(lease.empty());
  EXPECT_EQ(lease.data(), nullptr);
  EXPECT_EQ(lease.access().buffer, 0u);
  EXPECT_EQ(pool.stats().reserved_bytes, 0u);
  EXPECT_EQ(pool.stats().live_buffers, 0u);
  lease.recycle();  // no-op, must not crash
}

TEST(WorkspacePool, BudgetExactFitThenLoudOom) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  mem::WorkspacePool pool(machine.device(0), /*budget_bytes=*/1024 * kF);

  mem::PooledBuffer exact = pool.acquire(1024, "exact");
  EXPECT_EQ(pool.stats().in_use_bytes, 1024 * kF);
  EXPECT_EQ(pool.available_bytes(), 0u);

  try {
    mem::PooledBuffer over = pool.acquire(1, "over");
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    // Loud OOM: the message carries the pool ledger.
    const std::string what = e.what();
    EXPECT_NE(what.find("exact"), std::string::npos) << what;
    EXPECT_NE(what.find("budget"), std::string::npos) << what;
  }

  // Returning the block makes the same request serviceable again, without
  // growing the reservation.
  exact.recycle();
  mem::PooledBuffer again = pool.acquire(1024, "again");
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  EXPECT_EQ(pool.stats().reuse_hits, 1u);
  again.recycle();
}

TEST(WorkspacePool, SplitThenCoalesceRoundTrip) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  mem::WorkspacePool pool(machine.device(0));

  mem::PooledBuffer whole = pool.acquire(1024, "whole");
  whole.recycle();

  // A smaller request splits the free 1024-block; the remainder serves the
  // complementary request without a new slab.
  mem::PooledBuffer head = pool.acquire(256, "head");
  EXPECT_EQ(pool.stats().splits, 1u);
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  mem::PooledBuffer tail = pool.acquire(768, "tail");
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  EXPECT_EQ(pool.stats().reserved_bytes, 1024 * kF);
  EXPECT_EQ(pool.stats().in_use_bytes, 1024 * kF);

  // Releasing both halves coalesces them back into one block that can
  // serve the original request whole.
  head.recycle();
  tail.recycle();
  EXPECT_GE(pool.stats().coalesces, 1u);
  mem::PooledBuffer reunited = pool.acquire(1024, "reunited");
  EXPECT_EQ(pool.stats().slab_allocs, 1u);
  EXPECT_EQ(pool.stats().reserved_bytes, 1024 * kF);
  reunited.recycle();
}

TEST(WorkspacePool, TrimReturnsWhollyFreeSlabsBeforeGrowing) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  sim::Device& device = machine.device(0);
  const std::uint64_t base = device.memory_used();
  mem::WorkspacePool pool(device);

  mem::PooledBuffer small = pool.acquire(512, "small");
  small.recycle();
  EXPECT_EQ(device.memory_used(), base + 512 * kF);

  // A request no free block fits triggers trim-before-grow: the free slab
  // is returned to the device ledger before the larger one is reserved,
  // so the ledger peak stays at max(static sizes), not their sum.
  mem::PooledBuffer large = pool.acquire(4096, "large");
  EXPECT_EQ(pool.stats().trims, 1u);
  EXPECT_EQ(device.memory_used(), base + 4096 * kF);
  EXPECT_EQ(pool.stats().reserved_bytes, 4096 * kF);
  large.recycle();
}

// --- stream-ordered reuse under the hazard checker -----------------------

TEST(WorkspacePool, CrossStreamReuseWithDeclaredWaitIsHazardClean) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  sim::Device& device = machine.device(0);
  mem::WorkspacePool pool(device);

  mem::PooledBuffer first = pool.acquire(64, "first");
  sim::TaskDesc writer;
  writer.label = "writer-a";
  writer.writes.push_back(first.access());
  const sim::Event done = device.comm_stream().enqueue(std::move(writer));
  first.recycle(done);

  // Reuse on the other stream: the lease carries the previous tenant's
  // completion event; declaring it orders the recycling.
  mem::PooledBuffer second = pool.acquire(64, "second");
  ASSERT_FALSE(second.ready().empty());
  sim::TaskDesc next;
  next.label = "writer-b";
  mem::append_ready(&next.waits, second);
  next.writes.push_back(second.access());
  device.compute_stream().enqueue(std::move(next));
  second.recycle(device.compute_stream().record_event());

  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(WorkspacePool, CrossStreamReuseWithoutDeclaredWaitIsFlagged) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  sim::Device& device = machine.device(0);
  mem::WorkspacePool pool(device);

  mem::PooledBuffer first = pool.acquire(64, "first");
  sim::TaskDesc writer;
  writer.label = "writer-a";
  writer.writes.push_back(first.access());
  const sim::Event done = device.comm_stream().enqueue(std::move(writer));
  first.recycle(done);

  // The block's hazard identity is stable across reuse, so a second tenant
  // that omits the ready() wait races with the first tenant's write — the
  // recycling itself is audited.
  mem::PooledBuffer second = pool.acquire(64, "second");
  EXPECT_EQ(second.access().buffer, first.access().buffer);
  sim::TaskDesc next;
  next.label = "writer-b";  // deliberately no waits
  next.writes.push_back(second.access());
  device.compute_stream().enqueue(std::move(next));
  second.recycle(device.compute_stream().record_event());

  machine.synchronize();
  EXPECT_GE(machine.trace().hazard_count(), 1u);
}

// --- satellite: release_memory underflow surfaces in the trace -----------

TEST(DeviceLedger, ReleaseUnderflowIsCounted) {
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kPhantom);
  sim::Device& device = machine.device(0);
  device.reserve_memory(128, "probe");
  EXPECT_EQ(machine.trace().pool_counters().release_underflows, 0u);
  device.release_memory(4096);  // more than reserved: accounting leak
  EXPECT_EQ(machine.trace().pool_counters().release_underflows, 1u);
  EXPECT_EQ(device.memory_used(), 0u);  // clamped, not wrapped
}

// --- the documented L+3 slope --------------------------------------------

std::uint64_t trainer_used_bytes(const graph::Dataset& ds, int hidden_layers,
                                 mem::PoolMode mode) {
  core::TrainConfig config = small_config();
  config.hidden_dims.assign(static_cast<std::size_t>(hidden_layers), 16);
  config.pool_mode = mode;
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kPhantom);
  core::MgGcnTrainer trainer(machine, ds, config);
  std::uint64_t used = 0;
  for (int r = 0; r < machine.num_devices(); ++r) {
    used = std::max(used, machine.device(r).memory_used());
  }
  return used;
}

TEST(PoolAccounting, LPlusThreeSlopeUnchangedUnderOff) {
  const graph::Dataset ds = small_dataset();
  // Adding one hidden layer (width h) to the L+3 scheme adds exactly one
  // activation buffer (rows0 x h) plus the layer's replicated model state
  // (W, Wg, m, v: four h x h matrices). Everything else — X, HW, the
  // broadcast slots — is sized by maxima that a constant-width chain does
  // not move.
  const std::uint64_t l2 = trainer_used_bytes(ds, 2, mem::PoolMode::kOff);
  const std::uint64_t l3 = trainer_used_bytes(ds, 3, mem::PoolMode::kOff);
  const std::uint64_t l4 = trainer_used_bytes(ds, 4, mem::PoolMode::kOff);

  core::TrainConfig probe = small_config();
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kPhantom);
  core::MgGcnTrainer trainer(machine, ds, probe);
  const std::int64_t rows0 = trainer.partition().size(0);
  const std::uint64_t expected = (static_cast<std::uint64_t>(rows0) * 16 +
                                  4ull * 16 * 16) *
                                 kF;
  EXPECT_EQ(l3 - l2, expected);
  EXPECT_EQ(l4 - l3, expected);
}

TEST(PoolAccounting, PooledPeakMatchesStaticForTheTrainer) {
  // The trainer's L+3 buffers are all live for the engine's lifetime, so
  // pooling cannot shrink them — but exact-size slabs and trim-before-grow
  // must keep the pooled ledger from ever exceeding the static one.
  const graph::Dataset ds = small_dataset();
  for (int layers : {2, 3, 4}) {
    const std::uint64_t off = trainer_used_bytes(ds, layers, mem::PoolMode::kOff);
    const std::uint64_t on = trainer_used_bytes(ds, layers, mem::PoolMode::kOn);
    EXPECT_LE(on, off) << layers << " hidden layers";
  }
}

std::uint64_t pipeline_peak_bytes(const graph::Dataset& ds, int layers,
                                  mem::PoolMode mode, double* loss) {
  core::SampledPipeline::Options options = pipeline_options();
  options.hidden_dims.assign(static_cast<std::size_t>(layers - 1), 16);
  options.fanout.assign(static_cast<std::size_t>(layers), 8);
  options.pool_mode = mode;
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  core::SampledPipeline pipeline(machine, ds, options);
  const core::EpochStats stats = pipeline.train_epoch();
  if (loss != nullptr) *loss = stats.loss;
  return stats.peak_memory_bytes;
}

TEST(PoolAccounting, PipelinePeakStrictlyLowerPooledForDeepModels) {
  const graph::Dataset ds = small_dataset();
  for (int layers : {3, 4}) {
    double loss_off = 0.0;
    double loss_on = 0.0;
    const std::uint64_t off =
        pipeline_peak_bytes(ds, layers, mem::PoolMode::kOff, &loss_off);
    const std::uint64_t on =
        pipeline_peak_bytes(ds, layers, mem::PoolMode::kOn, &loss_on);
    EXPECT_LT(on, off) << layers << " layers";
    // Recycling changes where scratch lives, never what it holds.
    EXPECT_EQ(loss_off, loss_on) << layers << " layers";
  }
}

TEST(PoolAccounting, PipelineReportsPooledBudgetSplit) {
  const graph::Dataset ds = small_dataset();
  core::SampledPipeline::Options options = pipeline_options();
  options.pool_mode = mem::PoolMode::kOn;
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  core::SampledPipeline pipeline(machine, ds, options);
  const core::EpochStats stats = pipeline.train_epoch();
  const auto breakdown = pipeline.account_memory();
  EXPECT_GT(breakdown.pool_reserved_bytes, 0u);
  EXPECT_GT(breakdown.pool_in_use_bytes, 0u);
  EXPECT_GE(breakdown.pool_reserved_bytes, breakdown.pool_in_use_bytes);
  EXPECT_GT(stats.pool_peak_bytes, 0u);
  EXPECT_GT(stats.pool_reuse_hits, 0u);

  core::SampledPipeline::Options off = pipeline_options();
  off.pool_mode = mem::PoolMode::kOff;
  sim::Machine machine_off(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  core::SampledPipeline static_pipeline(machine_off, ds, off);
  const core::EpochStats stats_off = static_pipeline.train_epoch();
  const auto breakdown_off = static_pipeline.account_memory();
  EXPECT_EQ(breakdown_off.pool_reserved_bytes, 0u);
  EXPECT_EQ(stats_off.pool_peak_bytes, 0u);
  EXPECT_EQ(stats_off.pool_reuse_hits, 0u);
}

// --- elastic recovery returns every block --------------------------------

TEST(PoolElastic, EngineTeardownReturnsAllBlocks) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  auto pools = mem::PoolSet::create(machine);
  {
    core::TrainConfig config = small_config();
    config.pool_mode = mem::PoolMode::kAuto;
    config.pool = pools;
    core::MgGcnTrainer trainer(machine, ds, config);
    trainer.train(1);
    bool any_live = false;
    for (int r = 0; r < pools->size(); ++r) {
      any_live = any_live || pools->pool(r).stats().live_buffers > 0;
    }
    EXPECT_TRUE(any_live);
  }
  for (int r = 0; r < pools->size(); ++r) {
    EXPECT_EQ(pools->pool(r).stats().live_buffers, 0u) << "rank " << r;
    EXPECT_EQ(pools->pool(r).stats().in_use_bytes, 0u) << "rank " << r;
  }
}

TEST(PoolElastic, FourToThreeRecoveryRebuildsThePool) {
  const graph::Dataset ds = small_dataset();
  core::TrainConfig config = small_config();
  config.pool_mode = mem::PoolMode::kOn;

  core::ElasticTrainer fault_free(sim::dgx_v100(), 4, ds, config, nullptr);
  const auto base = fault_free.train(8);

  auto plan =
      std::make_shared<sim::FaultPlan>(sim::FaultPlan::parse("kill:2@3"));
  core::ElasticTrainer elastic(sim::dgx_v100(), 4, ds, config, plan);
  const auto recovered = elastic.train(8);

  EXPECT_EQ(elastic.num_devices(), 3);
  ASSERT_EQ(elastic.recoveries().size(), 1u);
  // The rebuilt 3-device trainer re-resolves its pool against the new
  // machine (a stale shared set would reference dead devices); training
  // numerics stay on the fault-free trajectory after replay.
  ASSERT_EQ(recovered.size(), base.size());
  EXPECT_NEAR(recovered.back().loss, base.back().loss,
              1e-6 * std::max(1.0, base.back().loss));
}

// --- bit-identity across MGGCN_POOL modes × sched-fuzz seeds -------------

std::vector<double> trainer_losses(const graph::Dataset& ds,
                                   mem::PoolMode mode) {
  core::TrainConfig config = small_config();
  config.pool_mode = mode;
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  core::MgGcnTrainer trainer(machine, ds, config);
  std::vector<double> losses;
  for (const auto& stats : trainer.train(3)) losses.push_back(stats.loss);
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
  return losses;
}

TEST(PoolParity, TrainerLossesBitIdenticalAcrossModesAndSeeds) {
  const graph::Dataset ds = small_dataset();
  const std::vector<double> baseline =
      trainer_losses(ds, mem::PoolMode::kOff);
  for (const char* seed : {"1", "2", "3"}) {
    ScopedEnv fuzz("MGGCN_SCHED_FUZZ", seed);
    for (const mem::PoolMode mode :
         {mem::PoolMode::kOff, mem::PoolMode::kOn, mem::PoolMode::kAuto}) {
      EXPECT_EQ(trainer_losses(ds, mode), baseline)
          << "seed " << seed << " mode " << static_cast<int>(mode);
    }
  }
}

std::vector<double> pipeline_losses(const graph::Dataset& ds,
                                    mem::PoolMode mode) {
  core::SampledPipeline::Options options = pipeline_options();
  options.pool_mode = mode;
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  core::SampledPipeline pipeline(machine, ds, options);
  std::vector<double> losses;
  for (const auto& stats : pipeline.train(2)) losses.push_back(stats.loss);
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
  return losses;
}

TEST(PoolParity, PipelineLossesBitIdenticalAcrossModesAndSeeds) {
  const graph::Dataset ds = small_dataset();
  const std::vector<double> baseline =
      pipeline_losses(ds, mem::PoolMode::kOff);
  for (const char* seed : {"1", "2", "3"}) {
    ScopedEnv fuzz("MGGCN_SCHED_FUZZ", seed);
    for (const mem::PoolMode mode :
         {mem::PoolMode::kOff, mem::PoolMode::kOn, mem::PoolMode::kAuto}) {
      EXPECT_EQ(pipeline_losses(ds, mode), baseline)
          << "seed " << seed << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PoolParity, ServingPredictionsBitIdenticalAcrossModes) {
  const graph::Dataset ds = small_dataset();
  serve::WorkloadOptions wl;
  wl.rate_qps = 50000.0;
  wl.seed = 11;
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(96);

  dense::HostMatrix baseline;
  for (const mem::PoolMode mode :
       {mem::PoolMode::kOff, mem::PoolMode::kOn, mem::PoolMode::kAuto}) {
    sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                         /*hazard_check=*/true);
    core::MgGcnTrainer trainer(machine, ds, small_config());
    trainer.train(2);
    trainer.run_forward();
    core::ServeOptions options;
    options.max_batch = 16;
    options.pool_mode = mode;
    core::InferenceServer server(machine, trainer, ds, options);
    server.serve(requests);
    ASSERT_GT(server.predictions().rows(), 0);
    EXPECT_EQ(machine.trace().hazard_count(), 0u)
        << "mode " << static_cast<int>(mode);
    if (baseline.rows() == 0) {
      baseline = server.predictions();
      continue;
    }
    for (std::int64_t i = 0; i < baseline.rows(); ++i) {
      for (std::int64_t c = 0; c < baseline.cols(); ++c) {
        ASSERT_EQ(server.predictions().at(i, c), baseline.at(i, c))
            << "mode " << static_cast<int>(mode) << " row " << i;
      }
    }
  }
}

// --- cross-component reuse: one budget, shared blocks --------------------

TEST(PoolSharing, ServingReusesTheTrainersRecycledBlocks) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  auto pools = mem::PoolSet::create(machine);

  core::TrainConfig config = small_config();
  config.pool_mode = mem::PoolMode::kAuto;
  config.pool = pools;
  auto trainer =
      std::make_unique<core::MgGcnTrainer>(machine, ds, config);
  trainer->train(2);
  trainer->run_forward();

  core::ServeOptions options;
  options.max_batch = 16;
  options.pool_mode = mem::PoolMode::kAuto;
  options.pool = pools;
  core::InferenceServer server(machine, *trainer, ds, options);

  const std::uint64_t hits_before = pools->pool(0).stats().reuse_hits;
  trainer.reset();  // trainer's blocks return to the shared pools

  serve::WorkloadOptions wl;
  wl.rate_qps = 50000.0;
  wl.seed = 11;
  serve::WorkloadGen gen(ds.n(), wl);
  server.serve(gen.generate(96));
  server.serve(gen.generate(96));  // second call reuses recycled scratch
  EXPECT_GT(pools->pool(0).stats().reuse_hits, hits_before);
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

}  // namespace
}  // namespace mggcn
