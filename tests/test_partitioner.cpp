// Locality-aware partitioner tests: the MGGCN_PART registry, cut/ghost
// accounting against a brute-force recount, the balance-slack contract,
// hierarchical (multi-node) behaviour, kAuto's pricing, and the trainer's
// bit-determinism within one mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/part_mode.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

sparse::Csr clustered_graph(std::int64_t n = 1200, double clustering = 0.9,
                            double sigma = 0.6, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  graph::BterParams params{.n = n,
                           .avg_degree = 10.0,
                           .degree_sigma = sigma,
                           .clustering = clustering};
  return sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
}

/// Brute-force recount of PartitionCutStats straight from the original
/// adjacency + (perm, partition), with per-(r, s) distinct-column sets.
PartitionCutStats brute_force_stats(const sparse::Csr& a,
                                    const std::vector<std::uint32_t>& perm,
                                    const PartitionVector& partition,
                                    int devices_per_node) {
  const int k = partition.parts();
  const auto node_of = [&](int part) {
    return devices_per_node > 0 ? part / devices_per_node : 0;
  };
  PartitionCutStats stats;
  std::vector<std::unordered_set<std::uint32_t>> ghosts(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  std::vector<std::int64_t> part_nnz(static_cast<std::size_t>(k), 0);
  for (std::int64_t u = 0; u < a.rows(); ++u) {
    const std::uint32_t nu = perm[static_cast<std::size_t>(u)];
    const int pu = partition.part_of(nu);
    for (std::int64_t e = a.row_ptr()[static_cast<std::size_t>(u)];
         e < a.row_ptr()[static_cast<std::size_t>(u) + 1]; ++e) {
      const std::uint32_t nv = perm[a.col_idx()[static_cast<std::size_t>(e)]];
      const int pv = partition.part_of(nv);
      ++part_nnz[static_cast<std::size_t>(pu)];
      if (pu == pv) continue;
      ++stats.cut_edges;
      if (node_of(pu) != node_of(pv)) ++stats.inter_node_cut_edges;
      ghosts[static_cast<std::size_t>(pu) * static_cast<std::size_t>(k) +
             static_cast<std::size_t>(pv)]
          .insert(nv);
    }
  }
  double density_sum = 0.0;
  for (int r = 0; r < k; ++r) {
    for (int s = 0; s < k; ++s) {
      if (r == s) continue;
      const auto count = static_cast<std::int64_t>(
          ghosts[static_cast<std::size_t>(r) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(s)]
              .size());
      stats.ghost_rows += count;
      if (node_of(r) != node_of(s)) stats.inter_node_ghost_rows += count;
      if (partition.size(s) > 0) {
        density_sum +=
            static_cast<double>(count) / static_cast<double>(partition.size(s));
      }
    }
  }
  if (k > 1) density_sum /= static_cast<double>(k) * (k - 1);
  stats.avg_ghost_density = density_sum;
  const double mean =
      static_cast<double>(a.nnz()) / static_cast<double>(std::max(1, k));
  stats.imbalance =
      mean > 0.0
          ? static_cast<double>(
                *std::max_element(part_nnz.begin(), part_nnz.end())) /
                mean
          : 1.0;
  return stats;
}

TEST(PartModeRegistry, RoundTripsAndRejectsUnknown) {
  const PartMode modes[] = {PartMode::kRandom, PartMode::kBalanced,
                            PartMode::kLocality, PartMode::kHier,
                            PartMode::kAuto};
  for (const PartMode mode : modes) {
    const auto parsed = parse_part_mode(part_mode_name(mode));
    ASSERT_TRUE(parsed.has_value()) << part_mode_name(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_part_mode("metis").has_value());
  EXPECT_FALSE(parse_part_mode("").has_value());

  ScopedPartMode scoped(PartMode::kLocality);
  EXPECT_EQ(part_mode(), PartMode::kLocality);
}

TEST(Partitioner, PermIsBijectionAndPartitionCoversEveryMode) {
  const sparse::Csr a = clustered_graph(500);
  const PartMode modes[] = {PartMode::kRandom, PartMode::kBalanced,
                            PartMode::kLocality, PartMode::kHier,
                            PartMode::kAuto};
  for (const PartMode mode : modes) {
    PartitionerOptions opt;
    opt.parts = 4;
    opt.devices_per_node = 2;
    opt.seed = 3;
    const PartitionResult result = plan_partition(a, mode, opt);
    ASSERT_EQ(result.perm.size(), static_cast<std::size_t>(a.rows()))
        << part_mode_name(mode);
    std::vector<std::uint8_t> hit(result.perm.size(), 0);
    for (const std::uint32_t v : result.perm) {
      ASSERT_LT(v, hit.size());
      ASSERT_EQ(hit[v], 0) << "duplicate image " << v;
      hit[v] = 1;
    }
    EXPECT_EQ(result.partition.parts(), 4);
    EXPECT_EQ(result.partition.total(), a.rows());
    for (std::int64_t v = 0; v < a.rows(); ++v) {
      const int owner = result.partition.part_of(v);
      EXPECT_GE(v, result.partition.begin(owner));
      EXPECT_LT(v, result.partition.end(owner));
    }
    EXPECT_NE(result.mode, PartMode::kAuto) << "kAuto must resolve";
  }
}

TEST(Partitioner, LocalityCutsFewerEdgesAndGhostsThanRandom) {
  const sparse::Csr a = clustered_graph();
  PartitionerOptions opt;
  opt.parts = 8;
  opt.seed = 11;
  const PartitionResult random = plan_partition(a, PartMode::kRandom, opt);
  const PartitionResult locality = plan_partition(a, PartMode::kLocality, opt);
  const PartitionCutStats rs =
      partition_cut_stats(a, random.perm, random.partition, 0);
  const PartitionCutStats ls =
      partition_cut_stats(a, locality.perm, locality.partition, 0);
  EXPECT_LT(ls.cut_edges, rs.cut_edges);
  EXPECT_LT(ls.ghost_rows, rs.ghost_rows);
  EXPECT_LT(ls.avg_ghost_density, rs.avg_ghost_density);
}

TEST(Partitioner, SlackIsRespected) {
  const sparse::Csr a = clustered_graph(2000, 0.85, 1.0);
  for (const double slack : {1.05, 1.15, 1.3}) {
    PartitionerOptions opt;
    opt.parts = 8;
    opt.slack = slack;
    opt.seed = 5;
    const PartitionResult result = plan_partition(a, PartMode::kLocality, opt);
    const PartitionCutStats stats =
        partition_cut_stats(a, result.perm, result.partition, 0);
    EXPECT_LE(stats.imbalance, slack + 1e-9) << "slack " << slack;
  }
}

TEST(Partitioner, CutStatsMatchBruteForceAndGridRecount) {
  const sparse::Csr a = clustered_graph(700);
  PartitionerOptions opt;
  opt.parts = 4;
  opt.devices_per_node = 2;
  opt.seed = 17;
  for (const PartMode mode : {PartMode::kRandom, PartMode::kLocality,
                              PartMode::kHier}) {
    const PartitionResult result = plan_partition(a, mode, opt);
    const PartitionCutStats fast =
        partition_cut_stats(a, result.perm, result.partition, 2);
    const PartitionCutStats brute =
        brute_force_stats(a, result.perm, result.partition, 2);
    EXPECT_EQ(fast.cut_edges, brute.cut_edges) << part_mode_name(mode);
    EXPECT_EQ(fast.inter_node_cut_edges, brute.inter_node_cut_edges);
    EXPECT_EQ(fast.ghost_rows, brute.ghost_rows);
    EXPECT_EQ(fast.inter_node_ghost_rows, brute.inter_node_ghost_rows);
    EXPECT_NEAR(fast.avg_ghost_density, brute.avg_ghost_density, 1e-12);
    EXPECT_NEAR(fast.imbalance, brute.imbalance, 1e-12);

    const sparse::Csr permuted = a.permute_symmetric(result.perm);
    const TileGrid grid = make_tile_grid(permuted, result.partition);
    const PartitionCutStats from_grid = grid_cut_stats(grid, 2);
    EXPECT_EQ(from_grid.cut_edges, brute.cut_edges);
    EXPECT_EQ(from_grid.ghost_rows, brute.ghost_rows);
    EXPECT_EQ(from_grid.inter_node_ghost_rows, brute.inter_node_ghost_rows);
  }
}

TEST(Partitioner, BalancedModeMatchesBalancedNnzCuts) {
  const sparse::Csr a = clustered_graph(900);
  PartitionerOptions opt;
  opt.parts = 6;
  const PartitionResult result = plan_partition(a, PartMode::kBalanced, opt);
  EXPECT_TRUE(std::is_sorted(result.perm.begin(), result.perm.end()))
      << "balanced keeps the natural order";
  const PartitionVector expected = PartitionVector::balanced_nnz(a, 6);
  ASSERT_EQ(result.partition.parts(), expected.parts());
  for (int i = 0; i < expected.parts(); ++i) {
    EXPECT_EQ(result.partition.begin(i), expected.begin(i)) << "part " << i;
  }
}

TEST(Partitioner, HierReducesInterNodeGhostsVersusRandom) {
  const sparse::Csr a = clustered_graph();
  PartitionerOptions opt;
  opt.parts = 8;
  opt.devices_per_node = 4;
  opt.seed = 23;
  const PartitionResult random = plan_partition(a, PartMode::kRandom, opt);
  const PartitionResult hier = plan_partition(a, PartMode::kHier, opt);
  const PartitionCutStats rs =
      partition_cut_stats(a, random.perm, random.partition, 4);
  const PartitionCutStats hs =
      partition_cut_stats(a, hier.perm, hier.partition, 4);
  EXPECT_LT(hs.inter_node_ghost_rows, rs.inter_node_ghost_rows);
  EXPECT_LT(hs.inter_node_cut_edges, rs.inter_node_cut_edges);
}

TEST(Partitioner, AutoResolvesToOneOfItsCandidatesBitwise) {
  const sparse::Csr a = clustered_graph(800);
  PartitionerOptions opt;
  opt.parts = 8;
  opt.devices_per_node = 4;
  opt.inter_node_cost = 8.0;
  opt.seed = 29;
  const PartitionResult chosen = plan_partition(a, PartMode::kAuto, opt);
  ASSERT_TRUE(chosen.mode == PartMode::kRandom ||
              chosen.mode == PartMode::kLocality ||
              chosen.mode == PartMode::kHier);
  const PartitionResult direct = plan_partition(a, chosen.mode, opt);
  EXPECT_EQ(chosen.perm, direct.perm);
  for (int i = 0; i < chosen.partition.parts(); ++i) {
    EXPECT_EQ(chosen.partition.begin(i), direct.partition.begin(i));
  }
}

TEST(Partitioner, SameSeedIsBitwiseDeterministic) {
  const sparse::Csr a = clustered_graph(600);
  for (const PartMode mode : {PartMode::kRandom, PartMode::kLocality,
                              PartMode::kHier, PartMode::kAuto}) {
    PartitionerOptions opt;
    opt.parts = 8;
    opt.devices_per_node = 4;
    opt.seed = 31;
    const PartitionResult a1 = plan_partition(a, mode, opt);
    const PartitionResult a2 = plan_partition(a, mode, opt);
    EXPECT_EQ(a1.perm, a2.perm) << part_mode_name(mode);
    EXPECT_EQ(a1.mode, a2.mode);
  }
}

TEST(TileGridPlanCache, SurvivesMoveAndStaysConsistentAcrossCopies) {
  const sparse::Csr a = clustered_graph(300);
  TileGrid grid = make_tile_grid(a, PartitionVector::uniform(a.rows(), 3));
  EXPECT_FALSE(grid.plan_ready(0, 1));
  (void)grid.plan(0, 1);
  ASSERT_TRUE(grid.plan_ready(0, 1));

  // Moving (how DistSpmm takes ownership) keeps the tile storage, so plans
  // built before the move stay valid — no silent re-inspection.
  const TileGrid moved = std::move(grid);
  EXPECT_TRUE(moved.plan_ready(0, 1))
      << "plan built before the move must survive it";

  // A deep copy gets fresh tile storage; the shared cache must notice the
  // structural-identity mismatch (not serve the stale plan) and rebuild
  // consistently on first use.
  const TileGrid copy = moved;  // NOLINT(performance-unnecessary-copy)
  EXPECT_FALSE(copy.plan_ready(0, 1));
  (void)copy.plan(0, 1);
  EXPECT_TRUE(copy.plan_ready(0, 1));
}

graph::Dataset trainer_dataset() {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = 320;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  spec.avg_degree = 8.0;
  spec.clustering = 0.85;
  graph::DatasetOptions options;
  options.seed = 37;
  return graph::make_dataset(spec, options);
}

TEST(TrainerPartitioner, SameModeIsBitwiseDeterministic) {
  const graph::Dataset ds = trainer_dataset();
  for (const PartMode mode : {PartMode::kRandom, PartMode::kLocality}) {
    std::vector<double> losses[2];
    for (int run = 0; run < 2; ++run) {
      TrainConfig config;
      config.hidden_dims = {16};
      config.seed = 13;
      config.part_mode = mode;
      sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
      MgGcnTrainer trainer(machine, ds, config);
      for (int epoch = 0; epoch < 2; ++epoch) {
        losses[run].push_back(trainer.train_epoch().loss);
      }
    }
    EXPECT_EQ(losses[0], losses[1]) << part_mode_name(mode);
  }
}

TEST(TrainerPartitioner, AutoMatchesItsResolvedModeBitwise) {
  const graph::Dataset ds = trainer_dataset();
  TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 13;
  config.part_mode = PartMode::kAuto;
  sim::Machine machine(sim::dgx_a100_cluster(2), 16,
                       sim::ExecutionMode::kReal);
  MgGcnTrainer trainer(machine, ds, config);
  const double auto_loss = trainer.train_epoch().loss;
  const PartMode resolved = trainer.part_mode_used();
  ASSERT_NE(resolved, PartMode::kAuto);

  TrainConfig direct_config = config;
  direct_config.part_mode = resolved;
  sim::Machine direct_machine(sim::dgx_a100_cluster(2), 16,
                              sim::ExecutionMode::kReal);
  MgGcnTrainer direct(direct_machine, ds, direct_config);
  EXPECT_EQ(direct.train_epoch().loss, auto_loss);
  EXPECT_EQ(direct.part_mode_used(), resolved);

  const PartitionCutStats& stats = trainer.partition_stats();
  EXPECT_LE(stats.imbalance, config.partition_slack + 1e-9);
}

}  // namespace
}  // namespace mggcn::core
