// Tests for the neighbor sampler and the §1 neighborhood-explosion
// statistics.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/sampling.hpp"
#include "util/rng.hpp"

namespace mggcn::graph {
namespace {

sparse::Csr dense_community_graph(std::int64_t n, double degree,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  BterParams params{.n = n, .avg_degree = degree, .degree_sigma = 1.0,
                    .clustering = 0.5};
  return sparse::Csr::from_coo(bter_like(params, rng).edges);
}

TEST(NeighborSampler, RespectsFanoutCap) {
  const sparse::Csr adj = dense_community_graph(500, 20.0, 1);
  const NeighborSampler sampler(adj, {4});
  util::Rng rng(2);
  const auto seeds = sampler.random_batch(16, rng);
  const SampledSubgraph sub = sampler.sample(seeds, rng);
  ASSERT_EQ(sub.hops(), 1);
  // Every seed contributes at most 4 sampled edges.
  EXPECT_LE(sub.edges_per_hop[0], 4 * static_cast<std::int64_t>(seeds.size()));
  EXPECT_GT(sub.edges_per_hop[0], 0);
}

TEST(NeighborSampler, UncappedHopTakesAllNeighbors) {
  const sparse::Csr adj = dense_community_graph(300, 8.0, 3);
  const NeighborSampler sampler(adj, {0});  // 0 = no cap
  util::Rng rng(4);
  const std::vector<std::uint32_t> seeds = {7};
  const SampledSubgraph sub = sampler.sample(seeds, rng);
  EXPECT_EQ(sub.edges_per_hop[0], adj.row_nnz(7));
  EXPECT_EQ(static_cast<std::int64_t>(sub.layers[1].size()),
            adj.row_nnz(7));
}

TEST(NeighborSampler, LayersAreDeduplicatedAndSorted) {
  const sparse::Csr adj = dense_community_graph(400, 12.0, 5);
  const NeighborSampler sampler(adj, {6, 6});
  util::Rng rng(6);
  const SampledSubgraph sub =
      sampler.sample(sampler.random_batch(20, rng), rng);
  for (const auto& layer : sub.layers) {
    std::set<std::uint32_t> unique(layer.begin(), layer.end());
    EXPECT_EQ(unique.size(), layer.size());
    EXPECT_TRUE(std::is_sorted(layer.begin(), layer.end()));
  }
}

TEST(NeighborSampler, DeterministicGivenSeed) {
  const sparse::Csr adj = dense_community_graph(400, 12.0, 7);
  const NeighborSampler sampler(adj, {5, 5});
  util::Rng rng1(8), rng2(8);
  const auto a = sampler.sample(sampler.random_batch(10, rng1), rng1);
  const auto b = sampler.sample(sampler.random_batch(10, rng2), rng2);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.edges_per_hop, b.edges_per_hop);
}

TEST(NeighborSampler, RandomBatchIsDistinct) {
  const sparse::Csr adj = dense_community_graph(200, 6.0, 9);
  const NeighborSampler sampler(adj, {3});
  util::Rng rng(10);
  const auto batch = sampler.random_batch(50, rng);
  std::set<std::uint32_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Explosion, FrontierGrowsWithHops) {
  const sparse::Csr adj = dense_community_graph(2000, 30.0, 11);
  const NeighborSampler sampler(adj, {10, 10, 10});
  util::Rng rng(12);
  const SampledSubgraph sub =
      sampler.sample(sampler.random_batch(8, rng), rng);
  // Each hop's frontier should outgrow the previous one until saturation.
  EXPECT_GT(sub.layers[1].size(), sub.layers[0].size());
  EXPECT_GT(sub.layers[2].size(), sub.layers[1].size());
}

TEST(Explosion, WorkMultiplierGrowsWithDepth) {
  // The §1 claim: the per-epoch work of mini-batch training grows rapidly
  // with the number of hops, while full-batch work is constant per layer.
  const sparse::Csr adj = dense_community_graph(3000, 25.0, 13);
  util::Rng rng(14);
  const ExplosionStats one_hop =
      measure_neighborhood_explosion(adj, {10}, 32, 5, rng);
  const ExplosionStats three_hops =
      measure_neighborhood_explosion(adj, {10, 10, 10}, 32, 5, rng);
  EXPECT_GT(three_hops.mean_vertices, 3.0 * one_hop.mean_vertices);
  EXPECT_GT(three_hops.epoch_work_multiplier,
            one_hop.epoch_work_multiplier);
}

// A 4-vertex graph where vertex 0 has parallel edges: three copies of
// 0->1 plus 0->2 and 0->3 (5 edge slots, 3 distinct neighbors).
sparse::Csr multi_edge_graph() {
  return sparse::Csr(4, 4, {0, 5, 6, 7, 8}, {1, 1, 1, 2, 3, 0, 0, 0},
                     {1, 1, 1, 1, 1, 1, 1, 1});
}

TEST(NeighborSampler, UncappedHopDeduplicatesParallelEdges) {
  const sparse::Csr adj = multi_edge_graph();
  const NeighborSampler sampler(adj, {0});  // <= 0 = no cap
  util::Rng rng(17);
  const SampledSubgraph sub = sampler.sample({0}, rng);
  // Vertex 0 has 5 edge slots but only 3 distinct neighbors: the block
  // must hold one aggregation edge per neighbor, not one per slot.
  EXPECT_EQ(sub.edges_per_hop[0], 3);
  EXPECT_EQ(sub.layers[1], (std::vector<std::uint32_t>{1, 2, 3}));
  ASSERT_EQ(sub.blocks[0].nnz(), 3);
  for (const float w : sub.blocks[0].values()) {
    EXPECT_FLOAT_EQ(w, 1.0f / 3.0f);
  }
}

TEST(NeighborSampler, FanoutAboveDegreeDoesNotResampleDuplicates) {
  const sparse::Csr adj = multi_edge_graph();
  // Fanout 10 exceeds vertex 0's distinct degree (3) and its slot count
  // (5): the sampler must take each neighbor exactly once.
  const NeighborSampler sampler(adj, {10});
  util::Rng rng(18);
  const SampledSubgraph sub = sampler.sample({0}, rng);
  EXPECT_EQ(sub.edges_per_hop[0], 3);
  EXPECT_EQ(sub.blocks[0].nnz(), 3);
}

TEST(NeighborSampler, CappedHopOnParallelEdgesYieldsDistinctTargets) {
  const sparse::Csr adj = multi_edge_graph();
  // cap 2 < degree 5: Fisher-Yates picks edge slots, which may collide on
  // the duplicated target — sampled neighbors must still be distinct.
  const NeighborSampler sampler(adj, {2});
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    util::Rng rng(seed);
    const SampledSubgraph sub = sampler.sample({0}, rng);
    std::set<std::uint32_t> unique(sub.layers[1].begin(),
                                   sub.layers[1].end());
    EXPECT_EQ(unique.size(), sub.layers[1].size());
    EXPECT_EQ(sub.edges_per_hop[0],
              static_cast<std::int64_t>(sub.blocks[0].nnz()));
    EXPECT_LE(sub.edges_per_hop[0], 2);
  }
}

TEST(NeighborSampler, RandomBatchIsSortedAndSeedStable) {
  const sparse::Csr adj = dense_community_graph(500, 10.0, 19);
  const NeighborSampler sampler(adj, {4});
  util::Rng rng1(20), rng2(20);
  const auto a = sampler.random_batch(64, rng1);
  const auto b = sampler.random_batch(64, rng2);
  // Sorted output makes the batch independent of hash-set iteration
  // order, so a seed pins it bit-identically across runs and platforms.
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(a, b);
}

TEST(NeighborSampler, SeededSamplingBitIdenticalIncludingBlocks) {
  const sparse::Csr adj = dense_community_graph(600, 14.0, 21);
  const NeighborSampler sampler(adj, {7, 7});
  util::Rng rng1(22), rng2(22);
  const auto a = sampler.sample(sampler.random_batch(24, rng1), rng1);
  const auto b = sampler.sample(sampler.random_batch(24, rng2), rng2);
  ASSERT_EQ(a.layers, b.layers);
  ASSERT_EQ(a.edges_per_hop, b.edges_per_hop);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t k = 0; k < a.blocks.size(); ++k) {
    EXPECT_TRUE(std::equal(a.blocks[k].row_ptr().begin(),
                           a.blocks[k].row_ptr().end(),
                           b.blocks[k].row_ptr().begin()));
    EXPECT_TRUE(std::equal(a.blocks[k].col_idx().begin(),
                           a.blocks[k].col_idx().end(),
                           b.blocks[k].col_idx().begin()));
    EXPECT_TRUE(std::equal(a.blocks[k].values().begin(),
                           a.blocks[k].values().end(),
                           b.blocks[k].values().begin()));
  }
}

TEST(Explosion, SmallBatchesAreRedundantWork) {
  // With small batches and multiple hops, the summed mini-batch work per
  // epoch exceeds the full-batch epoch — the paper's argument for
  // full-batch multi-GPU training.
  const sparse::Csr adj = dense_community_graph(3000, 25.0, 15);
  util::Rng rng(16);
  const ExplosionStats stats =
      measure_neighborhood_explosion(adj, {15, 15, 15}, 16, 5, rng);
  EXPECT_GT(stats.epoch_work_multiplier, 1.0);
}

}  // namespace
}  // namespace mggcn::graph
