// Tests for the baseline implementations: configuration deltas, training
// behaviour, memory slopes (Fig. 12's mechanism), relative performance
// ordering (the evaluation's qualitative claims), and the DistGNN model.
#include <gtest/gtest.h>

#include "baselines/cagnet.hpp"
#include "baselines/dgl_like.hpp"
#include "comm/comm_mode.hpp"
#include "core/plan_mode.hpp"
#include "baselines/distgnn.hpp"
#include "core/reference.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::baselines {
namespace {

graph::Dataset small_dataset() {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = 600;
  spec.feature_dim = 24;
  spec.num_classes = 6;
  spec.avg_degree = 10.0;
  graph::DatasetOptions options;
  options.seed = 4;
  options.feature_snr = 2.0;
  return graph::make_dataset(spec, options);
}

graph::Dataset phantom_dataset(double scale = 64.0) {
  graph::DatasetSpec spec = graph::arxiv();
  graph::DatasetOptions options;
  options.scale = scale;
  options.with_features = false;
  return graph::make_dataset(spec, options);
}

TEST(DglConfig, DisablesMgGcnOptimizations) {
  const core::TrainConfig c = dgl_like_config({});
  EXPECT_FALSE(c.permute);
  EXPECT_FALSE(c.overlap);
  EXPECT_FALSE(c.reuse_buffers);
  EXPECT_FALSE(c.skip_first_backward_spmm);
  EXPECT_TRUE(c.autograd_aggregation_reuse);
  EXPECT_GT(c.kernel_overhead_multiplier, 1.0);
  EXPECT_GT(c.spmm_traffic_factor, 1.0);
}

TEST(CagnetConfig, AggregateFirstNoOverlapOldNccl) {
  const core::TrainConfig c = cagnet_config({});
  EXPECT_FALSE(c.permute);
  EXPECT_FALSE(c.overlap);
  EXPECT_FALSE(c.reorder_gemm_spmm);
  EXPECT_TRUE(c.spmm_first_when_no_reorder);
  EXPECT_FALSE(c.reuse_buffers);
  EXPECT_LT(c.comm_efficiency, 1.0);
}

TEST(DglLikeTrainer, RequiresSingleDevice) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  EXPECT_THROW(DglLikeTrainer(machine, ds), InvalidArgumentError);
}

TEST(DglLikeTrainer, TrainsToSameAccuracyAsMgGcn) {
  // The paper validates MG-GCN by matching the DGL accuracy curve; here we
  // assert the converse on the substrate: both trainers learn the dataset.
  const graph::Dataset ds = small_dataset();
  core::TrainConfig base;
  base.hidden_dims = {16};
  base.seed = 5;

  sim::Machine m1(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  DglLikeTrainer dgl(m1, ds, base);
  sim::Machine m2(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer mggcn(m2, ds, base);

  double dgl_acc = 0.0, mggcn_acc = 0.0;
  for (int e = 0; e < 40; ++e) {
    dgl_acc = dgl.train_epoch().train_accuracy;
    mggcn_acc = mggcn.train_epoch().train_accuracy;
  }
  EXPECT_GT(dgl_acc, 0.6);
  EXPECT_GT(mggcn_acc, 0.6);
  EXPECT_NEAR(dgl_acc, mggcn_acc, 0.12);
}

TEST(CagnetTrainer, TrainsMultiDevice) {
  const graph::Dataset ds = small_dataset();
  core::TrainConfig base;
  base.hidden_dims = {16};
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  CagnetTrainer cagnet(machine, ds, base);
  const auto first = cagnet.train_epoch();
  core::EpochStats last;
  for (int e = 0; e < 30; ++e) last = cagnet.train_epoch();
  EXPECT_LT(last.loss, first.loss);
}

TEST(Baselines, MgGcnIsFastestOnTheSameWorkload) {
  // System-vs-system timing relationships are stated for the paper's dense
  // broadcast exchange and 1D staged pipeline; pin both so forced
  // MGGCN_COMM=compact / MGGCN_PLAN=15d runs (intentional pessimizations
  // on this workload) keep the premise.
  comm::ScopedCommMode dense_mode(comm::CommMode::kDense);
  core::ScopedPlanMode plan_1d(core::PlanMode::k1D);
  // A big-enough replica that multi-GPU pays off (Cora-sized graphs do
  // not scale, as the paper notes).
  const graph::Dataset ds = phantom_dataset(/*scale=*/8.0);
  core::TrainConfig base = core::model_hidden512();

  auto epoch_time = [&](auto make_trainer, int gpus) {
    sim::Machine machine(sim::dgx_v100(), gpus,
                         sim::ExecutionMode::kPhantom);
    auto trainer = make_trainer(machine);
    trainer.train_epoch();
    return trainer.train_epoch().sim_seconds;
  };

  const double mggcn1 = epoch_time(
      [&](sim::Machine& m) { return core::MgGcnTrainer(m, ds, base); }, 1);
  const double dgl1 = epoch_time(
      [&](sim::Machine& m) {
        return core::MgGcnTrainer(m, ds, dgl_like_config(base));
      },
      1);
  const double mggcn8 = epoch_time(
      [&](sim::Machine& m) { return core::MgGcnTrainer(m, ds, base); }, 8);
  const double cagnet8 = epoch_time(
      [&](sim::Machine& m) {
        return core::MgGcnTrainer(m, ds, cagnet_config(base));
      },
      8);

  EXPECT_LT(mggcn1, dgl1);    // single-GPU win over DGL (Figs. 11/14)
  EXPECT_LT(mggcn8, cagnet8); // multi-GPU win over CAGNET (Fig. 11)
  EXPECT_LT(mggcn8, mggcn1);  // and MG-GCN itself scales
}

TEST(Baselines, NoReuseTriplesPerLayerMemorySlope) {
  const graph::Dataset ds = phantom_dataset();
  auto peak_for = [&](bool reuse, int layers) {
    core::TrainConfig config;
    config.hidden_dims.assign(static_cast<std::size_t>(layers - 1), 64);
    config.reuse_buffers = reuse;
    sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kPhantom);
    core::MgGcnTrainer trainer(machine, ds, config);
    return static_cast<double>(trainer.peak_memory_bytes());
  };

  const double slope_reuse = (peak_for(true, 24) - peak_for(true, 4)) / 20.0;
  const double slope_eager =
      (peak_for(false, 24) - peak_for(false, 4)) / 20.0;
  EXPECT_NEAR(slope_eager / slope_reuse, 3.0, 0.25);
}

TEST(DistGnnModel, SingleSocketInReportedBand) {
  DistGnnModel model;
  const double products = model.epoch_seconds(
      graph::products(), {104, 256, 256, 47}, 1);
  EXPECT_GT(products, 11.0 / 3.0);
  EXPECT_LT(products, 11.0 * 3.0);
  const double proteins = model.epoch_seconds(
      graph::proteins(), {128, 256, 256, 256}, 1);
  EXPECT_GT(proteins, 100.0 / 3.0);
  EXPECT_LT(proteins, 100.0 * 3.0);
}

TEST(DistGnnModel, ScalingHasACommunicationWall) {
  DistGnnModel model;
  const std::vector<std::int64_t> dims = {602, 16, 41};
  const double s1 = model.epoch_seconds(graph::reddit(), dims, 1);
  const double s16 = model.epoch_seconds(graph::reddit(), dims, 16);
  const double s128 = model.epoch_seconds(graph::reddit(), dims, 128);
  // Reddit at 16 sockets is barely faster than 1 (the paper's Table 2
  // shows 0.60 s -> 0.61 s), and far-away socket counts do not help.
  EXPECT_GT(s16, 0.4 * s1);
  EXPECT_GT(s128, 0.5 * s16);
}

TEST(DistGnnModel, ReplicationGrowsSublinearly) {
  EXPECT_DOUBLE_EQ(DistGnnModel::replication_factor(1), 1.0);
  const double r4 = DistGnnModel::replication_factor(4);
  const double r64 = DistGnnModel::replication_factor(64);
  EXPECT_GT(r4, 1.0);
  EXPECT_GT(r64, r4);
  EXPECT_LT(r64, 64.0 / 4.0 * r4);  // sublinear
}

}  // namespace
}  // namespace mggcn::baselines
