// Tests for the 1.5D (c = 2) distributed SpMM: numerical equality with the
// serial product, the replication memory cost, and the §5.1 performance
// relationship to the 1D algorithm on both machines.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "comm/comm_mode.hpp"
#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/dist_spmm_15d.hpp"
#include "dense/kernels.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

sparse::Csr random_operator(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BterParams params{.n = n, .avg_degree = 14.0,
                           .degree_sigma = 1.0, .clustering = 0.5};
  return sparse::Csr::from_coo(graph::bter_like(params, rng).edges)
      .normalize_gcn()
      .transpose();
}

struct Fixture15D {
  Fixture15D(int gpus, std::int64_t n, std::int64_t d,
             sim::ExecutionMode mode, const sim::MachineProfile& profile)
      : machine(profile, gpus, mode), d(d) {
    op = random_operator(n, 7);
    spmm = std::make_unique<DistSpmm15D>(machine, op);
    const PartitionVector& partition = spmm->partition();
    for (int r = 0; r < gpus; ++r) {
      sim::Device& dev = machine.device(r);
      const int block = spmm->block_of(r);
      const auto count =
          static_cast<std::size_t>(partition.size(block) * d);
      const auto bc_count =
          static_cast<std::size_t>(partition.max_part_size() * d);
      input.emplace_back(dev, count, "H");
      output.emplace_back(dev, count, "C");
      bc.emplace_back(dev, bc_count, "BC");
    }
  }

  DistSpmm15D::Result run() {
    DistSpmm15D::Io io;
    for (auto& b : input) io.input.push_back(&b);
    for (auto& b : output) io.output.push_back(&b);
    for (auto& b : bc) io.bc1.push_back(&b);
    io.d = d;
    return spmm->run(io);
  }

  sim::Machine machine;
  std::int64_t d;
  sparse::Csr op;
  std::unique_ptr<DistSpmm15D> spmm;
  std::vector<sim::DeviceBuffer> input, output, bc;
};

class Spmm15DParam
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(Spmm15DParam, MatchesSerialProduct) {
  const auto [gpus, d] = GetParam();
  const std::int64_t n = 271;
  Fixture15D fx(gpus, n, d, sim::ExecutionMode::kReal, sim::dgx_v100());
  const PartitionVector& partition = fx.spmm->partition();

  util::Rng rng(11);
  dense::HostMatrix x(n, d);
  x.init_gaussian(rng);
  // Both replicas of a block get the same data.
  for (int r = 0; r < gpus; ++r) {
    const int block = fx.spmm->block_of(r);
    auto span = fx.input[static_cast<std::size_t>(r)].span();
    dense::copy(x.view().row(partition.begin(block)), span.data(),
                static_cast<std::int64_t>(span.size()));
  }

  fx.run();
  fx.machine.synchronize();

  dense::HostMatrix expected(n, d);
  sparse::spmm(fx.op, x.view(), expected.view());

  // The allreduce leaves the full C^j on every replica; check both.
  for (int r = 0; r < gpus; ++r) {
    const int block = fx.spmm->block_of(r);
    const auto span = fx.output[static_cast<std::size_t>(r)].span();
    const dense::ConstMatrixView got{span.data(), partition.size(block), d};
    const dense::ConstMatrixView want{
        expected.view().row(partition.begin(block)), partition.size(block),
        d};
    ASSERT_LT(dense::max_abs_diff(got, want), 1e-4) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Spmm15DParam,
    ::testing::Combine(::testing::Values(4, 8),
                       ::testing::Values(std::int64_t{1},
                                         std::int64_t{16})));

TEST(Spmm15D, RejectsOddDeviceCounts) {
  sim::Machine machine(sim::dgx_v100(), 3, sim::ExecutionMode::kPhantom);
  const sparse::Csr op = random_operator(64, 3);
  EXPECT_THROW(DistSpmm15D(machine, op), InvalidArgumentError);
}

TEST(Spmm15D, ReplicatesDenseMemoryTwofold) {
  // With P ranks and c = 2, the H blocks held machine-wide sum to 2*n*d.
  const int gpus = 8;
  Fixture15D fx(gpus, 400, 8, sim::ExecutionMode::kPhantom,
                sim::dgx_v100());
  std::uint64_t dense_bytes = 0;
  for (const auto& b : fx.input) dense_bytes += b.bytes();
  EXPECT_EQ(dense_bytes, 2ull * 400 * 8 * 4);
}

TEST(Spmm15D, Section51PerformanceRelationship) {
  // §5.1's conclusion, measured on the implementations rather than derived:
  // 1.5D is slower than 1D on the DGX-1 cube mesh and faster on the
  // DGX-A100 switch. §5.1's regime is bandwidth-bound, so use a wide d
  // (broadcast volume >> launch/collective latencies). The arithmetic is
  // about dense broadcast volumes, so pin that exchange path.
  comm::ScopedCommMode dense_mode(comm::CommMode::kDense);
  const std::int64_t n = 8192, d = 4096;
  const sparse::Csr op = random_operator(n, 5);

  auto time_15d = [&](const sim::MachineProfile& profile) {
    Fixture15D fx(8, n, d, sim::ExecutionMode::kPhantom, profile);
    const double t0 = fx.machine.align_clocks();
    fx.run();
    fx.machine.synchronize();
    return fx.machine.sim_time() - t0;
  };

  auto time_1d = [&](const sim::MachineProfile& profile) {
    sim::Machine machine(profile, 8, sim::ExecutionMode::kPhantom);
    comm::Communicator comm(machine);
    const auto partition = PartitionVector::uniform(n, 8);
    DistSpmm spmm(machine, comm, make_tile_grid(op, partition));
    std::vector<sim::DeviceBuffer> input, output, bc1, bc2;
    for (int r = 0; r < 8; ++r) {
      sim::Device& dev = machine.device(r);
      const auto count = static_cast<std::size_t>(partition.size(r) * d);
      const auto bc_count =
          static_cast<std::size_t>(partition.max_part_size() * d);
      input.emplace_back(dev, count, "H");
      output.emplace_back(dev, count, "C");
      bc1.emplace_back(dev, bc_count, "BC1");
      bc2.emplace_back(dev, bc_count, "BC2");
    }
    std::vector<std::array<sim::Event, 2>> readers(8);
    DistSpmm::Io io;
    for (auto& b : input) io.input.push_back(&b);
    for (auto& b : output) io.output.push_back(&b);
    for (auto& b : bc1) io.bc1.push_back(&b);
    for (auto& b : bc2) io.bc2.push_back(&b);
    io.d = d;
    io.slot_readers = &readers;
    const double t0 = machine.align_clocks();
    spmm.run(io);
    machine.synchronize();
    return machine.sim_time() - t0;
  };

  const double mesh_1d = time_1d(sim::dgx_v100());
  const double mesh_15d = time_15d(sim::dgx_v100());
  const double switch_1d = time_1d(sim::dgx_a100());
  const double switch_15d = time_15d(sim::dgx_a100());

  // On the cube mesh the 1.5D pair-reduction (2 links) hurts...
  EXPECT_GT(mesh_15d / mesh_1d, 1.0);
  // ...while on the switch the halved broadcast volume wins or ties.
  EXPECT_LT(switch_15d / switch_1d, mesh_15d / mesh_1d);
}

}  // namespace
}  // namespace mggcn::core
