// Unit tests for the simulated-GPU runtime: streams, events, simulated
// clocks, the cost model, memory accounting, and the trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"

namespace mggcn::sim {
namespace {

Machine make_machine(int devices = 2,
                     ExecutionMode mode = ExecutionMode::kReal) {
  return Machine(dgx_v100(), devices, mode);
}

TaskDesc cheap_task(std::function<void()> body, double bytes = 9e8) {
  TaskDesc task;
  task.label = "t";
  task.kind = TaskKind::kOther;
  task.cost.stream_bytes = bytes;  // 1 ms at 900 GB/s
  task.body = std::move(body);
  return task;
}

TEST(Stream, ExecutesTasksInOrder) {
  Machine machine = make_machine(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    machine.device(0).compute_stream().enqueue(
        cheap_task([&order, i] { order.push_back(i); }, 1.0));
  }
  machine.synchronize();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Stream, SimulatedTimeAccumulates) {
  Machine machine = make_machine(1);
  Stream& stream = machine.device(0).compute_stream();
  stream.enqueue(cheap_task(nullptr));  // 1 ms
  stream.enqueue(cheap_task(nullptr));  // 1 ms
  stream.synchronize();
  EXPECT_NEAR(stream.sim_time(), 2e-3 + 2 * 8e-6, 1e-6);
}

TEST(Event, CarriesSimulatedTimestamp) {
  Machine machine = make_machine(1);
  Event e = machine.device(0).compute_stream().enqueue(cheap_task(nullptr));
  EXPECT_NEAR(e.wait(), 1e-3 + 8e-6, 1e-6);
  EXPECT_TRUE(e.is_complete());
}

TEST(Event, PreSignaled) {
  const Event e = Event::signaled(1.5);
  EXPECT_TRUE(e.is_complete());
  EXPECT_DOUBLE_EQ(e.wait(), 1.5);
}

TEST(Event, CrossStreamDependencyPropagatesTime) {
  Machine machine = make_machine(2);
  // Device 0 runs a 1 ms task; device 1's task waits for it, so its start
  // time is max(own stream = 0, dependency = 1 ms).
  Event first =
      machine.device(0).compute_stream().enqueue(cheap_task(nullptr));
  TaskDesc second = cheap_task(nullptr);
  second.waits.push_back(first);
  Event done = machine.device(1).compute_stream().enqueue(std::move(second));
  EXPECT_NEAR(done.wait(), 2e-3 + 2 * 8e-6, 1e-6);
}

TEST(Event, WaitEventOrdersSubsequentTasks) {
  Machine machine = make_machine(1);
  Device& device = machine.device(0);
  std::atomic<bool> comm_done{false};
  Event slow = device.comm_stream().enqueue(
      cheap_task([&] { comm_done = true; }, 9e9));  // 10 ms
  device.compute_stream().wait_event(slow);
  std::atomic<bool> saw_comm_done{false};
  device.compute_stream().enqueue(
      cheap_task([&] { saw_comm_done = comm_done.load(); }, 1.0));
  machine.synchronize();
  EXPECT_TRUE(saw_comm_done);
  EXPECT_GE(device.compute_stream().sim_time(), 10e-3);
}

TEST(Machine, AlignClocksBringsAllStreamsToMax) {
  Machine machine = make_machine(2);
  machine.device(0).compute_stream().enqueue(cheap_task(nullptr, 9e9));
  const double t = machine.align_clocks();
  EXPECT_GT(t, 9.9e-3);
  for (int r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(machine.device(r).compute_stream().sim_time(), t);
    EXPECT_DOUBLE_EQ(machine.device(r).comm_stream().sim_time(), t);
  }
}

TEST(Machine, PhantomSkipsBodiesButKeepsTiming) {
  Machine machine(dgx_v100(), 1, ExecutionMode::kPhantom);
  bool ran = false;
  Event e = machine.device(0).compute_stream().enqueue(
      cheap_task([&ran] { ran = true; }));
  const double t = e.wait();
  EXPECT_FALSE(ran);
  EXPECT_NEAR(t, 1e-3 + 8e-6, 1e-6);
}

TEST(CostModel, LaunchOverheadFloor) {
  KernelCost cost;
  cost.launches = 3;
  EXPECT_NEAR(CostModel::seconds(cost, dgx_v100().device), 3 * 8e-6, 1e-9);
}

TEST(CostModel, MemoryBoundKernel) {
  KernelCost cost;
  cost.stream_bytes = 900e9;  // exactly one second of HBM traffic
  cost.launches = 0;
  EXPECT_NEAR(CostModel::seconds(cost, dgx_v100().device), 1.0, 1e-9);
}

TEST(CostModel, ComputeBoundKernel) {
  KernelCost cost;
  cost.flops = 14e12;
  cost.stream_bytes = 1.0;
  cost.launches = 0;
  EXPECT_NEAR(CostModel::seconds(cost, dgx_v100().device), 1.0, 1e-9);
}

TEST(CostModel, BandwidthScaleSlowsMemoryTerm) {
  KernelCost cost;
  cost.stream_bytes = 900e9;
  cost.launches = 0;
  const auto dev = dgx_v100().device;
  EXPECT_NEAR(CostModel::seconds(cost, dev, 0.5), 2.0, 1e-9);
}

TEST(CostModel, GatherReuseWithinL2) {
  // Working set well inside L2: reuse traffic nearly free.
  const double eff = CostModel::effective_gather_bytes(
      /*gather=*/1e9, /*working_set=*/1e6, /*l2=*/6e6);
  EXPECT_LT(eff, 1e6 + 1e9 * CostModel::kL2HitCost * 1.01);
  EXPECT_GE(eff, 1e6);
}

TEST(CostModel, GatherNoReuseBeyondL2) {
  // Working set far exceeding L2: almost all traffic reaches HBM.
  const double eff = CostModel::effective_gather_bytes(1e9, 1e9, 6e6);
  EXPECT_GT(eff, 0.9e9);
}

TEST(CostModel, GatherMonotoneInWorkingSet) {
  double prev = 0.0;
  for (double ws = 1e5; ws <= 1e9; ws *= 2) {
    const double eff = CostModel::effective_gather_bytes(2e9, ws, 6e6);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
}

TEST(Memory, AccountingAndPeak) {
  Machine machine = make_machine(1);
  Device& device = machine.device(0);
  device.reserve_memory(1000, "a");
  device.reserve_memory(2000, "b");
  EXPECT_EQ(device.memory_used(), 3000u);
  device.release_memory(1000);
  EXPECT_EQ(device.memory_used(), 2000u);
  EXPECT_EQ(device.memory_peak(), 3000u);
  device.reset_memory_peak();
  EXPECT_EQ(device.memory_peak(), 2000u);
}

TEST(Memory, OutOfMemoryThrows) {
  Machine machine = make_machine(1);
  EXPECT_THROW(
      machine.device(0).reserve_memory(33ULL << 30, "too big"),
      OutOfMemoryError);
}

TEST(Memory, DeviceBufferRaii) {
  Machine machine = make_machine(1);
  Device& device = machine.device(0);
  {
    DeviceBuffer buffer(device, 1024, "buf");
    EXPECT_EQ(device.memory_used(), 4096u);
    EXPECT_EQ(buffer.span().size(), 1024u);
  }
  EXPECT_EQ(device.memory_used(), 0u);
}

TEST(Memory, DeviceBufferMoveTransfersOwnership) {
  Machine machine = make_machine(1);
  Device& device = machine.device(0);
  DeviceBuffer a(device, 256, "a");
  DeviceBuffer b = std::move(a);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(device.memory_used(), 1024u);
}

TEST(Memory, PhantomBufferAccountsWithoutStorage) {
  Machine machine(dgx_v100(), 1, ExecutionMode::kPhantom);
  DeviceBuffer buffer(machine.device(0), 1 << 20, "big");
  EXPECT_EQ(machine.device(0).memory_used(), (1ULL << 20) * 4);
  EXPECT_TRUE(buffer.span().empty());
  EXPECT_EQ(buffer.data(), nullptr);
}

TEST(Trace, RecordsAndAggregates) {
  Machine machine = make_machine(1);
  TaskDesc task = cheap_task(nullptr);
  task.kind = TaskKind::kSpMM;
  machine.device(0).compute_stream().enqueue(std::move(task));
  machine.synchronize();
  const auto busy = machine.trace().busy_by_kind();
  ASSERT_TRUE(busy.count(TaskKind::kSpMM));
  EXPECT_NEAR(busy.at(TaskKind::kSpMM), 1e-3 + 8e-6, 1e-6);
}

TEST(Trace, TimelineRendering) {
  Machine machine = make_machine(1);
  TaskDesc task = cheap_task(nullptr);
  task.kind = TaskKind::kComm;
  task.stage = 2;
  machine.device(0).comm_stream().enqueue(std::move(task));
  machine.synchronize();
  const std::string gantt =
      machine.trace().render_timeline(0.0, machine.sim_time(), 40);
  EXPECT_NE(gantt.find("GPU 0"), std::string::npos);
  EXPECT_NE(gantt.find('2'), std::string::npos);  // stage digit
  EXPECT_NE(gantt.find('='), std::string::npos);  // comm fill
}

TEST(Trace, ChromeJsonExport) {
  Machine machine = make_machine(1);
  TaskDesc task = cheap_task(nullptr);
  task.kind = TaskKind::kSpMM;
  task.stage = 1;
  task.label = "spmm";
  machine.device(0).compute_stream().enqueue(std::move(task));
  machine.synchronize();

  const auto path =
      (std::filesystem::temp_directory_path() / "mggcn_trace.json").string();
  machine.trace().export_chrome_json(path);
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"name\": \"spmm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"SpMM\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": 1"), std::string::npos);
}

TEST(Trace, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(json_escape(""), "");
}

namespace json {
// Minimal recursive-descent JSON reader for the round-trip test: validates
// the whole document and collects every string value encountered.
struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::vector<std::string> strings;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\r' ||
                            s[i] == '\t')) {
      ++i;
    }
  }
  bool lit(const char* text) {
    const std::size_t n = std::string(text).size();
    if (s.compare(i, n, text) != 0) return false;
    i += n;
    return true;
  }
  bool string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string value;
    while (i < s.size() && s[i] != '"') {
      char c = s[i];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // unescaped
      if (c == '\\') {
        if (++i >= s.size()) return false;
        switch (s[i]) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'b': value += '\b'; break;
          case 'f': value += '\f'; break;
          case 'n': value += '\n'; break;
          case 'r': value += '\r'; break;
          case 't': value += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            const std::string hex = s.substr(i + 1, 4);
            value += static_cast<char>(std::stoi(hex, nullptr, 16));
            i += 4;
            break;
          }
          default:
            return false;
        }
        ++i;
      } else {
        value += c;
        ++i;
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    strings.push_back(value);
    if (out != nullptr) *out = value;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '-' ||
            s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '{') return object();
    if (s[i] == '[') return array();
    if (s[i] == '"') return string(nullptr);
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
  bool object() {
    ++i;  // '{'
    ws();
    if (i < s.size() && s[i] == '}') { ++i; return true; }
    while (true) {
      ws();
      if (!string(nullptr)) return false;
      ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    ws();
    if (i >= s.size() || s[i] != '}') return false;
    ++i;
    return true;
  }
  bool array() {
    ++i;  // '['
    ws();
    if (i < s.size() && s[i] == ']') { ++i; return true; }
    while (true) {
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    ws();
    if (i >= s.size() || s[i] != ']') return false;
    ++i;
    return true;
  }
  bool document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};
}  // namespace json

TEST(Trace, ChromeJsonRoundTripsHostileLabels) {
  Machine machine = make_machine(1);
  const std::vector<std::string> labels = {
      "quote\"inside", "back\\slash", "new\nline", "tab\there",
      std::string("ctrl\x02char"),
  };
  for (const auto& label : labels) {
    TaskDesc task = cheap_task(nullptr, 1.0);
    task.label = label;
    machine.device(0).compute_stream().enqueue(std::move(task));
  }
  machine.synchronize();

  const auto path =
      (std::filesystem::temp_directory_path() / "mggcn_trace_escape.json")
          .string();
  machine.trace().export_chrome_json(path);
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  json::Parser parser{text, 0, {}};
  ASSERT_TRUE(parser.document()) << "export is not valid JSON near offset "
                                 << parser.i;
  // Every hostile label must survive the escape/parse round trip verbatim.
  for (const auto& label : labels) {
    EXPECT_NE(std::find(parser.strings.begin(), parser.strings.end(), label),
              parser.strings.end())
        << "label lost in round trip: " << json_escape(label);
  }
}

#ifndef NDEBUG
TEST(MemoryDeathTest, ReleaseUnderflowAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Machine machine(dgx_v100(), 1);
        Device& device = machine.device(0);
        device.reserve_memory(100, "a");
        device.release_memory(200);
      },
      "underflow");
}
#else
TEST(Memory, ReleaseUnderflowClampsInRelease) {
  Machine machine = make_machine(1);
  Device& device = machine.device(0);
  device.reserve_memory(100, "a");
  device.release_memory(200);  // logs an error, clamps instead of wrapping
  EXPECT_EQ(device.memory_used(), 0u);
}
#endif

TEST(Profiles, TableValues) {
  const auto v100 = dgx_v100();
  EXPECT_EQ(v100.device.memory_bytes, 32ULL << 30);
  EXPECT_EQ(v100.interconnect.links_per_device, 6);
  const auto a100 = dgx_a100();
  EXPECT_EQ(a100.device.memory_bytes, 80ULL << 30);
  EXPECT_EQ(a100.interconnect.links_per_device, 12);
  EXPECT_EQ(machine_by_name("dgx-a100").name, "dgx-a100");
  EXPECT_THROW(machine_by_name("tpu"), InvalidArgumentError);
}

TEST(Profiles, ScaleProfileDividesExtensiveQuantities) {
  const auto scaled = scale_profile(dgx_v100(), 4.0);
  EXPECT_EQ(scaled.device.memory_bytes, 8ULL << 30);
  EXPECT_EQ(scaled.device.l2_bytes, (6ULL << 20) / 4);
  EXPECT_NEAR(scaled.device.kernel_launch_overhead, 2e-6, 1e-12);
  // Interconnect bandwidths are intensive: unchanged.
  EXPECT_EQ(scaled.interconnect.link_bandwidth,
            dgx_v100().interconnect.link_bandwidth);
}

TEST(Profiles, ScaleProfileKeepsInvariantBytes) {
  const std::uint64_t invariant = 1ULL << 30;
  const auto scaled = scale_profile(dgx_v100(), 1e9, invariant);
  EXPECT_GE(scaled.device.memory_bytes, invariant);
}

TEST(Profiles, ScaleInvarianceOfTheCostModel) {
  // The bench methodology's invariant: a workload scaled by 1/k on a
  // profile scaled by 1/k takes exactly 1/k of the full-scale time, for
  // every term of the model (bandwidth, cache, flops, launches).
  KernelCost full;
  full.stream_bytes = 3e9;
  full.gather_bytes = 8e9;
  full.gather_working_set = 48e6;  // 8x the V100 L2
  full.flops = 5e12;
  full.launches = 4;
  for (const double k : {2.0, 16.0, 256.0}) {
    KernelCost scaled = full;
    scaled.stream_bytes /= k;
    scaled.gather_bytes /= k;
    scaled.gather_working_set /= k;
    scaled.flops /= k;
    const auto profile = scale_profile(dgx_v100(), k);
    EXPECT_NEAR(CostModel::seconds(scaled, profile.device) * k,
                CostModel::seconds(full, dgx_v100().device),
                1e-9 * CostModel::seconds(full, dgx_v100().device) * k)
        << "k = " << k;
  }
}

TEST(Collective, RendezvousSynchronizesStartTimes) {
  Machine machine = make_machine(2);
  // Rank 0 is busy for 10 ms before its collective part arrives; the
  // collective cannot begin before then on either rank.
  Event busy =
      machine.device(0).comm_stream().enqueue(cheap_task(nullptr, 9e9));

  auto group = std::make_shared<CollectiveGroup>(2);
  group->duration = 1e-3;

  TaskDesc part0;
  part0.collective = group;
  part0.collective_executor = true;
  part0.waits.push_back(busy);
  TaskDesc part1;
  part1.collective = group;

  Event e1 = machine.device(1).comm_stream().enqueue(std::move(part1));
  Event e0 = machine.device(0).comm_stream().enqueue(std::move(part0));
  EXPECT_NEAR(e0.wait(), e1.wait(), 1e-12);
  EXPECT_GT(e1.wait(), 10e-3);
}

}  // namespace
}  // namespace mggcn::sim
