// Property tests for the kernel-policy registry: the tiled kernels against
// the naive reference across alpha/beta combinations, ragged shapes (rows,
// columns, and inner dimensions that are not multiples of the register
// tile), and CSR inputs with empty and high-degree rows; plus the
// bit-for-bit beta == 0 SpMM agreement all three policies promise, the
// policy selection machinery itself, and the planned policy's one-time
// inspector accounting in the distributed trainer's trace.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/reference.hpp"
#include "core/trainer.hpp"
#include "dense/kernel_policy.hpp"
#include "dense/kernels.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/rng.hpp"

namespace mggcn {
namespace {

constexpr float kAlphas[] = {0.0f, 1.0f, 0.5f};
constexpr float kBetas[] = {0.0f, 1.0f, 0.5f};

dense::HostMatrix random_matrix(std::int64_t rows, std::int64_t cols,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  dense::HostMatrix m(rows, cols);
  m.init_gaussian(rng);
  return m;
}

/// max|a - b| <= tol * max(1, max|a|): a relative tolerance on the scale of
/// the result, robust to near-zero entries.
void expect_close(dense::ConstMatrixView a, dense::ConstMatrixView b,
                  double tol, const std::string& what) {
  double scale = 1.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    scale = std::max(scale, static_cast<double>(std::fabs(a.data[i])));
  }
  EXPECT_LE(dense::max_abs_diff(a, b), tol * scale) << what;
}

std::string case_name(const char* kernel, std::int64_t m, std::int64_t k,
                      std::int64_t n, float alpha, float beta) {
  std::ostringstream os;
  os << kernel << " m=" << m << " k=" << k << " n=" << n << " alpha=" << alpha
     << " beta=" << beta;
  return os.str();
}

/// Shapes chosen to exercise every tail path of the tiled kernels: single
/// elements, tiles narrower than kNr, dimensions straddling the register
/// tile (4 x 16) and the k panel (256).
const std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>
    kRaggedShapes = {
        {1, 1, 1},    {3, 5, 7},     {4, 16, 16},   {7, 300, 19},
        {17, 33, 9},  {33, 17, 65},  {64, 64, 64},  {130, 70, 40},
        {5, 513, 33}, {61, 127, 129}};

TEST(KernelPolicyProperty, TiledGemmMatchesNaive) {
  for (const auto& [m, k, n] : kRaggedShapes) {
    const dense::HostMatrix a = random_matrix(m, k, 1);
    const dense::HostMatrix b = random_matrix(k, n, 2);
    const dense::HostMatrix c0 = random_matrix(m, n, 3);
    for (float alpha : kAlphas) {
      for (float beta : kBetas) {
        dense::HostMatrix c_naive = c0;
        dense::HostMatrix c_tiled = c0;
        dense::naive::gemm(a.view(), b.view(), c_naive.view(), alpha, beta);
        dense::tiled::gemm(a.view(), b.view(), c_tiled.view(), alpha, beta);
        expect_close(c_naive.view(), c_tiled.view(), 1e-5,
                     case_name("gemm", m, k, n, alpha, beta));
      }
    }
  }
}

TEST(KernelPolicyProperty, TiledGemmAtBMatchesNaive) {
  for (const auto& [m, k, n] : kRaggedShapes) {
    const dense::HostMatrix a = random_matrix(k, m, 4);  // participates as A^T
    const dense::HostMatrix b = random_matrix(k, n, 5);
    const dense::HostMatrix c0 = random_matrix(m, n, 6);
    for (float alpha : kAlphas) {
      for (float beta : kBetas) {
        dense::HostMatrix c_naive = c0;
        dense::HostMatrix c_tiled = c0;
        dense::naive::gemm_at_b(a.view(), b.view(), c_naive.view(), alpha,
                                beta);
        dense::tiled::gemm_at_b(a.view(), b.view(), c_tiled.view(), alpha,
                                beta);
        expect_close(c_naive.view(), c_tiled.view(), 1e-5,
                     case_name("gemm_at_b", m, k, n, alpha, beta));
      }
    }
  }
}

TEST(KernelPolicyProperty, TiledGemmABtMatchesNaive) {
  for (const auto& [m, k, n] : kRaggedShapes) {
    const dense::HostMatrix a = random_matrix(m, k, 7);
    const dense::HostMatrix b = random_matrix(n, k, 8);  // participates as B^T
    const dense::HostMatrix c0 = random_matrix(m, n, 9);
    for (float alpha : kAlphas) {
      for (float beta : kBetas) {
        dense::HostMatrix c_naive = c0;
        dense::HostMatrix c_tiled = c0;
        dense::naive::gemm_a_bt(a.view(), b.view(), c_naive.view(), alpha,
                                beta);
        dense::tiled::gemm_a_bt(a.view(), b.view(), c_tiled.view(), alpha,
                                beta);
        expect_close(c_naive.view(), c_tiled.view(), 1e-5,
                     case_name("gemm_a_bt", m, k, n, alpha, beta));
      }
    }
  }
}

TEST(KernelPolicyProperty, TiledMaskedGemmMatchesNaive) {
  for (const auto& [m, k, n] : kRaggedShapes) {
    const dense::HostMatrix a = random_matrix(m, k, 10);
    const dense::HostMatrix b = random_matrix(n, k, 11);
    // The activation consumed for the ReLU mask: roughly half the entries
    // are positive, so both the masked and active tile paths run.
    const dense::HostMatrix c0 = random_matrix(m, n, 12);
    dense::HostMatrix c_naive = c0;
    dense::HostMatrix c_tiled = c0;
    dense::naive::gemm_a_bt_relu_masked(a.view(), b.view(), c_naive.view());
    dense::tiled::gemm_a_bt_relu_masked(a.view(), b.view(), c_tiled.view());
    expect_close(c_naive.view(), c_tiled.view(), 1e-5,
                 case_name("masked", m, k, n, 1.0f, 0.0f));
  }
}

/// CSR with forced empty rows, one dense (high-degree) row to exercise the
/// edge-batched path, and otherwise random structure.
sparse::Csr ragged_csr(std::int64_t rows, std::int64_t cols, double density,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (std::int64_t r = 0; r < rows; ++r) {
    const bool force_empty = r % 5 == 2 || r == rows - 1;
    const bool force_dense = r == rows / 2;
    if (!force_empty) {
      for (std::int64_t c = 0; c < cols; ++c) {
        if (force_dense || rng.bernoulli(density)) {
          col_idx.push_back(static_cast<std::uint32_t>(c));
          values.push_back(static_cast<float>(rng.gaussian()));
        }
      }
    }
    row_ptr.push_back(static_cast<std::int64_t>(col_idx.size()));
  }
  return {rows, cols, std::move(row_ptr), std::move(col_idx),
          std::move(values)};
}

TEST(KernelPolicyProperty, TiledSpmmMatchesNaive) {
  for (const auto& [rows, cols, d] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
           {1, 1, 1}, {9, 7, 5}, {40, 31, 33}, {64, 64, 130}, {33, 50, 257}}) {
    const sparse::Csr a = ragged_csr(rows, cols, 0.2, 13);
    const dense::HostMatrix b = random_matrix(cols, d, 14);
    const dense::HostMatrix c0 = random_matrix(rows, d, 15);
    for (float alpha : kAlphas) {
      for (float beta : kBetas) {
        dense::HostMatrix c_naive = c0;
        dense::HostMatrix c_tiled = c0;
        sparse::naive::spmm(a, b.view(), c_naive.view(), alpha, beta);
        sparse::tiled::spmm(a, b.view(), c_tiled.view(), alpha, beta);
        expect_close(c_naive.view(), c_tiled.view(), 1e-5,
                     case_name("spmm", rows, cols, d, alpha, beta));
      }
    }
  }
}

TEST(KernelPolicyProperty, SpmmPoliciesBitIdenticalAtBetaZero) {
  // All three policies initialize the output row from the first nonzero and
  // accumulate edges in CSR order per element, so at beta == 0 they must
  // agree bit-for-bit — not just within tolerance.
  for (std::int64_t d : {1, 33, 64, 130, 257}) {
    const sparse::Csr a = ragged_csr(50, 41, 0.3, 16);
    const dense::HostMatrix b = random_matrix(41, d, 17);
    for (float alpha : {1.0f, 0.5f}) {
      dense::HostMatrix c_naive(50, d);
      dense::HostMatrix c_tiled(50, d);
      dense::HostMatrix c_planned(50, d);
      c_naive.fill(7.0f);  // stale contents that beta == 0 must ignore
      c_tiled.fill(-3.0f);
      c_planned.fill(11.0f);
      sparse::naive::spmm(a, b.view(), c_naive.view(), alpha, 0.0f);
      sparse::tiled::spmm(a, b.view(), c_tiled.view(), alpha, 0.0f);
      sparse::planned::spmm(a, b.view(), c_planned.view(), alpha, 0.0f);
      const auto bytes =
          static_cast<std::size_t>(c_naive.size()) * sizeof(float);
      EXPECT_EQ(std::memcmp(c_naive.data(), c_tiled.data(), bytes), 0)
          << "tiled d=" << d << " alpha=" << alpha;
      EXPECT_EQ(std::memcmp(c_naive.data(), c_planned.data(), bytes), 0)
          << "planned d=" << d << " alpha=" << alpha;
    }
  }
}

TEST(KernelPolicy, ParseAndName) {
  EXPECT_EQ(dense::parse_kernel_policy("naive"), dense::KernelPolicy::kNaive);
  EXPECT_EQ(dense::parse_kernel_policy("tiled"), dense::KernelPolicy::kTiled);
  EXPECT_EQ(dense::parse_kernel_policy("planned"),
            dense::KernelPolicy::kPlanned);
  EXPECT_FALSE(dense::parse_kernel_policy("blas").has_value());
  EXPECT_STREQ(dense::kernel_policy_name(dense::KernelPolicy::kNaive),
               "naive");
  EXPECT_STREQ(dense::kernel_policy_name(dense::KernelPolicy::kTiled),
               "tiled");
  EXPECT_STREQ(dense::kernel_policy_name(dense::KernelPolicy::kPlanned),
               "planned");
}

TEST(KernelPolicy, ScopedOverrideRestores) {
  const dense::KernelPolicy before = dense::kernel_policy();
  {
    dense::ScopedKernelPolicy scope(dense::KernelPolicy::kNaive);
    EXPECT_EQ(dense::kernel_policy(), dense::KernelPolicy::kNaive);
    {
      dense::ScopedKernelPolicy inner(dense::KernelPolicy::kTiled);
      EXPECT_EQ(dense::kernel_policy(), dense::KernelPolicy::kTiled);
    }
    EXPECT_EQ(dense::kernel_policy(), dense::KernelPolicy::kNaive);
  }
  EXPECT_EQ(dense::kernel_policy(), before);
}

int g_counting_gemm_calls = 0;
void counting_gemm(dense::ConstMatrixView a, dense::ConstMatrixView b,
                   dense::MatrixView c, float alpha, float beta) {
  ++g_counting_gemm_calls;
  dense::naive::gemm(a, b, c, alpha, beta);
}

TEST(KernelPolicy, RegistryRoutesDispatch) {
  const dense::DenseKernelTable original =
      dense::dense_kernels(dense::KernelPolicy::kNaive);
  dense::DenseKernelTable table = original;
  table.gemm = &counting_gemm;
  dense::register_dense_kernels(dense::KernelPolicy::kNaive, table);

  const dense::HostMatrix a = random_matrix(4, 4, 18);
  const dense::HostMatrix b = random_matrix(4, 4, 19);
  dense::HostMatrix c(4, 4);
  {
    dense::ScopedKernelPolicy scope(dense::KernelPolicy::kNaive);
    g_counting_gemm_calls = 0;
    dense::gemm(a.view(), b.view(), c.view());
    EXPECT_EQ(g_counting_gemm_calls, 1);
    dense::ScopedKernelPolicy inner(dense::KernelPolicy::kTiled);
    dense::gemm(a.view(), b.view(), c.view());
    EXPECT_EQ(g_counting_gemm_calls, 1);  // tiled table untouched
  }
  dense::register_dense_kernels(dense::KernelPolicy::kNaive, original);
}

TEST(KernelPolicy, TrainerNumericsMatchAcrossPolicies) {
  // End-to-end guard for the acceptance bar: the serial reference trainer's
  // logits under the tiled and planned policies match the naive policy
  // within 1e-4.
  graph::DatasetSpec spec = graph::cora();
  spec.n = 200;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 11;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;

  auto run = [&](dense::KernelPolicy policy) {
    dense::ScopedKernelPolicy scope(policy);
    core::ReferenceTrainer trainer(ds, config);
    for (int epoch = 0; epoch < 3; ++epoch) trainer.train_epoch();
    return trainer.forward();
  };
  const dense::HostMatrix logits_naive = run(dense::KernelPolicy::kNaive);
  const dense::HostMatrix logits_tiled = run(dense::KernelPolicy::kTiled);
  const dense::HostMatrix logits_planned = run(dense::KernelPolicy::kPlanned);
  EXPECT_LT(dense::max_abs_diff(logits_naive.view(), logits_tiled.view()),
            1e-4);
  EXPECT_LT(dense::max_abs_diff(logits_naive.view(), logits_planned.view()),
            1e-4);
}

TEST(KernelPolicy, DistributedTrainerChargesInspectOncePerTile) {
  // Under the planned policy the distributed trainer must trace exactly one
  // kInspect task per distinct adjacency tile — 2 * P^2 across the forward
  // (A_hat^T) and backward (A_hat) grids — on the first epoch, and none
  // afterwards: the whole point of the plan is amortization.
  graph::DatasetSpec spec = graph::cora();
  spec.n = 300;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 13;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  for (const int gpus : {1, 2, 4}) {
    dense::ScopedKernelPolicy scope(dense::KernelPolicy::kPlanned);
    core::TrainConfig config;
    config.hidden_dims = {16};
    config.seed = 3;
    // The inspect-count contract below is specific to the 1D staged
    // executor; pin the strategy so auto cannot reroute these products.
    config.plan_mode = core::PlanMode::k1D;

    sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
    core::MgGcnTrainer trainer(machine, ds, config);

    auto inspect_count = [&] {
      std::size_t count = 0;
      for (const auto& rec : machine.trace().records()) {
        if (rec.kind == sim::TaskKind::kInspect) ++count;
      }
      return count;
    };

    trainer.train_epoch();
    const std::size_t expected =
        2 * static_cast<std::size_t>(gpus) * static_cast<std::size_t>(gpus);
    EXPECT_EQ(inspect_count(), expected) << gpus << " gpus, epoch 0";
    trainer.train_epoch();
    trainer.train_epoch();
    EXPECT_EQ(inspect_count(), expected)
        << gpus << " gpus: plans must be reused, not rebuilt";
  }
}

TEST(KernelPolicy, MultiDeviceTrainerMatchesReferenceUnderAllPolicies) {
  // The acceptance bar: the multi-device trainer equals the serial
  // reference under every registered kernel policy.
  graph::DatasetSpec spec = graph::cora();
  spec.n = 300;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 17;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  for (const dense::KernelPolicy policy :
       {dense::KernelPolicy::kNaive, dense::KernelPolicy::kTiled,
        dense::KernelPolicy::kPlanned}) {
    dense::ScopedKernelPolicy scope(policy);
    core::TrainConfig config;
    config.hidden_dims = {16};
    config.seed = 3;
    config.permute = false;

    sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
    core::MgGcnTrainer trainer(machine, ds, config);
    core::ReferenceTrainer reference(ds, config);
    for (int epoch = 0; epoch < 3; ++epoch) {
      const auto dist = trainer.train_epoch();
      const auto ref = reference.train_epoch();
      EXPECT_NEAR(dist.loss, ref.loss, 1e-3 * std::max(1.0, ref.loss))
          << dense::kernel_policy_name(policy) << ", epoch " << epoch;
    }
  }
}

}  // namespace
}  // namespace mggcn
