// Planner parity suite: trainer losses must be bit-identical across
// MGGCN_PLAN=1d|15d|replicated|auto — including under the hazard checker,
// schedule fuzzing, and elastic recovery — auto's steady-state epoch must
// not exceed the best fixed strategy's, and the plan_* decision counters
// must route/fall back as documented.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/elastic.hpp"
#include "core/plan_mode.hpp"
#include "core/planner.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config(core::PlanMode mode, bool overlap = true) {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  config.overlap = overlap;
  config.plan_mode = mode;
  return config;
}

/// RAII environment variable override (mirrors test_hazard.cpp).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

std::vector<core::EpochStats> train_with_plan(const graph::Dataset& ds,
                                              int gpus, int epochs,
                                              core::PlanMode mode,
                                              bool overlap = true,
                                              bool hazard_check = true) {
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal,
                       hazard_check);
  core::MgGcnTrainer trainer(machine, ds, small_config(mode, overlap));
  auto stats = trainer.train(epochs);
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
  return stats;
}

constexpr core::PlanMode kAllModes[] = {
    core::PlanMode::k1D, core::PlanMode::k15D, core::PlanMode::kReplicated,
    core::PlanMode::kAuto};

TEST(Planner, TrainerLossesBitIdenticalAcrossPlanModes) {
  const graph::Dataset ds = small_dataset();
  const int epochs = 5;
  // gpus=4 makes the chained 1.5D schedule feasible (even, >= 4); both
  // overlap settings, since only the 1D executor pipelines broadcasts.
  for (const bool overlap : {true, false}) {
    const auto base = train_with_plan(ds, 4, epochs, core::PlanMode::k1D,
                                      overlap);
    ASSERT_EQ(base.size(), static_cast<std::size_t>(epochs));
    for (const core::PlanMode mode :
         {core::PlanMode::k15D, core::PlanMode::kReplicated,
          core::PlanMode::kAuto}) {
      const auto other = train_with_plan(ds, 4, epochs, mode, overlap);
      for (int e = 0; e < epochs; ++e) {
        const auto ee = static_cast<std::size_t>(e);
        // Bit-identical, not approximately equal: every executor
        // accumulates in ascending stage order.
        EXPECT_EQ(base[ee].loss, other[ee].loss)
            << core::plan_mode_name(mode) << ", overlap " << overlap
            << ", epoch " << e;
        EXPECT_EQ(base[ee].train_accuracy, other[ee].train_accuracy)
            << core::plan_mode_name(mode) << ", overlap " << overlap
            << ", epoch " << e;
      }
    }
  }
}

TEST(Planner, AutoNeverExceedsBestFixedStrategy) {
  // The planner invariant: auto's argmin is taken over the very cost
  // models the simulated clock accumulates, so its steady-state epoch
  // (the second one; buffers and plans warm) must not exceed the best
  // fixed strategy's. 2% headroom covers schedule second-order effects
  // the per-product estimates do not see.
  const graph::Dataset ds = small_dataset();
  for (const int gpus : {2, 4}) {
    double best_fixed = 0.0;
    double auto_seconds = 0.0;
    for (const core::PlanMode mode : kAllModes) {
      sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
      core::MgGcnTrainer trainer(machine, ds, small_config(mode));
      trainer.train_epoch();
      const double seconds = trainer.train_epoch().sim_seconds;
      if (mode == core::PlanMode::kAuto) {
        auto_seconds = seconds;
      } else {
        best_fixed =
            best_fixed == 0.0 ? seconds : std::min(best_fixed, seconds);
      }
    }
    EXPECT_LE(auto_seconds, best_fixed * 1.02) << gpus << " gpus";
  }
}

TEST(Planner, ForcedModesRouteAndCountProducts) {
  const graph::Dataset ds = small_dataset();
  // 2-layer model: 2 forward products + 1 backward (first backward SpMM
  // skipped), all routed to the forced strategy when it is feasible.
  {
    const auto stats = train_with_plan(ds, 4, 2, core::PlanMode::k1D);
    for (const auto& s : stats) {
      EXPECT_EQ(s.plan_products_1d, 3);
      EXPECT_EQ(s.plan_products_15d, 0);
      EXPECT_EQ(s.plan_products_replicated, 0);
      EXPECT_EQ(s.plan_fallbacks, 0);
    }
  }
  {
    const auto stats = train_with_plan(ds, 4, 2, core::PlanMode::k15D);
    for (const auto& s : stats) {
      EXPECT_EQ(s.plan_products_15d, 3);
      EXPECT_EQ(s.plan_fallbacks, 0);
    }
  }
  {
    const auto stats = train_with_plan(ds, 4, 2, core::PlanMode::kReplicated);
    for (const auto& s : stats) {
      EXPECT_EQ(s.plan_products_replicated, 3);
      EXPECT_EQ(s.plan_fallbacks, 0);
    }
  }
  // Odd device count: the chained schedule is infeasible, so a forced 15d
  // run falls back to 1d and says so in the counters.
  {
    const auto stats = train_with_plan(ds, 3, 2, core::PlanMode::k15D);
    for (const auto& s : stats) {
      EXPECT_EQ(s.plan_products_1d, 3);
      EXPECT_EQ(s.plan_products_15d, 0);
      EXPECT_GT(s.plan_fallbacks, 0);
    }
  }
}

TEST(Planner, PriceChoiceIsTheArgmin) {
  // The Estimate the planner exposes must be internally consistent: the
  // reported choice is the cheapest feasible strategy at that width.
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds,
                             small_config(core::PlanMode::kAuto));
  const core::Planner& planner = trainer.forward_planner();
  for (const std::int64_t d : {8, 64, 512}) {
    for (const bool overlap : {true, false}) {
      const auto est = planner.price(d, overlap);
      const double best = std::min(
          {est.seconds_1d, est.seconds_15d, est.seconds_replicated});
      double chosen = est.seconds_1d;
      if (est.choice == core::PlanMode::k15D) chosen = est.seconds_15d;
      if (est.choice == core::PlanMode::kReplicated) {
        chosen = est.seconds_replicated;
      }
      EXPECT_EQ(chosen, best) << "d=" << d << " overlap=" << overlap;
      EXPECT_GT(best, 0.0);
    }
  }
}

TEST(Planner, HazardFreeUnderCheckerAndSchedFuzz) {
  const graph::Dataset ds = small_dataset();
  const int epochs = 3;
  const auto base = train_with_plan(ds, 4, epochs, core::PlanMode::k1D);

  // Auto under the hazard checker (train_with_plan asserts zero hazards).
  const auto checked = train_with_plan(ds, 4, epochs, core::PlanMode::kAuto,
                                       /*overlap=*/true,
                                       /*hazard_check=*/true);
  // Auto under the checker AND a perturbed host-thread schedule.
  ScopedEnv fuzz("MGGCN_SCHED_FUZZ", "1309");
  const auto fuzzed = train_with_plan(ds, 4, epochs, core::PlanMode::kAuto,
                                      /*overlap=*/true,
                                      /*hazard_check=*/true);
  for (int e = 0; e < epochs; ++e) {
    const auto ee = static_cast<std::size_t>(e);
    EXPECT_EQ(base[ee].loss, checked[ee].loss) << "epoch " << e;
    EXPECT_EQ(base[ee].loss, fuzzed[ee].loss) << "epoch " << e;
  }
}

TEST(Planner, ScopedPlanModeReachesDefaultConfiguredTrainer) {
  // MGGCN_PLAN must flow through plan_mode() into TrainConfig's default so
  // the environment axis works without touching config code.
  ScopedEnv env("MGGCN_PLAN", "replicated");
  const auto parsed = core::parse_plan_mode("replicated");
  ASSERT_TRUE(parsed.has_value());
  core::ScopedPlanMode scoped(*parsed);
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, core::TrainConfig{});
  const auto stats = trainer.train_epoch();
  EXPECT_GT(stats.plan_products_replicated, 0);
  EXPECT_EQ(stats.plan_products_1d, 0);
  EXPECT_EQ(stats.plan_products_15d, 0);
}

TEST(Planner, ElasticRecoveryReplansOntoFewerDevices) {
  // A permanent device failure repartitions 4 -> 3 devices; the forced
  // 15d strategy becomes infeasible on the odd count, so the rebuilt
  // planner must fall back to 1d (counted as fallbacks) and training must
  // continue hazard-free.
  ScopedEnv check("MGGCN_HAZARD_CHECK", "1");
  const graph::Dataset ds = small_dataset();
  core::TrainConfig config = small_config(core::PlanMode::k15D);
  auto plan =
      std::make_shared<sim::FaultPlan>(sim::FaultPlan::parse("kill:1@2"));

  core::ElasticTrainer trainer(sim::dgx_v100(), 4, ds, config, plan);
  const auto stats = trainer.train(5);
  ASSERT_EQ(stats.size(), 5u);
  EXPECT_EQ(trainer.num_devices(), 3);
  EXPECT_GE(trainer.recoveries().size(), 1u);
  ASSERT_NE(trainer.machine().hazard_checker(), nullptr);
  EXPECT_EQ(trainer.machine().trace().hazard_count(), 0u);
  // Pre-recovery epochs route to the chained schedule; post-recovery ones
  // fall back to the 1D pipeline on the odd device count.
  EXPECT_GT(stats.front().plan_products_15d, 0);
  EXPECT_EQ(stats.back().plan_products_15d, 0);
  EXPECT_GT(stats.back().plan_products_1d, 0);
  EXPECT_GT(stats.back().plan_fallbacks, 0);
}

}  // namespace
}  // namespace mggcn
