// Fault injection and elastic recovery: deterministic fault schedules, the
// communicator's retry-with-backoff, and checkpoint-based recovery onto the
// surviving devices. The key invariants:
//   - a fault-free run with a (possibly empty) plan attached is bit-identical
//     to a run with no plan at all;
//   - absorbed transient faults and link degradation stretch the simulated
//     timeline but never change the numerics;
//   - a permanent device failure recovers onto P-1 devices and converges to
//     the fault-free final loss.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/elastic.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

/// Small but learnable: high-SNR features so the loss converges to a flat
/// plateau, which the recovery test compares across device counts.
graph::Dataset learnable_dataset() {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 240;
  spec.feature_dim = 32;
  spec.num_classes = 4;
  spec.avg_degree = 6.0;
  graph::DatasetOptions options;
  options.seed = 11;
  options.feature_snr = 8.0;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config() {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  config.permute = false;
  return config;
}

std::vector<core::EpochStats> run_plain(const graph::Dataset& ds, int devices,
                                        int epochs,
                                        std::shared_ptr<sim::FaultPlan> plan) {
  sim::Machine machine(sim::dgx_v100(), devices, sim::ExecutionMode::kReal);
  machine.set_fault_plan(std::move(plan));
  core::MgGcnTrainer trainer(machine, ds, small_config());
  return trainer.train(epochs);
}

// --- FaultPlan schedule --------------------------------------------------

TEST(FaultPlan, ParsesCliGrammar) {
  const sim::FaultPlan plan =
      sim::FaultPlan::parse("kill:2@5; flaky:3@1, degrade:0.25@7x4");
  ASSERT_EQ(plan.size(), 3u);
  const auto specs = plan.specs();
  EXPECT_EQ(specs[0].kind, sim::FaultKind::kDeviceFailure);
  EXPECT_EQ(specs[0].device, 2);
  EXPECT_EQ(specs[0].epoch, 5);
  EXPECT_EQ(specs[1].kind, sim::FaultKind::kTransientComm);
  EXPECT_EQ(specs[1].count, 3);
  EXPECT_EQ(specs[1].epoch, 1);
  EXPECT_EQ(specs[2].kind, sim::FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(specs[2].severity, 0.25);
  EXPECT_EQ(specs[2].epoch, 7);
  EXPECT_EQ(specs[2].count, 4);

  EXPECT_TRUE(sim::FaultPlan::parse("").empty());
  EXPECT_THROW(sim::FaultPlan::parse("kill:1"), InvalidArgumentError);
  EXPECT_THROW(sim::FaultPlan::parse("melt:1@2"), InvalidArgumentError);
  EXPECT_THROW(sim::FaultPlan::parse("degrade:1.5@2"), InvalidArgumentError);
}

TEST(FaultPlan, RandomScheduleIsDeterministic) {
  sim::FaultPlan::RandomRates rates;
  rates.device_failure = 0.05;
  rates.transient = 0.2;
  rates.degrade = 0.1;
  const sim::FaultPlan a = sim::FaultPlan::random(42, 50, 4, rates);
  const sim::FaultPlan b = sim::FaultPlan::random(42, 50, 4, rates);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.size(), b.size());
  const sim::FaultPlan c = sim::FaultPlan::random(43, 50, 4, rates);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, EventsAreConsumedExactlyOnce) {
  sim::FaultPlan plan = sim::FaultPlan::parse("kill:1@2;flaky:2@2");
  plan.begin_epoch(0);
  EXPECT_EQ(plan.take_device_failure(), -1);
  EXPECT_FALSE(plan.take_transient_failure());

  plan.begin_epoch(2);
  EXPECT_EQ(plan.take_device_failure(), 1);
  EXPECT_EQ(plan.take_device_failure(), -1);
  EXPECT_TRUE(plan.take_transient_failure());
  EXPECT_TRUE(plan.take_transient_failure());
  EXPECT_FALSE(plan.take_transient_failure());

  // A recovery replay of the same epoch must not re-fire anything.
  plan.begin_epoch(2);
  EXPECT_EQ(plan.take_device_failure(), -1);
  EXPECT_FALSE(plan.take_transient_failure());
}

TEST(FaultPlan, SkippedEpochsStillFireDeviceFailures) {
  sim::FaultPlan plan = sim::FaultPlan::parse("kill:0@3");
  plan.begin_epoch(5);  // plan epochs may skip forward
  EXPECT_EQ(plan.take_device_failure(), 0);
}

TEST(FaultPlan, DegradationWindow) {
  sim::FaultPlan plan = sim::FaultPlan::parse("degrade:0.5@2x2;degrade:0.5@3");
  plan.begin_epoch(1);
  EXPECT_DOUBLE_EQ(plan.link_bandwidth_scale(), 1.0);
  plan.begin_epoch(2);
  EXPECT_DOUBLE_EQ(plan.link_bandwidth_scale(), 0.5);
  plan.begin_epoch(3);  // both active: multipliers compose
  EXPECT_DOUBLE_EQ(plan.link_bandwidth_scale(), 0.25);
  plan.begin_epoch(4);
  EXPECT_DOUBLE_EQ(plan.link_bandwidth_scale(), 1.0);
}

// --- Injection through the machine/communicator --------------------------

TEST(FaultInjection, FaultFreeRunIsBitIdentical) {
  const graph::Dataset ds = small_dataset();
  const auto base = run_plain(ds, 3, 4, nullptr);
  const auto with_plan =
      run_plain(ds, 3, 4, std::make_shared<sim::FaultPlan>());
  ASSERT_EQ(base.size(), with_plan.size());
  for (std::size_t e = 0; e < base.size(); ++e) {
    EXPECT_EQ(base[e].loss, with_plan[e].loss) << "epoch " << e;
    EXPECT_EQ(base[e].train_accuracy, with_plan[e].train_accuracy);
    EXPECT_EQ(base[e].sim_seconds, with_plan[e].sim_seconds);
    EXPECT_EQ(base[e].comm_retries, 0);
    EXPECT_EQ(with_plan[e].comm_retries, 0);
  }
}

TEST(FaultInjection, AbsorbedTransientsKeepNumericsStretchTimeline) {
  const graph::Dataset ds = small_dataset();
  const auto base = run_plain(ds, 3, 4, nullptr);
  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("flaky:2@1;flaky:1@2"));
  const auto faulty = run_plain(ds, 3, 4, plan);
  for (std::size_t e = 0; e < base.size(); ++e) {
    EXPECT_EQ(base[e].loss, faulty[e].loss) << "epoch " << e;
    EXPECT_EQ(base[e].train_accuracy, faulty[e].train_accuracy);
  }
  EXPECT_EQ(faulty[0].comm_retries, 0);
  EXPECT_EQ(faulty[1].comm_retries, 2);
  EXPECT_EQ(faulty[2].comm_retries, 1);
  EXPECT_GT(faulty[1].sim_seconds, base[1].sim_seconds);
  EXPECT_NEAR(faulty[3].sim_seconds, base[3].sim_seconds, 1e-9);
}

TEST(FaultInjection, LinkDegradeKeepsNumericsStretchesTimeline) {
  const graph::Dataset ds = small_dataset();
  const auto base = run_plain(ds, 3, 4, nullptr);
  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("degrade:0.25@1x2"));
  const auto faulty = run_plain(ds, 3, 4, plan);
  for (std::size_t e = 0; e < base.size(); ++e) {
    EXPECT_EQ(base[e].loss, faulty[e].loss) << "epoch " << e;
  }
  EXPECT_GT(faulty[1].sim_seconds, base[1].sim_seconds);
  EXPECT_GT(faulty[2].sim_seconds, base[2].sim_seconds);
  EXPECT_NEAR(faulty[3].sim_seconds, base[3].sim_seconds, 1e-9);
}

TEST(FaultInjection, ExhaustedRetryBudgetSurfacesCommError) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 3, sim::ExecutionMode::kReal);
  machine.set_fault_plan(std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("flaky:16@1")));
  core::MgGcnTrainer trainer(machine, ds, small_config());
  EXPECT_NO_THROW(trainer.train_epoch());
  try {
    trainer.train_epoch();
    FAIL() << "expected CommError";
  } catch (const CommError& err) {
    EXPECT_GT(err.attempts(), 4);  // default CommOptions::max_retries
  }
  machine.synchronize();  // drain the aborted epoch
  EXPECT_GT(machine.trace().fault_count(sim::FaultEventKind::kCommRetry), 0u);
}

TEST(FaultInjection, DeviceFailureSurfacesDeviceLost) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 3, sim::ExecutionMode::kReal);
  machine.set_fault_plan(std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("kill:1@2")));
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.train_epoch();
  trainer.train_epoch();
  try {
    trainer.train_epoch();
    FAIL() << "expected DeviceLostError";
  } catch (const DeviceLostError& err) {
    EXPECT_EQ(err.rank(), 1);
  }
  machine.synchronize();
  EXPECT_TRUE(machine.device(1).is_failed());
  EXPECT_EQ(
      machine.trace().fault_count(sim::FaultEventKind::kDeviceFailure, 2), 1u);
}

// --- Elastic recovery ----------------------------------------------------

double final_loss(const std::vector<core::EpochStats>& stats) {
  return stats.back().loss;
}

TEST(ElasticRecovery, DeviceFailureRecoversAndConverges) {
  const graph::Dataset ds = learnable_dataset();
  constexpr int kEpochs = 120;

  core::ElasticTrainer fault_free(sim::dgx_v100(), 4, ds, small_config(),
                                  nullptr);
  const auto base = fault_free.train(kEpochs);
  EXPECT_EQ(fault_free.num_devices(), 4);
  EXPECT_TRUE(fault_free.recoveries().empty());

  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("kill:2@20"));
  core::ElasticTrainer elastic(sim::dgx_v100(), 4, ds, small_config(), plan);
  const auto recovered = elastic.train(kEpochs);

  EXPECT_EQ(elastic.num_devices(), 3);
  ASSERT_EQ(elastic.recoveries().size(), 1u);
  const core::RecoveryEvent& event = elastic.recoveries().front();
  EXPECT_EQ(event.epoch, 20);
  EXPECT_EQ(event.devices_before, 4);
  EXPECT_EQ(event.devices_after, 3);
  EXPECT_EQ(
      elastic.machine().trace().fault_count(sim::FaultEventKind::kRecovery),
      1u);

  // Up to the failure epoch the trajectories agree to distributed-summation
  // tolerance; after recovery both plateau to the same converged loss.
  ASSERT_EQ(recovered.size(), base.size());
  EXPECT_NEAR(final_loss(recovered), final_loss(base), 1e-5);
  EXPECT_GT(recovered.back().train_accuracy, 0.85);
}

TEST(ElasticRecovery, CommRewindKeepsDeviceCountAndNumerics) {
  const graph::Dataset ds = small_dataset();
  constexpr int kEpochs = 6;

  core::ElasticTrainer fault_free(sim::dgx_v100(), 3, ds, small_config(),
                                  nullptr);
  const auto base = fault_free.train(kEpochs);

  // 12 failed attempts at epoch 3: two aborted tries (5 consumed each),
  // then the remaining 2 are absorbed as ordinary retries.
  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("flaky:12@3"));
  core::ElasticTrainer elastic(sim::dgx_v100(), 3, ds, small_config(), plan);
  const auto stats = elastic.train(kEpochs);

  EXPECT_EQ(elastic.num_devices(), 3);
  EXPECT_EQ(elastic.recoveries().size(), 2u);
  for (const core::RecoveryEvent& event : elastic.recoveries()) {
    EXPECT_EQ(event.devices_before, event.devices_after);
  }
  // Rewind-and-replay on the same machine is numerically invisible.
  for (std::size_t e = 0; e < base.size(); ++e) {
    EXPECT_EQ(base[e].loss, stats[e].loss) << "epoch " << e;
  }
  EXPECT_GT(elastic.total_sim_seconds(), fault_free.total_sim_seconds());
}

TEST(ElasticRecovery, BelowMinDevicesThrows) {
  const graph::Dataset ds = small_dataset();
  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("kill:0@1;kill:0@2"));
  core::ElasticOptions options;
  options.min_devices = 2;
  core::ElasticTrainer elastic(sim::dgx_v100(), 2, ds, small_config(), plan,
                               options);
  EXPECT_THROW(elastic.train(4), Error);
}

}  // namespace
}  // namespace mggcn
