// Unit tests for the util substrate: deterministic RNG, CLI parsing,
// tables, formatting, and the blocking queue the stream workers use.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/blocking_queue.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mggcn::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(9);
  for (const std::uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(3);
  const auto p = rng.permutation<std::uint32_t>(1000);
  std::vector<bool> seen(1000, false);
  for (const auto v : p) {
    ASSERT_LT(v, 1000u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng a(42);
  Rng child = a.fork();
  // Child draws must not equal parent draws shifted trivially.
  EXPECT_NE(a(), child());
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.option("alpha", "1", "a").option("name", "x", "n").flag("verbose", "v");
  const char* argv[] = {"prog", "--alpha", "42", "--verbose",
                        "--name=hello"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_int("alpha"), 42);
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.help_requested());
}

TEST(Cli, DefaultsApply) {
  CliParser cli("test");
  cli.option("x", "7", "x");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("x"), 7);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
}

TEST(Cli, IntListParsing) {
  CliParser cli("test");
  cli.option("gpus", "1,2,4,8", "g");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int_list("gpus"),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Cli, HelpRequested) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.help_requested());
  EXPECT_FALSE(cli.help().empty());
}

// A malformed numeric value must fail loudly and name the offending flag —
// "--alpha 5x" silently parsing as 5 once corrupted an experiment sweep.
TEST(Cli, StrictIntRejectsTrailingGarbage) {
  CliParser cli("test");
  cli.option("alpha", "1", "a");
  const char* argv[] = {"prog", "--alpha", "5x"};
  cli.parse(3, argv);
  try {
    (void)cli.get_int("alpha");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("--alpha"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5x"), std::string::npos);
  }
}

TEST(Cli, StrictIntRejectsNonNumericAndEmpty) {
  CliParser cli("test");
  cli.option("alpha", "nope", "a").option("beta", "", "b");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW((void)cli.get_int("alpha"), InvalidArgumentError);
  EXPECT_THROW((void)cli.get_int("beta"), InvalidArgumentError);
}

TEST(Cli, StrictDoubleRejectsTrailingGarbage) {
  CliParser cli("test");
  cli.option("rate", "1.0", "r");
  const char* argv[] = {"prog", "--rate=2.5qps"};
  cli.parse(2, argv);
  try {
    (void)cli.get_double("rate");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("--rate"), std::string::npos);
  }
  const char* argv2[] = {"prog", "--rate", "0.125"};
  cli.parse(3, argv2);
  EXPECT_EQ(cli.get_double("rate"), 0.125);
}

TEST(Cli, IntListRejectsBadItemNamingFlag) {
  CliParser cli("test");
  cli.option("gpus", "1,2,4x,8", "g");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  try {
    (void)cli.get_int_list("gpus");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("--gpus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4x"), std::string::npos);
  }
}

TEST(Cli, BoolAcceptsDocumentedTokensOnly) {
  CliParser cli("test");
  cli.option("check", "true", "c");
  const char* argv0[] = {"prog"};
  for (const char* token : {"true", "1", "yes", "on"}) {
    const char* argv[] = {"prog", "--check", token};
    cli.parse(3, argv);
    EXPECT_TRUE(cli.get_bool("check")) << token;
  }
  for (const char* token : {"false", "0", "no", "off"}) {
    const char* argv[] = {"prog", "--check", token};
    cli.parse(3, argv);
    EXPECT_FALSE(cli.get_bool("check")) << token;
  }
  // "TRUE", "2", "enabled" used to coerce to false silently.
  for (const char* token : {"TRUE", "2", "enabled", ""}) {
    const char* argv[] = {"prog", "--check", token};
    cli.parse(3, argv);
    try {
      (void)cli.get_bool("check");
      FAIL() << "expected InvalidArgumentError for '" << token << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("--check"), std::string::npos);
    }
  }
  (void)argv0;
}

// The env helpers back every MGGCN_* registry; the registries latch their
// statics on first use, so exercise the helpers directly on scratch names.
TEST(Env, IntFullConsumptionAndRangeNameTheKnob) {
  unsetenv("MGGCN_TEST_INT");
  EXPECT_EQ(env_int("MGGCN_TEST_INT", 7, 1, 100), 7);
  setenv("MGGCN_TEST_INT", "", 1);
  EXPECT_EQ(env_int("MGGCN_TEST_INT", 7, 1, 100), 7);
  setenv("MGGCN_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("MGGCN_TEST_INT", 7, 1, 100), 42);
  for (const char* bad : {"42x", "abc", "1e3", "0", "101"}) {
    setenv("MGGCN_TEST_INT", bad, 1);
    try {
      env_int("MGGCN_TEST_INT", 7, 1, 100);
      FAIL() << "expected InvalidArgumentError for '" << bad << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("MGGCN_TEST_INT"),
                std::string::npos);
    }
  }
  unsetenv("MGGCN_TEST_INT");
}

TEST(Env, DoubleFullConsumptionNamesTheKnob) {
  unsetenv("MGGCN_TEST_DOUBLE");
  EXPECT_EQ(env_double("MGGCN_TEST_DOUBLE", 0.5, 0.0, 1.0, "a fraction"),
            0.5);
  setenv("MGGCN_TEST_DOUBLE", "0.25", 1);
  EXPECT_EQ(env_double("MGGCN_TEST_DOUBLE", 0.5, 0.0, 1.0, "a fraction"),
            0.25);
  for (const char* bad : {"0.25x", "lots", "-0.1", "1.5"}) {
    setenv("MGGCN_TEST_DOUBLE", bad, 1);
    try {
      env_double("MGGCN_TEST_DOUBLE", 0.5, 0.0, 1.0, "a fraction");
      FAIL() << "expected InvalidArgumentError for '" << bad << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("MGGCN_TEST_DOUBLE"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("a fraction"), std::string::npos);
    }
  }
  unsetenv("MGGCN_TEST_DOUBLE");
}

TEST(Env, EnumTypoFailsLoudlyNamingKnobAndTokens) {
  enum class Color { kRed, kBlue };
  const auto parse = [](std::string_view s) -> std::optional<Color> {
    if (s == "red") return Color::kRed;
    if (s == "blue") return Color::kBlue;
    return std::nullopt;
  };
  unsetenv("MGGCN_TEST_ENUM");
  EXPECT_EQ(env_enum("MGGCN_TEST_ENUM", Color::kRed, parse, "'red' or 'blue'"),
            Color::kRed);
  setenv("MGGCN_TEST_ENUM", "blue", 1);
  EXPECT_EQ(env_enum("MGGCN_TEST_ENUM", Color::kRed, parse, "'red' or 'blue'"),
            Color::kBlue);
  setenv("MGGCN_TEST_ENUM", "blu", 1);
  try {
    env_enum("MGGCN_TEST_ENUM", Color::kRed, parse, "'red' or 'blue'");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("MGGCN_TEST_ENUM"), std::string::npos);
    EXPECT_NE(what.find("'red' or 'blue'"), std::string::npos);
    EXPECT_NE(what.find("blu"), std::string::npos);
  }
  unsetenv("MGGCN_TEST_ENUM");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| xx | y    |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3ULL << 30), "3.00 GiB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.500 us");
}

TEST(Format, Speedup) { EXPECT_EQ(format_speedup(1.5), "1.50x"); }

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    MGGCN_CHECK_MSG(false, "context");
    FAIL();
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mggcn::util
