// Math tests for the GCN-specific kernels: the fused softmax cross-entropy
// gradient against finite differences, accuracy counting, masking, and the
// Adam update against hand-computed steps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gcn_kernels.hpp"
#include "dense/matrix.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

TEST(SoftmaxXent, LossMatchesDirectComputation) {
  dense::HostMatrix logits(2, 3);
  const float values[] = {1.0f, 2.0f, 0.5f, 0.0f, 0.0f, 0.0f};
  std::copy(values, values + 6, logits.data());
  const std::int32_t labels[] = {1, 2};

  dense::HostMatrix work = logits;
  const LossResult r = softmax_cross_entropy_inplace(work.view(), labels,
                                                     nullptr, 2);
  // Row 0: -log softmax_1; row 1: uniform -> -log(1/3).
  const double d0 = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
  const double expected = -(std::log(std::exp(2.0) / d0)) + std::log(3.0);
  EXPECT_NEAR(r.loss_sum, expected, 1e-6);
  EXPECT_EQ(r.counted, 2);
  EXPECT_EQ(r.correct, 1);  // row 0 argmax == label, row 1 tie -> index 0
}

TEST(SoftmaxXent, GradientMatchesFiniteDifferences) {
  util::Rng rng(5);
  const std::int64_t n = 6, c = 5;
  dense::HostMatrix logits(n, c);
  logits.init_gaussian(rng);
  std::vector<std::int32_t> labels(n);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(c));

  auto loss_at = [&](const dense::HostMatrix& x) {
    dense::HostMatrix copy = x;
    return softmax_cross_entropy_inplace(copy.view(), labels.data(), nullptr,
                                         n)
        .loss_sum;
  };

  dense::HostMatrix grad = logits;
  softmax_cross_entropy_inplace(grad.view(), labels.data(), nullptr, n);

  const double eps = 1e-3;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      dense::HostMatrix plus = logits, minus = logits;
      plus.at(i, j) += static_cast<float>(eps);
      minus.at(i, j) -= static_cast<float>(eps);
      // The kernel scales by 1/total_train = 1/n.
      const double numeric =
          (loss_at(plus) - loss_at(minus)) / (2.0 * eps) / n;
      ASSERT_NEAR(grad.at(i, j), numeric, 2e-4)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(SoftmaxXent, MaskZeroesGradientAndSkipsLoss) {
  dense::HostMatrix logits(3, 2);
  logits.fill(1.0f);
  const std::int32_t labels[] = {0, 1, 0};
  const std::uint8_t mask[] = {1, 0, 1};
  const LossResult r =
      softmax_cross_entropy_inplace(logits.view(), labels, mask, 2);
  EXPECT_EQ(r.counted, 2);
  // Masked row's gradient is zeroed.
  EXPECT_EQ(logits.at(1, 0), 0.0f);
  EXPECT_EQ(logits.at(1, 1), 0.0f);
  // Unmasked rows' gradients sum to zero across classes.
  EXPECT_NEAR(logits.at(0, 0) + logits.at(0, 1), 0.0f, 1e-6);
}

TEST(SoftmaxXent, GradientRowsSumToZero) {
  util::Rng rng(6);
  dense::HostMatrix logits(10, 7);
  logits.init_gaussian(rng);
  std::vector<std::int32_t> labels(10, 3);
  softmax_cross_entropy_inplace(logits.view(), labels.data(), nullptr, 10);
  for (std::int64_t i = 0; i < 10; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) row_sum += logits.at(i, j);
    ASSERT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(EvaluateAccuracy, CountsArgmaxMatches) {
  dense::HostMatrix logits(3, 3);
  logits.fill(0.0f);
  logits.at(0, 2) = 5.0f;
  logits.at(1, 1) = 5.0f;
  logits.at(2, 0) = 5.0f;
  const std::int32_t labels[] = {2, 0, 0};
  const LossResult r = evaluate_accuracy(logits.view(), labels, nullptr);
  EXPECT_EQ(r.counted, 3);
  EXPECT_EQ(r.correct, 2);
}

TEST(Adam, FirstStepMovesAgainstGradientSign) {
  const std::int64_t n = 4;
  float w[] = {1.0f, 1.0f, 1.0f, 1.0f};
  const float g[] = {0.5f, -0.5f, 2.0f, 0.0f};
  float m[4] = {}, v[4] = {};
  adam_update(w, g, m, v, n, /*step=*/1, 0.1, 0.9, 0.999, 1e-8);
  // With bias correction, the first step is ~lr * sign(g).
  EXPECT_NEAR(w[0], 1.0f - 0.1f, 1e-3);
  EXPECT_NEAR(w[1], 1.0f + 0.1f, 1e-3);
  EXPECT_NEAR(w[2], 1.0f - 0.1f, 1e-3);
  EXPECT_EQ(w[3], 1.0f);  // zero gradient: no movement
}

TEST(Adam, MatchesHandComputedSecondStep) {
  float w = 0.0f, m = 0.0f, v = 0.0f;
  const float g1 = 1.0f, g2 = 2.0f;
  const double lr = 0.01, b1 = 0.9, b2 = 0.999, eps = 1e-8;

  adam_update(&w, &g1, &m, &v, 1, 1, lr, b1, b2, eps);
  adam_update(&w, &g2, &m, &v, 1, 2, lr, b1, b2, eps);

  // Hand recomputation.
  double hm = 0.0, hv = 0.0, hw = 0.0;
  for (int step = 1; step <= 2; ++step) {
    const double g = step == 1 ? 1.0 : 2.0;
    hm = b1 * hm + (1 - b1) * g;
    hv = b2 * hv + (1 - b2) * g * g;
    const double mh = hm / (1 - std::pow(b1, step));
    const double vh = hv / (1 - std::pow(b2, step));
    hw -= lr * mh / (std::sqrt(vh) + eps);
  }
  EXPECT_NEAR(w, hw, 1e-6);
}

TEST(Adam, StateAccumulatesAcrossSteps) {
  float w = 1.0f, m = 0.0f, v = 0.0f;
  const float g = 1.0f;
  for (int step = 1; step <= 50; ++step) {
    adam_update(&w, &g, &m, &v, 1, step, 0.01, 0.9, 0.999, 1e-8);
  }
  // Constant gradient 1: each step moves ~lr, so after 50 steps w ~ 0.5.
  EXPECT_NEAR(w, 1.0f - 0.5f, 0.05f);
  EXPECT_GT(m, 0.9f);
}

TEST(Costs, LossAndAdamDescriptors) {
  const auto lc = loss_cost(100, 10);
  EXPECT_GT(lc.stream_bytes, 0.0);
  EXPECT_GT(lc.flops, 0.0);
  const auto ac = adam_cost(1000);
  EXPECT_DOUBLE_EQ(ac.stream_bytes, 4.0 * 1000 * 7.0);
}

}  // namespace
}  // namespace mggcn::core
