// Inspector-executor SpMM: bin assignment, the inspector on degenerate
// inputs (all-empty tiles, duplicate-summed COO, d == 1), the bit-for-bit
// beta == 0 agreement with naive::spmm across every degree bin, plan
// invalidation via matches(), and the process-wide plan cache behind the
// dispatched planned policy.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mggcn {
namespace {

dense::HostMatrix random_matrix(std::int64_t rows, std::int64_t cols,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  dense::HostMatrix m(rows, cols);
  m.init_gaussian(rng);
  return m;
}

/// One row per degree in `degrees` (column indices drawn from [0, cols)).
sparse::Csr csr_with_degrees(const std::vector<std::int64_t>& degrees,
                             std::int64_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (const std::int64_t deg : degrees) {
    for (std::int64_t e = 0; e < deg; ++e) {
      col_idx.push_back(static_cast<std::uint32_t>(
          rng.uniform_index(static_cast<std::uint64_t>(cols))));
      values.push_back(static_cast<float>(rng.gaussian()));
    }
    row_ptr.push_back(static_cast<std::int64_t>(col_idx.size()));
  }
  return {static_cast<std::int64_t>(degrees.size()), cols, std::move(row_ptr),
          std::move(col_idx), std::move(values)};
}

void expect_bitwise_equal(const dense::HostMatrix& a,
                          const dense::HostMatrix& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.size()) * sizeof(float)),
            0)
      << what;
}

TEST(SpmmPlan, BinOfDegreeBoundaries) {
  using Plan = sparse::SpmmPlan;
  EXPECT_EQ(Plan::bin_of_degree(0), Plan::kEmpty);
  EXPECT_EQ(Plan::bin_of_degree(1), Plan::kDeg1);
  EXPECT_EQ(Plan::bin_of_degree(2), Plan::kDeg2);
  EXPECT_EQ(Plan::bin_of_degree(3), Plan::kDeg3);
  EXPECT_EQ(Plan::bin_of_degree(4), Plan::kShort);
  EXPECT_EQ(Plan::bin_of_degree(Plan::kMediumDegree - 1), Plan::kShort);
  EXPECT_EQ(Plan::bin_of_degree(Plan::kMediumDegree), Plan::kMedium);
  EXPECT_EQ(Plan::bin_of_degree(Plan::kLongDegree - 1), Plan::kMedium);
  EXPECT_EQ(Plan::bin_of_degree(Plan::kLongDegree), Plan::kLong);
  EXPECT_EQ(Plan::bin_of_degree(1 << 20), Plan::kLong);
}

TEST(SpmmPlan, InspectorBinsAndSortsRows) {
  // Degrees chosen to populate every bin; rows within a bin must come back
  // ascending (the executors rely on contiguous, sorted row lists).
  const std::vector<std::int64_t> degrees = {0, 1,   2, 3,  4,  7, 8,
                                             0, 255, 1, 300, 2, 0};
  const sparse::Csr a = csr_with_degrees(degrees, 32, 21);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);

  EXPECT_EQ(plan.rows(), a.rows());
  EXPECT_EQ(plan.cols(), a.cols());
  EXPECT_EQ(plan.nnz(), a.nnz());
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kEmpty), 3);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kDeg1), 2);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kDeg2), 2);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kDeg3), 1);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kShort), 2);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kMedium), 2);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kLong), 1);

  std::int64_t total = 0;
  for (int bin = 0; bin < sparse::SpmmPlan::kNumBins; ++bin) {
    const auto rows = plan.bin_rows(bin);
    total += static_cast<std::int64_t>(rows.size());
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
      EXPECT_LT(rows[i], rows[i + 1]) << "bin " << bin;
    }
    for (const std::uint32_t r : rows) {
      EXPECT_EQ(sparse::SpmmPlan::bin_of_degree(a.row_nnz(r)), bin);
    }
  }
  EXPECT_EQ(total, a.rows());
}

TEST(SpmmPlan, AllEmptyTile) {
  // Partition tiles of sparse regions are frequently all-empty; the plan
  // must handle nnz == 0 (and the executor must still apply beta).
  sparse::Csr a(6, 5, {0, 0, 0, 0, 0, 0, 0}, {}, {});
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kEmpty), 6);
  EXPECT_EQ(plan.nnz(), 0);
  EXPECT_TRUE(plan.matches(a));

  const dense::HostMatrix b = random_matrix(5, 9, 22);
  dense::HostMatrix c(6, 9);
  c.fill(4.0f);
  plan.execute(a, b.view(), c.view(), 1.0f, 0.5f);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 2.0f);
  plan.execute(a, b.view(), c.view(), 1.0f, 0.0f);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

TEST(SpmmPlan, ZeroRowMatrix) {
  sparse::Csr a(0, 4, {0}, {}, {});
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  EXPECT_EQ(plan.rows(), 0);
  EXPECT_TRUE(plan.matches(a));
  const dense::HostMatrix b = random_matrix(4, 3, 23);
  dense::HostMatrix c(0, 3);
  plan.execute(a, b.view(), c.view(), 1.0f, 0.0f);  // must not touch anything
}

TEST(SpmmPlan, DuplicateSummedCooRoundTrip) {
  // Duplicate COO entries are summed by from_coo; the plan sees the merged
  // structure and the executor must reproduce naive exactly on it.
  sparse::Coo coo(8, 8);
  coo.add(0, 1, 1.0f);
  coo.add(0, 1, 2.5f);   // duplicate of (0, 1): merges to 3.5
  coo.add(0, 3, -1.0f);
  coo.add(2, 2, 0.5f);
  coo.add(2, 2, 0.5f);   // duplicate of (2, 2)
  coo.add(5, 0, 1.0f);
  coo.add(5, 7, 2.0f);
  coo.add(5, 7, -2.0f);  // merges to exact 0.0 — stays a structural nonzero
  const sparse::Csr a = sparse::Csr::from_coo(coo);
  ASSERT_EQ(a.nnz(), 5);

  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kEmpty), 5);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kDeg1), 1);
  EXPECT_EQ(plan.bin_count(sparse::SpmmPlan::kDeg2), 2);

  const dense::HostMatrix b = random_matrix(8, 6, 24);
  dense::HostMatrix c_naive(8, 6), c_plan(8, 6);
  c_naive.fill(9.0f);
  c_plan.fill(-9.0f);
  sparse::naive::spmm(a, b.view(), c_naive.view(), 1.0f, 0.0f);
  plan.execute(a, b.view(), c_plan.view(), 1.0f, 0.0f);
  expect_bitwise_equal(c_naive, c_plan, "duplicate-summed COO");
}

TEST(SpmmPlan, BitIdenticalToNaiveAtBetaZeroAcrossBins) {
  // Degrees spanning every bin, including boundary degrees; d == 1 is the
  // degenerate feature width (single-column panels), the others exercise
  // panel tails and multi-panel loops.
  std::vector<std::int64_t> degrees;
  for (const std::int64_t deg :
       {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 254, 255, 256, 257, 600}) {
    degrees.push_back(deg);
    degrees.push_back(deg);  // at least two rows per bin: block paths run
  }
  const sparse::Csr a = csr_with_degrees(degrees, 100, 25);
  for (const std::int64_t d : {std::int64_t{1}, std::int64_t{17},
                               std::int64_t{512}, std::int64_t{513}}) {
    const dense::HostMatrix b = random_matrix(100, d, 26 + d);
    const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
    for (const float alpha : {1.0f, 0.5f}) {
      dense::HostMatrix c_naive(a.rows(), d), c_plan(a.rows(), d);
      c_naive.fill(7.0f);  // stale contents beta == 0 must ignore
      c_plan.fill(-3.0f);
      sparse::naive::spmm(a, b.view(), c_naive.view(), alpha, 0.0f);
      plan.execute(a, b.view(), c_plan.view(), alpha, 0.0f);
      expect_bitwise_equal(c_naive, c_plan,
                           "d=" + std::to_string(d) +
                               " alpha=" + std::to_string(alpha));
    }
  }
}

TEST(SpmmPlan, NonzeroBetaMatchesNaive) {
  const sparse::Csr a = csr_with_degrees({0, 1, 3, 8, 40, 256, 2, 0}, 64, 27);
  const dense::HostMatrix b = random_matrix(64, 33, 28);
  const dense::HostMatrix c0 = random_matrix(8, 33, 29);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  for (const float beta : {1.0f, 0.5f}) {
    dense::HostMatrix c_naive = c0;
    dense::HostMatrix c_plan = c0;
    sparse::naive::spmm(a, b.view(), c_naive.view(), 1.0f, beta);
    plan.execute(a, b.view(), c_plan.view(), 1.0f, beta);
    expect_bitwise_equal(c_naive, c_plan, "beta=" + std::to_string(beta));
  }
}

TEST(SpmmPlan, ValueMutationKeepsPlanValidStructureChangeDoesNot) {
  sparse::Csr a = csr_with_degrees({2, 0, 5, 9}, 16, 30);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  ASSERT_TRUE(plan.matches(a));

  // Value updates (edge_softmax-style reweighting) keep the plan valid and
  // the executor must read the *new* values.
  for (float& v : a.values_mutable()) v *= 2.0f;
  EXPECT_TRUE(plan.matches(a));
  const dense::HostMatrix b = random_matrix(16, 8, 31);
  dense::HostMatrix c_naive(4, 8), c_plan(4, 8);
  sparse::naive::spmm(a, b.view(), c_naive.view(), 1.0f, 0.0f);
  plan.execute(a, b.view(), c_plan.view(), 1.0f, 0.0f);
  expect_bitwise_equal(c_naive, c_plan, "after value mutation");

  // A structurally different matrix (same shape, different row layout) must
  // be rejected even though the executor would not crash on it.
  const sparse::Csr other = csr_with_degrees({9, 5, 0, 2}, 16, 32);
  EXPECT_FALSE(plan.matches(other));
  dense::HostMatrix c(4, 8);
  EXPECT_THROW(plan.execute(other, b.view(), c.view(), 1.0f, 0.0f),
               InvalidArgumentError);
}

TEST(SpmmPlan, DispatchedPlannedPolicyUsesCache) {
  sparse::clear_spmm_plan_cache();
  const sparse::Csr a = csr_with_degrees({1, 4, 0, 12, 300}, 40, 33);
  const dense::HostMatrix b = random_matrix(40, 16, 34);
  dense::HostMatrix c_naive(5, 16), c_plan(5, 16);

  sparse::naive::spmm(a, b.view(), c_naive.view(), 1.0f, 0.0f);
  const auto before = sparse::spmm_plan_cache_stats();
  sparse::planned::spmm(a, b.view(), c_plan.view(), 1.0f, 0.0f);
  sparse::planned::spmm(a, b.view(), c_plan.view(), 1.0f, 0.0f);
  const auto after = sparse::spmm_plan_cache_stats();

  expect_bitwise_equal(c_naive, c_plan, "dispatched planned policy");
  EXPECT_EQ(after.misses, before.misses + 1);  // built exactly once
  EXPECT_EQ(after.hits, before.hits + 1);      // second call reused it
  EXPECT_GE(after.entries, 1u);
  sparse::clear_spmm_plan_cache();
  EXPECT_EQ(sparse::spmm_plan_cache_stats().entries, 0u);
}

TEST(SpmmPlan, PlanBytesAccountsRowListsAndGhostMap) {
  const sparse::Csr a = csr_with_degrees({0, 1, 2, 3}, 8, 35);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  // Four rows in the bin-sorted list, the three non-empty rows of the
  // natural-order sweep list, plus the ghost map (required-column list +
  // one remapped index per nonzero).
  EXPECT_EQ(plan.plan_bytes(),
            (4u + 3u + static_cast<std::uint64_t>(plan.ghost_count()) +
             static_cast<std::uint64_t>(a.nnz())) *
                sizeof(std::uint32_t));
  EXPECT_EQ(plan.ghost_bytes(),
            (static_cast<std::uint64_t>(plan.ghost_count()) +
             static_cast<std::uint64_t>(a.nnz())) *
                sizeof(std::uint32_t));
  EXPECT_EQ(plan.sweep_rows().size(), 3u);
  EXPECT_EQ(plan.sweep_rows()[0], 1u);
  EXPECT_EQ(plan.sweep_rows()[2], 3u);
}

// --- Ghost sets (compacted exchange) ------------------------------------

/// Packs the ghost rows of `b` (in ghost_rows() order) into a compact
/// matrix, the way the sendv_rows producer does.
dense::HostMatrix pack_ghost_rows(const sparse::SpmmPlan& plan,
                                  const dense::HostMatrix& b) {
  dense::HostMatrix packed(plan.ghost_count(), b.cols());
  const auto ghosts = plan.ghost_rows();
  for (std::size_t i = 0; i < ghosts.size(); ++i) {
    std::memcpy(packed.data() + static_cast<std::int64_t>(i) * b.cols(),
                b.data() + static_cast<std::int64_t>(ghosts[i]) * b.cols(),
                static_cast<std::size_t>(b.cols()) * sizeof(float));
  }
  return packed;
}

TEST(SpmmPlan, GhostSetIsSortedDistinctAndRemapRoundTrips) {
  const sparse::Csr a = csr_with_degrees({0, 3, 1, 0, 17, 5}, 40, 36);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  const auto ghosts = plan.ghost_rows();
  ASSERT_GT(plan.ghost_count(), 0);
  ASSERT_LE(plan.ghost_count(), std::min(a.nnz(), a.cols()));
  for (std::size_t i = 0; i + 1 < ghosts.size(); ++i) {
    EXPECT_LT(ghosts[i], ghosts[i + 1]);  // sorted, no duplicates
  }
  // Every ghost entry is an actually-used column, and the per-nonzero
  // remap maps each edge back to its original column.
  const dense::HostMatrix b = random_matrix(a.cols(), 4, 37);
  const dense::HostMatrix packed = pack_ghost_rows(plan, b);
  dense::HostMatrix c_dense(a.rows(), 4), c_compact(a.rows(), 4);
  plan.execute(a, b.view(), c_dense.view(), 1.0f, 0.0f);
  plan.execute_compact(a, packed.view(), c_compact.view(), 1.0f, 0.0f);
  expect_bitwise_equal(c_dense, c_compact, "remap round trip");
}

TEST(SpmmPlan, GhostSetEmptyTile) {
  // An all-empty tile needs nothing from its source block: the compact
  // executor runs with a zero-row B and must still apply beta.
  sparse::Csr a(5, 7, {0, 0, 0, 0, 0, 0}, {}, {});
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  EXPECT_EQ(plan.ghost_count(), 0);
  EXPECT_EQ(plan.ghost_bytes(), 0u);
  dense::HostMatrix empty_b(0, 3);
  dense::HostMatrix c(5, 3);
  c.fill(6.0f);
  plan.execute_compact(a, empty_b.view(), c.view(), 1.0f, 0.5f);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 3.0f);
  plan.execute_compact(a, empty_b.view(), c.view(), 1.0f, 0.0f);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
}

TEST(SpmmPlan, GhostSetFullDensityTile) {
  // Every column used: the ghost set is the identity and the packed input
  // equals the dense input, so compaction saves nothing but stays correct.
  const std::int64_t cols = 6;
  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      col_idx.push_back(static_cast<std::uint32_t>(c));
      values.push_back(static_cast<float>(r * cols + c) * 0.25f - 1.0f);
    }
    row_ptr.push_back(static_cast<std::int64_t>(col_idx.size()));
  }
  const sparse::Csr a(3, cols, std::move(row_ptr), std::move(col_idx),
                      std::move(values));
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  ASSERT_EQ(plan.ghost_count(), cols);
  EXPECT_DOUBLE_EQ(plan.ghost_density(), 1.0);
  for (std::int64_t c = 0; c < cols; ++c) {
    EXPECT_EQ(plan.ghost_rows()[static_cast<std::size_t>(c)],
              static_cast<std::uint32_t>(c));
  }
  const dense::HostMatrix b = random_matrix(cols, 9, 38);
  dense::HostMatrix c_dense(3, 9), c_compact(3, 9);
  plan.execute(a, b.view(), c_dense.view(), 1.0f, 0.0f);
  plan.execute_compact(a, b.view(), c_compact.view(), 1.0f, 0.0f);
  expect_bitwise_equal(c_dense, c_compact, "full-density tile");
}

TEST(SpmmPlan, GhostSetSingleRowTile) {
  const sparse::Csr a = csr_with_degrees({5}, 50, 39);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  ASSERT_GT(plan.ghost_count(), 0);
  ASSERT_LE(plan.ghost_count(), 5);
  const dense::HostMatrix b = random_matrix(50, 13, 40);
  const dense::HostMatrix packed = pack_ghost_rows(plan, b);
  for (const float beta : {0.0f, 1.0f, 0.5f}) {
    dense::HostMatrix c_dense = random_matrix(1, 13, 41);
    dense::HostMatrix c_compact = c_dense;
    plan.execute(a, b.view(), c_dense.view(), 1.0f, beta);
    plan.execute_compact(a, packed.view(), c_compact.view(), 1.0f, beta);
    expect_bitwise_equal(c_dense, c_compact,
                         "single-row beta=" + std::to_string(beta));
  }
}

TEST(SpmmPlan, ExecuteCompactBitIdenticalAcrossBinsAndBetas) {
  std::vector<std::int64_t> degrees;
  for (const std::int64_t deg : {0, 1, 2, 3, 7, 8, 255, 256, 600}) {
    degrees.push_back(deg);
    degrees.push_back(deg);
  }
  const sparse::Csr a = csr_with_degrees(degrees, 4096, 42);
  const sparse::SpmmPlan plan = sparse::SpmmPlan::inspect(a);
  ASSERT_LT(plan.ghost_count(), a.cols());  // actually compacts something
  const dense::HostMatrix b = random_matrix(4096, 33, 43);
  const dense::HostMatrix packed = pack_ghost_rows(plan, b);
  for (const float beta : {0.0f, 1.0f, 0.5f}) {
    dense::HostMatrix c_dense = random_matrix(a.rows(), 33, 44);
    dense::HostMatrix c_compact = c_dense;
    plan.execute(a, b.view(), c_dense.view(), 1.0f, beta);
    plan.execute_compact(a, packed.view(), c_compact.view(), 1.0f, beta);
    expect_bitwise_equal(c_dense, c_compact,
                         "beta=" + std::to_string(beta));
  }
  // Shape misuse fails loudly: a full-width B is not a packed input.
  dense::HostMatrix c(a.rows(), 33);
  EXPECT_THROW(plan.execute_compact(a, b.view(), c.view(), 1.0f, 0.0f),
               InvalidArgumentError);
}

TEST(SpmmPlan, GhostFingerprintTracksRequiredSet) {
  const sparse::Csr a = csr_with_degrees({4, 9, 0, 2}, 64, 45);
  const sparse::SpmmPlan plan_a = sparse::SpmmPlan::inspect(a);
  const sparse::SpmmPlan plan_a2 = sparse::SpmmPlan::inspect(a);
  EXPECT_EQ(plan_a.ghost_fingerprint(), plan_a2.ghost_fingerprint());

  const sparse::Csr other = csr_with_degrees({4, 9, 0, 2}, 64, 46);
  const sparse::SpmmPlan plan_other = sparse::SpmmPlan::inspect(other);
  ASSERT_NE(plan_a.ghost_rows().size(), 0u);
  // Different column draws → different required sets → different prints.
  EXPECT_NE(plan_a.ghost_fingerprint(), plan_other.ghost_fingerprint());

  EXPECT_EQ(sparse::count_distinct_cols(a), plan_a.ghost_count());
  EXPECT_EQ(sparse::count_distinct_cols(other), plan_other.ghost_count());
}

}  // namespace
}  // namespace mggcn
