// Deeper trainer coverage: every optimization-flag combination against the
// serial reference, multi-layer models, permutation invariance of the math,
// logits gathering, OOM surfacing, and simulated-time properties.
#include <gtest/gtest.h>

#include <tuple>

#include "comm/comm_mode.hpp"
#include "core/part_mode.hpp"
#include "core/plan_mode.hpp"
#include "core/reference.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {
namespace {

graph::Dataset tiny_dataset(std::int64_t feature_dim = 20,
                            std::int64_t classes = 4) {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = 300;
  spec.feature_dim = feature_dim;
  spec.num_classes = classes;
  spec.avg_degree = 9.0;
  graph::DatasetOptions options;
  options.seed = 21;
  return graph::make_dataset(spec, options);
}

// (gpus, reorder, skip, overlap, hidden dims)
using VariantParam =
    std::tuple<int, bool, bool, bool, std::vector<std::int64_t>>;

class TrainerVariants : public ::testing::TestWithParam<VariantParam> {};

TEST_P(TrainerVariants, MatchesReferenceLossTrajectory) {
  const auto& [gpus, reorder, skip, overlap, hidden] = GetParam();
  const graph::Dataset ds = tiny_dataset();

  TrainConfig config;
  config.hidden_dims = hidden;
  config.permute = false;  // exact comparability with the reference
  config.reorder_gemm_spmm = reorder;
  config.skip_first_backward_spmm = skip;
  config.overlap = overlap;
  config.seed = 13;

  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  MgGcnTrainer trainer(machine, ds, config);
  ReferenceTrainer reference(ds, config);

  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto dist = trainer.train_epoch();
    const auto ref = reference.train_epoch();
    ASSERT_NEAR(dist.loss, ref.loss, 2e-3 * std::max(1.0, ref.loss))
        << "epoch " << epoch;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Flags, TrainerVariants,
    ::testing::Values(
        // 2-layer, narrow->wide (exercises the order switch).
        VariantParam{1, true, true, true, {48}},
        VariantParam{4, true, true, true, {48}},
        VariantParam{4, false, true, true, {48}},
        VariantParam{4, true, false, true, {48}},
        VariantParam{4, true, true, false, {48}},
        VariantParam{3, false, false, false, {48}},
        // 3-layer model (the DistGNN comparison shape).
        VariantParam{4, true, true, true, {32, 32}},
        VariantParam{2, false, false, true, {32, 32}},
        // Single-layer edge case.
        VariantParam{4, true, true, true, {}},
        // 8 devices on a small graph.
        VariantParam{8, true, true, true, {16}}));

TEST(TrainerMath, BalancedNnzPartitionMatchesReference) {
  // The alternative cut-point strategy changes only the schedule, never
  // the math.
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {24};
  config.permute = false;
  config.part_mode = PartMode::kBalanced;
  config.seed = 23;

  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  MgGcnTrainer trainer(machine, ds, config);
  ReferenceTrainer reference(ds, config);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto dist = trainer.train_epoch();
    const auto ref = reference.train_epoch();
    ASSERT_NEAR(dist.loss, ref.loss, 2e-3 * std::max(1.0, ref.loss));
  }
}

TEST(TrainerMath, PermutationDoesNotChangeTraining) {
  // §5.2's permutation relabels vertices; the training math is identical,
  // so losses must match the unpermuted run to fp-reduction tolerance.
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {24};
  config.seed = 31;

  TrainConfig permuted = config;
  permuted.permute = true;
  TrainConfig identity = config;
  identity.permute = false;

  sim::Machine m1(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  sim::Machine m2(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  MgGcnTrainer a(m1, ds, permuted);
  MgGcnTrainer b(m2, ds, identity);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto sa = a.train_epoch();
    const auto sb = b.train_epoch();
    ASSERT_NEAR(sa.loss, sb.loss, 5e-3 * std::max(1.0, sb.loss));
    ASSERT_EQ(sa.train_accuracy, sb.train_accuracy);
  }
}

TEST(TrainerMath, GatherLogitsMatchesReferenceForward) {
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 17;

  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  MgGcnTrainer trainer(machine, ds, config);
  trainer.run_forward();
  const dense::HostMatrix logits = trainer.gather_logits();

  ReferenceTrainer reference(ds, config);
  const dense::HostMatrix expected = reference.forward();
  EXPECT_LT(dense::max_abs_diff(logits.view(), expected.view()), 1e-4);
}

TEST(TrainerMath, SkipApproximationChangesGradientsOnlySlightly) {
  // §4.4's skip replaces the first-layer backward SpMM by identity scaling;
  // the paper argues it is benign. Verify the loss trajectories stay close
  // (but are allowed to differ — it IS an approximation).
  const graph::Dataset ds = tiny_dataset();
  TrainConfig with_skip;
  with_skip.hidden_dims = {24};
  with_skip.permute = false;
  with_skip.seed = 19;
  TrainConfig without = with_skip;
  without.skip_first_backward_spmm = false;

  sim::Machine m1(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  sim::Machine m2(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  MgGcnTrainer a(m1, ds, with_skip);
  MgGcnTrainer b(m2, ds, without);
  double loss_a = 0.0, loss_b = 0.0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    loss_a = a.train_epoch().loss;
    loss_b = b.train_epoch().loss;
  }
  EXPECT_LT(loss_a, 1.3 * loss_b);
  EXPECT_GT(loss_a, 0.5 * loss_b);
}

TEST(TrainerSim, MoreDevicesReduceEpochTimeOnLargeGraphs) {
  // The device-scaling curve is stated for the paper's dense broadcast
  // exchange; pin it so a forced MGGCN_COMM=compact run (an intentional
  // pessimization on dense graphs) keeps the premise. Likewise the 1D
  // staged pipeline: a forced MGGCN_PLAN=15d run serializes two phases on
  // half the ranks each, which is not the scaling path under study. And
  // the §5.2 random permutation: a forced MGGCN_PART=locality run trades
  // up to the 1.15 slack of nnz balance for a cut the dense broadcast
  // cannot monetize, bending exactly the curve asserted here.
  comm::ScopedCommMode dense_mode(comm::CommMode::kDense);
  core::ScopedPlanMode plan_1d(core::PlanMode::k1D);
  core::ScopedPartMode part_random(core::PartMode::kRandom);
  graph::DatasetSpec spec = graph::arxiv();
  graph::DatasetOptions options;
  options.scale = 8.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  // Near-monotone scaling (2 GPUs on sparse Arxiv is roughly break-even,
  // matching the paper's Fig. 10), with a clear win by 8 GPUs.
  std::vector<double> times;
  for (const int gpus : {1, 2, 4, 8}) {
    sim::Machine machine(sim::dgx_v100(), gpus,
                         sim::ExecutionMode::kPhantom);
    MgGcnTrainer trainer(machine, ds, model_hidden512());
    trainer.train_epoch();
    times.push_back(trainer.train_epoch().sim_seconds);
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i], times[i - 1] * 1.05) << "step " << i;
  }
  EXPECT_LT(times.back(), times.front() / 1.5);
}

TEST(TrainerSim, OverlapNeverSlowsTheEpoch) {
  graph::DatasetSpec spec = graph::products();
  graph::DatasetOptions options;
  options.scale = 256.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  for (const int gpus : {2, 4, 8}) {
    double with = 0.0, without = 0.0;
    for (const bool overlap : {true, false}) {
      TrainConfig config = model_hidden512();
      config.overlap = overlap;
      // Overlap is a property of the 1D staged pipeline; the auto planner
      // may pick the replicated executor (which ignores overlap but still
      // pays the config's comm scaling), breaking the comparison.
      config.plan_mode = PlanMode::k1D;
      sim::Machine machine(sim::dgx_v100(), gpus,
                           sim::ExecutionMode::kPhantom);
      MgGcnTrainer trainer(machine, ds, config);
      trainer.train_epoch();
      (overlap ? with : without) = trainer.train_epoch().sim_seconds;
    }
    EXPECT_LE(with, without * 1.001) << gpus << " gpus";
  }
}

TEST(TrainerSim, EpochTimeIsDeterministic) {
  graph::DatasetSpec spec = graph::arxiv();
  graph::DatasetOptions options;
  options.scale = 32.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  std::vector<double> times;
  for (int run = 0; run < 3; ++run) {
    sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom);
    MgGcnTrainer trainer(machine, ds, model_hidden512());
    trainer.train_epoch();
    times.push_back(trainer.train_epoch().sim_seconds);
  }
  EXPECT_DOUBLE_EQ(times[0], times[1]);
  EXPECT_DOUBLE_EQ(times[1], times[2]);
}

TEST(TrainerMemory, OomSurfacesAsException) {
  graph::DatasetSpec spec = graph::arxiv();
  graph::DatasetOptions options;
  options.scale = 8.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  sim::MachineProfile tiny = sim::dgx_v100();
  tiny.device.memory_bytes = 8 << 20;  // 8 MiB "GPU"
  sim::Machine machine(tiny, 2, sim::ExecutionMode::kPhantom);
  EXPECT_THROW(MgGcnTrainer(machine, ds, model_hidden512()),
               OutOfMemoryError);
}

TEST(TrainerMemory, BuffersFollowTheLPlus3Scheme) {
  // Peak memory must grow by exactly one n_r x d buffer per extra layer
  // (plus the layer's weight state) — the §4.2 claim.
  graph::DatasetSpec spec = graph::arxiv();
  spec.feature_dim = 64;
  spec.num_classes = 64;
  graph::DatasetOptions options;
  options.scale = 16.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  auto peak = [&](int layers) {
    TrainConfig config;
    config.hidden_dims.assign(static_cast<std::size_t>(layers - 1), 64);
    sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kPhantom);
    MgGcnTrainer trainer(machine, ds, config);
    return static_cast<double>(trainer.peak_memory_bytes());
  };

  const double per_layer_buffer = static_cast<double>(ds.n()) * 64 * 4;
  const double weight_state = 4.0 * 64 * 64 * 4;
  const double slope = (peak(20) - peak(10)) / 10.0;
  EXPECT_NEAR(slope, per_layer_buffer + weight_state,
              0.02 * per_layer_buffer);
}

TEST(TrainerMetrics, BreakdownCoversAllOperationKinds) {
  const graph::Dataset ds = tiny_dataset();
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  TrainConfig config;
  config.hidden_dims = {16};
  MgGcnTrainer trainer(machine, ds, config);
  const EpochStats stats = trainer.train_epoch();
  for (const auto kind :
       {sim::TaskKind::kSpMM, sim::TaskKind::kGeMM, sim::TaskKind::kComm,
        sim::TaskKind::kActivation, sim::TaskKind::kLoss,
        sim::TaskKind::kOptimizer}) {
    ASSERT_TRUE(stats.busy_by_kind.count(kind))
        << sim::task_kind_name(kind);
    EXPECT_GT(stats.busy_by_kind.at(kind), 0.0);
  }
}

TEST(TrainerConfig, ReplicatedStateBytes) {
  EXPECT_EQ(replicated_state_bytes({10, 20, 5}),
            4u * (10 * 20 + 20 * 5) * 4u);
}

}  // namespace
}  // namespace mggcn::core
