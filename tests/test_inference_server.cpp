// Inference serving tier: predictions must be bit-identical to the
// trainer's forward pass at every batch size, cache mode, and scheduling
// fuzz seed; the workload generator must be seed-deterministic; and the
// batcher/cache accounting must reconcile.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "core/inference_server.hpp"
#include "core/serve_mode.hpp"
#include "core/trainer.hpp"
#include "core/workload.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config() {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  return config;
}

serve::WorkloadOptions load_options() {
  serve::WorkloadOptions options;
  options.rate_qps = 50000.0;
  options.deadline = 2e-3;
  options.seed = 11;
  return options;
}

/// Every prediction row must equal the trainer's logits row for the
/// queried vertex, bit for bit.
void expect_bit_identical(const dense::HostMatrix& predictions,
                          const dense::HostMatrix& logits,
                          const std::vector<serve::Request>& requests) {
  ASSERT_EQ(predictions.rows(), static_cast<std::int64_t>(requests.size()));
  ASSERT_EQ(predictions.cols(), logits.cols());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (std::int64_t c = 0; c < logits.cols(); ++c) {
      ASSERT_EQ(predictions.at(static_cast<std::int64_t>(i), c),
                logits.at(requests[i].vertex, c))
          << "request " << i << " vertex " << requests[i].vertex << " class "
          << c;
    }
  }
}

TEST(InferenceServer, BitIdenticalAcrossBatchPoliciesAndCacheModes) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.train(2);
  trainer.run_forward();
  const dense::HostMatrix logits = trainer.gather_logits();

  serve::WorkloadOptions wl = load_options();
  wl.skew = serve::QuerySkew::kZipf;
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(160);

  for (const core::BatchPolicy policy :
       {core::BatchPolicy::kPerRequest, core::BatchPolicy::kFixed,
        core::BatchPolicy::kDeadline}) {
    for (const core::ServeCacheMode cache :
         {core::ServeCacheMode::kOff, core::ServeCacheMode::kEmbed,
          core::ServeCacheMode::kAuto}) {
      core::ServeOptions options;
      options.policy = policy;
      options.max_batch = 16;
      options.cache_mode = cache;
      core::InferenceServer server(machine, trainer, ds, options);
      const auto stats = server.serve(requests);
      EXPECT_EQ(stats.serve_requests,
                static_cast<std::int64_t>(requests.size()));
      EXPECT_GT(stats.serve_qps, 0.0);
      expect_bit_identical(server.predictions(), logits, requests);
      if (policy == core::BatchPolicy::kPerRequest) {
        EXPECT_EQ(stats.serve_batches, stats.serve_requests);
      } else {
        EXPECT_LT(stats.serve_batches, stats.serve_requests);
      }
      const bool auto_declines =
          cache == core::ServeCacheMode::kAuto &&
          policy == core::BatchPolicy::kPerRequest;
      if (cache == core::ServeCacheMode::kOff || auto_declines) {
        // kAuto declines the cache for per-request serving: one admission
        // kernel per single-query batch can never pay for itself.
        EXPECT_EQ(server.cache_mode_used(), core::ServeCacheMode::kOff);
        EXPECT_EQ(stats.serve_cache_hits, 0u);
      } else {
        // On a multi-device machine the cost model keeps the cache.
        EXPECT_EQ(server.cache_mode_used(), core::ServeCacheMode::kEmbed);
        EXPECT_GT(stats.serve_cache_hits, 0u);
      }
    }
  }
}

TEST(InferenceServer, BitIdenticalWhenLastLayerRunsSpmmFirst) {
  // hidden 4 < 5 classes flips the last layer to SpMM-first (§4.4), the
  // path where serving runs a per-batch GeMM after the 1-row SpMM.
  const graph::Dataset ds = small_dataset();
  core::TrainConfig config = small_config();
  config.hidden_dims = {4};
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, config);
  trainer.train(2);
  trainer.run_forward();
  ASSERT_TRUE(trainer.layer_spmm_first(trainer.num_layers() - 1));
  const dense::HostMatrix logits = trainer.gather_logits();

  serve::WorkloadGen gen(ds.n(), load_options());
  const auto requests = gen.generate(96);
  core::ServeOptions options;
  options.policy = core::BatchPolicy::kDeadline;
  core::InferenceServer server(machine, trainer, ds, options);
  server.serve(requests);
  expect_bit_identical(server.predictions(), logits, requests);
}

TEST(InferenceServer, GraphUpdatesInvalidateButStayBitIdentical) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.train(1);
  trainer.run_forward();
  const dense::HostMatrix logits = trainer.gather_logits();

  serve::WorkloadOptions wl = load_options();
  wl.skew = serve::QuerySkew::kZipf;
  wl.update_rate = 5000.0;
  wl.update_touch = 200;
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(200);
  const auto updates = gen.generate_updates(requests.back().arrival);
  ASSERT_FALSE(updates.empty());

  core::ServeOptions options;
  options.cache_mode = core::ServeCacheMode::kEmbed;
  core::InferenceServer server(machine, trainer, ds, options);
  const auto stats = server.serve(requests, updates);
  EXPECT_EQ(stats.serve_graph_updates,
            static_cast<std::int64_t>(updates.size()));
  EXPECT_GT(stats.serve_invalidations, 0);
  expect_bit_identical(server.predictions(), logits, requests);
}

TEST(InferenceServer, HazardCleanWithCacheAndUpdates) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                       /*hazard_check=*/true);
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.train(1);
  trainer.run_forward();

  serve::WorkloadOptions wl = load_options();
  wl.update_rate = 5000.0;
  wl.update_touch = 200;
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(120);
  const auto updates = gen.generate_updates(requests.back().arrival);

  core::ServeOptions options;
  options.cache_mode = core::ServeCacheMode::kEmbed;
  core::InferenceServer server(machine, trainer, ds, options);
  server.serve(requests, updates);
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(InferenceServer, BitIdenticalUnderSchedulingFuzz) {
  const graph::Dataset ds = small_dataset();
  dense::HostMatrix logits;
  dense::HostMatrix baseline;
  std::vector<serve::Request> requests;
  for (const char* seed : {"", "20220829", "1309"}) {
    setenv("MGGCN_SCHED_FUZZ", seed, 1);
    sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
    core::MgGcnTrainer trainer(machine, ds, small_config());
    trainer.train(1);
    trainer.run_forward();
    if (logits.rows() == 0) logits = trainer.gather_logits();

    serve::WorkloadGen gen(ds.n(), load_options());
    if (requests.empty()) requests = gen.generate(96);
    core::InferenceServer server(machine, trainer, ds, {});
    server.serve(requests);
    expect_bit_identical(server.predictions(), logits, requests);
    if (baseline.rows() == 0) baseline = server.predictions();
  }
  unsetenv("MGGCN_SCHED_FUZZ");
}

TEST(InferenceServer, PhantomModeAccountsWithoutValues) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom);
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.run_forward();

  serve::WorkloadGen gen(ds.n(), load_options());
  const auto requests = gen.generate(64);
  core::InferenceServer server(machine, trainer, ds, {});
  const auto stats = server.serve(requests);
  EXPECT_EQ(stats.serve_requests, 64);
  EXPECT_GT(stats.serve_qps, 0.0);
  EXPECT_GT(stats.serve_p99_latency, 0.0);
  EXPECT_GE(stats.serve_p99_latency, stats.serve_p50_latency);
  EXPECT_EQ(server.predictions().rows(), 0);
}

TEST(InferenceServer, DeadlineBatchingBeatsPerRequestUnderLoad) {
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom);
  core::MgGcnTrainer trainer(machine, ds, small_config());
  trainer.run_forward();

  serve::WorkloadOptions wl = load_options();
  wl.rate_qps = 500000.0;  // saturating
  serve::WorkloadGen gen(ds.n(), wl);
  const auto requests = gen.generate(512);

  core::ServeOptions per_request;
  per_request.policy = core::BatchPolicy::kPerRequest;
  core::InferenceServer baseline(machine, trainer, ds, per_request);
  const auto base_stats = baseline.serve(requests);

  core::ServeOptions deadline;
  deadline.policy = core::BatchPolicy::kDeadline;
  core::InferenceServer batched(machine, trainer, ds, deadline);
  const auto batched_stats = batched.serve(requests);

  EXPECT_GT(batched_stats.serve_mean_batch_size, 1.0);
  EXPECT_GT(batched_stats.serve_qps, base_stats.serve_qps);
  EXPECT_LE(batched_stats.serve_p99_latency, base_stats.serve_p99_latency);
}

TEST(WorkloadGen, SeedDeterminism) {
  serve::WorkloadOptions wl = load_options();
  serve::WorkloadGen a(1000, wl);
  serve::WorkloadGen b(1000, wl);
  const auto ra = a.generate(128);
  const auto rb = b.generate(128);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].arrival, rb[i].arrival);
    EXPECT_EQ(ra[i].vertex, rb[i].vertex);
  }
  wl.seed = 12;
  serve::WorkloadGen c(1000, wl);
  const auto rc = c.generate(128);
  bool any_different = false;
  for (std::size_t i = 0; i < rc.size(); ++i) {
    any_different |= rc[i].vertex != ra[i].vertex;
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadGen, ArrivalsAreOrderedAndRatePaced) {
  serve::WorkloadOptions wl = load_options();
  wl.rate_qps = 10000.0;
  serve::WorkloadGen gen(1000, wl);
  const auto requests = gen.generate(2000);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    EXPECT_GE(requests[i].arrival, requests[i - 1].arrival);
  }
  // Mean inter-arrival ~ 1/rate (loose 2x band).
  const double span = requests.back().arrival - requests.front().arrival;
  const double mean_gap = span / static_cast<double>(requests.size() - 1);
  EXPECT_GT(mean_gap, 0.5e-4);
  EXPECT_LT(mean_gap, 2.0e-4);
}

TEST(WorkloadGen, ZipfSkewsAndSpreadsHotVertices) {
  serve::WorkloadOptions wl = load_options();
  wl.skew = serve::QuerySkew::kZipf;
  wl.zipf_theta = 1.1;
  serve::WorkloadGen gen(1000, wl);
  const auto requests = gen.generate(4000);
  std::vector<int> counts(1000, 0);
  for (const auto& req : requests) counts[req.vertex]++;
  const int hottest = *std::max_element(counts.begin(), counts.end());
  // Uniform would put ~4 queries on each vertex; Zipf(1.1) concentrates
  // hundreds on the head.
  EXPECT_GT(hottest, 100);
  std::set<std::uint32_t> distinct;
  for (const auto& req : requests) distinct.insert(req.vertex);
  EXPECT_GT(distinct.size(), 100u);
}

TEST(WorkloadGen, BurstyArrivalsClusterInsideBursts) {
  serve::WorkloadOptions wl = load_options();
  wl.arrival = serve::ArrivalProcess::kBursty;
  wl.rate_qps = 20000.0;
  wl.burst_factor = 4.0;
  wl.burst_fraction = 0.25;
  wl.burst_period = 5e-3;
  serve::WorkloadGen gen(1000, wl);
  const auto requests = gen.generate(4000);
  std::size_t in_burst = 0;
  for (const auto& req : requests) {
    const double phase = std::fmod(req.arrival, wl.burst_period);
    if (phase < wl.burst_fraction * wl.burst_period) ++in_burst;
  }
  // burst_fraction * burst_factor == 1: every arrival is inside a burst.
  EXPECT_GT(static_cast<double>(in_burst) /
                static_cast<double>(requests.size()),
            0.95);
}

TEST(WorkloadGen, UpdatesAreOrderedDeduplicatedAndSeeded) {
  serve::WorkloadOptions wl = load_options();
  wl.update_rate = 1000.0;
  wl.update_touch = 64;
  serve::WorkloadGen a(500, wl);
  serve::WorkloadGen b(500, wl);
  const auto ua = a.generate_updates(0.1);
  const auto ub = b.generate_updates(0.1);
  ASSERT_FALSE(ua.empty());
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) {
    EXPECT_EQ(ua[i].time, ub[i].time);
    EXPECT_EQ(ua[i].vertices, ub[i].vertices);
    EXPECT_TRUE(std::is_sorted(ua[i].vertices.begin(), ua[i].vertices.end()));
    EXPECT_EQ(std::adjacent_find(ua[i].vertices.begin(), ua[i].vertices.end()),
              ua[i].vertices.end());
    if (i > 0) {
      EXPECT_GE(ua[i].time, ua[i - 1].time);
    }
  }
}

TEST(ServeMode, RegistryNamesRoundTrip) {
  using core::ServeCacheMode;
  for (int i = 0; i < core::kNumServeCacheModes; ++i) {
    const auto mode = static_cast<ServeCacheMode>(i);
    const auto parsed =
        core::parse_serve_cache_mode(core::serve_cache_mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(core::parse_serve_cache_mode("freq").has_value());

  for (int i = 0; i < core::kNumBatchPolicies; ++i) {
    const auto policy = static_cast<core::BatchPolicy>(i);
    const auto parsed =
        core::parse_batch_policy(core::batch_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(core::parse_batch_policy("batched").has_value());
}

TEST(ServeMode, SettersValidateAndScope) {
  const auto previous = core::serve_cache_mode();
  {
    core::ScopedServeCacheMode scoped(core::ServeCacheMode::kEmbed);
    EXPECT_EQ(core::serve_cache_mode(), core::ServeCacheMode::kEmbed);
  }
  EXPECT_EQ(core::serve_cache_mode(), previous);

  EXPECT_THROW(core::set_serve_batch(0), InvalidArgumentError);
  EXPECT_THROW(core::set_serve_batch(100000), InvalidArgumentError);
  EXPECT_THROW(core::set_serve_slack_seconds(-1.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mggcn
