// Tests for the distributed staged-broadcast SpMM (§4.1/§4.3): numerical
// equality with the serial product over device counts and widths, hazard
// correctness across back-to-back products, and the overlap schedule's
// timing properties.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "comm/comm_mode.hpp"
#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/partition.hpp"
#include "dense/kernels.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

struct Fixture {
  Fixture(int gpus, std::int64_t n, std::int64_t d, bool overlap,
          sim::ExecutionMode mode = sim::ExecutionMode::kReal)
      : machine(sim::dgx_v100(), gpus, mode),
        comm(machine),
        partition(PartitionVector::uniform(n, gpus)),
        d(d),
        overlap(overlap && gpus > 1),
        slot_readers(static_cast<std::size_t>(gpus)) {
    util::Rng rng(17);
    graph::BterParams params{.n = n, .avg_degree = 12.0,
                             .degree_sigma = 1.1, .clustering = 0.5};
    op = sparse::Csr::from_coo(graph::bter_like(params, rng).edges)
             .normalize_gcn()
             .transpose();
    spmm = std::make_unique<DistSpmm>(machine, comm,
                                      make_tile_grid(op, partition));
    for (int r = 0; r < gpus; ++r) {
      sim::Device& dev = machine.device(r);
      const auto block = static_cast<std::size_t>(partition.size(r) * d);
      const auto bc =
          static_cast<std::size_t>(partition.max_part_size() * d);
      input.emplace_back(dev, block, "H");
      output.emplace_back(dev, block, "C");
      bc1.emplace_back(dev, bc, "BC1");
      bc2.emplace_back(dev, bc, "BC2");
    }
  }

  void fill_input(const dense::HostMatrix& x) {
    for (int r = 0; r < machine.num_devices(); ++r) {
      auto span = input[static_cast<std::size_t>(r)].span();
      if (span.empty()) continue;
      dense::copy(x.view().row(partition.begin(r)), span.data(),
                  static_cast<std::int64_t>(span.size()));
    }
  }

  DistSpmm::Result run() {
    DistSpmm::Io io;
    for (auto& b : input) io.input.push_back(&b);
    for (auto& b : output) io.output.push_back(&b);
    for (auto& b : bc1) io.bc1.push_back(&b);
    for (auto& b : bc2) io.bc2.push_back(&b);
    io.d = d;
    io.overlap = overlap;
    io.compute_bandwidth_scale = overlap ? 0.85 : 1.0;
    io.slot_readers = &slot_readers;
    return spmm->run(io);
  }

  dense::HostMatrix gather_output() {
    machine.synchronize();
    dense::HostMatrix out(partition.total(), d);
    for (int r = 0; r < machine.num_devices(); ++r) {
      const auto span = output[static_cast<std::size_t>(r)].span();
      dense::copy(span.data(), out.view().row(partition.begin(r)),
                  static_cast<std::int64_t>(span.size()));
    }
    return out;
  }

  sim::Machine machine;
  comm::Communicator comm;
  PartitionVector partition;
  std::int64_t d;
  bool overlap;
  sparse::Csr op;
  std::unique_ptr<DistSpmm> spmm;
  std::vector<sim::DeviceBuffer> input, output, bc1, bc2;
  std::vector<std::array<sim::Event, 2>> slot_readers;
};

class DistSpmmParam
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t, bool>> {};

TEST_P(DistSpmmParam, MatchesSerialProduct) {
  const auto [gpus, d, overlap] = GetParam();
  const std::int64_t n = 331;
  Fixture fx(gpus, n, d, overlap);

  util::Rng rng(23);
  dense::HostMatrix x(n, d);
  x.init_gaussian(rng);
  fx.fill_input(x);
  fx.run();

  dense::HostMatrix expected(n, d);
  sparse::spmm(fx.op, x.view(), expected.view());
  const dense::HostMatrix got = fx.gather_output();
  EXPECT_LT(dense::max_abs_diff(got.view(), expected.view()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistSpmmParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(std::int64_t{1}, std::int64_t{16}),
                       ::testing::Bool()));

TEST(DistSpmm, BackToBackProductsRespectBufferHazards) {
  // Two consecutive products with fresh inputs; the second one's broadcasts
  // must not clobber broadcast buffers still being read by the first —
  // this is the cross-run hazard regression test.
  const int gpus = 4;
  const std::int64_t n = 257, d = 8;
  Fixture fx(gpus, n, d, /*overlap=*/true);
  util::Rng rng(29);

  for (int round = 0; round < 5; ++round) {
    dense::HostMatrix x(n, d);
    x.init_gaussian(rng);
    fx.fill_input(x);
    fx.machine.synchronize();  // inputs written from host: settle first
    fx.run();
    dense::HostMatrix expected(n, d);
    sparse::spmm(fx.op, x.view(), expected.view());
    const dense::HostMatrix got = fx.gather_output();
    ASSERT_LT(dense::max_abs_diff(got.view(), expected.view()), 1e-4)
        << "round " << round;
  }
}

TEST(DistSpmm, OverlapReducesSimulatedTime) {
  const std::int64_t n = 4096, d = 64;
  double serial_time = 0.0, overlap_time = 0.0;
  for (const bool overlap : {false, true}) {
    Fixture fx(4, n, d, overlap, sim::ExecutionMode::kPhantom);
    const double t0 = fx.machine.align_clocks();
    fx.run();
    fx.machine.synchronize();
    (overlap ? overlap_time : serial_time) = fx.machine.sim_time() - t0;
  }
  EXPECT_LT(overlap_time, serial_time);
}

TEST(DistSpmm, TraceContainsAllStages) {
  // Pin the dense exchange so the comm-record count below is exactly the
  // broadcast schedule, independent of the MGGCN_COMM environment.
  comm::ScopedCommMode dense_mode(comm::CommMode::kDense);
  const int gpus = 4;
  Fixture fx(gpus, 512, 8, /*overlap=*/false,
             sim::ExecutionMode::kPhantom);
  fx.run();
  fx.machine.synchronize();

  std::set<std::pair<int, int>> spmm_cells;  // (device, stage)
  int bcasts = 0;
  for (const auto& rec : fx.machine.trace().records()) {
    if (rec.kind == sim::TaskKind::kSpMM) {
      spmm_cells.emplace(rec.device, rec.stage);
    } else if (rec.kind == sim::TaskKind::kComm) {
      ++bcasts;
    }
  }
  EXPECT_EQ(spmm_cells.size(), static_cast<std::size_t>(gpus * gpus));
  EXPECT_EQ(bcasts, gpus * gpus);  // one comm record per rank per stage
}

TEST(DistSpmm, InputReleasedAllowsSafeOverwrite) {
  const int gpus = 2;
  const std::int64_t n = 100, d = 4;
  Fixture fx(gpus, n, d, /*overlap=*/false);
  util::Rng rng(31);
  dense::HostMatrix x(n, d);
  x.init_gaussian(rng);
  fx.fill_input(x);

  const DistSpmm::Result result = fx.run();
  // Overwrite each rank's input block after its release event: the output
  // must still equal the product with the ORIGINAL input.
  for (int r = 0; r < gpus; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    sim::TaskDesc clobber;
    clobber.label = "clobber";
    clobber.waits.push_back(result.input_released[rr]);
    float* data = fx.input[rr].data();
    const auto count = fx.input[rr].size();
    clobber.body = [data, count] {
      std::fill(data, data + count, -777.0f);
    };
    fx.machine.device(r).compute_stream().enqueue(std::move(clobber));
  }

  dense::HostMatrix expected(n, d);
  sparse::spmm(fx.op, x.view(), expected.view());
  const dense::HostMatrix got = fx.gather_output();
  EXPECT_LT(dense::max_abs_diff(got.view(), expected.view()), 1e-4);
}

TEST(DistSpmm, StragglerDelaysDependentStages) {
  // Delay rank 1's input readiness; every rank's completion must slip past
  // the straggler's ready time (collectives synchronize starts).
  Fixture fx(4, 512, 8, /*overlap=*/false, sim::ExecutionMode::kPhantom);
  const double t0 = fx.machine.align_clocks();

  DistSpmm::Io io;
  for (auto& b : fx.input) io.input.push_back(&b);
  for (auto& b : fx.output) io.output.push_back(&b);
  for (auto& b : fx.bc1) io.bc1.push_back(&b);
  for (auto& b : fx.bc2) io.bc2.push_back(&b);
  io.d = fx.d;
  io.slot_readers = &fx.slot_readers;
  io.input_ready.assign(4, sim::Event());
  io.input_ready[1] = sim::Event::signaled(t0 + 0.5);  // late by 0.5 s

  const DistSpmm::Result result = fx.spmm->run(io);
  for (const auto& e : result.done) {
    EXPECT_GT(e.wait(), t0 + 0.5);
  }
}

TEST(DistSpmm, CompactMatchesDenseBitwise) {
  // The compacted exchange permutes which B rows sit in the broadcast
  // buffer but runs the identical per-element accumulation order, so the
  // product must be bit-identical to the dense path, overlap on and off.
  const std::int64_t n = 331, d = 16;
  util::Rng rng(23);
  dense::HostMatrix x(n, d);
  x.init_gaussian(rng);

  for (const int gpus : {2, 4}) {
    for (const bool overlap : {false, true}) {
      std::vector<dense::HostMatrix> outs;
      for (const comm::CommMode mode :
           {comm::CommMode::kDense, comm::CommMode::kCompact,
            comm::CommMode::kAuto}) {
        comm::ScopedCommMode scoped(mode);
        Fixture fx(gpus, n, d, overlap);
        fx.fill_input(x);
        fx.run();
        outs.push_back(fx.gather_output());
      }
      for (std::size_t m = 1; m < outs.size(); ++m) {
        for (std::int64_t i = 0; i < n; ++i) {
          for (std::int64_t j = 0; j < d; ++j) {
            ASSERT_EQ(outs[0].at(i, j), outs[m].at(i, j))
                << "gpus " << gpus << " overlap " << overlap << " mode "
                << m << " element (" << i << ", " << j << ")";
          }
        }
      }
    }
  }
}

TEST(DistSpmm, AutoIsNeverSlowerThanDense) {
  // The auto-selector prices both paths with the same model the simulator
  // charges, so its steady-state simulated time can match but never exceed
  // the all-dense schedule. The first product is warm-up: auto resolves
  // SpmmPlans for the ghost sets (a one-time inspector prologue that the
  // dense path skips under the naive kernel policy), and training amortizes
  // that over every later product.
  const std::int64_t n = 4096, d = 64;
  double dense_time = 0.0, auto_time = 0.0;
  for (const comm::CommMode mode :
       {comm::CommMode::kDense, comm::CommMode::kAuto}) {
    comm::ScopedCommMode scoped(mode);
    Fixture fx(4, n, d, /*overlap=*/false, sim::ExecutionMode::kPhantom);
    fx.run();
    fx.machine.synchronize();
    const double t0 = fx.machine.align_clocks();
    fx.run();
    fx.machine.synchronize();
    (mode == comm::CommMode::kDense ? dense_time : auto_time) =
        fx.machine.sim_time() - t0;
  }
  EXPECT_LE(auto_time, dense_time * (1.0 + 1e-12));
}

TEST(DistSpmm, AccountMemoryChargesGhostMapsUnderCompact) {
  // Compact/auto modes keep per-tile ghost maps on-device; dense does not.
  // The accounting must reflect that, and releasing must be exact.
  const std::int64_t n = 512, d = 8;
  std::uint64_t dense_used = 0, compact_used = 0;
  for (const comm::CommMode mode :
       {comm::CommMode::kDense, comm::CommMode::kCompact}) {
    comm::ScopedCommMode scoped(mode);
    Fixture fx(4, n, d, /*overlap=*/false, sim::ExecutionMode::kPhantom);
    const std::uint64_t before = fx.machine.device(0).memory_used();
    fx.spmm->account_memory();
    const std::uint64_t after = fx.machine.device(0).memory_used();
    (mode == comm::CommMode::kDense ? dense_used : compact_used) =
        after - before;
    fx.spmm.reset();
    EXPECT_EQ(fx.machine.device(0).memory_used(), before)
        << "destruction must release exactly what was reserved";
  }
  EXPECT_GT(compact_used, dense_used);
}

TEST(DistSpmm, CompactRecordsWireBytesSaved) {
  // On a sparse operator the compacted stages must put fewer bytes on the
  // wire than the dense broadcasts they replace, and the trace counters
  // must account for every stage exactly once.
  comm::ScopedCommMode scoped(comm::CommMode::kCompact);
  const int gpus = 4;
  Fixture fx(gpus, 2048, 32, /*overlap=*/false,
             sim::ExecutionMode::kPhantom);
  fx.run();
  fx.machine.synchronize();

  const sim::CommVolume v = fx.machine.trace().comm_volume();
  EXPECT_EQ(v.compact_stages + v.dense_stages, gpus);
  EXPECT_EQ(v.compact_stages, gpus);
  EXPECT_GT(v.packs, 0u);
  EXPECT_LT(v.wire_bytes, v.dense_bytes);
  EXPECT_EQ(v.bytes_saved(), v.dense_bytes - v.wire_bytes);
}

}  // namespace
}  // namespace mggcn::core
