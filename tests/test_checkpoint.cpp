// Checkpoint tests: file round-trip and exact training resumption.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>
#include <memory>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

graph::Dataset tiny_dataset() {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = 250;
  spec.feature_dim = 18;
  spec.num_classes = 4;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 8;
  return graph::make_dataset(spec, options);
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, FileRoundTrip) {
  util::Rng rng(3);
  Checkpoint original;
  original.adam_step = 42;
  for (const auto [rows, cols] : {std::pair{4L, 6L}, std::pair{6L, 2L}}) {
    dense::HostMatrix w(rows, cols), m(rows, cols), v(rows, cols);
    w.init_gaussian(rng);
    m.init_gaussian(rng);
    v.init_gaussian(rng);
    original.weights.push_back(std::move(w));
    original.adam_m.push_back(std::move(m));
    original.adam_v.push_back(std::move(v));
  }

  const std::string path = temp_path("mggcn_test_ckpt.bin");
  save_checkpoint(original, path);
  const Checkpoint loaded = load_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.adam_step, 42);
  ASSERT_EQ(loaded.num_layers(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(dense::max_abs_diff(loaded.weights[l].view(),
                                  original.weights[l].view()),
              0.0);
    EXPECT_EQ(dense::max_abs_diff(loaded.adam_m[l].view(),
                                  original.adam_m[l].view()),
              0.0);
    EXPECT_EQ(dense::max_abs_diff(loaded.adam_v[l].view(),
                                  original.adam_v[l].view()),
              0.0);
  }
}

TEST(Checkpoint, RejectsCorruptFile) {
  const std::string path = temp_path("mggcn_test_ckpt_bad.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumedTrainingMatchesUninterruptedRun) {
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {12};
  config.permute = false;
  config.seed = 9;

  // Uninterrupted: 10 epochs straight.
  sim::Machine m1(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  MgGcnTrainer straight(m1, ds, config);
  std::vector<double> straight_losses;
  for (int e = 0; e < 10; ++e) {
    straight_losses.push_back(straight.train_epoch().loss);
  }

  // Interrupted: 5 epochs, snapshot, restore into a FRESH trainer, 5 more.
  const std::string path = temp_path("mggcn_test_resume.bin");
  {
    sim::Machine m2(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
    MgGcnTrainer first_half(m2, ds, config);
    for (int e = 0; e < 5; ++e) first_half.train_epoch();
    save_checkpoint(first_half.checkpoint(), path);
  }
  sim::Machine m3(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  MgGcnTrainer second_half(m3, ds, config);
  second_half.restore(load_checkpoint(path));
  std::remove(path.c_str());

  for (int e = 5; e < 10; ++e) {
    const double resumed = second_half.train_epoch().loss;
    ASSERT_NEAR(resumed, straight_losses[static_cast<std::size_t>(e)],
                1e-3 * std::max(1.0, straight_losses[e]))
        << "epoch " << e;
  }
}

TEST(Checkpoint, MidEpochFaultRoundTrip) {
  // The elastic-recovery disk path: a checkpoint is written, the process
  // "dies" mid-epoch when a device fails, and a fresh process (machine +
  // trainer) resumes from the file bit-identically to an undisturbed run.
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {12};
  config.permute = false;
  config.seed = 9;

  sim::Machine reference(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  MgGcnTrainer straight(reference, ds, config);
  std::vector<double> straight_losses;
  for (int e = 0; e < 8; ++e) {
    straight_losses.push_back(straight.train_epoch().loss);
  }

  const std::string path = temp_path("mggcn_test_midfault.bin");
  {
    sim::Machine doomed(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
    doomed.set_fault_plan(std::make_shared<sim::FaultPlan>(
        sim::FaultPlan::parse("kill:1@4")));
    MgGcnTrainer victim(doomed, ds, config);
    for (int e = 0; e < 4; ++e) victim.train_epoch();
    save_checkpoint(victim.checkpoint(), path);
    EXPECT_THROW(victim.train_epoch(), DeviceLostError);
    doomed.synchronize();
    // Scope exit destroys machine and trainer: the "process" is gone.
  }

  sim::Machine fresh(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  MgGcnTrainer resumed(fresh, ds, config);
  const Checkpoint loaded = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.adam_step, 4);
  resumed.restore(loaded);
  EXPECT_EQ(resumed.epoch(), 4);

  // Same machine shape + same snapshot => bit-identical continuation.
  for (int e = 4; e < 8; ++e) {
    EXPECT_EQ(resumed.train_epoch().loss,
              straight_losses[static_cast<std::size_t>(e)])
        << "epoch " << e;
  }
}

TEST(Checkpoint, RestoreRejectsMismatchedShape) {
  const graph::Dataset ds = tiny_dataset();
  TrainConfig config;
  config.hidden_dims = {12};
  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  MgGcnTrainer trainer(machine, ds, config);

  Checkpoint wrong;
  wrong.adam_step = 1;
  wrong.weights.emplace_back(3, 3);
  wrong.adam_m.emplace_back(3, 3);
  wrong.adam_v.emplace_back(3, 3);
  EXPECT_THROW(trainer.restore(wrong), InvalidArgumentError);
}

}  // namespace
}  // namespace mggcn::core
