// Tests for the NCCL-like communicator and the topology model, including
// parameterized sweeps over message sizes and roots.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>

#include "comm/communicator.hpp"
#include "comm/topology.hpp"
#include "sim/machine.hpp"

namespace mggcn::comm {
namespace {

class CollectiveTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

std::vector<sim::DeviceBuffer> make_buffers(sim::Machine& machine,
                                            std::size_t count) {
  std::vector<sim::DeviceBuffer> buffers;
  for (int r = 0; r < machine.num_devices(); ++r) {
    buffers.emplace_back(machine.device(r), count, "buf");
  }
  return buffers;
}

std::vector<RankPart> parts_of(std::vector<sim::DeviceBuffer>& buffers) {
  std::vector<RankPart> parts(buffers.size());
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    parts[r].buffer = &buffers[r];
  }
  return parts;
}

TEST_P(CollectiveTest, BroadcastDeliversRootData) {
  const auto [gpus, count] = GetParam();
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  auto buffers = make_buffers(machine, count);

  for (int root = 0; root < gpus; ++root) {
    for (int r = 0; r < gpus; ++r) {
      auto span = buffers[static_cast<std::size_t>(r)].span();
      for (std::size_t i = 0; i < count; ++i) {
        span[i] = r == root ? static_cast<float>(root * 1000 + i % 97)
                            : -1.0f;
      }
    }
    auto events = comm.broadcast(parts_of(buffers), count, root);
    for (auto& e : events) e.wait();
    for (int r = 0; r < gpus; ++r) {
      const auto span = buffers[static_cast<std::size_t>(r)].span();
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(span[i], static_cast<float>(root * 1000 + i % 97))
            << "rank " << r << " index " << i;
      }
    }
  }
}

TEST_P(CollectiveTest, AllreduceSumsAcrossRanks) {
  const auto [gpus, count] = GetParam();
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  auto buffers = make_buffers(machine, count);

  for (int r = 0; r < gpus; ++r) {
    auto span = buffers[static_cast<std::size_t>(r)].span();
    for (std::size_t i = 0; i < count; ++i) {
      span[i] = static_cast<float>(r + 1);
    }
  }
  auto events = comm.allreduce_sum(parts_of(buffers), count);
  for (auto& e : events) e.wait();

  const float expected = gpus * (gpus + 1) / 2.0f;
  for (int r = 0; r < gpus; ++r) {
    const auto span = buffers[static_cast<std::size_t>(r)].span();
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(span[i], expected);
    }
  }
}

TEST_P(CollectiveTest, ReduceSumsIntoRoot) {
  const auto [gpus, count] = GetParam();
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  auto buffers = make_buffers(machine, count);
  for (int r = 0; r < gpus; ++r) {
    auto span = buffers[static_cast<std::size_t>(r)].span();
    std::fill(span.begin(), span.end(), 2.0f);
  }
  const int root = gpus - 1;
  auto events = comm.reduce_sum(parts_of(buffers), count, root);
  for (auto& e : events) e.wait();
  const auto span = buffers[static_cast<std::size_t>(root)].span();
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(span[i], 2.0f * gpus);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanks, CollectiveTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{1000})));

TEST(Communicator, CollectiveDurationMatchesTopologyModel) {
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  const std::size_t count = 1 << 20;
  auto buffers = make_buffers(machine, count);
  machine.align_clocks();
  const double t0 = machine.sim_time();
  auto events = comm.broadcast(parts_of(buffers), count, 0);
  double done = 0.0;
  for (auto& e : events) done = std::max(done, e.wait());
  const Topology topology(machine.profile().interconnect);
  EXPECT_NEAR(done - t0,
              topology.broadcast_seconds(count * sizeof(float), 4), 1e-9);
}

TEST(Communicator, DurationScaleSlowsCollectives) {
  const std::size_t count = 1 << 18;
  double base = 0.0, slowed = 0.0;
  for (const double scale : {1.0, 2.0}) {
    sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
    Communicator comm(machine, CommOptions{.duration_scale = scale});
    auto buffers = make_buffers(machine, count);
    auto events = comm.broadcast(parts_of(buffers), count, 0);
    double done = 0.0;
    for (auto& e : events) done = std::max(done, e.wait());
    (scale == 1.0 ? base : slowed) = done;
  }
  EXPECT_NEAR(slowed, 2.0 * base, 1e-9);
}

TEST(Communicator, BarrierSynchronizesSimTime) {
  sim::Machine machine(sim::dgx_v100(), 3, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  // Delay rank 1's comm stream.
  sim::TaskDesc delay;
  delay.cost.stream_bytes = 9e9;  // 10 ms
  machine.device(1).comm_stream().enqueue(std::move(delay));
  auto events = comm.barrier();
  std::vector<double> times;
  for (auto& e : events) times.push_back(e.wait());
  for (const double t : times) {
    EXPECT_NEAR(t, times[0], 1e-12);
    EXPECT_GT(t, 10e-3);
  }
}

TEST(Topology, UsableLinksCubeMeshVsSwitch) {
  const Topology mesh(sim::dgx_v100().interconnect);
  EXPECT_EQ(mesh.usable_links(8), 6);
  EXPECT_EQ(mesh.usable_links(4), 4);
  EXPECT_EQ(mesh.usable_links(2), 2);
  const Topology sw(sim::dgx_a100().interconnect);
  EXPECT_EQ(sw.usable_links(8), 12);
  EXPECT_EQ(sw.usable_links(2), 12);
}

TEST(Topology, Section51Arithmetic) {
  // Reproduce §5.1 exactly: with bytes = n*d and perfect efficiency, the
  // 1D algorithm takes nd/(6l) on DGX-1 and nd/(12l) on DGX-A100.
  sim::InterconnectProfile mesh = sim::dgx_v100().interconnect;
  mesh.efficiency = 1.0;
  const Topology v100(mesh);
  const std::uint64_t nd = 8ULL << 20;
  const double l = mesh.link_bandwidth;
  // 8 broadcasts of nd/8 across 8 GPUs with 6 links each:
  const double one_d =
      8 * (v100.broadcast_seconds(nd / 8, 8) - v100.base_latency());
  EXPECT_NEAR(one_d, static_cast<double>(nd) / (6 * l), 1e-9);

  // 1.5D: 2 * nd/(4*4l) + nd/(4*2l) = nd/(4l) on DGX-1 (§5.1).
  const double one_5d =
      2 * (v100.broadcast_seconds(nd / 4, 4) - v100.base_latency()) +
      (v100.reduce_seconds(nd / 4, 2) - v100.base_latency());
  EXPECT_NEAR(one_5d, static_cast<double>(nd) / (4 * l), 1e-9);
  // The paper's conclusion: 1.5D slower by a factor 2/3 on DGX-1.
  EXPECT_NEAR(one_d / one_5d, 2.0 / 3.0, 1e-9);
}

TEST(Topology, AllreduceRingFormula) {
  sim::InterconnectProfile sw = sim::dgx_a100().interconnect;
  sw.efficiency = 1.0;
  const Topology topo(sw);
  const std::uint64_t bytes = 12ULL << 20;
  const double expected =
      2.0 * 7.0 / 8.0 * static_cast<double>(bytes) /
      (12 * sw.link_bandwidth);
  EXPECT_NEAR(topo.allreduce_seconds(bytes, 8) - topo.base_latency(),
              expected, 1e-9);
}

TEST(Topology, CrossNodeCollectivesHitTheFabricCliff) {
  // Inside one node the NVSwitch bandwidth applies; a group spanning two
  // nodes collapses to the inter-node NIC — the effect that blocks
  // scaling beyond a single machine (abstract).
  const Topology topo(sim::dgx_a100_cluster(4).interconnect);
  const std::uint64_t bytes = 64ULL << 20;
  const double within = topo.broadcast_seconds(bytes, 8);
  const double across = topo.broadcast_seconds(bytes, 16);
  EXPECT_GT(across, 5.0 * within);
  EXPECT_NEAR(topo.group_bandwidth(16), 25e9 * 0.9, 1e6);
}

TEST(Topology, SingleNodeProfilesIgnoreFabric) {
  const Topology topo(sim::dgx_a100().interconnect);
  EXPECT_DOUBLE_EQ(topo.group_bandwidth(8), topo.group_bandwidth(2));
}

TEST(Topology, ZeroBytesAndSingleRankAreFree) {
  const Topology topo(sim::dgx_a100().interconnect);
  EXPECT_EQ(topo.broadcast_seconds(0, 8), 0.0);
  EXPECT_EQ(topo.broadcast_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(topo.allreduce_seconds(1 << 20, 1), 0.0);
}

TEST(Communicator, AllgatherConcatenatesInRankOrder) {
  sim::Machine machine(sim::dgx_v100(), 3, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  const std::vector<std::size_t> counts = {2, 3, 1};
  auto buffers = make_buffers(machine, 6);  // capacity = sum(counts)
  for (int r = 0; r < 3; ++r) {
    auto span = buffers[static_cast<std::size_t>(r)].span();
    for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
      span[i] = static_cast<float>(10 * (r + 1) + i);
    }
  }
  auto events = comm.allgather(parts_of(buffers), counts);
  for (auto& e : events) e.wait();
  const float expected[] = {10, 11, 20, 21, 22, 30};
  for (int r = 0; r < 3; ++r) {
    const auto span = buffers[static_cast<std::size_t>(r)].span();
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_EQ(span[i], expected[i]) << "rank " << r << " slot " << i;
    }
  }
}

TEST(Communicator, SubsetCommunicatorWorks) {
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  std::vector<sim::Device*> subset = {&machine.device(0),
                                      &machine.device(2)};
  Communicator comm(subset, Topology(machine.profile().interconnect));
  EXPECT_EQ(comm.size(), 2);

  const std::size_t count = 128;
  sim::DeviceBuffer b0(machine.device(0), count, "b0");
  sim::DeviceBuffer b2(machine.device(2), count, "b2");
  for (auto& x : b0.span()) x = 7.0f;
  std::vector<RankPart> parts(2);
  parts[0].buffer = &b0;
  parts[1].buffer = &b2;
  auto events = comm.broadcast(std::move(parts), count, 0);
  for (auto& e : events) e.wait();
  for (const float x : b2.span()) ASSERT_EQ(x, 7.0f);
}

TEST(Communicator, SendvRowsDeliversSelectedRowsPerDestination) {
  const int gpus = 3;
  const std::int64_t d = 4;
  const std::size_t src_rows = 8;
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  auto buffers = make_buffers(machine, src_rows * d);

  const int root = 1;
  auto src = buffers[root].span();
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<float>(100 + i);
  }
  for (int r = 0; r < gpus; ++r) {
    if (r == root) continue;
    for (auto& x : buffers[static_cast<std::size_t>(r)].span()) x = -1.0f;
  }

  // Rank 0 needs rows {5, 0, 7}; rank 2 needs nothing (its buffer must
  // stay untouched). Destination row i holds source row rows[r][i].
  const std::vector<std::uint32_t> rows0 = {5, 0, 7};
  std::vector<std::span<const std::uint32_t>> rows(gpus);
  rows[0] = rows0;
  auto events = comm.sendv_rows(parts_of(buffers), rows, d, root);
  for (auto& e : events) e.wait();

  const auto got0 = buffers[0].span();
  for (std::size_t i = 0; i < rows0.size(); ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      ASSERT_EQ(got0[i * d + static_cast<std::size_t>(j)],
                src[rows0[i] * d + static_cast<std::size_t>(j)])
          << "packed row " << i << " col " << j;
    }
  }
  for (const float x : buffers[2].span()) ASSERT_EQ(x, -1.0f);
  // Root's own data is read-only for the exchange.
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src[i], static_cast<float>(100 + i));
  }
}

TEST(Communicator, SendvRowsDurationMatchesModel) {
  const int gpus = 4;
  const std::int64_t d = 64;
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
  Communicator comm(machine);
  auto buffers = make_buffers(machine, 4096 * d);

  // Two non-empty destinations with 1000 + 500 rows; one empty.
  std::vector<std::uint32_t> rows1(1000), rows3(500);
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    rows1[i] = static_cast<std::uint32_t>(i * 3 % 4096);
  }
  for (std::size_t i = 0; i < rows3.size(); ++i) {
    rows3[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::span<const std::uint32_t>> rows(gpus);
  rows[1] = rows1;
  rows[3] = rows3;

  machine.align_clocks();
  const double t0 = machine.sim_time();
  auto events = comm.sendv_rows(parts_of(buffers), rows, d, /*root=*/0);
  double done = 0.0;
  for (auto& e : events) done = std::max(done, e.wait());

  const std::uint64_t bytes = (1000 + 500) * d * sizeof(float);
  EXPECT_NEAR(done - t0, comm.sendv_rows_seconds(bytes, /*messages=*/2),
              1e-9);
  EXPECT_GT(done - t0, 0.0);
}

TEST(Communicator, SendvRowsBeatsBroadcastOnSparsePayloads) {
  // The auto-selector's premise: when destinations need few rows, the
  // compacted exchange (including its pack cost) undercuts the dense
  // broadcast of the full block.
  sim::Machine machine(sim::dgx_v100(), 8, sim::ExecutionMode::kPhantom);
  Communicator comm(machine);
  const Topology topology(machine.profile().interconnect);
  const std::uint64_t block_bytes = std::uint64_t{65536} * 128 * 4;
  const double dense = topology.broadcast_seconds(block_bytes, 8);
  // 7 destinations each wanting 2% of the block.
  const double compact =
      comm.sendv_rows_seconds(7 * block_bytes / 50, /*messages=*/7);
  EXPECT_LT(compact, dense);
}

}  // namespace
}  // namespace mggcn::comm
