// Tests for the SDDMM/edge-softmax kernels and the graph-attention layer
// prototype (the paper's §7 future-work direction).
#include <gtest/gtest.h>

#include <cmath>

#include "core/gat_layer.hpp"
#include "dense/kernels.hpp"
#include "graph/generators.hpp"
#include "sparse/sddmm.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace mggcn::sparse {
namespace {

Csr random_pattern(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BterParams params{.n = n, .avg_degree = 8.0, .degree_sigma = 1.0,
                           .clustering = 0.4};
  return Csr::from_coo(graph::bter_like(params, rng).edges);
}

TEST(Sddmm, MatchesDenseOracle) {
  const Csr pattern = random_pattern(60, 1);
  util::Rng rng(2);
  dense::HostMatrix u(60, 7), v(60, 7);
  u.init_gaussian(rng);
  v.init_gaussian(rng);

  const Csr out = sddmm(pattern, u.view(), v.view());
  EXPECT_EQ(out.nnz(), pattern.nnz());

  const auto row_ptr = out.row_ptr();
  const auto col_idx = out.col_idx();
  const auto values = out.values();
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      const auto c = col_idx[static_cast<std::size_t>(e)];
      double expected = 0.0;
      for (std::int64_t j = 0; j < 7; ++j) {
        expected += static_cast<double>(u.at(r, j)) * v.at(c, j);
      }
      ASSERT_NEAR(values[static_cast<std::size_t>(e)], expected, 1e-4);
    }
  }
}

TEST(Sddmm, RespectsPatternValues) {
  // The pattern's own values scale the sampled dot products.
  Coo coo(2, 2);
  coo.add(0, 1, 3.0f);
  const Csr pattern = Csr::from_coo(coo);
  dense::HostMatrix u(2, 1), v(2, 1);
  u.at(0, 0) = 2.0f;
  v.at(1, 0) = 5.0f;
  const Csr out = sddmm(pattern, u.view(), v.view());
  EXPECT_NEAR(out.values()[0], 3.0f * 2.0f * 5.0f, 1e-6);
}

TEST(EdgeSoftmax, RowsSumToOne) {
  Csr m = random_pattern(80, 3);
  util::Rng rng(4);
  for (auto& v : m.values_mutable()) {
    v = static_cast<float>(rng.gaussian(0.0, 2.0));
  }
  edge_softmax(m);
  const auto row_ptr = m.row_ptr();
  const auto values = m.values();
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    const auto b = row_ptr[static_cast<std::size_t>(r)];
    const auto e = row_ptr[static_cast<std::size_t>(r) + 1];
    if (b == e) continue;
    double sum = 0.0;
    for (auto i = b; i < e; ++i) {
      const float value = values[static_cast<std::size_t>(i)];
      ASSERT_GT(value, 0.0f);
      sum += value;
    }
    ASSERT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(EdgeSoftmax, StableUnderLargeScores) {
  Coo coo(1, 3);
  coo.add(0, 0, 1000.0f);
  coo.add(0, 1, 999.0f);
  coo.add(0, 2, -1000.0f);
  Csr m = Csr::from_coo(coo);
  edge_softmax(m);
  EXPECT_NEAR(m.values()[0] + m.values()[1] + m.values()[2], 1.0f, 1e-6);
  EXPECT_GT(m.values()[0], m.values()[1]);
  EXPECT_NEAR(m.values()[2], 0.0f, 1e-6);
}

TEST(LeakyRelu, ScalesNegativeValues) {
  Coo coo(1, 2);
  coo.add(0, 0, -2.0f);
  coo.add(0, 1, 3.0f);
  Csr m = Csr::from_coo(coo);
  leaky_relu_values(m, 0.1f);
  EXPECT_NEAR(m.values()[0], -0.2f, 1e-6);
  EXPECT_EQ(m.values()[1], 3.0f);
}

TEST(SddmmCost, ScalesWithNnzAndWidth) {
  const auto a = sddmm_cost(100, 50, 50, 8);
  const auto b = sddmm_cost(100, 50, 50, 32);
  EXPECT_GT(b.gather_bytes, a.gather_bytes);
  EXPECT_DOUBLE_EQ(a.flops, 2.0 * 100 * 8);
}

}  // namespace
}  // namespace mggcn::sparse

namespace mggcn::core {
namespace {

TEST(GraphAttention, ForwardProducesRowStochasticOperator) {
  util::Rng rng(6);
  graph::BterParams params{.n = 120, .avg_degree = 10.0,
                           .degree_sigma = 1.0, .clustering = 0.5};
  const sparse::Csr adj =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);

  for (const auto kind :
       {AttentionKind::kAdditive, AttentionKind::kDotProduct}) {
    GraphAttentionLayer layer(adj, 16, 8, kind, 11);
    dense::HostMatrix x(120, 16);
    x.init_gaussian(rng);
    const dense::HostMatrix out = layer.forward(x.view());
    EXPECT_EQ(out.rows(), 120);
    EXPECT_EQ(out.cols(), 8);

    const sparse::Csr& attention = layer.last_attention();
    const auto row_ptr = attention.row_ptr();
    const auto values = attention.values();
    for (std::int64_t r = 0; r < attention.rows(); ++r) {
      const auto b = row_ptr[static_cast<std::size_t>(r)];
      const auto e = row_ptr[static_cast<std::size_t>(r) + 1];
      if (b == e) continue;
      double sum = 0.0;
      for (auto i = b; i < e; ++i) sum += values[static_cast<std::size_t>(i)];
      ASSERT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(GraphAttention, AttentionDiffersFromUniformGcnWeights) {
  // The whole point of attention: the operator's weights are data
  // dependent, not the fixed 1/deg of eq. (2).
  util::Rng rng(7);
  graph::BterParams params{.n = 100, .avg_degree = 12.0,
                           .degree_sigma = 1.0, .clustering = 0.5};
  const sparse::Csr adj =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
  GraphAttentionLayer layer(adj, 12, 6, AttentionKind::kAdditive, 13);
  dense::HostMatrix x(100, 12);
  x.init_gaussian(rng);
  layer.forward(x.view());

  const sparse::Csr& attention = layer.last_attention();
  const auto row_ptr = attention.row_ptr();
  const auto values = attention.values();
  double max_spread = 0.0;
  for (std::int64_t r = 0; r < attention.rows(); ++r) {
    const auto b = row_ptr[static_cast<std::size_t>(r)];
    const auto e = row_ptr[static_cast<std::size_t>(r) + 1];
    if (e - b < 2) continue;
    float lo = values[static_cast<std::size_t>(b)];
    float hi = lo;
    for (auto i = b; i < e; ++i) {
      lo = std::min(lo, values[static_cast<std::size_t>(i)]);
      hi = std::max(hi, values[static_cast<std::size_t>(i)]);
    }
    max_spread = std::max(max_spread, static_cast<double>(hi - lo));
  }
  EXPECT_GT(max_spread, 0.01);
}

TEST(GraphAttention, RejectsBadShapes) {
  util::Rng rng(8);
  const sparse::Coo coo = graph::erdos_renyi(20, 4.0, rng);
  const sparse::Csr adj = sparse::Csr::from_coo(coo);
  GraphAttentionLayer layer(adj, 8, 4, AttentionKind::kAdditive, 1);
  dense::HostMatrix wrong(20, 9);
  EXPECT_THROW(layer.forward(wrong.view()), InvalidArgumentError);
}

}  // namespace
}  // namespace mggcn::core
