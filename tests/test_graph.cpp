// Tests for the graph substrate: generators (degree targets, symmetry,
// determinism, communities) and the Table 1 dataset replicas.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"

namespace mggcn::graph {
namespace {

void expect_symmetric_no_self_loops(const sparse::Coo& coo) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::int64_t e = 0; e < coo.nnz(); ++e) {
    const auto u = coo.row_idx[static_cast<std::size_t>(e)];
    const auto v = coo.col_idx[static_cast<std::size_t>(e)];
    ASSERT_NE(u, v) << "self loop";
    edges.emplace(u, v);
  }
  for (const auto& [u, v] : edges) {
    ASSERT_TRUE(edges.count({v, u})) << "missing reverse of " << u << "->"
                                     << v;
  }
}

TEST(ErdosRenyi, HitsTargetDegree) {
  util::Rng rng(1);
  const sparse::Coo coo = erdos_renyi(4000, 10.0, rng);
  const double k = average_degree(coo);
  EXPECT_NEAR(k, 10.0, 1.0);
  expect_symmetric_no_self_loops(coo);
}

TEST(Rmat, ProducesSkewedSymmetricGraph) {
  util::Rng rng(2);
  const sparse::Coo coo = rmat(1 << 12, 40000, 0.57, 0.19, 0.19, rng);
  EXPECT_GT(coo.nnz(), 30000);
  expect_symmetric_no_self_loops(coo);

  // Skew: the max degree far exceeds the average.
  const sparse::Csr csr = sparse::Csr::from_coo(coo);
  std::int64_t max_deg = 0;
  for (std::int64_t v = 0; v < csr.rows(); ++v) {
    max_deg = std::max(max_deg, csr.row_nnz(v));
  }
  EXPECT_GT(max_deg, 5 * static_cast<std::int64_t>(average_degree(coo)));
}

class BterDegrees : public ::testing::TestWithParam<double> {};

TEST_P(BterDegrees, HitsTargetAverageDegree) {
  util::Rng rng(3);
  BterParams params{.n = 3000, .avg_degree = GetParam(),
                    .degree_sigma = 1.0, .clustering = 0.5};
  const BterGraph g = bter_like(params, rng);
  const double k = average_degree(g.edges);
  // BTER's two phases overshoot slightly; within 50% is fine for replicas.
  EXPECT_GT(k, GetParam() * 0.7);
  EXPECT_LT(k, GetParam() * 1.8);
  expect_symmetric_no_self_loops(g.edges);
}

INSTANTIATE_TEST_SUITE_P(Degrees, BterDegrees,
                         ::testing::Values(3.0, 8.0, 24.0, 64.0));

TEST(Bter, DeterministicGivenSeed) {
  BterParams params{.n = 500, .avg_degree = 8.0, .degree_sigma = 1.0,
                    .clustering = 0.5};
  util::Rng rng1(7), rng2(7);
  const BterGraph a = bter_like(params, rng1);
  const BterGraph b = bter_like(params, rng2);
  EXPECT_EQ(a.edges.row_idx, b.edges.row_idx);
  EXPECT_EQ(a.edges.col_idx, b.edges.col_idx);
  EXPECT_EQ(a.community, b.community);
}

TEST(Bter, EveryVertexHasAnEdge) {
  util::Rng rng(11);
  BterParams params{.n = 2000, .avg_degree = 2.0, .degree_sigma = 1.5,
                    .clustering = 0.2};
  const BterGraph g = bter_like(params, rng);
  const sparse::Csr csr = sparse::Csr::from_coo(g.edges);
  for (std::int64_t v = 0; v < csr.rows(); ++v) {
    ASSERT_GE(csr.row_nnz(v), 1) << "isolated vertex " << v;
  }
}

TEST(Bter, CommunitiesAreContiguousBlocks) {
  util::Rng rng(13);
  BterParams params{.n = 1000, .avg_degree = 10.0, .degree_sigma = 1.0,
                    .clustering = 0.5};
  const BterGraph g = bter_like(params, rng);
  // Each community id must appear as one contiguous run of vertices.
  std::set<std::uint32_t> closed;
  std::uint32_t current = g.community[0];
  for (const std::uint32_t c : g.community) {
    if (c != current) {
      ASSERT_FALSE(closed.count(c)) << "community " << c << " reappears";
      closed.insert(current);
      current = c;
    }
  }
}

TEST(Datasets, Table1Parameters) {
  EXPECT_EQ(reddit().n, 233'000);
  EXPECT_EQ(reddit().feature_dim, 602);
  EXPECT_EQ(reddit().num_classes, 41);
  EXPECT_NEAR(reddit().avg_degree, 492.0, 1.0);
  EXPECT_EQ(papers().n, 111'000'000);
  EXPECT_EQ(products().num_classes, 47);
  EXPECT_EQ(proteins().num_classes, 256);
  EXPECT_EQ(cora().feature_dim, 3703);
  EXPECT_EQ(arxiv().num_classes, 40);
  EXPECT_EQ(all_datasets().size(), 6u);
}

TEST(Datasets, LookupByNameCaseInsensitive) {
  EXPECT_EQ(dataset_by_name("reddit").name, "Reddit");
  EXPECT_EQ(dataset_by_name("PRODUCTS").name, "Products");
  EXPECT_THROW(dataset_by_name("imagenet"), InvalidArgumentError);
}

TEST(Datasets, ReplicaRespectsScaleAndDegree) {
  DatasetOptions options;
  options.scale = 16.0;
  const Dataset ds = make_dataset(arxiv(), options);
  EXPECT_NEAR(static_cast<double>(ds.n()), 169'000.0 / 16.0, 100.0);
  EXPECT_NEAR(ds.scale, 16.0, 0.5);
  const double k = static_cast<double>(ds.nnz()) / ds.n();
  EXPECT_GT(k, arxiv().avg_degree * 0.7);
  EXPECT_LT(k, arxiv().avg_degree * 1.8);
}

TEST(Datasets, FeaturesLabelsAndSplits) {
  DatasetOptions options;
  options.scale = 64.0;
  const Dataset ds = make_dataset(arxiv(), options);
  ASSERT_TRUE(ds.has_features());
  EXPECT_EQ(ds.features.rows(), ds.n());
  EXPECT_EQ(ds.features.cols(), 128);
  ASSERT_EQ(ds.labels.size(), static_cast<std::size_t>(ds.n()));
  for (const auto label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 40);
  }
  // Splits partition the vertex set.
  for (std::int64_t v = 0; v < ds.n(); ++v) {
    const int sum = ds.train_mask[static_cast<std::size_t>(v)] +
                    ds.val_mask[static_cast<std::size_t>(v)] +
                    ds.test_mask[static_cast<std::size_t>(v)];
    ASSERT_EQ(sum, 1);
  }
}

TEST(Datasets, StructureOnlyHasNoFeatures) {
  DatasetOptions options;
  options.scale = 64.0;
  options.with_features = false;
  const Dataset ds = make_dataset(arxiv(), options);
  EXPECT_FALSE(ds.has_features());
  EXPECT_TRUE(ds.labels.empty());
}

TEST(Datasets, ScaledArxivSpecGrowsDegree) {
  const DatasetSpec x8 = scaled_arxiv_spec(8.0);
  EXPECT_NEAR(x8.avg_degree, 56.0, 1e-9);
  EXPECT_EQ(x8.feature_dim, 512);
  EXPECT_EQ(x8.num_classes, 40);
  EXPECT_EQ(x8.name, "Arxiv-x8");
}

TEST(Datasets, HomophilyFromCommunities) {
  // Edges should connect same-label vertices more often than chance — the
  // property that makes the replicas learnable by a GCN.
  DatasetOptions options;
  options.scale = 32.0;
  const Dataset ds = make_dataset(arxiv(), options);
  const auto row_ptr = ds.adjacency.row_ptr();
  const auto col_idx = ds.adjacency.col_idx();
  std::int64_t same = 0, total = 0;
  for (std::int64_t u = 0; u < ds.n(); ++u) {
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(u)];
         e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
      const auto v = col_idx[static_cast<std::size_t>(e)];
      same += ds.labels[static_cast<std::size_t>(u)] ==
              ds.labels[static_cast<std::size_t>(v)];
      ++total;
    }
  }
  const double homophily = static_cast<double>(same) / total;
  EXPECT_GT(homophily, 2.0 / 40.0);  // far above the 1/classes baseline
}

}  // namespace
}  // namespace mggcn::graph
