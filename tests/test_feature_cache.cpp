// Tests for the per-device frequency-aware feature cache: scoring order,
// capacity degeneration, counter reconciliation, and the plan_auto
// cost-model decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "core/feature_cache.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {
namespace {

class FeatureCacheTest : public ::testing::Test {
 protected:
  sim::Machine machine_{sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom};
};

TEST_F(FeatureCacheTest, PrefillPinsTopScoredVertices) {
  FeatureCache cache(machine_.device(0), 8, 3, CacheMode::kStatic);
  const std::vector<std::uint32_t> vertices = {10, 20, 30, 40, 50};
  const std::vector<std::int64_t> degrees = {5, 40, 7, 40, 2};
  cache.prefill(vertices, degrees);

  // Top-3 by score, ties broken by lower vertex id: 20 (40), 40 (40), 30 (7).
  ASSERT_EQ(cache.occupancy(), 3);
  const auto pinned = cache.pinned();
  EXPECT_EQ(pinned[0], 20u);
  EXPECT_EQ(pinned[1], 40u);
  EXPECT_EQ(pinned[2], 30u);

  const auto part = cache.lookup(std::vector<std::uint32_t>{10, 20, 30});
  EXPECT_EQ(part.hit_vertices, (std::vector<std::uint32_t>{20, 30}));
  EXPECT_EQ(part.miss_vertices, (std::vector<std::uint32_t>{10}));
}

TEST_F(FeatureCacheTest, CapacityZeroDegeneratesToOff) {
  FeatureCache cache(machine_.device(0), 8, 0, CacheMode::kFreq);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.bytes(), 0u);

  const std::vector<std::uint32_t> vertices = {1, 2, 3};
  const auto part = cache.lookup(vertices);
  EXPECT_TRUE(part.hit_vertices.empty());
  EXPECT_EQ(part.miss_vertices, vertices);
  EXPECT_TRUE(cache.admit(part.miss_vertices).empty());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST_F(FeatureCacheTest, StaticModeNeverAdmitsOrEvicts) {
  FeatureCache cache(machine_.device(0), 8, 2, CacheMode::kStatic);
  const std::vector<std::uint32_t> vertices = {1, 2, 3, 4};
  const std::vector<std::int64_t> degrees = {9, 8, 1, 1};
  cache.prefill(vertices, degrees);

  for (int round = 0; round < 5; ++round) {
    const auto part = cache.lookup(std::vector<std::uint32_t>{3, 4});
    EXPECT_TRUE(cache.admit(part.miss_vertices).empty());
  }
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.pinned()[0], 1u);
  EXPECT_EQ(cache.pinned()[1], 2u);
}

TEST_F(FeatureCacheTest, FreqAdmissionDisplacesColderRows) {
  FeatureCache cache(machine_.device(0), 4, 2, CacheMode::kFreq);
  // Seed: 1 and 2 pinned with prior frequency 10; 3 starts at 2.
  cache.prefill(std::vector<std::uint32_t>{1, 2, 3},
                std::vector<std::int64_t>{10, 10, 2});
  ASSERT_EQ(cache.occupancy(), 2);

  // Nine lookups of vertex 3 raise its frequency to 11 > 10: the next
  // admission displaces the colder pinned row (ties evict the higher id
  // first, so vertex 2 goes).
  FeatureCache::Partition part;
  for (int i = 0; i < 9; ++i) {
    part = cache.lookup(std::vector<std::uint32_t>{3});
    EXPECT_EQ(part.miss_vertices, (std::vector<std::uint32_t>{3}));
  }
  const auto placements = cache.admit(part.miss_vertices);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].first, 3u);

  const auto after = cache.lookup(std::vector<std::uint32_t>{1, 2, 3});
  EXPECT_EQ(after.hit_vertices, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(after.miss_vertices, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST_F(FeatureCacheTest, AdmissionNeverDisplacesEqualFrequency) {
  FeatureCache cache(machine_.device(0), 4, 1, CacheMode::kFreq);
  cache.prefill(std::vector<std::uint32_t>{1, 2},
                std::vector<std::int64_t>{5, 5});
  ASSERT_EQ(cache.occupancy(), 1);
  // Both vertices appear in every batch, so their frequencies stay tied:
  // admission requires a strictly higher score and must refuse.
  for (int round = 0; round < 4; ++round) {
    const auto part = cache.lookup(std::vector<std::uint32_t>{1, 2});
    EXPECT_EQ(part.hit_vertices, (std::vector<std::uint32_t>{1}));
    EXPECT_TRUE(cache.admit(part.miss_vertices).empty());
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST_F(FeatureCacheTest, CountersReconcile) {
  FeatureCache cache(machine_.device(0), 8, 3, CacheMode::kFreq);
  const std::vector<std::uint32_t> vertices = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::int64_t> degrees = {8, 7, 6, 5, 4, 3, 2, 1};
  cache.prefill(vertices, degrees);
  const std::int64_t prefilled = cache.occupancy();

  std::uint64_t looked_up = 0;
  for (std::uint32_t base = 0; base < 6; ++base) {
    const std::vector<std::uint32_t> batch = {base, base + 1, base + 2};
    looked_up += batch.size();
    const auto part = cache.lookup(batch);
    EXPECT_EQ(part.hit_vertices.size() + part.miss_vertices.size(),
              batch.size());
    (void)cache.admit(part.miss_vertices);
  }

  const auto& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, looked_up);
  // Occupancy is prefilled + inserts - evictions, and never exceeds
  // capacity.
  EXPECT_EQ(cache.occupancy(),
            prefilled + static_cast<std::int64_t>(stats.inserts) -
                static_cast<std::int64_t>(stats.evictions));
  EXPECT_LE(cache.occupancy(), cache.capacity_rows());
}

TEST_F(FeatureCacheTest, BufferBytesMatchCapacity) {
  FeatureCache cache(machine_.device(0), 16, 10, CacheMode::kStatic);
  EXPECT_EQ(cache.bytes(), 10u * 16u * sizeof(float));
}

TEST_F(FeatureCacheTest, PlanAutoKeepsCacheWhenWireLoses) {
  comm::Communicator comm(machine_);
  const auto decision =
      FeatureCache::plan_auto(CacheMode::kAuto, 100, 64, comm,
                              machine_.profile().device, 1ull << 30);
  // On a multi-device NVLink machine a pinned-row read beats the wire, so
  // kAuto resolves to the frequency cache at full requested capacity.
  EXPECT_EQ(decision.mode, CacheMode::kFreq);
  EXPECT_EQ(decision.capacity_rows, 100);
  EXPECT_GT(decision.miss_seconds_per_row, decision.hit_seconds_per_row);
}

TEST_F(FeatureCacheTest, PlanAutoClampsCapacityToAvailableMemory) {
  comm::Communicator comm(machine_);
  const std::uint64_t row_bytes = 64 * sizeof(float);
  const auto decision = FeatureCache::plan_auto(
      CacheMode::kFreq, 100, 64, comm, machine_.profile().device,
      row_bytes * 7);
  EXPECT_EQ(decision.mode, CacheMode::kFreq);
  EXPECT_EQ(decision.capacity_rows, 7);
}

TEST_F(FeatureCacheTest, PlanAutoDisablesOnSingleRank) {
  sim::Machine solo(sim::dgx_v100(), 1, sim::ExecutionMode::kPhantom);
  comm::Communicator comm(solo);
  const auto decision = FeatureCache::plan_auto(
      CacheMode::kAuto, 100, 64, comm, solo.profile().device, 1ull << 30);
  // One rank owns every row: nothing remote to cache.
  EXPECT_EQ(decision.mode, CacheMode::kOff);
  EXPECT_EQ(decision.capacity_rows, 0);
}

TEST_F(FeatureCacheTest, OffModePassesThroughAsOff) {
  comm::Communicator comm(machine_);
  const auto decision = FeatureCache::plan_auto(
      CacheMode::kOff, 100, 64, comm, machine_.profile().device, 1ull << 30);
  EXPECT_EQ(decision.mode, CacheMode::kOff);
  EXPECT_EQ(decision.capacity_rows, 0);
}

}  // namespace
}  // namespace mggcn::core
