// Tests for the dense kernels (the cuBLAS stand-ins): all GeMM variants
// against a naive reference over parameterized shapes, elementwise ops, the
// fused masked input-gradient GeMM, and cost descriptors.
#include <gtest/gtest.h>

#include <tuple>

#include "dense/kernels.hpp"
#include "dense/matrix.hpp"
#include "util/rng.hpp"

namespace mggcn::dense {
namespace {

HostMatrix random_matrix(std::int64_t rows, std::int64_t cols,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  HostMatrix m(rows, cols);
  m.init_gaussian(rng);
  return m;
}

/// Unoptimized triple loop, the oracle for every variant.
HostMatrix naive_gemm(ConstMatrixView a, ConstMatrixView b, bool ta,
                      bool tb) {
  const std::int64_t m = ta ? a.cols : a.rows;
  const std::int64_t k = ta ? a.rows : a.cols;
  const std::int64_t n = tb ? b.rows : b.cols;
  HostMatrix c(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  const HostMatrix a = random_matrix(m, k, 1);
  const HostMatrix b = random_matrix(k, n, 2);
  HostMatrix c(m, n);
  gemm(a.view(), b.view(), c.view());
  const HostMatrix ref = naive_gemm(a.view(), b.view(), false, false);
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-3);
}

TEST_P(GemmShapes, TransposedAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const HostMatrix a = random_matrix(k, m, 3);  // participates as A^T
  const HostMatrix b = random_matrix(k, n, 4);
  HostMatrix c(m, n);
  gemm_at_b(a.view(), b.view(), c.view());
  const HostMatrix ref = naive_gemm(a.view(), b.view(), true, false);
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-3);
}

TEST_P(GemmShapes, TransposedBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const HostMatrix a = random_matrix(m, k, 5);
  const HostMatrix b = random_matrix(n, k, 6);  // participates as B^T
  HostMatrix c(m, n);
  gemm_a_bt(a.view(), b.view(), c.view());
  const HostMatrix ref = naive_gemm(a.view(), b.view(), false, true);
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 3, 5),
                      std::make_tuple(16, 64, 16),
                      std::make_tuple(33, 17, 65),
                      std::make_tuple(128, 70, 40)));

TEST(Gemm, AlphaBetaSemantics) {
  const HostMatrix a = random_matrix(8, 8, 7);
  const HostMatrix b = random_matrix(8, 8, 8);
  HostMatrix c(8, 8);
  c.fill(1.0f);
  gemm(a.view(), b.view(), c.view(), 2.0f, 3.0f);
  HostMatrix expected = naive_gemm(a.view(), b.view(), false, false);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] = 2.0f * expected.data()[i] + 3.0f;
  }
  EXPECT_LT(max_abs_diff(c.view(), expected.view()), 1e-3);
}

TEST(Gemm, ShapeMismatchThrows) {
  HostMatrix a(4, 5), b(6, 7), c(4, 7);
  EXPECT_THROW(gemm(a.view(), b.view(), c.view()), InvalidArgumentError);
}

TEST(Gemm, MaskedFusedVariantEqualsComposition) {
  const std::int64_t n = 40, d_out = 16, d_in = 24;
  const HostMatrix z = random_matrix(n, d_out, 9);
  const HostMatrix w = random_matrix(d_in, d_out, 10);
  HostMatrix activation = random_matrix(n, d_in, 11);

  // Reference: unfused H_G = Z * W^T then ReLU mask from the activation.
  HostMatrix unfused(n, d_in);
  gemm_a_bt(z.view(), w.view(), unfused.view());
  HostMatrix masked(n, d_in);
  relu_backward(unfused.data(), activation.data(), masked.data(),
                unfused.size());

  HostMatrix fused = activation;  // consumed in place
  gemm_a_bt_relu_masked(z.view(), w.view(), fused.view());
  EXPECT_LT(max_abs_diff(fused.view(), masked.view()), 1e-4);
}

TEST(Elementwise, ReluForward) {
  const float in[] = {-2.0f, 0.0f, 3.5f, -0.1f};
  float out[4];
  relu_forward(in, out, 4);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 3.5f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(Elementwise, ReluBackwardMasksByActivation) {
  const float grad[] = {1.0f, 2.0f, 3.0f};
  const float act[] = {0.5f, 0.0f, -1.0f};
  float out[3];
  relu_backward(grad, act, out, 3);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 0.0f);
}

TEST(Elementwise, AxpyAndCopyAndFill) {
  float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  axpy(x, y, 2, 0.5f);
  EXPECT_EQ(y[0], 10.5f);
  EXPECT_EQ(y[1], 21.0f);
  copy(x, y, 2);
  EXPECT_EQ(y[1], 2.0f);
  fill(y, 2, 7.0f);
  EXPECT_EQ(y[0], 7.0f);
}

TEST(HostMatrix, GlorotBounds) {
  util::Rng rng(1);
  HostMatrix w(64, 32);
  w.init_glorot(rng);
  const double limit = std::sqrt(6.0 / (64 + 32));
  for (std::int64_t i = 0; i < w.size(); ++i) {
    ASSERT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(HostMatrix, RowBlock) {
  HostMatrix m(4, 2);
  for (std::int64_t i = 0; i < 8; ++i) m.data()[i] = static_cast<float>(i);
  const HostMatrix block = m.row_block(1, 3);
  EXPECT_EQ(block.rows(), 2);
  EXPECT_EQ(block.at(0, 0), 2.0f);
  EXPECT_EQ(block.at(1, 1), 5.0f);
}

TEST(Costs, GemmCostCountsFlopsAndTraffic) {
  const auto cost = gemm_cost(10, 20, 30);
  EXPECT_DOUBLE_EQ(cost.flops, 2.0 * 10 * 20 * 30);
  EXPECT_DOUBLE_EQ(cost.stream_bytes, 4.0 * (10 * 30 + 30 * 20 + 2 * 10 * 20));
  EXPECT_EQ(cost.launches, 1);
}

TEST(Costs, ElementwiseCost) {
  const auto cost = elementwise_cost(100, 2, 1);
  EXPECT_DOUBLE_EQ(cost.stream_bytes, 4.0 * 100 * 3);
}

}  // namespace
}  // namespace mggcn::dense
