// HazardChecker and schedule-fuzzing tests: the happens-before audit over
// declared buffer accesses (§4.2/§4.3's hand-threaded event dependencies),
// the regression for the DistSpmm input_released contract, and the
// MGGCN_SCHED_FUZZ determinism requirement (bit-identical losses across
// seeds).
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "core/dist_spmm.hpp"
#include "core/elastic.hpp"
#include "core/partition.hpp"
#include "core/trainer.hpp"
#include "dense/kernels.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "sim/hazard.hpp"
#include "sim/machine.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace mggcn {
namespace {

sim::Machine checked_machine(int gpus) {
  return sim::Machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal,
                      /*hazard_check=*/true);
}

/// RAII environment variable override for the fuzz/env-driven tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

// --- vector-clock primitives ---------------------------------------------

TEST(HbClock, LeqAndJoin) {
  sim::HbClock a = {1, 2};
  sim::HbClock b = {1, 3, 0};
  EXPECT_TRUE(sim::clock_leq(a, b));
  EXPECT_FALSE(sim::clock_leq(b, a));
  EXPECT_TRUE(sim::clock_leq({}, a));
  EXPECT_TRUE(sim::clock_leq(a, a));
  // Missing trailing components are zero.
  EXPECT_TRUE(sim::clock_leq({1, 3}, b));
  EXPECT_FALSE(sim::clock_leq({0, 0, 1}, a));

  sim::clock_join(a, b);
  EXPECT_EQ(a, (sim::HbClock{1, 3, 0}));
}

// --- checker unit tests over raw streams ---------------------------------

TEST(HazardChecker, UnorderedCrossStreamAccessIsReported) {
  sim::Machine machine = checked_machine(1);
  sim::Device& device = machine.device(0);
  sim::DeviceBuffer buf(device, 64, "buf");

  sim::TaskDesc reader;
  reader.label = "reader";
  reader.reads.push_back(buf.access());
  device.compute_stream().enqueue(std::move(reader));

  sim::TaskDesc writer;  // no event edge: races with the read
  writer.label = "writer";
  writer.writes.push_back(buf.access());
  device.comm_stream().enqueue(std::move(writer));

  machine.synchronize();
  ASSERT_GE(machine.trace().hazard_count(), 1u);
  EXPECT_GE(machine.hazard_checker()->violation_count(), 1u);
  const auto records = machine.trace().hazard_records();
  EXPECT_NE(records.front().buffer.find("buf"), std::string::npos);
}

TEST(HazardChecker, EventEdgeOrdersAccesses) {
  sim::Machine machine = checked_machine(1);
  sim::Device& device = machine.device(0);
  sim::DeviceBuffer buf(device, 64, "buf");

  sim::TaskDesc reader;
  reader.label = "reader";
  reader.reads.push_back(buf.access());
  const sim::Event read_done =
      device.compute_stream().enqueue(std::move(reader));

  sim::TaskDesc writer;
  writer.label = "writer";
  writer.waits.push_back(read_done);
  writer.writes.push_back(buf.access());
  device.comm_stream().enqueue(std::move(writer));

  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(HazardChecker, SameStreamProgramOrderIsClean) {
  sim::Machine machine = checked_machine(1);
  sim::Device& device = machine.device(0);
  sim::DeviceBuffer buf(device, 64, "buf");

  for (int i = 0; i < 4; ++i) {
    sim::TaskDesc task;
    task.label = "rw" + std::to_string(i);
    task.reads.push_back(buf.access());
    task.writes.push_back(buf.access());
    device.compute_stream().enqueue(std::move(task));
  }
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(HazardChecker, HostSynchronizationOrdersAccesses) {
  sim::Machine machine = checked_machine(1);
  sim::Device& device = machine.device(0);
  sim::DeviceBuffer buf(device, 64, "buf");

  sim::TaskDesc writer;
  writer.label = "writer";
  writer.writes.push_back(buf.access());
  device.compute_stream().enqueue(std::move(writer));

  // No event edge — but the host observed the write complete before
  // enqueuing the read, which is a happens-before edge too.
  machine.synchronize();

  sim::TaskDesc reader;
  reader.label = "reader";
  reader.reads.push_back(buf.access());
  device.comm_stream().enqueue(std::move(reader));

  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(HazardChecker, CollectiveRendezvousOrdersAllParticipants) {
  sim::Machine machine = checked_machine(2);
  comm::Communicator comm(machine);
  sim::DeviceBuffer root(machine.device(0), 32, "root");
  sim::DeviceBuffer dst(machine.device(1), 32, "dst");

  std::vector<comm::RankPart> parts(2);
  parts[0].buffer = &root;
  parts[1].buffer = &dst;
  std::vector<sim::Event> bcast =
      comm.broadcast(std::move(parts), 32, /*root=*/0);

  // Rank 1 overwrites the ROOT's buffer gated only on its own part event:
  // the rendezvous orders it after rank 0's read of that buffer.
  sim::TaskDesc clobber;
  clobber.label = "clobber_root";
  clobber.waits.push_back(bcast[1]);
  clobber.writes.push_back(root.access());
  machine.device(1).compute_stream().enqueue(std::move(clobber));

  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

// --- DistSpmm input_released regression ----------------------------------

// The contract: result.input_released[r] must cover EVERY reader of
// io.input[r] — the broadcast AND the root rank's own stage-r SpMM. The old
// code signaled the broadcast alone, so a comm-stream overwrite gated on
// the release event raced the root's SpMM read (write-after-read in
// ExecutionMode::kReal). Overlap mode keeps the root SpMM off the comm
// stream's dependency chain, so with the old event this test reports
// hazards on every rank.
TEST(DistSpmmHazard, InputReleasedCoversRootRankSpmmRead) {
  const int gpus = 4;
  const std::int64_t n = 331, d = 16;
  sim::Machine machine = checked_machine(gpus);
  comm::Communicator comm(machine);
  const core::PartitionVector partition =
      core::PartitionVector::uniform(n, gpus);

  util::Rng rng(17);
  graph::BterParams params{
      .n = n, .avg_degree = 12.0, .degree_sigma = 1.1, .clustering = 0.5};
  const sparse::Csr op =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges)
          .normalize_gcn()
          .transpose();
  core::DistSpmm spmm(machine, comm, core::make_tile_grid(op, partition));

  std::vector<sim::DeviceBuffer> input, output, bc1, bc2;
  for (int r = 0; r < gpus; ++r) {
    sim::Device& dev = machine.device(r);
    const auto block = static_cast<std::size_t>(partition.size(r) * d);
    const auto bc = static_cast<std::size_t>(partition.max_part_size() * d);
    input.emplace_back(dev, block, "H");
    output.emplace_back(dev, block, "C");
    bc1.emplace_back(dev, bc, "BC1");
    bc2.emplace_back(dev, bc, "BC2");
  }

  dense::HostMatrix x(n, d);
  util::Rng data_rng(23);
  x.init_gaussian(data_rng);
  for (int r = 0; r < gpus; ++r) {
    auto span = input[static_cast<std::size_t>(r)].span();
    dense::copy(x.view().row(partition.begin(r)), span.data(),
                static_cast<std::int64_t>(span.size()));
  }

  std::vector<std::array<sim::Event, 2>> slot_readers(
      static_cast<std::size_t>(gpus));
  core::DistSpmm::Io io;
  for (auto& b : input) io.input.push_back(&b);
  for (auto& b : output) io.output.push_back(&b);
  for (auto& b : bc1) io.bc1.push_back(&b);
  for (auto& b : bc2) io.bc2.push_back(&b);
  io.d = d;
  io.overlap = true;
  io.compute_bandwidth_scale = 0.85;
  io.slot_readers = &slot_readers;
  const core::DistSpmm::Result result = spmm.run(io);

  // Overwrite each rank's input block on the COMM stream, gated only on
  // the release event — exactly what the trainer's buffer reuse relies on.
  for (int r = 0; r < gpus; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    sim::TaskDesc clobber;
    clobber.label = "clobber";
    clobber.waits.push_back(result.input_released[rr]);
    clobber.writes.push_back(input[rr].access());
    float* data = input[rr].data();
    const auto count = input[rr].size();
    clobber.body = [data, count] { std::fill(data, data + count, -777.0f); };
    machine.device(r).comm_stream().enqueue(std::move(clobber));
  }
  machine.synchronize();

  EXPECT_EQ(machine.trace().hazard_count(), 0u)
      << "input_released does not cover every reader of io.input";

  dense::HostMatrix expected(n, d);
  sparse::spmm(op, x.view(), expected.view());
  dense::HostMatrix got(n, d);
  for (int r = 0; r < gpus; ++r) {
    const auto span = output[static_cast<std::size_t>(r)].span();
    dense::copy(span.data(), got.view().row(partition.begin(r)),
                static_cast<std::int64_t>(span.size()));
  }
  EXPECT_LT(dense::max_abs_diff(got.view(), expected.view()), 1e-4);
}

// --- whole-pipeline audits ------------------------------------------------

graph::Dataset small_dataset() {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 7;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config() {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  return config;
}

TEST(HazardChecker, TrainerPipelineIsClean) {
  const graph::Dataset dataset = small_dataset();
  sim::Machine machine = checked_machine(4);
  core::MgGcnTrainer trainer(machine, dataset, small_config());
  trainer.train(3);
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

TEST(HazardChecker, TrainerPipelineIsCleanWithoutOverlap) {
  const graph::Dataset dataset = small_dataset();
  sim::Machine machine = checked_machine(4);
  core::TrainConfig config = small_config();
  config.overlap = false;
  core::MgGcnTrainer trainer(machine, dataset, config);
  trainer.train(2);
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
}

// --- schedule fuzzing ------------------------------------------------------

// MGGCN_SCHED_FUZZ perturbs host-thread interleavings only: training must
// be bit-identical across seeds (and hazard-free under every one).
TEST(SchedFuzz, TrainingIsBitIdenticalAcrossSeeds) {
  const graph::Dataset dataset = small_dataset();
  const int epochs = 3;

  std::vector<std::vector<double>> losses;
  for (const char* seed : {"0x0", "1", "7", "1234567", "98765"}) {
    ScopedEnv fuzz("MGGCN_SCHED_FUZZ", seed);
    sim::Machine machine = checked_machine(4);
    core::MgGcnTrainer trainer(machine, dataset, small_config());
    std::vector<double> run;
    for (const auto& stats : trainer.train(epochs)) {
      run.push_back(stats.loss);
    }
    machine.synchronize();
    EXPECT_EQ(machine.trace().hazard_count(), 0u) << "seed " << seed;
    losses.push_back(std::move(run));
  }

  for (std::size_t i = 1; i < losses.size(); ++i) {
    ASSERT_EQ(losses[i].size(), losses[0].size());
    for (std::size_t e = 0; e < losses[0].size(); ++e) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(losses[i][e], losses[0][e]) << "seed " << i << " epoch " << e;
    }
  }
}

// --- elastic-recovery repartition path ------------------------------------

TEST(HazardChecker, ElasticRecoveryRepartitionIsClean) {
  ScopedEnv check("MGGCN_HAZARD_CHECK", "1");  // exercised via the env path
  const graph::Dataset dataset = small_dataset();
  auto plan =
      std::make_shared<sim::FaultPlan>(sim::FaultPlan::parse("kill:1@2"));

  core::ElasticTrainer trainer(sim::dgx_v100(), 4, dataset, small_config(),
                               plan);
  const auto stats = trainer.train(5);
  EXPECT_EQ(stats.size(), 5u);
  EXPECT_GE(trainer.recoveries().size(), 1u);
  ASSERT_NE(trainer.machine().hazard_checker(), nullptr);
  EXPECT_EQ(trainer.machine().trace().hazard_count(), 0u);
}

}  // namespace
}  // namespace mggcn
