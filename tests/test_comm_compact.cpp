// End-to-end tests for the compacted (ghost-row) exchange: trainer losses
// must be bit-identical across MGGCN_COMM=dense|compact|auto — including
// under the hazard checker, schedule fuzzing, and elastic recovery — and
// the per-epoch communication-volume counters must be consistent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm_mode.hpp"
#include "core/elastic.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config(comm::CommMode mode) {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  config.comm_mode = mode;
  // These tests audit the 1D staged exchange specifically; pin the
  // strategy so the auto-planner cannot reroute the products (it picks
  // the replicated executor on graphs this small).
  config.plan_mode = core::PlanMode::k1D;
  return config;
}

/// RAII environment variable override (mirrors test_hazard.cpp).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

std::vector<core::EpochStats> train_with_mode(const graph::Dataset& ds,
                                              int gpus, int epochs,
                                              comm::CommMode mode,
                                              bool hazard_check = false) {
  sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal,
                       hazard_check);
  core::MgGcnTrainer trainer(machine, ds, small_config(mode));
  auto stats = trainer.train(epochs);
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
  return stats;
}

TEST(CommCompact, TrainerLossesBitIdenticalAcrossModes) {
  const graph::Dataset ds = small_dataset();
  const int epochs = 5;
  for (const int gpus : {2, 4}) {
    const auto dense =
        train_with_mode(ds, gpus, epochs, comm::CommMode::kDense);
    const auto compact =
        train_with_mode(ds, gpus, epochs, comm::CommMode::kCompact);
    const auto automatic =
        train_with_mode(ds, gpus, epochs, comm::CommMode::kAuto);
    ASSERT_EQ(dense.size(), static_cast<std::size_t>(epochs));
    for (int e = 0; e < epochs; ++e) {
      const auto ee = static_cast<std::size_t>(e);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(dense[ee].loss, compact[ee].loss)
          << gpus << " gpus, epoch " << e;
      EXPECT_EQ(dense[ee].loss, automatic[ee].loss)
          << gpus << " gpus, epoch " << e;
      EXPECT_EQ(dense[ee].train_accuracy, compact[ee].train_accuracy);
      EXPECT_EQ(dense[ee].train_accuracy, automatic[ee].train_accuracy);
    }
  }
}

TEST(CommCompact, EnvModeReachesDefaultConfiguredTrainer) {
  // MGGCN_COMM must flow through comm_mode() into TrainConfig's default so
  // the environment axis works without touching config code.
  ScopedEnv env("MGGCN_COMM", "compact");
  const auto parsed = comm::parse_comm_mode("compact");
  ASSERT_TRUE(parsed.has_value());
  comm::ScopedCommMode scoped(*parsed);
  core::ScopedPlanMode plan(core::PlanMode::k1D);  // audit the 1D exchange
  const graph::Dataset ds = small_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, core::TrainConfig{});
  const auto stats = trainer.train_epoch();
  EXPECT_GT(stats.comm_compact_stages, 0);
  EXPECT_EQ(stats.comm_dense_stages, 0);
}

TEST(CommCompact, HazardFreeUnderCheckerAndSchedFuzz) {
  const graph::Dataset ds = small_dataset();
  const int epochs = 3;
  const auto base = train_with_mode(ds, 4, epochs, comm::CommMode::kDense);

  // Compact under the hazard checker.
  const auto checked = train_with_mode(ds, 4, epochs, comm::CommMode::kCompact,
                                       /*hazard_check=*/true);
  // Compact under the checker AND a perturbed host-thread schedule.
  ScopedEnv fuzz("MGGCN_SCHED_FUZZ", "1309");
  const auto fuzzed = train_with_mode(ds, 4, epochs, comm::CommMode::kCompact,
                                      /*hazard_check=*/true);
  for (int e = 0; e < epochs; ++e) {
    const auto ee = static_cast<std::size_t>(e);
    EXPECT_EQ(base[ee].loss, checked[ee].loss) << "epoch " << e;
    EXPECT_EQ(base[ee].loss, fuzzed[ee].loss) << "epoch " << e;
  }
}

TEST(CommCompact, VolumeCountersAreConsistent) {
  const graph::Dataset ds = small_dataset();
  const auto dense = train_with_mode(ds, 4, 2, comm::CommMode::kDense);
  const auto compact = train_with_mode(ds, 4, 2, comm::CommMode::kCompact);
  const auto automatic = train_with_mode(ds, 4, 2, comm::CommMode::kAuto);

  for (const auto& stats : dense) {
    EXPECT_GT(stats.comm_wire_bytes, 0u);
    EXPECT_EQ(stats.comm_bytes_saved, 0u);
    EXPECT_EQ(stats.comm_packs, 0u);
    EXPECT_EQ(stats.comm_compact_stages, 0);
    EXPECT_GT(stats.comm_dense_stages, 0);
  }
  for (const auto& stats : compact) {
    EXPECT_GT(stats.comm_wire_bytes, 0u);
    EXPECT_GT(stats.comm_packs, 0u);
    EXPECT_GT(stats.comm_compact_stages, 0);
    EXPECT_EQ(stats.comm_dense_stages, 0);
    // Compact can only shrink the wire relative to all-dense broadcasts.
    EXPECT_LE(stats.comm_wire_bytes,
              stats.comm_wire_bytes + stats.comm_bytes_saved);
  }
  // Auto's wire volume is bounded by the dense schedule's.
  for (std::size_t e = 0; e < automatic.size(); ++e) {
    EXPECT_LE(automatic[e].comm_wire_bytes, dense[e].comm_wire_bytes);
  }
}

TEST(CommCompact, ElasticCommRewindBitIdenticalUnderCompact) {
  // Transient-fault rewind-and-replay composes with the compacted exchange:
  // same losses as the fault-free compact run, same device count.
  const graph::Dataset ds = small_dataset();
  constexpr int kEpochs = 6;
  core::TrainConfig config = small_config(comm::CommMode::kCompact);
  config.permute = false;

  core::ElasticTrainer fault_free(sim::dgx_v100(), 3, ds, config, nullptr);
  const auto base = fault_free.train(kEpochs);

  auto plan = std::make_shared<sim::FaultPlan>(
      sim::FaultPlan::parse("flaky:12@3"));
  core::ElasticTrainer elastic(sim::dgx_v100(), 3, ds, config, plan);
  const auto stats = elastic.train(kEpochs);

  EXPECT_EQ(elastic.num_devices(), 3);
  EXPECT_EQ(elastic.recoveries().size(), 2u);
  for (std::size_t e = 0; e < base.size(); ++e) {
    EXPECT_EQ(base[e].loss, stats[e].loss) << "epoch " << e;
  }
}

TEST(CommCompact, ElasticRepartitionAfterDeviceLossStaysCleanUnderCompact) {
  // A permanent device failure repartitions onto P-1 devices; the compacted
  // exchange must re-inspect the new tiles and stay hazard-free.
  ScopedEnv check("MGGCN_HAZARD_CHECK", "1");
  const graph::Dataset ds = small_dataset();
  core::TrainConfig config = small_config(comm::CommMode::kCompact);
  auto plan =
      std::make_shared<sim::FaultPlan>(sim::FaultPlan::parse("kill:1@2"));

  core::ElasticTrainer trainer(sim::dgx_v100(), 4, ds, config, plan);
  const auto stats = trainer.train(5);
  EXPECT_EQ(stats.size(), 5u);
  EXPECT_EQ(trainer.num_devices(), 3);
  EXPECT_GE(trainer.recoveries().size(), 1u);
  ASSERT_NE(trainer.machine().hazard_checker(), nullptr);
  EXPECT_EQ(trainer.machine().trace().hazard_count(), 0u);
  // Post-recovery epochs still train (finite loss) on the compacted path.
  EXPECT_GT(stats.back().comm_compact_stages, 0);
}

}  // namespace
}  // namespace mggcn
