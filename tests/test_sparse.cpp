// Tests for the sparse substrate: COO/CSR construction, transpose, tiling
// (eq. (15)), symmetric permutation (§5.2), GCN normalization (eq. (2)),
// SpMM against a dense oracle, and the binary IO (PIGO stand-in).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "dense/kernels.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/io.hpp"
#include "sparse/spmm.hpp"
#include "util/rng.hpp"

namespace mggcn::sparse {
namespace {

Csr random_csr(std::int64_t rows, std::int64_t cols, double density,
               std::uint64_t seed) {
  util::Rng rng(seed);
  Coo coo(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        coo.add(static_cast<std::uint32_t>(r),
                static_cast<std::uint32_t>(c),
                static_cast<float>(rng.gaussian()));
      }
    }
  }
  return Csr::from_coo(coo);
}

dense::HostMatrix to_dense(const Csr& a) {
  dense::HostMatrix d(a.rows(), a.cols());
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      d.at(r, col_idx[static_cast<std::size_t>(e)]) +=
          values[static_cast<std::size_t>(e)];
    }
  }
  return d;
}

TEST(Coo, SymmetrizeAddsReverseEdges) {
  Coo coo(4, 4);
  coo.add(0, 1);
  coo.add(2, 3);
  coo.add(1, 1);  // self-loop stays single
  coo.symmetrize();
  EXPECT_EQ(coo.nnz(), 5);
}

TEST(Coo, SortAndMergeSumsDuplicates) {
  Coo coo(3, 3);
  coo.add(1, 2, 1.0f);
  coo.add(0, 0, 2.0f);
  coo.add(1, 2, 3.0f);
  coo.sort_and_merge();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.row_idx[0], 0u);
  EXPECT_EQ(coo.values[1], 4.0f);
}

TEST(Csr, FromCooSortsRowsAndMergesDuplicates) {
  Coo coo(2, 4);
  coo.add(0, 3, 1.0f);
  coo.add(0, 1, 2.0f);
  coo.add(0, 3, 0.5f);
  coo.add(1, 0, 1.0f);
  const Csr csr = Csr::from_coo(coo);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.col_idx()[0], 1u);
  EXPECT_EQ(csr.col_idx()[1], 3u);
  EXPECT_EQ(csr.values()[1], 1.5f);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 1);
}

TEST(Csr, IdentitySpmmIsIdentity) {
  const Csr eye = Csr::identity(6);
  util::Rng rng(3);
  dense::HostMatrix x(6, 4);
  x.init_gaussian(rng);
  dense::HostMatrix y(6, 4);
  spmm(eye, x.view(), y.view());
  EXPECT_EQ(dense::max_abs_diff(x.view(), y.view()), 0.0);
}

TEST(Csr, TransposeIsInvolution) {
  const Csr a = random_csr(17, 11, 0.2, 5);
  const Csr att = a.transpose().transpose();
  EXPECT_EQ(a, att);
}

TEST(Csr, TransposeMatchesDense) {
  const Csr a = random_csr(9, 13, 0.3, 6);
  const dense::HostMatrix da = to_dense(a);
  const dense::HostMatrix dt = to_dense(a.transpose());
  for (std::int64_t i = 0; i < 9; ++i) {
    for (std::int64_t j = 0; j < 13; ++j) {
      ASSERT_EQ(da.at(i, j), dt.at(j, i));
    }
  }
}

TEST(Csr, TileExtractsSubmatrix) {
  const Csr a = random_csr(20, 20, 0.25, 7);
  const dense::HostMatrix da = to_dense(a);
  const Csr t = a.tile(5, 12, 3, 17);
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 14);
  const dense::HostMatrix dt = to_dense(t);
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 14; ++j) {
      ASSERT_EQ(dt.at(i, j), da.at(i + 5, j + 3));
    }
  }
}

TEST(Csr, TilesPartitionNnzExactly) {
  const Csr a = random_csr(30, 30, 0.2, 8);
  std::int64_t total = 0;
  const std::int64_t cuts[] = {0, 7, 19, 30};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      total += a.tile(cuts[i], cuts[i + 1], cuts[j], cuts[j + 1]).nnz();
    }
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(Csr, PermuteSymmetricRelabelsEntries) {
  const Csr a = random_csr(12, 12, 0.3, 9);
  util::Rng rng(10);
  const auto perm = rng.permutation<std::uint32_t>(12);
  const Csr p = a.permute_symmetric(perm);
  EXPECT_EQ(p.nnz(), a.nnz());
  const dense::HostMatrix da = to_dense(a);
  const dense::HostMatrix dp = to_dense(p);
  for (std::int64_t u = 0; u < 12; ++u) {
    for (std::int64_t v = 0; v < 12; ++v) {
      ASSERT_EQ(dp.at(perm[static_cast<std::size_t>(u)],
                      perm[static_cast<std::size_t>(v)]),
                da.at(u, v));
    }
  }
}

TEST(Csr, PermutationCommutesWithSpmm) {
  // (P A P^T)(P x) = P (A x): permuting the operator and the features gives
  // permuted outputs — the §5.2 trick does not change the training math.
  const Csr a = random_csr(15, 15, 0.3, 11);
  util::Rng rng(12);
  const auto perm = rng.permutation<std::uint32_t>(15);
  const Csr pa = a.permute_symmetric(perm);

  dense::HostMatrix x(15, 3);
  x.init_gaussian(rng);
  dense::HostMatrix px(15, 3);
  for (std::int64_t v = 0; v < 15; ++v) {
    dense::copy(x.view().row(v),
                px.view().row(perm[static_cast<std::size_t>(v)]), 3);
  }

  dense::HostMatrix ax(15, 3), pax(15, 3);
  spmm(a, x.view(), ax.view());
  spmm(pa, px.view(), pax.view());
  for (std::int64_t v = 0; v < 15; ++v) {
    for (std::int64_t j = 0; j < 3; ++j) {
      ASSERT_NEAR(pax.at(perm[static_cast<std::size_t>(v)], j), ax.at(v, j),
                  1e-5);
    }
  }
}

TEST(Csr, NormalizeGcnMakesColumnSumsOne) {
  util::Rng rng(13);
  graph::BterParams params{.n = 200, .avg_degree = 6.0, .degree_sigma = 0.8,
                           .clustering = 0.4};
  const Csr a = Csr::from_coo(graph::bter_like(params, rng).edges);
  const Csr norm = a.normalize_gcn();
  const auto sums = norm.column_sums();
  for (const double s : sums) {
    ASSERT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Csr, NormalizeMatchesEquationTwo) {
  Coo coo(3, 3);
  coo.add(0, 2, 1.0f);
  coo.add(1, 2, 3.0f);
  coo.add(2, 0, 5.0f);
  const Csr norm = Csr::from_coo(coo).normalize_gcn();
  // Column 2 sum = 4 -> entries 0.25 and 0.75; column 0 sum = 5 -> 1.0.
  EXPECT_NEAR(norm.values()[0], 0.25f, 1e-7);
  EXPECT_NEAR(norm.values()[1], 0.75f, 1e-7);
  EXPECT_NEAR(norm.values()[2], 1.0f, 1e-7);
}

class SpmmShapes
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t, double>> {};

TEST_P(SpmmShapes, MatchesDenseGemm) {
  const auto [m, k, d, density] = GetParam();
  const Csr a = random_csr(m, k, density, 14);
  util::Rng rng(15);
  dense::HostMatrix b(k, d);
  b.init_gaussian(rng);
  dense::HostMatrix c(m, d);
  spmm(a, b.view(), c.view());
  const dense::HostMatrix da = to_dense(a);
  dense::HostMatrix ref(m, d);
  dense::gemm(da.view(), b.view(), ref.view());
  EXPECT_LT(dense::max_abs_diff(c.view(), ref.view()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1.0),
                      std::make_tuple(10, 10, 4, 0.3),
                      std::make_tuple(31, 17, 8, 0.2),
                      std::make_tuple(64, 64, 16, 0.05),
                      std::make_tuple(5, 40, 3, 0.5)));

TEST(Spmm, BetaAccumulates) {
  const Csr a = random_csr(8, 8, 0.4, 16);
  util::Rng rng(17);
  dense::HostMatrix b(8, 2);
  b.init_gaussian(rng);
  dense::HostMatrix c(8, 2);
  c.fill(1.0f);
  spmm(a, b.view(), c.view(), 1.0f, 1.0f);
  dense::HostMatrix pure(8, 2);
  spmm(a, b.view(), pure.view());
  for (std::int64_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c.data()[i], pure.data()[i] + 1.0f, 1e-5);
  }
}

TEST(Spmm, CostScalesWithNnzAndWidth) {
  const auto small = spmm_cost(100, 50, 50, 8);
  const auto wide = spmm_cost(100, 50, 50, 16);
  const auto dense_ = spmm_cost(200, 50, 50, 8);
  EXPECT_GT(wide.gather_bytes, small.gather_bytes);
  EXPECT_GT(dense_.gather_bytes, small.gather_bytes);
  EXPECT_DOUBLE_EQ(small.flops, 2.0 * 100 * 8);
}

TEST(Io, CsrRoundTrip) {
  const Csr a = random_csr(23, 19, 0.25, 18);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test_roundtrip.csr")
          .string();
  write_csr(a, path);
  const Csr b = read_csr(path);
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(Io, RejectsCorruptFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test_bad.csr")
          .string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a csr file";
  }
  EXPECT_THROW(read_csr(path), Error);
  std::remove(path.c_str());
}

TEST(Io, MatrixMarketRoundTrip) {
  const Csr a = random_csr(14, 14, 0.3, 21);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test.mtx").string();
  write_matrix_market(a, path);
  Coo coo = read_matrix_market(path);
  const Csr b = Csr::from_coo(coo);
  std::remove(path.c_str());
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_LT(dense::max_abs_diff(to_dense(a).view(), to_dense(b).view()),
            1e-4);
}

TEST(Io, MatrixMarketSymmetricPatternExpansion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test_sym.mtx")
          .string();
  {
    std::ofstream os(path);
    os << "%%MatrixMarket matrix coordinate pattern symmetric\n"
       << "% a comment\n"
       << "3 3 2\n"
       << "2 1\n"
       << "3 3\n";
  }
  const Coo coo = read_matrix_market(path);
  std::remove(path.c_str());
  // (2,1) expands to (1,2) too; the (3,3) diagonal does not.
  EXPECT_EQ(coo.nnz(), 3);
  for (const float v : coo.values) EXPECT_EQ(v, 1.0f);
}

TEST(Io, MatrixMarketRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test_bad.mtx")
          .string();
  {
    std::ofstream os(path);
    os << "not a banner\n1 1 0\n";
  }
  EXPECT_THROW(read_matrix_market(path), Error);
  std::remove(path.c_str());
}

TEST(Io, EdgeListRoundTrip) {
  const Csr a = random_csr(12, 12, 0.3, 19);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mggcn_test_edges.txt")
          .string();
  write_edge_list(a, path);
  Coo coo = read_edge_list(path, 12);
  const Csr b = Csr::from_coo(coo);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.row_ptr()[5], b.row_ptr()[5]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mggcn::sparse
