// Tests for the mini-batch sampled trainer, including the §1 comparison:
// mini-batch training does more per-epoch work and reaches at-best-equal
// accuracy relative to full-batch MG-GCN.
#include <gtest/gtest.h>

#include "baselines/minibatch.hpp"
#include "core/gcn_kernels.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::baselines {
namespace {

graph::Dataset learnable_dataset(std::int64_t n = 600) {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = n;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.avg_degree = 12.0;
  graph::DatasetOptions options;
  options.seed = 33;
  options.feature_snr = 2.0;
  return graph::make_dataset(spec, options);
}

TEST(MiniBatchTrainer, LossDecreasesAndAccuracyRises) {
  const graph::Dataset ds = learnable_dataset();
  MiniBatchTrainer::Options options;
  options.hidden_dims = {16};
  options.fanout = {8, 8};
  options.batch_size = 64;
  MiniBatchTrainer trainer(ds, options);

  const auto first = trainer.train_epoch();
  MiniBatchTrainer::EpochResult last{};
  for (int e = 0; e < 25; ++e) last = trainer.train_epoch();
  EXPECT_LT(last.loss, first.loss * 0.7);
  EXPECT_GT(last.train_accuracy, 0.6);
}

TEST(MiniBatchTrainer, SampledEdgesTrackFanout) {
  const graph::Dataset ds = learnable_dataset();
  MiniBatchTrainer::Options narrow;
  narrow.hidden_dims = {16};
  narrow.fanout = {3, 3};
  narrow.batch_size = 64;
  MiniBatchTrainer::Options wide = narrow;
  wide.fanout = {12, 12};

  MiniBatchTrainer a(ds, narrow), b(ds, wide);
  EXPECT_LT(a.train_epoch().sampled_edges, b.train_epoch().sampled_edges);
}

TEST(MiniBatchTrainer, FullForwardUsesWholeGraph) {
  const graph::Dataset ds = learnable_dataset(300);
  MiniBatchTrainer::Options options;
  options.hidden_dims = {16};
  options.fanout = {6, 6};
  options.batch_size = 32;
  MiniBatchTrainer trainer(ds, options);
  const dense::HostMatrix logits = trainer.forward_full();
  EXPECT_EQ(logits.rows(), ds.n());
  EXPECT_EQ(logits.cols(), 5);
}

TEST(MiniBatchTrainer, RejectsMismatchedFanout) {
  const graph::Dataset ds = learnable_dataset(300);
  MiniBatchTrainer::Options options;
  options.hidden_dims = {16};
  options.fanout = {6};  // needs 2 entries for a 2-layer model
  EXPECT_THROW(MiniBatchTrainer(ds, options), InvalidArgumentError);
}

TEST(MiniBatchVsFullBatch, FullBatchIsAtLeastAsAccurate) {
  // §1: "mini-batch training can lead to lower accuracy compared to
  // full-batch training". Train both to convergence on the same replica
  // and compare transductive test accuracy.
  const graph::Dataset ds = learnable_dataset(800);

  MiniBatchTrainer::Options mb_options;
  mb_options.hidden_dims = {16};
  mb_options.fanout = {5, 5};
  mb_options.batch_size = 64;
  mb_options.seed = 3;
  MiniBatchTrainer minibatch(ds, mb_options);
  for (int e = 0; e < 40; ++e) minibatch.train_epoch();
  const dense::HostMatrix mb_logits = minibatch.forward_full();
  const core::LossResult mb = core::evaluate_accuracy(
      mb_logits.view(), ds.labels.data(), ds.test_mask.data());

  core::TrainConfig fb_config;
  fb_config.hidden_dims = {16};
  fb_config.seed = 3;
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer fullbatch(machine, ds, fb_config);
  fullbatch.train(40);
  fullbatch.run_forward();
  const dense::HostMatrix fb_logits = fullbatch.gather_logits();
  const core::LossResult fb = core::evaluate_accuracy(
      fb_logits.view(), ds.labels.data(), ds.test_mask.data());

  const double mb_acc = static_cast<double>(mb.correct) / mb.counted;
  const double fb_acc = static_cast<double>(fb.correct) / fb.counted;
  EXPECT_GT(fb_acc, 0.55);
  // Full-batch matches or beats mini-batch (small tolerance for noise).
  EXPECT_GE(fb_acc + 0.03, mb_acc);
}

}  // namespace
}  // namespace mggcn::baselines
