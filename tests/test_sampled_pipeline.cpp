// Tests for the pipelined distributed mini-batch engine: bit-identical
// numerics across pipeline on/off, cache modes, and fuzzed schedules;
// hazard-clean overlapped execution; cache/pipeline counters; and the
// persistent-memory accounting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/sampled_pipeline.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {
namespace {

graph::Dataset sampled_dataset(std::int64_t n = 600) {
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = n;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.avg_degree = 12.0;
  graph::DatasetOptions options;
  options.seed = 33;
  options.feature_snr = 2.0;
  return graph::make_dataset(spec, options);
}

SampledPipeline::Options small_options() {
  SampledPipeline::Options options;
  options.hidden_dims = {16};
  options.fanout = {8, 8};
  options.batch_size = 48;
  options.seed = 3;
  options.cache_mode = CacheMode::kFreq;
  options.cache_capacity_fraction = 0.1;
  return options;
}

/// RAII environment override (for the sched-fuzz axis).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

std::vector<double> run_losses(const graph::Dataset& ds,
                               SampledPipeline::Options options, int epochs,
                               bool hazard_check = false) {
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal,
                       hazard_check);
  SampledPipeline pipeline(machine, ds, options);
  std::vector<double> losses;
  for (const auto& stats : pipeline.train(epochs)) {
    losses.push_back(stats.loss);
  }
  machine.synchronize();
  EXPECT_EQ(machine.trace().hazard_count(), 0u);
  return losses;
}

TEST(SampledPipeline, LossDecreasesAndAccuracyRises) {
  const graph::Dataset ds = sampled_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pipeline(machine, ds, small_options());

  const EpochStats first = pipeline.train_epoch();
  EpochStats last{};
  for (int e = 0; e < 20; ++e) last = pipeline.train_epoch();
  EXPECT_LT(last.loss, first.loss * 0.7);
  EXPECT_GT(last.train_accuracy, 0.6);
}

TEST(SampledPipeline, PipelinedAndSerializedAreBitIdentical) {
  const graph::Dataset ds = sampled_dataset();
  SampledPipeline::Options pipelined = small_options();
  pipelined.pipeline = true;
  SampledPipeline::Options serialized = small_options();
  serialized.pipeline = false;

  const auto a = run_losses(ds, pipelined, 3);
  const auto b = run_losses(ds, serialized, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    // Bit-identical: the pipeline changes only the simulated schedule.
    EXPECT_EQ(a[e], b[e]) << "epoch " << e;
  }
}

TEST(SampledPipeline, PipelineOverlapShortensEpochs) {
  const graph::Dataset ds = sampled_dataset(900);
  SampledPipeline::Options pipelined = small_options();
  SampledPipeline::Options serialized = small_options();
  serialized.pipeline = false;

  sim::Machine ma(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pa(ma, ds, pipelined);
  sim::Machine mb(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pb(mb, ds, serialized);
  // Warm-up epoch first so the comparison is not dominated by cold-cache
  // admissions, then compare one steady-state epoch.
  pa.train_epoch();
  pb.train_epoch();
  EXPECT_LT(pa.train_epoch().sim_seconds, pb.train_epoch().sim_seconds);
}

TEST(SampledPipeline, CacheModeDoesNotChangeNumerics) {
  const graph::Dataset ds = sampled_dataset();
  std::vector<std::vector<double>> runs;
  for (const CacheMode mode : {CacheMode::kOff, CacheMode::kStatic,
                               CacheMode::kFreq, CacheMode::kAuto}) {
    SampledPipeline::Options options = small_options();
    options.cache_mode = mode;
    runs.push_back(run_losses(ds, options, 2));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].size(), runs[0].size());
    for (std::size_t e = 0; e < runs[0].size(); ++e) {
      // The cache changes which fabric moves a row, never its contents.
      EXPECT_EQ(runs[i][e], runs[0][e]) << "mode " << i << " epoch " << e;
    }
  }
}

TEST(SampledPipeline, OverlappedScheduleIsHazardClean) {
  const graph::Dataset ds = sampled_dataset();
  const auto losses = run_losses(ds, small_options(), 3,
                                 /*hazard_check=*/true);
  EXPECT_EQ(losses.size(), 3u);
}

TEST(SampledPipeline, SchedFuzzIsBitIdenticalAcrossSeeds) {
  const graph::Dataset ds = sampled_dataset();
  std::vector<std::vector<double>> losses;
  for (const char* seed : {"1", "7", "98765"}) {
    ScopedEnv fuzz("MGGCN_SCHED_FUZZ", seed);
    losses.push_back(run_losses(ds, small_options(), 2,
                                /*hazard_check=*/true));
  }
  for (std::size_t i = 1; i < losses.size(); ++i) {
    ASSERT_EQ(losses[i].size(), losses[0].size());
    for (std::size_t e = 0; e < losses[0].size(); ++e) {
      EXPECT_EQ(losses[i][e], losses[0][e]) << "seed " << i;
    }
  }
}

TEST(SampledPipeline, CountersReconcile) {
  const graph::Dataset ds = sampled_dataset();
  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pipeline(machine, ds, small_options());

  const EpochStats cold = pipeline.train_epoch();
  EXPECT_EQ(cold.pipe_rounds, pipeline.rounds_per_epoch());
  EXPECT_GT(cold.cache_hits + cold.cache_misses, 0);
  EXPECT_GE(cold.cache_hit_rate, 0.0);
  EXPECT_LE(cold.cache_hit_rate, 1.0);
  EXPECT_GT(cold.pipe_sample_seconds, 0.0);
  EXPECT_GT(cold.pipe_extract_seconds, 0.0);
  EXPECT_GT(cold.pipe_train_seconds, 0.0);
  EXPECT_GT(cold.pipe_occupancy, 0.0);
  EXPECT_LE(cold.pipe_occupancy, 1.0);

  // The degree prefill plus frequency admissions must convert some remote
  // reads into HBM hits once the cache is warm.
  const EpochStats warm = pipeline.train_epoch();
  EXPECT_GT(warm.cache_hits, 0);
  EXPECT_GT(warm.cache_hit_rate, 0.0);
}

TEST(SampledPipeline, AutoResolvesAndNeverLosesToOff) {
  const graph::Dataset ds = sampled_dataset(900);
  SampledPipeline::Options auto_options = small_options();
  auto_options.cache_mode = CacheMode::kAuto;
  SampledPipeline::Options off_options = small_options();
  off_options.cache_mode = CacheMode::kOff;

  sim::Machine ma(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pa(ma, ds, auto_options);
  // Multi-device NVLink machine: the cost model keeps the cache.
  EXPECT_EQ(pa.resolved_cache_mode(), CacheMode::kFreq);
  EXPECT_GT(pa.cache_decision().miss_seconds_per_row,
            pa.cache_decision().hit_seconds_per_row);

  sim::Machine mb(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pb(mb, ds, off_options);
  EXPECT_EQ(pb.resolved_cache_mode(), CacheMode::kOff);

  // Warm epoch vs warm epoch: cached extraction must not be slower.
  pa.train_epoch();
  pb.train_epoch();
  EXPECT_LE(pa.train_epoch().sim_seconds, pb.train_epoch().sim_seconds);
}

TEST(SampledPipeline, AccountMemoryChargesCacheIndependentOfDepth) {
  const graph::Dataset ds = sampled_dataset();

  SampledPipeline::Options shallow = small_options();
  SampledPipeline::Options deep = small_options();
  deep.hidden_dims = {16, 16};
  deep.fanout = {8, 8, 8};

  sim::Machine ma(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pa(ma, ds, shallow);
  sim::Machine mb(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pb(mb, ds, deep);

  const auto a = pa.account_memory();
  const auto b = pb.account_memory();
  EXPECT_GT(a.cache_bytes, 0u);
  // The cache holds input rows only: its footprint must not grow with
  // model depth, while the replicated model state does.
  EXPECT_EQ(a.cache_bytes, b.cache_bytes);
  EXPECT_EQ(a.feature_bytes, b.feature_bytes);
  EXPECT_GT(b.model_bytes, a.model_bytes);
  EXPECT_EQ(a.total(), a.feature_bytes + a.cache_bytes + a.model_bytes);

  SampledPipeline::Options off = small_options();
  off.cache_mode = CacheMode::kOff;
  sim::Machine mc(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  SampledPipeline pc(mc, ds, off);
  EXPECT_EQ(pc.account_memory().cache_bytes, 0u);
  EXPECT_EQ(pc.cache(0).stats().hits, 0u);
}

TEST(SampledPipeline, RejectsMismatchedFanout) {
  const graph::Dataset ds = sampled_dataset(300);
  sim::Machine machine(sim::dgx_v100(), 2, sim::ExecutionMode::kReal);
  SampledPipeline::Options options = small_options();
  options.fanout = {8};  // needs 2 entries for a 2-layer model
  EXPECT_THROW(SampledPipeline(machine, ds, options), InvalidArgumentError);
}

TEST(SampledPipeline, PhantomModeRunsStructurally) {
  // Scale runs use phantom execution: no feature/label storage, but the
  // schedule, counters, and timing must still materialize.
  graph::DatasetSpec spec = graph::arxiv();
  spec.n = 2000;
  spec.feature_dim = 64;
  spec.num_classes = 10;
  spec.avg_degree = 10.0;
  graph::DatasetOptions options;
  options.seed = 5;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom);
  SampledPipeline pipeline(machine, ds, small_options());
  const EpochStats stats = pipeline.train_epoch();
  EXPECT_GT(stats.sim_seconds, 0.0);
  EXPECT_GT(stats.pipe_rounds, 0);
  EXPECT_GT(stats.comm_wire_bytes, 0u);
}

}  // namespace
}  // namespace mggcn::core
