// Tests for partition vectors (eqs. (13)-(15)) and the symmetric tile grid
// used by the 1D distribution, including the §5.2 load-balance property.
#include <gtest/gtest.h>

#include <tuple>

#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace mggcn::core {
namespace {

class UniformPartition
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(UniformPartition, CoversRangeWithBalancedParts) {
  const auto [n, parts] = GetParam();
  const PartitionVector p = PartitionVector::uniform(n, parts);
  EXPECT_EQ(p.parts(), parts);
  EXPECT_EQ(p.total(), n);
  EXPECT_EQ(p.begin(0), 0);
  std::int64_t covered = 0;
  for (int i = 0; i < parts; ++i) {
    EXPECT_LE(p.begin(i), p.end(i));
    covered += p.size(i);
    // Uniform: sizes differ by at most one.
    EXPECT_LE(p.max_part_size() - p.size(i), 1);
  }
  EXPECT_EQ(covered, n);
}

TEST_P(UniformPartition, PartOfIsConsistent) {
  const auto [n, parts] = GetParam();
  if (n == 0) return;
  const PartitionVector p = PartitionVector::uniform(n, parts);
  for (std::int64_t v = 0; v < n; v += std::max<std::int64_t>(1, n / 97)) {
    const int owner = p.part_of(v);
    EXPECT_GE(v, p.begin(owner));
    EXPECT_LT(v, p.end(owner));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UniformPartition,
    ::testing::Values(std::make_tuple(std::int64_t{1}, 1),
                      std::make_tuple(std::int64_t{10}, 3),
                      std::make_tuple(std::int64_t{100}, 8),
                      std::make_tuple(std::int64_t{7}, 8),
                      std::make_tuple(std::int64_t{1000003}, 8)));

TEST(PartitionVector, RejectsBadOffsets) {
  EXPECT_THROW(PartitionVector({0}), InvalidArgumentError);
  EXPECT_THROW(PartitionVector({1, 5}), InvalidArgumentError);
  EXPECT_THROW(PartitionVector({0, 5, 3}), InvalidArgumentError);
}

TEST(BalancedNnz, CutsEqualizeRowNnz) {
  util::Rng rng(9);
  graph::BterParams params{.n = 2000, .avg_degree = 24.0,
                           .degree_sigma = 1.3, .clustering = 0.5};
  const sparse::Csr a =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
  const PartitionVector p = PartitionVector::balanced_nnz(a, 8);
  EXPECT_EQ(p.parts(), 8);
  EXPECT_EQ(p.total(), a.rows());

  const auto row_ptr = a.row_ptr();
  std::int64_t worst = 0;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t nnz = row_ptr[static_cast<std::size_t>(p.end(i))] -
                             row_ptr[static_cast<std::size_t>(p.begin(i))];
    worst = std::max(worst, nnz);
  }
  // Row-nnz imbalance well below the uniform partition's on this skewed
  // ordering.
  const double balanced_ratio =
      static_cast<double>(worst) / (static_cast<double>(a.nnz()) / 8.0);
  const TileGrid uniform_grid =
      make_tile_grid(a, PartitionVector::uniform(a.rows(), 8));
  EXPECT_LT(balanced_ratio, uniform_grid.imbalance());
  EXPECT_LT(balanced_ratio, 1.35);
}

TEST(BalancedNnz, DegenerateGraphsStillCoverAllRows) {
  const sparse::Csr eye = sparse::Csr::identity(10);
  const PartitionVector p = PartitionVector::balanced_nnz(eye, 4);
  EXPECT_EQ(p.total(), 10);
  for (int i = 0; i < 4; ++i) EXPECT_GE(p.size(i), 1);
}

TEST(TileGrid, PartitionsNnzExactly) {
  util::Rng rng(1);
  graph::BterParams params{.n = 600, .avg_degree = 12.0,
                           .degree_sigma = 1.0, .clustering = 0.5};
  const sparse::Csr a =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
  const TileGrid grid =
      make_tile_grid(a, PartitionVector::uniform(a.rows(), 4));

  std::int64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const auto& tile = grid.tile(i, j);
      EXPECT_EQ(tile.rows(), grid.partition.size(i));
      EXPECT_EQ(tile.cols(), grid.partition.size(j));
      total += tile.nnz();
    }
  }
  EXPECT_EQ(total, a.nnz());
  EXPECT_GE(grid.imbalance(), 1.0);
}

TEST(TileGrid, RandomPermutationImprovesBalance) {
  // §5.2's central claim: on a skewed "natural" ordering, uniform 1D tiles
  // are imbalanced; a random vertex permutation fixes it.
  util::Rng rng(2);
  graph::BterParams params{.n = 4000, .avg_degree = 30.0,
                           .degree_sigma = 1.3, .clustering = 0.5};
  const sparse::Csr natural =
      sparse::Csr::from_coo(graph::bter_like(params, rng).edges);
  const auto perm = rng.permutation<std::uint32_t>(
      static_cast<std::size_t>(natural.rows()));
  const sparse::Csr permuted = natural.permute_symmetric(perm);

  const PartitionVector p = PartitionVector::uniform(natural.rows(), 8);
  const double imbalance_natural = make_tile_grid(natural, p).imbalance();
  const double imbalance_permuted = make_tile_grid(permuted, p).imbalance();
  EXPECT_GT(imbalance_natural, 1.15);
  EXPECT_LT(imbalance_permuted, imbalance_natural);
  EXPECT_LT(imbalance_permuted, 1.15);
}

TEST(TileGrid, RowNnzSumsTileRow) {
  util::Rng rng(3);
  const sparse::Coo coo = graph::erdos_renyi(200, 8.0, rng);
  const sparse::Csr a = sparse::Csr::from_coo(coo);
  const TileGrid grid =
      make_tile_grid(a, PartitionVector::uniform(a.rows(), 2));
  EXPECT_EQ(grid.row_nnz(0) + grid.row_nnz(1), a.nnz());
}

TEST(TileGrid, RequiresSquareMatrix) {
  sparse::Coo coo(4, 5);
  coo.add(0, 1);
  const sparse::Csr a = sparse::Csr::from_coo(coo);
  EXPECT_THROW(make_tile_grid(a, PartitionVector::uniform(4, 2)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace mggcn::core
