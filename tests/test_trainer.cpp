// Integration tests: the distributed MG-GCN trainer against the serial
// reference — the paper's own validation methodology ("we verified the
// correctness of our implementation by comparing the train accuracy curve
// with DGL's", §6).
#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/machine.hpp"

namespace mggcn {
namespace {

graph::Dataset small_dataset(std::uint64_t seed = 7) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = seed;
  return graph::make_dataset(spec, options);
}

core::TrainConfig small_config() {
  core::TrainConfig config;
  config.hidden_dims = {16};
  config.seed = 3;
  return config;
}

TEST(MgGcnTrainer, SingleDeviceMatchesReference) {
  const graph::Dataset ds = small_dataset();
  core::TrainConfig config = small_config();
  config.permute = false;

  sim::Machine machine(sim::dgx_v100(), 1, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, config);
  core::ReferenceTrainer reference(ds, config);

  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto dist = trainer.train_epoch();
    const auto ref = reference.train_epoch();
    EXPECT_NEAR(dist.loss, ref.loss, 1e-3 * std::max(1.0, ref.loss))
        << "epoch " << epoch;
    EXPECT_EQ(dist.train_accuracy, ref.train_accuracy) << "epoch " << epoch;
  }
}

TEST(MgGcnTrainer, MultiDeviceMatchesReference) {
  const graph::Dataset ds = small_dataset();
  for (int gpus : {2, 4}) {
    core::TrainConfig config = small_config();
    config.permute = false;

    sim::Machine machine(sim::dgx_v100(), gpus, sim::ExecutionMode::kReal);
    core::MgGcnTrainer trainer(machine, ds, config);
    core::ReferenceTrainer reference(ds, config);

    for (int epoch = 0; epoch < 4; ++epoch) {
      const auto dist = trainer.train_epoch();
      const auto ref = reference.train_epoch();
      EXPECT_NEAR(dist.loss, ref.loss, 1e-3 * std::max(1.0, ref.loss))
          << gpus << " gpus, epoch " << epoch;
    }
  }
}

TEST(MgGcnTrainer, TrainingConverges) {
  graph::DatasetSpec spec = graph::cora();
  spec.n = 400;
  spec.feature_dim = 32;
  spec.num_classes = 5;
  spec.avg_degree = 8.0;
  graph::DatasetOptions options;
  options.seed = 7;
  options.feature_snr = 2.0;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kReal);
  core::MgGcnTrainer trainer(machine, ds, small_config());

  const auto stats = trainer.train(80);
  EXPECT_LT(stats.back().loss, stats.front().loss * 0.5);
  EXPECT_GT(stats.back().train_accuracy, 0.78);
}

TEST(MgGcnTrainer, PhantomModeProducesTimings) {
  graph::DatasetSpec spec = graph::arxiv();
  graph::DatasetOptions options;
  options.scale = 64.0;
  options.with_features = false;
  const graph::Dataset ds = graph::make_dataset(spec, options);

  sim::Machine machine(sim::dgx_v100(), 4, sim::ExecutionMode::kPhantom);
  core::MgGcnTrainer trainer(machine, ds, core::TrainConfig{});
  const auto stats = trainer.train_epoch();
  EXPECT_GT(stats.sim_seconds, 0.0);
  EXPECT_GT(stats.busy_by_kind.at(sim::TaskKind::kSpMM), 0.0);
  EXPECT_GT(stats.busy_by_kind.at(sim::TaskKind::kGeMM), 0.0);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

}  // namespace
}  // namespace mggcn
