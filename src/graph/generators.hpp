// Synthetic graph generators.
//
// The centerpiece is a BTER-style generator (Kolda et al., the generator the
// paper itself uses for its §6.4 scaling study): it takes a target average
// degree, a degree-distribution skew, and a clustering knob, and produces a
// community-structured graph. Vertices are emitted in degree-sorted,
// community-blocked order — the "natural" skewed ordering that makes the
// paper's random-permutation load balancing matter (Figs. 6-7).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/coo.hpp"
#include "util/rng.hpp"

namespace mggcn::graph {

/// G(n, p) with p chosen to hit `avg_degree`. Undirected (symmetric COO).
sparse::Coo erdos_renyi(std::int64_t n, double avg_degree, util::Rng& rng);

/// R-MAT with partition probabilities (a, b, c); n is rounded up to a power
/// of two internally and trimmed back. Undirected, deduplicated.
sparse::Coo rmat(std::int64_t n, std::int64_t num_edges, double a, double b,
                 double c, util::Rng& rng);

struct BterParams {
  std::int64_t n = 0;
  /// Target average degree (nnz per row of the symmetric adjacency).
  double avg_degree = 8.0;
  /// Lognormal sigma of the degree distribution (skew). 0 = near-regular.
  double degree_sigma = 1.0;
  /// Intra-community connection probability (clustering strength).
  double clustering = 0.5;
};

struct BterGraph {
  sparse::Coo edges;  ///< symmetric, deduplicated, no self-loops
  /// Community (affinity block) id per vertex — reused as the planted label
  /// signal for feature synthesis.
  std::vector<std::uint32_t> community;
};

/// BTER-style two-phase generation: affinity blocks of similar-degree
/// vertices wired as dense Erdős–Rényi cliques, plus a Chung–Lu pass for
/// the residual degree.
BterGraph bter_like(const BterParams& params, util::Rng& rng);

/// Average degree (nnz / n) of a symmetric COO.
double average_degree(const sparse::Coo& coo);

}  // namespace mggcn::graph
