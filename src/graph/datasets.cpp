#include "graph/datasets.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace mggcn::graph {

// Table 1 of the paper. m counts directed edges (nnz of the symmetric
// adjacency), so avg_degree = m / n.
DatasetSpec cora() {
  return {.name = "Cora", .n = 3300, .m = 9200, .feature_dim = 3703,
          .num_classes = 6, .avg_degree = 3.0, .degree_sigma = 0.8,
          .clustering = 0.35};
}

DatasetSpec arxiv() {
  return {.name = "Arxiv", .n = 169'000, .m = 1'160'000, .feature_dim = 128,
          .num_classes = 40, .avg_degree = 7.0, .degree_sigma = 1.0,
          .clustering = 0.4};
}

DatasetSpec papers() {
  return {.name = "Papers", .n = 111'000'000, .m = 1'610'000'000,
          .feature_dim = 128, .num_classes = 172, .avg_degree = 15.0,
          .degree_sigma = 1.1, .clustering = 0.4};
}

DatasetSpec products() {
  return {.name = "Products", .n = 2'500'000, .m = 126'000'000,
          .feature_dim = 104, .num_classes = 47, .avg_degree = 52.0,
          .degree_sigma = 1.3, .clustering = 0.5};
}

DatasetSpec proteins() {
  return {.name = "Proteins", .n = 8'740'000, .m = 1'300'000'000,
          .feature_dim = 128, .num_classes = 256, .avg_degree = 150.0,
          .degree_sigma = 1.1, .clustering = 0.5};
}

DatasetSpec reddit() {
  return {.name = "Reddit", .n = 233'000, .m = 115'000'000,
          .feature_dim = 602, .num_classes = 41, .avg_degree = 492.0,
          .degree_sigma = 1.0, .clustering = 0.55};
}

std::vector<DatasetSpec> all_datasets() {
  return {cora(), arxiv(), papers(), products(), proteins(), reddit()};
}

DatasetSpec dataset_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const auto& spec : all_datasets()) {
    std::string spec_lower(spec.name);
    std::transform(spec_lower.begin(), spec_lower.end(), spec_lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (spec_lower == lower) return spec;
  }
  throw InvalidArgumentError("unknown dataset: " + name);
}

namespace {

/// Class-dependent feature synthesis: each class has a random ±0.5 mean
/// pattern; vertices get their class pattern plus unit Gaussian noise scaled
/// by 1/snr. With the homophily the BTER communities provide, a GCN learns
/// these labels quickly — that's what the correctness tests train on.
void synthesize_features(Dataset& ds, const std::vector<std::uint32_t>& community,
                         const DatasetOptions& options, util::Rng& rng) {
  const std::int64_t n = ds.n();
  const std::int64_t d = ds.spec.feature_dim;
  const std::int64_t classes = ds.spec.num_classes;

  ds.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    ds.labels[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(
        community[static_cast<std::size_t>(v)] % classes);
  }

  dense::HostMatrix class_means(classes, d);
  for (std::int64_t c = 0; c < classes; ++c) {
    for (std::int64_t j = 0; j < d; ++j) {
      class_means.at(c, j) = rng.bernoulli(0.5) ? 0.5f : -0.5f;
    }
  }

  const double noise = options.feature_snr > 0.0 ? 1.0 / options.feature_snr
                                                 : 1.0;
  ds.features = dense::HostMatrix(n, d);
  for (std::int64_t v = 0; v < n; ++v) {
    const auto c = ds.labels[static_cast<std::size_t>(v)];
    for (std::int64_t j = 0; j < d; ++j) {
      ds.features.at(v, j) = class_means.at(c, j) +
                             static_cast<float>(rng.gaussian(0.0, noise));
    }
  }

  ds.train_mask.assign(static_cast<std::size_t>(n), 0);
  ds.val_mask.assign(static_cast<std::size_t>(n), 0);
  ds.test_mask.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t v = 0; v < n; ++v) {
    const double u = rng.uniform();
    if (u < options.train_fraction) {
      ds.train_mask[static_cast<std::size_t>(v)] = 1;
    } else if (u < options.train_fraction + options.val_fraction) {
      ds.val_mask[static_cast<std::size_t>(v)] = 1;
    } else {
      ds.test_mask[static_cast<std::size_t>(v)] = 1;
    }
  }
}

}  // namespace

Dataset make_dataset(const DatasetSpec& spec, const DatasetOptions& options) {
  MGGCN_CHECK(options.scale >= 1.0);
  util::Rng rng(options.seed ^ std::hash<std::string>{}(spec.name));

  const auto n_scaled = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(
              static_cast<double>(spec.n) / options.scale));

  BterParams params;
  params.n = n_scaled;
  params.avg_degree = std::min(spec.avg_degree,
                               static_cast<double>(n_scaled - 1) * 0.5);
  params.degree_sigma = spec.degree_sigma;
  params.clustering = spec.clustering;
  BterGraph graph = bter_like(params, rng);

  Dataset ds;
  ds.spec = spec;
  ds.scale = static_cast<double>(spec.n) / static_cast<double>(n_scaled);
  ds.adjacency = sparse::Csr::from_coo(graph.edges);
  if (options.with_features) {
    synthesize_features(ds, graph.community, options, rng);
  }
  return ds;
}

DatasetSpec scaled_arxiv_spec(double degree_scale) {
  DatasetSpec spec = arxiv();
  spec.name = "Arxiv-x" + std::to_string(static_cast<int>(degree_scale));
  spec.avg_degree *= degree_scale;
  spec.m = static_cast<std::int64_t>(static_cast<double>(spec.m) *
                                     degree_scale);
  // The paper's synthetic study uses 512 features and 40 classes.
  spec.feature_dim = 512;
  spec.num_classes = 40;
  return spec;
}

Dataset make_scaled_arxiv(double degree_scale, const DatasetOptions& options) {
  return make_dataset(scaled_arxiv_spec(degree_scale), options);
}

}  // namespace mggcn::graph
