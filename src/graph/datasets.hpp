// Dataset registry: synthetic replicas of the paper's Table 1 benchmarks.
//
// Each spec carries the full-scale parameters from Table 1 (n, m, d(0),
// d(L), average degree) plus the generator knobs that shape the replica
// (degree skew, clustering). A replica can be generated at a reduced
// `scale` — structure size shrinks by that factor while the average degree
// and feature dimensions are preserved, so per-vertex and per-edge costs
// stay faithful; benches extrapolate the full-scale cost linearly and print
// the scale they used.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dense/matrix.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"

namespace mggcn::graph {

struct DatasetSpec {
  std::string name;
  std::int64_t n = 0;          ///< full-scale vertices (Table 1)
  std::int64_t m = 0;          ///< full-scale edges (Table 1)
  std::int64_t feature_dim = 0;   ///< d(0)
  std::int64_t num_classes = 0;   ///< d(L)
  double avg_degree = 0.0;        ///< k
  double degree_sigma = 1.0;      ///< replica degree-distribution skew
  double clustering = 0.5;        ///< replica community density
};

/// Table 1 datasets.
DatasetSpec cora();
DatasetSpec arxiv();
DatasetSpec papers();
DatasetSpec products();
DatasetSpec proteins();
DatasetSpec reddit();

/// All six, in Table 1 order.
std::vector<DatasetSpec> all_datasets();

/// Lookup by (case-insensitive) name; throws InvalidArgumentError.
DatasetSpec dataset_by_name(const std::string& name);

/// A generated replica.
struct Dataset {
  DatasetSpec spec;   ///< full-scale reference parameters
  double scale = 1.0; ///< structure reduction factor actually used

  sparse::Csr adjacency;  ///< symmetric, unit weights, no self-loops
  dense::HostMatrix features;         ///< n_scaled x feature_dim (may be empty)
  std::vector<std::int32_t> labels;   ///< n_scaled (may be empty)
  std::vector<std::uint8_t> train_mask, val_mask, test_mask;

  [[nodiscard]] std::int64_t n() const { return adjacency.rows(); }
  [[nodiscard]] std::int64_t nnz() const { return adjacency.nnz(); }
  [[nodiscard]] bool has_features() const { return features.rows() > 0; }

  /// Linear cost-extrapolation factor back to the paper's full scale.
  [[nodiscard]] double extrapolation() const { return scale; }
};

struct DatasetOptions {
  double scale = 1.0;
  std::uint64_t seed = 42;
  /// Generate features/labels/splits (off for structure-only phantom runs).
  bool with_features = true;
  /// Fraction of label-signal in features; higher = easier training.
  double feature_snr = 1.0;
  double train_fraction = 0.6;
  double val_fraction = 0.2;
};

/// Generates a replica of `spec` at spec.n / options.scale vertices.
Dataset make_dataset(const DatasetSpec& spec, const DatasetOptions& options);

/// Spec for the paper's §6.4 BTER scaling study: Arxiv-shaped graphs with
/// the average degree multiplied by `degree_scale` (1, 2, ..., 128),
/// 512 features, 40 classes.
DatasetSpec scaled_arxiv_spec(double degree_scale);

/// Generates a replica of scaled_arxiv_spec(degree_scale).
Dataset make_scaled_arxiv(double degree_scale, const DatasetOptions& options);

}  // namespace mggcn::graph
