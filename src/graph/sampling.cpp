#include "graph/sampling.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace mggcn::graph {

std::int64_t SampledSubgraph::total_vertices() const {
  // Vertices appearing in several layers are counted once.
  std::unordered_set<std::uint32_t> unique;
  for (const auto& layer : layers) {
    unique.insert(layer.begin(), layer.end());
  }
  return static_cast<std::int64_t>(unique.size());
}

std::int64_t SampledSubgraph::total_edges() const {
  std::int64_t total = 0;
  for (const auto e : edges_per_hop) total += e;
  return total;
}

NeighborSampler::NeighborSampler(const sparse::Csr& adjacency,
                                 std::vector<std::int64_t> fanout)
    : adjacency_(adjacency), fanout_(std::move(fanout)) {
  MGGCN_CHECK_MSG(!fanout_.empty(), "sampler needs at least one hop");
  MGGCN_CHECK_MSG(adjacency_.rows() == adjacency_.cols(),
                  "sampler needs a square adjacency");
}

std::vector<std::uint32_t> NeighborSampler::random_batch(
    std::int64_t batch_size, util::Rng& rng) const {
  const auto n = static_cast<std::uint64_t>(adjacency_.rows());
  MGGCN_CHECK(batch_size >= 1 &&
              batch_size <= static_cast<std::int64_t>(n));
  std::unordered_set<std::uint32_t> picked;
  while (static_cast<std::int64_t>(picked.size()) < batch_size) {
    picked.insert(static_cast<std::uint32_t>(rng.uniform_index(n)));
  }
  // Hash-set iteration order is implementation-defined; sort so a seeded
  // batch is bit-identical across standard libraries and runs.
  std::vector<std::uint32_t> batch(picked.begin(), picked.end());
  std::sort(batch.begin(), batch.end());
  return batch;
}

SampledSubgraph NeighborSampler::sample(
    const std::vector<std::uint32_t>& seeds, util::Rng& rng) const {
  SampledSubgraph out;
  std::vector<std::uint32_t> frontier = seeds;
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  out.layers.push_back(frontier);

  const auto row_ptr = adjacency_.row_ptr();
  const auto col_idx = adjacency_.col_idx();

  for (const std::int64_t cap : fanout_) {
    std::unordered_set<std::uint32_t> next;
    // Per frontier vertex: the sampled neighbor ids (global).
    std::vector<std::vector<std::uint32_t>> sampled(frontier.size());
    std::int64_t edges = 0;
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      const std::uint32_t v = frontier[f];
      const auto begin = row_ptr[v];
      const auto end = row_ptr[v + 1];
      const std::int64_t degree = end - begin;
      if (cap <= 0 || degree <= cap) {
        for (auto e = begin; e < end; ++e) {
          sampled[f].push_back(col_idx[static_cast<std::size_t>(e)]);
        }
      } else {
        // Sample `cap` neighbors without replacement (partial
        // Fisher-Yates over the edge range indices).
        std::vector<std::int64_t> offsets(
            static_cast<std::size_t>(degree));
        for (std::int64_t i = 0; i < degree; ++i) {
          offsets[static_cast<std::size_t>(i)] = begin + i;
        }
        for (std::int64_t i = 0; i < cap; ++i) {
          const auto pick =
              i + static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(degree - i)));
          std::swap(offsets[static_cast<std::size_t>(i)],
                    offsets[static_cast<std::size_t>(pick)]);
          sampled[f].push_back(col_idx[static_cast<std::size_t>(
              offsets[static_cast<std::size_t>(i)])]);
        }
      }
      // A CSR with parallel edges can yield the same target twice — once
      // per edge on the uncapped path, and once per *edge index* from the
      // Fisher-Yates pick. Deduplicate so a sampled neighbor contributes
      // one aggregation edge (and the fanout is not wasted re-sampling
      // it), then count the distinct edges.
      std::sort(sampled[f].begin(), sampled[f].end());
      sampled[f].erase(std::unique(sampled[f].begin(), sampled[f].end()),
                       sampled[f].end());
      next.insert(sampled[f].begin(), sampled[f].end());
      edges += static_cast<std::int64_t>(sampled[f].size());
    }
    out.edges_per_hop.push_back(edges);
    std::vector<std::uint32_t> next_layer(next.begin(), next.end());
    std::sort(next_layer.begin(), next_layer.end());

    // Materialize the aggregation block in local indices with
    // mean-aggregation weights.
    std::unordered_map<std::uint32_t, std::uint32_t> local;
    local.reserve(next_layer.size());
    for (std::uint32_t i = 0; i < next_layer.size(); ++i) {
      local.emplace(next_layer[i], i);
    }
    sparse::Coo block(static_cast<std::int64_t>(frontier.size()),
                      static_cast<std::int64_t>(next_layer.size()));
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      if (sampled[f].empty()) continue;
      const float w = 1.0f / static_cast<float>(sampled[f].size());
      for (const std::uint32_t u : sampled[f]) {
        block.add(static_cast<std::uint32_t>(f), local.at(u), w);
      }
    }
    out.blocks.push_back(sparse::Csr::from_coo(block));

    frontier = std::move(next_layer);
    out.layers.push_back(frontier);
  }
  return out;
}

ExplosionStats measure_neighborhood_explosion(
    const sparse::Csr& adjacency, const std::vector<std::int64_t>& fanout,
    std::int64_t batch_size, int num_batches, util::Rng& rng) {
  MGGCN_CHECK(num_batches >= 1);
  const NeighborSampler sampler(adjacency, fanout);

  double vertices = 0.0;
  double edges = 0.0;
  for (int b = 0; b < num_batches; ++b) {
    const SampledSubgraph sub =
        sampler.sample(sampler.random_batch(batch_size, rng), rng);
    vertices += static_cast<double>(sub.total_vertices());
    edges += static_cast<double>(sub.total_edges());
  }
  ExplosionStats stats;
  stats.mean_vertices = vertices / num_batches;
  stats.mean_edges = edges / num_batches;

  // Per epoch: n/batch batches, each touching mean_edges sampled edges;
  // full batch touches every edge once per layer (hop).
  const double batches_per_epoch =
      static_cast<double>(adjacency.rows()) /
      static_cast<double>(batch_size);
  const double full_batch_edges =
      static_cast<double>(adjacency.nnz()) *
      static_cast<double>(fanout.size());
  stats.epoch_work_multiplier =
      batches_per_epoch * stats.mean_edges / full_batch_edges;
  return stats;
}

}  // namespace mggcn::graph
