// Neighborhood sampling — the mini-batch alternative the paper argues
// against (§1: "starting from the mini-batch nodes, it is possible to reach
// almost every single node in the graph in just a few hops, also known as
// the neighborhood explosion phenomenon").
//
// NeighborSampler implements DistDGL-style fanout-capped k-hop expansion;
// the explosion statistics it produces drive bench_minibatch_explosion,
// which quantifies the per-epoch work multiplier of mini-batch training
// versus full-batch — the paper's motivating comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mggcn::graph {

/// One sampled computation graph for a batch of seed vertices.
struct SampledSubgraph {
  /// Frontier vertex ids per hop; layer 0 is the (deduplicated) seed set,
  /// layer k the vertices needed to compute layer k-1's aggregation.
  std::vector<std::vector<std::uint32_t>> layers;
  /// Sampled edges per hop (edges from layer k+1 into layer k).
  std::vector<std::int64_t> edges_per_hop;
  /// The sampled aggregation operators ("blocks"): blocks[k] is a
  /// layers[k].size() x layers[k+1].size() CSR in LOCAL indices whose row r
  /// holds the sampled in-neighbors of layers[k][r], with mean-aggregation
  /// weights (1/sampled-degree) — what a GraphSAGE/DistDGL step multiplies.
  std::vector<sparse::Csr> blocks;

  [[nodiscard]] int hops() const {
    return static_cast<int>(layers.size()) - 1;
  }
  [[nodiscard]] std::int64_t total_vertices() const;
  [[nodiscard]] std::int64_t total_edges() const;
};

class NeighborSampler {
 public:
  /// `fanout[k]` caps the neighbors sampled per vertex at hop k; a value
  /// <= 0 means "all neighbors" (no sampling at that hop).
  NeighborSampler(const sparse::Csr& adjacency,
                  std::vector<std::int64_t> fanout);

  /// Expands `seeds` over hops() hops.
  [[nodiscard]] SampledSubgraph sample(
      const std::vector<std::uint32_t>& seeds, util::Rng& rng) const;

  /// Uniformly random batch of `batch_size` distinct seeds.
  [[nodiscard]] std::vector<std::uint32_t> random_batch(
      std::int64_t batch_size, util::Rng& rng) const;

  [[nodiscard]] int hops() const { return static_cast<int>(fanout_.size()); }

 private:
  const sparse::Csr& adjacency_;
  std::vector<std::int64_t> fanout_;
};

/// Aggregate explosion statistics over `num_batches` random batches:
/// mean touched vertices/edges of a batch's computation graph, and the
/// per-epoch work multiplier relative to full-batch training (which
/// touches every edge exactly once per layer).
struct ExplosionStats {
  double mean_vertices = 0.0;
  double mean_edges = 0.0;
  /// (edges per mini-batch epoch) / (edges per full-batch epoch).
  double epoch_work_multiplier = 0.0;
};

ExplosionStats measure_neighborhood_explosion(
    const sparse::Csr& adjacency, const std::vector<std::int64_t>& fanout,
    std::int64_t batch_size, int num_batches, util::Rng& rng);

}  // namespace mggcn::graph
