#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace mggcn::graph {

sparse::Coo erdos_renyi(std::int64_t n, double avg_degree, util::Rng& rng) {
  MGGCN_CHECK(n > 1);
  sparse::Coo coo(n, n);
  // Draw ~n*avg/2 undirected edges by geometric skipping over the upper
  // triangle (O(m) independent of n^2).
  const double p =
      std::clamp(avg_degree / static_cast<double>(n - 1), 0.0, 1.0);
  if (p <= 0.0) return coo;
  const double log1mp = std::log1p(-p);
  const std::int64_t total_pairs = n * (n - 1) / 2;
  std::int64_t idx = -1;
  while (true) {
    const double u = std::max(rng.uniform(), 1e-300);
    idx += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / log1mp));
    if (idx >= total_pairs) break;
    // Invert the pair index to (r, c), r < c.
    const auto r = static_cast<std::int64_t>(
        (2.0 * n - 1.0 -
         std::sqrt((2.0 * n - 1.0) * (2.0 * n - 1.0) - 8.0 * idx)) /
        2.0);
    const std::int64_t base = r * (2 * n - r - 1) / 2;
    const std::int64_t c = r + 1 + (idx - base);
    if (r >= 0 && c > r && c < n) {
      coo.add(static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(c));
    }
  }
  coo.symmetrize();
  coo.sort_and_merge();
  for (auto& v : coo.values) v = 1.0f;
  return coo;
}

sparse::Coo rmat(std::int64_t n, std::int64_t num_edges, double a, double b,
                 double c, util::Rng& rng) {
  MGGCN_CHECK(n > 1 && num_edges > 0);
  MGGCN_CHECK(a + b + c <= 1.0);
  int levels = 0;
  std::int64_t dim = 1;
  while (dim < n) {
    dim <<= 1;
    ++levels;
  }

  sparse::Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(2 * num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e) {
    std::int64_t r = 0, col = 0;
    for (int level = 0; level < levels; ++level) {
      const double u = rng.uniform();
      if (u < a) {
        // top-left
      } else if (u < a + b) {
        col |= std::int64_t{1} << level;
      } else if (u < a + b + c) {
        r |= std::int64_t{1} << level;
      } else {
        r |= std::int64_t{1} << level;
        col |= std::int64_t{1} << level;
      }
    }
    if (r < n && col < n && r != col) {
      coo.add(static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(col));
    }
  }
  coo.symmetrize();
  coo.sort_and_merge();
  for (auto& v : coo.values) v = 1.0f;
  return coo;
}

BterGraph bter_like(const BterParams& params, util::Rng& rng) {
  MGGCN_CHECK(params.n > 1);
  const auto n = static_cast<std::size_t>(params.n);

  // Phase 0: lognormal degree sequence with the requested mean, emitted in
  // descending order (the skewed "natural" vertex ordering).
  const double sigma = std::max(params.degree_sigma, 0.0);
  const double mu = std::log(std::max(params.avg_degree, 1.0)) -
                    0.5 * sigma * sigma;
  std::vector<double> degree(n);
  for (auto& d : degree) {
    d = std::min(std::exp(rng.gaussian(mu, sigma)),
                 static_cast<double>(params.n - 1));
    d = std::max(d, 1.0);
  }
  std::sort(degree.begin(), degree.end(), std::greater<>());

  sparse::Coo coo(params.n, params.n);
  coo.reserve(static_cast<std::size_t>(params.avg_degree *
                                       static_cast<double>(params.n) * 1.2));
  std::vector<std::uint32_t> community(n, 0);
  std::vector<double> residual(n, 0.0);

  // Phase 1: affinity blocks. Consecutive (similar-degree) vertices form a
  // block of size min_degree_in_block + 1; intra-block pairs connect with
  // probability `clustering`.
  const double rho = std::clamp(params.clustering, 0.0, 1.0);
  std::uint32_t block_id = 0;
  std::size_t begin = 0;
  while (begin < n) {
    const std::size_t want =
        static_cast<std::size_t>(std::lround(degree[begin])) + 1;
    // Cap the block size both absolutely and relative to n, so reduced-
    // scale replicas keep enough blocks for realistic ordering granularity.
    const std::size_t cap = std::clamp<std::size_t>(n / 64, 8, 512);
    const std::size_t size = std::min<std::size_t>(
        std::max<std::size_t>(2, std::min(want, n - begin)), cap);
    const std::size_t end = std::min(begin + size, n);

    for (std::size_t u = begin; u < end; ++u) {
      community[u] = block_id;
      double internal = 0.0;
      for (std::size_t v = u + 1; v < end; ++v) {
        if (rng.bernoulli(rho)) {
          coo.add(static_cast<std::uint32_t>(u), static_cast<std::uint32_t>(v));
          internal += 1.0;
        }
      }
      // Count edges added by earlier vertices of the block toward u too:
      // expected (u - begin) * rho.
      internal += static_cast<double>(u - begin) * rho;
      residual[u] = std::max(0.0, degree[u] - internal);
    }
    begin = end;
    ++block_id;
  }

  // Phase 2: Chung–Lu on the residual degree. Endpoints are drawn with
  // probability proportional to residual weight via inverse-CDF sampling.
  std::vector<double> cdf(n);
  std::partial_sum(residual.begin(), residual.end(), cdf.begin());
  const double total = cdf.empty() ? 0.0 : cdf.back();
  if (total > 1.0) {
    const auto num_cl_edges = static_cast<std::int64_t>(total / 2.0);
    auto draw = [&]() -> std::uint32_t {
      const double x = rng.uniform(0.0, total);
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
      return static_cast<std::uint32_t>(it - cdf.begin());
    };
    for (std::int64_t e = 0; e < num_cl_edges; ++e) {
      const std::uint32_t u = draw();
      const std::uint32_t v = draw();
      if (u != v) coo.add(u, v);
    }
  }

  // Shuffle the community blocks (keeping each block contiguous): the
  // "natural" ordering of real datasets groups related vertices but is not
  // globally degree-sorted. This yields the moderate (~1.5-2x at 8 parts)
  // tile imbalance the paper's Figs. 6-7 measure, rather than the
  // worst-case imbalance of a fully sorted order.
  {
    std::vector<std::uint32_t> block_order(block_id);
    for (std::uint32_t b = 0; b < block_id; ++b) block_order[b] = b;
    rng.shuffle(block_order);
    std::vector<std::uint32_t> block_base(block_id + 1, 0);
    for (std::size_t v = 0; v < n; ++v) ++block_base[community[v] + 1];
    std::vector<std::uint32_t> new_base(block_id + 1, 0);
    std::uint32_t cursor = 0;
    for (std::uint32_t b : block_order) {
      new_base[b] = cursor;
      cursor += block_base[b + 1];
    }
    std::vector<std::uint32_t> relabel(n);
    std::vector<std::uint32_t> offset(block_id, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t b = community[v];
      relabel[v] = new_base[b] + offset[b]++;
    }
    for (auto& r : coo.row_idx) r = relabel[r];
    for (auto& c : coo.col_idx) c = relabel[c];
    std::vector<std::uint32_t> new_community(n);
    for (std::size_t v = 0; v < n; ++v) new_community[relabel[v]] = community[v];
    community = std::move(new_community);
  }

  // Guarantee minimum degree 1: a vertex left isolated by the random
  // phases gets one edge to a uniformly random other vertex (keeps the
  // GCN normalization well defined on every column).
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t e = 0; e < coo.row_idx.size(); ++e) {
      seen[coo.row_idx[e]] = 1;
      seen[coo.col_idx[e]] = 1;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (seen[v]) continue;
      std::uint32_t u = v == 0 ? 1
                               : static_cast<std::uint32_t>(
                                     rng.uniform_index(v));
      coo.add(static_cast<std::uint32_t>(v), u);
    }
  }

  coo.symmetrize();
  coo.sort_and_merge();
  for (auto& v : coo.values) v = 1.0f;
  return BterGraph{std::move(coo), std::move(community)};
}

double average_degree(const sparse::Coo& coo) {
  return coo.rows > 0
             ? static_cast<double>(coo.nnz()) / static_cast<double>(coo.rows)
             : 0.0;
}

}  // namespace mggcn::graph
