// Training configuration and the paper's four model presets (§6, "Model").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm_mode.hpp"
#include "core/part_mode.hpp"
#include "core/plan_mode.hpp"
#include "mem/pool_mode.hpp"

namespace mggcn::mem {
class PoolSet;
}

namespace mggcn::core {

struct TrainConfig {
  /// Hidden layer widths; the full layer-dim chain is
  /// [feature_dim, hidden..., num_classes].
  std::vector<std::int64_t> hidden_dims = {512};

  /// §5.2: random vertex permutation for tile load balance. Only consulted
  /// by the `random` partitioner; the structured modes define their own
  /// ordering.
  bool permute = true;
  /// How the 1D vertex ordering + cut points are chosen: the paper's
  /// random permutation, nnz-balanced prefix cuts, the locality-aware
  /// min-cut partitioner, its hierarchical multi-node variant, or
  /// cut-priced auto-selection (core/partitioner.hpp). Defaults to the
  /// process-wide MGGCN_PART setting (read at config construction). All
  /// modes train to the same optimum; losses differ only by the
  /// floating-point reduction-order effect of reordering (the documented
  /// §5.2 permutation effect).
  PartMode part_mode = core::part_mode();
  /// Balance slack for the locality/hier partitioners: a part's nnz may
  /// exceed the mean by at most this factor.
  double partition_slack = 1.15;
  /// §4.3: overlap broadcast i+1 with SpMM i using the BC2 double buffer.
  bool overlap = true;
  /// Exchange path of the staged SpMM: dense broadcast, compacted
  /// ghost-row sendv, or per-stage cost-model auto-selection. Defaults to
  /// the process-wide MGGCN_COMM setting (read at config construction, so
  /// the environment axis reaches every trainer built from a default
  /// config). All three train bit-identically; only volume/time differ.
  comm::CommMode comm_mode = comm::comm_mode();
  /// Distribution strategy of the distributed products: forced 1d / 15d /
  /// replicated, or per-layer cost-model auto-selection (core::Planner).
  /// Defaults to the process-wide MGGCN_PLAN setting (read at config
  /// construction). All four train bit-identically; only time, volume and
  /// memory differ.
  PlanMode plan_mode = core::plan_mode();
  /// §4.4: run GeMM before SpMM when d(l) >= d(l+1), else SpMM first.
  bool reorder_gemm_spmm = true;
  /// When reorder_gemm_spmm is off, run every layer aggregate-first
  /// (SpMM on d(l)) instead of weight-first. CAGNET's 1D SUMMA broadcasts
  /// H — always aggregate-first — which is why its per-layer communication
  /// is n*d(l) and the §4.4 order switch beats it on wide-hidden models.
  bool spmm_first_when_no_reorder = false;
  /// §4.4: skip the first layer's backward SpMM when input-feature
  /// gradients are not needed (the paper's averaging argument).
  bool skip_first_backward_spmm = true;
  /// Autograd-framework behaviour (DGL/CAGNET on PyTorch): when the first
  /// layer is aggregate-first, the forward saves A^T X and the weight
  /// gradient reuses it, so no backward SpMM is needed for that layer even
  /// without the §4.4 trick. Cost-equivalent modeling knob (the extra saved
  /// tensor is covered by reuse_buffers = false).
  bool autograd_aggregation_reuse = false;

  // Adam (Kingma & Ba), the optimizer the paper implements.
  double learning_rate = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;

  /// Whether device buffers come from the stream-ordered workspace pool
  /// (mem::WorkspacePool) or are statically owned. Defaults to the
  /// process-wide MGGCN_POOL setting (read at config construction); kOff
  /// preserves the pre-pool allocation behaviour bit for bit. See
  /// mem/pool_mode.hpp for the off/on/auto semantics.
  mem::PoolMode pool_mode = mem::pool_mode();
  /// Shared per-machine workspace pools (mem::PoolSet::create) so several
  /// tenants — trainer, sampled pipeline, inference server — recycle one
  /// budget. Null: kOn self-creates a private set, kOff/kAuto stay static.
  std::shared_ptr<mem::PoolSet> pool;

  std::uint64_t seed = 1;

  /// Whether gradients w.r.t. the input features are required (disables the
  /// first-layer backward skip).
  bool input_grad_needed = false;

  // --- Baseline-emulation knobs (defaults = MG-GCN behaviour). -----------
  // The baselines (src/baselines/) run the same engine with these set so
  // that measured ratios isolate the design deltas the paper evaluates.

  /// §4.2 buffer reuse. When false, two extra n x d buffers per layer are
  /// allocated (saved pre-activation + gradient, the eager-framework
  /// pattern), tripling the per-layer slope of Fig. 12.
  bool reuse_buffers = true;
  /// Multiplies every kernel's launch count (framework dispatch overhead:
  /// eager per-op execution in DGL/PyTorch vs fused C++ kernels).
  double kernel_overhead_multiplier = 1.0;
  /// Multiplies SpMM memory traffic (generic/COO kernels and format
  /// conversions vs tuned CSR SpMM).
  double spmm_traffic_factor = 1.0;
  /// Collective efficiency relative to MG-GCN's NCCL 2.11 (CAGNET pins
  /// NCCL 2.4); durations scale by 1 / comm_efficiency.
  double comm_efficiency = 1.0;
};

/// Model 1 (§6): 2 layers, hidden 512 — the CAGNET/DGL comparison model.
inline TrainConfig model_hidden512() {
  TrainConfig c;
  c.hidden_dims = {512};
  return c;
}

/// Model 2 (§6): 2 layers, hidden 16 — the DistGNN-on-Reddit comparison.
inline TrainConfig model_hidden16() {
  TrainConfig c;
  c.hidden_dims = {16};
  return c;
}

/// Model 3 (§6): 3 layers, hidden 256 — DistGNN on Products/Proteins/Papers.
inline TrainConfig model_hidden256x2() {
  TrainConfig c;
  c.hidden_dims = {256, 256};
  return c;
}

/// Model 4 (§6): 3 layers, hidden 208 — the largest hidden size that fits
/// Papers on DGX-A100.
inline TrainConfig model_hidden208x2() {
  TrainConfig c;
  c.hidden_dims = {208, 208};
  return c;
}

}  // namespace mggcn::core
