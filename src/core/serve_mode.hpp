// Serving-tier registry: the MGGCN_SERVE_* knobs of core::InferenceServer.
//
// The inference tier answers node-classification queries against a trained
// model; its embedding tier can pin remote store rows in device memory the
// same way the sampled pipeline's feature cache does. The registry mirrors
// core/cache_mode.hpp:
//
//   - `off`:   every remote store row travels over the interconnect for
//              every batch that needs it (the no-cache baseline).
//   - `embed`: a frequency-scored embedding cache (core::FeatureCache kFreq
//              semantics) pins hot remote rows; simulated graph-update
//              events invalidate the touched rows.
//   - `auto`:  price a cached-row read against its sendv extraction with
//              the simulator's own cost model and keep the cache only when
//              it wins — never worse than `off` under the model
//              (core::FeatureCache::plan_auto).
//
// Every mode predicts bit-identically: the cache changes which task moves a
// row, never the row's contents.
//
// set_serve_cache_mode() installs a mode programmatically; the
// MGGCN_SERVE_CACHE environment variable ("off" | "embed" | "auto") is read
// once at first use and an unknown value fails loudly (util::env_enum). The
// batching knobs are read the same way: MGGCN_SERVE_BATCH (maximum
// micro-batch size, an integer in [1, 4096]) and MGGCN_SERVE_SLACK (the
// deadline policy's wait budget in microseconds, a double in [0, 1e6]).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mggcn::core {

enum class ServeCacheMode {
  kOff = 0,
  kEmbed = 1,
  kAuto = 2,
};

inline constexpr int kNumServeCacheModes = 3;

/// Stable lower-case name ("off" | "embed" | "auto") for logs, CLI, and
/// JSON.
[[nodiscard]] const char* serve_cache_mode_name(ServeCacheMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<ServeCacheMode> parse_serve_cache_mode(
    std::string_view name);

/// The active mode. Defaults to kAuto (cost-priced, never worse than off),
/// overridable once via the MGGCN_SERVE_CACHE environment variable; throws
/// InvalidArgumentError on an unknown MGGCN_SERVE_CACHE value.
[[nodiscard]] ServeCacheMode serve_cache_mode();

/// Installs `mode` as the active mode (e.g. from a --serve-cache CLI flag).
void set_serve_cache_mode(ServeCacheMode mode);

/// Maximum micro-batch size of the batcher. Defaults to 16, overridable
/// once via MGGCN_SERVE_BATCH (an integer in [1, 4096]); an unparsable or
/// out-of-range value fails loudly.
[[nodiscard]] std::int64_t serve_batch();
void set_serve_batch(std::int64_t batch);

/// Deadline-policy wait budget in seconds. Defaults to 200 microseconds,
/// overridable once via MGGCN_SERVE_SLACK (microseconds, a double in
/// [0, 1e6]); an unparsable value fails loudly.
[[nodiscard]] double serve_slack_seconds();
void set_serve_slack_seconds(double seconds);

/// RAII mode override for tests and benches that diff the cache policies.
class ScopedServeCacheMode {
 public:
  explicit ScopedServeCacheMode(ServeCacheMode mode)
      : previous_(serve_cache_mode()) {
    set_serve_cache_mode(mode);
  }
  ~ScopedServeCacheMode() { set_serve_cache_mode(previous_); }
  ScopedServeCacheMode(const ScopedServeCacheMode&) = delete;
  ScopedServeCacheMode& operator=(const ScopedServeCacheMode&) = delete;

 private:
  ServeCacheMode previous_;
};

}  // namespace mggcn::core
