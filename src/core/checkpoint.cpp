#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace mggcn::core {

namespace {

constexpr char kMagic[8] = {'M', 'G', 'C', 'K', 'P', 'T', '1', '\0'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  MGGCN_CHECK_MSG(static_cast<bool>(is), "truncated checkpoint");
  return value;
}

void write_matrix(std::ofstream& os, const dense::HostMatrix& m) {
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

dense::HostMatrix read_matrix(std::ifstream& is, std::int64_t rows,
                              std::int64_t cols) {
  dense::HostMatrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  MGGCN_CHECK_MSG(static_cast<bool>(is), "truncated checkpoint");
  return m;
}

}  // namespace

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  MGGCN_CHECK(checkpoint.adam_m.size() == checkpoint.num_layers() &&
              checkpoint.adam_v.size() == checkpoint.num_layers());
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MGGCN_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);

  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::int32_t>(checkpoint.adam_step));
  write_pod(os, static_cast<std::uint32_t>(checkpoint.num_layers()));
  for (std::size_t l = 0; l < checkpoint.num_layers(); ++l) {
    const auto& w = checkpoint.weights[l];
    MGGCN_CHECK(checkpoint.adam_m[l].rows() == w.rows() &&
                checkpoint.adam_v[l].cols() == w.cols());
    write_pod(os, w.rows());
    write_pod(os, w.cols());
    write_matrix(os, w);
    write_matrix(os, checkpoint.adam_m[l]);
    write_matrix(os, checkpoint.adam_v[l]);
  }
  MGGCN_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MGGCN_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);

  char magic[8];
  is.read(magic, sizeof(magic));
  MGGCN_CHECK_MSG(is && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  "bad checkpoint magic in " + path);
  const auto version = read_pod<std::uint32_t>(is);
  MGGCN_CHECK_MSG(version == kVersion, "unsupported checkpoint version");

  Checkpoint checkpoint;
  checkpoint.adam_step = read_pod<std::int32_t>(is);
  const auto layers = read_pod<std::uint32_t>(is);
  for (std::uint32_t l = 0; l < layers; ++l) {
    const auto rows = read_pod<std::int64_t>(is);
    const auto cols = read_pod<std::int64_t>(is);
    MGGCN_CHECK_MSG(rows > 0 && cols > 0, "corrupt checkpoint shape");
    checkpoint.weights.push_back(read_matrix(is, rows, cols));
    checkpoint.adam_m.push_back(read_matrix(is, rows, cols));
    checkpoint.adam_v.push_back(read_matrix(is, rows, cols));
  }
  return checkpoint;
}

}  // namespace mggcn::core
