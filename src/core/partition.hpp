// 1D partition vectors (eqs. (13)-(15) of the paper) and the symmetric
// row/column tiling of the adjacency matrix used by MG-GCN's distributed
// SpMM (§4.1, Fig. 2).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/spmm_plan.hpp"

namespace mggcn::core {

/// A partition vector p with P parts: monotone offsets
/// 0 = p(0) <= ... <= p(P) = n.
class PartitionVector {
 public:
  PartitionVector() = default;
  explicit PartitionVector(std::vector<std::int64_t> offsets);

  /// Uniform partition of [0, n) into `parts` parts (sizes differ by at
  /// most one) — MG-GCN partitions uniformly and relies on the random
  /// permutation for balance (§5.2).
  static PartitionVector uniform(std::int64_t n, int parts);

  /// Alternative to §5.2's permutation: keep the vertex order but choose
  /// the cut points so each part holds ~nnz/P nonzeros (greedy prefix
  /// scan over row degrees). Balances the *row* nnz exactly, but — unlike
  /// the permutation — cannot fix the per-tile (column) imbalance of a
  /// community-ordered matrix, and makes the broadcast blocks uneven.
  /// bench_ablation_optimizations compares the two.
  static PartitionVector balanced_nnz(const sparse::Csr& matrix, int parts);

  [[nodiscard]] int parts() const {
    return static_cast<int>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::int64_t total() const { return offsets_.back(); }
  [[nodiscard]] std::int64_t begin(int part) const {
    return offsets_[static_cast<std::size_t>(part)];
  }
  [[nodiscard]] std::int64_t end(int part) const {
    return offsets_[static_cast<std::size_t>(part) + 1];
  }
  [[nodiscard]] std::int64_t size(int part) const {
    return end(part) - begin(part);
  }
  [[nodiscard]] std::int64_t max_part_size() const;
  [[nodiscard]] std::span<const std::int64_t> offsets() const {
    return offsets_;
  }

  /// The part containing global index v.
  [[nodiscard]] int part_of(std::int64_t v) const;

 private:
  std::vector<std::int64_t> offsets_ = {0};
};

/// The (i, j) tile grid of a square matrix under symmetric partitioning
/// p = q: tiles[i][j] = A^{ij} with local indices.
struct TileGrid {
  PartitionVector partition;
  std::vector<std::vector<sparse::Csr>> tiles;  // [row_part][col_part]

  [[nodiscard]] int parts() const { return partition.parts(); }
  [[nodiscard]] const sparse::Csr& tile(int i, int j) const {
    return tiles[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }

  /// The tiles are static for an entire training run, so the grid owns one
  /// lazily-built SpmmPlan per tile: plan(i, j) inspects tile (i, j) on
  /// first call and returns the cached plan thereafter. The cache itself
  /// lives behind a shared_ptr created at construction, so *every* copy of
  /// a grid — whenever it was made — sees plans built through any other
  /// copy, and plan_ready()/the one-time kInspect charge stay consistent
  /// across copies. Lazy building is not thread-safe — DistSpmm resolves
  /// plans on the enqueue thread, never inside stream worker bodies.
  [[nodiscard]] const sparse::SpmmPlan& plan(int i, int j) const;
  /// Whether plan(i, j) has already been built (i.e. whether the next
  /// plan(i, j) call is free) — lets callers charge the one-time inspector
  /// cost exactly once per tile.
  [[nodiscard]] bool plan_ready(int i, int j) const;

  /// Nonzeros of tile row i (the work assigned to GPU i).
  [[nodiscard]] std::int64_t row_nnz(int i) const;
  /// max_i row_nnz / mean row_nnz: the load-imbalance ratio Fig. 6 is about.
  [[nodiscard]] double imbalance() const;

 private:
  struct PlanCache {
    /// [row_part][col_part], sized on first use; null until built.
    std::vector<std::vector<std::shared_ptr<const sparse::SpmmPlan>>> slots;
  };
  /// Shared (not deep-copied) between copies of the grid — see plan().
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
};

/// Cuts `matrix` into parts x parts tiles with the symmetric partition.
TileGrid make_tile_grid(const sparse::Csr& matrix,
                        const PartitionVector& partition);

}  // namespace mggcn::core
