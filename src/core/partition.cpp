#include "core/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mggcn::core {

PartitionVector::PartitionVector(std::vector<std::int64_t> offsets)
    : offsets_(std::move(offsets)) {
  MGGCN_CHECK_MSG(offsets_.size() >= 2, "partition vector needs >= 1 part");
  MGGCN_CHECK_MSG(offsets_.front() == 0, "partition must start at 0");
  MGGCN_CHECK_MSG(std::is_sorted(offsets_.begin(), offsets_.end()),
                  "partition offsets must be monotone");
}

PartitionVector PartitionVector::uniform(std::int64_t n, int parts) {
  MGGCN_CHECK(n >= 0 && parts >= 1);
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(parts) + 1);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  offsets[0] = 0;
  for (int i = 0; i < parts; ++i) {
    offsets[static_cast<std::size_t>(i) + 1] =
        offsets[static_cast<std::size_t>(i)] + base + (i < extra ? 1 : 0);
  }
  return PartitionVector(std::move(offsets));
}

PartitionVector PartitionVector::balanced_nnz(const sparse::Csr& matrix,
                                              int parts) {
  MGGCN_CHECK(parts >= 1);
  const std::int64_t n = matrix.rows();
  const auto row_ptr = matrix.row_ptr();
  const double total = static_cast<double>(matrix.nnz());

  std::vector<std::int64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(parts) + 1);
  offsets.push_back(0);
  std::int64_t row = 0;
  for (int part = 1; part < parts; ++part) {
    const double target = total * part / parts;
    while (row < n &&
           static_cast<double>(row_ptr[static_cast<std::size_t>(row) + 1]) <
               target) {
      ++row;
    }
    // Keep at least one row available for each remaining part.
    row = std::min(row, n - (parts - part));
    row = std::max(row, offsets.back());
    offsets.push_back(row);
  }
  offsets.push_back(n);
  return PartitionVector(std::move(offsets));
}

std::int64_t PartitionVector::max_part_size() const {
  std::int64_t m = 0;
  for (int i = 0; i < parts(); ++i) m = std::max(m, size(i));
  return m;
}

int PartitionVector::part_of(std::int64_t v) const {
  MGGCN_CHECK(v >= 0 && v < total());
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), v);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

const sparse::SpmmPlan& TileGrid::plan(int i, int j) const {
  auto& slots = plans_->slots;
  if (slots.empty()) {
    slots.resize(tiles.size());
    for (std::size_t r = 0; r < tiles.size(); ++r) {
      slots[r].resize(tiles[r].size());
    }
  }
  auto& slot = slots[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  if (slot == nullptr || !slot->matches(tile(i, j))) {
    slot = std::make_shared<const sparse::SpmmPlan>(
        sparse::SpmmPlan::inspect(tile(i, j)));
  }
  return *slot;
}

bool TileGrid::plan_ready(int i, int j) const {
  const auto& slots = plans_->slots;
  if (slots.empty()) return false;
  const auto& slot =
      slots[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  return slot != nullptr && slot->matches(tile(i, j));
}

std::int64_t TileGrid::row_nnz(int i) const {
  std::int64_t total = 0;
  for (const auto& t : tiles[static_cast<std::size_t>(i)]) total += t.nnz();
  return total;
}

double TileGrid::imbalance() const {
  std::int64_t total = 0;
  std::int64_t worst = 0;
  for (int i = 0; i < parts(); ++i) {
    const std::int64_t r = row_nnz(i);
    total += r;
    worst = std::max(worst, r);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / parts();
  return static_cast<double>(worst) / mean;
}

TileGrid make_tile_grid(const sparse::Csr& matrix,
                        const PartitionVector& partition) {
  MGGCN_CHECK_MSG(matrix.rows() == matrix.cols(),
                  "symmetric tiling needs a square matrix");
  MGGCN_CHECK_MSG(matrix.rows() == partition.total(),
                  "partition must cover the matrix");

  TileGrid grid;
  grid.partition = partition;
  const int parts = partition.parts();
  grid.tiles.resize(static_cast<std::size_t>(parts));
  for (int i = 0; i < parts; ++i) {
    auto& row = grid.tiles[static_cast<std::size_t>(i)];
    row.reserve(static_cast<std::size_t>(parts));
    // Slice the row block once, then cut columns out of it.
    const sparse::Csr row_block = matrix.tile(
        partition.begin(i), partition.end(i), 0, matrix.cols());
    for (int j = 0; j < parts; ++j) {
      row.push_back(row_block.tile(0, row_block.rows(), partition.begin(j),
                                   partition.end(j)));
    }
  }
  return grid;
}

}  // namespace mggcn::core
