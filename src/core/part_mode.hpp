// Partitioner registry: how the 1D vertex ordering and cut points are
// chosen.
//
// The paper's §5.2 answer is a random permutation with uniform cuts — it
// buys nnz balance by deliberately destroying locality, which is exactly
// the wrong trade once communication dominates (our compacted-exchange
// bench shows permutation densifies the ghost sets). The registry mirrors
// comm/comm_mode.hpp and core/plan_mode.hpp:
//
//   - `random` (default): §5.2 — random permutation (when
//                 TrainConfig::permute) + uniform cuts, the paper's
//                 behaviour.
//   - `balanced`: natural vertex order with nnz-balanced prefix cuts
//                 (the ablation alternative previously behind
//                 TrainConfig::partition_strategy).
//   - `locality`: multi-level coarsen -> greedy/label-propagation refine ->
//                 balanced-split pipeline minimizing edge cut under the
//                 configurable balance slack (core/partitioner.hpp).
//   - `hier`:     the hierarchical variant for multi-node profiles:
//                 minimize inter-node cut first, intra-node cut second.
//   - `auto`:     price the random and locality/hier candidates with the
//                 partition's actual ghost-row volume (inter-node rows
//                 weighted by the NVLink/NIC bandwidth ratio) and keep the
//                 cheaper one — never worse than `random` under the model.
//
// Any mode trains to the same optimum; losses differ only by the
// floating-point reduction-order effect any reordering has (the documented
// §5.2 permutation effect). Within one mode, training is bit-deterministic.
//
// set_part_mode() installs a mode programmatically; the MGGCN_PART
// environment variable ("random" | "balanced" | "locality" | "hier" |
// "auto") is read once at first use and an unknown value fails loudly, so
// experiment-script typos do not silently change the partitioner under
// study.
#pragma once

#include <optional>
#include <string_view>

namespace mggcn::core {

enum class PartMode {
  kRandom = 0,
  kBalanced = 1,
  kLocality = 2,
  kHier = 3,
  kAuto = 4,
};

inline constexpr int kNumPartModes = 5;

/// Stable lower-case name ("random" | "balanced" | "locality" | "hier" |
/// "auto") for logs, CLI, and JSON.
[[nodiscard]] const char* part_mode_name(PartMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<PartMode> parse_part_mode(std::string_view name);

/// The active mode. Defaults to kRandom (the paper's behaviour),
/// overridable once via the MGGCN_PART environment variable; throws
/// InvalidArgumentError on an unknown MGGCN_PART value.
[[nodiscard]] PartMode part_mode();

/// Installs `mode` as the active mode (e.g. from a --part CLI flag).
void set_part_mode(PartMode mode);

/// RAII mode override for tests and benches that diff the partitioners.
class ScopedPartMode {
 public:
  explicit ScopedPartMode(PartMode mode) : previous_(part_mode()) {
    set_part_mode(mode);
  }
  ~ScopedPartMode() { set_part_mode(previous_); }
  ScopedPartMode(const ScopedPartMode&) = delete;
  ScopedPartMode& operator=(const ScopedPartMode&) = delete;

 private:
  PartMode previous_;
};

}  // namespace mggcn::core
