// Per-layer mixture-of-parallelism auto-planner.
//
// The paper fixes the 1D staged broadcast for every layer, but which
// distribution strategy is cheapest depends on the dense width d(l), the
// tile structure, the device count, and the topology (the
// mixture-of-parallelism argument, PAPERS.md). The Planner owns one
// operator's distributed product and, per (width, overlap) combination,
// prices three interchangeable executors with exactly the models the
// simulator charges:
//
//   - 1d          DistSpmm            staged broadcast, dense/compact
//                                     exchange composing via MGGCN_COMM
//   - 15d         DistSpmm15DChained  order-preserving chained 1.5D: half
//                                     the per-rank broadcast traffic (and
//                                     intra-node groups on clusters) for
//                                     ~2x the per-rank compute
//   - replicated  ReplicatedSpmm      allgather the whole dense operand,
//                                     then ONE fused local SpMM — a single
//                                     collective and a single launch, the
//                                     launch-overhead-bound regime of
//                                     small graphs (§6.1)
//
// Cost inputs: sparse::spmm_cost through sim::CostModel::seconds for every
// kernel, comm::Topology collective models x CommOptions::duration_scale
// for every exchange, Communicator::sendv_rows_seconds for compacted
// stages, and DistSpmm's own overlap-contention dilation — so `auto`'s
// argmin is taken over the very quantities the simulated clock will
// accumulate, which is what backs the invariant that auto never exceeds
// the best fixed strategy's steady-state epoch time.
//
// Decisions are cached per (d, overlap), counted into sim::Trace's
// PlanCounters (plan_* fields of EpochStats and the bench --json), and an
// infeasible choice (odd rank count, replica or partner tiles would not
// fit in device memory) falls back to 1d and counts as plan_fallbacks.
//
// All three executors accumulate every output element in ascending stage
// order, so losses are bit-identical across MGGCN_PLAN values.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "comm/comm_mode.hpp"
#include "comm/communicator.hpp"
#include "core/dist_executor.hpp"
#include "core/dist_spmm.hpp"
#include "core/dist_spmm_15d.hpp"
#include "core/partition.hpp"
#include "core/plan_mode.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

/// Replicated-operand executor: every rank gathers the full dense input
/// (rank order = global row order), then computes its whole output row
/// block in ONE fused kernel that sweeps the stage tiles left to right.
/// No extra adjacency memory (rank r already owns tile row r under the 1D
/// distribution); the replica buffer costs n x d floats per device.
class ReplicatedSpmm : public DistExecutor {
 public:
  /// `grid` is caller-owned and must outlive this executor.
  ReplicatedSpmm(sim::Machine& machine, comm::Communicator& comm,
                 const TileGrid& grid);

  ReplicatedSpmm(const ReplicatedSpmm&) = delete;
  ReplicatedSpmm& operator=(const ReplicatedSpmm&) = delete;

  /// Uses input/output/d/input_ready/traffic_factor/launch_multiplier;
  /// bc1/bc2/overlap/slot_readers are ignored (nothing is staged, so
  /// there is no broadcast-buffer hazard and no contention window).
  DistResult run(const DistIo& io) override;

  /// Bytes rank `rank` additionally needs at width `d` (replica growth).
  [[nodiscard]] std::uint64_t extra_bytes(int rank, std::int64_t d) const;

 private:
  void ensure_replicas(std::int64_t d);

  sim::Machine& machine_;
  comm::Communicator& comm_;
  const TileGrid& grid_;
  /// replica_[r]: the gathered full dense operand (n x d) on rank r.
  std::vector<std::unique_ptr<sim::DeviceBuffer>> replica_;
  std::int64_t replica_width_ = 0;
  /// Last task to touch replica_[r] in the previous product.
  std::vector<sim::Event> replica_last_use_;
};

class Planner {
 public:
  /// Steady-state estimate of one product per strategy, in simulated
  /// seconds; infeasible strategies price as +infinity.
  struct Estimate {
    double seconds_1d = 0.0;
    double seconds_15d = 0.0;
    double seconds_replicated = 0.0;
    PlanMode choice = PlanMode::k1D;  ///< argmin (1d wins ties)
  };

  /// Takes ownership of `grid` (the Planner's DistSpmm holds it; the other
  /// executors reference it). `mode`/`comm_mode` default to the
  /// process-wide MGGCN_PLAN / MGGCN_COMM settings.
  Planner(sim::Machine& machine, comm::Communicator& comm, TileGrid grid,
          PlanMode mode = plan_mode(),
          comm::CommMode comm_mode = comm::comm_mode());

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// Registers the 1D tile rows (+ ghost maps under compact/auto comm
  /// modes). Strategy-specific extras (partner tiles, partial / replica
  /// buffers) are accounted lazily when a strategy is first selected.
  void account_memory() { spmm_1d_.account_memory(); }

  /// Decides the strategy for this product (cached per (d, overlap)),
  /// records the plan_* counters, and runs the chosen executor.
  DistResult run(const DistIo& io);

  /// Prices one product at width `d` without running anything. Public so
  /// tests and bench_planner can audit the decision surface.
  [[nodiscard]] Estimate price(std::int64_t d, bool overlap,
                               double compute_bandwidth_scale = 1.0,
                               double traffic_factor = 1.0,
                               double launch_multiplier = 1.0) const;

  [[nodiscard]] const TileGrid& grid() const { return spmm_1d_.grid(); }
  [[nodiscard]] const PartitionVector& partition() const {
    return spmm_1d_.partition();
  }
  [[nodiscard]] int parts() const { return spmm_1d_.parts(); }
  [[nodiscard]] PlanMode mode() const { return mode_; }

 private:
  [[nodiscard]] double est_1d(std::int64_t d, bool overlap,
                              double compute_bandwidth_scale,
                              double traffic_factor,
                              double launch_multiplier) const;
  [[nodiscard]] double est_15d(std::int64_t d, double traffic_factor,
                               double launch_multiplier) const;
  [[nodiscard]] double est_replicated(std::int64_t d, double traffic_factor,
                                      double launch_multiplier) const;
  /// Free-memory feasibility of the strategy's extra footprint at width d.
  [[nodiscard]] bool fits(PlanMode strategy, std::int64_t d) const;
  /// Cached count_distinct_cols(tile(r, s)) — NOT TileGrid::plan(), whose
  /// lazy build would suppress the one-time inspector charge DistSpmm
  /// places on the timeline at first use.
  [[nodiscard]] std::int64_t ghost_cols(int r, int s) const;
  /// Cached distinct-column count of stage s's block across every tile
  /// (r, s) with r on `node` — the unioned payload one node-aggregated
  /// inter message to that node carries (see Communicator::sendv_shape).
  [[nodiscard]] std::int64_t node_ghost_cols(int node, int s) const;
  PlanMode decide(const DistIo& io);

  sim::Machine& machine_;
  comm::Communicator& comm_;
  PlanMode mode_;
  comm::CommMode comm_mode_;
  DistSpmm spmm_1d_;  // owns the grid; always constructed (the fallback)
  std::unique_ptr<DistSpmm15DChained> exec_15d_;       // when feasible(p)
  std::unique_ptr<ReplicatedSpmm> exec_replicated_;    // when p > 1
  bool accounted_15d_ = false;
  mutable std::vector<std::vector<std::int64_t>> ghost_cols_;
  mutable std::vector<std::vector<std::int64_t>> node_ghost_cols_;
  std::map<std::pair<std::int64_t, bool>, PlanMode> decisions_;
};

}  // namespace mggcn::core
