// Feature-cache registry: whether and how the sampled pipeline pins hot
// vertex feature rows in device memory.
//
// Sampled mini-batch training re-reads the same high-degree input rows over
// and over (CaPGNN, samgraph study exactly this skew); a per-device cache of
// those rows converts repeated remote extraction traffic into local HBM
// reads. The registry mirrors comm/comm_mode.hpp and core/part_mode.hpp:
//
//   - `off`:    every remote input row travels over the interconnect every
//               time it is needed (the no-cache baseline).
//   - `static`: degree-scored — the top-degree remote vertices are pinned at
//               construction and never evicted (zero bookkeeping, good when
//               access skew follows degree).
//   - `freq`:   access-frequency scored (LFU) — rows are admitted/evicted by
//               observed lookup counts, adapting to the actual sampling
//               distribution (the samgraph frequency-hashmap policy).
//   - `auto`:   price a cached row read against its sendv extraction cost
//               with the simulator's own cost model, clamp the capacity to
//               the device memory actually available, and keep the cache
//               only when the model says it wins — never worse than `off`
//               under the model (core::FeatureCache::plan_auto).
//
// Every mode trains bit-identically: the cache changes which task moves a
// row (local gather vs sendv payload), never the row's contents.
//
// set_cache_mode() installs a mode programmatically; the MGGCN_CACHE
// environment variable ("off" | "static" | "freq" | "auto") is read once at
// first use and an unknown value fails loudly. The capacity knob —
// MGGCN_CACHE_CAP, a fraction of the graph's vertices cacheable per device —
// is read the same way (cache_capacity_fraction()).
#pragma once

#include <optional>
#include <string_view>

namespace mggcn::core {

enum class CacheMode {
  kOff = 0,
  kStatic = 1,
  kFreq = 2,
  kAuto = 3,
};

inline constexpr int kNumCacheModes = 4;

/// Stable lower-case name ("off" | "static" | "freq" | "auto") for logs,
/// CLI, and JSON.
[[nodiscard]] const char* cache_mode_name(CacheMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<CacheMode> parse_cache_mode(std::string_view name);

/// The active mode. Defaults to kAuto (cost-priced, never worse than off),
/// overridable once via the MGGCN_CACHE environment variable; throws
/// InvalidArgumentError on an unknown MGGCN_CACHE value.
[[nodiscard]] CacheMode cache_mode();

/// Installs `mode` as the active mode (e.g. from a --cache CLI flag).
void set_cache_mode(CacheMode mode);

/// Per-device cache capacity as a fraction of the graph's vertex count.
/// Defaults to 0.05, overridable once via MGGCN_CACHE_CAP (a double in
/// [0, 1]); an unparsable value fails loudly.
[[nodiscard]] double cache_capacity_fraction();
void set_cache_capacity_fraction(double fraction);

/// RAII mode override for tests and benches that diff the cache policies.
class ScopedCacheMode {
 public:
  explicit ScopedCacheMode(CacheMode mode) : previous_(cache_mode()) {
    set_cache_mode(mode);
  }
  ~ScopedCacheMode() { set_cache_mode(previous_); }
  ScopedCacheMode(const ScopedCacheMode&) = delete;
  ScopedCacheMode& operator=(const ScopedCacheMode&) = delete;

 private:
  CacheMode previous_;
};

}  // namespace mggcn::core
