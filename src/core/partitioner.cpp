#include "core/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <span>
#include <utility>

#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mggcn::core {

namespace {

// ---------------------------------------------------------------------------
// Working graph representation for the multi-level pipeline: an undirected
// weighted graph in CSR form. Vertex weight is the tile-row nnz proxy
// (degree + 1); edge weights accumulate folded fine edges during
// coarsening.
// ---------------------------------------------------------------------------
struct WorkGraph {
  std::int64_t n = 0;
  std::vector<std::int64_t> xadj;  // n + 1
  std::vector<std::int32_t> adj;
  std::vector<std::int64_t> ewgt;
  std::vector<std::int64_t> vwgt;

  [[nodiscard]] std::int64_t total_weight() const {
    return std::accumulate(vwgt.begin(), vwgt.end(), std::int64_t{0});
  }
};

WorkGraph work_graph_from_csr(const sparse::Csr& a) {
  WorkGraph g;
  g.n = a.rows();
  g.xadj.assign(a.row_ptr().begin(), a.row_ptr().end());
  g.adj.reserve(static_cast<std::size_t>(a.nnz()));
  for (const std::uint32_t c : a.col_idx()) {
    g.adj.push_back(static_cast<std::int32_t>(c));
  }
  g.ewgt.assign(static_cast<std::size_t>(a.nnz()), 1);
  g.vwgt.resize(static_cast<std::size_t>(g.n));
  for (std::int64_t u = 0; u < g.n; ++u) {
    g.vwgt[static_cast<std::size_t>(u)] = a.row_nnz(u) + 1;
  }
  return g;
}

std::vector<std::int32_t> shuffled_order(std::int64_t n, util::Rng& rng) {
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return order;
}

// One heavy-edge-matching coarsening step: each vertex pairs with its
// unmatched neighbour of maximum edge weight (randomized visit order), and
// matched pairs fold into one coarse vertex with summed weights.
struct CoarsenStep {
  WorkGraph graph;
  std::vector<std::int32_t> map;  // fine vertex -> coarse vertex
};

CoarsenStep coarsen_once(const WorkGraph& g, util::Rng& rng) {
  const auto order = shuffled_order(g.n, rng);
  std::vector<std::int32_t> map(static_cast<std::size_t>(g.n), -1);
  std::int32_t coarse_n = 0;
  for (const std::int32_t u : order) {
    if (map[static_cast<std::size_t>(u)] >= 0) continue;
    std::int32_t best = -1;
    std::int64_t best_weight = -1;
    for (std::int64_t e = g.xadj[static_cast<std::size_t>(u)];
         e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
      const std::int32_t v = g.adj[static_cast<std::size_t>(e)];
      if (v == u || map[static_cast<std::size_t>(v)] >= 0) continue;
      const std::int64_t w = g.ewgt[static_cast<std::size_t>(e)];
      if (w > best_weight || (w == best_weight && v < best)) {
        best_weight = w;
        best = v;
      }
    }
    map[static_cast<std::size_t>(u)] = coarse_n;
    if (best >= 0) map[static_cast<std::size_t>(best)] = coarse_n;
    ++coarse_n;
  }

  // Chain fine vertices per coarse vertex so coarse rows can be emitted
  // contiguously in one O(n + m) pass.
  std::vector<std::int32_t> head(static_cast<std::size_t>(coarse_n), -1);
  std::vector<std::int32_t> next(static_cast<std::size_t>(g.n), -1);
  for (std::int64_t u = g.n - 1; u >= 0; --u) {
    const auto cu = static_cast<std::size_t>(map[static_cast<std::size_t>(u)]);
    next[static_cast<std::size_t>(u)] = head[cu];
    head[cu] = static_cast<std::int32_t>(u);
  }

  CoarsenStep step;
  step.graph.n = coarse_n;
  step.graph.vwgt.assign(static_cast<std::size_t>(coarse_n), 0);
  step.graph.xadj.reserve(static_cast<std::size_t>(coarse_n) + 1);
  step.graph.xadj.push_back(0);
  std::vector<std::int32_t> stamp(static_cast<std::size_t>(coarse_n), -1);
  std::vector<std::int64_t> slot(static_cast<std::size_t>(coarse_n), 0);
  for (std::int32_t cv = 0; cv < coarse_n; ++cv) {
    const std::int64_t row_begin =
        static_cast<std::int64_t>(step.graph.adj.size());
    for (std::int32_t u = head[static_cast<std::size_t>(cv)]; u >= 0;
         u = next[static_cast<std::size_t>(u)]) {
      step.graph.vwgt[static_cast<std::size_t>(cv)] +=
          g.vwgt[static_cast<std::size_t>(u)];
      for (std::int64_t e = g.xadj[static_cast<std::size_t>(u)];
           e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
        const auto cw = map[static_cast<std::size_t>(
            g.adj[static_cast<std::size_t>(e)])];
        if (cw == cv) continue;  // folded (or self) edge
        if (stamp[static_cast<std::size_t>(cw)] != cv) {
          stamp[static_cast<std::size_t>(cw)] = cv;
          slot[static_cast<std::size_t>(cw)] =
              static_cast<std::int64_t>(step.graph.adj.size());
          step.graph.adj.push_back(cw);
          step.graph.ewgt.push_back(0);
        }
        step.graph
            .ewgt[static_cast<std::size_t>(slot[static_cast<std::size_t>(cw)])] +=
            g.ewgt[static_cast<std::size_t>(e)];
      }
    }
    (void)row_begin;
    step.graph.xadj.push_back(static_cast<std::int64_t>(step.graph.adj.size()));
  }
  step.map = std::move(map);
  return step;
}

// Greedy graph growing on the coarsest level: grow each part from a seed
// by repeatedly absorbing the unassigned vertex best connected to it until
// the part reaches its weight target. O(k * n^2) worst case, which is fine
// at coarse sizes (a few hundred vertices).
std::vector<std::int32_t> initial_partition(
    const WorkGraph& g, int k, const std::vector<std::int64_t>& target_w) {
  std::vector<std::int32_t> part(static_cast<std::size_t>(g.n), -1);
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> conn(static_cast<std::size_t>(g.n), 0);
  std::int64_t unassigned = g.n;

  for (int p = 0; p < k && unassigned > 0; ++p) {
    std::fill(conn.begin(), conn.end(), 0);
    while (weight[static_cast<std::size_t>(p)] <
               target_w[static_cast<std::size_t>(p)] &&
           unassigned > 0) {
      // Best-connected unassigned vertex; falls back to the heaviest one
      // (a fresh seed) when the frontier is empty.
      std::int32_t pick = -1;
      std::int64_t pick_conn = 0;
      std::int64_t pick_wgt = -1;
      for (std::int64_t u = 0; u < g.n; ++u) {
        if (part[static_cast<std::size_t>(u)] >= 0) continue;
        const std::int64_t cu = conn[static_cast<std::size_t>(u)];
        const std::int64_t wu = g.vwgt[static_cast<std::size_t>(u)];
        if (pick < 0 || cu > pick_conn ||
            (cu == pick_conn && wu > pick_wgt)) {
          pick = static_cast<std::int32_t>(u);
          pick_conn = cu;
          pick_wgt = wu;
        }
      }
      if (pick < 0) break;
      part[static_cast<std::size_t>(pick)] = p;
      weight[static_cast<std::size_t>(p)] +=
          g.vwgt[static_cast<std::size_t>(pick)];
      --unassigned;
      for (std::int64_t e = g.xadj[static_cast<std::size_t>(pick)];
           e < g.xadj[static_cast<std::size_t>(pick) + 1]; ++e) {
        const std::int32_t v = g.adj[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(v)] < 0) {
          conn[static_cast<std::size_t>(v)] +=
              g.ewgt[static_cast<std::size_t>(e)];
        }
      }
    }
  }
  // Leftovers (last part's share plus anything targets truncated) go to
  // the relatively lightest part.
  for (std::int64_t u = 0; u < g.n; ++u) {
    if (part[static_cast<std::size_t>(u)] >= 0) continue;
    int lightest = 0;
    double best_fill = std::numeric_limits<double>::infinity();
    for (int p = 0; p < k; ++p) {
      const double fill =
          static_cast<double>(weight[static_cast<std::size_t>(p)]) /
          std::max<double>(1.0,
                           static_cast<double>(
                               target_w[static_cast<std::size_t>(p)]));
      if (fill < best_fill) {
        best_fill = fill;
        lightest = p;
      }
    }
    part[static_cast<std::size_t>(u)] = lightest;
    weight[static_cast<std::size_t>(lightest)] +=
        g.vwgt[static_cast<std::size_t>(u)];
  }
  return part;
}

// Balance-constrained label propagation: move a vertex to the neighbour
// part with the best connectivity gain, provided the destination stays
// under its weight limit. A final repair loop forces every part under its
// limit (possibly at cut cost).
void refine(const WorkGraph& g, std::vector<std::int32_t>& part, int k,
            const std::vector<std::int64_t>& target_w, double limit_factor,
            int sweeps, util::Rng& rng) {
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  for (std::int64_t u = 0; u < g.n; ++u) {
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] +=
        g.vwgt[static_cast<std::size_t>(u)];
  }
  std::vector<std::int64_t> limit(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    limit[static_cast<std::size_t>(p)] = static_cast<std::int64_t>(
        static_cast<double>(target_w[static_cast<std::size_t>(p)]) *
        limit_factor);
  }

  std::vector<std::int64_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<std::int32_t> touched;
  touched.reserve(static_cast<std::size_t>(k));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    const auto order = shuffled_order(g.n, rng);
    std::int64_t moved = 0;
    for (const std::int32_t u : order) {
      const std::int32_t cur = part[static_cast<std::size_t>(u)];
      touched.clear();
      for (std::int64_t e = g.xadj[static_cast<std::size_t>(u)];
           e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
        const std::int32_t q =
            part[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
        if (conn[static_cast<std::size_t>(q)] == 0) touched.push_back(q);
        conn[static_cast<std::size_t>(q)] +=
            g.ewgt[static_cast<std::size_t>(e)];
      }
      const std::int64_t wu = g.vwgt[static_cast<std::size_t>(u)];
      const bool overweight =
          weight[static_cast<std::size_t>(cur)] >
          limit[static_cast<std::size_t>(cur)];
      std::int32_t best = cur;
      std::int64_t best_gain = 0;
      for (const std::int32_t q : touched) {
        if (q == cur) continue;
        if (weight[static_cast<std::size_t>(q)] + wu >
            limit[static_cast<std::size_t>(q)]) {
          continue;
        }
        const std::int64_t gain = conn[static_cast<std::size_t>(q)] -
                                  conn[static_cast<std::size_t>(cur)];
        // Zero-gain moves are only taken to drain an overweight part.
        const bool better =
            gain > best_gain ||
            (gain == best_gain && best != cur &&
             weight[static_cast<std::size_t>(q)] <
                 weight[static_cast<std::size_t>(best)]) ||
            (gain == 0 && best == cur && overweight &&
             weight[static_cast<std::size_t>(q)] + wu <
                 weight[static_cast<std::size_t>(cur)]);
        if (better) {
          best = q;
          best_gain = gain;
        }
      }
      for (const std::int32_t q : touched) {
        conn[static_cast<std::size_t>(q)] = 0;
      }
      if (best != cur) {
        part[static_cast<std::size_t>(u)] = best;
        weight[static_cast<std::size_t>(cur)] -= wu;
        weight[static_cast<std::size_t>(best)] += wu;
        ++moved;
      }
    }
    if (moved == 0) break;
  }

  // Repair: while some part exceeds its limit, move its least-attached
  // boundary vertex into the relatively lightest part. Bounded scan count
  // keeps this terminating even on adversarial inputs.
  for (std::int64_t guard = 0; guard < 2 * g.n + 16; ++guard) {
    int heavy = -1;
    std::int64_t overshoot = 0;
    int light = 0;
    double light_fill = std::numeric_limits<double>::infinity();
    for (int p = 0; p < k; ++p) {
      const std::int64_t over = weight[static_cast<std::size_t>(p)] -
                                limit[static_cast<std::size_t>(p)];
      if (over > overshoot) {
        overshoot = over;
        heavy = p;
      }
      const double fill =
          static_cast<double>(weight[static_cast<std::size_t>(p)]) /
          std::max<double>(1.0,
                           static_cast<double>(
                               target_w[static_cast<std::size_t>(p)]));
      if (fill < light_fill) {
        light_fill = fill;
        light = p;
      }
    }
    if (heavy < 0 || heavy == light) break;
    std::int32_t pick = -1;
    std::int64_t pick_damage = 0;
    for (std::int64_t u = 0; u < g.n; ++u) {
      if (part[static_cast<std::size_t>(u)] != heavy) continue;
      std::int64_t damage = 0;
      for (std::int64_t e = g.xadj[static_cast<std::size_t>(u)];
           e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
        const std::int32_t q =
            part[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
        const std::int64_t w = g.ewgt[static_cast<std::size_t>(e)];
        if (q == heavy) damage += w;
        if (q == light) damage -= w;
      }
      if (pick < 0 || damage < pick_damage) {
        pick = static_cast<std::int32_t>(u);
        pick_damage = damage;
      }
    }
    if (pick < 0) break;
    const std::int64_t wu = g.vwgt[static_cast<std::size_t>(pick)];
    part[static_cast<std::size_t>(pick)] = light;
    weight[static_cast<std::size_t>(heavy)] -= wu;
    weight[static_cast<std::size_t>(light)] += wu;
  }
}

// Full multi-level pipeline: returns a part label per vertex of `g`.
// target_w holds one absolute vertex-weight target per part.
std::vector<std::int32_t> multilevel_partition(
    const WorkGraph& g, int k, const std::vector<std::int64_t>& target_w,
    double limit_factor, int sweeps, util::Rng& rng) {
  if (k <= 1 || g.n == 0) {
    return std::vector<std::int32_t>(static_cast<std::size_t>(g.n), 0);
  }

  const std::int64_t coarsen_target =
      std::max<std::int64_t>(128, 12 * static_cast<std::int64_t>(k));
  std::vector<WorkGraph> levels;
  std::vector<std::vector<std::int32_t>> maps;
  levels.push_back(g);
  while (levels.back().n > coarsen_target &&
         static_cast<int>(levels.size()) < 48) {
    CoarsenStep step = coarsen_once(levels.back(), rng);
    if (step.graph.n >
        static_cast<std::int64_t>(0.95 * static_cast<double>(levels.back().n))) {
      break;  // matching stalled (e.g. star graphs) — stop coarsening
    }
    maps.push_back(std::move(step.map));
    levels.push_back(std::move(step.graph));
  }

  std::vector<std::int32_t> part =
      initial_partition(levels.back(), k, target_w);
  refine(levels.back(), part, k, target_w, limit_factor, sweeps, rng);
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    const WorkGraph& fine = levels[lvl];
    std::vector<std::int32_t> fine_part(static_cast<std::size_t>(fine.n));
    for (std::int64_t u = 0; u < fine.n; ++u) {
      fine_part[static_cast<std::size_t>(u)] =
          part[static_cast<std::size_t>(maps[lvl][static_cast<std::size_t>(u)])];
    }
    part = std::move(fine_part);
    refine(fine, part, k, target_w, limit_factor, sweeps, rng);
  }
  return part;
}

// Final balance pass on the real per-row nnz. The degree+1 proxy used
// during refinement counts isolated vertices as work, so a part that
// collects them can satisfy the proxy while starving on actual nnz —
// which pushes the measured tile imbalance (max/mean part nnz) past the
// advertised slack. Rebalance on the measured quantity directly: while a
// part exceeds its nnz limit, move its least-attached nonzero-degree
// vertex to the lightest part.
void repair_nnz(const sparse::Csr& a, std::vector<std::int32_t>& part, int k,
                double limit_factor) {
  const std::int64_t n = a.rows();
  std::vector<std::int64_t> weight(static_cast<std::size_t>(k), 0);
  for (std::int64_t u = 0; u < n; ++u) {
    weight[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])] +=
        a.row_nnz(u);
  }
  const std::int64_t limit = static_cast<std::int64_t>(
      static_cast<double>(a.nnz()) / std::max(1, k) * limit_factor);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  for (std::int64_t guard = 0; guard < 2 * n + 16; ++guard) {
    int heavy = -1;
    std::int64_t overshoot = 0;
    int light = 0;
    for (int p = 0; p < k; ++p) {
      const std::int64_t over = weight[static_cast<std::size_t>(p)] - limit;
      if (over > overshoot) {
        overshoot = over;
        heavy = p;
      }
      if (weight[static_cast<std::size_t>(p)] <
          weight[static_cast<std::size_t>(light)]) {
        light = p;
      }
    }
    if (heavy < 0 || heavy == light) break;
    std::int32_t pick = -1;
    std::int64_t pick_damage = 0;
    for (std::int64_t u = 0; u < n; ++u) {
      if (part[static_cast<std::size_t>(u)] != heavy || a.row_nnz(u) == 0) {
        continue;
      }
      std::int64_t damage = 0;
      for (std::int64_t e = row_ptr[static_cast<std::size_t>(u)];
           e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
        const std::int32_t q = part[static_cast<std::size_t>(
            col_idx[static_cast<std::size_t>(e)])];
        if (q == heavy) ++damage;
        if (q == light) --damage;
      }
      if (pick < 0 || damage < pick_damage) {
        pick = static_cast<std::int32_t>(u);
        pick_damage = damage;
      }
    }
    if (pick < 0) break;
    const std::int64_t wu = a.row_nnz(pick);
    part[static_cast<std::size_t>(pick)] = light;
    weight[static_cast<std::size_t>(heavy)] -= wu;
    weight[static_cast<std::size_t>(light)] += wu;
  }
}

std::vector<std::int64_t> proportional_targets(std::int64_t total_weight,
                                               std::span<const int> shares,
                                               int share_total) {
  std::vector<std::int64_t> targets;
  targets.reserve(shares.size());
  for (const int share : shares) {
    targets.push_back(std::max<std::int64_t>(
        1, total_weight * share / std::max(1, share_total)));
  }
  return targets;
}

// Turns per-vertex labels into the trainer's (perm, PartitionVector)
// contract. Vertices keep their original relative order within a part.
PartitionResult labels_to_result(std::int64_t n, int k,
                                 std::span<const std::int32_t> labels,
                                 PartMode mode) {
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(k) + 1, 0);
  for (const std::int32_t l : labels) {
    ++offsets[static_cast<std::size_t>(l) + 1];
  }
  for (int p = 0; p < k; ++p) {
    offsets[static_cast<std::size_t>(p) + 1] +=
        offsets[static_cast<std::size_t>(p)];
  }
  PartitionResult result;
  result.mode = mode;
  result.perm.resize(static_cast<std::size_t>(n));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::int64_t u = 0; u < n; ++u) {
    result.perm[static_cast<std::size_t>(u)] = static_cast<std::uint32_t>(
        cursor[static_cast<std::size_t>(labels[static_cast<std::size_t>(u)])]++);
  }
  result.partition = PartitionVector(std::move(offsets));
  return result;
}

PartitionResult identity_result(std::int64_t n, int parts, PartMode mode) {
  PartitionResult result;
  result.mode = mode;
  result.perm.resize(static_cast<std::size_t>(n));
  std::iota(result.perm.begin(), result.perm.end(), 0u);
  result.partition = PartitionVector::uniform(n, std::max(1, parts));
  return result;
}

PartitionResult plan_random(const sparse::Csr& adjacency,
                            const PartitionerOptions& opt) {
  const std::int64_t n = adjacency.rows();
  PartitionResult result;
  result.mode = PartMode::kRandom;
  // Bit-identical to the trainer's historical §5.2 path: one Rng seeded
  // with the caller's seed, a full permutation draw when permuting.
  util::Rng rng(opt.seed);
  if (opt.permute_random) {
    result.perm = rng.permutation<std::uint32_t>(static_cast<std::size_t>(n));
  } else {
    result.perm.resize(static_cast<std::size_t>(n));
    std::iota(result.perm.begin(), result.perm.end(), 0u);
  }
  result.partition = PartitionVector::uniform(n, opt.parts);
  return result;
}

PartitionResult plan_locality(const sparse::Csr& adjacency,
                              const PartitionerOptions& opt) {
  const WorkGraph g = work_graph_from_csr(adjacency);
  util::Rng rng(opt.seed ^ 0x10ca117ee5ULL);
  const std::vector<int> shares(static_cast<std::size_t>(opt.parts), 1);
  const auto targets =
      proportional_targets(g.total_weight(), shares, opt.parts);
  // Inner limit sits below the advertised slack so the measured tile
  // imbalance (whose weights differ slightly from the degree+1 proxy)
  // still lands under it.
  const double limit_factor = 1.0 + (opt.slack - 1.0) * 0.85;
  auto labels = multilevel_partition(g, opt.parts, targets, limit_factor,
                                     opt.refine_sweeps, rng);
  repair_nnz(adjacency, labels, opt.parts, limit_factor);
  return labels_to_result(g.n, opt.parts, labels, PartMode::kLocality);
}

PartitionResult plan_hier(const sparse::Csr& adjacency,
                          const PartitionerOptions& opt) {
  const int dpn = opt.devices_per_node;
  if (dpn <= 0 || dpn >= opt.parts) {
    // Single node: inter-node cut is vacuous, flat locality is the answer.
    PartitionResult flat = plan_locality(adjacency, opt);
    flat.mode = PartMode::kLocality;
    return flat;
  }
  const int nodes = (opt.parts + dpn - 1) / dpn;
  const WorkGraph g = work_graph_from_csr(adjacency);
  util::Rng rng(opt.seed ^ 0x47ee5a11dULL);

  // Level 1: split across nodes, weighted by each node's device count.
  // Both levels get sqrt of the slack so their product stays within it.
  const double level_factor = std::sqrt(1.0 + (opt.slack - 1.0) * 0.85);
  std::vector<int> node_devices(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    node_devices[static_cast<std::size_t>(i)] =
        std::min(dpn, opt.parts - i * dpn);
  }
  const auto node_targets =
      proportional_targets(g.total_weight(), node_devices, opt.parts);
  const auto node_label = multilevel_partition(
      g, nodes, node_targets, level_factor, opt.refine_sweeps, rng);

  // Level 2: split each node's induced subgraph across its devices.
  std::vector<std::int32_t> labels(static_cast<std::size_t>(g.n), 0);
  std::vector<std::int32_t> local_id(static_cast<std::size_t>(g.n), -1);
  std::vector<std::int32_t> members;
  for (int node = 0; node < nodes; ++node) {
    members.clear();
    for (std::int64_t u = 0; u < g.n; ++u) {
      if (node_label[static_cast<std::size_t>(u)] == node) {
        local_id[static_cast<std::size_t>(u)] =
            static_cast<std::int32_t>(members.size());
        members.push_back(static_cast<std::int32_t>(u));
      }
    }
    const int devs = node_devices[static_cast<std::size_t>(node)];
    WorkGraph sub;
    sub.n = static_cast<std::int64_t>(members.size());
    sub.xadj.reserve(members.size() + 1);
    sub.xadj.push_back(0);
    sub.vwgt.reserve(members.size());
    for (const std::int32_t u : members) {
      sub.vwgt.push_back(g.vwgt[static_cast<std::size_t>(u)]);
      for (std::int64_t e = g.xadj[static_cast<std::size_t>(u)];
           e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
        const std::int32_t v = g.adj[static_cast<std::size_t>(e)];
        if (node_label[static_cast<std::size_t>(v)] != node) continue;
        sub.adj.push_back(local_id[static_cast<std::size_t>(v)]);
        sub.ewgt.push_back(g.ewgt[static_cast<std::size_t>(e)]);
      }
      sub.xadj.push_back(static_cast<std::int64_t>(sub.adj.size()));
    }
    const std::vector<int> shares(static_cast<std::size_t>(devs), 1);
    const auto targets =
        proportional_targets(sub.total_weight(), shares, devs);
    util::Rng sub_rng = rng.fork();
    const auto local = multilevel_partition(sub, devs, targets, level_factor,
                                            opt.refine_sweeps, sub_rng);
    const std::int32_t base = static_cast<std::int32_t>(node * dpn);
    for (std::size_t i = 0; i < members.size(); ++i) {
      labels[static_cast<std::size_t>(members[i])] = base + local[i];
    }
  }
  // The two sqrt-slack levels compose multiplicatively on the proxy weight;
  // settle the measured quantity globally (a repair move may cross nodes,
  // which is fine — it only runs while a device exceeds its nnz limit).
  repair_nnz(adjacency, labels, opt.parts, 1.0 + (opt.slack - 1.0) * 0.85);
  return labels_to_result(g.n, opt.parts, labels, PartMode::kHier);
}

PartitionResult plan_balanced(const sparse::Csr& adjacency,
                              const PartitionerOptions& opt) {
  PartitionResult result;
  result.mode = PartMode::kBalanced;
  result.perm.resize(static_cast<std::size_t>(adjacency.rows()));
  std::iota(result.perm.begin(), result.perm.end(), 0u);
  result.partition = PartitionVector::balanced_nnz(adjacency, opt.parts);
  return result;
}

// kAuto's cost proxy: ghost rows priced by where they cross, scaled by the
// compute imbalance the partition forces. Monotone in the wire bytes the
// compact exchange will actually move.
double partition_cost(const PartitionCutStats& stats, double inter_cost) {
  const double intra = static_cast<double>(stats.ghost_rows -
                                           stats.inter_node_ghost_rows);
  const double inter = static_cast<double>(stats.inter_node_ghost_rows);
  return (intra + std::max(1.0, inter_cost) * inter) *
         std::max(1.0, stats.imbalance);
}

}  // namespace

PartitionResult plan_partition(const sparse::Csr& adjacency, PartMode mode,
                               const PartitionerOptions& options) {
  MGGCN_CHECK(adjacency.rows() == adjacency.cols());
  MGGCN_CHECK(options.parts >= 1);
  const std::int64_t n = adjacency.rows();
  if (options.parts == 1 || n == 0) {
    return identity_result(n, options.parts,
                           mode == PartMode::kAuto ? PartMode::kRandom : mode);
  }
  switch (mode) {
    case PartMode::kRandom:
      return plan_random(adjacency, options);
    case PartMode::kBalanced:
      return plan_balanced(adjacency, options);
    case PartMode::kLocality:
      return plan_locality(adjacency, options);
    case PartMode::kHier:
      return plan_hier(adjacency, options);
    case PartMode::kAuto:
      break;
  }

  // kAuto: price the paper's permutation against the structured candidate
  // (hier on multi-node profiles) with the actual ghost-row volumes, and
  // keep the cheaper one. A structured candidate that blows the balance
  // slack is disqualified, so auto never loses to random under the model.
  PartitionResult random = plan_random(adjacency, options);
  const bool multi_node = options.devices_per_node > 0 &&
                          options.parts > options.devices_per_node;
  PartitionResult structured = multi_node ? plan_hier(adjacency, options)
                                          : plan_locality(adjacency, options);
  const PartitionCutStats random_stats = partition_cut_stats(
      adjacency, random.perm, random.partition, options.devices_per_node);
  const PartitionCutStats structured_stats =
      partition_cut_stats(adjacency, structured.perm, structured.partition,
                          options.devices_per_node);
  if (structured_stats.imbalance <= options.slack + 1e-9 &&
      partition_cost(structured_stats, options.inter_node_cost) <
          partition_cost(random_stats, options.inter_node_cost)) {
    return structured;
  }
  return random;
}

PartitionCutStats partition_cut_stats(const sparse::Csr& adjacency,
                                      std::span<const std::uint32_t> perm,
                                      const PartitionVector& partition,
                                      int devices_per_node) {
  const std::int64_t n = adjacency.rows();
  const int parts = partition.parts();
  MGGCN_CHECK(static_cast<std::int64_t>(perm.size()) == n);
  const auto node_of = [devices_per_node](int p) {
    return devices_per_node > 0 ? p / devices_per_node : 0;
  };

  std::vector<std::int32_t> part_of(static_cast<std::size_t>(n));
  std::vector<std::int64_t> part_row_nnz(static_cast<std::size_t>(parts), 0);
  for (std::int64_t u = 0; u < n; ++u) {
    const int p = partition.part_of(perm[static_cast<std::size_t>(u)]);
    part_of[static_cast<std::size_t>(u)] = p;
    part_row_nnz[static_cast<std::size_t>(p)] += adjacency.row_nnz(u);
  }

  PartitionCutStats stats;
  // ghost[r * parts + s]: distinct columns of part s referenced by part r's
  // rows — exactly count_distinct_cols of tile (r, s).
  std::vector<std::int64_t> ghost(
      static_cast<std::size_t>(parts) * static_cast<std::size_t>(parts), 0);
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(parts), -1);
  const auto row_ptr = adjacency.row_ptr();
  const auto col_idx = adjacency.col_idx();
  for (std::int64_t v = 0; v < n; ++v) {
    const int s = part_of[static_cast<std::size_t>(v)];
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(v)];
         e < row_ptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const int r =
          part_of[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)])];
      if (r == s) continue;
      ++stats.cut_edges;
      if (node_of(r) != node_of(s)) ++stats.inter_node_cut_edges;
      // Symmetric adjacency: u in part r adjacent to v means tile (r, s)
      // has column v — v is a ghost row part s ships to part r.
      if (stamp[static_cast<std::size_t>(r)] != v) {
        stamp[static_cast<std::size_t>(r)] = v;
        ++ghost[static_cast<std::size_t>(r) * static_cast<std::size_t>(parts) +
                static_cast<std::size_t>(s)];
      }
    }
  }

  double density_sum = 0.0;
  std::int64_t density_tiles = 0;
  for (int r = 0; r < parts; ++r) {
    for (int s = 0; s < parts; ++s) {
      if (r == s) continue;
      const std::int64_t g =
          ghost[static_cast<std::size_t>(r) * static_cast<std::size_t>(parts) +
                static_cast<std::size_t>(s)];
      stats.ghost_rows += g;
      if (node_of(r) != node_of(s)) stats.inter_node_ghost_rows += g;
      if (partition.size(s) > 0) {
        density_sum +=
            static_cast<double>(g) / static_cast<double>(partition.size(s));
        ++density_tiles;
      }
    }
  }
  stats.avg_ghost_density =
      density_tiles > 0 ? density_sum / static_cast<double>(density_tiles)
                        : 0.0;

  const std::int64_t total_nnz = adjacency.nnz();
  const double mean =
      static_cast<double>(total_nnz) / std::max(1, parts);
  const std::int64_t max_nnz =
      *std::max_element(part_row_nnz.begin(), part_row_nnz.end());
  stats.imbalance = mean > 0.0 ? static_cast<double>(max_nnz) / mean : 1.0;
  return stats;
}

PartitionCutStats grid_cut_stats(const TileGrid& grid, int devices_per_node) {
  const int parts = grid.parts();
  const auto node_of = [devices_per_node](int p) {
    return devices_per_node > 0 ? p / devices_per_node : 0;
  };
  PartitionCutStats stats;
  double density_sum = 0.0;
  std::int64_t density_tiles = 0;
  for (int r = 0; r < parts; ++r) {
    for (int s = 0; s < parts; ++s) {
      if (r == s) continue;
      const sparse::Csr& tile = grid.tile(r, s);
      stats.cut_edges += tile.nnz();
      const std::int64_t ghost = sparse::count_distinct_cols(tile);
      stats.ghost_rows += ghost;
      if (node_of(r) != node_of(s)) {
        stats.inter_node_cut_edges += tile.nnz();
        stats.inter_node_ghost_rows += ghost;
      }
      if (grid.partition.size(s) > 0) {
        density_sum += static_cast<double>(ghost) /
                       static_cast<double>(grid.partition.size(s));
        ++density_tiles;
      }
    }
  }
  stats.avg_ghost_density =
      density_tiles > 0 ? density_sum / static_cast<double>(density_tiles)
                        : 0.0;
  stats.imbalance = grid.imbalance();
  return stats;
}

}  // namespace mggcn::core
