#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "core/gcn_kernels.hpp"
#include "dense/kernels.hpp"
#include "sparse/spmm.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace mggcn::core {

std::vector<dense::HostMatrix> init_weights(
    const std::vector<std::int64_t>& dims, std::uint64_t seed) {
  MGGCN_CHECK(dims.size() >= 2);
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  std::vector<dense::HostMatrix> weights;
  weights.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    dense::HostMatrix w(dims[l], dims[l + 1]);
    w.init_glorot(rng);
    weights.push_back(std::move(w));
  }
  return weights;
}

std::vector<std::int64_t> layer_dims(const graph::Dataset& dataset,
                                     const TrainConfig& config) {
  std::vector<std::int64_t> dims;
  dims.push_back(dataset.spec.feature_dim);
  for (const auto h : config.hidden_dims) dims.push_back(h);
  dims.push_back(dataset.spec.num_classes);
  return dims;
}

std::uint64_t replicated_state_bytes(const std::vector<std::int64_t>& dims) {
  std::uint64_t params = 0;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    params += static_cast<std::uint64_t>(dims[l] * dims[l + 1]);
  }
  return 4 * params * sizeof(float);  // w, w_grad, adam m, adam v
}

MgGcnTrainer::MgGcnTrainer(sim::Machine& machine,
                           const graph::Dataset& dataset, TrainConfig config)
    : machine_(machine), config_(std::move(config)) {
  dims_ = layer_dims(dataset, config_);
  build_plan();

  // Overlapping steals HBM bandwidth from SpMM (the paper's ~1/6 on V100)
  // and slightly slows the broadcasts themselves (§6.3, Fig. 8).
  const double comm_bw =
      machine_.profile().interconnect.collective_bandwidth();
  const double mem_bw = machine_.profile().device.memory_bandwidth;
  const bool overlapping = config_.overlap && machine_.num_devices() > 1;
  compute_bandwidth_scale_ =
      overlapping ? std::max(0.5, 1.0 - comm_bw / mem_bw) : 1.0;
  comm::CommOptions comm_options;
  comm_options.duration_scale =
      (overlapping ? 1.10 : 1.0) / std::max(config_.comm_efficiency, 1e-3);
  comm_ = std::make_unique<comm::Communicator>(machine_, comm_options);

  util::WallTimer timer;
  preprocess(dataset);
  preprocessing_seconds_ = timer.elapsed_seconds();

  pool_ = mem::resolve_pool(config_.pool, machine_, config_.pool_mode);
  allocate_buffers();
  upload_inputs(dataset);
}

MgGcnTrainer::~MgGcnTrainer() { machine_.synchronize(); }

void MgGcnTrainer::build_plan() {
  const int layers = num_layers();
  plan_.clear();
  for (int l = 0; l < layers; ++l) {
    LayerPlan plan;
    plan.d_in = dims_[static_cast<std::size_t>(l)];
    plan.d_out = dims_[static_cast<std::size_t>(l) + 1];
    // §4.4: if d(l) < d(l+1), SpMM on the narrow side first is cheaper.
    plan.spmm_first = config_.reorder_gemm_spmm
                          ? plan.d_in < plan.d_out
                          : config_.spmm_first_when_no_reorder;
    plan.has_relu = l + 1 < layers;
    const bool autograd_skip =
        config_.autograd_aggregation_reuse && plan.spmm_first;
    plan.skip_backward_spmm =
        l == 0 && !config_.input_grad_needed &&
        (config_.skip_first_backward_spmm || autograd_skip);
    plan_.push_back(plan);
  }
}

void MgGcnTrainer::preprocess(const graph::Dataset& dataset) {
  const std::int64_t n = dataset.n();
  const int p = machine_.num_devices();
  const sim::InterconnectProfile& inter = machine_.profile().interconnect;

  // Vertex ordering + cut points through the partitioner registry: §5.2's
  // random permutation (the default, bit-identical to the historical
  // path), nnz-balanced prefix cuts, or the locality-aware/hierarchical
  // min-cut modes. kAuto's inter-node ghost-row weight is the ratio
  // between the intra-node fabric and the NIC, i.e. how much more a
  // cross-node row costs under the comm model.
  PartitionerOptions popt;
  popt.parts = p;
  popt.slack = config_.partition_slack;
  popt.permute_random = config_.permute;
  popt.seed = config_.seed ^ 0xabcdef12345ULL;
  popt.devices_per_node = inter.devices_per_node;
  if (inter.devices_per_node > 0 && p > inter.devices_per_node &&
      inter.internode_bandwidth > 0.0) {
    const comm::Topology topo(inter);
    popt.inter_node_cost =
        std::max(1.0, topo.group_bandwidth(inter.devices_per_node) /
                          (inter.internode_bandwidth * inter.efficiency));
  }
  PartitionResult part =
      plan_partition(dataset.adjacency, config_.part_mode, popt);
  perm_ = std::move(part.perm);
  partition_ = std::move(part.partition);
  part_mode_used_ = part.mode;

  const bool identity_perm = std::is_sorted(perm_.begin(), perm_.end());
  const sparse::Csr adj = identity_perm
                              ? dataset.adjacency
                              : dataset.adjacency.permute_symmetric(perm_);
  const sparse::Csr a_hat = adj.normalize_gcn();       // Â (eq. (2))
  const sparse::Csr a_hat_t = a_hat.transpose();       // Â^T (forward op)

  forward_planner_ = std::make_unique<Planner>(
      machine_, *comm_, make_tile_grid(a_hat_t, partition_),
      config_.plan_mode, config_.comm_mode);
  backward_planner_ = std::make_unique<Planner>(
      machine_, *comm_, make_tile_grid(a_hat, partition_),
      config_.plan_mode, config_.comm_mode);
  forward_planner_->account_memory();
  backward_planner_->account_memory();
  part_stats_ =
      grid_cut_stats(forward_planner_->grid(), inter.devices_per_node);
}

void MgGcnTrainer::allocate_buffers() {
  const int p = machine_.num_devices();
  const int layers = num_layers();

  // Shared-buffer width: the widest dimension that actually flows through
  // HW / BC1 / BC2. Forward, HW holds the GeMM result (d_out) unless the
  // Â§4.4 order switch runs SpMM first (then d_in); backward, HW holds
  // Z = Ã G' (d_out) unless that layer's backward SpMM is skipped. Getting
  // this tight is what lets MG-GCN fit e.g. Proteins into 4 GPUs (Fig. 10).
  std::int64_t shared_dim = 0;
  for (const auto& plan : plan_) {
    const std::int64_t fwd_dim = plan.spmm_first ? plan.d_in : plan.d_out;
    shared_dim = std::max(shared_dim, fwd_dim);
    if (!plan.skip_backward_spmm) shared_dim = std::max(shared_dim, plan.d_out);
  }
  const std::int64_t max_part = partition_.max_part_size();
  const bool need_bc2 = config_.overlap && p > 1;

  ranks_.clear();
  ranks_.resize(static_cast<std::size_t>(p));
  bc_slot_readers_.assign(static_cast<std::size_t>(p), {});
  for (int r = 0; r < p; ++r) {
    auto& rank = ranks_[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);
    mem::WorkspacePool* pool = pool_ ? &pool_->pool(r) : nullptr;
    const std::int64_t n_r = partition_.size(r);

    // Size/name/order identical across MGGCN_POOL modes — in pooled modes
    // the same requests go through the pool instead, so `off` stays the
    // bit-for-bit parity axis.
    auto alloc = [&](std::int64_t elements, std::string name) {
      return mem::acquire_or_alloc(pool, device,
                                   static_cast<std::size_t>(elements),
                                   std::move(name));
    };

    rank.x = alloc(n_r * dims_.front(), "X");
    rank.outputs.reserve(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
      rank.outputs.push_back(alloc(
          n_r * plan_[static_cast<std::size_t>(l)].d_out,
          "O" + std::to_string(l)));
    }
    rank.hw = alloc(n_r * shared_dim, "HW");
    if (!config_.reuse_buffers) {
      // Eager-framework emulation (§4.2's comparison point): a saved
      // pre-activation and a gradient buffer per layer, never reused —
      // raising the per-layer memory slope from 1 to 3 (Fig. 12).
      for (int l = 0; l < layers; ++l) {
        const std::int64_t d_out = plan_[static_cast<std::size_t>(l)].d_out;
        rank.ballast.push_back(alloc(n_r * d_out, "preact" + std::to_string(l)));
        rank.ballast.push_back(alloc(n_r * d_out, "grad" + std::to_string(l)));
      }
    }
    if (p > 1) {
      rank.bc1 = alloc(max_part * shared_dim, "BC1");
      if (need_bc2) {
        rank.bc2 = alloc(max_part * shared_dim, "BC2");
      }
    }

    for (int l = 0; l < layers; ++l) {
      const auto& plan = plan_[static_cast<std::size_t>(l)];
      const std::int64_t wsize = plan.d_in * plan.d_out;
      rank.w.push_back(alloc(wsize, "W" + std::to_string(l)));
      rank.w_grad.push_back(alloc(wsize, "Wg" + std::to_string(l)));
      rank.adam_m.push_back(alloc(wsize, "m" + std::to_string(l)));
      rank.adam_v.push_back(alloc(wsize, "v" + std::to_string(l)));
    }

    // Recycled blocks may carry previous tenants' completion events; order
    // everything this trainer will enqueue after them (the stream-level
    // equivalent of per-task ready() waits — these buffers live for the
    // whole trainer, so stream granularity costs nothing).
    if (pool != nullptr) {
      auto guard = [&](const mem::PooledBuffer& buf) {
        for (const sim::Event& e : buf.ready()) {
          if (!e.valid()) continue;
          device.compute_stream().wait_event(e);
          device.comm_stream().wait_event(e);
        }
      };
      guard(rank.x);
      for (const auto& b : rank.outputs) guard(b);
      guard(rank.hw);
      for (const auto& b : rank.ballast) guard(b);
      guard(rank.bc1);
      guard(rank.bc2);
      for (const auto& b : rank.w) guard(b);
      for (const auto& b : rank.w_grad) guard(b);
      for (const auto& b : rank.adam_m) guard(b);
      for (const auto& b : rank.adam_v) guard(b);
    }
  }
}

void MgGcnTrainer::upload_inputs(const graph::Dataset& dataset) {
  const int p = machine_.num_devices();
  const auto weights = init_weights(dims_, config_.seed);
  const std::int64_t n = dataset.n();

  // Scatter permuted feature rows, labels, and masks to their owner ranks.
  for (int r = 0; r < p; ++r) {
    auto& rank = ranks_[static_cast<std::size_t>(r)];
    const std::int64_t begin = partition_.begin(r);
    const std::int64_t n_r = partition_.size(r);
    rank.labels.assign(static_cast<std::size_t>(n_r), 0);
    rank.train_mask.assign(static_cast<std::size_t>(n_r), 0);

    for (int l = 0; l < num_layers(); ++l) {
      auto span = rank.w[static_cast<std::size_t>(l)].span();
      if (!span.empty()) {
        dense::copy(weights[static_cast<std::size_t>(l)].data(), span.data(),
                    static_cast<std::int64_t>(span.size()));
      }
    }
    (void)begin;
  }

  if (!dataset.has_features()) return;

  total_train_ = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t g = perm_[static_cast<std::size_t>(v)];
    const int owner = partition_.part_of(g);
    auto& rank = ranks_[static_cast<std::size_t>(owner)];
    const std::int64_t local = g - partition_.begin(owner);

    rank.labels[static_cast<std::size_t>(local)] =
        dataset.labels[static_cast<std::size_t>(v)];
    const std::uint8_t in_train =
        dataset.train_mask[static_cast<std::size_t>(v)];
    rank.train_mask[static_cast<std::size_t>(local)] = in_train;
    total_train_ += in_train;

    auto x = rank.x.span();
    if (!x.empty()) {
      dense::copy(dataset.features.view().row(v),
                  x.data() + local * dims_.front(), dims_.front());
    }
  }
  MGGCN_CHECK_MSG(total_train_ > 0, "dataset has no training vertices");
}

sim::KernelCost MgGcnTrainer::with_overhead(sim::KernelCost cost) const {
  cost.launches = static_cast<int>(
      cost.launches * config_.kernel_overhead_multiplier + 0.5);
  return cost;
}

std::vector<sim::DeviceBuffer*> MgGcnTrainer::buffers_of(
    mem::PooledBuffer RankState::* member) {
  std::vector<sim::DeviceBuffer*> out;
  out.reserve(ranks_.size());
  for (auto& rank : ranks_) out.push_back(&(rank.*member).buffer());
  return out;
}

std::vector<sim::DeviceBuffer*> MgGcnTrainer::layer_buffers(int layer) {
  std::vector<sim::DeviceBuffer*> out;
  out.reserve(ranks_.size());
  for (auto& rank : ranks_) {
    out.push_back(&rank.outputs[static_cast<std::size_t>(layer)].buffer());
  }
  return out;
}

void MgGcnTrainer::enqueue_forward(std::vector<sim::Event>* logits_ready) {
  const int p = machine_.num_devices();
  const auto np = static_cast<std::size_t>(p);
  const bool overlapping = config_.overlap && p > 1;

  // Event per rank marking the availability of the current layer input.
  std::vector<sim::Event> input_ready(np);  // invalid: already available

  for (int l = 0; l < num_layers(); ++l) {
    const auto& plan = plan_[static_cast<std::size_t>(l)];
    std::vector<sim::DeviceBuffer*> layer_in =
        l == 0 ? buffers_of(&RankState::x) : layer_buffers(l - 1);
    std::vector<sim::DeviceBuffer*> layer_out = layer_buffers(l);
    std::vector<sim::Event> next_ready(np);

    if (!plan.spmm_first) {
      // GeMM (HW = X_l * W_l), then distributed SpMM into O_l.
      std::vector<sim::Event> hw_ready(np);
      for (int r = 0; r < p; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        auto& rank = ranks_[rr];
        const std::int64_t n_r = partition_.size(r);

        sim::TaskDesc task;
        task.label = "gemm_hw";
        task.kind = sim::TaskKind::kGeMM;
        task.cost = with_overhead(dense::gemm_cost(n_r, plan.d_out, plan.d_in));
        task.reads.push_back(layer_in[rr]->access());
        task.reads.push_back(rank.w[static_cast<std::size_t>(l)].access());
        task.writes.push_back(rank.hw.access());
        float* in = layer_in[rr]->data();
        float* w = rank.w[static_cast<std::size_t>(l)].data();
        float* hw = rank.hw.data();
        task.body = [in, w, hw, n_r, plan] {
          dense::gemm({in, n_r, plan.d_in}, {w, plan.d_in, plan.d_out},
                      {hw, n_r, plan.d_out});
        };
        hw_ready[rr] =
            machine_.device(r).compute_stream().enqueue(std::move(task));
      }

      DistIo io;
      io.input = buffers_of(&RankState::hw);
      io.output = layer_out;
      io.bc1 = buffers_of(&RankState::bc1);
      io.bc2 = buffers_of(&RankState::bc2);
      io.d = plan.d_out;
      io.input_ready = hw_ready;
      io.overlap = overlapping;
      io.compute_bandwidth_scale = compute_bandwidth_scale_;
      io.slot_readers = &bc_slot_readers_;
      io.traffic_factor = config_.spmm_traffic_factor;
      io.launch_multiplier = config_.kernel_overhead_multiplier;
      DistResult result = forward_planner_->run(io);
      for (int r = 0; r < p; ++r) {
        machine_.device(r).compute_stream().wait_event(
            result.input_released[static_cast<std::size_t>(r)]);
      }
      next_ready = result.done;
    } else {
      // Distributed SpMM on the narrow input (HW = Â^T X_l), then GeMM.
      DistIo io;
      io.input = layer_in;
      io.output = buffers_of(&RankState::hw);
      io.bc1 = buffers_of(&RankState::bc1);
      io.bc2 = buffers_of(&RankState::bc2);
      io.d = plan.d_in;
      io.input_ready = input_ready;
      io.overlap = overlapping;
      io.compute_bandwidth_scale = compute_bandwidth_scale_;
      io.slot_readers = &bc_slot_readers_;
      io.traffic_factor = config_.spmm_traffic_factor;
      io.launch_multiplier = config_.kernel_overhead_multiplier;
      DistResult result = forward_planner_->run(io);
      for (int r = 0; r < p; ++r) {
        machine_.device(r).compute_stream().wait_event(
            result.input_released[static_cast<std::size_t>(r)]);
      }

      for (int r = 0; r < p; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        auto& rank = ranks_[rr];
        const std::int64_t n_r = partition_.size(r);

        sim::TaskDesc task;
        task.label = "gemm_out";
        task.kind = sim::TaskKind::kGeMM;
        task.cost = with_overhead(dense::gemm_cost(n_r, plan.d_out, plan.d_in));
        task.reads.push_back(rank.hw.access());
        task.reads.push_back(rank.w[static_cast<std::size_t>(l)].access());
        task.writes.push_back(layer_out[rr]->access());
        float* hw = rank.hw.data();
        float* w = rank.w[static_cast<std::size_t>(l)].data();
        float* out = layer_out[rr]->data();
        task.body = [hw, w, out, n_r, plan] {
          dense::gemm({hw, n_r, plan.d_in}, {w, plan.d_in, plan.d_out},
                      {out, n_r, plan.d_out});
        };
        next_ready[rr] =
            machine_.device(r).compute_stream().enqueue(std::move(task));
      }
    }

    if (plan.has_relu) {
      for (int r = 0; r < p; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        const std::int64_t count = partition_.size(r) * plan.d_out;

        sim::TaskDesc task;
        task.label = "relu";
        task.kind = sim::TaskKind::kActivation;
        task.cost = with_overhead(dense::elementwise_cost(count, 1, 1));
        task.reads.push_back(layer_out[rr]->access());
        task.writes.push_back(layer_out[rr]->access());
        float* out = layer_out[rr]->data();
        task.body = [out, count] { dense::relu_forward(out, out, count); };
        next_ready[rr] =
            machine_.device(r).compute_stream().enqueue(std::move(task));
      }
    }
    input_ready = std::move(next_ready);
  }

  if (logits_ready != nullptr) *logits_ready = std::move(input_ready);
}

std::vector<sim::Event> MgGcnTrainer::enqueue_loss(
    const std::vector<sim::Event>& ready) {
  const int p = machine_.num_devices();
  const std::int64_t classes = dims_.back();
  std::vector<sim::Event> events(static_cast<std::size_t>(p));

  for (int r = 0; r < p; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    auto& rank = ranks_[rr];
    const std::int64_t n_r = partition_.size(r);

    sim::TaskDesc task;
    task.label = "softmax_xent";
    task.kind = sim::TaskKind::kLoss;
    task.cost = with_overhead(loss_cost(n_r, classes));
    if (!ready.empty() && ready[rr].valid()) task.waits.push_back(ready[rr]);
    task.reads.push_back(rank.outputs.back().access());
    task.writes.push_back(rank.outputs.back().access());

    float* logits = rank.outputs.back().data();
    const std::int32_t* labels = rank.labels.data();
    const std::uint8_t* mask = rank.train_mask.data();
    const std::int64_t total_train = std::max<std::int64_t>(total_train_, 1);
    LossResult* slot = &rank_loss_[rr];
    task.body = [logits, labels, mask, n_r, classes, total_train, slot] {
      *slot = softmax_cross_entropy_inplace({logits, n_r, classes}, labels,
                                            mask, total_train);
    };
    events[rr] = machine_.device(r).compute_stream().enqueue(std::move(task));
  }
  return events;
}

void MgGcnTrainer::enqueue_backward(std::vector<sim::Event> grad_ready) {
  const int p = machine_.num_devices();
  const auto np = static_cast<std::size_t>(p);
  const bool overlapping = config_.overlap && p > 1;
  const int layers = num_layers();

  // Deferred Adam steps: (layer, per-rank allreduce events). The paper
  // reduces W gradients "at the end of every epoch" so the reductions
  // overlap the remaining backward layers.
  std::vector<std::pair<int, std::vector<sim::Event>>> pending_adam;

  for (int l = layers - 1; l >= 0; --l) {
    const auto& plan = plan_[static_cast<std::size_t>(l)];
    // Gradient carousel (§4.2, eq. (21)): the gradient w.r.t. O_l lives in
    // O_l itself — the loss writes it there for the top layer, and each
    // layer's fused masked H_G GeMM writes it there for the layer below.
    std::vector<sim::DeviceBuffer*> grad_buf = layer_buffers(l);
    std::vector<sim::DeviceBuffer*> layer_in =
        l == 0 ? buffers_of(&RankState::x) : layer_buffers(l - 1);

    // (1) Backward SpMM Z = Â * G' (eq. (9)) into the shared HW buffer —
    // or §4.4's first-layer skip: use G' directly.
    std::vector<sim::DeviceBuffer*> z_buf;
    if (!plan.skip_backward_spmm) {
      DistIo io;
      io.input = grad_buf;
      io.output = buffers_of(&RankState::hw);
      io.bc1 = buffers_of(&RankState::bc1);
      io.bc2 = buffers_of(&RankState::bc2);
      io.d = plan.d_out;
      io.input_ready = grad_ready;
      io.overlap = overlapping;
      io.compute_bandwidth_scale = compute_bandwidth_scale_;
      io.slot_readers = &bc_slot_readers_;
      io.traffic_factor = config_.spmm_traffic_factor;
      io.launch_multiplier = config_.kernel_overhead_multiplier;
      DistResult result = backward_planner_->run(io);
      for (int r = 0; r < p; ++r) {
        machine_.device(r).compute_stream().wait_event(
            result.input_released[static_cast<std::size_t>(r)]);
      }
      z_buf = buffers_of(&RankState::hw);
      grad_ready = result.done;
    } else {
      z_buf = grad_buf;
    }

    // (2) Weight gradient W_G = X_l^T Z (eq. (10)), local partial.
    std::vector<sim::Event> wg_partial(np);
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      auto& rank = ranks_[rr];
      const std::int64_t n_r = partition_.size(r);

      sim::TaskDesc task;
      task.label = "gemm_wgrad";
      task.kind = sim::TaskKind::kGeMM;
      task.cost = with_overhead(dense::gemm_cost(plan.d_in, plan.d_out, n_r));
      if (plan.skip_backward_spmm && grad_ready[rr].valid()) {
        task.waits.push_back(grad_ready[rr]);
      }
      task.reads.push_back(layer_in[rr]->access());
      task.reads.push_back(z_buf[rr]->access());
      task.writes.push_back(rank.w_grad[static_cast<std::size_t>(l)].access());
      const float* x = layer_in[rr]->data();
      const float* z = z_buf[rr]->data();
      float* wg = rank.w_grad[static_cast<std::size_t>(l)].data();
      task.body = [x, z, wg, n_r, plan] {
        dense::gemm_at_b({x, n_r, plan.d_in}, {z, n_r, plan.d_out},
                         {wg, plan.d_in, plan.d_out});
      };
      wg_partial[rr] =
          machine_.device(r).compute_stream().enqueue(std::move(task));
    }

    // (3) Allreduce of W_G across ranks (the only replicated tensor).
    std::vector<comm::RankPart> parts(np);
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      parts[rr].buffer = &ranks_[rr].w_grad[static_cast<std::size_t>(l)].buffer();
      parts[rr].waits.push_back(wg_partial[rr]);
    }
    std::vector<sim::Event> reduced = comm_->allreduce_sum(
        std::move(parts), static_cast<std::size_t>(plan.d_in * plan.d_out));
    pending_adam.emplace_back(l, std::move(reduced));

    // (4) Input gradient H_G = Z * W^T (eq. (11)) fused with the ReLU mask
    // of layer l-1 (eq. (8)), written in place into O_{l-1}: the buffer
    // holds the downstream activation on entry and the masked gradient on
    // exit — the paper's eq. (21) hand-off without extra allocation.
    // Skipped for the first layer.
    if (l > 0) {
      MGGCN_CHECK(!plan.skip_backward_spmm);
      std::vector<sim::Event> next_grad(np);
      for (int r = 0; r < p; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        auto& rank = ranks_[rr];
        const std::int64_t n_r = partition_.size(r);

        sim::TaskDesc task;
        task.label = "gemm_hgrad_masked";
        task.kind = sim::TaskKind::kGeMM;
        task.cost = with_overhead(dense::gemm_cost(n_r, plan.d_in, plan.d_out));
        task.cost += dense::elementwise_cost(n_r * plan.d_in, 1, 0);
        task.reads.push_back(z_buf[rr]->access());
        task.reads.push_back(rank.w[static_cast<std::size_t>(l)].access());
        // In-place hand-off (eq. (21)): O_{l-1} is both the activation read
        // by the ReLU mask and the gradient written.
        task.reads.push_back(layer_in[rr]->access());
        task.writes.push_back(layer_in[rr]->access());
        const float* z = z_buf[rr]->data();
        const float* w = rank.w[static_cast<std::size_t>(l)].data();
        float* out = layer_in[rr]->data();  // O_{l-1}: activation -> gradient
        task.body = [z, w, out, n_r, plan] {
          dense::gemm_a_bt_relu_masked({z, n_r, plan.d_out},
                                       {w, plan.d_in, plan.d_out},
                                       {out, n_r, plan.d_in});
        };
        next_grad[rr] =
            machine_.device(r).compute_stream().enqueue(std::move(task));
      }
      grad_ready = std::move(next_grad);
    }
  }

  // (6) Adam steps — one per layer per rank, gated on the allreduce.
  ++adam_step_;
  for (auto& [l, reduced] : pending_adam) {
    const auto& plan = plan_[static_cast<std::size_t>(l)];
    const std::int64_t count = plan.d_in * plan.d_out;
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      auto& rank = ranks_[rr];

      sim::TaskDesc task;
      task.label = "adam";
      task.kind = sim::TaskKind::kOptimizer;
      task.cost = with_overhead(adam_cost(count));
      task.waits.push_back(reduced[rr]);
      task.reads.push_back(rank.w_grad[static_cast<std::size_t>(l)].access());
      for (auto* buf : {&rank.w[static_cast<std::size_t>(l)],
                        &rank.adam_m[static_cast<std::size_t>(l)],
                        &rank.adam_v[static_cast<std::size_t>(l)]}) {
        task.reads.push_back(buf->access());
        task.writes.push_back(buf->access());
      }
      float* w = rank.w[static_cast<std::size_t>(l)].data();
      const float* g = rank.w_grad[static_cast<std::size_t>(l)].data();
      float* m = rank.adam_m[static_cast<std::size_t>(l)].data();
      float* v = rank.adam_v[static_cast<std::size_t>(l)].data();
      const int step = adam_step_;
      const TrainConfig cfg = config_;
      task.body = [w, g, m, v, count, step, cfg] {
        adam_update(w, g, m, v, count, step, cfg.learning_rate, cfg.beta1,
                    cfg.beta2, cfg.epsilon);
      };
      machine_.device(r).compute_stream().enqueue(std::move(task));
    }
  }
}

EpochStats MgGcnTrainer::train_epoch() {
  const double mark = machine_.align_clocks();
  const sim::CommVolume volume_mark = machine_.trace().comm_volume();
  const sim::PlanCounters plan_mark = machine_.trace().plan_counters();
  const sim::PoolCounters pool_mark = machine_.trace().pool_counters();
  machine_.begin_epoch(epoch_);
  rank_loss_.assign(ranks_.size(), LossResult{});

  std::vector<sim::Event> logits_ready;
  enqueue_forward(&logits_ready);
  std::vector<sim::Event> grad_ready = enqueue_loss(logits_ready);
  enqueue_backward(std::move(grad_ready));
  machine_.synchronize();

  EpochStats stats;
  stats.epoch = epoch_++;
  stats.sim_seconds = machine_.sim_time() - mark;
  stats.busy_by_kind = machine_.trace().busy_by_kind(mark);
  stats.peak_memory_bytes = machine_.max_memory_peak();
  stats.comm_retries = static_cast<int>(machine_.trace().fault_count(
      sim::FaultEventKind::kCommRetry, stats.epoch));
  const sim::CommVolume volume = machine_.trace().comm_volume();
  stats.comm_wire_bytes = volume.wire_bytes - volume_mark.wire_bytes;
  stats.comm_wire_bytes_inter =
      volume.wire_bytes_inter - volume_mark.wire_bytes_inter;
  stats.comm_bytes_saved =
      volume.bytes_saved() - volume_mark.bytes_saved();
  stats.comm_packs = volume.packs - volume_mark.packs;
  stats.comm_compact_stages =
      static_cast<int>(volume.compact_stages - volume_mark.compact_stages);
  stats.comm_dense_stages =
      static_cast<int>(volume.dense_stages - volume_mark.dense_stages);
  const sim::PlanCounters plans = machine_.trace().plan_counters();
  stats.plan_products_1d =
      static_cast<int>(plans.products_1d - plan_mark.products_1d);
  stats.plan_products_15d =
      static_cast<int>(plans.products_15d - plan_mark.products_15d);
  stats.plan_products_replicated = static_cast<int>(
      plans.products_replicated - plan_mark.products_replicated);
  stats.plan_decisions =
      static_cast<int>(plans.decisions - plan_mark.decisions);
  stats.plan_fallbacks =
      static_cast<int>(plans.fallbacks - plan_mark.fallbacks);
  const sim::PoolCounters pool = machine_.trace().pool_counters();
  stats.pool_peak_bytes = pool.reserved_peak_bytes;  // absolute high-water
  stats.pool_reuse_hits = pool.reuse_hits - pool_mark.reuse_hits;
  stats.pool_fragmentation = pool.fragmentation_peak;
  stats.part_cut_edges = part_stats_.cut_edges;
  stats.part_inter_node_cut_edges = part_stats_.inter_node_cut_edges;
  stats.part_ghost_rows = part_stats_.ghost_rows;
  stats.part_inter_node_ghost_rows = part_stats_.inter_node_ghost_rows;
  stats.part_avg_ghost_density = part_stats_.avg_ghost_density;
  stats.part_imbalance = part_stats_.imbalance;
  double loss = 0.0;
  std::int64_t correct = 0;
  std::int64_t counted = 0;
  for (const LossResult& local : rank_loss_) {
    loss += local.loss_sum;
    correct += local.correct;
    counted += local.counted;
  }
  stats.loss = loss;
  stats.train_accuracy =
      counted > 0 ? static_cast<double>(correct) / counted : 0.0;
  return stats;
}

std::vector<EpochStats> MgGcnTrainer::train(int epochs) {
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

void MgGcnTrainer::run_forward() {
  enqueue_forward(nullptr);
  machine_.synchronize();
}

dense::HostMatrix MgGcnTrainer::gather_logits() const {
  const std::int64_t n = partition_.total();
  const std::int64_t classes = dims_.back();
  dense::HostMatrix logits(n, classes);
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t g = perm_[static_cast<std::size_t>(v)];
    const int owner = partition_.part_of(g);
    const std::int64_t local = g - partition_.begin(owner);
    const auto span =
        ranks_[static_cast<std::size_t>(owner)].outputs.back().span();
    MGGCN_CHECK_MSG(!span.empty(), "gather_logits requires real mode");
    dense::copy(span.data() + local * classes, logits.view().row(v), classes);
  }
  return logits;
}

dense::HostMatrix MgGcnTrainer::gather_activations(int layer) const {
  MGGCN_CHECK_MSG(layer >= -1 && layer < num_layers(),
                  "gather_activations: layer out of range");
  const std::int64_t d = dims_[static_cast<std::size_t>(layer + 1)];
  dense::HostMatrix out(partition_.total(), d);
  for (int r = 0; r < partition_.parts(); ++r) {
    const auto& rank = ranks_[static_cast<std::size_t>(r)];
    const auto span = layer == -1
                          ? rank.x.span()
                          : rank.outputs[static_cast<std::size_t>(layer)].span();
    MGGCN_CHECK_MSG(!span.empty(), "gather_activations requires real mode");
    dense::copy(span.data(), out.view().row(partition_.begin(r)),
                partition_.size(r) * d);
  }
  return out;
}

Checkpoint MgGcnTrainer::checkpoint() {
  machine_.synchronize();
  Checkpoint snapshot;
  snapshot.adam_step = adam_step_;
  const auto& rank0 = ranks_.front();
  for (int l = 0; l < num_layers(); ++l) {
    const auto& plan = plan_[static_cast<std::size_t>(l)];
    auto pull = [&](const mem::PooledBuffer& buffer) {
      const auto span = buffer.span();
      MGGCN_CHECK_MSG(!span.empty(), "checkpointing requires real mode");
      dense::HostMatrix m(plan.d_in, plan.d_out);
      dense::copy(span.data(), m.data(), m.size());
      return m;
    };
    snapshot.weights.push_back(pull(rank0.w[static_cast<std::size_t>(l)]));
    snapshot.adam_m.push_back(pull(rank0.adam_m[static_cast<std::size_t>(l)]));
    snapshot.adam_v.push_back(pull(rank0.adam_v[static_cast<std::size_t>(l)]));
  }
  return snapshot;
}

void MgGcnTrainer::restore(const Checkpoint& snapshot) {
  MGGCN_CHECK_MSG(static_cast<int>(snapshot.num_layers()) == num_layers(),
                  "checkpoint layer count mismatch");
  machine_.synchronize();
  adam_step_ = snapshot.adam_step;
  // One Adam step per epoch, so the snapshot's step count is also the
  // epoch to resume from — keeping the fault plan's epoch clock aligned
  // across recoveries.
  epoch_ = snapshot.adam_step;
  for (auto& rank : ranks_) {
    for (int l = 0; l < num_layers(); ++l) {
      const auto ll = static_cast<std::size_t>(l);
      const auto& plan = plan_[ll];
      MGGCN_CHECK_MSG(snapshot.weights[ll].rows() == plan.d_in &&
                          snapshot.weights[ll].cols() == plan.d_out,
                      "checkpoint shape mismatch");
      auto push = [&](const dense::HostMatrix& m, mem::PooledBuffer& buffer) {
        auto span = buffer.span();
        MGGCN_CHECK_MSG(!span.empty(), "restore requires real mode");
        dense::copy(m.data(), span.data(), m.size());
      };
      push(snapshot.weights[ll], rank.w[ll]);
      push(snapshot.adam_m[ll], rank.adam_m[ll]);
      push(snapshot.adam_v[ll], rank.adam_v[ll]);
    }
  }
}

double MgGcnTrainer::tile_imbalance() const {
  return forward_planner_->grid().imbalance();
}

std::uint64_t MgGcnTrainer::peak_memory_bytes() const {
  return machine_.max_memory_peak();
}

}  // namespace mggcn::core
