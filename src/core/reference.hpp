// Serial single-address-space reference GCN trainer.
//
// Implements eqs. (2)-(11) directly on host matrices with no partitioning,
// streams, or buffer reuse. It is the "golden model" the distributed
// trainer's tests compare against — the same role DGL's accuracy curve plays
// in the paper's validation (§6). It honours the same optional §4.4
// first-layer-skip flag so both trainers compute the same gradients.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "dense/matrix.hpp"
#include "graph/datasets.hpp"
#include "sparse/csr.hpp"

namespace mggcn::core {

class ReferenceTrainer {
 public:
  ReferenceTrainer(const graph::Dataset& dataset, TrainConfig config);

  struct EpochResult {
    double loss = 0.0;
    double train_accuracy = 0.0;
  };

  /// One full-batch epoch; returns train loss/accuracy.
  EpochResult train_epoch();

  /// Forward pass only; returns logits (n x classes).
  [[nodiscard]] dense::HostMatrix forward() const;

  [[nodiscard]] const std::vector<dense::HostMatrix>& weights() const {
    return weights_;
  }

 private:
  const graph::Dataset& dataset_;
  TrainConfig config_;
  std::vector<std::int64_t> dims_;

  sparse::Csr a_hat_;    // Â
  sparse::Csr a_hat_t_;  // Â^T

  std::vector<dense::HostMatrix> weights_;
  std::vector<dense::HostMatrix> adam_m_, adam_v_;
  int adam_step_ = 0;
  std::int64_t total_train_ = 0;
};

}  // namespace mggcn::core
