// Locality-aware 1D partitioner (the alternative to §5.2's random
// permutation).
//
// MG-GCN balances nnz by randomly permuting vertices, which destroys
// whatever community structure the graph had and densifies every
// off-diagonal tile's ghost set. plan_partition() instead computes a
// vertex *reordering* plus cut points that minimize the edge cut under a
// configurable balance slack, using the classic multi-level scheme
// (pure C++, no METIS):
//
//   coarsen:  heavy-edge matching until the graph is small,
//   initial:  greedy graph growing on the coarsest level,
//   refine:   balance-constrained label-propagation sweeps at every level
//             while uncoarsening, plus a final balance-repair pass.
//
// The hierarchical mode runs the same pipeline twice for multi-node
// machines: first across nodes (minimizing the expensive inter-node cut),
// then across the devices inside each node — parts stay grouped
// node-contiguously so rank r lives on node r / devices_per_node, exactly
// the mapping comm::Communicator::node_of uses to price the exchange.
//
// Everything downstream consumes the result through the existing
// (perm, PartitionVector) contract: perm relabels the adjacency
// symmetrically (new id = perm[old id]), the partition's cut points fall
// on part boundaries of the reordering, and part k's vertices keep their
// original relative order (deterministic, and cache-friendly within a
// block).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/part_mode.hpp"
#include "core/partition.hpp"
#include "sparse/csr.hpp"

namespace mggcn::core {

struct PartitionerOptions {
  /// Number of parts (devices).
  int parts = 1;
  /// Balance slack: each part's vertex weight (degree + 1, the tile-row
  /// nnz proxy) may exceed the mean by at most this factor.
  double slack = 1.15;
  /// Devices per node of the target machine; > 0 and < parts enables the
  /// hierarchical mode and splits the cut statistics into intra-/inter-node.
  int devices_per_node = 0;
  /// kRandom only: permute (the paper's §5.2 behaviour) or keep the
  /// natural order. Mirrors TrainConfig::permute.
  bool permute_random = true;
  /// kAuto only: relative cost of an inter-node ghost row vs an intra-node
  /// one (the NVLink/NIC bandwidth ratio); >= 1.
  double inter_node_cost = 1.0;
  /// Seeds the permutation (kRandom) and the coarsening/refinement visit
  /// orders; same seed => bit-identical result.
  std::uint64_t seed = 1;
  /// Label-propagation sweeps per level.
  int refine_sweeps = 6;
};

struct PartitionResult {
  /// original vertex id -> new vertex id (the trainer's perm_ convention).
  std::vector<std::uint32_t> perm;
  /// Cut points in the new order.
  PartitionVector partition;
  /// The mode that actually produced the result (kAuto resolves to its
  /// winning candidate, kHier on a single node resolves to kLocality).
  PartMode mode = PartMode::kRandom;
};

/// Cut quality of a (perm, partition) pair — the quantities the comm cost
/// model prices. ghost_rows is the total compacted-exchange row count:
/// summed over off-diagonal tiles (r, s), the number of distinct columns of
/// part s that part r's rows touch (== SpmmPlan::ghost_count of that tile).
struct PartitionCutStats {
  std::int64_t cut_edges = 0;             // nnz in off-diagonal tiles
  std::int64_t inter_node_cut_edges = 0;  // ... whose parts sit on
                                          // different nodes
  std::int64_t ghost_rows = 0;
  std::int64_t inter_node_ghost_rows = 0;
  /// Mean over off-diagonal tiles (r, s) of ghost(r, s) / |part s|: 1.0 is
  /// a fully dense exchange (compaction saves nothing), 0.0 is no exchange.
  double avg_ghost_density = 0.0;
  /// max over parts of row-nnz / mean row-nnz (Fig. 6's quantity).
  double imbalance = 1.0;
};

/// Computes the reordering + cut points for `mode` over a symmetric
/// adjacency matrix (raw, pre-normalization). parts == 1 or an empty graph
/// yields the identity. kAuto prices the random candidate against the
/// locality/hier candidate with the actual ghost-row volumes (inter-node
/// rows weighted by options.inter_node_cost) and returns the cheaper one.
[[nodiscard]] PartitionResult plan_partition(const sparse::Csr& adjacency,
                                             PartMode mode,
                                             const PartitionerOptions& options);

/// Cut statistics of (perm, partition) measured against `adjacency`
/// (original vertex order; perm maps original -> new ids).
[[nodiscard]] PartitionCutStats partition_cut_stats(
    const sparse::Csr& adjacency, std::span<const std::uint32_t> perm,
    const PartitionVector& partition, int devices_per_node);

/// The same statistics recounted from an already-built tile grid (the
/// inspector's view of the reordered operator). Deliberately does not call
/// TileGrid::plan(), so the one-time kInspect charge stays with DistSpmm.
[[nodiscard]] PartitionCutStats grid_cut_stats(const TileGrid& grid,
                                               int devices_per_node);

}  // namespace mggcn::core
