// The shared contract of the distributed SpMM executors.
//
// A distributed product computes, for the 1D-partitioned operator A and a
// row-distributed dense matrix H, the row-distributed C = A * H. Three
// executors implement this contract (see core/plan_mode.hpp for the
// strategy registry and core/planner.hpp for the chooser):
//
//   - DistSpmm           (1D staged broadcast, §4.1; dense/compact exchange)
//   - DistSpmm15DChained (order-preserving 1.5D, c = 2)
//   - ReplicatedSpmm     (allgather the whole H, one fused local SpMM)
//
// plus DistSpmm15D, the paper's §5.1 partial-sum 1.5D algorithm, which
// shares the Io/Result shapes (so benches can swap it in) but is NOT
// bit-identical to the others — its pair allreduce sums the two halves of
// each output row in one step instead of chaining them in stage order, so
// it stays a standalone ablation subject rather than a Planner candidate.
//
// Every Planner-selectable executor accumulates each output element in
// ascending global column order — the 1D stage order — which is what makes
// trainer losses bit-identical across strategies (fp addition is not
// associative; only the ORDER is contractual, not the partitioning of the
// work).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/device.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

/// One distributed product's inputs. Field semantics follow the 1D staged
/// broadcast (the common denominator); executors that need less simply
/// ignore fields (e.g. bc2 without overlap support).
struct DistIo {
  /// Per-rank dense input blocks (part_size(r) x d each).
  std::vector<sim::DeviceBuffer*> input;
  /// Per-rank outputs (part_size(r) x d); overwritten (beta = 0).
  std::vector<sim::DeviceBuffer*> output;
  /// Per-rank broadcast buffers (max_part_size x d capacity).
  std::vector<sim::DeviceBuffer*> bc1;
  /// Second broadcast buffer; required iff overlap (1D executor only).
  std::vector<sim::DeviceBuffer*> bc2;
  /// Dense width.
  std::int64_t d = 0;
  /// Per-rank events that must complete before that rank's input block
  /// may be read (i.e. before its broadcast stage).
  std::vector<sim::Event> input_ready;

  bool overlap = false;
  /// HBM bandwidth share for SpMM kernels while overlapped. The matching
  /// comm-side dilation is configured on the Communicator
  /// (CommOptions::duration_scale).
  double compute_bandwidth_scale = 1.0;
  /// Baseline-emulation: multiplies SpMM memory traffic and the kernel
  /// launch count (see TrainConfig).
  double traffic_factor = 1.0;
  double launch_multiplier = 1.0;

  /// Per-rank, per-slot events of the last SpMM that READ each broadcast
  /// buffer ([rank][0] = BC1, [rank][1] = BC2). The buffers outlive any
  /// single staged product (they are shared across layers and between the
  /// forward and backward operators, §4.2), so this write-after-read
  /// hazard state must too: it is owned by the caller and updated here.
  std::vector<std::array<sim::Event, 2>>* slot_readers = nullptr;
};

/// Contract: done[r] must be an event ORDERED WITH rank r's compute
/// stream (on it, or fenced onto it) — the trainer enqueues downstream
/// consumers of the output block on that stream with no explicit waits,
/// exactly as the 1D executor's same-stream schedule allows.
struct DistResult {
  /// Per-rank completion of the rank's output block.
  std::vector<sim::Event> done;
  /// Per-rank release of the rank's *input* block (every reader of it has
  /// finished; the buffer may be overwritten).
  std::vector<sim::Event> input_released;
};

class DistExecutor {
 public:
  virtual ~DistExecutor() = default;

  /// Enqueues the whole distributed product; returns immediately.
  virtual DistResult run(const DistIo& io) = 0;
};

}  // namespace mggcn::core
