#include "core/reference.hpp"

#include "core/gcn_kernels.hpp"
#include "core/trainer.hpp"
#include "dense/kernels.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

ReferenceTrainer::ReferenceTrainer(const graph::Dataset& dataset,
                                   TrainConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  MGGCN_CHECK_MSG(dataset.has_features(),
                  "reference trainer needs a real-feature dataset");
  dims_ = layer_dims(dataset, config_);
  a_hat_ = dataset.adjacency.normalize_gcn();
  a_hat_t_ = a_hat_.transpose();
  weights_ = init_weights(dims_, config_.seed);
  for (const auto& w : weights_) {
    adam_m_.emplace_back(w.rows(), w.cols());
    adam_v_.emplace_back(w.rows(), w.cols());
  }
  for (const auto m : dataset.train_mask) total_train_ += m;
  MGGCN_CHECK(total_train_ > 0);
}

dense::HostMatrix ReferenceTrainer::forward() const {
  const std::int64_t n = dataset_.n();
  dense::HostMatrix h = dataset_.features;  // copy of X
  for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
    const std::int64_t d_out = dims_[l + 1];
    dense::HostMatrix hw(n, d_out);
    dense::gemm(h.view(), weights_[l].view(), hw.view());
    dense::HostMatrix out(n, d_out);
    sparse::spmm(a_hat_t_, hw.view(), out.view());
    if (l + 2 < dims_.size()) {
      dense::relu_forward(out.data(), out.data(), out.size());
    }
    h = std::move(out);
  }
  return h;
}

ReferenceTrainer::EpochResult ReferenceTrainer::train_epoch() {
  const std::int64_t n = dataset_.n();
  const std::size_t layers = dims_.size() - 1;

  // Forward pass keeping the post-activation of every layer (the reference
  // trainer is deliberately unoptimized: per-op allocations, like the
  // frameworks the paper compares against).
  std::vector<dense::HostMatrix> activations;  // act[l] = output of layer l
  activations.reserve(layers);
  const dense::HostMatrix* input = &dataset_.features;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::int64_t d_out = dims_[l + 1];
    dense::HostMatrix hw(n, d_out);
    dense::gemm(input->view(), weights_[l].view(), hw.view());
    dense::HostMatrix out(n, d_out);
    sparse::spmm(a_hat_t_, hw.view(), out.view());
    if (l + 1 < layers) {
      dense::relu_forward(out.data(), out.data(), out.size());
    }
    activations.push_back(std::move(out));
    input = &activations.back();
  }

  // Loss + gradient (in place on the logits, like the device pipeline).
  EpochResult result;
  dense::HostMatrix& logits = activations.back();
  const LossResult loss = softmax_cross_entropy_inplace(
      logits.view(), dataset_.labels.data(), dataset_.train_mask.data(),
      total_train_);
  result.loss = loss.loss_sum;
  result.train_accuracy =
      loss.counted > 0 ? static_cast<double>(loss.correct) / loss.counted
                       : 0.0;

  // Backward pass.
  ++adam_step_;
  dense::HostMatrix grad = std::move(activations.back());  // dL/dO_{L-1}
  for (std::size_t l = layers; l-- > 0;) {
    const std::int64_t d_in = dims_[l];
    const std::int64_t d_out = dims_[l + 1];
    const dense::HostMatrix& x =
        l == 0 ? dataset_.features : activations[l - 1];

    if (l + 1 < layers) {
      // ReLU mask from this layer's stored activation.
      dense::relu_backward(grad.data(), activations[l].data(), grad.data(),
                           grad.size());
    }

    const bool skip = l == 0 && config_.skip_first_backward_spmm &&
                      !config_.input_grad_needed;
    dense::HostMatrix z;
    if (!skip) {
      z = dense::HostMatrix(n, d_out);
      sparse::spmm(a_hat_, grad.view(), z.view());
    } else {
      z = std::move(grad);
    }

    dense::HostMatrix w_grad(d_in, d_out);
    dense::gemm_at_b(x.view(), z.view(), w_grad.view());

    if (!skip && l > 0) {
      dense::HostMatrix next_grad(n, d_in);
      dense::gemm_a_bt(z.view(), weights_[l].view(), next_grad.view());
      grad = std::move(next_grad);
    }

    adam_update(weights_[l].data(), w_grad.data(), adam_m_[l].data(),
                adam_v_[l].data(), w_grad.size(), adam_step_,
                config_.learning_rate, config_.beta1, config_.beta2,
                config_.epsilon);
  }
  return result;
}

}  // namespace mggcn::core
