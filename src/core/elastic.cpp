#include "core/elastic.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace mggcn::core {

ElasticTrainer::ElasticTrainer(sim::MachineProfile profile, int num_devices,
                               const graph::Dataset& dataset,
                               TrainConfig config,
                               std::shared_ptr<sim::FaultPlan> fault_plan,
                               ElasticOptions options)
    : dataset_(dataset),
      profile_(std::move(profile)),
      config_(std::move(config)),
      options_(std::move(options)),
      plan_(std::move(fault_plan)) {
  MGGCN_CHECK_MSG(options_.checkpoint_interval > 0,
                  "checkpoint interval must be positive");
  MGGCN_CHECK_MSG(options_.min_devices >= 1, "min_devices must be >= 1");
  rebuild(num_devices);
}

ElasticTrainer::~ElasticTrainer() = default;

void ElasticTrainer::rebuild(int devices) {
  trainer_.reset();  // drains the old machine's streams before teardown
  machine_.reset();
  machine_ = std::make_unique<sim::Machine>(profile_, devices,
                                            sim::ExecutionMode::kReal);
  machine_->set_fault_plan(plan_);
  // MgGcnTrainer construction is the conformal repartition: the 1D
  // partition vector, both Â tilings, the L+3 buffer plan, and the
  // feature/label scatter are all rebuilt for the new device count.
  trainer_ = std::make_unique<MgGcnTrainer>(*machine_, dataset_, config_);
}

void ElasticTrainer::snapshot_if_due() {
  const int epoch = trainer_->epoch();
  if (have_snapshot_ && epoch - snapshot_epoch_ < options_.checkpoint_interval)
    return;
  snapshot_ = trainer_->checkpoint();
  snapshot_epoch_ = epoch;
  have_snapshot_ = true;
  if (!options_.checkpoint_path.empty()) {
    save_checkpoint(snapshot_, options_.checkpoint_path);
  }
}

EpochStats ElasticTrainer::train_epoch() {
  snapshot_if_due();
  int comm_attempts = 0;
  for (;;) {
    try {
      return trainer_->train_epoch();
    } catch (const DeviceLostError& err) {
      comm_attempts = 0;
      recover(/*lost_device=*/true, err.what());
    } catch (const CommError& err) {
      if (++comm_attempts >= options_.max_epoch_attempts) throw;
      recover(/*lost_device=*/false, err.what());
    }
  }
}

std::vector<EpochStats> ElasticTrainer::train(int epochs) {
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

namespace {

/// Devices the machine has marked lost so far (coinciding kill events are
/// all consumed by one Machine::begin_epoch, so a single DeviceLostError
/// can stand for several failed ranks).
int failed_devices(sim::Machine& machine) {
  int failed = 0;
  for (int r = 0; r < machine.num_devices(); ++r) {
    if (machine.device(r).is_failed()) ++failed;
  }
  return failed;
}

}  // namespace

void ElasticTrainer::recover(bool lost_device, const std::string& cause) {
  MGGCN_CHECK_MSG(have_snapshot_, "recovery before the first snapshot");
  const int target_epoch = trainer_->epoch();
  const int devices_before = machine_->num_devices();
  int devices =
      devices_before -
      (lost_device ? std::max(1, failed_devices(*machine_)) : 0);
  bool rebuild_needed = lost_device;

  for (;;) {
    if (devices < options_.min_devices) {
      throw Error("elastic recovery impossible: " +
                  std::to_string(devices) + " surviving device(s), need " +
                  std::to_string(options_.min_devices) + " (" + cause + ")");
    }
    // Drain whatever the aborted epoch managed to enqueue; already-running
    // tasks and complete collectives retire normally, so this cannot hang.
    machine_->synchronize();
    if (rebuild_needed) {
      sim_base_ += machine_->sim_time();
      rebuild(devices);
    }
    trainer_->restore(snapshot_);

    int replayed = 0;
    try {
      while (trainer_->epoch() < target_epoch) {
        trainer_->train_epoch();
        ++replayed;
      }
    } catch (const DeviceLostError&) {
      // More ranks died during replay: shrink by however many were lost.
      devices -= std::max(1, failed_devices(*machine_));
      rebuild_needed = true;
      continue;
    } catch (const CommError&) {
      // Replay burned more of the transient budget; rewind once more. The
      // budget is finite and strictly consumed, so this terminates.
      rebuild_needed = false;
      continue;
    }

    RecoveryEvent event;
    event.epoch = target_epoch;
    event.devices_before = devices_before;
    event.devices_after = devices;
    event.replayed_epochs = replayed;
    event.cause = cause;
    recoveries_.push_back(event);
    machine_->trace().record_fault(sim::FaultRecord{
        .kind = sim::FaultEventKind::kRecovery,
        .epoch = target_epoch,
        .device = -1,
        .value = static_cast<double>(replayed),
        .detail = "recovered onto " + std::to_string(devices) +
                  " device(s) from epoch-" + std::to_string(snapshot_epoch_) +
                  " snapshot: " + cause,
    });
    MGGCN_LOG(kInfo) << "elastic recovery at epoch " << target_epoch << ": "
                    << devices_before << " -> " << devices << " devices, "
                    << replayed << " epoch(s) replayed";
    return;
  }
}

double ElasticTrainer::total_sim_seconds() const {
  return sim_base_ + machine_->sim_time();
}

}  // namespace mggcn::core
