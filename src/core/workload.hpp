// Open-loop serving workload generator.
//
// Serving is evaluated under *open-loop* load: requests arrive on the
// simulated clock at times drawn from a seeded arrival process, independent
// of how fast the server drains them — so queueing delay shows up in the
// latency distribution instead of silently throttling the offered rate
// (closed-loop coordination omission). Two arrival processes:
//
//   - kPoisson: exponential inter-arrivals at `rate_qps`.
//   - kBursty:  a square-wave modulated Poisson process — a fraction
//               `burst_fraction` of each `burst_period` runs at
//               `burst_factor` times the base rate (the off-phase rate is
//               scaled down so the long-run mean stays `rate_qps`).
//
// Query vertices are drawn uniformly or from a Zipf(theta) popularity
// distribution over a deterministically shuffled vertex ranking (so "hot"
// vertices are spread across the id space and hence across partitions,
// instead of all landing on rank 0).
//
// The generator can also emit simulated *graph-update* events (feature
// refreshes touching `update_touch` random vertices at `update_rate` events
// per second). Updates are timing-only: the serving tier evicts the touched
// rows from its embedding cache and charges the bookkeeping, but the
// underlying values never change — predictions stay bit-identical to the
// trainer's forward pass.
//
// Everything is a pure function of (options, seed): the same options
// reproduce the same trace across runs, machines, and scheduling fuzz.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mggcn::serve {

enum class ArrivalProcess { kPoisson, kBursty };
enum class QuerySkew { kUniform, kZipf };

struct WorkloadOptions {
  /// Long-run mean arrival rate, requests per simulated second.
  double rate_qps = 10000.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// kBursty: rate multiplier during the on-phase.
  double burst_factor = 4.0;
  /// kBursty: fraction of each period spent in the on-phase, in (0, 1).
  double burst_fraction = 0.25;
  /// kBursty: period of the square wave, simulated seconds.
  double burst_period = 10e-3;

  QuerySkew skew = QuerySkew::kUniform;
  /// kZipf: popularity exponent (rank r drawn with weight 1/r^theta).
  double zipf_theta = 0.99;

  /// Per-request latency deadline, simulated seconds (for the
  /// deadline-miss-rate accounting; 0 disables).
  double deadline = 2e-3;

  /// Graph-update events per simulated second (0 disables).
  double update_rate = 0.0;
  /// Vertices touched by each update event.
  std::int64_t update_touch = 64;

  std::uint64_t seed = 1;
};

/// One node-classification query.
struct Request {
  double arrival = 0.0;       ///< simulated arrival time
  std::uint32_t vertex = 0;   ///< original (un-permuted) vertex id
  double deadline = 0.0;      ///< absolute deadline (0 = none)
};

/// One simulated feature-refresh event.
struct GraphUpdate {
  double time = 0.0;
  /// Touched original vertex ids, ascending and duplicate-free.
  std::vector<std::uint32_t> vertices;
};

class WorkloadGen {
 public:
  WorkloadGen(std::int64_t num_vertices, WorkloadOptions options);

  /// The next `count` requests, arrival-ordered, continuing from the last
  /// generated timestamp.
  [[nodiscard]] std::vector<Request> generate(std::int64_t count);

  /// Update events in [0, horizon), time-ordered (empty when
  /// update_rate == 0).
  [[nodiscard]] std::vector<GraphUpdate> generate_updates(double horizon);

  [[nodiscard]] const WorkloadOptions& options() const { return options_; }

 private:
  [[nodiscard]] double next_arrival();
  [[nodiscard]] std::uint32_t draw_vertex();

  std::int64_t num_vertices_;
  WorkloadOptions options_;
  util::Rng rng_;
  util::Rng update_rng_;
  double clock_ = 0.0;

  /// kZipf: cumulative popularity over ranks, and the deterministic
  /// rank -> vertex shuffle that spreads hot ranks across the id space.
  std::vector<double> zipf_cdf_;
  std::vector<std::uint32_t> rank_vertex_;
};

}  // namespace mggcn::serve
