#include "core/inference_server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dense/kernels.hpp"
#include "sim/cost_model.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

CacheMode to_feature_cache_mode(ServeCacheMode mode) {
  switch (mode) {
    case ServeCacheMode::kOff:
      return CacheMode::kOff;
    case ServeCacheMode::kEmbed:
      return CacheMode::kFreq;
    case ServeCacheMode::kAuto:
      return CacheMode::kAuto;
  }
  return CacheMode::kOff;
}

/// A task charged an exact simulated duration: the cost model prices
/// stream_bytes / memory_bandwidth with no launch alpha, so
/// seconds * bandwidth bytes lands exactly on `seconds`.
sim::KernelCost exact_seconds_cost(double seconds,
                                   const sim::DeviceProfile& profile) {
  sim::KernelCost cost;
  cost.stream_bytes = seconds * profile.memory_bandwidth;
  cost.launches = 0;
  return cost;
}

/// HBM cost of moving `rows` d-wide rows (one read + one write each).
sim::KernelCost row_copy_cost(std::int64_t rows, std::int64_t d) {
  sim::KernelCost cost;
  cost.stream_bytes =
      2.0 * static_cast<double>(rows) * static_cast<double>(d) * sizeof(float);
  cost.launches = 1;
  return cost;
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

const char* batch_policy_name(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kPerRequest:
      return "per-request";
    case BatchPolicy::kFixed:
      return "fixed";
    case BatchPolicy::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::optional<BatchPolicy> parse_batch_policy(std::string_view name) {
  if (name == "per-request") return BatchPolicy::kPerRequest;
  if (name == "fixed") return BatchPolicy::kFixed;
  if (name == "deadline") return BatchPolicy::kDeadline;
  return std::nullopt;
}

InferenceServer::InferenceServer(sim::Machine& machine, MgGcnTrainer& trainer,
                                 const graph::Dataset& dataset,
                                 ServeOptions options)
    : machine_(machine),
      options_(options),
      partition_(trainer.partition()),
      perm_(trainer.perm().begin(), trainer.perm().end()) {
  MGGCN_CHECK_MSG(options_.max_batch >= 1 && options_.max_batch <= 4096,
                  "serve max_batch must be in [1, 4096]");
  MGGCN_CHECK_MSG(options_.slack_seconds >= 0.0,
                  "serve slack must be non-negative");
  MGGCN_CHECK_MSG(options_.cache_capacity_fraction >= 0.0 &&
                      options_.cache_capacity_fraction <= 1.0,
                  "serve cache capacity fraction must be in [0, 1]");

  const int num_layers = trainer.num_layers();
  const auto dims = trainer.dims();
  const std::int64_t d_in = dims[static_cast<std::size_t>(num_layers - 1)];
  d_out_ = dims[static_cast<std::size_t>(num_layers)];
  spmm_first_ = trainer.layer_spmm_first(num_layers - 1);
  d_store_ = spmm_first_ ? d_in : d_out_;

  // Reproduce the trainer's preprocessing sequence exactly, so the serving
  // forward operator is the trainer's Â^T bit for bit.
  const bool identity_perm = std::is_sorted(perm_.begin(), perm_.end());
  const sparse::Csr adj = identity_perm
                              ? dataset.adjacency
                              : dataset.adjacency.permute_symmetric(perm_);
  a_hat_t_ = adj.normalize_gcn().transpose();

  comm_ = std::make_unique<comm::Communicator>(machine_);
  pool_ = mem::resolve_pool(options_.pool, machine_, options_.pool_mode);

  materialize_store(trainer);

  const bool real = machine_.mode() == sim::ExecutionMode::kReal;
  replicas_.resize(static_cast<std::size_t>(comm_->size()));
  for (int r = 0; r < comm_->size(); ++r) {
    auto& device = machine_.device(r);
    mem::WorkspacePool* pool = pool_ ? &pool_->pool(r) : nullptr;
    auto& rep = replicas_[static_cast<std::size_t>(r)];
    rep.store_shard = mem::acquire_or_alloc(
        pool, device, static_cast<std::size_t>(partition_.size(r) * d_store_),
        "SERVE_STORE");
    rep.out = mem::acquire_or_alloc(
        pool, device, static_cast<std::size_t>(options_.max_batch * d_out_),
        "SERVE_OUT");
    if (spmm_first_) {
      rep.tmp = mem::acquire_or_alloc(
          pool, device, static_cast<std::size_t>(options_.max_batch * d_store_),
          "SERVE_TMP");
    }
    if (pool != nullptr) {
      // Long-lived serving state: join any previous tenants' completion
      // events at the stream level once, so every later serving task
      // inherits the reuse edge.
      const auto guard = [&](const mem::PooledBuffer& buf) {
        for (const sim::Event& e : buf.ready()) {
          if (!e.valid()) continue;
          device.compute_stream().wait_event(e);
          device.comm_stream().wait_event(e);
        }
      };
      guard(rep.store_shard);
      guard(rep.out);
      guard(rep.tmp);
    }
    if (real && store_.rows() > 0 && partition_.size(r) > 0) {
      dense::copy(store_.view().row(partition_.begin(r)),
                  rep.store_shard.span().data(),
                  partition_.size(r) * d_store_);
    }
    rep.chain = sim::Event::signaled(0.0);
  }

  build_caches();
}

InferenceServer::~InferenceServer() {
  // Pooled leases recycle on destruction; make sure no serving task still
  // reads them (serve() synchronizes, but be safe against early teardown).
  if (pool_ != nullptr) machine_.synchronize();
}

void InferenceServer::materialize_store(MgGcnTrainer& trainer) {
  if (machine_.mode() != sim::ExecutionMode::kReal) return;
  const int num_layers = trainer.num_layers();
  dense::HostMatrix penult = trainer.gather_activations(num_layers - 2);
  Checkpoint ckpt = trainer.checkpoint();
  if (spmm_first_) {
    // Store the penultimate activations; each query runs its 1-row SpMM
    // first and the last GeMM after, like the trainer's layer did.
    store_ = std::move(penult);
    weight_ = std::move(ckpt.weights.back());
    return;
  }
  // GeMM-first: fold the last weight into the store once. Run the GeMM in
  // the exact per-rank row blocks the trainer used, so the dispatched
  // kernel reproduces its HW matrix bit for bit.
  const dense::HostMatrix& w = ckpt.weights.back();
  store_ = dense::HostMatrix(penult.rows(), d_out_);
  for (int r = 0; r < partition_.parts(); ++r) {
    const std::int64_t begin = partition_.begin(r);
    const std::int64_t rows = partition_.size(r);
    if (rows == 0) continue;
    const dense::ConstMatrixView in{penult.view().row(begin), rows,
                                    penult.cols()};
    const dense::MatrixView out{store_.view().row(begin), rows, d_out_};
    dense::gemm(in, w.view(), out, 1.0f, 0.0f);
  }
}

void InferenceServer::build_caches() {
  CacheMode requested = to_feature_cache_mode(options_.cache_mode);
  // Admission is one kernel launch per batch; a batch of one query can
  // never amortize it against sub-microsecond per-row savings, so kAuto
  // keeps the cache only when micro-batching amortizes admission.
  // (Explicitly requested kEmbed is honored regardless.)
  const std::int64_t effective_batch =
      options_.policy == BatchPolicy::kPerRequest ? 1 : options_.max_batch;
  if (options_.cache_mode == ServeCacheMode::kAuto && effective_batch <= 1) {
    requested = CacheMode::kOff;
  }
  const std::int64_t n = partition_.total();
  const auto requested_rows = static_cast<std::int64_t>(
      options_.cache_capacity_fraction * static_cast<double>(n));
  const bool real = machine_.mode() == sim::ExecutionMode::kReal;

  FeatureCache::AutoDecision decision;
  bool any_enabled = false;
  for (int r = 0; r < comm_->size(); ++r) {
    auto& device = machine_.device(r);
    mem::WorkspacePool* pool = pool_ ? &pool_->pool(r) : nullptr;
    // Pooled: the cache shares the pool budget with the serving buffers
    // (free blocks are reusable headroom). Unpooled: the pre-pool formula,
    // bit for bit.
    const std::uint64_t available =
        pool != nullptr ? pool->available_bytes()
                        : device.profile().memory_bytes - device.memory_used();
    decision = FeatureCache::plan_auto(requested, requested_rows, d_store_,
                                       *comm_, device.profile(), available);
    auto& rep = replicas_[static_cast<std::size_t>(r)];
    rep.cache = FeatureCache(pool, device, d_store_, decision.capacity_rows,
                             decision.mode);
    if (pool != nullptr) {
      for (const sim::Event& e : rep.cache.lease().ready()) {
        if (!e.valid()) continue;
        device.compute_stream().wait_event(e);
        device.comm_stream().wait_event(e);
      }
    }
    if (!rep.cache.enabled()) continue;
    any_enabled = true;

    // Degree-scored prefill of the remote rows (local shard rows are free).
    std::vector<std::uint32_t> remote;
    std::vector<std::int64_t> scores;
    remote.reserve(static_cast<std::size_t>(n - partition_.size(r)));
    for (std::int64_t g = 0; g < n; ++g) {
      if (g >= partition_.begin(r) && g < partition_.end(r)) continue;
      remote.push_back(static_cast<std::uint32_t>(g));
      scores.push_back(a_hat_t_.row_nnz(g));
    }
    rep.cache.prefill(remote, scores);
    if (real && store_.rows() > 0) {
      const auto pinned = rep.cache.pinned();
      float* data = rep.cache.buffer().span().data();
      for (std::size_t slot = 0; slot < pinned.size(); ++slot) {
        dense::copy(store_.view().row(pinned[slot]),
                    data + static_cast<std::int64_t>(slot) * d_store_,
                    d_store_);
      }
    }
  }
  cache_mode_used_ =
      any_enabled ? ServeCacheMode::kEmbed : ServeCacheMode::kOff;

  // Price one full micro-batch for the deadline policy: the frontier's
  // local/cached rows at the hit price, uncached remote rows at the wire
  // price, plus the inference kernels.
  const auto& profile = machine_.device(0).profile();
  const double avg_deg =
      n > 0 ? static_cast<double>(a_hat_t_.nnz()) / static_cast<double>(n)
            : 0.0;
  const double rows =
      static_cast<double>(options_.max_batch) * std::max(avg_deg, 1.0);
  const int parts = comm_->size();
  const double remote_rows =
      parts > 1 ? rows * static_cast<double>(parts - 1) /
                      static_cast<double>(parts)
                : 0.0;
  const double remote_price = any_enabled ? decision.hit_seconds_per_row
                                          : decision.miss_seconds_per_row;
  double seconds = (rows - remote_rows) * decision.hit_seconds_per_row +
                   remote_rows * remote_price;
  const auto spmm = sparse::spmm_cost(
      static_cast<std::int64_t>(rows), options_.max_batch,
      static_cast<std::int64_t>(rows), d_store_);
  seconds += sim::CostModel::seconds(spmm, profile);
  if (spmm_first_) {
    seconds += sim::CostModel::seconds(
        dense::gemm_cost(options_.max_batch, d_out_, d_store_), profile);
  }
  seconds += 2.0 * profile.kernel_launch_overhead;
  est_batch_seconds_ = seconds;
}

std::vector<InferenceServer::Batch> InferenceServer::plan_batches(
    std::span<const serve::Request> requests) {
  std::vector<Batch> batches;
  const auto n_req = static_cast<std::int64_t>(requests.size());
  const int parts = comm_->size();
  std::int64_t i = 0;
  int next_replica = 0;
  while (i < n_req) {
    Batch batch;
    batch.replica = next_replica;
    next_replica = (next_replica + 1) % parts;
    batch.request_ids.push_back(i);

    if (options_.policy == BatchPolicy::kPerRequest) {
      batch.close_time = requests[static_cast<std::size_t>(i)].arrival;
      ++i;
    } else if (options_.policy == BatchPolicy::kFixed) {
      std::int64_t j = i + 1;
      while (j < n_req && static_cast<std::int64_t>(
                              batch.request_ids.size()) < options_.max_batch) {
        batch.request_ids.push_back(j);
        ++j;
      }
      batch.close_time = requests[static_cast<std::size_t>(j - 1)].arrival;
      i = j;
    } else {
      // kDeadline: wait up to the slack, but never past the point where a
      // member's deadline could no longer absorb the priced service time.
      const auto& first = requests[static_cast<std::size_t>(i)];
      double limit = first.arrival + options_.slack_seconds;
      if (first.deadline > 0.0) {
        limit = std::min(
            limit, std::max(first.arrival, first.deadline - est_batch_seconds_));
      }
      std::int64_t j = i + 1;
      while (j < n_req &&
             static_cast<std::int64_t>(batch.request_ids.size()) <
                 options_.max_batch &&
             requests[static_cast<std::size_t>(j)].arrival <= limit) {
        const auto& req = requests[static_cast<std::size_t>(j)];
        batch.request_ids.push_back(j);
        if (req.deadline > 0.0) {
          limit = std::min(
              limit, std::max(req.arrival, req.deadline - est_batch_seconds_));
        }
        ++j;
      }
      const bool full = static_cast<std::int64_t>(batch.request_ids.size()) ==
                        options_.max_batch;
      batch.close_time =
          full ? requests[static_cast<std::size_t>(j - 1)].arrival : limit;
      i = j;
    }
    plan_frontier(&batch, requests);
    batches.push_back(std::move(batch));
  }
  return batches;
}

void InferenceServer::plan_frontier(Batch* batch,
                                    std::span<const serve::Request> requests) {
  const auto row_ptr = a_hat_t_.row_ptr();
  const auto col_idx = a_hat_t_.col_idx();
  const auto values = a_hat_t_.values();

  std::vector<std::uint32_t>& frontier = batch->frontier;
  for (const std::int64_t id : batch->request_ids) {
    const std::uint32_t g =
        perm_[requests[static_cast<std::size_t>(id)].vertex];
    for (std::int64_t e = row_ptr[g]; e < row_ptr[g + 1]; ++e) {
      frontier.push_back(col_idx[static_cast<std::size_t>(e)]);
    }
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());

  // The batch adjacency with columns compacted to frontier positions. The
  // remap is monotone, so each output element accumulates its edges in the
  // same (ascending-column CSR) order as the trainer's staged SpMM — the
  // bit-identity contract of sparse/spmm.hpp.
  std::vector<std::int64_t> bp;
  std::vector<std::uint32_t> bc;
  std::vector<float> bv;
  bp.reserve(batch->request_ids.size() + 1);
  bp.push_back(0);
  for (const std::int64_t id : batch->request_ids) {
    const std::uint32_t g =
        perm_[requests[static_cast<std::size_t>(id)].vertex];
    for (std::int64_t e = row_ptr[g]; e < row_ptr[g + 1]; ++e) {
      const auto it = std::lower_bound(frontier.begin(), frontier.end(),
                                       col_idx[static_cast<std::size_t>(e)]);
      bc.push_back(static_cast<std::uint32_t>(it - frontier.begin()));
      bv.push_back(values[static_cast<std::size_t>(e)]);
    }
    bp.push_back(static_cast<std::int64_t>(bc.size()));
  }
  batch->adj = sparse::Csr(static_cast<std::int64_t>(batch->request_ids.size()),
                           static_cast<std::int64_t>(frontier.size()),
                           std::move(bp), std::move(bc), std::move(bv));
}

sim::Event InferenceServer::enqueue_batch(const Batch& batch, double base,
                                          ServeStats* stats) {
  const int r = batch.replica;
  auto& rep = replicas_[static_cast<std::size_t>(r)];
  auto& device = machine_.device(r);
  const auto& profile = device.profile();
  const bool real = machine_.mode() == sim::ExecutionMode::kReal;
  const sim::Event open = sim::Event::signaled(base + batch.close_time);
  const auto batch_size = static_cast<std::int64_t>(batch.request_ids.size());

  // Classify the frontier: (src local row | cache slot | remote owner),
  // dst = frontier position = scratch row.
  struct RowCopy {
    std::int64_t src = 0;
    std::int64_t dst = 0;
  };
  std::vector<RowCopy> local_copies;
  std::vector<std::uint32_t> remote;
  std::vector<std::int64_t> remote_pos;
  for (std::size_t pos = 0; pos < batch.frontier.size(); ++pos) {
    const std::uint32_t g = batch.frontier[pos];
    if (g >= partition_.begin(r) && g < partition_.end(r)) {
      local_copies.push_back({g - partition_.begin(r),
                              static_cast<std::int64_t>(pos)});
    } else {
      remote.push_back(g);
      remote_pos.push_back(static_cast<std::int64_t>(pos));
    }
  }

  auto part = rep.cache.lookup(remote);
  stats->serve_cache_hits += part.hit_vertices.size();
  stats->serve_cache_misses += part.miss_vertices.size();

  const auto frontier_pos = [&](std::uint32_t g) {
    const auto it = std::lower_bound(batch.frontier.begin(),
                                     batch.frontier.end(), g);
    return static_cast<std::int64_t>(it - batch.frontier.begin());
  };

  // 1. Remote misses: one priced pull per owner on the comm stream, charged
  // what a compacted sendv of those rows costs (no collective rendezvous —
  // serving must not stall the other replicas).
  std::vector<sim::Event> pulls;
  double gather_seconds = 0.0;
  std::size_t m = 0;
  while (m < part.miss_vertices.size()) {
    const int owner = partition_.part_of(part.miss_vertices[m]);
    std::vector<std::uint32_t> owner_rows;  // owner-local, ascending
    std::vector<RowCopy> copies;
    while (m < part.miss_vertices.size() &&
           partition_.part_of(part.miss_vertices[m]) == owner) {
      const std::uint32_t g = part.miss_vertices[m];
      owner_rows.push_back(
          static_cast<std::uint32_t>(g - partition_.begin(owner)));
      copies.push_back({static_cast<std::int64_t>(g - partition_.begin(owner)),
                        frontier_pos(g)});
      ++m;
    }
    std::vector<std::span<const std::uint32_t>> rows(
        static_cast<std::size_t>(comm_->size()));
    rows[static_cast<std::size_t>(r)] = owner_rows;
    const double seconds =
        comm_->sendv_rows_seconds(comm_->sendv_shape(rows, d_store_, owner));
    gather_seconds += seconds;

    sim::TaskDesc task;
    task.label = "serve-pull";
    task.kind = sim::TaskKind::kComm;
    task.cost = exact_seconds_cost(seconds, profile);
    task.waits = {open, rep.chain};
    task.reads = {
        replicas_[static_cast<std::size_t>(owner)].store_shard.access()};
    task.writes = {rep.scratch.access()};
    if (real) {
      auto* src = &replicas_[static_cast<std::size_t>(owner)].store_shard;
      auto* dst = &rep.scratch;
      const std::int64_t d = d_store_;
      task.body = [src, dst, moved = std::move(copies), d] {
        for (const auto& c : moved) {
          dense::copy(src->span().data() + c.src * d,
                      dst->span().data() + c.dst * d, d);
        }
      };
    }
    pulls.push_back(device.comm_stream().enqueue(std::move(task)));
  }

  // 2. Local shard rows + cache hits, gathered at HBM cost.
  std::vector<RowCopy> hit_copies;
  for (std::size_t h = 0; h < part.hit_vertices.size(); ++h) {
    hit_copies.push_back(
        {part.hit_slots[h], frontier_pos(part.hit_vertices[h])});
  }
  const auto gathered =
      static_cast<std::int64_t>(local_copies.size() + hit_copies.size());
  if (gathered > 0) {
    sim::TaskDesc task;
    task.label = "serve-gather";
    task.kind = sim::TaskKind::kMemory;
    task.cost = row_copy_cost(gathered, d_store_);
    task.waits = pulls;
    task.waits.push_back(open);
    task.waits.push_back(rep.chain);
    task.reads = {rep.store_shard.access()};
    if (!hit_copies.empty()) task.reads.push_back(rep.cache.buffer().access());
    task.writes = {rep.scratch.access()};
    gather_seconds += sim::CostModel::seconds(task.cost, profile);
    if (real) {
      auto* shard = &rep.store_shard;
      auto* cache_buf = &rep.cache.buffer();
      auto* dst = &rep.scratch;
      const std::int64_t d = d_store_;
      task.body = [shard, cache_buf, dst, locals = std::move(local_copies),
                   hits = std::move(hit_copies), d] {
        for (const auto& c : locals) {
          dense::copy(shard->span().data() + c.src * d,
                      dst->span().data() + c.dst * d, d);
        }
        for (const auto& c : hits) {
          dense::copy(cache_buf->span().data() + c.src * d,
                      dst->span().data() + c.dst * d, d);
        }
      };
    }
    device.compute_stream().enqueue(std::move(task));
  }

  // 3. Inference: the batch SpMM over the gathered frontier (and the last
  // GeMM when the layer ran SpMM-first). naive::spmm is the reference
  // kernel every policy matches bit for bit at beta == 0.
  const auto frontier_rows = static_cast<std::int64_t>(batch.frontier.size());
  double infer_seconds = 0.0;
  sim::TaskDesc spmm_task;
  spmm_task.label = "serve-infer";
  spmm_task.kind = sim::TaskKind::kSpMM;
  spmm_task.stage = -1;
  spmm_task.cost = sparse::spmm_cost(batch.adj.nnz(), batch_size,
                                     std::max<std::int64_t>(frontier_rows, 1),
                                     d_store_);
  spmm_task.waits = pulls;  // gather ordering comes from the stream
  spmm_task.waits.push_back(open);
  spmm_task.waits.push_back(rep.chain);
  spmm_task.reads = {rep.scratch.access()};
  spmm_task.writes = {spmm_first_ ? rep.tmp.access() : rep.out.access()};
  infer_seconds += sim::CostModel::seconds(spmm_task.cost, profile);
  if (real) {
    const auto* adj = &batch.adj;
    auto* scratch = &rep.scratch;
    auto* out = spmm_first_ ? &rep.tmp : &rep.out;
    const std::int64_t d = d_store_;
    auto* predictions = &predictions_;
    const bool write_predictions = !spmm_first_;
    spmm_task.body = [adj, scratch, out, d, frontier_rows, batch_size,
                      predictions, write_predictions,
                      ids = batch.request_ids] {
      const dense::ConstMatrixView b{scratch->span().data(), frontier_rows, d};
      const dense::MatrixView c{out->span().data(), batch_size, d};
      sparse::naive::spmm(*adj, b, c, 1.0f, 0.0f);
      if (write_predictions) {
        for (std::size_t q = 0; q < ids.size(); ++q) {
          dense::copy(c.row(static_cast<std::int64_t>(q)),
                      predictions->view().row(ids[q]), d);
        }
      }
    };
  }
  sim::Event completion = device.compute_stream().enqueue(std::move(spmm_task));

  if (spmm_first_) {
    sim::TaskDesc gemm_task;
    gemm_task.label = "serve-infer-gemm";
    gemm_task.kind = sim::TaskKind::kGeMM;
    gemm_task.cost = dense::gemm_cost(batch_size, d_out_, d_store_);
    gemm_task.reads = {rep.tmp.access()};
    gemm_task.writes = {rep.out.access()};
    infer_seconds += sim::CostModel::seconds(gemm_task.cost, profile);
    if (real) {
      auto* tmp = &rep.tmp;
      auto* out = &rep.out;
      const std::int64_t d_in = d_store_;
      const std::int64_t d_out = d_out_;
      auto* weight = &weight_;
      auto* predictions = &predictions_;
      gemm_task.body = [tmp, out, weight, d_in, d_out, batch_size, predictions,
                        ids = batch.request_ids] {
        const dense::ConstMatrixView a{tmp->span().data(), batch_size, d_in};
        const dense::MatrixView c{out->span().data(), batch_size, d_out};
        dense::gemm(a, weight->view(), c, 1.0f, 0.0f);
        for (std::size_t q = 0; q < ids.size(); ++q) {
          dense::copy(c.row(static_cast<std::int64_t>(q)),
                      predictions->view().row(ids[q]), d_out);
        }
      };
    }
    completion = device.compute_stream().enqueue(std::move(gemm_task));
  }

  // 4. Frequency-aware admission of this batch's pulled rows.
  sim::Event chain = completion;
  const auto admitted = rep.cache.admit(part.miss_vertices);
  if (!admitted.empty()) {
    std::vector<RowCopy> copies;
    copies.reserve(admitted.size());
    for (const auto& [vertex, slot] : admitted) {
      copies.push_back({frontier_pos(vertex), slot});
    }
    sim::TaskDesc task;
    task.label = "serve-admit";
    task.kind = sim::TaskKind::kMemory;
    task.cost = row_copy_cost(static_cast<std::int64_t>(admitted.size()),
                              d_store_);
    task.reads = {rep.scratch.access()};
    task.writes = {rep.cache.buffer().access()};
    gather_seconds += sim::CostModel::seconds(task.cost, profile);
    if (real) {
      auto* scratch = &rep.scratch;
      auto* cache_buf = &rep.cache.buffer();
      const std::int64_t d = d_store_;
      task.body = [scratch, cache_buf, moved = std::move(copies), d] {
        for (const auto& c : moved) {
          dense::copy(scratch->span().data() + c.src * d,
                      cache_buf->span().data() + c.dst * d, d);
        }
      };
    }
    chain = device.compute_stream().enqueue(std::move(task));
  }
  rep.chain = chain;

  stats->serve_gather_seconds += gather_seconds;
  stats->serve_infer_seconds += infer_seconds;
  return completion;
}

void InferenceServer::enqueue_invalidate(const serve::GraphUpdate& update,
                                         double base, ServeStats* stats) {
  stats->serve_graph_updates += 1;
  std::vector<std::uint32_t> touched;
  touched.reserve(update.vertices.size());
  for (const std::uint32_t v : update.vertices) touched.push_back(perm_[v]);
  std::sort(touched.begin(), touched.end());

  for (int r = 0; r < comm_->size(); ++r) {
    auto& rep = replicas_[static_cast<std::size_t>(r)];
    if (!rep.cache.enabled()) continue;
    std::size_t dropped = 0;
    const auto relocations = rep.cache.invalidate(touched, &dropped);
    stats->serve_invalidations += static_cast<std::int64_t>(dropped);
    if (relocations.empty()) continue;

    sim::TaskDesc task;
    task.label = "serve-invalidate";
    task.kind = sim::TaskKind::kMemory;
    task.cost = row_copy_cost(static_cast<std::int64_t>(relocations.size()),
                              d_store_);
    task.waits = {sim::Event::signaled(base + update.time)};
    task.reads = {rep.cache.buffer().access()};
    task.writes = {rep.cache.buffer().access()};
    if (machine_.mode() == sim::ExecutionMode::kReal) {
      auto* cache_buf = &rep.cache.buffer();
      const std::int64_t d = d_store_;
      task.body = [cache_buf, moved = relocations, d] {
        // Relocations are valid applied in order (each is recorded against
        // the bookkeeping state after the previous one).
        for (const auto& reloc : moved) {
          dense::copy(cache_buf->span().data() + reloc.from_slot * d,
                      cache_buf->span().data() + reloc.to_slot * d, d);
        }
      };
    }
    machine_.device(r).compute_stream().enqueue(std::move(task));
  }
}

ServeStats InferenceServer::serve(std::span<const serve::Request> requests,
                                  std::span<const serve::GraphUpdate> updates) {
  ServeStats stats;
  if (requests.empty()) return stats;
  MGGCN_CHECK_MSG(
      std::is_sorted(requests.begin(), requests.end(),
                     [](const serve::Request& a, const serve::Request& b) {
                       return a.arrival < b.arrival;
                     }),
      "serve requests must be arrival-ordered");
  for (const auto& req : requests) {
    MGGCN_CHECK_MSG(req.vertex < perm_.size(),
                    "serve request vertex out of range");
  }

  auto batches = plan_batches(requests);

  // Size each replica's gather scratch for its largest frontier, then pin
  // the serving timeline to the machine clock.
  std::vector<std::int64_t> max_rows(replicas_.size(), 1);
  for (const auto& batch : batches) {
    max_rows[static_cast<std::size_t>(batch.replica)] =
        std::max(max_rows[static_cast<std::size_t>(batch.replica)],
                 static_cast<std::int64_t>(batch.frontier.size()));
  }
  const double base = machine_.align_clocks();
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    sim::Device& device = machine_.device(static_cast<int>(r));
    mem::WorkspacePool* pool =
        pool_ ? &pool_->pool(static_cast<int>(r)) : nullptr;
    replicas_[r].scratch = mem::acquire_or_alloc(
        pool, device, static_cast<std::size_t>(max_rows[r] * d_store_),
        "SERVE_GATHER");
    if (pool != nullptr) {
      for (const sim::Event& e : replicas_[r].scratch.ready()) {
        if (!e.valid()) continue;
        device.compute_stream().wait_event(e);
        device.comm_stream().wait_event(e);
      }
    }
    replicas_[r].chain = sim::Event::signaled(base);
  }
  predictions_ =
      machine_.mode() == sim::ExecutionMode::kReal
          ? dense::HostMatrix(static_cast<std::int64_t>(requests.size()),
                              d_out_)
          : dense::HostMatrix();

  // Enqueue batches and graph updates in timeline order, so the cache
  // bookkeeping (host side) matches the order the device tasks execute.
  std::vector<sim::Event> completions(batches.size());
  std::size_t bi = 0;
  std::size_t ui = 0;
  while (bi < batches.size() || ui < updates.size()) {
    if (ui < updates.size() &&
        (bi == batches.size() ||
         updates[ui].time <= batches[bi].close_time)) {
      enqueue_invalidate(updates[ui], base, &stats);
      ++ui;
    } else {
      completions[bi] = enqueue_batch(batches[bi], base, &stats);
      ++bi;
    }
  }
  machine_.synchronize();

  std::vector<double> latencies;
  latencies.reserve(requests.size());
  double last_completion = base;
  std::int64_t deadline_total = 0;
  std::int64_t deadline_missed = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const double done = completions[b].wait();
    last_completion = std::max(last_completion, done);
    for (const std::int64_t id : batches[b].request_ids) {
      const auto& req = requests[static_cast<std::size_t>(id)];
      latencies.push_back(done - (base + req.arrival));
      if (req.deadline > 0.0) {
        ++deadline_total;
        if (done > base + req.deadline) ++deadline_missed;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());

  stats.serve_requests = static_cast<std::int64_t>(requests.size());
  stats.serve_batches = static_cast<std::int64_t>(batches.size());
  stats.serve_mean_batch_size =
      static_cast<double>(stats.serve_requests) /
      static_cast<double>(stats.serve_batches);
  stats.serve_span_seconds =
      last_completion - (base + requests.front().arrival);
  stats.serve_qps = stats.serve_span_seconds > 0.0
                        ? static_cast<double>(stats.serve_requests) /
                              stats.serve_span_seconds
                        : 0.0;
  stats.serve_p50_latency = percentile(latencies, 0.5);
  stats.serve_p99_latency = percentile(latencies, 0.99);
  stats.serve_max_latency = latencies.back();
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  stats.serve_mean_latency = sum / static_cast<double>(latencies.size());
  stats.serve_deadline_miss_rate =
      deadline_total > 0 ? static_cast<double>(deadline_missed) /
                               static_cast<double>(deadline_total)
                         : 0.0;
  const auto looked_up = stats.serve_cache_hits + stats.serve_cache_misses;
  stats.serve_cache_hit_rate =
      looked_up > 0
          ? static_cast<double>(stats.serve_cache_hits) /
                static_cast<double>(looked_up)
          : 0.0;

  sim::ServeCounters counters;
  counters.requests = static_cast<std::uint64_t>(stats.serve_requests);
  counters.batches = static_cast<std::uint64_t>(stats.serve_batches);
  counters.cache_hits = stats.serve_cache_hits;
  counters.cache_misses = stats.serve_cache_misses;
  counters.graph_updates =
      static_cast<std::uint64_t>(stats.serve_graph_updates);
  counters.invalidations =
      static_cast<std::uint64_t>(stats.serve_invalidations);
  counters.gather_seconds = stats.serve_gather_seconds;
  counters.infer_seconds = stats.serve_infer_seconds;
  machine_.trace().record_serve(counters);

  // Hand the gather scratch back between serve() calls so a co-resident
  // trainer or pipeline can reuse the blocks. The machine was synchronized
  // above, so recycling without a recorded event is hazard-clean (the
  // host-side join already ordered every serving task).
  for (auto& rep : replicas_) rep.scratch.recycle();
  return stats;
}

}  // namespace mggcn::core
