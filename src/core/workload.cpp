#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mggcn::serve {

namespace {
// splitmix64 advances its state argument in place; mix a copy so the
// caller's seed is untouched.
std::uint64_t mix_seed(std::uint64_t seed) { return util::splitmix64(seed); }
}  // namespace

WorkloadGen::WorkloadGen(std::int64_t num_vertices, WorkloadOptions options)
    : num_vertices_(num_vertices),
      options_(options),
      rng_(options.seed),
      update_rng_(mix_seed(options.seed) ^ 0x5e7e5e7e5e7e5e7eULL) {
  MGGCN_CHECK_MSG(num_vertices > 0, "workload needs a non-empty graph");
  MGGCN_CHECK_MSG(options_.rate_qps > 0.0, "workload rate must be positive");
  if (options_.arrival == ArrivalProcess::kBursty) {
    MGGCN_CHECK_MSG(
        options_.burst_factor >= 1.0 && options_.burst_fraction > 0.0 &&
            options_.burst_fraction < 1.0 && options_.burst_period > 0.0,
        "bursty arrivals need burst_factor >= 1, burst_fraction in (0, 1), "
        "and a positive burst_period");
  }
  if (options_.skew == QuerySkew::kZipf) {
    MGGCN_CHECK_MSG(options_.zipf_theta > 0.0, "zipf_theta must be positive");
    // Popularity CDF over ranks, and a deterministic rank -> vertex shuffle
    // so the hot ranks land all over the id space (and hence across
    // partitions) instead of clustering at vertex 0.
    zipf_cdf_.resize(static_cast<std::size_t>(num_vertices_));
    double total = 0.0;
    for (std::int64_t r = 0; r < num_vertices_; ++r) {
      total += std::pow(static_cast<double>(r + 1), -options_.zipf_theta);
      zipf_cdf_[static_cast<std::size_t>(r)] = total;
    }
    for (auto& c : zipf_cdf_) c /= total;
    util::Rng shuffle_rng(mix_seed(options.seed ^ 0x21fULL));
    rank_vertex_ = shuffle_rng.permutation<std::uint32_t>(
        static_cast<std::size_t>(num_vertices_));
  }
}

double WorkloadGen::next_arrival() {
  if (options_.arrival == ArrivalProcess::kPoisson) {
    const double u = rng_.uniform();
    clock_ += -std::log1p(-u) / options_.rate_qps;
    return clock_;
  }
  // Non-homogeneous Poisson by thinning: propose at the peak rate, accept
  // with probability rate(t)/peak. The off-phase rate is scaled so the
  // long-run mean stays rate_qps (floored at 0: with the default
  // burst_fraction * burst_factor == 1 every arrival is inside a burst).
  const double peak = options_.rate_qps * options_.burst_factor;
  const double off_rate =
      std::max(0.0, options_.rate_qps *
                        (1.0 - options_.burst_fraction * options_.burst_factor) /
                        (1.0 - options_.burst_fraction));
  const double on_window = options_.burst_fraction * options_.burst_period;
  while (true) {
    const double u = rng_.uniform();
    clock_ += -std::log1p(-u) / peak;
    const double phase = std::fmod(clock_, options_.burst_period);
    const double rate = phase < on_window ? peak : off_rate;
    if (rng_.uniform() * peak < rate) return clock_;
  }
}

std::uint32_t WorkloadGen::draw_vertex() {
  if (options_.skew == QuerySkew::kUniform) {
    return static_cast<std::uint32_t>(
        rng_.uniform_index(static_cast<std::size_t>(num_vertices_)));
  }
  const double u = rng_.uniform();
  const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto rank = std::min<std::size_t>(
      static_cast<std::size_t>(it - zipf_cdf_.begin()),
      zipf_cdf_.size() - 1);
  return rank_vertex_[rank];
}

std::vector<Request> WorkloadGen::generate(std::int64_t count) {
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(std::max<std::int64_t>(count, 0)));
  for (std::int64_t i = 0; i < count; ++i) {
    Request req;
    req.arrival = next_arrival();
    req.vertex = draw_vertex();
    req.deadline =
        options_.deadline > 0.0 ? req.arrival + options_.deadline : 0.0;
    out.push_back(req);
  }
  return out;
}

std::vector<GraphUpdate> WorkloadGen::generate_updates(double horizon) {
  std::vector<GraphUpdate> out;
  if (options_.update_rate <= 0.0 || horizon <= 0.0) return out;
  double t = 0.0;
  while (true) {
    const double u = update_rng_.uniform();
    t += -std::log1p(-u) / options_.update_rate;
    if (t >= horizon) break;
    GraphUpdate update;
    update.time = t;
    update.vertices.reserve(
        static_cast<std::size_t>(options_.update_touch));
    for (std::int64_t i = 0; i < options_.update_touch; ++i) {
      update.vertices.push_back(static_cast<std::uint32_t>(
          update_rng_.uniform_index(static_cast<std::size_t>(num_vertices_))));
    }
    std::sort(update.vertices.begin(), update.vertices.end());
    update.vertices.erase(
        std::unique(update.vertices.begin(), update.vertices.end()),
        update.vertices.end());
    out.push_back(std::move(update));
  }
  return out;
}

}  // namespace mggcn::serve
