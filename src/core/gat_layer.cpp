#include "core/gat_layer.hpp"

#include <cmath>

#include "dense/kernels.hpp"
#include "sparse/sddmm.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

GraphAttentionLayer::GraphAttentionLayer(const sparse::Csr& adjacency,
                                         std::int64_t d_in,
                                         std::int64_t d_out,
                                         AttentionKind kind,
                                         std::uint64_t seed)
    : adjacency_(adjacency),
      d_in_(d_in),
      d_out_(d_out),
      kind_(kind),
      w_(d_in, d_out),
      a_src_(1, d_out),
      a_dst_(1, d_out) {
  MGGCN_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "GAT needs a square adjacency");
  util::Rng rng(seed);
  w_.init_glorot(rng);
  a_src_.init_gaussian(rng, 0.0, 1.0 / std::sqrt(static_cast<double>(d_out)));
  a_dst_.init_gaussian(rng, 0.0, 1.0 / std::sqrt(static_cast<double>(d_out)));
}

dense::HostMatrix GraphAttentionLayer::forward(
    dense::ConstMatrixView x) const {
  const std::int64_t n = adjacency_.rows();
  MGGCN_CHECK(x.rows == n && x.cols == d_in_);

  // Z = X W.
  dense::HostMatrix z(n, d_out_);
  dense::gemm(x, w_.view(), z.view());

  // Edge scores.
  sparse::Csr scores = adjacency_;
  if (kind_ == AttentionKind::kDotProduct) {
    scores = sparse::sddmm(scores, z.view(), z.view());
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(d_out_));
    for (auto& value : scores.values_mutable()) value *= inv_sqrt_d;
  } else {
    // Additive GATv1: e(u, v) = s_u + t_v with per-vertex projections —
    // a rank-1 SDDMM.
    std::vector<float> s(static_cast<std::size_t>(n), 0.0f);
    std::vector<float> t(static_cast<std::size_t>(n), 0.0f);
    for (std::int64_t vtx = 0; vtx < n; ++vtx) {
      const float* row = z.view().row(vtx);
      float su = 0.0f, tu = 0.0f;
      for (std::int64_t j = 0; j < d_out_; ++j) {
        su += a_src_.at(0, j) * row[j];
        tu += a_dst_.at(0, j) * row[j];
      }
      s[static_cast<std::size_t>(vtx)] = su;
      t[static_cast<std::size_t>(vtx)] = tu;
    }
    const auto row_ptr = scores.row_ptr();
    const auto col_idx = scores.col_idx();
    auto values = scores.values_mutable();
    for (std::int64_t u = 0; u < n; ++u) {
      for (std::int64_t e = row_ptr[static_cast<std::size_t>(u)];
           e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
        values[static_cast<std::size_t>(e)] =
            s[static_cast<std::size_t>(u)] +
            t[col_idx[static_cast<std::size_t>(e)]];
      }
    }
    sparse::leaky_relu_values(scores);
  }

  // Normalize per destination: transpose, softmax rows, apply as SpMM.
  attention_ = scores.transpose();
  sparse::edge_softmax(attention_);

  dense::HostMatrix out(n, d_out_);
  sparse::spmm(attention_, z.view(), out.view());
  dense::relu_forward(out.data(), out.data(), out.size());
  return out;
}

}  // namespace mggcn::core
