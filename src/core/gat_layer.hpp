// Graph Attention layer (forward prototype) — the model family the paper's
// future work targets via the SDDMM kernel (§7).
//
// Single-head GAT (Veličković et al.): with Z = X W,
//     e(u, v)   = LeakyReLU(a_src · Z_u + a_dst · Z_v)   for every edge
//     alpha     = edge_softmax(e)                          per destination
//     H'        = alpha^T Z  (an SpMM with the attention operator)
// plus an optional dot-product variant e(u, v) = <Z_u, Z_v> / sqrt(d)
// computed with the generic SDDMM.
//
// This is a single-device forward implementation: it demonstrates that the
// substrate's kernels (GeMM, SDDMM, edge softmax, SpMM) compose into the
// model, and its cost accessors plug into the simulated machine. The
// distributed/backward path is intentionally out of scope — exactly where
// the paper leaves it.
#pragma once

#include <cstdint>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mggcn::core {

enum class AttentionKind {
  kAdditive,    ///< GATv1 a_src/a_dst decomposition
  kDotProduct,  ///< transformer-style scaled dot product (uses SDDMM)
};

class GraphAttentionLayer {
 public:
  /// `adjacency`: the (un-normalized) symmetric adjacency; attention
  /// replaces the fixed GCN normalization.
  GraphAttentionLayer(const sparse::Csr& adjacency, std::int64_t d_in,
                      std::int64_t d_out, AttentionKind kind,
                      std::uint64_t seed);

  /// Forward pass over the full graph; x is (n x d_in).
  [[nodiscard]] dense::HostMatrix forward(dense::ConstMatrixView x) const;

  /// The attention operator produced by the last forward() (row-stochastic
  /// after transposition onto destinations).
  [[nodiscard]] const sparse::Csr& last_attention() const {
    return attention_;
  }

  [[nodiscard]] const dense::HostMatrix& weights() const { return w_; }
  [[nodiscard]] AttentionKind kind() const { return kind_; }

 private:
  const sparse::Csr& adjacency_;
  std::int64_t d_in_;
  std::int64_t d_out_;
  AttentionKind kind_;

  dense::HostMatrix w_;       // d_in x d_out
  dense::HostMatrix a_src_;   // 1 x d_out (additive attention)
  dense::HostMatrix a_dst_;   // 1 x d_out
  mutable sparse::Csr attention_;
};

}  // namespace mggcn::core
