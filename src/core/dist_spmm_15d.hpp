// 1.5D distributed SpMM, in two flavors.
//
// DistSpmm15D — replication factor c = 2, the alternative algorithm §5.1
// analyzes (and rejects) for MG-GCN:
//
//   - rank r = g*G + j belongs to replica group g ∈ {0, 1} and holds a
//     copy of the dense block H^j  (H is replicated c times -> 2x memory);
//   - the adjacency tile A^{js} lives only on rank (s mod c, j): each
//     group covers the stages congruent to its id, so the G stages run in
//     G/c rounds with both groups broadcasting concurrently;
//   - a final reduction combines the two partial C^j blocks across the
//     paired ranks (0, j) and (1, j) — on DGX-1's cube mesh that pair has
//     only 2 links, which is exactly why §5.1 finds 1.5D slower there.
//
// Because that pair allreduce adds the two stage-halves of each output row
// in ONE step instead of chaining them in stage order, DistSpmm15D is NOT
// bit-identical to the 1D product. It implements the DistExecutor contract
// (benches swap it in), but it is an ablation subject, never a Planner
// candidate.
//
// DistSpmm15DChained — the order-preserving variant the Planner *can*
// select (MGGCN_PLAN=15d / auto). Same pairing (j, j+G), same P-way 1D
// tile grid, NO input replication:
//
//   - phase 1: the low group {0..G-1} broadcasts blocks 0..G-1 among
//     itself; low rank j runs two SpMMs per stage — tile (j, s) into its
//     own output and tile (j+G, s) into a private partial buffer (the
//     partner row's stage-prefix);
//   - handoff: pair (j, j+G) swaps the two prefixes — C_j's prefix moves
//     into the partner's partial buffer, C_{j+G}'s prefix into the
//     partner's output;
//   - phase 2: the high group {G..P-1} broadcasts blocks G..P-1; high
//     rank j+G *continues* both accumulations (beta = 1) in stage order;
//   - return: the finished C_j travels back to rank j's output.
//
// Every output element is accumulated in ascending stage order, so losses
// stay bit-identical with 1D. Each rank receives G-1 group blocks instead
// of P-1 — on a two-node cluster the group broadcasts stay intra-node and
// only the thin pair handoffs cross the NIC, which is where this executor
// wins. The price: every tile is multiplied on both pair ranks' path
// (compute roughly doubles per rank) and the partner-row tiles plus the
// partial buffers cost extra memory (the "1.5" in 1.5D).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "core/dist_executor.hpp"
#include "core/partition.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"

namespace mggcn::core {

class DistSpmm15D : public DistExecutor {
 public:
  static constexpr int kReplication = 2;  // c

  /// `op` is the full (already normalized/transposed) operator; the
  /// machine must have an even device count >= 4.
  DistSpmm15D(sim::Machine& machine, const sparse::Csr& op);
  ~DistSpmm15D() override;

  DistSpmm15D(const DistSpmm15D&) = delete;
  DistSpmm15D& operator=(const DistSpmm15D&) = delete;

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] const PartitionVector& partition() const { return partition_; }
  /// The row block held by a rank (its index within its group).
  [[nodiscard]] int block_of(int rank) const { return rank % groups_; }
  [[nodiscard]] int group_of(int rank) const { return rank / groups_; }

  /// DistIo field mapping: `input[r]` is the *replicated* H^{block_of(r)}
  /// (size(block) x d), `output[r]` the partial C block (after run() the
  /// pair allreduce leaves the final C on both replicas), `bc1[r]` the
  /// broadcast buffer (max_part x d). bc2 / overlap / slot_readers are
  /// unused — the single-slot write-after-read chain is internal.
  using Io = DistIo;
  using Result = DistResult;

  Result run(const Io& io) override;

  /// Registers tile footprints with the owning devices.
  void account_memory();

 private:
  sim::Machine& machine_;
  int groups_ = 0;
  PartitionVector partition_;
  /// tiles_[rank] = the A^{j,s} tiles this rank multiplies, keyed by its
  /// local round index t (stage s = t * c + group_of(rank)).
  std::vector<std::vector<sparse::Csr>> tiles_;
  std::vector<std::unique_ptr<comm::Communicator>> group_comms_;  // per group
  std::vector<std::unique_ptr<comm::Communicator>> pair_comms_;   // per block
  bool memory_accounted_ = false;
};

class DistSpmm15DChained : public DistExecutor {
 public:
  /// The schedule needs pairs over an even rank count, and below 4 ranks a
  /// "group" broadcast degenerates to nothing the 1D path doesn't already
  /// do. The Planner falls back to 1d when this is false.
  [[nodiscard]] static bool feasible(int parts) {
    return parts >= 4 && parts % 2 == 0;
  }

  /// `grid` is the *caller-owned* P-way tile grid (the same one DistSpmm
  /// runs on — the Planner guarantees it outlives this executor). Only
  /// device-memory accounting is added here: rank j must also hold its
  /// partner row's tiles for the stages it covers. `options` should match
  /// the trainer communicator's (duration_scale parity keeps the Planner's
  /// pricing exact).
  DistSpmm15DChained(sim::Machine& machine, const TileGrid& grid,
                     comm::CommOptions options = {});
  ~DistSpmm15DChained() override;

  DistSpmm15DChained(const DistSpmm15DChained&) = delete;
  DistSpmm15DChained& operator=(const DistSpmm15DChained&) = delete;

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int pair_of(int rank) const {
    return rank < groups_ ? rank + groups_ : rank - groups_;
  }

  /// Uses input/output/bc1/d/input_ready/slot_readers (slot 0 only — the
  /// chained schedule is single-buffered; bc2/overlap are ignored, so
  /// there is no overlap-contention window to dilate compute for).
  DistResult run(const DistIo& io) override;

  /// Reserves the partner-row tile footprints (the grid's own tiles are
  /// accounted by the owning DistSpmm). Call once; released on
  /// destruction. The per-rank partial buffers account themselves lazily
  /// at first run (they are width-dependent).
  void account_memory();

  /// Extra bytes rank `rank` needs at dense width `d` beyond what the 1D
  /// path uses: the partner-half tiles plus the partial buffer. The
  /// Planner's feasibility check prices this against free device memory.
  [[nodiscard]] std::uint64_t extra_bytes(int rank, std::int64_t d) const;

 private:
  void ensure_partials(std::int64_t d);
  [[nodiscard]] std::uint64_t partner_tile_bytes(int rank) const;

  sim::Machine& machine_;
  const TileGrid& grid_;
  int groups_ = 0;
  std::vector<std::unique_ptr<comm::Communicator>> group_comms_;  // [2]
  std::vector<std::unique_ptr<comm::Communicator>> pair_comms_;   // [G]
  /// partial_[r]: rank r's stage-prefix/suffix accumulator for its PAIR
  /// rank's output row block (capacity size(pair_of(r)) x d).
  std::vector<std::unique_ptr<sim::DeviceBuffer>> partial_;
  std::int64_t partial_width_ = 0;
  /// Last task to touch partial_[r] in the previous product (the buffers
  /// outlive a product, so this write-after-read/write chain must too).
  std::vector<sim::Event> partial_last_use_;
  bool memory_accounted_ = false;
};

}  // namespace mggcn::core
