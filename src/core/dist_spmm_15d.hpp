// 1.5D distributed SpMM with replication factor c = 2 — the alternative
// algorithm §5.1 analyzes (and rejects) for MG-GCN.
//
// Layout for P ranks, c = 2, G = P/c row blocks:
//   - rank r = g*G + j belongs to replica group g ∈ {0, 1} and holds a
//     copy of the dense block H^j  (H is replicated c times -> 2x memory);
//   - the adjacency tile A^{js} lives only on rank (s mod c, j): each
//     group covers the stages congruent to its id, so the G stages run in
//     G/c rounds with both groups broadcasting concurrently;
//   - a final reduction combines the two partial C^j blocks across the
//     paired ranks (0, j) and (1, j) — on DGX-1's cube mesh that pair has
//     only 2 links, which is exactly why §5.1 finds 1.5D slower there.
//
// bench_ablation_15d measures this implementation against the 1D DistSpmm
// and against §5.1's closed-form prediction (2/3x on DGX-1, 4/3x on
// DGX-A100, 2x memory).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "core/partition.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"

namespace mggcn::core {

class DistSpmm15D {
 public:
  static constexpr int kReplication = 2;  // c

  /// `op` is the full (already normalized/transposed) operator; the
  /// machine must have an even device count >= 4.
  DistSpmm15D(sim::Machine& machine, const sparse::Csr& op);
  ~DistSpmm15D();

  DistSpmm15D(const DistSpmm15D&) = delete;
  DistSpmm15D& operator=(const DistSpmm15D&) = delete;

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] const PartitionVector& partition() const { return partition_; }
  /// The row block held by a rank (its index within its group).
  [[nodiscard]] int block_of(int rank) const { return rank % groups_; }
  [[nodiscard]] int group_of(int rank) const { return rank / groups_; }

  struct Io {
    /// Per-rank dense blocks: rank r supplies H^{block_of(r)}
    /// (size(block) x d) — the replicated input.
    std::vector<sim::DeviceBuffer*> input;
    /// Per-rank partial outputs (size(block) x d). After run(), the ranks
    /// of group 0 hold the final C blocks (the reduction is an allreduce,
    /// so group 1's copies match).
    std::vector<sim::DeviceBuffer*> output;
    /// Per-rank broadcast buffer (max_part x d).
    std::vector<sim::DeviceBuffer*> bc;
    std::int64_t d = 0;
    std::vector<sim::Event> input_ready;
  };

  struct Result {
    /// Per-rank completion of the (reduced) output block.
    std::vector<sim::Event> done;
  };

  Result run(const Io& io);

  /// Registers tile footprints with the owning devices.
  void account_memory();

 private:
  sim::Machine& machine_;
  int groups_ = 0;
  PartitionVector partition_;
  /// tiles_[rank] = the A^{j,s} tiles this rank multiplies, keyed by its
  /// local round index t (stage s = t * c + group_of(rank)).
  std::vector<std::vector<sparse::Csr>> tiles_;
  std::vector<std::unique_ptr<comm::Communicator>> group_comms_;  // per group
  std::vector<std::unique_ptr<comm::Communicator>> pair_comms_;   // per block
  bool memory_accounted_ = false;
};

}  // namespace mggcn::core
