// Low-latency inference serving tier (node-classification queries against a
// trained MG-GCN model).
//
// A trained GCN answers a query for vertex v with row v of the forward
// pass's logits. Only the last layer depends on which vertices are asked
// for, so the server materializes an *embedding store* once — the
// penultimate activations (already multiplied by the last weight matrix
// when the layer runs GeMM-first, §4.4) — shards it across the simulated
// devices exactly like training shards H, and then answers a query by
// re-running just the last aggregation over the query's neighborhood:
//
//   gemm-first:  logits_v = Â^T[v, :] * (H^{L-1} W^L)     (1-row SpMM)
//   spmm-first:  logits_v = (Â^T[v, :] * H^{L-1}) W^L     (1-row SpMM+GeMM)
//
// Per-query work therefore gathers the query's neighbor rows — local shard
// reads at HBM cost, remote rows over the interconnect (priced with
// Communicator::sendv_rows_seconds, the same model training charges), with
// an optional embedding cache of hot remote rows (core::FeatureCache
// semantics, MGGCN_SERVE_CACHE) — and runs the reference kernels on the
// gathered block. The kernel-policy registry's bit-identity contract
// (sparse/spmm.hpp) makes the recomputed row equal, bit for bit, to the
// trainer's staged forward pass at every batch size and cache mode.
//
// Load is open-loop (serve::WorkloadGen): requests arrive on the simulated
// clock whether or not the server keeps up, so queueing delay is measured
// instead of throttled away. A micro-batcher groups arrivals:
//
//   - kPerRequest: every query dispatches alone (the latency baseline).
//   - kFixed:      wait for MGGCN_SERVE_BATCH queries, then dispatch.
//   - kDeadline:   accumulate up to the batch cap or until waiting longer
//                  would spend a member's deadline, pricing the batch's
//                  service time with the simulator's own cost models.
//
// Batches round-robin across the devices (each device is one serving
// replica of the sharded store); per-replica batches execute in order.
// Simulated graph-update events invalidate cached rows (timing and
// accounting only — the store itself is static, so predictions stay
// bit-identical).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "comm/communicator.hpp"
#include "core/feature_cache.hpp"
#include "core/partition.hpp"
#include "core/serve_mode.hpp"
#include "core/trainer.hpp"
#include "core/workload.hpp"
#include "dense/matrix.hpp"
#include "graph/datasets.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"

namespace mggcn::core {

enum class BatchPolicy {
  kPerRequest = 0,
  kFixed = 1,
  kDeadline = 2,
};

inline constexpr int kNumBatchPolicies = 3;

/// Stable lower-case name ("per-request" | "fixed" | "deadline").
[[nodiscard]] const char* batch_policy_name(BatchPolicy policy);

/// Parses a policy name; nullopt when unknown.
[[nodiscard]] std::optional<BatchPolicy> parse_batch_policy(
    std::string_view name);

struct ServeOptions {
  BatchPolicy policy = BatchPolicy::kDeadline;
  /// Maximum micro-batch size; defaults to the MGGCN_SERVE_BATCH registry.
  std::int64_t max_batch = serve_batch();
  /// kDeadline wait budget, seconds; defaults to MGGCN_SERVE_SLACK.
  double slack_seconds = serve_slack_seconds();
  /// Embedding-cache policy; defaults to the MGGCN_SERVE_CACHE registry.
  ServeCacheMode cache_mode = serve_cache_mode();
  /// Per-replica cache capacity as a fraction of the graph's vertices.
  double cache_capacity_fraction = 0.05;
  /// Workspace-pool policy (see mem/pool_mode.hpp). Pooled modes lease the
  /// store shards, serving scratch, and embedding caches from the
  /// per-device pool — sharing one budget with a co-resident trainer or
  /// pipeline when `pool` is set — and recycle the per-serve gather
  /// scratch between calls. kOff keeps the static allocation bit for bit;
  /// predictions are identical in every mode.
  mem::PoolMode pool_mode = mem::pool_mode();
  /// Shared per-machine pools (mem::PoolSet::create) for cross-component
  /// reuse with the training engines.
  std::shared_ptr<mem::PoolSet> pool;
};

/// EpochStats-style counters for one serve() run.
struct ServeStats {
  std::int64_t serve_requests = 0;
  std::int64_t serve_batches = 0;
  double serve_mean_batch_size = 0.0;

  /// Simulated seconds from the first arrival to the last completion.
  double serve_span_seconds = 0.0;
  /// serve_requests / serve_span_seconds.
  double serve_qps = 0.0;

  double serve_p50_latency = 0.0;
  double serve_p99_latency = 0.0;
  double serve_max_latency = 0.0;
  double serve_mean_latency = 0.0;
  /// Fraction of requests completing after their deadline (0 when the
  /// workload carries no deadlines).
  double serve_deadline_miss_rate = 0.0;

  /// Embedding-tier counters (remote rows only; local shard reads are free
  /// of the cache and not counted).
  std::uint64_t serve_cache_hits = 0;
  std::uint64_t serve_cache_misses = 0;
  double serve_cache_hit_rate = 0.0;

  std::int64_t serve_graph_updates = 0;
  std::int64_t serve_invalidations = 0;

  /// Simulated seconds enqueued for gathers/pulls vs inference kernels.
  double serve_gather_seconds = 0.0;
  double serve_infer_seconds = 0.0;
};

class InferenceServer {
 public:
  /// Materializes the serving state from a trained model. The trainer must
  /// hold a completed forward pass (call run_forward() first) — the store
  /// is built from its penultimate activations and last weight matrix. In
  /// phantom mode only shapes/costs are materialized (no values, no
  /// predictions). `trainer` is only used during construction.
  InferenceServer(sim::Machine& machine, MgGcnTrainer& trainer,
                  const graph::Dataset& dataset, ServeOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Serves an arrival-ordered request trace (with optional time-ordered
  /// graph-update events), drains the machine, and returns the latency /
  /// throughput accounting. Arrival times are relative to the machine's
  /// clock at the call. Callable repeatedly; each call starts a fresh
  /// latency ledger but keeps the warmed embedding cache.
  ServeStats serve(std::span<const serve::Request> requests,
                   std::span<const serve::GraphUpdate> updates = {});

  /// Logits of the last serve() call's requests, row i for request i
  /// (real mode only; empty in phantom mode). Bit-identical to the
  /// trainer's gather_logits() rows for the queried vertices.
  [[nodiscard]] const dense::HostMatrix& predictions() const {
    return predictions_;
  }

  /// The concrete cache mode plan_auto resolved (kOff or kEmbed).
  [[nodiscard]] ServeCacheMode cache_mode_used() const {
    return cache_mode_used_;
  }
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  /// Host-side estimate of one full micro-batch's service seconds (what
  /// the deadline policy prices waiting against).
  [[nodiscard]] double estimated_batch_seconds() const {
    return est_batch_seconds_;
  }

 private:
  struct Batch {
    int replica = 0;
    double close_time = 0.0;               ///< relative to the serve base
    std::vector<std::int64_t> request_ids;  ///< indices into the trace
    /// Ascending permuted row ids of the union of the batch's neighbor
    /// rows; scratch row i holds frontier[i].
    std::vector<std::uint32_t> frontier;
    /// Batch adjacency (request rows x frontier columns, compact).
    sparse::Csr adj;
  };

  struct Replica {
    mem::PooledBuffer store_shard;  ///< this rank's store rows
    mem::PooledBuffer scratch;      ///< gathered frontier rows (per serve)
    mem::PooledBuffer out;          ///< batch logits
    mem::PooledBuffer tmp;          ///< spmm-first intermediate
    FeatureCache cache;             ///< hot remote store rows
    sim::Event chain;               ///< previous batch's completion
  };

  void materialize_store(MgGcnTrainer& trainer);
  void build_caches();
  [[nodiscard]] std::vector<Batch> plan_batches(
      std::span<const serve::Request> requests);
  void plan_frontier(Batch* batch, std::span<const serve::Request> requests);
  /// Enqueues one batch's pull/gather/infer/admit tasks; returns the
  /// completion event and accumulates cost seconds into the counters.
  sim::Event enqueue_batch(const Batch& batch, double base,
                           ServeStats* stats);
  void enqueue_invalidate(const serve::GraphUpdate& update, double base,
                          ServeStats* stats);

  sim::Machine& machine_;
  ServeOptions options_;
  PartitionVector partition_;
  std::vector<std::uint32_t> perm_;  ///< original -> permuted vertex id
  sparse::Csr a_hat_t_;              ///< forward operator (permuted order)
  std::unique_ptr<comm::Communicator> comm_;
  /// Declared before replicas_ so leases die before their pools.
  std::shared_ptr<mem::PoolSet> pool_;

  std::int64_t d_store_ = 0;  ///< store row width
  std::int64_t d_out_ = 0;    ///< classes
  bool spmm_first_ = false;   ///< last layer's §4.4 order
  dense::HostMatrix store_;   ///< n x d_store, permuted order (real mode)
  dense::HostMatrix weight_;  ///< last W (spmm-first, real mode)

  ServeCacheMode cache_mode_used_ = ServeCacheMode::kOff;
  double est_batch_seconds_ = 0.0;
  std::vector<Replica> replicas_;

  dense::HostMatrix predictions_;
};

}  // namespace mggcn::core
