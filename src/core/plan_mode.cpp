#include "core/plan_mode.hpp"

#include <atomic>

#include "util/env.hpp"

namespace mggcn::core {

namespace {

std::atomic<PlanMode>& active_mode() {
  static std::atomic<PlanMode> mode{
      util::env_enum("MGGCN_PLAN", PlanMode::kAuto, parse_plan_mode,
                     "'1d', '15d', 'replicated', or 'auto'")};
  return mode;
}

}  // namespace

const char* plan_mode_name(PlanMode mode) {
  switch (mode) {
    case PlanMode::k1D:
      return "1d";
    case PlanMode::k15D:
      return "15d";
    case PlanMode::kReplicated:
      return "replicated";
    case PlanMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<PlanMode> parse_plan_mode(std::string_view name) {
  if (name == "1d") return PlanMode::k1D;
  if (name == "15d") return PlanMode::k15D;
  if (name == "replicated") return PlanMode::kReplicated;
  if (name == "auto") return PlanMode::kAuto;
  return std::nullopt;
}

PlanMode plan_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_plan_mode(PlanMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::core
