#include "core/plan_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace mggcn::core {

namespace {

PlanMode mode_from_env() {
  const char* env = std::getenv("MGGCN_PLAN");
  if (env == nullptr || *env == '\0') return PlanMode::kAuto;
  const auto parsed = parse_plan_mode(env);
  MGGCN_CHECK_MSG(parsed.has_value(),
                  std::string("MGGCN_PLAN must be '1d', '15d', 'replicated', "
                              "or 'auto', got '") +
                      env + "'");
  return *parsed;
}

std::atomic<PlanMode>& active_mode() {
  static std::atomic<PlanMode> mode{mode_from_env()};
  return mode;
}

}  // namespace

const char* plan_mode_name(PlanMode mode) {
  switch (mode) {
    case PlanMode::k1D:
      return "1d";
    case PlanMode::k15D:
      return "15d";
    case PlanMode::kReplicated:
      return "replicated";
    case PlanMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<PlanMode> parse_plan_mode(std::string_view name) {
  if (name == "1d") return PlanMode::k1D;
  if (name == "15d") return PlanMode::k15D;
  if (name == "replicated") return PlanMode::kReplicated;
  if (name == "auto") return PlanMode::kAuto;
  return std::nullopt;
}

PlanMode plan_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_plan_mode(PlanMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::core
