// Distributed multi-stage SpMM (§4.1, Figs. 2-3) with optional
// communication/computation overlap (§4.3, Fig. 8).
//
// Semantics: with the symmetric 1D partition p, rank i owns tile row i of
// the (already transposed, for the forward direction) adjacency operator and
// the i-th row block of the dense input. The product runs in P stages; at
// stage s, rank s broadcasts its dense block and every rank i accumulates
//
//     C^i += A^{is} * H^s .
//
// Without overlap, stage s+1's broadcast waits for stage s's SpMM (one
// broadcast buffer BC1). With overlap, broadcasts run on the comm stream one
// stage ahead into the double buffer BC1/BC2: broadcast s+1 only waits for
// SpMM s-1 (the previous reader of that buffer), and SpMM kernels run with a
// reduced HBM bandwidth share to model the NVLink contention the paper
// measures (~1/6 on V100).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/comm_mode.hpp"
#include "comm/communicator.hpp"
#include "core/partition.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

class DistSpmm {
 public:
  /// `grid` holds the operator's tiles: grid.tile(i, s) multiplies the
  /// stage-s broadcast on rank i. `mode` selects the exchange path (dense
  /// broadcast, compacted ghost-row sendv, or per-stage cost-model
  /// auto-selection); it defaults to the process-wide MGGCN_COMM setting.
  DistSpmm(sim::Machine& machine, comm::Communicator& comm, TileGrid grid,
           comm::CommMode mode = comm::comm_mode());

  /// Registers the tiles' CSR footprints with each device's memory
  /// accounting, plus — under the compact/auto exchange modes — the
  /// ghost-map structures (per-tile required-row list + remapped column
  /// indices) the compacted path needs on-device. Call once after
  /// construction; released on destruction.
  void account_memory();
  ~DistSpmm();

  DistSpmm(const DistSpmm&) = delete;
  DistSpmm& operator=(const DistSpmm&) = delete;

  struct Io {
    /// Per-rank dense input blocks (part_size(r) x d each).
    std::vector<sim::DeviceBuffer*> input;
    /// Per-rank outputs (part_size(r) x d); overwritten (beta = 0).
    std::vector<sim::DeviceBuffer*> output;
    /// Per-rank broadcast buffers (max_part_size x d capacity).
    std::vector<sim::DeviceBuffer*> bc1;
    /// Second broadcast buffer; required iff overlap.
    std::vector<sim::DeviceBuffer*> bc2;
    /// Dense width.
    std::int64_t d = 0;
    /// Per-rank events that must complete before that rank's input block
    /// may be read (i.e. before its broadcast stage).
    std::vector<sim::Event> input_ready;

    bool overlap = false;
    /// HBM bandwidth share for SpMM kernels while overlapped. The matching
    /// comm-side dilation is configured on the Communicator
    /// (CommOptions::duration_scale).
    double compute_bandwidth_scale = 1.0;
    /// Baseline-emulation: multiplies SpMM memory traffic and the kernel
    /// launch count (see TrainConfig).
    double traffic_factor = 1.0;
    double launch_multiplier = 1.0;

    /// Per-rank, per-slot events of the last SpMM that READ each broadcast
    /// buffer ([rank][0] = BC1, [rank][1] = BC2). The buffers outlive any
    /// single staged product (they are shared across layers and between the
    /// forward and backward operators, §4.2), so this write-after-read
    /// hazard state must too: it is owned by the caller and updated here.
    std::vector<std::array<sim::Event, 2>>* slot_readers = nullptr;
  };

  struct Result {
    /// Per-rank completion of the rank's output block.
    std::vector<sim::Event> done;
    /// Per-rank release of the rank's *input* block (its broadcast has been
    /// consumed; the buffer may be overwritten).
    std::vector<sim::Event> input_released;
  };

  /// Enqueues the whole staged product; returns immediately.
  Result run(const Io& io);

  [[nodiscard]] const TileGrid& grid() const { return grid_; }
  [[nodiscard]] comm::CommMode mode() const { return mode_; }
  [[nodiscard]] const PartitionVector& partition() const {
    return grid_.partition;
  }
  [[nodiscard]] int parts() const { return grid_.parts(); }

 private:
  sim::Machine& machine_;
  comm::Communicator& comm_;
  TileGrid grid_;
  comm::CommMode mode_ = comm::CommMode::kDense;
  bool memory_accounted_ = false;
  /// Per-rank ghost-map bytes reserved by account_memory (exact release).
  std::vector<std::uint64_t> ghost_map_bytes_;
};

}  // namespace mggcn::core
