// Distributed multi-stage SpMM (§4.1, Figs. 2-3) with optional
// communication/computation overlap (§4.3, Fig. 8).
//
// Semantics: with the symmetric 1D partition p, rank i owns tile row i of
// the (already transposed, for the forward direction) adjacency operator and
// the i-th row block of the dense input. The product runs in P stages; at
// stage s, rank s broadcasts its dense block and every rank i accumulates
//
//     C^i += A^{is} * H^s .
//
// Without overlap, stage s+1's broadcast waits for stage s's SpMM (one
// broadcast buffer BC1). With overlap, broadcasts run on the comm stream one
// stage ahead into the double buffer BC1/BC2: broadcast s+1 only waits for
// SpMM s-1 (the previous reader of that buffer), and SpMM kernels run with a
// reduced HBM bandwidth share to model the NVLink contention the paper
// measures (~1/6 on V100).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/comm_mode.hpp"
#include "comm/communicator.hpp"
#include "core/dist_executor.hpp"
#include "core/partition.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

class DistSpmm : public DistExecutor {
 public:
  /// `grid` holds the operator's tiles: grid.tile(i, s) multiplies the
  /// stage-s broadcast on rank i. `mode` selects the exchange path (dense
  /// broadcast, compacted ghost-row sendv, or per-stage cost-model
  /// auto-selection); it defaults to the process-wide MGGCN_COMM setting.
  DistSpmm(sim::Machine& machine, comm::Communicator& comm, TileGrid grid,
           comm::CommMode mode = comm::comm_mode());

  /// Registers the tiles' CSR footprints with each device's memory
  /// accounting, plus — under the compact/auto exchange modes — the
  /// ghost-map structures (per-tile required-row list + remapped column
  /// indices) the compacted path needs on-device. Call once after
  /// construction; released on destruction.
  void account_memory();
  ~DistSpmm() override;

  DistSpmm(const DistSpmm&) = delete;
  DistSpmm& operator=(const DistSpmm&) = delete;

  /// The shared executor contract (core/dist_executor.hpp). The aliases
  /// keep the established DistSpmm::Io / DistSpmm::Result spellings.
  using Io = DistIo;
  using Result = DistResult;

  /// Enqueues the whole staged product; returns immediately.
  Result run(const Io& io) override;

  [[nodiscard]] const TileGrid& grid() const { return grid_; }
  [[nodiscard]] comm::CommMode mode() const { return mode_; }
  [[nodiscard]] const PartitionVector& partition() const {
    return grid_.partition;
  }
  [[nodiscard]] int parts() const { return grid_.parts(); }

 private:
  sim::Machine& machine_;
  comm::Communicator& comm_;
  TileGrid grid_;
  comm::CommMode mode_ = comm::CommMode::kDense;
  bool memory_accounted_ = false;
  /// Per-rank ghost-map bytes reserved by account_memory (exact release).
  std::vector<std::uint64_t> ghost_map_bytes_;
};

}  // namespace mggcn::core
