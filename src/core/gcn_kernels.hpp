// GCN-specific host kernels: fused softmax cross-entropy (loss + gradient),
// accuracy counting, and the Adam update — with their cost descriptors.
#pragma once

#include <cstdint>

#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"

namespace mggcn::core {

/// Fused softmax + cross-entropy over the masked rows of `logits`
/// (n x classes). Writes the gradient w.r.t. the logits IN PLACE into
/// `logits` (the paper's in-buffer loss layer), scaled by 1 / total_train.
/// Unmasked rows get zero gradient. Returns {sum loss, #correct} over the
/// masked rows.
struct LossResult {
  double loss_sum = 0.0;
  std::int64_t correct = 0;
  std::int64_t counted = 0;
};

LossResult softmax_cross_entropy_inplace(dense::MatrixView logits,
                                         const std::int32_t* labels,
                                         const std::uint8_t* mask,
                                         std::int64_t total_train);

/// Argmax-accuracy over masked rows, without touching the logits.
LossResult evaluate_accuracy(dense::ConstMatrixView logits,
                             const std::int32_t* labels,
                             const std::uint8_t* mask);

/// One Adam step over `n` parameters: updates weights, m, and v in place.
void adam_update(float* weights, const float* gradient, float* m, float* v,
                 std::int64_t n, int step, double learning_rate, double beta1,
                 double beta2, double epsilon);

/// Cost of the fused loss layer on n x classes logits.
[[nodiscard]] sim::KernelCost loss_cost(std::int64_t n, std::int64_t classes);

/// Cost of an Adam step on n parameters (reads w, g, m, v; writes w, m, v).
[[nodiscard]] sim::KernelCost adam_cost(std::int64_t n);

}  // namespace mggcn::core
