#include "core/serve_mode.hpp"

#include <atomic>

#include "util/env.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

std::atomic<ServeCacheMode>& active_mode() {
  static std::atomic<ServeCacheMode> mode{
      util::env_enum("MGGCN_SERVE_CACHE", ServeCacheMode::kAuto,
                     parse_serve_cache_mode, "'off', 'embed', or 'auto'")};
  return mode;
}

std::atomic<std::int64_t>& active_batch() {
  static std::atomic<std::int64_t> batch{
      util::env_int("MGGCN_SERVE_BATCH", 16, 1, 4096)};
  return batch;
}

std::atomic<double>& active_slack() {
  static std::atomic<double> slack{
      util::env_double("MGGCN_SERVE_SLACK", 200.0, 0.0, 1e6,
                       "a wait budget in microseconds, in [0, 1e6]") *
      1e-6};
  return slack;
}

}  // namespace

const char* serve_cache_mode_name(ServeCacheMode mode) {
  switch (mode) {
    case ServeCacheMode::kOff:
      return "off";
    case ServeCacheMode::kEmbed:
      return "embed";
    case ServeCacheMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<ServeCacheMode> parse_serve_cache_mode(std::string_view name) {
  if (name == "off") return ServeCacheMode::kOff;
  if (name == "embed") return ServeCacheMode::kEmbed;
  if (name == "auto") return ServeCacheMode::kAuto;
  return std::nullopt;
}

ServeCacheMode serve_cache_mode() {
  return active_mode().load(std::memory_order_relaxed);
}

void set_serve_cache_mode(ServeCacheMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

std::int64_t serve_batch() {
  return active_batch().load(std::memory_order_relaxed);
}

void set_serve_batch(std::int64_t batch) {
  MGGCN_CHECK_MSG(batch >= 1 && batch <= 4096,
                  "serve batch must be in [1, 4096]");
  active_batch().store(batch, std::memory_order_relaxed);
}

double serve_slack_seconds() {
  return active_slack().load(std::memory_order_relaxed);
}

void set_serve_slack_seconds(double seconds) {
  MGGCN_CHECK_MSG(seconds >= 0.0 && seconds <= 1.0,
                  "serve slack must be in [0, 1] seconds");
  active_slack().store(seconds, std::memory_order_relaxed);
}

}  // namespace mggcn::core
