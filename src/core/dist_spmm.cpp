#include "core/dist_spmm.hpp"

#include <algorithm>
#include <array>

#include "dense/kernel_policy.hpp"
#include "dense/matrix.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"

namespace mggcn::core {

DistSpmm::DistSpmm(sim::Machine& machine, comm::Communicator& comm,
                   TileGrid grid, comm::CommMode mode)
    : machine_(machine), comm_(comm), grid_(std::move(grid)), mode_(mode) {
  MGGCN_CHECK_MSG(grid_.parts() == machine_.num_devices(),
                  "tile grid parts must equal device count");
}

void DistSpmm::account_memory() {
  MGGCN_CHECK_MSG(!memory_accounted_, "memory already accounted");
  ghost_map_bytes_.assign(static_cast<std::size_t>(parts()), 0);
  for (int r = 0; r < parts(); ++r) {
    std::uint64_t bytes = 0;
    for (int s = 0; s < parts(); ++s) bytes += grid_.tile(r, s).footprint_bytes();
    machine_.device(r).reserve_memory(bytes, "adjacency tiles");
    if (mode_ == comm::CommMode::kDense || parts() <= 1) continue;
    // Compact/auto exchange: each off-diagonal tile additionally holds its
    // ghost map — the sorted required-row list plus a remapped column
    // index per nonzero (4 bytes each). Counted with a standalone pass
    // instead of building the plans here, so the one-time inspector tasks
    // still land on the simulated timeline at first use.
    std::uint64_t ghost = 0;
    for (int s = 0; s < parts(); ++s) {
      if (s == r) continue;
      const sparse::Csr& tile = grid_.tile(r, s);
      ghost += static_cast<std::uint64_t>(sparse::count_distinct_cols(tile) +
                                          tile.nnz()) * 4;
    }
    ghost_map_bytes_[static_cast<std::size_t>(r)] = ghost;
    if (ghost > 0) machine_.device(r).reserve_memory(ghost, "ghost maps");
  }
  memory_accounted_ = true;
}

DistSpmm::~DistSpmm() {
  if (!memory_accounted_) return;
  for (int r = 0; r < parts(); ++r) {
    std::uint64_t bytes = 0;
    for (int s = 0; s < parts(); ++s) bytes += grid_.tile(r, s).footprint_bytes();
    machine_.device(r).release_memory(bytes);
    const std::uint64_t ghost = ghost_map_bytes_[static_cast<std::size_t>(r)];
    if (ghost > 0) machine_.device(r).release_memory(ghost);
  }
}

namespace {

sim::KernelCost scaled_cost(sim::KernelCost cost, const DistSpmm::Io& io) {
  cost.stream_bytes *= io.traffic_factor;
  cost.gather_bytes *= io.traffic_factor;
  cost.launches = static_cast<int>(cost.launches * io.launch_multiplier + 0.5);
  return cost;
}

sim::KernelCost scaled_spmm_cost(const sparse::Csr& tile, std::int64_t d,
                                 const DistSpmm::Io& io) {
  return scaled_cost(sparse::spmm_cost(tile, d), io);
}

/// One stage's exchange decision, priced before the pipeline starts so the
/// overlap contention estimate for stage s can use stage s+1's *chosen*
/// duration.
struct StageChoice {
  bool compact = false;
  /// Estimated exchange duration of the chosen path.
  double comm_seconds = 0.0;
  /// Payload delivered to the receivers (compact: sum of ghost rows;
  /// dense: the full block per receiver).
  std::uint64_t wire_bytes = 0;
  /// Portion of wire_bytes delivered to ranks on other nodes.
  std::uint64_t inter_bytes = 0;
  /// What the dense broadcast would have delivered.
  std::uint64_t dense_bytes = 0;
  /// Non-empty per-destination payloads of the compact path.
  int messages = 0;
};

}  // namespace

DistSpmm::Result DistSpmm::run(const Io& io) {
  const int p = parts();
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np);
  MGGCN_CHECK(io.bc1.size() == np);
  MGGCN_CHECK(!io.overlap || io.bc2.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);

  Result result;
  result.done.resize(np);
  result.input_released.resize(np);

  // Under the planned kernel policy every tile executes through its cached
  // SpmmPlan. Plans are resolved here on the enqueue thread (TileGrid's lazy
  // build is not thread-safe) and the one-time inspector cost is charged to
  // the owning device's compute stream the first time a tile's plan is
  // built — every later product reuses the plan for free. The compacted
  // exchange also needs the plans (their ghost sets drive the packing and
  // the per-stage dense/compact decision), so compact and auto modes
  // resolve them under every kernel policy — but only compact-path
  // *execution* goes through the plan then; dense-path SpMMs keep the
  // policy-dispatched kernels.
  const bool policy_plans =
      dense::kernel_policy() == dense::KernelPolicy::kPlanned;
  const bool compact_capable = mode_ != comm::CommMode::kDense && p > 1;
  const bool use_plans = policy_plans || compact_capable;
  auto resolve_plan = [&](int r, int s) -> const sparse::SpmmPlan* {
    if (!use_plans) return nullptr;
    const bool first_use = !grid_.plan_ready(r, s);
    const sparse::SpmmPlan* plan = &grid_.plan(r, s);
    if (first_use) {
      const sparse::Csr& tile = grid_.tile(r, s);
      sim::TaskDesc inspect;
      inspect.label = "spmm_inspect";
      inspect.kind = sim::TaskKind::kInspect;
      inspect.stage = s;
      inspect.cost =
          sparse::spmm_inspect_cost(tile.rows(), tile.nnz(), tile.cols());
      machine_.device(r).compute_stream().enqueue(std::move(inspect));
    }
    return plan;
  };

  if (p == 1) {
    // Single device: one local SpMM, no communication.
    const sparse::Csr& tile = grid_.tile(0, 0);
    const sparse::SpmmPlan* plan = resolve_plan(0, 0);
    sim::TaskDesc task;
    task.label = "spmm";
    task.kind = sim::TaskKind::kSpMM;
    task.stage = 0;
    task.cost = scaled_spmm_cost(tile, io.d, io);
    if (!io.input_ready.empty() && io.input_ready[0].valid()) {
      task.waits.push_back(io.input_ready[0]);
    }
    task.reads.push_back(io.input[0]->access());
    task.writes.push_back(io.output[0]->access());
    float* in = io.input[0]->data();
    float* out = io.output[0]->data();
    const std::int64_t d = io.d;
    task.body = [&tile, plan, in, out, d] {
      if (plan != nullptr) {
        plan->execute(tile, dense::ConstMatrixView{in, tile.cols(), d},
                      dense::MatrixView{out, tile.rows(), d}, 1.0f, 0.0f);
      } else {
        sparse::spmm(tile,
                     dense::ConstMatrixView{in, tile.cols(), d},
                     dense::MatrixView{out, tile.rows(), d});
      }
    };
    sim::Event done = machine_.device(0).compute_stream().enqueue(
        std::move(task));
    result.done[0] = done;
    result.input_released[0] = done;
    return result;
  }

  // Resolve every tile's plan before the staged pipeline starts: on the
  // first product this front-loads the inspector tasks as a prologue on
  // each compute stream instead of serializing them between stages (where
  // they would eat into compute/comm overlap); on every later product all
  // plans are ready and this loop enqueues nothing.
  std::vector<std::vector<const sparse::SpmmPlan*>> plans(
      np, std::vector<const sparse::SpmmPlan*>(np, nullptr));
  if (use_plans) {
    for (int s = 0; s < p; ++s) {
      for (int r = 0; r < p; ++r) {
        plans[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
            resolve_plan(r, s);
      }
    }
  }

  // Exchange selection, one decision per stage, priced with exactly the
  // models the simulator charges: a dense broadcast pays for the full
  // block once over the topology (multicast), the compacted path pays one
  // alpha per destination plus the actual ghost-row payload and the
  // root-side pack (sendv_rows_seconds). `compact` forces the compacted
  // path (deterministic volume for tests/benches); `auto` takes whichever
  // is cheaper, so dense graphs keep their old timings to the microsecond.
  std::vector<StageChoice> choices(np);
  for (int s = 0; s < p; ++s) {
    StageChoice& choice = choices[static_cast<std::size_t>(s)];
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(grid_.partition.size(s) * io.d) *
        sizeof(float);
    int remote_receivers = 0;
    for (int r = 0; r < p; ++r) {
      if (r != s && comm_.node_of(r) != comm_.node_of(s)) ++remote_receivers;
    }
    choice.dense_bytes = static_cast<std::uint64_t>(p - 1) * block_bytes;
    choice.wire_bytes = choice.dense_bytes;
    choice.inter_bytes =
        static_cast<std::uint64_t>(remote_receivers) * block_bytes;
    choice.comm_seconds = comm_.topology().broadcast_seconds(block_bytes, p);
    if (!compact_capable) continue;
    // The compacted payload is priced with the *actual* partition's ghost
    // sets via the same node-aggregated shape the exchange itself charges:
    // intra-node rows ride the NVLink fabric per destination, remote nodes
    // each receive one unioned message over the NIC. A locality-aware cut
    // thus directly cheapens the stage it improves.
    std::vector<std::span<const std::uint32_t>> stage_rows(
        static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      if (r == s) continue;
      stage_rows[static_cast<std::size_t>(r)] =
          plans[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)]
              ->ghost_rows();
    }
    const comm::SendvShape shape = comm_.sendv_shape(stage_rows, io.d, s);
    const double compact_seconds = comm_.sendv_rows_seconds(shape);
    if (mode_ == comm::CommMode::kCompact ||
        compact_seconds < choice.comm_seconds) {
      choice.compact = true;
      choice.comm_seconds = compact_seconds;
      choice.wire_bytes = shape.total_bytes();
      choice.inter_bytes = shape.inter_bytes;
      choice.messages = shape.messages();
    }
  }

  // Volume accounting happens here at enqueue time (main thread), so the
  // counters are deterministic regardless of worker scheduling.
  {
    sim::CommVolume volume;
    for (const StageChoice& choice : choices) {
      volume.wire_bytes += choice.wire_bytes;
      volume.wire_bytes_inter += choice.inter_bytes;
      volume.dense_bytes += choice.dense_bytes;
      volume.packs += static_cast<std::uint64_t>(choice.messages);
      if (choice.compact) {
        ++volume.compact_stages;
      } else {
        ++volume.dense_stages;
      }
    }
    machine_.trace().record_comm_volume(volume);
  }

  // Per rank and broadcast-slot, the SpMM event that last read that slot
  // (write-after-read hazard for the next broadcast into it). Persisted by
  // the caller across staged products because the buffers are shared.
  MGGCN_CHECK_MSG(io.slot_readers != nullptr && io.slot_readers->size() == np,
                  "slot_readers hazard state is required for multi-device");
  std::vector<std::array<sim::Event, 2>>& slot_last_reader = *io.slot_readers;
  std::vector<sim::Event> last_spmm(np);

  for (int s = 0; s < p; ++s) {
    const int slot = io.overlap ? (s % 2) : 0;
    const StageChoice& choice = choices[static_cast<std::size_t>(s)];

    // --- exchange of rank s's input block --------------------------------
    std::vector<comm::RankPart> parts_(np);
    for (int r = 0; r < p; ++r) {
      auto& part = parts_[static_cast<std::size_t>(r)];
      part.buffer = r == s ? io.input[static_cast<std::size_t>(s)]
                           : (slot == 0 ? io.bc1[static_cast<std::size_t>(r)]
                                        : io.bc2[static_cast<std::size_t>(r)]);
      if (r == s) {
        // Root: its block must have been produced.
        if (!io.input_ready.empty() &&
            io.input_ready[static_cast<std::size_t>(r)].valid()) {
          part.waits.push_back(io.input_ready[static_cast<std::size_t>(r)]);
        }
      } else {
        // Receiver: the previous reader of this broadcast slot must be done.
        const sim::Event& hazard =
            slot_last_reader[static_cast<std::size_t>(r)][static_cast<std::size_t>(slot)];
        if (hazard.valid()) part.waits.push_back(hazard);
        if (!io.overlap && last_spmm[static_cast<std::size_t>(r)].valid()) {
          // Non-overlapping schedule: fully serialize comm after compute.
          part.waits.push_back(last_spmm[static_cast<std::size_t>(r)]);
        }
      }
    }
    std::vector<sim::Event> bcast;
    if (choice.compact) {
      // Compacted exchange: rank s packs, per destination, only the ghost
      // rows that destination's tile gathers. The payloads land in the
      // same BC1/BC2 slots the dense path uses (a ghost set never exceeds
      // the block, so capacity and the slot write-after-read machinery are
      // unchanged) — §4.3 overlap composes for free.
      std::vector<std::span<const std::uint32_t>> rows(np);
      for (int r = 0; r < p; ++r) {
        if (r == s) continue;
        rows[static_cast<std::size_t>(r)] =
            plans[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)]
                ->ghost_rows();
      }
      bcast = comm_.sendv_rows(std::move(parts_), std::move(rows), io.d, s,
                               comm::StreamChoice::kComm, s);
    } else {
      const std::size_t count = static_cast<std::size_t>(
          grid_.partition.size(s) * io.d);
      bcast = comm_.broadcast(std::move(parts_), count, s,
                              comm::StreamChoice::kComm, s);
    }

    // --- per-rank SpMM with the received block ---------------------------
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      const sparse::Csr& tile = grid_.tile(r, s);
      const sparse::SpmmPlan* plan = plans[rr][static_cast<std::size_t>(s)];
      // Compact stages index the packed payload through the plan's ghost
      // map (the root's own block is always dense); dense-path SpMMs keep
      // the policy-dispatched kernels, so plans resolved only for their
      // ghost sets don't change which executor the active MGGCN_KERNELS
      // policy runs. Either way the per-element operation sequence is the
      // naive reference's, so every combination is bit-identical.
      const bool compact_exec = choice.compact && r != s;
      const sparse::SpmmPlan* dense_plan = policy_plans ? plan : nullptr;
      sim::DeviceBuffer* src =
          r == s ? io.input[rr] : (slot == 0 ? io.bc1[rr] : io.bc2[rr]);

      sim::TaskDesc task;
      task.label = "spmm";
      task.kind = sim::TaskKind::kSpMM;
      task.stage = s;
      // A compact gather reads from just the packed ghost rows — a smaller
      // working set, so more of the random traffic hits L2 (a real
      // locality win of the compaction, not just fewer wire bytes).
      task.cost =
          compact_exec
              ? scaled_cost(sparse::spmm_cost(tile.nnz(), tile.rows(),
                                              plan->ghost_count(), io.d),
                            io)
              : scaled_spmm_cost(tile, io.d, io);
      if (io.overlap && s + 1 < p) {
        // HBM contention is only paid while the next stage's exchange is
        // actually in flight: dilate by the expected overlap fraction
        // (the paper's ~1/6 bandwidth loss applies during that window).
        // Uses the *chosen* exchange duration, so a compacted next stage
        // steals less compute bandwidth.
        const double spmm_est = sim::CostModel::seconds(
            task.cost, machine_.device(r).profile());
        const double comm_est =
            choices[static_cast<std::size_t>(s) + 1].comm_seconds;
        const double contention = 1.0 - io.compute_bandwidth_scale;
        const double fraction =
            spmm_est > 0.0 ? std::min(1.0, comm_est / spmm_est) : 0.0;
        task.bandwidth_scale = 1.0 - fraction * contention;
      }
      task.waits.push_back(bcast[rr]);
      task.reads.push_back(src->access());
      // Stages s > 0 accumulate (beta = 1), which also reads the output.
      if (s > 0) task.reads.push_back(io.output[rr]->access());
      task.writes.push_back(io.output[rr]->access());

      float* in = src->data();
      float* out = io.output[rr]->data();
      const std::int64_t d = io.d;
      const float beta = s == 0 ? 0.0f : 1.0f;
      if (compact_exec) {
        task.body = [&tile, plan, in, out, d, beta] {
          plan->execute_compact(
              tile, dense::ConstMatrixView{in, plan->ghost_count(), d},
              dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
        };
      } else {
        task.body = [&tile, dense_plan, in, out, d, beta] {
          if (dense_plan != nullptr) {
            dense_plan->execute(tile,
                                dense::ConstMatrixView{in, tile.cols(), d},
                                dense::MatrixView{out, tile.rows(), d}, 1.0f,
                                beta);
          } else {
            sparse::spmm(tile, dense::ConstMatrixView{in, tile.cols(), d},
                         dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
          }
        };
      }

      sim::Event done =
          machine_.device(r).compute_stream().enqueue(std::move(task));
      if (r != s) {
        slot_last_reader[rr][static_cast<std::size_t>(slot)] = done;
      }
      last_spmm[rr] = done;
      if (r == s) {
        // The rank's own block is released once its broadcast completed AND
        // its own stage-s SpMM finished reading it. The SpMM waits on the
        // broadcast, so its completion covers both readers; signaling the
        // broadcast alone (the old behavior) let a caller overwrite
        // io.input[rr] while the root's SpMM was still reading it — a
        // write-after-read hazard in ExecutionMode::kReal.
        result.input_released[rr] = done;
      }
    }
  }

  result.done = last_spmm;
  return result;
}

}  // namespace mggcn::core
