#include "core/dist_spmm.hpp"

#include <algorithm>
#include <array>

#include "dense/kernel_policy.hpp"
#include "dense/matrix.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"

namespace mggcn::core {

DistSpmm::DistSpmm(sim::Machine& machine, comm::Communicator& comm,
                   TileGrid grid)
    : machine_(machine), comm_(comm), grid_(std::move(grid)) {
  MGGCN_CHECK_MSG(grid_.parts() == machine_.num_devices(),
                  "tile grid parts must equal device count");
}

void DistSpmm::account_memory() {
  MGGCN_CHECK_MSG(!memory_accounted_, "memory already accounted");
  for (int r = 0; r < parts(); ++r) {
    std::uint64_t bytes = 0;
    for (int s = 0; s < parts(); ++s) bytes += grid_.tile(r, s).footprint_bytes();
    machine_.device(r).reserve_memory(bytes, "adjacency tiles");
  }
  memory_accounted_ = true;
}

DistSpmm::~DistSpmm() {
  if (!memory_accounted_) return;
  for (int r = 0; r < parts(); ++r) {
    std::uint64_t bytes = 0;
    for (int s = 0; s < parts(); ++s) bytes += grid_.tile(r, s).footprint_bytes();
    machine_.device(r).release_memory(bytes);
  }
}

namespace {

sim::KernelCost scaled_spmm_cost(const sparse::Csr& tile, std::int64_t d,
                                 const DistSpmm::Io& io) {
  sim::KernelCost cost = sparse::spmm_cost(tile, d);
  cost.stream_bytes *= io.traffic_factor;
  cost.gather_bytes *= io.traffic_factor;
  cost.launches = static_cast<int>(cost.launches * io.launch_multiplier + 0.5);
  return cost;
}

}  // namespace

DistSpmm::Result DistSpmm::run(const Io& io) {
  const int p = parts();
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np);
  MGGCN_CHECK(io.bc1.size() == np);
  MGGCN_CHECK(!io.overlap || io.bc2.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);

  Result result;
  result.done.resize(np);
  result.input_released.resize(np);

  // Under the planned kernel policy every tile executes through its cached
  // SpmmPlan. Plans are resolved here on the enqueue thread (TileGrid's lazy
  // build is not thread-safe) and the one-time inspector cost is charged to
  // the owning device's compute stream the first time a tile's plan is
  // built — every later product reuses the plan for free.
  const bool use_plans =
      dense::kernel_policy() == dense::KernelPolicy::kPlanned;
  auto resolve_plan = [&](int r, int s) -> const sparse::SpmmPlan* {
    if (!use_plans) return nullptr;
    const bool first_use = !grid_.plan_ready(r, s);
    const sparse::SpmmPlan* plan = &grid_.plan(r, s);
    if (first_use) {
      sim::TaskDesc inspect;
      inspect.label = "spmm_inspect";
      inspect.kind = sim::TaskKind::kInspect;
      inspect.stage = s;
      inspect.cost = sparse::spmm_inspect_cost(grid_.tile(r, s).rows());
      machine_.device(r).compute_stream().enqueue(std::move(inspect));
    }
    return plan;
  };

  if (p == 1) {
    // Single device: one local SpMM, no communication.
    const sparse::Csr& tile = grid_.tile(0, 0);
    const sparse::SpmmPlan* plan = resolve_plan(0, 0);
    sim::TaskDesc task;
    task.label = "spmm";
    task.kind = sim::TaskKind::kSpMM;
    task.stage = 0;
    task.cost = scaled_spmm_cost(tile, io.d, io);
    if (!io.input_ready.empty() && io.input_ready[0].valid()) {
      task.waits.push_back(io.input_ready[0]);
    }
    task.reads.push_back(io.input[0]->access());
    task.writes.push_back(io.output[0]->access());
    float* in = io.input[0]->data();
    float* out = io.output[0]->data();
    const std::int64_t d = io.d;
    task.body = [&tile, plan, in, out, d] {
      if (plan != nullptr) {
        plan->execute(tile, dense::ConstMatrixView{in, tile.cols(), d},
                      dense::MatrixView{out, tile.rows(), d}, 1.0f, 0.0f);
      } else {
        sparse::spmm(tile,
                     dense::ConstMatrixView{in, tile.cols(), d},
                     dense::MatrixView{out, tile.rows(), d});
      }
    };
    sim::Event done = machine_.device(0).compute_stream().enqueue(
        std::move(task));
    result.done[0] = done;
    result.input_released[0] = done;
    return result;
  }

  // Resolve every tile's plan before the staged pipeline starts: on the
  // first product this front-loads the inspector tasks as a prologue on
  // each compute stream instead of serializing them between stages (where
  // they would eat into compute/comm overlap); on every later product all
  // plans are ready and this loop enqueues nothing.
  std::vector<std::vector<const sparse::SpmmPlan*>> plans(
      np, std::vector<const sparse::SpmmPlan*>(np, nullptr));
  if (use_plans) {
    for (int s = 0; s < p; ++s) {
      for (int r = 0; r < p; ++r) {
        plans[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
            resolve_plan(r, s);
      }
    }
  }

  // Per rank and broadcast-slot, the SpMM event that last read that slot
  // (write-after-read hazard for the next broadcast into it). Persisted by
  // the caller across staged products because the buffers are shared.
  MGGCN_CHECK_MSG(io.slot_readers != nullptr && io.slot_readers->size() == np,
                  "slot_readers hazard state is required for multi-device");
  std::vector<std::array<sim::Event, 2>>& slot_last_reader = *io.slot_readers;
  std::vector<sim::Event> last_spmm(np);

  for (int s = 0; s < p; ++s) {
    const int slot = io.overlap ? (s % 2) : 0;

    // --- broadcast of rank s's input block -------------------------------
    std::vector<comm::RankPart> parts_(np);
    for (int r = 0; r < p; ++r) {
      auto& part = parts_[static_cast<std::size_t>(r)];
      part.buffer = r == s ? io.input[static_cast<std::size_t>(s)]
                           : (slot == 0 ? io.bc1[static_cast<std::size_t>(r)]
                                        : io.bc2[static_cast<std::size_t>(r)]);
      if (r == s) {
        // Root: its block must have been produced.
        if (!io.input_ready.empty() &&
            io.input_ready[static_cast<std::size_t>(r)].valid()) {
          part.waits.push_back(io.input_ready[static_cast<std::size_t>(r)]);
        }
      } else {
        // Receiver: the previous reader of this broadcast slot must be done.
        const sim::Event& hazard =
            slot_last_reader[static_cast<std::size_t>(r)][static_cast<std::size_t>(slot)];
        if (hazard.valid()) part.waits.push_back(hazard);
        if (!io.overlap && last_spmm[static_cast<std::size_t>(r)].valid()) {
          // Non-overlapping schedule: fully serialize comm after compute.
          part.waits.push_back(last_spmm[static_cast<std::size_t>(r)]);
        }
      }
    }
    const std::size_t count = static_cast<std::size_t>(
        grid_.partition.size(s) * io.d);
    std::vector<sim::Event> bcast = comm_.broadcast(
        std::move(parts_), count, s, comm::StreamChoice::kComm, s);

    // --- per-rank SpMM with the received block ---------------------------
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      const sparse::Csr& tile = grid_.tile(r, s);
      const sparse::SpmmPlan* plan = plans[rr][static_cast<std::size_t>(s)];
      sim::DeviceBuffer* src =
          r == s ? io.input[rr] : (slot == 0 ? io.bc1[rr] : io.bc2[rr]);

      sim::TaskDesc task;
      task.label = "spmm";
      task.kind = sim::TaskKind::kSpMM;
      task.stage = s;
      task.cost = scaled_spmm_cost(tile, io.d, io);
      if (io.overlap && s + 1 < p) {
        // HBM contention is only paid while the next stage's broadcast is
        // actually in flight: dilate by the expected overlap fraction
        // (the paper's ~1/6 bandwidth loss applies during that window).
        const double spmm_est = sim::CostModel::seconds(
            task.cost, machine_.device(r).profile());
        const double bcast_est = comm_.topology().broadcast_seconds(
            static_cast<std::uint64_t>(grid_.partition.size(s + 1) * io.d) *
                sizeof(float),
            p);
        const double contention = 1.0 - io.compute_bandwidth_scale;
        const double fraction =
            spmm_est > 0.0 ? std::min(1.0, bcast_est / spmm_est) : 0.0;
        task.bandwidth_scale = 1.0 - fraction * contention;
      }
      task.waits.push_back(bcast[rr]);
      task.reads.push_back(src->access());
      // Stages s > 0 accumulate (beta = 1), which also reads the output.
      if (s > 0) task.reads.push_back(io.output[rr]->access());
      task.writes.push_back(io.output[rr]->access());

      float* in = src->data();
      float* out = io.output[rr]->data();
      const std::int64_t d = io.d;
      const float beta = s == 0 ? 0.0f : 1.0f;
      task.body = [&tile, plan, in, out, d, beta] {
        if (plan != nullptr) {
          plan->execute(tile, dense::ConstMatrixView{in, tile.cols(), d},
                        dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
        } else {
          sparse::spmm(tile, dense::ConstMatrixView{in, tile.cols(), d},
                       dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
        }
      };

      sim::Event done =
          machine_.device(r).compute_stream().enqueue(std::move(task));
      if (r != s) {
        slot_last_reader[rr][static_cast<std::size_t>(slot)] = done;
      }
      last_spmm[rr] = done;
      if (r == s) {
        // The rank's own block is released once its broadcast completed AND
        // its own stage-s SpMM finished reading it. The SpMM waits on the
        // broadcast, so its completion covers both readers; signaling the
        // broadcast alone (the old behavior) let a caller overwrite
        // io.input[rr] while the root's SpMM was still reading it — a
        // write-after-read hazard in ExecutionMode::kReal.
        result.input_released[rr] = done;
      }
    }
  }

  result.done = last_spmm;
  return result;
}

}  // namespace mggcn::core
