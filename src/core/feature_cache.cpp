#include "core/feature_cache.hpp"

#include <algorithm>

#include "sim/cost_model.hpp"
#include "util/error.hpp"

namespace mggcn::core {

FeatureCache::FeatureCache(sim::Device& device, std::int64_t d,
                           std::int64_t capacity_rows, CacheMode mode)
    : FeatureCache(nullptr, device, d, capacity_rows, mode) {}

FeatureCache::FeatureCache(mem::WorkspacePool* pool, sim::Device& device,
                           std::int64_t d, std::int64_t capacity_rows,
                           CacheMode mode) {
  MGGCN_CHECK_MSG(mode != CacheMode::kAuto,
                  "resolve kAuto through FeatureCache::plan_auto first");
  MGGCN_CHECK(d > 0 && capacity_rows >= 0);
  if (mode == CacheMode::kOff || capacity_rows == 0) return;
  mode_ = mode;
  d_ = d;
  capacity_rows_ = capacity_rows;
  buffer_ = mem::acquire_or_alloc(
      pool, device, static_cast<std::size_t>(capacity_rows * d), "FCACHE");
  slot_vertex_.reserve(static_cast<std::size_t>(capacity_rows));
}

FeatureCache::AutoDecision FeatureCache::plan_auto(
    CacheMode requested, std::int64_t capacity_rows, std::int64_t d,
    const comm::Communicator& comm, const sim::DeviceProfile& device,
    std::uint64_t available_bytes) {
  AutoDecision decision;
  const double row_bytes = static_cast<double>(d) * sizeof(float);

  // A hit reads the pinned row and writes it into the gather block at HBM
  // bandwidth; a miss rides a sendv message over the interconnect (payload
  // + the root's pack traffic — sendv_rows_seconds is exactly what the
  // extraction stage will be charged). Amortize the per-message alpha over
  // a typical miss batch so tiny-alpha fabrics don't flip the decision.
  sim::KernelCost hit_cost;
  hit_cost.stream_bytes = 2.0 * row_bytes;
  hit_cost.launches = 0;
  decision.hit_seconds_per_row = sim::CostModel::seconds(hit_cost, device);
  constexpr int kAmortizedRowsPerMessage = 64;
  decision.miss_seconds_per_row =
      comm.sendv_rows_seconds(
          static_cast<std::uint64_t>(row_bytes) * kAmortizedRowsPerMessage,
          1) /
      kAmortizedRowsPerMessage;

  const auto fit = static_cast<std::int64_t>(
      available_bytes / static_cast<std::uint64_t>(row_bytes));
  decision.capacity_rows = std::max<std::int64_t>(
      0, std::min(capacity_rows, fit));
  decision.mode = requested;

  if (requested == CacheMode::kAuto) {
    // Keep the cache only when the model says a pinned row beats the wire
    // (it always should on a multi-device machine — this is the "auto
    // never loses to off" contract); single-rank communicators have no
    // remote rows to cache.
    const bool wins = comm.size() > 1 && decision.capacity_rows > 0 &&
                      decision.miss_seconds_per_row >
                          decision.hit_seconds_per_row;
    decision.mode = wins ? CacheMode::kFreq : CacheMode::kOff;
  }
  if (decision.mode == CacheMode::kOff) decision.capacity_rows = 0;
  return decision;
}

void FeatureCache::prefill(std::span<const std::uint32_t> vertices,
                           std::span<const std::int64_t> scores) {
  if (!enabled()) return;
  MGGCN_CHECK(vertices.size() == scores.size());
  MGGCN_CHECK_MSG(slot_vertex_.empty(), "prefill an empty cache");

  std::vector<std::size_t> order(vertices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return vertices[a] < vertices[b];
  });

  const auto take = std::min<std::size_t>(
      order.size(), static_cast<std::size_t>(capacity_rows_));
  for (std::size_t i = 0; i < take; ++i) {
    const std::uint32_t v = vertices[order[i]];
    slot_of_.emplace(v, static_cast<std::int64_t>(slot_vertex_.size()));
    slot_vertex_.push_back(v);
  }
  if (mode_ == CacheMode::kFreq) {
    // Seed the LFU with the degree prior so admission starts informed
    // instead of cold (the CaPGNN degree-then-adapt policy).
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      freq_[vertices[i]] = static_cast<std::uint64_t>(
          std::max<std::int64_t>(scores[i], 0));
    }
  }
}

FeatureCache::Partition FeatureCache::lookup(
    std::span<const std::uint32_t> vertices) {
  Partition part;
  if (!enabled()) {
    part.miss_vertices.assign(vertices.begin(), vertices.end());
    stats_.misses += vertices.size();
    return part;
  }
  for (const std::uint32_t v : vertices) {
    if (mode_ == CacheMode::kFreq) ++freq_[v];
    const auto it = slot_of_.find(v);
    if (it != slot_of_.end()) {
      part.hit_vertices.push_back(v);
      part.hit_slots.push_back(it->second);
    } else {
      part.miss_vertices.push_back(v);
    }
  }
  stats_.hits += part.hit_vertices.size();
  stats_.misses += part.miss_vertices.size();
  return part;
}

std::vector<std::pair<std::uint32_t, std::int64_t>> FeatureCache::admit(
    std::span<const std::uint32_t> missed) {
  std::vector<std::pair<std::uint32_t, std::int64_t>> placements;
  if (!enabled() || mode_ != CacheMode::kFreq || missed.empty()) {
    return placements;
  }

  // Candidates by descending frequency (ties: lower vertex id), so free
  // slots and evictions go to the hottest misses first.
  std::vector<std::uint32_t> candidates(missed.begin(), missed.end());
  std::sort(candidates.begin(), candidates.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const auto fa = freq_[a], fb = freq_[b];
              if (fa != fb) return fa > fb;
              return a < b;
            });

  std::size_t next = 0;
  while (next < candidates.size() &&
         static_cast<std::int64_t>(slot_vertex_.size()) < capacity_rows_) {
    const std::uint32_t v = candidates[next++];
    const auto slot = static_cast<std::int64_t>(slot_vertex_.size());
    slot_of_.emplace(v, slot);
    slot_vertex_.push_back(v);
    ++stats_.inserts;
    placements.emplace_back(v, slot);
  }
  if (next == candidates.size()) return placements;

  // Cache full: displace pinned rows with strictly lower frequency,
  // coldest first (ties: higher vertex id evicted first, so the order is
  // deterministic).
  std::vector<std::int64_t> victims(slot_vertex_.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    victims[i] = static_cast<std::int64_t>(i);
  }
  std::sort(victims.begin(), victims.end(),
            [&](std::int64_t a, std::int64_t b) {
              const auto va = slot_vertex_[static_cast<std::size_t>(a)];
              const auto vb = slot_vertex_[static_cast<std::size_t>(b)];
              const auto fa = freq_[va], fb = freq_[vb];
              if (fa != fb) return fa < fb;
              return va > vb;
            });

  std::size_t victim = 0;
  for (; next < candidates.size() && victim < victims.size(); ++victim) {
    const std::uint32_t incoming = candidates[next];
    const auto slot = victims[victim];
    const std::uint32_t outgoing =
        slot_vertex_[static_cast<std::size_t>(slot)];
    if (freq_[incoming] <= freq_[outgoing]) break;
    slot_of_.erase(outgoing);
    slot_of_.emplace(incoming, slot);
    slot_vertex_[static_cast<std::size_t>(slot)] = incoming;
    ++stats_.evictions;
    ++stats_.inserts;
    placements.emplace_back(incoming, slot);
    ++next;
  }
  return placements;
}

std::vector<FeatureCache::Relocation> FeatureCache::invalidate(
    std::span<const std::uint32_t> vertices, std::size_t* dropped) {
  std::vector<Relocation> relocations;
  std::size_t count = 0;
  if (enabled()) {
    for (const std::uint32_t v : vertices) {
      const auto it = slot_of_.find(v);
      if (it == slot_of_.end()) continue;
      const auto slot = it->second;
      slot_of_.erase(it);
      const auto last = static_cast<std::int64_t>(slot_vertex_.size()) - 1;
      if (slot != last) {
        const std::uint32_t moved =
            slot_vertex_[static_cast<std::size_t>(last)];
        slot_vertex_[static_cast<std::size_t>(slot)] = moved;
        slot_of_[moved] = slot;
        relocations.push_back(Relocation{moved, last, slot});
      }
      slot_vertex_.pop_back();
      ++stats_.evictions;
      ++count;
    }
  }
  if (dropped != nullptr) *dropped = count;
  return relocations;
}

}  // namespace mggcn::core
