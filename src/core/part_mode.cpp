#include "core/part_mode.hpp"

#include <atomic>

#include "util/env.hpp"

namespace mggcn::core {

namespace {

std::atomic<PartMode>& active_mode() {
  static std::atomic<PartMode> mode{util::env_enum(
      "MGGCN_PART", PartMode::kRandom, parse_part_mode,
      "'random', 'balanced', 'locality', 'hier', or 'auto'")};
  return mode;
}

}  // namespace

const char* part_mode_name(PartMode mode) {
  switch (mode) {
    case PartMode::kRandom:
      return "random";
    case PartMode::kBalanced:
      return "balanced";
    case PartMode::kLocality:
      return "locality";
    case PartMode::kHier:
      return "hier";
    case PartMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<PartMode> parse_part_mode(std::string_view name) {
  if (name == "random") return PartMode::kRandom;
  if (name == "balanced") return PartMode::kBalanced;
  if (name == "locality") return PartMode::kLocality;
  if (name == "hier") return PartMode::kHier;
  if (name == "auto") return PartMode::kAuto;
  return std::nullopt;
}

PartMode part_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_part_mode(PartMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::core
