#include "core/part_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace mggcn::core {

namespace {

PartMode mode_from_env() {
  const char* env = std::getenv("MGGCN_PART");
  if (env == nullptr || *env == '\0') return PartMode::kRandom;
  const auto parsed = parse_part_mode(env);
  MGGCN_CHECK_MSG(parsed.has_value(),
                  std::string("MGGCN_PART must be 'random', 'balanced', "
                              "'locality', 'hier', or 'auto', got '") +
                      env + "'");
  return *parsed;
}

std::atomic<PartMode>& active_mode() {
  static std::atomic<PartMode> mode{mode_from_env()};
  return mode;
}

}  // namespace

const char* part_mode_name(PartMode mode) {
  switch (mode) {
    case PartMode::kRandom:
      return "random";
    case PartMode::kBalanced:
      return "balanced";
    case PartMode::kLocality:
      return "locality";
    case PartMode::kHier:
      return "hier";
    case PartMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<PartMode> parse_part_mode(std::string_view name) {
  if (name == "random") return PartMode::kRandom;
  if (name == "balanced") return PartMode::kBalanced;
  if (name == "locality") return PartMode::kLocality;
  if (name == "hier") return PartMode::kHier;
  if (name == "auto") return PartMode::kAuto;
  return std::nullopt;
}

PartMode part_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_part_mode(PartMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::core
