// Pipelined distributed mini-batch engine (DistDGL/samgraph-style) on the
// simulated machine — the sampled-training counterpart of MgGcnTrainer.
//
// Each epoch runs synchronous data-parallel rounds: every device trains one
// fanout-sampled mini-batch per round, with the input features partitioned
// uniformly across devices (1D, like the full-batch engine). A round flows
// through three stages:
//
//   sample   (compute stream)  neighborhood expansion of the next batch's
//                              seeds; the expansion itself runs host-side at
//                              enqueue time (the kInspect pattern) so shapes
//                              are known when the stage's tasks are priced;
//   extract  (comm stream)     assemble the batch's input rows: local rows
//                              and feature-cache hits gather at HBM speed,
//                              remote misses ride one Communicator::
//                              sendv_rows per owning device (node-aggregated
//                              shapes) and are scattered into the gather
//                              block; admitted rows are copied into the
//                              per-device FeatureCache;
//   train    (compute stream)  forward SpMM/GeMM/ReLU per level, fused
//                              softmax-cross-entropy loss, backward, one
//                              wgrad allreduce per layer (comm stream), and
//                              the Adam step.
//
// With Options::pipeline on, sample/extract of round b+1 are enqueued before
// train of round b, so the extraction wire time of the next batch hides
// behind the current batch's compute — the §4.3 overlap applied to
// mini-batch training. Every task declares its DeviceBuffer reads/writes, so
// MGGCN_HAZARD_CHECK audits the overlapped schedule; with pipeline off the
// same tasks run with machine-wide clock alignment between stages, giving a
// serialized baseline that is bit-identical in numerics (losses match the
// pipelined run exactly — only the simulated schedule differs).
//
// Cache behaviour is selected by Options::cache_mode (default: the
// process-wide MGGCN_CACHE setting). All cache modes train bit-identically:
// the cache only changes which fabric moves a feature row, never its
// contents.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "core/cache_mode.hpp"
#include "core/feature_cache.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "graph/datasets.hpp"
#include "graph/sampling.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace mggcn::core {

class SampledPipeline {
 public:
  struct Options {
    /// Hidden layer widths; the layer-dim chain is
    /// [feature_dim, hidden..., num_classes].
    std::vector<std::int64_t> hidden_dims = {64};
    /// Fanout per hop; must have hidden_dims.size() + 1 entries. Values
    /// <= 0 mean "all neighbors" at that hop.
    std::vector<std::int64_t> fanout = {10, 10};
    /// Seeds per device per round (the global batch is batch_size * P).
    std::int64_t batch_size = 128;
    /// Overlap sample/extract of round b+1 with train of round b. Off =
    /// serialized stage-by-stage execution of the same tasks (the ablation
    /// baseline; numerics are identical either way).
    bool pipeline = true;
    /// Feature-cache policy; kAuto is resolved against the cost model at
    /// construction (FeatureCache::plan_auto).
    CacheMode cache_mode = core::cache_mode();
    /// Requested cache capacity as a fraction of the graph's vertices.
    double cache_capacity_fraction = core::cache_capacity_fraction();
    /// Workspace-pool policy (see mem/pool_mode.hpp). In pooled modes the
    /// round scratch (gather blocks, activations, gradient temporaries) is
    /// leased from the per-device pool and recycled as each level's last
    /// consumer is enqueued, so backward temporaries of different levels
    /// share blocks; kOff keeps the static per-round allocation bit for
    /// bit. Numerics are identical in every mode.
    mem::PoolMode pool_mode = mem::pool_mode();
    /// Shared per-machine pools (mem::PoolSet::create) so the pipeline
    /// recycles one budget with other tenants (trainer, inference server).
    std::shared_ptr<mem::PoolSet> pool;

    // Adam (same defaults as the full-batch engine).
    double learning_rate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;

    std::uint64_t seed = 1;
  };

  /// Per-device footprint of the engine's persistent state. Round-scratch
  /// buffers (gather blocks, activations) come and go per round and show up
  /// in EpochStats::peak_memory_bytes instead.
  struct MemoryBreakdown {
    /// Largest feature shard over devices.
    std::uint64_t feature_bytes = 0;
    /// Largest pinned feature cache over devices (0 when the cache is off).
    std::uint64_t cache_bytes = 0;
    /// Replicated model state (weights + gradients + both Adam moments).
    std::uint64_t model_bytes = 0;
    /// Largest per-device workspace-pool reservation / live-lease bytes
    /// (0 when MGGCN_POOL resolves to the static path). When pooling is
    /// on, persistent state above and round scratch share this one budget,
    /// so reserved - in_use is the recyclable headroom.
    std::uint64_t pool_reserved_bytes = 0;
    std::uint64_t pool_in_use_bytes = 0;

    [[nodiscard]] std::uint64_t total() const {
      return feature_bytes + cache_bytes + model_bytes;
    }
  };

  SampledPipeline(sim::Machine& machine, const graph::Dataset& dataset,
                  Options options);
  ~SampledPipeline();

  SampledPipeline(const SampledPipeline&) = delete;
  SampledPipeline& operator=(const SampledPipeline&) = delete;

  EpochStats train_epoch();
  std::vector<EpochStats> train(int epochs);

  [[nodiscard]] MemoryBreakdown account_memory() const;

  /// The concrete cache mode after kAuto resolution (never kAuto).
  [[nodiscard]] CacheMode resolved_cache_mode() const {
    return resolved_cache_mode_;
  }
  /// The pricing plan_auto compared (valid for every requested mode).
  [[nodiscard]] const FeatureCache::AutoDecision& cache_decision() const {
    return cache_decision_;
  }
  [[nodiscard]] const FeatureCache& cache(int rank) const;
  [[nodiscard]] int rounds_per_epoch() const { return rounds_per_epoch_; }
  [[nodiscard]] int num_layers() const {
    return static_cast<int>(dims_.size()) - 1;
  }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

 private:
  struct RankState;
  struct BatchState;
  struct RoundState;

  /// Host-side work of one round: sampling, cache lookup/admission, split
  /// of the input frontier into local / cached / per-owner remote rows, and
  /// scratch-buffer allocation. Called for every rank in rank order so the
  /// cache bookkeeping is deterministic and identical across schedules.
  void prepare_round(RoundState& round);
  void enqueue_sample(RoundState& round);
  void enqueue_extract(RoundState& round);
  void enqueue_train(RoundState& round);
  /// Host-waits the round's completion, folds its losses into the epoch
  /// accumulators (in rank order), and frees its scratch buffers.
  void retire_round(RoundState& round);

  sim::Machine& machine_;
  const graph::Dataset& dataset_;
  Options options_;
  /// Declared before ranks_ so leases die before their pools.
  std::shared_ptr<mem::PoolSet> pool_;
  comm::Communicator comm_;
  graph::NeighborSampler sampler_;
  PartitionVector part_;
  std::vector<std::int64_t> dims_;
  CacheMode resolved_cache_mode_ = CacheMode::kOff;
  FeatureCache::AutoDecision cache_decision_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  int rounds_per_epoch_ = 0;
  int epoch_ = 0;
  int adam_step_ = 0;
  /// Machine-wide eviction total at the last prepare (per-round deltas).
  std::uint64_t evictions_seen_ = 0;

  // Epoch accumulators (reset by train_epoch, filled by retire_round).
  double epoch_loss_sum_ = 0.0;
  std::int64_t epoch_correct_ = 0;
  std::int64_t epoch_counted_ = 0;
};

}  // namespace mggcn::core
