// Training-state checkpointing: serializes the replicated model state
// (weights + Adam moments + step counter) to a flat binary file so long
// full-batch runs (the paper trains Reddit for 466 epochs, §6) can resume
// exactly.
//
// Format (little-endian):
//   magic "MGCKPT1\0" | version u32 | adam_step i32 | num_layers u32
//   per layer: d_in i64 | d_out i64 | w f32[] | m f32[] | v f32[]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dense/matrix.hpp"

namespace mggcn::core {

struct Checkpoint {
  int adam_step = 0;
  std::vector<dense::HostMatrix> weights;
  std::vector<dense::HostMatrix> adam_m;
  std::vector<dense::HostMatrix> adam_v;

  [[nodiscard]] std::size_t num_layers() const { return weights.size(); }
};

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

}  // namespace mggcn::core
