// MgGcnTrainer: the full MG-GCN training pipeline (§4).
//
// Construction performs the paper's preprocessing: optional random vertex
// permutation (§5.2), GCN normalization (eq. (2)), symmetric 1D tiling of
// Â and Âᵀ (§4.1), device buffer allocation under the L+3 reuse scheme
// (§4.2, Figs. 1/4), and replication of the (only-replicated) model weights.
// Each train_epoch() enqueues one forward + backward pass across all
// simulated GPUs with the staged-broadcast SpMM, optional
// communication/computation overlap (§4.3), the GeMM/SpMM order switch and
// the first-layer backward-SpMM skip (§4.4), Adam, and softmax
// cross-entropy.
//
// Buffer plan per device (n_r = local rows, d_l = layer dims):
//   X       n_r x d_0        input block (given)
//   O_l     n_r x d_{l+1}    one output buffer per layer; reused for the
//                            gradient carousel in the backward pass
//   HW      n_r x max d      the shared GeMM<->SpMM temporary
//   BC1,BC2 max_part x max d broadcast buffers (BC2 only when overlapping)
// which is the paper's "L + 3 buffers" (plus the input).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/planner.hpp"
#include "core/gcn_kernels.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "dense/matrix.hpp"
#include "graph/datasets.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

/// Shared helper so the distributed trainer and the serial reference start
/// from bit-identical weights.
std::vector<dense::HostMatrix> init_weights(
    const std::vector<std::int64_t>& dims, std::uint64_t seed);

/// Layer-dimension chain [d_0, hidden..., classes] for a dataset + config.
std::vector<std::int64_t> layer_dims(const graph::Dataset& dataset,
                                     const TrainConfig& config);

/// Per-device bytes of the replicated model state (weights, gradients, and
/// both Adam moments) — the footprint that does not shrink when the graph
/// is partitioned or scaled down (see sim::scale_profile).
std::uint64_t replicated_state_bytes(const std::vector<std::int64_t>& dims);

class MgGcnTrainer {
 public:
  MgGcnTrainer(sim::Machine& machine, const graph::Dataset& dataset,
               TrainConfig config);
  ~MgGcnTrainer();

  MgGcnTrainer(const MgGcnTrainer&) = delete;
  MgGcnTrainer& operator=(const MgGcnTrainer&) = delete;

  /// Runs one full-batch epoch (forward, loss, backward, Adam) and returns
  /// its metrics. Loss/accuracy are only meaningful in real execution mode.
  /// When the machine carries a sim::FaultPlan, its epoch-boundary faults
  /// are applied first; a scheduled permanent device failure then surfaces
  /// as DeviceLostError and an unabsorbed transient burst as CommError (see
  /// ElasticTrainer for the recovery loop).
  EpochStats train_epoch();

  /// Convenience: `epochs` epochs, returning per-epoch stats.
  std::vector<EpochStats> train(int epochs);

  /// Enqueues a forward pass only (no loss/backward) and synchronizes.
  void run_forward();

  /// Gathers the logits in the original (un-permuted) vertex order.
  /// Real mode only.
  [[nodiscard]] dense::HostMatrix gather_logits() const;

  /// Snapshot of the replicated model state (weights + Adam moments +
  /// step counter), taken from rank 0 after draining the machine.
  /// Real mode only.
  [[nodiscard]] Checkpoint checkpoint();

  /// Restores a snapshot into every rank; training resumes exactly where
  /// the snapshot was taken (including the epoch counter, which the fault
  /// plan keys on). Real mode only.
  void restore(const Checkpoint& checkpoint);

  /// Epochs completed by this trainer instance (restore() rewinds it to
  /// the snapshot's position).
  [[nodiscard]] int epoch() const { return epoch_; }

  [[nodiscard]] const PartitionVector& partition() const {
    return partition_;
  }
  [[nodiscard]] const TrainConfig& config() const { return config_; }
  /// The partitioner mode that actually produced the active ordering
  /// (config().part_mode with kAuto resolved to its winning candidate).
  [[nodiscard]] PartMode part_mode_used() const { return part_mode_used_; }
  /// Cut quality of the active ordering, measured once at preprocessing
  /// from the forward tiling (also repeated in every EpochStats).
  [[nodiscard]] const PartitionCutStats& partition_stats() const {
    return part_stats_;
  }
  /// nnz imbalance ratio of the forward tiling (Fig. 6's quantity).
  [[nodiscard]] double tile_imbalance() const;
  /// Host seconds spent in preprocessing (permute/normalize/tile).
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }
  [[nodiscard]] std::uint64_t peak_memory_bytes() const;
  /// The forward-product planner (tiles of A-hat^T); tests and benches
  /// audit its pricing surface through this.
  [[nodiscard]] const Planner& forward_planner() const {
    return *forward_planner_;
  }
  [[nodiscard]] int num_layers() const {
    return static_cast<int>(dims_.size()) - 1;
  }
  /// Original -> permuted vertex id mapping produced by preprocessing.
  [[nodiscard]] std::span<const std::uint32_t> perm() const { return perm_; }
  /// Layer-dimension chain [d_0, hidden..., classes].
  [[nodiscard]] std::span<const std::int64_t> dims() const { return dims_; }
  /// Whether layer `layer` runs its SpMM before its GeMM (§4.4 switch).
  [[nodiscard]] bool layer_spmm_first(int layer) const {
    return plan_[static_cast<std::size_t>(layer)].spmm_first;
  }
  /// Gathers layer `layer`'s activations O_l (layer == -1: the input X) in
  /// *permuted* vertex order, concatenated across ranks. Real mode only —
  /// the inference server materializes its embedding store from this.
  [[nodiscard]] dense::HostMatrix gather_activations(int layer) const;

 private:
  struct LayerPlan {
    std::int64_t d_in = 0;
    std::int64_t d_out = 0;
    bool spmm_first = false;  // §4.4 order switch
    bool has_relu = true;     // all but the last layer
    bool skip_backward_spmm = false;  // §4.4 first-layer skip
  };

  struct RankState {
    mem::PooledBuffer x;                     // input block
    std::vector<mem::PooledBuffer> outputs;  // O_l per layer
    mem::PooledBuffer hw;                    // shared temporary
    mem::PooledBuffer bc1, bc2;              // broadcast buffers
    std::vector<mem::PooledBuffer> w, w_grad, adam_m, adam_v;
    /// Unused per-layer buffers emulating frameworks without buffer reuse
    /// (allocated iff !config.reuse_buffers; memory accounting only).
    std::vector<mem::PooledBuffer> ballast;
    std::vector<std::int32_t> labels;        // local rows, real mode
    std::vector<std::uint8_t> train_mask;    // local rows, real mode
  };

  void build_plan();
  void preprocess(const graph::Dataset& dataset);
  void allocate_buffers();
  void upload_inputs(const graph::Dataset& dataset);

  void enqueue_forward(std::vector<sim::Event>* logits_ready);
  std::vector<sim::Event> enqueue_loss(const std::vector<sim::Event>& ready);
  void enqueue_backward(std::vector<sim::Event> grad_ready);

  [[nodiscard]] sim::KernelCost with_overhead(sim::KernelCost cost) const;

  [[nodiscard]] std::vector<sim::DeviceBuffer*> buffers_of(
      mem::PooledBuffer RankState::* member);
  [[nodiscard]] std::vector<sim::DeviceBuffer*> layer_buffers(int layer);

  sim::Machine& machine_;
  TrainConfig config_;
  std::vector<std::int64_t> dims_;
  std::vector<LayerPlan> plan_;

  PartitionVector partition_;
  std::vector<std::uint32_t> perm_;  // original -> permuted vertex id
  PartMode part_mode_used_ = PartMode::kRandom;
  PartitionCutStats part_stats_;
  std::unique_ptr<comm::Communicator> comm_;
  std::unique_ptr<Planner> forward_planner_;   // tiles of Â^T
  std::unique_ptr<Planner> backward_planner_;  // tiles of Â
  /// Workspace pools backing this trainer's buffers (null = static
  /// allocation); resolved from config.pool/pool_mode at construction.
  std::shared_ptr<mem::PoolSet> pool_;

  std::vector<RankState> ranks_;
  /// Cross-layer BC1/BC2 write-after-read hazard state (see DistSpmm::Io).
  std::vector<std::array<sim::Event, 2>> bc_slot_readers_;
  std::int64_t total_train_ = 0;
  double compute_bandwidth_scale_ = 1.0;

  int adam_step_ = 0;
  int epoch_ = 0;
  double preprocessing_seconds_ = 0.0;

  // Loss accumulation side-channel (real mode), reset per epoch. One slot
  // per rank, written by that rank's single loss task and summed in rank
  // order at epoch end so the reported loss is bit-deterministic (a shared
  // accumulator would sum in worker-thread completion order).
  std::vector<LossResult> rank_loss_;
};

}  // namespace mggcn::core
