#include "core/planner.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

sim::KernelCost scaled(sim::KernelCost cost, double traffic_factor,
                       double launch_multiplier) {
  cost.stream_bytes *= traffic_factor;
  cost.gather_bytes *= traffic_factor;
  cost.launches = static_cast<int>(cost.launches * launch_multiplier + 0.5);
  return cost;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplicatedSpmm
// ---------------------------------------------------------------------------

ReplicatedSpmm::ReplicatedSpmm(sim::Machine& machine,
                               comm::Communicator& comm, const TileGrid& grid)
    : machine_(machine), comm_(comm), grid_(grid) {
  MGGCN_CHECK_MSG(grid_.parts() == machine_.num_devices(),
                  "tile grid parts must equal device count");
  MGGCN_CHECK_MSG(grid_.parts() > 1,
                  "replicated executor is for multi-device products");
  replica_.resize(static_cast<std::size_t>(grid_.parts()));
  replica_last_use_.resize(static_cast<std::size_t>(grid_.parts()));
}

std::uint64_t ReplicatedSpmm::extra_bytes(int rank, std::int64_t d) const {
  (void)rank;  // every rank holds the same n x d replica
  if (d <= replica_width_) return 0;
  // Net growth: the realloc releases the old replica first.
  return static_cast<std::uint64_t>(grid_.partition.total() *
                                    (d - replica_width_)) *
         sizeof(float);
}

void ReplicatedSpmm::ensure_replicas(std::int64_t d) {
  if (d <= replica_width_) return;
  // Growing reallocates the replicas; drain in-flight products first so no
  // enqueued task still references the old storage.
  machine_.synchronize();
  const std::int64_t n = grid_.partition.total();
  for (int r = 0; r < grid_.parts(); ++r) {
    const auto rr = static_cast<std::size_t>(r);
    replica_[rr].reset();
    replica_[rr] = std::make_unique<sim::DeviceBuffer>(
        machine_.device(r), static_cast<std::size_t>(n * d), "replica");
    replica_last_use_[rr] = sim::Event{};
  }
  replica_width_ = d;
}

DistResult ReplicatedSpmm::run(const DistIo& io) {
  const int p = grid_.parts();
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);

  ensure_replicas(io.d);
  const PartitionVector& part = grid_.partition;
  const std::int64_t n = part.total();

  // One allgather delivers what p-1 dense broadcasts would have; there is
  // nothing to compact, so wire == dense. Each source block reaches every
  // rank on another node once — that share is the inter-node traffic.
  {
    sim::CommVolume volume;
    volume.wire_bytes =
        static_cast<std::uint64_t>(p - 1) *
        static_cast<std::uint64_t>(n * io.d) * sizeof(float);
    for (int s = 0; s < p; ++s) {
      int remote = 0;
      for (int r = 0; r < p; ++r) {
        if (r != s && comm_.node_of(r) != comm_.node_of(s)) ++remote;
      }
      volume.wire_bytes_inter +=
          static_cast<std::uint64_t>(remote) *
          static_cast<std::uint64_t>(part.size(s) * io.d) * sizeof(float);
    }
    volume.dense_bytes = volume.wire_bytes;
    volume.dense_stages = 1;
    machine_.trace().record_comm_volume(volume);
  }

  DistResult result;
  result.done.resize(np);
  result.input_released.resize(np);

  // Stage each rank's block at the HEAD of its replica buffer (the
  // allgather contract), then gather the rank-order concatenation.
  std::vector<comm::RankPart> parts(np);
  std::vector<std::size_t> counts(np);
  for (int r = 0; r < p; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    const std::size_t elems = static_cast<std::size_t>(part.size(r) * io.d);

    sim::TaskDesc task;
    task.label = "replica_pack";
    task.kind = sim::TaskKind::kMemory;
    task.cost.stream_bytes =
        2.0 * static_cast<double>(elems) * sizeof(float);
    if (!io.input_ready.empty() && io.input_ready[rr].valid()) {
      task.waits.push_back(io.input_ready[rr]);
    }
    if (replica_last_use_[rr].valid()) {
      task.waits.push_back(replica_last_use_[rr]);
    }
    task.reads.push_back(io.input[rr]->access());
    task.writes.push_back(replica_[rr]->access());
    float* src = io.input[rr]->data();
    float* dst = replica_[rr]->data();
    task.body = [src, dst, elems] {
      if (src != nullptr && dst != nullptr) {
        std::memcpy(dst, src, elems * sizeof(float));
      }
    };
    sim::Event copied =
        machine_.device(r).compute_stream().enqueue(std::move(task));
    result.input_released[rr] = copied;

    parts[rr].buffer = replica_[rr].get();
    parts[rr].waits.push_back(copied);
    counts[rr] = elems;
  }
  std::vector<sim::Event> gathered = comm_.allgather(std::move(parts), counts);

  // One fused SpMM per rank: sweep the stage tiles left to right against
  // the replica segments — the same ascending-stage accumulation order as
  // the staged broadcast, in a single launch whose gather working set is
  // the whole replica.
  for (int r = 0; r < p; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    sim::KernelCost cost;
    for (int s = 0; s < p; ++s) {
      cost += sparse::spmm_cost(grid_.tile(r, s), io.d);
    }
    cost.launches = 1;  // operator+= summed the per-tile launch counts
    cost.gather_working_set =
        4.0 * static_cast<double>(n) * static_cast<double>(io.d);

    sim::TaskDesc task;
    task.label = "spmm_replicated";
    task.kind = sim::TaskKind::kSpMM;
    task.cost = scaled(cost, io.traffic_factor, io.launch_multiplier);
    task.waits.push_back(gathered[rr]);
    task.reads.push_back(replica_[rr]->access());
    task.writes.push_back(io.output[rr]->access());

    const TileGrid& grid = grid_;
    float* in = replica_[rr]->data();
    float* out = io.output[rr]->data();
    const std::int64_t d = io.d;
    task.body = [&grid, r, in, out, d] {
      for (int s = 0; s < grid.parts(); ++s) {
        const sparse::Csr& tile = grid.tile(r, s);
        sparse::spmm(
            tile,
            dense::ConstMatrixView{in + grid.partition.begin(s) * d,
                                   tile.cols(), d},
            dense::MatrixView{out, tile.rows(), d}, 1.0f,
            s == 0 ? 0.0f : 1.0f);
      }
    };
    sim::Event done =
        machine_.device(r).compute_stream().enqueue(std::move(task));
    result.done[rr] = done;
    replica_last_use_[rr] = done;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

Planner::Planner(sim::Machine& machine, comm::Communicator& comm,
                 TileGrid grid, PlanMode mode, comm::CommMode comm_mode)
    : machine_(machine),
      comm_(comm),
      mode_(mode),
      comm_mode_(comm_mode),
      spmm_1d_(machine, comm, std::move(grid), comm_mode) {
  const int p = parts();
  if (DistSpmm15DChained::feasible(p)) {
    exec_15d_ = std::make_unique<DistSpmm15DChained>(
        machine_, spmm_1d_.grid(), comm_.options());
  }
  if (p > 1) {
    exec_replicated_ = std::make_unique<ReplicatedSpmm>(machine_, comm_,
                                                        spmm_1d_.grid());
  }
  ghost_cols_.assign(static_cast<std::size_t>(p),
                     std::vector<std::int64_t>(static_cast<std::size_t>(p),
                                               -1));
  int nodes = 1;
  for (int r = 0; r < p; ++r) nodes = std::max(nodes, comm_.node_of(r) + 1);
  node_ghost_cols_.assign(
      static_cast<std::size_t>(nodes),
      std::vector<std::int64_t>(static_cast<std::size_t>(p), -1));
}

std::int64_t Planner::ghost_cols(int r, int s) const {
  std::int64_t& cached =
      ghost_cols_[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)];
  if (cached < 0) cached = sparse::count_distinct_cols(grid().tile(r, s));
  return cached;
}

std::int64_t Planner::node_ghost_cols(int node, int s) const {
  std::int64_t& cached =
      node_ghost_cols_[static_cast<std::size_t>(node)]
                      [static_cast<std::size_t>(s)];
  if (cached < 0) {
    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(partition().size(s)), 0);
    for (int r = 0; r < parts(); ++r) {
      if (r == s || comm_.node_of(r) != node) continue;
      for (const std::uint32_t c : grid().tile(r, s).col_idx()) seen[c] = 1;
    }
    std::int64_t distinct = 0;
    for (const std::uint8_t flag : seen) distinct += flag;
    cached = distinct;
  }
  return cached;
}

bool Planner::fits(PlanMode strategy, std::int64_t d) const {
  for (int r = 0; r < parts(); ++r) {
    const sim::Device& device = machine_.device(r);
    const std::uint64_t extra =
        strategy == PlanMode::k15D ? exec_15d_->extra_bytes(r, d)
                                   : exec_replicated_->extra_bytes(r, d);
    if (device.memory_used() + extra > device.profile().memory_bytes) {
      return false;
    }
  }
  return true;
}

double Planner::est_1d(std::int64_t d, bool overlap,
                       double compute_bandwidth_scale, double traffic_factor,
                       double launch_multiplier) const {
  const int p = parts();
  const sim::DeviceProfile& dev = machine_.device(0).profile();
  if (p == 1) {
    return sim::CostModel::seconds(
        scaled(sparse::spmm_cost(grid().tile(0, 0), d), traffic_factor,
               launch_multiplier),
        dev);
  }
  const double dscale = comm_.options().duration_scale;
  const bool compact_capable = comm_mode_ != comm::CommMode::kDense;

  // Mirror DistSpmm's StageChoice: the dense/compact decision compares the
  // unscaled model estimates, the pipeline pays the scaled durations.
  std::vector<double> comm_raw(static_cast<std::size_t>(p));
  std::vector<bool> compact(static_cast<std::size_t>(p), false);
  for (int s = 0; s < p; ++s) {
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(partition().size(s) * d) * sizeof(float);
    double seconds = comm_.topology().broadcast_seconds(block_bytes, p);
    if (compact_capable) {
      // Same node-aggregated pricing as DistSpmm's StageChoice (which
      // defers to Communicator::sendv_shape): per-destination messages on
      // the root's node, one unioned message per remote node, scatter on
      // the worst remote node with several destinations.
      comm::SendvShape shape;
      const int root_node = comm_.node_of(s);
      const std::size_t num_nodes = node_ghost_cols_.size();
      std::vector<std::uint64_t> node_dest_bytes(num_nodes, 0);
      std::vector<int> node_dests(num_nodes, 0);
      for (int r = 0; r < p; ++r) {
        if (r == s) continue;
        const std::int64_t ghost = ghost_cols(r, s);
        if (ghost == 0) continue;
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(ghost * d) * sizeof(float);
        const int node = comm_.node_of(r);
        if (node != root_node) {
          node_dest_bytes[static_cast<std::size_t>(node)] += bytes;
          ++node_dests[static_cast<std::size_t>(node)];
        } else {
          shape.intra_bytes += bytes;
          ++shape.intra_messages;
        }
      }
      for (std::size_t node = 0; node < num_nodes; ++node) {
        if (node_dests[node] == 0) continue;
        shape.inter_bytes +=
            static_cast<std::uint64_t>(
                node_ghost_cols(static_cast<int>(node), s) * d) *
            sizeof(float);
        ++shape.inter_messages;
        if (node_dests[node] >= 2) {
          shape.scatter_bytes =
              std::max(shape.scatter_bytes, node_dest_bytes[node]);
        }
      }
      const double compact_seconds = comm_.sendv_rows_seconds(shape);
      if (comm_mode_ == comm::CommMode::kCompact ||
          compact_seconds < seconds) {
        compact[static_cast<std::size_t>(s)] = true;
        seconds = compact_seconds;
      }
    }
    comm_raw[static_cast<std::size_t>(s)] = seconds;
  }

  std::vector<double> comp(static_cast<std::size_t>(p), 0.0);
  const double contention = 1.0 - compute_bandwidth_scale;
  for (int s = 0; s < p; ++s) {
    double worst = 0.0;
    for (int r = 0; r < p; ++r) {
      const sparse::Csr& tile = grid().tile(r, s);
      const sim::KernelCost cost = scaled(
          compact[static_cast<std::size_t>(s)] && r != s
              ? sparse::spmm_cost(tile.nnz(), tile.rows(), ghost_cols(r, s),
                                  d)
              : sparse::spmm_cost(tile, d),
          traffic_factor, launch_multiplier);
      double seconds = sim::CostModel::seconds(cost, dev);
      if (overlap && s + 1 < p && seconds > 0.0) {
        // DistSpmm's contention dilation, with the same (unscaled) next-
        // stage exchange estimate.
        const double fraction = std::min(
            1.0, comm_raw[static_cast<std::size_t>(s) + 1] / seconds);
        seconds /= 1.0 - fraction * contention;
      }
      worst = std::max(worst, seconds);
    }
    comp[static_cast<std::size_t>(s)] = worst;
  }

  if (!overlap) {
    double total = 0.0;
    for (int s = 0; s < p; ++s) {
      total += dscale * comm_raw[static_cast<std::size_t>(s)] +
               comp[static_cast<std::size_t>(s)];
    }
    return total;
  }
  // Double-buffered pipeline: exchange s+1 hides behind SpMM s.
  double total = dscale * comm_raw[0];
  for (int s = 0; s + 1 < p; ++s) {
    total += std::max(comp[static_cast<std::size_t>(s)],
                      dscale * comm_raw[static_cast<std::size_t>(s) + 1]);
  }
  return total + comp[static_cast<std::size_t>(p) - 1];
}

double Planner::est_15d(std::int64_t d, double traffic_factor,
                        double launch_multiplier) const {
  if (exec_15d_ == nullptr || !fits(PlanMode::k15D, d)) return kInfeasible;
  const int p = parts();
  const int G = p / 2;
  const sim::DeviceProfile& dev = machine_.device(0).profile();
  const double dscale = comm_.options().duration_scale;
  const comm::Topology& topo = comm_.topology();

  // The chained schedule serializes: group broadcast s, then both SpMMs of
  // stage s (single-slot buffer), per phase; pair handoffs between the
  // phases and the return transfer after them.
  double total = 0.0;
  for (int s = 0; s < p; ++s) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(partition().size(s) * d) * sizeof(float);
    total += dscale * topo.broadcast_seconds(bytes, G);
    double worst = 0.0;
    for (int j = 0; j < G; ++j) {
      const double seconds =
          sim::CostModel::seconds(scaled(sparse::spmm_cost(grid().tile(j, s), d),
                                         traffic_factor, launch_multiplier),
                                  dev) +
          sim::CostModel::seconds(
              scaled(sparse::spmm_cost(grid().tile(G + j, s), d),
                     traffic_factor, launch_multiplier),
              dev);
      worst = std::max(worst, seconds);
    }
    total += worst;
  }

  const sim::InterconnectProfile& inter = machine_.profile().interconnect;
  double handoff = 0.0;
  double ret = 0.0;
  for (int j = 0; j < G; ++j) {
    sim::InterconnectProfile pair_profile = inter;
    if (inter.devices_per_node > 0 &&
        j / inter.devices_per_node != (G + j) / inter.devices_per_node) {
      pair_profile.devices_per_node = 1;  // the pair pays the NIC
    }
    const comm::Topology pair_topo{pair_profile};
    const std::uint64_t lo_bytes =
        static_cast<std::uint64_t>(partition().size(j) * d) * sizeof(float);
    const std::uint64_t hi_bytes =
        static_cast<std::uint64_t>(partition().size(G + j) * d) *
        sizeof(float);
    handoff = std::max(
        handoff, dscale * (pair_topo.broadcast_seconds(hi_bytes, 2) +
                           pair_topo.broadcast_seconds(lo_bytes, 2)));
    ret = std::max(ret, dscale * pair_topo.broadcast_seconds(lo_bytes, 2));
  }
  return total + handoff + ret;
}

double Planner::est_replicated(std::int64_t d, double traffic_factor,
                               double launch_multiplier) const {
  if (exec_replicated_ == nullptr || !fits(PlanMode::kReplicated, d)) {
    return kInfeasible;
  }
  const int p = parts();
  const sim::DeviceProfile& dev = machine_.device(0).profile();
  const double dscale = comm_.options().duration_scale;
  const std::int64_t n = partition().total();

  sim::KernelCost copy;
  copy.stream_bytes =
      2.0 * static_cast<double>(partition().max_part_size() * d) *
      sizeof(float);
  const double pack = sim::CostModel::seconds(copy, dev);

  const double gather = dscale * comm_.topology().allgather_seconds(
                                     static_cast<std::uint64_t>(n * d) *
                                         sizeof(float),
                                     p);

  double worst = 0.0;
  for (int r = 0; r < p; ++r) {
    sim::KernelCost cost;
    for (int s = 0; s < p; ++s) {
      cost += sparse::spmm_cost(grid().tile(r, s), d);
    }
    cost.launches = 1;
    cost.gather_working_set =
        4.0 * static_cast<double>(n) * static_cast<double>(d);
    worst = std::max(worst,
                     sim::CostModel::seconds(
                         scaled(cost, traffic_factor, launch_multiplier),
                         dev));
  }
  return pack + gather + worst;
}

Planner::Estimate Planner::price(std::int64_t d, bool overlap,
                                 double compute_bandwidth_scale,
                                 double traffic_factor,
                                 double launch_multiplier) const {
  Estimate est;
  est.seconds_1d = est_1d(d, overlap, compute_bandwidth_scale,
                          traffic_factor, launch_multiplier);
  est.seconds_15d = est_15d(d, traffic_factor, launch_multiplier);
  est.seconds_replicated =
      est_replicated(d, traffic_factor, launch_multiplier);
  est.choice = PlanMode::k1D;
  double best = est.seconds_1d;
  if (est.seconds_15d < best) {
    best = est.seconds_15d;
    est.choice = PlanMode::k15D;
  }
  if (est.seconds_replicated < best) {
    est.choice = PlanMode::kReplicated;
  }
  return est;
}

PlanMode Planner::decide(const DistIo& io) {
  sim::PlanCounters delta;
  PlanMode chosen = mode_;
  if (mode_ == PlanMode::kAuto) {
    const auto key = std::make_pair(io.d, io.overlap);
    const auto it = decisions_.find(key);
    if (it != decisions_.end()) {
      chosen = it->second;
    } else {
      ++delta.decisions;
      chosen = price(io.d, io.overlap, io.compute_bandwidth_scale,
                     io.traffic_factor, io.launch_multiplier)
                   .choice;
      decisions_.emplace(key, chosen);
    }
  }
  if (chosen == PlanMode::k15D &&
      (exec_15d_ == nullptr || !fits(PlanMode::k15D, io.d))) {
    chosen = PlanMode::k1D;
    ++delta.fallbacks;
  } else if (chosen == PlanMode::kReplicated &&
             (exec_replicated_ == nullptr ||
              !fits(PlanMode::kReplicated, io.d))) {
    chosen = PlanMode::k1D;
    ++delta.fallbacks;
  }
  if (chosen == PlanMode::k15D && !accounted_15d_) {
    exec_15d_->account_memory();
    accounted_15d_ = true;
  }
  switch (chosen) {
    case PlanMode::k15D:
      ++delta.products_15d;
      break;
    case PlanMode::kReplicated:
      ++delta.products_replicated;
      break;
    default:
      ++delta.products_1d;
      break;
  }
  machine_.trace().record_plan(delta);
  return chosen;
}

DistResult Planner::run(const DistIo& io) {
  switch (decide(io)) {
    case PlanMode::k15D:
      return exec_15d_->run(io);
    case PlanMode::kReplicated:
      return exec_replicated_->run(io);
    default:
      return spmm_1d_.run(io);
  }
}

}  // namespace mggcn::core
