// Elastic fault-tolerant training driver.
//
// Wraps MgGcnTrainer with checkpoint-based recovery so a full-batch run
// survives the faults a sim::FaultPlan injects:
//
//  - Transient collective failures are absorbed inside the Communicator's
//    retry loop and never reach this layer; an exhausted retry budget
//    surfaces as CommError, and the driver rewinds to the last snapshot on
//    the same machine and replays.
//  - A permanent device failure surfaces as DeviceLostError. The driver
//    rebuilds the machine with the surviving P-1 devices, reconstructs the
//    trainer (which conformally repartitions Â and H over the new device
//    count via core/partition.cpp and re-tiles both SpMM operands), restores
//    the latest snapshot, and replays the epochs since it. Training then
//    continues to the same converged loss — only the simulated timeline
//    (and the partition) differs from the fault-free run.
//
// Snapshots are in-memory Checkpoints (optionally mirrored to disk) taken
// every `checkpoint_interval` epochs, always including epoch 0. Real
// execution mode only (snapshots need host storage).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "graph/datasets.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace mggcn::core {

struct ElasticOptions {
  /// Epochs between model snapshots (1 = every epoch).
  int checkpoint_interval = 1;
  /// Recovery fails (throws Error) once fewer devices would survive.
  int min_devices = 1;
  /// CommError rewinds tolerated for one epoch before giving up.
  int max_epoch_attempts = 3;
  /// When non-empty, every snapshot is also written here (the on-disk
  /// checkpoint a separate process could resume from).
  std::string checkpoint_path;
};

/// One recovery performed by the driver.
struct RecoveryEvent {
  int epoch = 0;            ///< epoch whose execution observed the fault
  int devices_before = 0;
  int devices_after = 0;    ///< == devices_before for comm-only rewinds
  int replayed_epochs = 0;  ///< epochs re-run from the snapshot
  std::string cause;
};

class ElasticTrainer {
 public:
  ElasticTrainer(sim::MachineProfile profile, int num_devices,
                 const graph::Dataset& dataset, TrainConfig config,
                 std::shared_ptr<sim::FaultPlan> fault_plan,
                 ElasticOptions options = {});
  ~ElasticTrainer();

  ElasticTrainer(const ElasticTrainer&) = delete;
  ElasticTrainer& operator=(const ElasticTrainer&) = delete;

  /// One epoch, transparently recovering from injected faults. Throws only
  /// when recovery is impossible (below min_devices) or an epoch keeps
  /// failing past max_epoch_attempts.
  EpochStats train_epoch();
  std::vector<EpochStats> train(int epochs);

  [[nodiscard]] int epoch() const { return trainer_->epoch(); }
  [[nodiscard]] int num_devices() const { return machine_->num_devices(); }
  [[nodiscard]] const std::vector<RecoveryEvent>& recoveries() const {
    return recoveries_;
  }
  [[nodiscard]] MgGcnTrainer& trainer() { return *trainer_; }
  [[nodiscard]] sim::Machine& machine() { return *machine_; }

  /// Simulated seconds across every machine incarnation, including time
  /// lost to aborted epochs and recovery replays.
  [[nodiscard]] double total_sim_seconds() const;

 private:
  void snapshot_if_due();
  /// Rewind-and-replay recovery; `lost_device` drops one rank first.
  void recover(bool lost_device, const std::string& cause);
  void rebuild(int devices);

  const graph::Dataset& dataset_;  ///< must outlive the driver
  sim::MachineProfile profile_;
  TrainConfig config_;
  ElasticOptions options_;
  std::shared_ptr<sim::FaultPlan> plan_;

  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<MgGcnTrainer> trainer_;

  Checkpoint snapshot_;
  int snapshot_epoch_ = 0;
  bool have_snapshot_ = false;

  double sim_base_ = 0.0;  ///< sim seconds banked from replaced machines
  std::vector<RecoveryEvent> recoveries_;
};

}  // namespace mggcn::core
