#include "core/cache_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace mggcn::core {

namespace {

CacheMode mode_from_env() {
  const char* env = std::getenv("MGGCN_CACHE");
  if (env == nullptr || *env == '\0') return CacheMode::kAuto;
  const auto parsed = parse_cache_mode(env);
  MGGCN_CHECK_MSG(parsed.has_value(),
                  std::string("MGGCN_CACHE must be 'off', 'static', 'freq', "
                              "or 'auto', got '") +
                      env + "'");
  return *parsed;
}

std::atomic<CacheMode>& active_mode() {
  static std::atomic<CacheMode> mode{mode_from_env()};
  return mode;
}

double fraction_from_env() {
  const char* env = std::getenv("MGGCN_CACHE_CAP");
  if (env == nullptr || *env == '\0') return 0.05;
  char* tail = nullptr;
  const double value = std::strtod(env, &tail);
  MGGCN_CHECK_MSG(tail != env && *tail == '\0' && value >= 0.0 && value <= 1.0,
                  std::string("MGGCN_CACHE_CAP must be a fraction in [0, 1], "
                              "got '") +
                      env + "'");
  return value;
}

std::atomic<double>& active_fraction() {
  static std::atomic<double> fraction{fraction_from_env()};
  return fraction;
}

}  // namespace

const char* cache_mode_name(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kStatic:
      return "static";
    case CacheMode::kFreq:
      return "freq";
    case CacheMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<CacheMode> parse_cache_mode(std::string_view name) {
  if (name == "off") return CacheMode::kOff;
  if (name == "static") return CacheMode::kStatic;
  if (name == "freq") return CacheMode::kFreq;
  if (name == "auto") return CacheMode::kAuto;
  return std::nullopt;
}

CacheMode cache_mode() {
  return active_mode().load(std::memory_order_relaxed);
}

void set_cache_mode(CacheMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

double cache_capacity_fraction() {
  return active_fraction().load(std::memory_order_relaxed);
}

void set_cache_capacity_fraction(double fraction) {
  MGGCN_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "cache capacity fraction must be in [0, 1]");
  active_fraction().store(fraction, std::memory_order_relaxed);
}

}  // namespace mggcn::core
