#include "core/cache_mode.hpp"

#include <atomic>

#include "util/env.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

std::atomic<CacheMode>& active_mode() {
  static std::atomic<CacheMode> mode{
      util::env_enum("MGGCN_CACHE", CacheMode::kAuto, parse_cache_mode,
                     "'off', 'static', 'freq', or 'auto'")};
  return mode;
}

std::atomic<double>& active_fraction() {
  static std::atomic<double> fraction{util::env_double(
      "MGGCN_CACHE_CAP", 0.05, 0.0, 1.0, "a fraction in [0, 1]")};
  return fraction;
}

}  // namespace

const char* cache_mode_name(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kStatic:
      return "static";
    case CacheMode::kFreq:
      return "freq";
    case CacheMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<CacheMode> parse_cache_mode(std::string_view name) {
  if (name == "off") return CacheMode::kOff;
  if (name == "static") return CacheMode::kStatic;
  if (name == "freq") return CacheMode::kFreq;
  if (name == "auto") return CacheMode::kAuto;
  return std::nullopt;
}

CacheMode cache_mode() {
  return active_mode().load(std::memory_order_relaxed);
}

void set_cache_mode(CacheMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

double cache_capacity_fraction() {
  return active_fraction().load(std::memory_order_relaxed);
}

void set_cache_capacity_fraction(double fraction) {
  MGGCN_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "cache capacity fraction must be in [0, 1]");
  active_fraction().store(fraction, std::memory_order_relaxed);
}

}  // namespace mggcn::core
