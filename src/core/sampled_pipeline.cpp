#include "core/sampled_pipeline.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>

#include "core/gcn_kernels.hpp"
#include "core/trainer.hpp"
#include "dense/kernels.hpp"
#include "sim/cost_model.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

/// Position of each of `subset` (ascending) within `sorted` (ascending
/// superset) — the gather-block row a vertex's feature row lands in.
std::vector<std::int64_t> positions_in(
    const std::vector<std::uint32_t>& sorted,
    const std::vector<std::uint32_t>& subset) {
  std::vector<std::int64_t> out;
  out.reserve(subset.size());
  auto it = sorted.begin();
  for (const std::uint32_t v : subset) {
    it = std::lower_bound(it, sorted.end(), v);
    MGGCN_CHECK_MSG(it != sorted.end() && *it == v,
                    "vertex missing from sampled frontier");
    out.push_back(it - sorted.begin());
  }
  return out;
}

}  // namespace

/// Persistent per-device state: the owned feature shard, the feature cache,
/// and the replicated model (weights + gradient + Adam moments per layer).
struct SampledPipeline::RankState {
  mem::PooledBuffer features;
  FeatureCache cache;
  std::vector<mem::PooledBuffer> weights;
  std::vector<mem::PooledBuffer> wgrad;
  std::vector<mem::PooledBuffer> adam_m;
  std::vector<mem::PooledBuffer> adam_v;
  /// This rank's training vertices (global ids), reshuffled every epoch.
  std::vector<std::uint32_t> order;
  util::Rng rng{0};
};

/// One rank's share of one in-flight round. All scratch buffers live here
/// so a round retires as a unit once its train stage completes.
struct SampledPipeline::BatchState {
  graph::SampledSubgraph sub;
  /// blocks_t[l] = transpose of the level-l aggregation block (l >= 1 only;
  /// level 0 never propagates a gradient into the input features).
  std::vector<sparse::Csr> blocks_t;
  std::vector<std::int32_t> labels;

  // Input-frontier split (rows of gx, the deepest layer's gather block).
  std::vector<std::uint32_t> local_rows;  ///< owner-local feature rows
  std::vector<std::int64_t> local_dst;    ///< their gx rows
  std::vector<std::int64_t> hit_slots;    ///< cache slots of cached rows
  std::vector<std::int64_t> hit_dst;      ///< their gx rows
  /// Per owning rank: missed rows as ascending owner-local indices (what
  /// sendv_rows packs) and the gx rows they scatter into.
  std::vector<std::vector<std::uint32_t>> want_from;
  std::vector<std::vector<std::int64_t>> want_dst;
  /// Cache admissions this round: (gx row, cache slot) copy list.
  std::vector<std::pair<std::int64_t, std::int64_t>> admit_copies;

  // Round scratch. Statically allocated in prepare_round under
  // MGGCN_POOL=off (freed as a unit at retire); leased from the workspace
  // pool otherwise, with dz/dh deferred to enqueue_train and every lease
  // recycled as its last consumer is enqueued, so levels share blocks.
  mem::PooledBuffer gx;                ///< deepest frontier x d0
  std::vector<mem::PooledBuffer> rx;   ///< per owner: sendv landing buffer
  std::vector<mem::PooledBuffer> z;    ///< per level: block * h
  std::vector<mem::PooledBuffer> h;    ///< per level: activation / logits
  std::vector<mem::PooledBuffer> dz;   ///< per level (>=1): grad * W^T
  std::vector<mem::PooledBuffer> dh;   ///< per level (>=1): block^T * dz

  sim::Event sample_done;
  sim::Event extract_done;
  sim::Event train_done;

  LossResult loss;
};

struct SampledPipeline::RoundState {
  int index = 0;
  std::vector<BatchState> batches;
};

SampledPipeline::SampledPipeline(sim::Machine& machine,
                                 const graph::Dataset& dataset,
                                 Options options)
    : machine_(machine),
      dataset_(dataset),
      options_(std::move(options)),
      pool_(mem::resolve_pool(options_.pool, machine, options_.pool_mode)),
      comm_(machine),
      sampler_(dataset.adjacency, options_.fanout),
      part_(PartitionVector::uniform(dataset.n(), machine.num_devices())) {
  MGGCN_CHECK_MSG(options_.batch_size >= 1, "batch_size must be positive");
  MGGCN_CHECK_MSG(options_.fanout.size() == options_.hidden_dims.size() + 1,
                  "need one fanout entry per layer");
  const bool real = machine_.mode() == sim::ExecutionMode::kReal;
  if (real) {
    MGGCN_CHECK_MSG(dataset_.has_features() &&
                        dataset_.labels.size() ==
                            static_cast<std::size_t>(dataset_.n()),
                    "real-mode sampled training needs features and labels");
  }

  dims_.push_back(dataset_.spec.feature_dim);
  for (const auto hdim : options_.hidden_dims) dims_.push_back(hdim);
  dims_.push_back(dataset_.spec.num_classes);

  const int P = machine_.num_devices();
  const std::int64_t d0 = dims_.front();

  // Global training set (per-rank shards below); structure-only datasets
  // (phantom benches) treat every vertex as trainable.
  std::vector<std::uint32_t> all_train;
  if (dataset_.train_mask.size() == static_cast<std::size_t>(dataset_.n())) {
    for (std::int64_t v = 0; v < dataset_.n(); ++v) {
      if (dataset_.train_mask[static_cast<std::size_t>(v)]) {
        all_train.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }
  if (all_train.empty()) {
    all_train.resize(static_cast<std::size_t>(dataset_.n()));
    for (std::int64_t v = 0; v < dataset_.n(); ++v) {
      all_train[static_cast<std::size_t>(v)] = static_cast<std::uint32_t>(v);
    }
  }
  rounds_per_epoch_ = static_cast<int>(
      (static_cast<std::int64_t>(all_train.size()) +
       static_cast<std::int64_t>(P) * options_.batch_size - 1) /
      (static_cast<std::int64_t>(P) * options_.batch_size));

  const std::vector<dense::HostMatrix> init =
      init_weights(dims_, options_.seed);

  // Resolve the cache policy once against rank 0's budget (devices are
  // identical, so the decision is machine-wide).
  const auto requested_rows = static_cast<std::int64_t>(
      options_.cache_capacity_fraction * static_cast<double>(dataset_.n()));

  for (int r = 0; r < P; ++r) {
    auto state = std::make_unique<RankState>();
    sim::Device& device = machine_.device(r);
    mem::WorkspacePool* pool = pool_ ? &pool_->pool(r) : nullptr;

    state->features = mem::acquire_or_alloc(
        pool, device, static_cast<std::size_t>(part_.size(r) * d0), "SMB:X");
    if (real) {
      std::memcpy(state->features.data(),
                  dataset_.features.view().row(part_.begin(r)),
                  state->features.bytes());
    }

    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
      const auto count =
          static_cast<std::size_t>(dims_[l] * dims_[l + 1]);
      state->weights.push_back(
          mem::acquire_or_alloc(pool, device, count, "SMB:W"));
      state->wgrad.push_back(
          mem::acquire_or_alloc(pool, device, count, "SMB:dW"));
      state->adam_m.push_back(
          mem::acquire_or_alloc(pool, device, count, "SMB:AdamM"));
      state->adam_v.push_back(
          mem::acquire_or_alloc(pool, device, count, "SMB:AdamV"));
      if (real) {
        std::memcpy(state->weights.back().data(), init[l].data(),
                    count * sizeof(float));
      }
    }

    if (r == 0) {
      // Cache budget: half of what is actually available. Pooled, that is
      // the pool's headroom (free blocks are reusable, so persistent state
      // and the cache price against one budget — the CaPGNN split);
      // unpooled, the device ledger's remaining capacity.
      std::uint64_t available;
      if (pool != nullptr) {
        available = pool->available_bytes();
      } else {
        const std::uint64_t used = device.memory_used();
        available = device.profile().memory_bytes > used
                        ? device.profile().memory_bytes - used
                        : 0;
      }
      cache_decision_ = FeatureCache::plan_auto(
          options_.cache_mode, requested_rows, d0, comm_, device.profile(),
          available / 2);
      resolved_cache_mode_ = cache_decision_.mode;
    }
    state->cache = FeatureCache(pool, device, d0,
                                cache_decision_.capacity_rows,
                                resolved_cache_mode_);

    // Degree-scored prefill over this rank's REMOTE vertices (local rows
    // never need the cache); under kFreq the degrees also seed the LFU.
    if (state->cache.enabled()) {
      std::vector<std::uint32_t> remote;
      std::vector<std::int64_t> degree;
      remote.reserve(static_cast<std::size_t>(dataset_.n() - part_.size(r)));
      for (std::int64_t v = 0; v < dataset_.n(); ++v) {
        if (v >= part_.begin(r) && v < part_.end(r)) continue;
        remote.push_back(static_cast<std::uint32_t>(v));
        degree.push_back(dataset_.adjacency.row_nnz(v));
      }
      state->cache.prefill(remote, degree);
      if (real) {
        const auto pinned = state->cache.pinned();
        for (std::size_t s = 0; s < pinned.size(); ++s) {
          std::memcpy(state->cache.buffer().data() +
                          s * static_cast<std::size_t>(d0),
                      dataset_.features.view().row(pinned[s]),
                      static_cast<std::size_t>(d0) * sizeof(float));
        }
      }
    }

    // Persistent leases may reuse blocks with previous tenants still in
    // flight: order everything this engine enqueues after them.
    if (pool != nullptr) {
      auto guard = [&](const mem::PooledBuffer& buf) {
        for (const sim::Event& e : buf.ready()) {
          if (!e.valid()) continue;
          device.compute_stream().wait_event(e);
          device.comm_stream().wait_event(e);
        }
      };
      guard(state->features);
      for (const auto& b : state->weights) guard(b);
      for (const auto& b : state->wgrad) guard(b);
      for (const auto& b : state->adam_m) guard(b);
      for (const auto& b : state->adam_v) guard(b);
      guard(state->cache.lease());
    }

    // Per-rank training shard: the rank's own vertices, or the global list
    // when a rank owns none (it still contributes a synchronized batch).
    for (const std::uint32_t v : all_train) {
      if (part_.part_of(v) == r) state->order.push_back(v);
    }
    if (state->order.empty()) state->order = all_train;
    state->rng.reseed(options_.seed * 9029 +
                      static_cast<std::uint64_t>(r + 1) * 65537);

    ranks_.push_back(std::move(state));
  }
}

SampledPipeline::~SampledPipeline() { machine_.synchronize(); }

const FeatureCache& SampledPipeline::cache(int rank) const {
  MGGCN_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()));
  return ranks_[static_cast<std::size_t>(rank)]->cache;
}

SampledPipeline::MemoryBreakdown SampledPipeline::account_memory() const {
  MemoryBreakdown mem;
  for (const auto& state : ranks_) {
    mem.feature_bytes = std::max(mem.feature_bytes, state->features.bytes());
    mem.cache_bytes = std::max(mem.cache_bytes, state->cache.bytes());
  }
  mem.model_bytes = replicated_state_bytes(dims_);
  if (pool_ != nullptr) {
    for (int r = 0; r < pool_->size(); ++r) {
      const mem::PoolStats& stats = pool_->pool(r).stats();
      mem.pool_reserved_bytes =
          std::max(mem.pool_reserved_bytes, stats.reserved_bytes);
      mem.pool_in_use_bytes =
          std::max(mem.pool_in_use_bytes, stats.in_use_bytes);
    }
  }
  return mem;
}

void SampledPipeline::prepare_round(RoundState& round) {
  const int P = machine_.num_devices();
  const std::int64_t d0 = dims_.front();
  const int layers = num_layers();
  const bool real = machine_.mode() == sim::ExecutionMode::kReal;
  sim::PipelineCounters delta;
  delta.rounds = 1;

  round.batches.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    RankState& state = *ranks_[static_cast<std::size_t>(r)];
    BatchState& batch = round.batches[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);
    delta.batches += 1;

    // Seeds: the next batch_size entries of this rank's shuffled shard,
    // wrapping cyclically so every rank fields a batch every round.
    std::vector<std::uint32_t> seeds;
    seeds.reserve(static_cast<std::size_t>(options_.batch_size));
    const std::size_t base = static_cast<std::size_t>(round.index) *
                             static_cast<std::size_t>(options_.batch_size);
    for (std::int64_t i = 0; i < options_.batch_size; ++i) {
      seeds.push_back(
          state.order[(base + static_cast<std::size_t>(i)) %
                      state.order.size()]);
    }
    batch.sub = sampler_.sample(seeds, state.rng);

    batch.blocks_t.resize(static_cast<std::size_t>(layers));
    for (int l = 1; l < layers; ++l) {
      batch.blocks_t[static_cast<std::size_t>(l)] =
          batch.sub.blocks[static_cast<std::size_t>(layers - 1 - l)]
              .transpose();
    }

    if (real) {
      const auto& seed_layer = batch.sub.layers.front();
      batch.labels.resize(seed_layer.size());
      for (std::size_t i = 0; i < seed_layer.size(); ++i) {
        batch.labels[i] = dataset_.labels[seed_layer[i]];
      }
    }

    // Split the deepest frontier into local rows, cache hits, and per-owner
    // remote misses. The frontier is ascending, so per-owner lists come out
    // ascending (sendv_rows' requirement) for free.
    const auto& in = batch.sub.layers.back();
    std::vector<std::uint32_t> remote;
    std::vector<std::int64_t> remote_pos;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::uint32_t v = in[i];
      if (v >= part_.begin(r) && v < part_.end(r)) {
        batch.local_rows.push_back(v -
                                   static_cast<std::uint32_t>(part_.begin(r)));
        batch.local_dst.push_back(static_cast<std::int64_t>(i));
      } else {
        remote.push_back(v);
        remote_pos.push_back(static_cast<std::int64_t>(i));
      }
    }

    const FeatureCache::Partition split = state.cache.lookup(remote);
    batch.hit_slots = split.hit_slots;
    batch.hit_dst = positions_in(in, split.hit_vertices);

    batch.want_from.resize(static_cast<std::size_t>(P));
    batch.want_dst.resize(static_cast<std::size_t>(P));
    for (const std::uint32_t v : split.miss_vertices) {
      const int owner = part_.part_of(v);
      batch.want_from[static_cast<std::size_t>(owner)].push_back(
          v - static_cast<std::uint32_t>(part_.begin(owner)));
    }
    {
      const auto dst = positions_in(in, split.miss_vertices);
      std::size_t i = 0;
      for (const std::uint32_t v : split.miss_vertices) {
        const int owner = part_.part_of(v);
        batch.want_dst[static_cast<std::size_t>(owner)].push_back(dst[i++]);
      }
    }

    for (const auto& [v, slot] : state.cache.admit(split.miss_vertices)) {
      const auto pos = positions_in(in, {v});
      batch.admit_copies.emplace_back(pos.front(), slot);
    }

    delta.cache_hits += split.hit_vertices.size();
    delta.cache_misses += split.miss_vertices.size();

    // Scratch buffers for the round. Pooled, these lease recycled blocks;
    // dz/dh are deferred to enqueue_train so backward temporaries can
    // reuse the blocks freed by earlier levels of the same batch.
    mem::WorkspacePool* pool = pool_ ? &pool_->pool(r) : nullptr;
    batch.gx = mem::acquire_or_alloc(
        pool, device,
        static_cast<std::size_t>(in.size()) * static_cast<std::size_t>(d0),
        "SMB:gx");
    batch.rx.resize(static_cast<std::size_t>(P));
    for (int o = 0; o < P; ++o) {
      const auto rows = batch.want_from[static_cast<std::size_t>(o)].size();
      if (rows == 0 || o == r) continue;
      batch.rx[static_cast<std::size_t>(o)] = mem::acquire_or_alloc(
          pool, device, rows * static_cast<std::size_t>(d0), "SMB:rx");
    }
    // Pooled, z/h are deferred to enqueue_train (level by level, right
    // before their first writers) so a prepared-but-untrained round holds
    // no activation scratch while the previous round trains — the same
    // liveness trim dz/dh get below.
    batch.z.resize(static_cast<std::size_t>(layers));
    batch.h.resize(static_cast<std::size_t>(layers));
    if (pool == nullptr) {
      for (int l = 0; l < layers; ++l) {
        const auto ll = static_cast<std::size_t>(l);
        const sparse::Csr& block =
            batch.sub.blocks[static_cast<std::size_t>(layers - 1 - l)];
        batch.z[ll] = mem::PooledBuffer(
            device, static_cast<std::size_t>(block.rows() * dims_[ll]),
            "SMB:z");
        batch.h[ll] = mem::PooledBuffer(
            device, static_cast<std::size_t>(block.rows() * dims_[ll + 1]),
            "SMB:h");
      }
    }
    batch.dz.resize(static_cast<std::size_t>(layers));
    batch.dh.resize(static_cast<std::size_t>(layers));
    if (pool == nullptr) {
      for (int l = 1; l < layers; ++l) {
        const auto ll = static_cast<std::size_t>(l);
        const sparse::Csr& block =
            batch.sub.blocks[static_cast<std::size_t>(layers - 1 - l)];
        batch.dz[ll] = mem::PooledBuffer(
            device, static_cast<std::size_t>(block.rows() * dims_[ll]),
            "SMB:dz");
        batch.dh[ll] = mem::PooledBuffer(
            device, static_cast<std::size_t>(block.cols() * dims_[ll]),
            "SMB:dh");
      }
    }
  }

  // Eviction counters are monotone per cache; the round's delta is the
  // difference against the previous prepare's machine-wide total.
  std::uint64_t evictions = 0;
  for (const auto& state : ranks_) evictions += state->cache.stats().evictions;
  delta.cache_evictions = evictions - evictions_seen_;
  evictions_seen_ = evictions;

  machine_.trace().record_pipeline(delta);
}

void SampledPipeline::enqueue_sample(RoundState& round) {
  sim::PipelineCounters delta;
  for (int r = 0; r < machine_.num_devices(); ++r) {
    BatchState& batch = round.batches[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);

    // The expansion ran host-side in prepare_round; this task charges its
    // cost on the simulated timeline: one row_ptr/col_idx scan plus the
    // sampled-id writes per hop.
    sim::TaskDesc task;
    task.label = "mb-sample";
    task.kind = sim::TaskKind::kSample;
    task.stage = round.index;
    task.cost.stream_bytes =
        static_cast<double>(batch.sub.total_edges()) * 16.0 +
        static_cast<double>(batch.sub.total_vertices()) * 8.0;
    task.cost.launches = sampler_.hops();
    delta.sample_seconds +=
        sim::CostModel::seconds(task.cost, device.profile());
    batch.sample_done = device.compute_stream().enqueue(std::move(task));
  }
  machine_.trace().record_pipeline(delta);
}

void SampledPipeline::enqueue_extract(RoundState& round) {
  const int P = machine_.num_devices();
  const std::int64_t d0 = dims_.front();
  const auto row_bytes = static_cast<std::uint64_t>(d0) * sizeof(float);
  sim::PipelineCounters delta;
  sim::CommVolume volume;

  // Stage 1 (per rank): assemble local rows and cache hits into gx.
  for (int r = 0; r < P; ++r) {
    BatchState& batch = round.batches[static_cast<std::size_t>(r)];
    RankState& state = *ranks_[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);

    sim::TaskDesc task;
    task.label = "mb-assemble";
    task.kind = sim::TaskKind::kMemory;
    task.stage = round.index;
    const double rows =
        static_cast<double>(batch.local_rows.size() + batch.hit_slots.size());
    task.cost.gather_bytes = rows * static_cast<double>(row_bytes);
    task.cost.gather_working_set =
        static_cast<double>(state.features.bytes() + state.cache.bytes());
    task.cost.stream_bytes = rows * static_cast<double>(row_bytes);
    task.waits.push_back(batch.sample_done);
    mem::append_ready(&task.waits, batch.gx);  // first writer of the lease
    task.reads.push_back(state.features.access());
    if (!batch.hit_slots.empty()) {
      task.reads.push_back(state.cache.buffer().access());
    }
    task.writes.push_back(batch.gx.access());
    task.body = [&batch, &state, d0] {
      for (std::size_t i = 0; i < batch.local_rows.size(); ++i) {
        std::memcpy(batch.gx.data() + batch.local_dst[i] * d0,
                    state.features.data() +
                        static_cast<std::int64_t>(batch.local_rows[i]) * d0,
                    static_cast<std::size_t>(d0) * sizeof(float));
      }
      for (std::size_t i = 0; i < batch.hit_slots.size(); ++i) {
        std::memcpy(batch.gx.data() + batch.hit_dst[i] * d0,
                    state.cache.buffer().data() + batch.hit_slots[i] * d0,
                    static_cast<std::size_t>(d0) * sizeof(float));
      }
    };
    delta.extract_seconds +=
        sim::CostModel::seconds(task.cost, device.profile());
    device.comm_stream().enqueue(std::move(task));

    // The no-cache baseline would pull every remote row (hits included)
    // over the wire; bytes_saved() against this shows the cache's savings.
    volume.dense_bytes += (batch.sub.layers.back().size() -
                           batch.local_rows.size()) *
                          row_bytes;
  }

  // Stage 2: one sendv_rows collective per owning rank, node-aggregated.
  std::vector<std::vector<sim::Event>> arrivals(
      static_cast<std::size_t>(P));  // arrivals[dest]: its sendv events
  for (int o = 0; o < P; ++o) {
    std::vector<std::span<const std::uint32_t>> rows(
        static_cast<std::size_t>(P));
    bool any = false;
    for (int dest = 0; dest < P; ++dest) {
      if (dest == o) continue;
      const auto& want =
          round.batches[static_cast<std::size_t>(dest)]
              .want_from[static_cast<std::size_t>(o)];
      rows[static_cast<std::size_t>(dest)] = want;
      any = any || !want.empty();
    }
    if (!any) continue;

    std::vector<comm::RankPart> parts(static_cast<std::size_t>(P));
    for (int dest = 0; dest < P; ++dest) {
      BatchState& batch = round.batches[static_cast<std::size_t>(dest)];
      comm::RankPart& part = parts[static_cast<std::size_t>(dest)];
      if (dest == o) {
        part.buffer = &ranks_[static_cast<std::size_t>(o)]->features.buffer();
      } else if (!rows[static_cast<std::size_t>(dest)].empty()) {
        mem::PooledBuffer& rx = batch.rx[static_cast<std::size_t>(o)];
        part.buffer = &rx.buffer();
        mem::append_ready(&part.waits, rx);  // first writer of the lease
      }
      part.waits.push_back(batch.sample_done);
    }

    const comm::SendvShape shape = comm_.sendv_shape(rows, d0, o);
    volume.wire_bytes += shape.total_bytes();
    volume.wire_bytes_inter += shape.inter_bytes;
    volume.packs += static_cast<std::uint64_t>(shape.messages());
    volume.compact_stages += 1;
    // The collective occupies every rank's comm stream for its duration.
    delta.extract_seconds +=
        comm_.sendv_rows_seconds(shape) * static_cast<double>(P);

    std::vector<sim::Event> events = comm_.sendv_rows(
        std::move(parts), std::move(rows), d0, o, comm::StreamChoice::kComm,
        round.index);
    for (int dest = 0; dest < P; ++dest) {
      if (dest == o) continue;
      if (!round.batches[static_cast<std::size_t>(dest)]
               .want_from[static_cast<std::size_t>(o)]
               .empty()) {
        arrivals[static_cast<std::size_t>(dest)].push_back(
            events[static_cast<std::size_t>(dest)]);
      }
    }
  }

  // Stage 3 (per rank): scatter the landed rows into gx and copy this
  // round's cache admissions out of gx into their slots (fused into one
  // task so the cached path adds no extra launches over the off path).
  for (int r = 0; r < P; ++r) {
    BatchState& batch = round.batches[static_cast<std::size_t>(r)];
    RankState& state = *ranks_[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);

    std::uint64_t landed = 0;
    for (const auto& want : batch.want_from) landed += want.size();
    if (landed == 0 && batch.admit_copies.empty()) {
      batch.extract_done = device.comm_stream().record_event();
      continue;
    }

    sim::TaskDesc task;
    task.label = "mb-scatter";
    task.kind = sim::TaskKind::kMemory;
    task.stage = round.index;
    task.cost.stream_bytes =
        2.0 * static_cast<double>(landed * row_bytes) +
        2.0 * static_cast<double>(batch.admit_copies.size() * row_bytes);
    task.waits = arrivals[static_cast<std::size_t>(r)];
    for (int o = 0; o < P; ++o) {
      if (!batch.rx[static_cast<std::size_t>(o)].empty()) {
        task.reads.push_back(batch.rx[static_cast<std::size_t>(o)].access());
      }
    }
    task.reads.push_back(batch.gx.access());
    task.writes.push_back(batch.gx.access());
    if (!batch.admit_copies.empty()) {
      task.writes.push_back(state.cache.buffer().access());
    }
    task.body = [&batch, &state, d0] {
      for (std::size_t o = 0; o < batch.want_dst.size(); ++o) {
        const auto& dst = batch.want_dst[o];
        if (dst.empty()) continue;
        const float* src = batch.rx[o].data();
        for (std::size_t i = 0; i < dst.size(); ++i) {
          std::memcpy(batch.gx.data() + dst[i] * d0,
                      src + static_cast<std::int64_t>(i) * d0,
                      static_cast<std::size_t>(d0) * sizeof(float));
        }
      }
      for (const auto& [gx_row, slot] : batch.admit_copies) {
        std::memcpy(state.cache.buffer().data() + slot * d0,
                    batch.gx.data() + gx_row * d0,
                    static_cast<std::size_t>(d0) * sizeof(float));
      }
    };
    delta.extract_seconds +=
        sim::CostModel::seconds(task.cost, device.profile());
    batch.extract_done = device.comm_stream().enqueue(std::move(task));

    // The scatter is the landing buffers' last consumer: hand the blocks
    // back for reuse (no-op unpooled), stream-ordered on its completion.
    for (auto& rx : batch.rx) {
      if (!rx.empty()) rx.recycle(batch.extract_done);
    }
  }

  machine_.trace().record_pipeline(delta);
  machine_.trace().record_comm_volume(volume);
}

void SampledPipeline::enqueue_train(RoundState& round) {
  const int P = machine_.num_devices();
  const int layers = num_layers();
  sim::PipelineCounters delta;

  std::int64_t global_seeds = 0;
  for (const auto& batch : round.batches) {
    global_seeds += static_cast<std::int64_t>(batch.sub.layers.front().size());
  }
  const int step = ++adam_step_;

  // Per-rank compute chain; wgrad completion events feed the allreduces.
  std::vector<std::vector<sim::Event>> wgrad_ready(
      static_cast<std::size_t>(P),
      std::vector<sim::Event>(static_cast<std::size_t>(layers)));
  for (int r = 0; r < P; ++r) {
    BatchState& batch = round.batches[static_cast<std::size_t>(r)];
    RankState& state = *ranks_[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);
    sim::Stream& stream = device.compute_stream();
    const auto price = [&](const sim::KernelCost& cost) {
      delta.train_seconds += sim::CostModel::seconds(cost, device.profile());
    };

    // Forward.
    sim::DeviceBuffer* prev = &batch.gx.buffer();
    std::int64_t prev_rows =
        static_cast<std::int64_t>(batch.sub.layers.back().size());
    for (int l = 0; l < layers; ++l) {
      const auto ll = static_cast<std::size_t>(l);
      const sparse::Csr& block =
          batch.sub.blocks[static_cast<std::size_t>(layers - 1 - l)];
      if (pool_ != nullptr) {
        // Deferred from prepare_round: leased at the first writer, so
        // these blocks can come from the previous round's recycled
        // backward scratch.
        mem::WorkspacePool& pool = pool_->pool(r);
        batch.z[ll] = pool.acquire(
            static_cast<std::size_t>(block.rows() * dims_[ll]), "SMB:z");
        batch.h[ll] = pool.acquire(
            static_cast<std::size_t>(block.rows() * dims_[ll + 1]), "SMB:h");
      }

      sim::TaskDesc spmm;
      spmm.label = "mb-spmm-f";
      spmm.kind = sim::TaskKind::kSpMM;
      spmm.stage = round.index;
      spmm.cost = sparse::spmm_cost(block, dims_[ll]);
      if (l == 0) spmm.waits.push_back(batch.extract_done);
      mem::append_ready(&spmm.waits, batch.z[ll]);  // first writer
      spmm.reads.push_back(prev->access());
      spmm.writes.push_back(batch.z[ll].access());
      spmm.body = [&batch, &block, prev, prev_rows, ll, this] {
        sparse::spmm(block,
                     {prev->data(), prev_rows, dims_[ll]},
                     {batch.z[ll].data(), block.rows(), dims_[ll]});
      };
      price(spmm.cost);
      const sim::Event spmm_done = stream.enqueue(std::move(spmm));
      if (l == 0) {
        // The level-0 forward SpMM is the gather block's last consumer
        // (the scatter that wrote it is already ordered before).
        batch.gx.recycle(spmm_done);
      }

      sim::TaskDesc gemm;
      gemm.label = "mb-gemm-f";
      gemm.kind = sim::TaskKind::kGeMM;
      gemm.stage = round.index;
      gemm.cost = dense::gemm_cost(block.rows(), dims_[ll + 1], dims_[ll]);
      mem::append_ready(&gemm.waits, batch.h[ll]);  // first writer
      gemm.reads.push_back(batch.z[ll].access());
      gemm.reads.push_back(state.weights[ll].access());
      gemm.writes.push_back(batch.h[ll].access());
      gemm.body = [&batch, &state, &block, ll, this] {
        dense::gemm({batch.z[ll].data(), block.rows(), dims_[ll]},
                    {state.weights[ll].data(), dims_[ll], dims_[ll + 1]},
                    {batch.h[ll].data(), block.rows(), dims_[ll + 1]});
      };
      price(gemm.cost);
      stream.enqueue(std::move(gemm));

      if (l + 1 < layers) {
        sim::TaskDesc relu;
        relu.label = "mb-relu";
        relu.kind = sim::TaskKind::kActivation;
        relu.stage = round.index;
        const std::int64_t count = block.rows() * dims_[ll + 1];
        relu.cost = dense::elementwise_cost(count, 1, 1);
        relu.reads.push_back(batch.h[ll].access());
        relu.writes.push_back(batch.h[ll].access());
        relu.body = [&batch, ll, count] {
          dense::relu_forward(batch.h[ll].data(), batch.h[ll].data(), count);
        };
        price(relu.cost);
        stream.enqueue(std::move(relu));
      }

      prev = &batch.h[ll].buffer();
      prev_rows = block.rows();
    }

    // Fused loss + logits gradient, in place.
    {
      const auto seeds =
          static_cast<std::int64_t>(batch.sub.layers.front().size());
      const auto last = static_cast<std::size_t>(layers - 1);
      sim::TaskDesc loss;
      loss.label = "mb-loss";
      loss.kind = sim::TaskKind::kLoss;
      loss.stage = round.index;
      loss.cost = loss_cost(seeds, dims_.back());
      loss.reads.push_back(batch.h[last].access());
      loss.writes.push_back(batch.h[last].access());
      loss.body = [&batch, seeds, last, global_seeds, this] {
        batch.loss = softmax_cross_entropy_inplace(
            {batch.h[last].data(), seeds, dims_.back()}, batch.labels.data(),
            nullptr, global_seeds);
      };
      price(loss.cost);
      stream.enqueue(std::move(loss));
    }

    // Backward. `grad_lease` tracks which lease backs `grad` so it can be
    // handed back the moment its last reader is enqueued — together with
    // the per-level dz/dh recycling below, backward temporaries of
    // different levels share pool blocks (the footprint win the pool
    // exists for; a no-op chain when unpooled).
    sim::DeviceBuffer* grad =
        &batch.h[static_cast<std::size_t>(layers - 1)].buffer();
    mem::PooledBuffer* grad_lease =
        &batch.h[static_cast<std::size_t>(layers - 1)];
    std::int64_t grad_rows =
        static_cast<std::int64_t>(batch.sub.layers.front().size());
    for (int l = layers - 1; l >= 0; --l) {
      const auto ll = static_cast<std::size_t>(l);
      const sparse::Csr& block =
          batch.sub.blocks[static_cast<std::size_t>(layers - 1 - l)];

      sim::TaskDesc wgrad;
      wgrad.label = "mb-wgrad";
      wgrad.kind = sim::TaskKind::kGeMM;
      wgrad.stage = round.index;
      wgrad.cost = dense::gemm_cost(dims_[ll], dims_[ll + 1], block.rows());
      wgrad.reads.push_back(batch.z[ll].access());
      wgrad.reads.push_back(grad->access());
      wgrad.writes.push_back(state.wgrad[ll].access());
      wgrad.body = [&batch, &state, &block, grad, grad_rows, ll, this] {
        dense::gemm_at_b({batch.z[ll].data(), block.rows(), dims_[ll]},
                         {grad->data(), grad_rows, dims_[ll + 1]},
                         {state.wgrad[ll].data(), dims_[ll], dims_[ll + 1]});
      };
      price(wgrad.cost);
      wgrad_ready[static_cast<std::size_t>(r)][ll] =
          stream.enqueue(std::move(wgrad));
      // The weight gradient is z's last reader.
      batch.z[ll].recycle(wgrad_ready[static_cast<std::size_t>(r)][ll]);

      if (l > 0) {
        const sparse::Csr& block_t = batch.blocks_t[ll];
        if (pool_ != nullptr) {
          // Deferred acquisition: by now the previous level's dz/dh and
          // this level's z have been recycled, so these lease their blocks.
          mem::WorkspacePool& pool = pool_->pool(r);
          batch.dz[ll] = pool.acquire(
              static_cast<std::size_t>(block.rows() * dims_[ll]), "SMB:dz");
          batch.dh[ll] = pool.acquire(
              static_cast<std::size_t>(block_t.rows() * dims_[ll]), "SMB:dh");
        }

        sim::TaskDesc dz;
        dz.label = "mb-dz";
        dz.kind = sim::TaskKind::kGeMM;
        dz.stage = round.index;
        dz.cost = dense::gemm_cost(block.rows(), dims_[ll], dims_[ll + 1]);
        mem::append_ready(&dz.waits, batch.dz[ll]);  // first writer
        dz.reads.push_back(grad->access());
        dz.reads.push_back(state.weights[ll].access());
        dz.writes.push_back(batch.dz[ll].access());
        dz.body = [&batch, &state, &block, grad, grad_rows, ll, this] {
          dense::gemm_a_bt(
              {grad->data(), grad_rows, dims_[ll + 1]},
              {state.weights[ll].data(), dims_[ll], dims_[ll + 1]},
              {batch.dz[ll].data(), block.rows(), dims_[ll]});
        };
        price(dz.cost);
        const sim::Event dz_done = stream.enqueue(std::move(dz));
        // dz's GeMM is the incoming gradient's last reader (the wgrad read
        // precedes it on the same stream).
        grad_lease->recycle(dz_done);

        sim::TaskDesc spmm;
        spmm.label = "mb-spmm-b";
        spmm.kind = sim::TaskKind::kSpMM;
        spmm.stage = round.index;
        spmm.cost = sparse::spmm_cost(block_t, dims_[ll]);
        mem::append_ready(&spmm.waits, batch.dh[ll]);  // first writer
        spmm.reads.push_back(batch.dz[ll].access());
        spmm.writes.push_back(batch.dh[ll].access());
        spmm.body = [&batch, &block, &block_t, ll, this] {
          sparse::spmm(block_t,
                       {batch.dz[ll].data(), block.rows(), dims_[ll]},
                       {batch.dh[ll].data(), block_t.rows(), dims_[ll]});
        };
        price(spmm.cost);
        const sim::Event spmm_done = stream.enqueue(std::move(spmm));
        // The backward SpMM is dz's only reader.
        batch.dz[ll].recycle(spmm_done);

        // Mask by this level's input activation (h[l-1], post-ReLU).
        sim::TaskDesc mask;
        mask.label = "mb-relu-b";
        mask.kind = sim::TaskKind::kActivation;
        mask.stage = round.index;
        const std::int64_t count = block_t.rows() * dims_[ll];
        mask.cost = dense::elementwise_cost(count, 2, 1);
        mask.reads.push_back(batch.dh[ll].access());
        mask.reads.push_back(batch.h[ll - 1].access());
        mask.writes.push_back(batch.dh[ll].access());
        mask.body = [&batch, ll, count] {
          dense::relu_backward(batch.dh[ll].data(), batch.h[ll - 1].data(),
                               batch.dh[ll].data(), count);
        };
        price(mask.cost);
        const sim::Event mask_done = stream.enqueue(std::move(mask));
        // The mask is the last reader of the saved activation h[l-1].
        batch.h[ll - 1].recycle(mask_done);

        grad = &batch.dh[ll].buffer();
        grad_lease = &batch.dh[ll];
        grad_rows = block_t.rows();
      } else {
        // Level 0 propagates no gradient further; the wgrad above was the
        // incoming gradient's last reader.
        grad_lease->recycle(wgrad_ready[static_cast<std::size_t>(r)][ll]);
      }
    }
  }

  // Gradient allreduces (comm streams), in the order the grads become
  // ready (deepest layer last in backward = layer 0; enqueue L-1 .. 0).
  std::vector<std::vector<sim::Event>> reduced(
      static_cast<std::size_t>(layers));
  for (int l = layers - 1; l >= 0; --l) {
    const auto ll = static_cast<std::size_t>(l);
    std::vector<comm::RankPart> parts(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      parts[static_cast<std::size_t>(r)].buffer =
          &ranks_[static_cast<std::size_t>(r)]->wgrad[ll].buffer();
      parts[static_cast<std::size_t>(r)].waits.push_back(
          wgrad_ready[static_cast<std::size_t>(r)][ll]);
    }
    reduced[ll] = comm_.allreduce_sum(
        std::move(parts), static_cast<std::size_t>(dims_[ll] * dims_[ll + 1]),
        comm::StreamChoice::kComm);
  }

  // Adam (compute streams), each layer gated on its allreduce.
  for (int r = 0; r < P; ++r) {
    RankState& state = *ranks_[static_cast<std::size_t>(r)];
    sim::Device& device = machine_.device(r);
    for (int l = layers - 1; l >= 0; --l) {
      const auto ll = static_cast<std::size_t>(l);
      const std::int64_t count = dims_[ll] * dims_[ll + 1];
      sim::TaskDesc adam;
      adam.label = "mb-adam";
      adam.kind = sim::TaskKind::kOptimizer;
      adam.stage = round.index;
      adam.cost = adam_cost(count);
      adam.waits.push_back(reduced[ll][static_cast<std::size_t>(r)]);
      adam.reads.push_back(state.wgrad[ll].access());
      adam.reads.push_back(state.weights[ll].access());
      adam.reads.push_back(state.adam_m[ll].access());
      adam.reads.push_back(state.adam_v[ll].access());
      adam.writes.push_back(state.weights[ll].access());
      adam.writes.push_back(state.adam_m[ll].access());
      adam.writes.push_back(state.adam_v[ll].access());
      adam.body = [&state, ll, count, step, this] {
        adam_update(state.weights[ll].data(), state.wgrad[ll].data(),
                    state.adam_m[ll].data(), state.adam_v[ll].data(), count,
                    step, options_.learning_rate, options_.beta1,
                    options_.beta2, options_.epsilon);
      };
      delta.train_seconds +=
          sim::CostModel::seconds(adam.cost, device.profile());
      device.compute_stream().enqueue(std::move(adam));
    }
    round.batches[static_cast<std::size_t>(r)].train_done =
        device.compute_stream().record_event();
  }

  machine_.trace().record_pipeline(delta);
}

void SampledPipeline::retire_round(RoundState& round) {
  for (auto& batch : round.batches) {
    if (batch.train_done.valid()) batch.train_done.wait();
  }
  for (const auto& batch : round.batches) {
    epoch_loss_sum_ += batch.loss.loss_sum;
    epoch_correct_ += batch.loss.correct;
    epoch_counted_ += batch.loss.counted;
  }
  round.batches.clear();  // frees every scratch DeviceBuffer
}

EpochStats SampledPipeline::train_epoch() {
  const double mark = machine_.align_clocks();
  const sim::CommVolume volume_mark = machine_.trace().comm_volume();
  const sim::PipelineCounters pipe_mark = machine_.trace().pipeline_counters();
  const sim::PoolCounters pool_mark = machine_.trace().pool_counters();
  machine_.begin_epoch(epoch_);

  epoch_loss_sum_ = 0.0;
  epoch_correct_ = 0;
  epoch_counted_ = 0;
  for (auto& state : ranks_) state->rng.shuffle(state->order);

  std::deque<std::unique_ptr<RoundState>> inflight;
  const auto launch_front = [&](int index) {
    auto round = std::make_unique<RoundState>();
    round->index = index;
    prepare_round(*round);
    enqueue_sample(*round);
    enqueue_extract(*round);
    inflight.push_back(std::move(round));
  };

  if (options_.pipeline) {
    launch_front(0);
    for (int k = 0; k < rounds_per_epoch_; ++k) {
      if (k + 1 < rounds_per_epoch_) launch_front(k + 1);
      enqueue_train(*inflight.front());
      // Slide the window: wait out the round trained last iteration so at
      // most two rounds of scratch buffers are ever alive.
      if (inflight.size() > 1) {
        auto done = std::move(inflight.front());
        inflight.pop_front();
        retire_round(*done);
      }
    }
    while (!inflight.empty()) {
      auto done = std::move(inflight.front());
      inflight.pop_front();
      retire_round(*done);
    }
  } else {
    // Serialized baseline: machine-wide clock alignment between stages, so
    // no stage of any round overlaps another. Same tasks, same numerics.
    for (int k = 0; k < rounds_per_epoch_; ++k) {
      auto round = std::make_unique<RoundState>();
      round->index = k;
      prepare_round(*round);
      enqueue_sample(*round);
      machine_.align_clocks();
      enqueue_extract(*round);
      machine_.align_clocks();
      enqueue_train(*round);
      machine_.align_clocks();
      retire_round(*round);
    }
  }
  machine_.synchronize();

  EpochStats stats;
  stats.epoch = epoch_++;
  stats.sim_seconds = machine_.sim_time() - mark;
  stats.busy_by_kind = machine_.trace().busy_by_kind(mark);
  stats.peak_memory_bytes = machine_.max_memory_peak();
  stats.comm_retries = static_cast<int>(machine_.trace().fault_count(
      sim::FaultEventKind::kCommRetry, stats.epoch));
  const sim::CommVolume volume = machine_.trace().comm_volume();
  stats.comm_wire_bytes = volume.wire_bytes - volume_mark.wire_bytes;
  stats.comm_wire_bytes_inter =
      volume.wire_bytes_inter - volume_mark.wire_bytes_inter;
  stats.comm_bytes_saved = volume.bytes_saved() - volume_mark.bytes_saved();
  stats.comm_packs = volume.packs - volume_mark.packs;
  stats.comm_compact_stages =
      static_cast<int>(volume.compact_stages - volume_mark.compact_stages);
  stats.comm_dense_stages =
      static_cast<int>(volume.dense_stages - volume_mark.dense_stages);

  const sim::PoolCounters pool = machine_.trace().pool_counters();
  stats.pool_peak_bytes = pool.reserved_peak_bytes;  // absolute high-water
  stats.pool_reuse_hits = pool.reuse_hits - pool_mark.reuse_hits;
  stats.pool_fragmentation = pool.fragmentation_peak;

  const sim::PipelineCounters pipe = machine_.trace().pipeline_counters();
  stats.pipe_rounds = static_cast<int>(pipe.rounds - pipe_mark.rounds);
  stats.cache_hits =
      static_cast<std::int64_t>(pipe.cache_hits - pipe_mark.cache_hits);
  stats.cache_misses =
      static_cast<std::int64_t>(pipe.cache_misses - pipe_mark.cache_misses);
  stats.cache_evictions = static_cast<std::int64_t>(pipe.cache_evictions -
                                                    pipe_mark.cache_evictions);
  const std::int64_t lookups = stats.cache_hits + stats.cache_misses;
  stats.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  stats.pipe_sample_seconds = pipe.sample_seconds - pipe_mark.sample_seconds;
  stats.pipe_extract_seconds =
      pipe.extract_seconds - pipe_mark.extract_seconds;
  stats.pipe_train_seconds = pipe.train_seconds - pipe_mark.train_seconds;
  const double stream_seconds =
      2.0 * static_cast<double>(machine_.num_devices()) * stats.sim_seconds;
  stats.pipe_occupancy =
      stream_seconds > 0.0
          ? (stats.pipe_sample_seconds + stats.pipe_extract_seconds +
             stats.pipe_train_seconds) /
                stream_seconds
          : 0.0;

  stats.loss = epoch_counted_ > 0
                   ? epoch_loss_sum_ / static_cast<double>(epoch_counted_)
                   : 0.0;
  stats.train_accuracy =
      epoch_counted_ > 0 ? static_cast<double>(epoch_correct_) /
                               static_cast<double>(epoch_counted_)
                         : 0.0;
  return stats;
}

std::vector<EpochStats> SampledPipeline::train(int epochs) {
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

}  // namespace mggcn::core
