// Per-epoch training metrics: loss/accuracy (real mode) plus the simulated
// timing breakdown the paper's figures report.
#pragma once

#include <cstdint>
#include <map>

#include "sim/trace.hpp"

namespace mggcn::core {

struct EpochStats {
  int epoch = 0;

  // Valid in real execution mode only.
  double loss = 0.0;
  double train_accuracy = 0.0;

  /// Simulated wall-clock of the epoch (max over devices).
  double sim_seconds = 0.0;

  /// Simulated busy seconds per operation kind, summed over devices
  /// (Fig. 5's Activation / Adam / GeMM / Loss-Layer / SpMM split; SpMM
  /// includes the broadcast wait the paper attributes to it).
  std::map<sim::TaskKind, double> busy_by_kind;

  /// Peak device memory over ranks at the end of the epoch.
  std::uint64_t peak_memory_bytes = 0;

  /// Collective retries paid this epoch to absorb injected transient
  /// communication faults (0 on fault-free runs).
  int comm_retries = 0;

  /// Staged-exchange communication volume this epoch (sim::CommVolume
  /// deltas): bytes actually on the wire, bytes avoided vs all-dense
  /// broadcasts, per-destination packs, and the per-path stage counts.
  std::uint64_t comm_wire_bytes = 0;
  std::uint64_t comm_bytes_saved = 0;
  std::uint64_t comm_packs = 0;
  /// Portion of comm_wire_bytes that crossed a node boundary (0 on
  /// single-node machines) — the NIC traffic the hierarchical partitioner
  /// minimizes first.
  std::uint64_t comm_wire_bytes_inter = 0;
  int comm_compact_stages = 0;
  int comm_dense_stages = 0;

  /// Planner strategy-selection counters this epoch (sim::PlanCounters
  /// deltas): distributed products executed per strategy, fresh auto-mode
  /// pricings, and infeasible-choice fallbacks onto 1d.
  int plan_products_1d = 0;
  int plan_products_15d = 0;
  int plan_products_replicated = 0;
  int plan_decisions = 0;
  int plan_fallbacks = 0;

  /// Sampled-pipeline counters this epoch (sim::PipelineCounters deltas;
  /// zero for the full-batch trainer). cache_* are the per-device feature
  /// caches' extraction outcomes; pipe_*_seconds are the cost-model-priced
  /// busy seconds per stage summed over devices; pipe_occupancy is the
  /// mean stage-busy fraction of the epoch's device-seconds, the headline
  /// overlap metric of the pipelined engine.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  /// hits / (hits + misses); 0 when the extraction stage saw no lookups.
  double cache_hit_rate = 0.0;
  int pipe_rounds = 0;
  double pipe_sample_seconds = 0.0;
  double pipe_extract_seconds = 0.0;
  double pipe_train_seconds = 0.0;
  double pipe_occupancy = 0.0;

  /// Workspace-pool counters this epoch (sim::PoolCounters; all zero when
  /// MGGCN_POOL resolves to the static path). pool_peak_bytes is the
  /// high-water pooled reservation over devices (an absolute snapshot, not
  /// a delta); pool_reuse_hits counts acquires served by recycling instead
  /// of a fresh device reservation; pool_fragmentation is the high-water
  /// unusable-free fraction of the reservation.
  std::uint64_t pool_peak_bytes = 0;
  std::uint64_t pool_reuse_hits = 0;
  double pool_fragmentation = 0.0;

  /// Cut quality of the active vertex ordering (core::PartitionCutStats of
  /// the forward tiling, measured once at preprocessing and repeated in
  /// every epoch's stats so bench rows stay self-contained).
  std::int64_t part_cut_edges = 0;
  std::int64_t part_inter_node_cut_edges = 0;
  std::int64_t part_ghost_rows = 0;
  std::int64_t part_inter_node_ghost_rows = 0;
  double part_avg_ghost_density = 0.0;
  double part_imbalance = 1.0;
};

}  // namespace mggcn::core
