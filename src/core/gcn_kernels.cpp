#include "core/gcn_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mggcn::core {

LossResult softmax_cross_entropy_inplace(dense::MatrixView logits,
                                         const std::int32_t* labels,
                                         const std::uint8_t* mask,
                                         std::int64_t total_train) {
  MGGCN_CHECK(total_train > 0);
  LossResult result;
  const std::int64_t n = logits.rows;
  const std::int64_t c = logits.cols;
  const float inv_total = 1.0f / static_cast<float>(total_train);

  for (std::int64_t r = 0; r < n; ++r) {
    float* row = logits.row(r);
    if (mask != nullptr && mask[r] == 0) {
      std::fill(row, row + c, 0.0f);
      continue;
    }
    const std::int32_t label = labels[r];
    MGGCN_CHECK(label >= 0 && label < c);

    // Numerically stable softmax.
    float max_logit = row[0];
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > max_logit) {
        max_logit = row[j];
        argmax = j;
      }
    }
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      denom += std::exp(static_cast<double>(row[j] - max_logit));
    }
    const double log_denom = std::log(denom);
    result.loss_sum +=
        log_denom - static_cast<double>(row[label] - max_logit);
    result.correct += argmax == label ? 1 : 0;
    ++result.counted;

    // Gradient: softmax(row) - onehot(label), scaled.
    for (std::int64_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - max_logit)) /
                       denom;
      row[j] = static_cast<float>(p) * inv_total;
    }
    row[label] -= inv_total;
  }
  return result;
}

LossResult evaluate_accuracy(dense::ConstMatrixView logits,
                             const std::int32_t* labels,
                             const std::uint8_t* mask) {
  LossResult result;
  for (std::int64_t r = 0; r < logits.rows; ++r) {
    if (mask != nullptr && mask[r] == 0) continue;
    const float* row = logits.row(r);
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < logits.cols; ++j) {
      if (row[j] > row[argmax]) argmax = j;
    }
    result.correct += argmax == labels[r] ? 1 : 0;
    ++result.counted;
  }
  return result;
}

void adam_update(float* __restrict weights, const float* __restrict gradient,
                 float* __restrict m, float* __restrict v, std::int64_t n,
                 int step, double learning_rate, double beta1, double beta2,
                 double epsilon) {
  // The __restrict qualifiers are what let the loop below vectorize: the
  // stores to weights/m/v would otherwise force an aliasing check against
  // every load. The arithmetic is unchanged from the reference (double
  // internally, same operation order), so results are bit-identical.
  MGGCN_CHECK(step >= 1);
  const double bias1 = 1.0 - std::pow(beta1, step);
  const double bias2 = 1.0 - std::pow(beta2, step);
  for (std::int64_t i = 0; i < n; ++i) {
    const double g = gradient[i];
    const double mi = beta1 * m[i] + (1.0 - beta1) * g;
    const double vi = beta2 * v[i] + (1.0 - beta2) * g * g;
    m[i] = static_cast<float>(mi);
    v[i] = static_cast<float>(vi);
    const double m_hat = mi / bias1;
    const double v_hat = vi / bias2;
    weights[i] -= static_cast<float>(learning_rate * m_hat /
                                     (std::sqrt(v_hat) + epsilon));
  }
}

sim::KernelCost loss_cost(std::int64_t n, std::int64_t classes) {
  sim::KernelCost cost;
  // Read logits + write gradient, plus exp/log work (~8 flops per element).
  cost.stream_bytes = 8.0 * static_cast<double>(n) * classes;
  cost.flops = 8.0 * static_cast<double>(n) * classes;
  cost.launches = 2;  // loss forward + gradient
  return cost;
}

sim::KernelCost adam_cost(std::int64_t n) {
  sim::KernelCost cost;
  cost.stream_bytes = 4.0 * static_cast<double>(n) * 7.0;  // r: w,g,m,v  w: w,m,v
  cost.flops = 10.0 * static_cast<double>(n);
  cost.launches = 1;
  return cost;
}

}  // namespace mggcn::core
