// Distribution-strategy registry for the per-layer auto-planner.
//
// The paper fixes one distribution strategy — the 1D staged broadcast
// (§4.1) — for every layer, but the cheapest strategy depends on the dense
// width d(l), the tile density, and the topology (the mixture-of-parallelism
// argument; see core/planner.hpp). The registry mirrors comm/comm_mode.hpp:
//
//   - `1d`:         always the staged broadcast (DistSpmm; the dense /
//                   compact exchange choice composes underneath via
//                   MGGCN_COMM).
//   - `15d`:        always the chained 1.5D executor (order-preserving
//                   c = 2 variant; falls back to 1d when the device count
//                   is odd or < 4).
//   - `replicated`: always the allgather-replicated executor (falls back
//                   to 1d when the replica would not fit in device memory).
//   - `auto` (default): per product width, pick whichever the simulator's
//                   own cost models predict is fastest.
//
// All strategies accumulate every output element in ascending global column
// order — exactly the 1D stage order — so trainer losses are bit-identical
// across MGGCN_PLAN values; only time, volume and memory differ.
//
// set_plan_mode() installs a mode programmatically; the MGGCN_PLAN
// environment variable ("1d" | "15d" | "replicated" | "auto") is read once
// at first use and an unknown value fails loudly, so experiment-script
// typos do not silently change the strategy under study.
#pragma once

#include <optional>
#include <string_view>

namespace mggcn::core {

enum class PlanMode { k1D = 0, k15D = 1, kReplicated = 2, kAuto = 3 };

inline constexpr int kNumPlanModes = 4;

/// Stable lower-case name ("1d" | "15d" | "replicated" | "auto") for logs,
/// CLI, and JSON.
[[nodiscard]] const char* plan_mode_name(PlanMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<PlanMode> parse_plan_mode(std::string_view name);

/// The active mode. Defaults to kAuto, overridable once via the MGGCN_PLAN
/// environment variable; throws InvalidArgumentError on an unknown
/// MGGCN_PLAN value.
[[nodiscard]] PlanMode plan_mode();

/// Installs `mode` as the active mode (e.g. from a --plan CLI flag).
void set_plan_mode(PlanMode mode);

/// RAII mode override for tests and benches that diff the strategies.
class ScopedPlanMode {
 public:
  explicit ScopedPlanMode(PlanMode mode) : previous_(plan_mode()) {
    set_plan_mode(mode);
  }
  ~ScopedPlanMode() { set_plan_mode(previous_); }
  ScopedPlanMode(const ScopedPlanMode&) = delete;
  ScopedPlanMode& operator=(const ScopedPlanMode&) = delete;

 private:
  PlanMode previous_;
};

}  // namespace mggcn::core
