// Per-device frequency-aware feature cache for the sampled pipeline.
//
// Sampled mini-batch training gathers the input rows of every batch's
// deepest frontier; rows owned by other devices travel over the
// interconnect (Communicator::sendv_rows). The access distribution is
// heavily skewed — high-degree vertices appear in almost every batch — so a
// small cache of hot remote rows pinned in device memory (the samgraph /
// CaPGNN design) converts most of that wire traffic into HBM reads.
//
// The cache is split into host-side bookkeeping (lookup / admission /
// eviction, run at enqueue time on the main thread so decisions are
// deterministic and independent of worker scheduling) and a DeviceBuffer
// holding the pinned rows (so cache memory is charged against the device
// and audited by the hazard checker like any other buffer). Scoring:
//
//   - kStatic: degree-scored; prefill() pins the top-degree vertices and
//     lookups never change the contents (no eviction, zero bookkeeping).
//   - kFreq:   access-frequency scored (LFU with frequency-aware admission):
//     every lookup counts, and a missed row is admitted only by displacing a
//     pinned row with a strictly lower score.
//
// kAuto resolves to one of the above (or kOff) via plan_auto(), which
// prices a cached-row read against its sendv extraction with the
// simulator's own cost model and clamps capacity to the memory actually
// available — so auto never loses to off under the model.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/cache_mode.hpp"
#include "mem/workspace_pool.hpp"
#include "sim/device.hpp"

namespace mggcn::core {

class FeatureCache {
 public:
  /// Monotone counters over the cache's lifetime. hits + misses equals the
  /// total rows looked up; occupancy() == prefilled + inserts - evictions.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  /// The outcome of plan_auto: the resolved concrete mode (never kAuto) and
  /// the capacity after the memory clamp, plus the per-row prices the
  /// decision compared (for logging/tests).
  struct AutoDecision {
    CacheMode mode = CacheMode::kOff;
    std::int64_t capacity_rows = 0;
    double hit_seconds_per_row = 0.0;
    double miss_seconds_per_row = 0.0;
  };

  /// An inactive cache (mode off or capacity 0): lookups miss everything
  /// and reserve no memory.
  FeatureCache() = default;

  /// `mode` must be a concrete policy (kOff / kStatic / kFreq — resolve
  /// kAuto through plan_auto first). A capacity of 0 degenerates to kOff.
  /// The backing buffer (capacity_rows x d floats) is reserved against
  /// `device` immediately.
  FeatureCache(sim::Device& device, std::int64_t d, std::int64_t capacity_rows,
               CacheMode mode);

  /// Same, but the backing rows are leased from `pool` (null falls back to
  /// a static DeviceBuffer) so the cache's capacity counts against the one
  /// pooled budget it shares with the engines — the CaPGNN joint-budget
  /// pricing. Pass the pool's headroom (WorkspacePool::available_bytes) as
  /// plan_auto's available_bytes when sizing a pooled cache.
  FeatureCache(mem::WorkspacePool* pool, sim::Device& device, std::int64_t d,
               std::int64_t capacity_rows, CacheMode mode);

  /// Resolves the requested mode against the cost model: a cached-row read
  /// costs a d-wide HBM gather; the same row uncached costs a sendv message
  /// share over the interconnect. Keeps the cache only when the hit price
  /// beats the miss price, and clamps capacity_rows so the buffer fits in
  /// `available_bytes`. kOff/kStatic/kFreq pass through (capacity still
  /// clamped); kAuto resolves to degree-prefilled kFreq when it wins.
  [[nodiscard]] static AutoDecision plan_auto(
      CacheMode requested, std::int64_t capacity_rows, std::int64_t d,
      const comm::Communicator& comm, const sim::DeviceProfile& device,
      std::uint64_t available_bytes);

  /// Pins the highest-scored vertices up to capacity. `vertices[i]` is
  /// scored by `scores[i]` (vertex degree for the static/auto policies);
  /// under kFreq the scores also seed the frequency counters so the LFU
  /// starts from the degree prior instead of cold. No-op when inactive.
  void prefill(std::span<const std::uint32_t> vertices,
               std::span<const std::int64_t> scores);

  /// One lookup batch, split into hits and misses. Under kFreq every
  /// requested vertex's frequency counter is incremented. `vertices` must
  /// be ascending and duplicate-free (a sampled layer's remote slice);
  /// miss_vertices preserves that order.
  struct Partition {
    std::vector<std::uint32_t> hit_vertices;
    /// Cache slot of hit_vertices[i] (row index into buffer()).
    std::vector<std::int64_t> hit_slots;
    std::vector<std::uint32_t> miss_vertices;
  };
  [[nodiscard]] Partition lookup(std::span<const std::uint32_t> vertices);

  /// Frequency-aware admission of this round's missed rows (kFreq only;
  /// returns empty otherwise): fills free slots with the highest-frequency
  /// misses, then displaces pinned rows whose frequency is strictly lower.
  /// Returns the (vertex, slot) placements so the caller can enqueue the
  /// row copies; bookkeeping (inserts/evictions counters, slot tables) is
  /// updated immediately.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::int64_t>> admit(
      std::span<const std::uint32_t> missed);

  /// A surviving row whose backing slot changed during invalidate():
  /// the caller must copy row from_slot -> to_slot in buffer().
  struct Relocation {
    std::uint32_t vertex = 0;
    std::int64_t from_slot = 0;
    std::int64_t to_slot = 0;
  };

  /// Drops any pinned rows among `vertices` (a simulated graph-update's
  /// touched set): their cached contents are stale, so subsequent lookups
  /// miss and re-fetch. Slots stay densely packed — the last pinned row
  /// moves into each vacated slot, and the returned relocations tell the
  /// caller which buffer rows to move. `dropped` (optional) receives the
  /// number of rows evicted; frequency counters are kept so hot rows are
  /// re-admitted quickly.
  [[nodiscard]] std::vector<Relocation> invalidate(
      std::span<const std::uint32_t> vertices, std::size_t* dropped = nullptr);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] bool enabled() const { return capacity_rows_ > 0; }
  [[nodiscard]] std::int64_t capacity_rows() const { return capacity_rows_; }
  [[nodiscard]] std::int64_t occupancy() const {
    return static_cast<std::int64_t>(slot_vertex_.size());
  }
  /// slot -> pinned vertex (so callers can fill the backing rows).
  [[nodiscard]] std::span<const std::uint32_t> pinned() const {
    return slot_vertex_;
  }
  [[nodiscard]] std::int64_t row_width() const { return d_; }
  /// Device bytes pinned by the cache (0 when inactive).
  [[nodiscard]] std::uint64_t bytes() const { return buffer_.bytes(); }
  [[nodiscard]] sim::DeviceBuffer& buffer() { return buffer_.buffer(); }
  /// The lease itself (ready() events, recycling) for pooled setups.
  [[nodiscard]] mem::PooledBuffer& lease() { return buffer_; }

 private:
  CacheMode mode_ = CacheMode::kOff;
  std::int64_t d_ = 0;
  std::int64_t capacity_rows_ = 0;
  mem::PooledBuffer buffer_;
  Stats stats_;
  /// vertex -> cache slot of the pinned rows.
  std::unordered_map<std::uint32_t, std::int64_t> slot_of_;
  /// slot -> vertex (defines occupancy; slots are filled densely).
  std::vector<std::uint32_t> slot_vertex_;
  /// kFreq: lookup counts per vertex (seeded by prefill scores).
  std::unordered_map<std::uint32_t, std::uint64_t> freq_;
};

}  // namespace mggcn::core
