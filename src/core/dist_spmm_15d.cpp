#include "core/dist_spmm_15d.hpp"

#include <algorithm>
#include <utility>

#include "dense/matrix.hpp"
#include "sim/trace.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

namespace {

sim::KernelCost scaled_cost(sim::KernelCost cost, const DistIo& io) {
  cost.stream_bytes *= io.traffic_factor;
  cost.gather_bytes *= io.traffic_factor;
  cost.launches = static_cast<int>(cost.launches * io.launch_multiplier + 0.5);
  return cost;
}

/// Zero-duration fence on `stream`: its event marks "everything enqueued on
/// this stream so far — plus `wait`, when given — is done". Used to order a
/// collective's write into a buffer after that device's prior
/// compute-stream readers of it, and to re-anchor a comm-stream completion
/// onto the compute stream (the DistExecutor done[] contract).
sim::Event stream_fence(sim::Stream& stream, sim::Event wait = {}) {
  sim::TaskDesc task;
  task.label = "fence";
  task.kind = sim::TaskKind::kOther;
  task.cost = sim::KernelCost{};
  task.cost.launches = 0;
  if (wait.valid()) task.waits.push_back(wait);
  return stream.enqueue(std::move(task));
}

}  // namespace

DistSpmm15D::DistSpmm15D(sim::Machine& machine, const sparse::Csr& op)
    : machine_(machine) {
  const int p = machine_.num_devices();
  MGGCN_CHECK_MSG(p >= 4 && p % kReplication == 0,
                  "1.5D (c=2) needs an even device count >= 4");
  groups_ = p / kReplication;
  MGGCN_CHECK_MSG(op.rows() == op.cols(), "operator must be square");

  partition_ = PartitionVector::uniform(op.rows(), groups_);
  const TileGrid grid = make_tile_grid(op, partition_);

  // Distribute tile A^{j,s} to rank (s mod c)*G + j; each rank keeps its
  // tiles in round order.
  tiles_.resize(static_cast<std::size_t>(p));
  for (int j = 0; j < groups_; ++j) {
    for (int s = 0; s < groups_; ++s) {
      const int g = s % kReplication;
      const int rank = g * groups_ + j;
      tiles_[static_cast<std::size_t>(rank)].push_back(grid.tile(j, s));
    }
  }

  const comm::Topology topology(machine_.profile().interconnect);
  for (int g = 0; g < kReplication; ++g) {
    std::vector<sim::Device*> devices;
    for (int j = 0; j < groups_; ++j) {
      devices.push_back(&machine_.device(g * groups_ + j));
    }
    group_comms_.push_back(std::make_unique<comm::Communicator>(
        std::move(devices), topology));
  }
  for (int j = 0; j < groups_; ++j) {
    std::vector<sim::Device*> pair = {&machine_.device(j),
                                      &machine_.device(groups_ + j)};
    pair_comms_.push_back(
        std::make_unique<comm::Communicator>(std::move(pair), topology));
  }
}

void DistSpmm15D::account_memory() {
  MGGCN_CHECK_MSG(!memory_accounted_, "memory already accounted");
  for (int r = 0; r < machine_.num_devices(); ++r) {
    std::uint64_t bytes = 0;
    for (const auto& tile : tiles_[static_cast<std::size_t>(r)]) {
      bytes += tile.footprint_bytes();
    }
    machine_.device(r).reserve_memory(bytes, "1.5D adjacency tiles");
  }
  memory_accounted_ = true;
}

DistSpmm15D::~DistSpmm15D() {
  if (!memory_accounted_) return;
  for (int r = 0; r < machine_.num_devices(); ++r) {
    std::uint64_t bytes = 0;
    for (const auto& tile : tiles_[static_cast<std::size_t>(r)]) {
      bytes += tile.footprint_bytes();
    }
    machine_.device(r).release_memory(bytes);
  }
}

DistSpmm15D::Result DistSpmm15D::run(const Io& io) {
  const int p = machine_.num_devices();
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np &&
              io.bc1.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);

  const int rounds = groups_ / kReplication + (groups_ % kReplication != 0);
  std::vector<sim::Event> last_spmm(np);

  // Volume accounting at enqueue time (main thread), mirroring DistSpmm:
  // every group broadcast and the final pair allreduces are dense-path
  // stages, so the Planner's decisions are auditable in the same trace
  // fields as the 1D exchanges.
  sim::CommVolume volume;
  const int dpn = machine_.profile().interconnect.devices_per_node;
  auto node_of = [dpn](int rank) { return dpn > 0 ? rank / dpn : 0; };

  for (int t = 0; t < rounds; ++t) {
    for (int g = 0; g < kReplication; ++g) {
      const int s = t * kReplication + g;
      if (s >= groups_) continue;

      // Broadcast H^s within group g (root: the rank holding block s).
      std::vector<comm::RankPart> parts(static_cast<std::size_t>(groups_));
      for (int j = 0; j < groups_; ++j) {
        const int rank = g * groups_ + j;
        const auto rr = static_cast<std::size_t>(rank);
        auto& part = parts[static_cast<std::size_t>(j)];
        part.buffer = j == s ? io.input[rr] : io.bc1[rr];
        if (j == s) {
          if (!io.input_ready.empty() && io.input_ready[rr].valid()) {
            part.waits.push_back(io.input_ready[rr]);
          }
        } else if (last_spmm[rr].valid()) {
          // Single broadcast buffer per rank: wait for its last reader.
          part.waits.push_back(last_spmm[rr]);
        }
      }
      const auto count =
          static_cast<std::size_t>(partition_.size(s) * io.d);
      const std::uint64_t block_bytes =
          static_cast<std::uint64_t>(count) * sizeof(float);
      volume.wire_bytes +=
          static_cast<std::uint64_t>(groups_ - 1) * block_bytes;
      const int root_rank = g * groups_ + s;
      for (int j = 0; j < groups_; ++j) {
        const int rank = g * groups_ + j;
        if (rank != root_rank && node_of(rank) != node_of(root_rank)) {
          volume.wire_bytes_inter += block_bytes;
        }
      }
      volume.dense_bytes +=
          static_cast<std::uint64_t>(groups_ - 1) * block_bytes;
      ++volume.dense_stages;
      std::vector<sim::Event> bcast =
          group_comms_[static_cast<std::size_t>(g)]->broadcast(
              std::move(parts), count, s, comm::StreamChoice::kComm, s);

      // Local partial accumulation on every rank of group g.
      for (int j = 0; j < groups_; ++j) {
        const int rank = g * groups_ + j;
        const auto rr = static_cast<std::size_t>(rank);
        const sparse::Csr& tile =
            tiles_[rr][static_cast<std::size_t>(t)];

        sim::TaskDesc task;
        task.label = "spmm_15d";
        task.kind = sim::TaskKind::kSpMM;
        task.stage = s;
        task.cost = scaled_cost(sparse::spmm_cost(tile, io.d), io);
        task.waits.push_back(bcast[static_cast<std::size_t>(j)]);

        sim::DeviceBuffer* src = j == s ? io.input[rr] : io.bc1[rr];
        task.reads.push_back(src->access());
        // Later rounds accumulate (beta = 1), which also reads the output.
        if (t > 0) task.reads.push_back(io.output[rr]->access());
        task.writes.push_back(io.output[rr]->access());
        float* in = src->data();
        float* out = io.output[rr]->data();
        const std::int64_t d = io.d;
        const float beta = t == 0 ? 0.0f : 1.0f;
        task.body = [&tile, in, out, d, beta] {
          sparse::spmm(tile, dense::ConstMatrixView{in, tile.cols(), d},
                       dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
        };
        last_spmm[rr] =
            machine_.device(rank).compute_stream().enqueue(std::move(task));
      }
    }
  }

  // Cross-group reduction of the partial C^j blocks (the 2-link step on
  // DGX-1 that §5.1's analysis hinges on).
  Result result;
  result.done.resize(np);
  for (int j = 0; j < groups_; ++j) {
    std::vector<comm::RankPart> parts(2);
    for (int g = 0; g < kReplication; ++g) {
      const auto rr = static_cast<std::size_t>(g * groups_ + j);
      parts[static_cast<std::size_t>(g)].buffer = io.output[rr];
      if (last_spmm[rr].valid()) {
        parts[static_cast<std::size_t>(g)].waits.push_back(last_spmm[rr]);
      }
    }
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(partition_.size(j) * io.d) * sizeof(float);
    // Ring allreduce between the two replicas moves 2*(c-1)/c = 1x the
    // block per pair.
    volume.wire_bytes += block_bytes;
    if (node_of(j) != node_of(groups_ + j)) {
      volume.wire_bytes_inter += block_bytes;
    }
    volume.dense_bytes += block_bytes;
    ++volume.dense_stages;
    std::vector<sim::Event> reduced =
        pair_comms_[static_cast<std::size_t>(j)]->allreduce_sum(
            std::move(parts),
            static_cast<std::size_t>(partition_.size(j) * io.d));
    for (int g = 0; g < kReplication; ++g) {
      result.done[static_cast<std::size_t>(g * groups_ + j)] =
          reduced[static_cast<std::size_t>(g)];
    }
  }
  machine_.trace().record_comm_volume(volume);
  // The replicated inputs are read by their stage's broadcast and SpMMs,
  // all of which the pair reduction is ordered behind.
  result.input_released = result.done;
  return result;
}

// ---------------------------------------------------------------------------
// DistSpmm15DChained
// ---------------------------------------------------------------------------

DistSpmm15DChained::DistSpmm15DChained(sim::Machine& machine,
                                       const TileGrid& grid,
                                       comm::CommOptions options)
    : machine_(machine), grid_(grid) {
  const int p = grid_.parts();
  MGGCN_CHECK_MSG(feasible(p), "chained 1.5D needs an even device count >= 4");
  MGGCN_CHECK_MSG(p == machine_.num_devices(),
                  "tile grid parts must equal device count");
  groups_ = p / 2;

  const sim::InterconnectProfile& inter = machine_.profile().interconnect;
  const comm::Topology topology(inter);
  for (int g = 0; g < 2; ++g) {
    std::vector<sim::Device*> devices;
    for (int j = 0; j < groups_; ++j) {
      devices.push_back(&machine_.device(g * groups_ + j));
    }
    group_comms_.push_back(std::make_unique<comm::Communicator>(
        std::move(devices), topology, options));
  }
  for (int j = 0; j < groups_; ++j) {
    std::vector<sim::Device*> pair = {&machine_.device(j),
                                      &machine_.device(groups_ + j)};
    // Topology::group_bandwidth only applies the inter-node clamp to groups
    // larger than a node, so a 2-rank pair that straddles nodes would be
    // priced as intra-node. Collapsing devices_per_node to 1 for such pairs
    // makes every collective on them pay the NIC, as the hardware would.
    sim::InterconnectProfile pair_profile = inter;
    if (inter.devices_per_node > 0 &&
        j / inter.devices_per_node !=
            (groups_ + j) / inter.devices_per_node) {
      pair_profile.devices_per_node = 1;
    }
    pair_comms_.push_back(std::make_unique<comm::Communicator>(
        std::move(pair), comm::Topology(pair_profile), options));
  }
  partial_.resize(static_cast<std::size_t>(p));
  partial_last_use_.resize(static_cast<std::size_t>(p));
}

std::uint64_t DistSpmm15DChained::partner_tile_bytes(int rank) const {
  const int partner = pair_of(rank);
  const int lo = rank < groups_ ? 0 : groups_;
  std::uint64_t bytes = 0;
  for (int s = lo; s < lo + groups_; ++s) {
    bytes += grid_.tile(partner, s).footprint_bytes();
  }
  return bytes;
}

std::uint64_t DistSpmm15DChained::extra_bytes(int rank,
                                              std::int64_t d) const {
  std::uint64_t bytes = memory_accounted_ ? 0 : partner_tile_bytes(rank);
  if (d > partial_width_) {
    // Net growth: the realloc releases the old accumulator first.
    bytes += static_cast<std::uint64_t>(grid_.partition.size(pair_of(rank)) *
                                        (d - partial_width_)) *
             sizeof(float);
  }
  return bytes;
}

void DistSpmm15DChained::account_memory() {
  MGGCN_CHECK_MSG(!memory_accounted_, "memory already accounted");
  for (int r = 0; r < grid_.parts(); ++r) {
    machine_.device(r).reserve_memory(partner_tile_bytes(r),
                                      "1.5D partner tiles");
  }
  memory_accounted_ = true;
}

DistSpmm15DChained::~DistSpmm15DChained() {
  if (!memory_accounted_) return;
  for (int r = 0; r < grid_.parts(); ++r) {
    machine_.device(r).release_memory(partner_tile_bytes(r));
  }
}

void DistSpmm15DChained::ensure_partials(std::int64_t d) {
  if (d <= partial_width_) return;
  // Growing reallocates the accumulators; drain in-flight products first so
  // no enqueued task still references the old storage.
  machine_.synchronize();
  for (int r = 0; r < grid_.parts(); ++r) {
    const auto rr = static_cast<std::size_t>(r);
    partial_[rr].reset();
    partial_[rr] = std::make_unique<sim::DeviceBuffer>(
        machine_.device(r),
        static_cast<std::size_t>(grid_.partition.size(pair_of(r)) * d),
        "15d partial");
    partial_last_use_[rr] = sim::Event{};
  }
  partial_width_ = d;
}

DistResult DistSpmm15DChained::run(const DistIo& io) {
  const int p = grid_.parts();
  const int G = groups_;
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np &&
              io.bc1.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);
  MGGCN_CHECK_MSG(io.slot_readers != nullptr && io.slot_readers->size() == np,
                  "slot_readers hazard state is required for multi-device");
  std::vector<std::array<sim::Event, 2>>& slot_last_reader = *io.slot_readers;

  ensure_partials(io.d);

  sim::CommVolume volume;
  const int chain_dpn = machine_.profile().interconnect.devices_per_node;
  auto chain_node_of = [chain_dpn](int rank) {
    return chain_dpn > 0 ? rank / chain_dpn : 0;
  };
  auto add_dense = [&volume](std::uint64_t bytes, int receivers,
                             int inter_receivers) {
    const std::uint64_t moved = bytes * static_cast<std::uint64_t>(receivers);
    volume.wire_bytes += moved;
    volume.wire_bytes_inter +=
        bytes * static_cast<std::uint64_t>(inter_receivers);
    volume.dense_bytes += moved;
    ++volume.dense_stages;
  };

  DistResult result;
  result.done.resize(np);
  result.input_released.resize(np);

  // Runs both SpMMs of rank `rank` for stage `s`: its own row's tile into
  // `own_out`, then its pair row's tile into `pair_out`. Returns the second
  // event (same stream, so it covers the first).
  auto enqueue_stage = [&](int rank, int s, bool first_stage_of_rank,
                           sim::Event bcast_event,
                           const sim::Event& own_extra_wait,
                           const sim::Event& pair_extra_wait) -> sim::Event {
    const auto rr = static_cast<std::size_t>(rank);
    sim::DeviceBuffer* src = rank == s ? io.input[rr] : io.bc1[rr];
    const int pair = pair_of(rank);
    sim::Event last;
    for (int half = 0; half < 2; ++half) {
      const int row = half == 0 ? rank : pair;
      sim::DeviceBuffer* out =
          half == 0 ? io.output[rr] : partial_[rr].get();
      const sparse::Csr& tile = grid_.tile(row, s);
      const bool accumulate = !first_stage_of_rank || rank >= G;

      sim::TaskDesc task;
      task.label = "spmm_15dc";
      task.kind = sim::TaskKind::kSpMM;
      task.stage = s;
      task.cost = scaled_cost(sparse::spmm_cost(tile, io.d), io);
      if (bcast_event.valid()) task.waits.push_back(bcast_event);
      const sim::Event& extra = half == 0 ? own_extra_wait : pair_extra_wait;
      if (extra.valid()) task.waits.push_back(extra);
      task.reads.push_back(src->access());
      if (accumulate) task.reads.push_back(out->access());
      task.writes.push_back(out->access());

      float* in = src->data();
      float* outp = out->data();
      const std::int64_t d = io.d;
      const float beta = accumulate ? 1.0f : 0.0f;
      task.body = [&tile, in, outp, d, beta] {
        sparse::spmm(tile, dense::ConstMatrixView{in, tile.cols(), d},
                     dense::MatrixView{outp, tile.rows(), d}, 1.0f, beta);
      };
      last = machine_.device(rank).compute_stream().enqueue(std::move(task));
    }
    if (rank != s) slot_last_reader[rr][0] = last;
    else result.input_released[rr] = last;
    return last;
  };

  // One group's staged half of the product (`lo` = its first stage/rank).
  auto run_phase = [&](int lo, std::vector<sim::Event>& last_of_rank,
                       const std::vector<sim::Event>& own_seed,
                       const std::vector<sim::Event>& pair_seed) {
    for (int s = lo; s < lo + G; ++s) {
      std::vector<comm::RankPart> parts(static_cast<std::size_t>(G));
      for (int j = 0; j < G; ++j) {
        const int rank = lo + j;
        const auto rr = static_cast<std::size_t>(rank);
        auto& part = parts[static_cast<std::size_t>(j)];
        part.buffer = rank == s ? io.input[rr] : io.bc1[rr];
        if (rank == s) {
          if (!io.input_ready.empty() && io.input_ready[rr].valid()) {
            part.waits.push_back(io.input_ready[rr]);
          }
        } else if (slot_last_reader[rr][0].valid()) {
          part.waits.push_back(slot_last_reader[rr][0]);
        }
      }
      const auto count =
          static_cast<std::size_t>(grid_.partition.size(s) * io.d);
      int inter_receivers = 0;
      for (int j = 0; j < G; ++j) {
        const int rank = lo + j;
        if (rank != s && chain_node_of(rank) != chain_node_of(s)) {
          ++inter_receivers;
        }
      }
      add_dense(static_cast<std::uint64_t>(count) * sizeof(float), G - 1,
                inter_receivers);
      std::vector<sim::Event> bcast =
          group_comms_[lo == 0 ? 0 : 1]->broadcast(
              std::move(parts), count, s - lo, comm::StreamChoice::kComm, s);
      for (int j = 0; j < G; ++j) {
        const int rank = lo + j;
        const auto rr = static_cast<std::size_t>(rank);
        last_of_rank[rr] = enqueue_stage(
            rank, s, s == lo, bcast[static_cast<std::size_t>(j)],
            s == lo ? own_seed[rr] : sim::Event{},
            s == lo ? pair_seed[rr] : sim::Event{});
      }
    }
  };

  std::vector<sim::Event> last(np);
  std::vector<sim::Event> own_seed(np);
  std::vector<sim::Event> pair_seed(np);
  // Phase 1: each low rank starts its own output (beta = 0; same-stream
  // ordering covers earlier readers of it) and its pair's prefix in
  // partial_ (beta = 0; must be ordered after the previous product's last
  // use of that private buffer).
  for (int j = 0; j < G; ++j) {
    pair_seed[static_cast<std::size_t>(j)] =
        partial_last_use_[static_cast<std::size_t>(j)];
  }
  run_phase(0, last, own_seed, pair_seed);

  // Handoff: pair (j, G+j) swaps the two stage-prefixes. T1 seeds the high
  // rank's output with C_{G+j}'s prefix; T2 seeds its partial_ with C_j's.
  std::vector<std::vector<sim::Event>> t1(static_cast<std::size_t>(G));
  std::vector<std::vector<sim::Event>> t2(static_cast<std::size_t>(G));
  for (int j = 0; j < G; ++j) {
    const auto lo = static_cast<std::size_t>(j);
    const auto hi = static_cast<std::size_t>(G + j);
    comm::Communicator& pair = *pair_comms_[lo];
    {
      std::vector<comm::RankPart> parts(2);
      parts[0].buffer = partial_[lo].get();
      parts[0].waits.push_back(last[lo]);
      parts[1].buffer = io.output[hi];
      // The collective writes the high rank's output from its comm stream;
      // fence it behind that device's prior compute-stream readers.
      parts[1].waits.push_back(
          stream_fence(machine_.device(G + j).compute_stream()));
      const auto count =
          static_cast<std::size_t>(grid_.partition.size(G + j) * io.d);
      add_dense(static_cast<std::uint64_t>(count) * sizeof(float), 1,
                chain_node_of(j) != chain_node_of(G + j) ? 1 : 0);
      t1[lo] = pair.broadcast(std::move(parts), count, 0,
                              comm::StreamChoice::kComm);
    }
    {
      std::vector<comm::RankPart> parts(2);
      parts[0].buffer = io.output[lo];
      parts[0].waits.push_back(last[lo]);
      parts[1].buffer = partial_[hi].get();
      if (partial_last_use_[hi].valid()) {
        parts[1].waits.push_back(partial_last_use_[hi]);
      }
      const auto count =
          static_cast<std::size_t>(grid_.partition.size(j) * io.d);
      add_dense(static_cast<std::uint64_t>(count) * sizeof(float), 1,
                chain_node_of(j) != chain_node_of(G + j) ? 1 : 0);
      t2[lo] = pair.broadcast(std::move(parts), count, 0,
                              comm::StreamChoice::kComm);
    }
    partial_last_use_[lo] = t1[lo][0];
  }

  // Phase 2: the high ranks continue both accumulations in stage order.
  for (int j = 0; j < G; ++j) {
    own_seed[static_cast<std::size_t>(G + j)] = t1[static_cast<std::size_t>(j)][1];
    pair_seed[static_cast<std::size_t>(G + j)] = t2[static_cast<std::size_t>(j)][1];
  }
  run_phase(G, last, own_seed, pair_seed);

  // Return: the finished C_j travels back down to rank j's output. Rank
  // j's comm stream already ordered this write after T2's read of the same
  // buffer.
  for (int j = 0; j < G; ++j) {
    const auto lo = static_cast<std::size_t>(j);
    const auto hi = static_cast<std::size_t>(G + j);
    std::vector<comm::RankPart> parts(2);
    parts[0].buffer = io.output[lo];
    parts[1].buffer = partial_[hi].get();
    parts[1].waits.push_back(last[hi]);
    const auto count =
        static_cast<std::size_t>(grid_.partition.size(j) * io.d);
    add_dense(static_cast<std::uint64_t>(count) * sizeof(float), 1,
              chain_node_of(j) != chain_node_of(G + j) ? 1 : 0);
    std::vector<sim::Event> t3 = pair_comms_[lo]->broadcast(
        std::move(parts), count, 1, comm::StreamChoice::kComm);
    // T3 lands C_j from the comm stream, but the trainer's downstream
    // consumers (GeMM/ReLU/wgrad) rely on compute-stream order for the
    // product's output — the 1D executor writes it there. Re-anchor the
    // completion onto rank j's compute stream so that contract holds.
    result.done[lo] =
        stream_fence(machine_.device(j).compute_stream(), t3[0]);
    result.done[hi] = last[hi];
    partial_last_use_[hi] = t3[1];
  }
  machine_.trace().record_comm_volume(volume);
  return result;
}

}  // namespace mggcn::core
