#include "core/dist_spmm_15d.hpp"

#include "dense/matrix.hpp"
#include "sparse/spmm.hpp"
#include "util/error.hpp"

namespace mggcn::core {

DistSpmm15D::DistSpmm15D(sim::Machine& machine, const sparse::Csr& op)
    : machine_(machine) {
  const int p = machine_.num_devices();
  MGGCN_CHECK_MSG(p >= 4 && p % kReplication == 0,
                  "1.5D (c=2) needs an even device count >= 4");
  groups_ = p / kReplication;
  MGGCN_CHECK_MSG(op.rows() == op.cols(), "operator must be square");

  partition_ = PartitionVector::uniform(op.rows(), groups_);
  const TileGrid grid = make_tile_grid(op, partition_);

  // Distribute tile A^{j,s} to rank (s mod c)*G + j; each rank keeps its
  // tiles in round order.
  tiles_.resize(static_cast<std::size_t>(p));
  for (int j = 0; j < groups_; ++j) {
    for (int s = 0; s < groups_; ++s) {
      const int g = s % kReplication;
      const int rank = g * groups_ + j;
      tiles_[static_cast<std::size_t>(rank)].push_back(grid.tile(j, s));
    }
  }

  const comm::Topology topology(machine_.profile().interconnect);
  for (int g = 0; g < kReplication; ++g) {
    std::vector<sim::Device*> devices;
    for (int j = 0; j < groups_; ++j) {
      devices.push_back(&machine_.device(g * groups_ + j));
    }
    group_comms_.push_back(std::make_unique<comm::Communicator>(
        std::move(devices), topology));
  }
  for (int j = 0; j < groups_; ++j) {
    std::vector<sim::Device*> pair = {&machine_.device(j),
                                      &machine_.device(groups_ + j)};
    pair_comms_.push_back(
        std::make_unique<comm::Communicator>(std::move(pair), topology));
  }
}

void DistSpmm15D::account_memory() {
  MGGCN_CHECK_MSG(!memory_accounted_, "memory already accounted");
  for (int r = 0; r < machine_.num_devices(); ++r) {
    std::uint64_t bytes = 0;
    for (const auto& tile : tiles_[static_cast<std::size_t>(r)]) {
      bytes += tile.footprint_bytes();
    }
    machine_.device(r).reserve_memory(bytes, "1.5D adjacency tiles");
  }
  memory_accounted_ = true;
}

DistSpmm15D::~DistSpmm15D() {
  if (!memory_accounted_) return;
  for (int r = 0; r < machine_.num_devices(); ++r) {
    std::uint64_t bytes = 0;
    for (const auto& tile : tiles_[static_cast<std::size_t>(r)]) {
      bytes += tile.footprint_bytes();
    }
    machine_.device(r).release_memory(bytes);
  }
}

DistSpmm15D::Result DistSpmm15D::run(const Io& io) {
  const int p = machine_.num_devices();
  const auto np = static_cast<std::size_t>(p);
  MGGCN_CHECK(io.input.size() == np && io.output.size() == np &&
              io.bc.size() == np);
  MGGCN_CHECK(io.input_ready.empty() || io.input_ready.size() == np);

  const int rounds = groups_ / kReplication + (groups_ % kReplication != 0);
  std::vector<sim::Event> last_spmm(np);

  for (int t = 0; t < rounds; ++t) {
    for (int g = 0; g < kReplication; ++g) {
      const int s = t * kReplication + g;
      if (s >= groups_) continue;

      // Broadcast H^s within group g (root: the rank holding block s).
      std::vector<comm::RankPart> parts(static_cast<std::size_t>(groups_));
      for (int j = 0; j < groups_; ++j) {
        const int rank = g * groups_ + j;
        const auto rr = static_cast<std::size_t>(rank);
        auto& part = parts[static_cast<std::size_t>(j)];
        part.buffer = j == s ? io.input[rr] : io.bc[rr];
        if (j == s) {
          if (!io.input_ready.empty() && io.input_ready[rr].valid()) {
            part.waits.push_back(io.input_ready[rr]);
          }
        } else if (last_spmm[rr].valid()) {
          // Single broadcast buffer per rank: wait for its last reader.
          part.waits.push_back(last_spmm[rr]);
        }
      }
      const auto count =
          static_cast<std::size_t>(partition_.size(s) * io.d);
      std::vector<sim::Event> bcast =
          group_comms_[static_cast<std::size_t>(g)]->broadcast(
              std::move(parts), count, s, comm::StreamChoice::kComm, s);

      // Local partial accumulation on every rank of group g.
      for (int j = 0; j < groups_; ++j) {
        const int rank = g * groups_ + j;
        const auto rr = static_cast<std::size_t>(rank);
        const sparse::Csr& tile =
            tiles_[rr][static_cast<std::size_t>(t)];

        sim::TaskDesc task;
        task.label = "spmm_15d";
        task.kind = sim::TaskKind::kSpMM;
        task.stage = s;
        task.cost = sparse::spmm_cost(tile, io.d);
        task.waits.push_back(bcast[static_cast<std::size_t>(j)]);

        sim::DeviceBuffer* src = j == s ? io.input[rr] : io.bc[rr];
        task.reads.push_back(src->access());
        // Later rounds accumulate (beta = 1), which also reads the output.
        if (t > 0) task.reads.push_back(io.output[rr]->access());
        task.writes.push_back(io.output[rr]->access());
        float* in = src->data();
        float* out = io.output[rr]->data();
        const std::int64_t d = io.d;
        const float beta = t == 0 ? 0.0f : 1.0f;
        task.body = [&tile, in, out, d, beta] {
          sparse::spmm(tile, dense::ConstMatrixView{in, tile.cols(), d},
                       dense::MatrixView{out, tile.rows(), d}, 1.0f, beta);
        };
        last_spmm[rr] =
            machine_.device(rank).compute_stream().enqueue(std::move(task));
      }
    }
  }

  // Cross-group reduction of the partial C^j blocks (the 2-link step on
  // DGX-1 that §5.1's analysis hinges on).
  Result result;
  result.done.resize(np);
  for (int j = 0; j < groups_; ++j) {
    std::vector<comm::RankPart> parts(2);
    for (int g = 0; g < kReplication; ++g) {
      const auto rr = static_cast<std::size_t>(g * groups_ + j);
      parts[static_cast<std::size_t>(g)].buffer = io.output[rr];
      if (last_spmm[rr].valid()) {
        parts[static_cast<std::size_t>(g)].waits.push_back(last_spmm[rr]);
      }
    }
    std::vector<sim::Event> reduced =
        pair_comms_[static_cast<std::size_t>(j)]->allreduce_sum(
            std::move(parts),
            static_cast<std::size_t>(partition_.size(j) * io.d));
    for (int g = 0; g < kReplication; ++g) {
      result.done[static_cast<std::size_t>(g * groups_ + j)] =
          reduced[static_cast<std::size_t>(g)];
    }
  }
  return result;
}

}  // namespace mggcn::core
