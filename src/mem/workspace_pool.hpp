// Stream-ordered per-device workspace pool with cross-component reuse.
//
// MG-GCN's §4.2 contribution is buffer reuse *within* the trainer (the L+3
// scheme); this pool generalizes it *across* components: the full-batch
// trainer, the sampled pipeline's round scratch, the feature caches, and
// the inference server's serving buffers all draw from one bounded
// per-device budget (the samgraph workspace_pool / LBANN backend-allocator
// design, with CaPGNN's joint-budget pricing for the caches). Blocks are
// recycled instead of re-reserved, so footprint drops wherever lifetimes do
// not overlap — and the ledger peak never exceeds the static scheme's,
// because slabs are sized exactly to the requests and wholly-free slabs are
// returned to the device before the pool ever grows (trim-before-grow).
//
// Design:
//
//   - Allocation is a caching best-fit over size-binned free lists; blocks
//     split when a smaller request lands on a larger free block and
//     coalesce with free neighbors on release, all inside exact-size slabs
//     (one sim::DeviceBuffer reservation each).
//   - All pool operations run on the enqueueing host thread (like every
//     existing buffer decision), so placement is deterministic and
//     independent of worker scheduling; the pool never consults
//     Event::is_complete().
//   - Stream-ordered reuse: a tenant records its last consumer's completion
//     event when recycling (PooledBuffer::recycle(event)); the pool joins
//     that event before handing the block's *data* to a new tenant
//     (host-wait + re-zero, so a recycled block starts life bit-identical
//     to a fresh DeviceBuffer) and before trimming the slab. The handle
//     also exposes the events as ready(): the next tenant must put them in
//     its first task's TaskDesc::waits. The block's hazard identity
//     (BufferAccess id) is stable across reuse, so a consumer that skips
//     the wait is flagged by MGGCN_HAZARD_CHECK — the recycling itself is
//     audited, under schedule fuzzing like any other dependency.
//   - Loud OOM: exceeding the per-device budget (MGGCN_POOL_BUDGET, default
//     the device capacity) throws OutOfMemoryError carrying the full pool
//     ledger, after trimming.
//
// Ownership contract: a PooledBuffer is a lease. Its storage stays readable
// after recycle() until the recorded last-use event completes (consumers
// enqueued before the recycle hold raw pointers into the slab), but the
// handle itself must not be used to declare new work. Recycling without a
// recorded event is only safe when the owning engine has synchronized the
// machine first (engine destructors do). A WorkspacePool must outlive its
// leases and die before its Device.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/pool_mode.hpp"
#include "sim/device.hpp"

namespace mggcn::sim {
class Machine;
}

namespace mggcn::mem {

class WorkspacePool;

/// Snapshot of one pool's ledger and lifetime counters.
struct PoolStats {
  std::uint64_t reserved_bytes = 0;  ///< device bytes held by slabs now
  std::uint64_t in_use_bytes = 0;    ///< bytes inside live leases now
  std::uint64_t free_bytes = 0;      ///< reserved - in_use (retained blocks)
  std::uint64_t reserved_peak_bytes = 0;
  std::uint64_t in_use_peak_bytes = 0;
  std::uint64_t reuse_hits = 0;   ///< acquires served from the free lists
  std::uint64_t slab_allocs = 0;  ///< fresh device reservations
  std::uint64_t splits = 0;
  std::uint64_t coalesces = 0;
  std::uint64_t trims = 0;          ///< slabs returned before a grow
  std::uint64_t live_buffers = 0;   ///< outstanding leases
  double fragmentation_peak = 0.0;  ///< high-water unusable-free fraction
};

/// RAII lease on device memory. Two flavours behind one type so engines
/// migrate with a single code path:
///
///   - pooled (from WorkspacePool::acquire): a view into a pool slab; the
///     destructor or recycle() returns the block for stream-ordered reuse;
///   - owning (from the Device ctor / acquire_or_alloc with a null pool):
///     a plain DeviceBuffer with exactly the pre-pool allocation behaviour
///     — the MGGCN_POOL=off parity axis. recycle() is a no-op here, so the
///     static path also keeps its original buffer *lifetimes*.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  /// Owning fallback: reserves `elements` floats directly on `device`.
  PooledBuffer(sim::Device& device, std::size_t elements, std::string name);
  ~PooledBuffer();

  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  /// The DeviceBuffer face of the lease (a non-owning view for pooled
  /// blocks) — what DistSpmm Io lists, comm::RankPart and task bodies take.
  [[nodiscard]] sim::DeviceBuffer& buffer() { return view_; }
  [[nodiscard]] const sim::DeviceBuffer& buffer() const { return view_; }

  [[nodiscard]] std::size_t size() const { return view_.size(); }
  [[nodiscard]] std::uint64_t bytes() const { return view_.bytes(); }
  [[nodiscard]] bool empty() const { return view_.empty(); }
  [[nodiscard]] const std::string& name() const { return view_.name(); }
  [[nodiscard]] float* data() { return view_.data(); }
  [[nodiscard]] const float* data() const { return view_.data(); }
  [[nodiscard]] std::span<float> span() { return view_.span(); }
  [[nodiscard]] std::span<const float> span() const { return view_.span(); }
  /// Declared-access record; pooled leases carry the block's stable
  /// identity across reuse (that stability is what lets the hazard checker
  /// audit recycling).
  [[nodiscard]] sim::BufferAccess access() const { return view_.access(); }

  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  /// Completion events of the block's previous tenants (empty for fresh
  /// blocks and owning leases). The first task touching this lease MUST
  /// carry them in TaskDesc::waits — the pool already joined them for data
  /// safety, but only the declared wait gives the hazard checker the
  /// happens-before edge that proves the recycling ordered.
  [[nodiscard]] const std::vector<sim::Event>& ready() const { return ready_; }

  /// Records the completion event of this lease's last consumer; joined by
  /// the pool before the block's data is re-issued or its slab trimmed.
  void record_last_use(sim::Event event) { last_use_ = std::move(event); }

  /// Returns a pooled block to its pool now (early release — the refined
  /// lifetime the pool exists for); a no-op for owning leases so
  /// MGGCN_POOL=off keeps today's lifetimes bit for bit. The overload
  /// records `last_use` first.
  void recycle();
  void recycle(sim::Event last_use);

 private:
  friend class WorkspacePool;

  void reset();

  WorkspacePool* pool_ = nullptr;
  void* block_ = nullptr;  ///< WorkspacePool::Block
  sim::DeviceBuffer view_;
  std::vector<sim::Event> ready_;
  sim::Event last_use_;
};

/// Per-device stream-ordered caching allocator. Not thread-safe by design:
/// acquire/recycle on the enqueueing thread only, like every other
/// allocation decision in the simulator (this is what keeps placement —
/// and therefore the audited schedule — deterministic).
class WorkspacePool {
 public:
  /// `budget_bytes` caps the pool's device reservation; 0 means the
  /// device's full memory capacity.
  explicit WorkspacePool(sim::Device& device, std::uint64_t budget_bytes = 0);
  ~WorkspacePool();

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Leases `elements` floats. Served best-fit from the free lists
  /// (splitting larger blocks), else from a fresh exact-size slab after
  /// trimming wholly-free slabs; throws OutOfMemoryError (with the full
  /// pool ledger in the message) when the budget cannot fit the request.
  /// Zero elements returns an empty lease that reserves nothing.
  [[nodiscard]] PooledBuffer acquire(std::size_t elements, std::string name);

  [[nodiscard]] sim::Device& device() const { return device_; }
  [[nodiscard]] std::uint64_t budget_bytes() const { return budget_bytes_; }
  /// Bytes an acquire could still obtain without exceeding the budget
  /// (free blocks are reusable, so only in-use bytes count against it).
  [[nodiscard]] std::uint64_t available_bytes() const;
  [[nodiscard]] const PoolStats& stats() const { return stats_; }

 private:
  friend class PooledBuffer;

  struct Slab;
  struct Block;

  Block* find_fit(std::size_t elements);
  void bin_insert(Block* block);
  void bin_remove(Block* block);
  Block* split(Block* block, std::size_t elements);
  void release_block(Block* block, sim::Event last_use);
  /// Returns every wholly-free slab to the device ledger (joining pending
  /// events first), so growth never lifts the ledger peak above what the
  /// static scheme would have reserved.
  void trim_free_slabs();
  void note_extremes();
  void publish(const sim::PoolCounters& delta);
  [[nodiscard]] std::string ledger_string() const;

  sim::Device& device_;
  std::uint64_t budget_bytes_ = 0;
  std::uint64_t next_slab_seq_ = 0;
  std::vector<std::unique_ptr<Slab>> slabs_;
  /// free lists binned by bit_width(elements); deterministic best-fit.
  std::vector<std::vector<Block*>> bins_;
  PoolStats stats_;
};

/// The per-device pools of one machine, shared between tenants (trainer,
/// sampled pipeline, inference server) so freed blocks cross component
/// boundaries. Keep the owning Machine alive for the set's lifetime.
class PoolSet {
 public:
  [[nodiscard]] static std::shared_ptr<PoolSet> create(
      sim::Machine& machine, std::uint64_t budget_bytes = pool_budget_bytes());

  [[nodiscard]] WorkspacePool& pool(int rank);
  [[nodiscard]] sim::Machine* machine() const { return machine_; }
  [[nodiscard]] int size() const { return static_cast<int>(pools_.size()); }

 private:
  sim::Machine* machine_ = nullptr;
  std::vector<std::unique_ptr<WorkspacePool>> pools_;
};

/// Resolves an engine's pooling decision against the MGGCN_POOL registry:
/// a shared set built for `machine` wins; otherwise kOn self-creates a
/// private set and kOff/kAuto return null (static allocation). A shared
/// set built for a *different* machine (an elastic rebuild) is ignored —
/// its pools reference dead devices.
[[nodiscard]] std::shared_ptr<PoolSet> resolve_pool(
    std::shared_ptr<PoolSet> shared, sim::Machine& machine);
/// Same, but with the engine's own mode (e.g. TrainConfig::pool_mode)
/// instead of the process-wide registry value.
[[nodiscard]] std::shared_ptr<PoolSet> resolve_pool(
    std::shared_ptr<PoolSet> shared, sim::Machine& machine, PoolMode mode);

/// The engines' one-line migration shim: leases from `pool` when non-null,
/// else allocates an owning DeviceBuffer exactly as the pre-pool code did.
[[nodiscard]] PooledBuffer acquire_or_alloc(WorkspacePool* pool,
                                            sim::Device& device,
                                            std::size_t elements,
                                            std::string name);

/// Appends `lease.ready()` to `waits` — sugar for declaring the reuse edge
/// on the first task that touches a freshly acquired lease.
void append_ready(std::vector<sim::Event>* waits, const PooledBuffer& lease);

}  // namespace mggcn::mem
