#include "mem/workspace_pool.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace mggcn::mem {

namespace {

constexpr std::uint64_t to_bytes(std::size_t elements) {
  return static_cast<std::uint64_t>(elements) * sizeof(float);
}

int bin_of(std::size_t elements) {
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(elements)));
}

}  // namespace

// ---------------------------------------------------------- pool internals --

/// A contiguous region inside a slab. Free blocks sit in the size bins and
/// keep the completion events of the tenants whose data they still hold;
/// live blocks are referenced by exactly one PooledBuffer. `id` is the
/// stable hazard identity: it survives reuse (that is the audit hook) and
/// is refreshed only when a block's extent changes (split/coalesce), since
/// a different extent is a different buffer.
struct WorkspacePool::Block {
  Slab* slab = nullptr;
  std::size_t offset = 0;  ///< elements from the slab base
  std::size_t elements = 0;
  bool free = false;
  std::uint64_t id = 0;
  std::string tenant;  ///< current lease's name (diagnostics / OOM ledger)
  /// Last-use events of previous tenants; joined before the data is
  /// re-issued to a new tenant or the slab is returned to the device.
  std::vector<sim::Event> pending;
  Block* prev = nullptr;  ///< address-ordered within the slab
  Block* next = nullptr;
};

/// One device reservation, carved into blocks. Slabs are sized exactly to
/// the request that created them, so a pool that never reuses anything
/// reserves exactly what the static scheme would have.
struct WorkspacePool::Slab {
  std::uint64_t seq = 0;  ///< creation order; deterministic tie-break
  sim::DeviceBuffer storage;
  std::size_t elements = 0;
  Block* head = nullptr;

  ~Slab() {
    for (Block* b = head; b != nullptr;) {
      Block* next = b->next;
      delete b;
      b = next;
    }
  }
};

// ----------------------------------------------------------- PooledBuffer --

PooledBuffer::PooledBuffer(sim::Device& device, std::size_t elements,
                           std::string name)
    : view_(device, elements, std::move(name)) {}

PooledBuffer::~PooledBuffer() { reset(); }

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      block_(std::exchange(other.block_, nullptr)),
      view_(std::move(other.view_)),
      ready_(std::move(other.ready_)),
      last_use_(std::move(other.last_use_)) {}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = std::exchange(other.pool_, nullptr);
    block_ = std::exchange(other.block_, nullptr);
    view_ = std::move(other.view_);
    ready_ = std::move(other.ready_);
    last_use_ = std::move(other.last_use_);
  }
  return *this;
}

void PooledBuffer::recycle() {
  if (pool_ != nullptr && block_ != nullptr) {
    pool_->release_block(static_cast<WorkspacePool::Block*>(block_),
                         std::move(last_use_));
    block_ = nullptr;
    pool_ = nullptr;
    // view_ is intentionally kept: consumers enqueued before the recycle
    // hold this lease's raw data pointer and read it until the recorded
    // last-use event completes (the pool joins that event before the
    // storage is re-issued or trimmed). Only new declarations are invalid.
    ready_.clear();
    last_use_ = sim::Event();
  }
}

void PooledBuffer::recycle(sim::Event last_use) {
  record_last_use(std::move(last_use));
  recycle();
}

void PooledBuffer::reset() {
  if (pool_ != nullptr && block_ != nullptr) {
    recycle();
  } else {
    view_.release();
    pool_ = nullptr;
    block_ = nullptr;
    ready_.clear();
    last_use_ = sim::Event();
  }
}

// ----------------------------------------------------------- WorkspacePool --

WorkspacePool::WorkspacePool(sim::Device& device, std::uint64_t budget_bytes)
    : device_(device),
      budget_bytes_(budget_bytes != 0 ? budget_bytes
                                      : device.profile().memory_bytes),
      bins_(65) {}

WorkspacePool::~WorkspacePool() {
  if (stats_.live_buffers != 0) {
    MGGCN_LOG(kError) << "workspace pool on device " << device_.rank()
                      << " destroyed with " << stats_.live_buffers
                      << " live leases (" << ledger_string() << ")";
    assert(false && "workspace pool destroyed with live leases");
  }
  // Join every retained tenant before the slab storage (and its host
  // backing) goes away: enqueued task bodies may still hold raw pointers
  // into it.
  if (device_.mode() == sim::ExecutionMode::kReal) {
    for (const auto& slab : slabs_) {
      for (Block* b = slab->head; b != nullptr; b = b->next) {
        for (const sim::Event& e : b->pending) {
          if (e.valid()) e.wait();
        }
      }
    }
  }
  slabs_.clear();  // DeviceBuffer destructors return the ledger bytes
}

std::uint64_t WorkspacePool::available_bytes() const {
  return budget_bytes_ > stats_.in_use_bytes
             ? budget_bytes_ - stats_.in_use_bytes
             : 0;
}

PooledBuffer WorkspacePool::acquire(std::size_t elements, std::string name) {
  PooledBuffer lease;
  if (elements == 0) {
    // Matches an empty DeviceBuffer: id 0, no reservation, nothing to
    // audit. Keep the name so diagnostics stay useful.
    lease.view_ = sim::DeviceBuffer::view(device_, 0, nullptr, std::move(name),
                                          0);
    return lease;
  }

  sim::PoolCounters delta;
  Block* block = find_fit(elements);
  bool reused = block != nullptr;
  if (reused) {
    bin_remove(block);
    if (block->elements > elements) {
      Block* remainder = split(block, elements);
      bin_insert(remainder);
      ++stats_.splits;
      ++delta.splits;
    }
    ++stats_.reuse_hits;
    ++delta.reuse_hits;
  } else {
    // The free lists cannot serve the request: give back every wholly-free
    // slab first so the grow below never stacks idle reservations on top
    // of the new one — this is what keeps the pooled ledger peak at or
    // below the static scheme's.
    trim_free_slabs();
    const std::uint64_t bytes = to_bytes(elements);
    if (stats_.reserved_bytes + bytes > budget_bytes_) {
      std::ostringstream os;
      os << "workspace pool on device " << device_.rank()
         << " out of budget leasing " << util::format_bytes(bytes) << " for '"
         << name << "': " << ledger_string();
      throw OutOfMemoryError(os.str());
    }
    auto slab = std::make_unique<Slab>();
    slab->seq = next_slab_seq_++;
    slab->storage =
        sim::DeviceBuffer(device_, elements, "pool-slab:" + name);
    slab->elements = elements;
    block = new Block();
    block->slab = slab.get();
    block->offset = 0;
    block->elements = elements;
    block->id = sim::next_buffer_identity();
    slab->head = block;
    slabs_.push_back(std::move(slab));
    stats_.reserved_bytes += bytes;
    ++stats_.slab_allocs;
    ++delta.slab_allocs;
  }

  block->free = false;
  block->tenant = name;
  stats_.in_use_bytes += to_bytes(block->elements);
  ++stats_.live_buffers;

  float* data = nullptr;
  if (block->slab->storage.data() != nullptr) {
    data = block->slab->storage.data() + block->offset;
  }
  if (device_.mode() == sim::ExecutionMode::kReal && reused) {
    // Stream-ordered handover: join the previous tenants' last consumers,
    // then restore the fresh-buffer invariant (DeviceBuffers start zeroed)
    // so numerics are bit-identical to the static scheme. The host wait
    // deliberately does not join the hazard checker's host clock — the
    // *declared* ready() edge must carry the ordering, or the audit fires.
    for (const sim::Event& e : block->pending) {
      if (e.valid()) e.wait();
    }
    if (data != nullptr) {
      std::memset(data, 0, to_bytes(block->elements));
    }
  }
  lease.pool_ = this;
  lease.block_ = block;
  lease.ready_ = std::move(block->pending);
  block->pending.clear();
  lease.view_ = sim::DeviceBuffer::view(device_, block->elements, data,
                                        std::move(name), block->id);
  note_extremes();
  publish(delta);
  return lease;
}

WorkspacePool::Block* WorkspacePool::find_fit(std::size_t elements) {
  // Best fit, deterministically tie-broken by (slab seq, offset). Bins are
  // ordered by size class, so the first bin holding a fitting block also
  // holds the globally best fit.
  //
  // Split-waste cap: a much-larger block is never split for a small
  // request. The small lease would pin the slab (a partially-used slab
  // cannot be trimmed), so a later full-size request has to grow the
  // ledger past the static scheme's peak. Treating the oversize block as
  // a miss routes the request through trim-before-grow instead, which
  // reclaims the idle slab first. The cap allows a remainder up to the
  // request itself (waste never exceeds the lease that caused it) or up
  // to kMaxSplitWasteElements for near fits on large blocks.
  constexpr std::size_t kMaxSplitWasteElements = 4096;
  for (int bin = bin_of(elements); bin < static_cast<int>(bins_.size());
       ++bin) {
    Block* best = nullptr;
    for (Block* b : bins_[bin]) {
      if (b->elements < elements) continue;
      if (b->elements - elements > std::max(elements, kMaxSplitWasteElements))
        continue;
      if (best == nullptr || b->elements < best->elements ||
          (b->elements == best->elements &&
           (b->slab->seq < best->slab->seq ||
            (b->slab->seq == best->slab->seq && b->offset < best->offset)))) {
        best = b;
      }
    }
    if (best != nullptr) return best;
  }
  return nullptr;
}

void WorkspacePool::bin_insert(Block* block) {
  bins_[bin_of(block->elements)].push_back(block);
}

void WorkspacePool::bin_remove(Block* block) {
  auto& bin = bins_[bin_of(block->elements)];
  bin.erase(std::find(bin.begin(), bin.end(), block));
}

WorkspacePool::Block* WorkspacePool::split(Block* block, std::size_t elements) {
  assert(block->elements > elements);
  Block* remainder = new Block();
  remainder->slab = block->slab;
  remainder->offset = block->offset + elements;
  remainder->elements = block->elements - elements;
  remainder->free = true;
  remainder->id = sim::next_buffer_identity();
  // Both halves still hold the previous tenant's data, so both inherit its
  // completion events.
  remainder->pending = block->pending;
  remainder->prev = block;
  remainder->next = block->next;
  if (block->next != nullptr) block->next->prev = remainder;
  block->next = remainder;
  block->elements = elements;
  // The lead half changed extent: it is a new buffer as far as the hazard
  // audit is concerned.
  block->id = sim::next_buffer_identity();
  return remainder;
}

void WorkspacePool::release_block(Block* block, sim::Event last_use) {
  assert(!block->free);
  sim::PoolCounters delta;
  block->free = true;
  if (last_use.valid()) block->pending.push_back(std::move(last_use));
  stats_.in_use_bytes -= to_bytes(block->elements);
  --stats_.live_buffers;

  // Coalesce with free neighbors (merging their pending events) so large
  // requests can be served again after a burst of small ones.
  if (Block* prev = block->prev; prev != nullptr && prev->free) {
    bin_remove(prev);
    prev->elements += block->elements;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    prev->pending.insert(prev->pending.end(),
                         std::make_move_iterator(block->pending.begin()),
                         std::make_move_iterator(block->pending.end()));
    prev->id = sim::next_buffer_identity();
    delete block;
    block = prev;
    ++stats_.coalesces;
    ++delta.coalesces;
  }
  if (Block* next = block->next; next != nullptr && next->free) {
    bin_remove(next);
    block->elements += next->elements;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    block->pending.insert(block->pending.end(),
                          std::make_move_iterator(next->pending.begin()),
                          std::make_move_iterator(next->pending.end()));
    block->id = sim::next_buffer_identity();
    delete next;
    ++stats_.coalesces;
    ++delta.coalesces;
  }
  bin_insert(block);
  note_extremes();
  publish(delta);
}

void WorkspacePool::trim_free_slabs() {
  for (auto it = slabs_.begin(); it != slabs_.end();) {
    Slab& slab = **it;
    Block* head = slab.head;
    // Eager coalescing guarantees a wholly-free slab is one free block.
    if (head == nullptr || !head->free || head->next != nullptr) {
      ++it;
      continue;
    }
    if (device_.mode() == sim::ExecutionMode::kReal) {
      for (const sim::Event& e : head->pending) {
        if (e.valid()) e.wait();
      }
    }
    bin_remove(head);
    stats_.reserved_bytes -= to_bytes(slab.elements);
    ++stats_.trims;
    publish(sim::PoolCounters{.trims = 1});
    it = slabs_.erase(it);  // releases the device reservation
  }
}

void WorkspacePool::note_extremes() {
  stats_.free_bytes = stats_.reserved_bytes - stats_.in_use_bytes;
  stats_.reserved_peak_bytes =
      std::max(stats_.reserved_peak_bytes, stats_.reserved_bytes);
  stats_.in_use_peak_bytes =
      std::max(stats_.in_use_peak_bytes, stats_.in_use_bytes);
  if (stats_.free_bytes > 0) {
    std::uint64_t largest_free = 0;
    for (const auto& bin : bins_) {
      for (const Block* b : bin) {
        largest_free = std::max(largest_free, to_bytes(b->elements));
      }
    }
    const double frag = 1.0 - static_cast<double>(largest_free) /
                                  static_cast<double>(stats_.free_bytes);
    stats_.fragmentation_peak = std::max(stats_.fragmentation_peak, frag);
  }
}

void WorkspacePool::publish(const sim::PoolCounters& delta) {
  sim::Trace* trace = device_.trace();
  if (trace == nullptr) return;
  sim::PoolCounters out = delta;
  // Peaks merge by max in Trace, so publish current absolutes every time.
  out.reserved_peak_bytes = stats_.reserved_peak_bytes;
  out.in_use_peak_bytes = stats_.in_use_peak_bytes;
  out.fragmentation_peak = stats_.fragmentation_peak;
  trace->record_pool(out);
}

std::string WorkspacePool::ledger_string() const {
  std::uint64_t largest_free = 0;
  for (const auto& bin : bins_) {
    for (const Block* b : bin) {
      largest_free = std::max(largest_free, to_bytes(b->elements));
    }
  }
  std::ostringstream os;
  os << "budget " << util::format_bytes(budget_bytes_) << ", reserved "
     << util::format_bytes(stats_.reserved_bytes) << " across "
     << slabs_.size() << " slab(s), in use "
     << util::format_bytes(stats_.in_use_bytes) << " in "
     << stats_.live_buffers << " lease(s), free "
     << util::format_bytes(stats_.free_bytes) << " (largest block "
     << util::format_bytes(largest_free) << ")";
  if (stats_.live_buffers > 0) {
    // Aggregate live leases by tenant name, largest total first, so the
    // OOM message names the components actually holding the budget.
    std::map<std::string, std::pair<std::size_t, std::uint64_t>> by_tenant;
    for (const auto& slab : slabs_) {
      for (const Block* b = slab->head; b != nullptr; b = b->next) {
        if (b->free) continue;
        auto& [count, bytes] = by_tenant[b->tenant];
        ++count;
        bytes += to_bytes(b->elements);
      }
    }
    std::vector<std::pair<std::string, std::pair<std::size_t, std::uint64_t>>>
        ordered(by_tenant.begin(), by_tenant.end());
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.second > b.second.second;
                     });
    constexpr std::size_t kMaxListed = 12;
    os << "; live:";
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      if (i == kMaxListed) {
        os << " ...";
        break;
      }
      const auto& [tenant, agg] = ordered[i];
      os << (i == 0 ? " " : ", ") << tenant;
      if (agg.first > 1) os << " x" << agg.first;
      os << " (" << util::format_bytes(agg.second) << ")";
    }
  }
  return os.str();
}

// ----------------------------------------------------------------- PoolSet --

std::shared_ptr<PoolSet> PoolSet::create(sim::Machine& machine,
                                         std::uint64_t budget_bytes) {
  auto set = std::make_shared<PoolSet>();
  set->machine_ = &machine;
  set->pools_.reserve(static_cast<std::size_t>(machine.num_devices()));
  for (int r = 0; r < machine.num_devices(); ++r) {
    set->pools_.push_back(
        std::make_unique<WorkspacePool>(machine.device(r), budget_bytes));
  }
  return set;
}

WorkspacePool& PoolSet::pool(int rank) {
  return *pools_.at(static_cast<std::size_t>(rank));
}

std::shared_ptr<PoolSet> resolve_pool(std::shared_ptr<PoolSet> shared,
                                      sim::Machine& machine) {
  return resolve_pool(std::move(shared), machine, pool_mode());
}

std::shared_ptr<PoolSet> resolve_pool(std::shared_ptr<PoolSet> shared,
                                      sim::Machine& machine, PoolMode mode) {
  if (mode == PoolMode::kOff) return nullptr;
  if (shared != nullptr && shared->machine() == &machine) return shared;
  if (mode == PoolMode::kOn) return PoolSet::create(machine);
  return nullptr;
}

PooledBuffer acquire_or_alloc(WorkspacePool* pool, sim::Device& device,
                              std::size_t elements, std::string name) {
  if (pool != nullptr) {
    assert(&pool->device() == &device);
    return pool->acquire(elements, std::move(name));
  }
  return PooledBuffer(device, elements, std::move(name));
}

void append_ready(std::vector<sim::Event>* waits, const PooledBuffer& lease) {
  for (const sim::Event& e : lease.ready()) {
    if (e.valid()) waits->push_back(e);
  }
}

}  // namespace mggcn::mem
