// Workspace-pool registry: whether device buffers come from the shared
// stream-ordered pool (mem::WorkspacePool) or are statically owned.
//
// The registry mirrors core/cache_mode.hpp and friends:
//
//   - `off`:  every component allocates private sim::DeviceBuffers exactly
//             as before the pool existed — the bit-for-bit parity axis the
//             pooled modes are diffed against.
//   - `on`:   every engine routes its buffers through a WorkspacePool,
//             self-creating a per-machine PoolSet when the caller did not
//             share one. Freed blocks are recycled stream-ordered, so peak
//             footprint drops wherever buffer lifetimes do not overlap.
//   - `auto`: pool only when the caller installed a shared PoolSet
//             (multi-tenant setups — the case cross-component reuse pays
//             for); single-tenant engines stay on the static path. This is
//             the conservative resolution CaPGNN's joint-budget argument
//             suggests: pooling buys sharing, and sharing needs tenants.
//
// Every mode trains and serves bit-identically: recycled blocks are
// re-zeroed before reuse, so a pooled buffer starts life exactly like a
// fresh DeviceBuffer; only footprint and (slightly) the simulated schedule
// of reuse edges differ.
//
// set_pool_mode() installs a mode programmatically; the MGGCN_POOL
// environment variable ("off" | "on" | "auto") is read once at first use
// and an unknown value fails loudly. MGGCN_POOL_BUDGET caps each device's
// pool in bytes (0 = the device's full memory capacity).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mggcn::mem {

enum class PoolMode {
  kOff = 0,
  kOn = 1,
  kAuto = 2,
};

inline constexpr int kNumPoolModes = 3;

/// Stable lower-case name ("off" | "on" | "auto") for logs, CLI, and JSON.
[[nodiscard]] const char* pool_mode_name(PoolMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<PoolMode> parse_pool_mode(std::string_view name);

/// The active mode. Defaults to kAuto, overridable once via the MGGCN_POOL
/// environment variable; throws InvalidArgumentError on an unknown value.
[[nodiscard]] PoolMode pool_mode();

/// Installs `mode` as the active mode (e.g. from a --pool CLI flag).
void set_pool_mode(PoolMode mode);

/// Per-device pool budget in bytes; 0 means "the device's full capacity".
/// Defaults to 0, overridable once via MGGCN_POOL_BUDGET (a non-negative
/// byte count); an unparsable value fails loudly.
[[nodiscard]] std::uint64_t pool_budget_bytes();
void set_pool_budget_bytes(std::uint64_t bytes);

/// RAII mode override for tests and benches that diff the pool policies.
class ScopedPoolMode {
 public:
  explicit ScopedPoolMode(PoolMode mode) : previous_(pool_mode()) {
    set_pool_mode(mode);
  }
  ~ScopedPoolMode() { set_pool_mode(previous_); }
  ScopedPoolMode(const ScopedPoolMode&) = delete;
  ScopedPoolMode& operator=(const ScopedPoolMode&) = delete;

 private:
  PoolMode previous_;
};

}  // namespace mggcn::mem
