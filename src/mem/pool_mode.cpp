#include "mem/pool_mode.hpp"

#include <atomic>
#include <limits>

#include "util/env.hpp"

namespace mggcn::mem {

namespace {

std::atomic<PoolMode>& active_mode() {
  static std::atomic<PoolMode> mode{util::env_enum(
      "MGGCN_POOL", PoolMode::kAuto, parse_pool_mode, "'off', 'on', or 'auto'")};
  return mode;
}

std::atomic<std::uint64_t>& active_budget() {
  static std::atomic<std::uint64_t> budget{static_cast<std::uint64_t>(
      util::env_int("MGGCN_POOL_BUDGET", 0, 0,
                    std::numeric_limits<long long>::max()))};
  return budget;
}

}  // namespace

const char* pool_mode_name(PoolMode mode) {
  switch (mode) {
    case PoolMode::kOff:
      return "off";
    case PoolMode::kOn:
      return "on";
    case PoolMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<PoolMode> parse_pool_mode(std::string_view name) {
  if (name == "off") return PoolMode::kOff;
  if (name == "on") return PoolMode::kOn;
  if (name == "auto") return PoolMode::kAuto;
  return std::nullopt;
}

PoolMode pool_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_pool_mode(PoolMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

std::uint64_t pool_budget_bytes() {
  return active_budget().load(std::memory_order_relaxed);
}

void set_pool_budget_bytes(std::uint64_t bytes) {
  active_budget().store(bytes, std::memory_order_relaxed);
}

}  // namespace mggcn::mem
