#include "comm/comm_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace mggcn::comm {

namespace {

CommMode mode_from_env() {
  const char* env = std::getenv("MGGCN_COMM");
  if (env == nullptr || *env == '\0') return CommMode::kAuto;
  const auto parsed = parse_comm_mode(env);
  MGGCN_CHECK_MSG(parsed.has_value(),
                  std::string("MGGCN_COMM must be 'dense', 'compact', or "
                              "'auto', got '") +
                      env + "'");
  return *parsed;
}

std::atomic<CommMode>& active_mode() {
  static std::atomic<CommMode> mode{mode_from_env()};
  return mode;
}

}  // namespace

const char* comm_mode_name(CommMode mode) {
  switch (mode) {
    case CommMode::kDense:
      return "dense";
    case CommMode::kCompact:
      return "compact";
    case CommMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<CommMode> parse_comm_mode(std::string_view name) {
  if (name == "dense") return CommMode::kDense;
  if (name == "compact") return CommMode::kCompact;
  if (name == "auto") return CommMode::kAuto;
  return std::nullopt;
}

CommMode comm_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_comm_mode(CommMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::comm
