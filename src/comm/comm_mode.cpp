#include "comm/comm_mode.hpp"

#include <atomic>

#include "util/env.hpp"

namespace mggcn::comm {

namespace {

std::atomic<CommMode>& active_mode() {
  static std::atomic<CommMode> mode{
      util::env_enum("MGGCN_COMM", CommMode::kAuto, parse_comm_mode,
                     "'dense', 'compact', or 'auto'")};
  return mode;
}

}  // namespace

const char* comm_mode_name(CommMode mode) {
  switch (mode) {
    case CommMode::kDense:
      return "dense";
    case CommMode::kCompact:
      return "compact";
    case CommMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<CommMode> parse_comm_mode(std::string_view name) {
  if (name == "dense") return CommMode::kDense;
  if (name == "compact") return CommMode::kCompact;
  if (name == "auto") return CommMode::kAuto;
  return std::nullopt;
}

CommMode comm_mode() { return active_mode().load(std::memory_order_relaxed); }

void set_comm_mode(CommMode mode) {
  active_mode().store(mode, std::memory_order_relaxed);
}

}  // namespace mggcn::comm
