#include "comm/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mggcn::comm {

int Topology::usable_links(int group_size) const {
  MGGCN_CHECK(group_size >= 1);
  switch (profile_.kind) {
    case sim::InterconnectKind::kSwitch:
    case sim::InterconnectKind::kHostFabric:
      return profile_.links_per_device;
    case sim::InterconnectKind::kCubeMesh: {
      // Hybrid cube mesh (DGX-1): the paper's §5.1 accounting — the full
      // clique sees all 6 links, a quad sees 4 of them, a cross-quad pair
      // only 2. Smaller groups degrade proportionally.
      if (group_size >= 8) return profile_.links_per_device;
      if (group_size >= 4) return std::min(profile_.links_per_device, 4);
      if (group_size >= 2) return std::min(profile_.links_per_device, 2);
      return profile_.links_per_device;
    }
  }
  return profile_.links_per_device;
}

double Topology::group_bandwidth(int group_size) const {
  const double intra = usable_links(group_size) * profile_.link_bandwidth *
                       profile_.efficiency;
  // A collective spanning several nodes is bottlenecked by the inter-node
  // fabric: all of the root's traffic to remote nodes funnels through one
  // NIC — the bandwidth cliff that stalls scaling beyond a single machine
  // (abstract; CAGNET's observation).
  if (profile_.devices_per_node > 0 &&
      group_size > profile_.devices_per_node &&
      profile_.internode_bandwidth > 0.0) {
    return std::min(intra, profile_.internode_bandwidth * profile_.efficiency);
  }
  return intra;
}

double Topology::broadcast_seconds(std::uint64_t bytes,
                                   int group_size) const {
  if (group_size <= 1 || bytes == 0) return 0.0;
  return base_latency() +
         static_cast<double>(bytes) / group_bandwidth(group_size);
}

double Topology::allreduce_seconds(std::uint64_t bytes,
                                   int group_size) const {
  if (group_size <= 1 || bytes == 0) return 0.0;
  const double p = group_size;
  return base_latency() + 2.0 * (p - 1.0) / p * static_cast<double>(bytes) /
                              group_bandwidth(group_size);
}

double Topology::reduce_seconds(std::uint64_t bytes, int group_size) const {
  if (group_size <= 1 || bytes == 0) return 0.0;
  return base_latency() +
         static_cast<double>(bytes) / group_bandwidth(group_size);
}

double Topology::sendv_seconds(std::uint64_t total_bytes, int messages,
                               int group_size) const {
  if (group_size <= 1 || messages <= 0) return 0.0;
  return base_latency() * static_cast<double>(messages) +
         static_cast<double>(total_bytes) / group_bandwidth(group_size);
}

double Topology::sendv_split_seconds(std::uint64_t intra_bytes,
                                     int intra_messages,
                                     std::uint64_t inter_bytes,
                                     int inter_messages,
                                     int group_size,
                                     std::uint64_t scatter_bytes) const {
  const int messages = intra_messages + inter_messages;
  if (group_size <= 1 || messages <= 0) return 0.0;
  const int intra_group =
      profile_.devices_per_node > 0
          ? std::min(group_size, profile_.devices_per_node)
          : group_size;
  const double intra_bw = group_bandwidth(intra_group);
  const double inter_bw =
      profile_.devices_per_node > 0 && profile_.internode_bandwidth > 0.0
          ? profile_.internode_bandwidth * profile_.efficiency
          : group_bandwidth(group_size);
  const double intra_beta = static_cast<double>(intra_bytes) / intra_bw;
  const double inter_beta = static_cast<double>(inter_bytes) / inter_bw;
  const double scatter_beta = static_cast<double>(scatter_bytes) / intra_bw;
  return base_latency() * static_cast<double>(messages) +
         std::max(intra_beta, inter_beta) + scatter_beta;
}

double Topology::allgather_seconds(std::uint64_t total_bytes,
                                   int group_size) const {
  if (group_size <= 1 || total_bytes == 0) return 0.0;
  const double p = group_size;
  return base_latency() + (p - 1.0) / p * static_cast<double>(total_bytes) /
                              group_bandwidth(group_size);
}

}  // namespace mggcn::comm
