// Interconnect topology model.
//
// Converts collective operations (bytes, participant set) into simulated
// durations using the paper's own §5.1 bandwidth model: a collective rooted
// at one device moves bytes / (usable_links * link_bandwidth). The number of
// usable links depends on the topology and the participant-group size:
//
//  - DGX-A100 (NVSwitch): every group can use all 12 links of each GPU.
//  - DGX-1 (hybrid cube mesh): the full 8-GPU group exposes 6 links per
//    GPU, a 4-GPU quad only 4, and a cross-quad pair only 2 — this is the
//    asymmetry that makes 1.5D algorithms lose on DGX-1 (§5.1).
#pragma once

#include <cstdint>

#include "sim/profile.hpp"

namespace mggcn::comm {

class Topology {
 public:
  explicit Topology(sim::InterconnectProfile profile)
      : profile_(profile) {}

  [[nodiscard]] const sim::InterconnectProfile& profile() const {
    return profile_;
  }

  /// Links each participant can use for a collective spanning `group_size`
  /// devices of an 8-device machine.
  [[nodiscard]] int usable_links(int group_size) const;

  /// Aggregate one-direction bandwidth (bytes/s) for such a collective,
  /// including the protocol-efficiency factor.
  [[nodiscard]] double group_bandwidth(int group_size) const;

  /// One-to-all broadcast of `bytes`.
  [[nodiscard]] double broadcast_seconds(std::uint64_t bytes,
                                         int group_size) const;

  /// Ring allreduce of `bytes` (each rank sends/receives
  /// 2*(P-1)/P * bytes).
  [[nodiscard]] double allreduce_seconds(std::uint64_t bytes,
                                         int group_size) const;

  /// All-to-one reduction of `bytes`.
  [[nodiscard]] double reduce_seconds(std::uint64_t bytes,
                                      int group_size) const;

  /// All-to-all gather where each rank contributes bytes/P.
  [[nodiscard]] double allgather_seconds(std::uint64_t total_bytes,
                                         int group_size) const;

  /// Variable-size one-to-many exchange: the root sends `messages`
  /// per-destination payloads totalling `total_bytes`. Alpha/beta model:
  /// one base latency per message (each destination's payload is a
  /// separate send) plus the actual bytes over the group bandwidth — the
  /// compacted exchange is charged for what it really moves, unlike a
  /// broadcast which always pays for the full block.
  [[nodiscard]] double sendv_seconds(std::uint64_t total_bytes, int messages,
                                     int group_size) const;

  /// sendv with the payload split by where it crosses: intra-node bytes
  /// ride the NVLink/NVSwitch fabric at the intra-node group bandwidth
  /// (no NIC clamp), inter-node bytes funnel through the root's NIC, and
  /// the two streams drain concurrently (duration = max of the two beta
  /// terms). With an empty inter bucket this reproduces sendv_seconds on a
  /// single node exactly; on multi-node groups it replaces the
  /// uniform-block assumption that priced *all* traffic at the clamped
  /// NIC bandwidth — which is what lets a locality-aware partition's
  /// mostly-intra-node ghost exchange actually get cheaper.
  ///
  /// `scatter_bytes` is the worst remote node's redistribution volume
  /// under node-aggregated forwarding (the local root scatters the
  /// forwarded union to its node's destinations over the intra fabric);
  /// remote nodes scatter concurrently, so only the max is charged, as a
  /// pipelined bulk transfer (per-destination setup hides under the NIC
  /// stream).
  [[nodiscard]] double sendv_split_seconds(std::uint64_t intra_bytes,
                                           int intra_messages,
                                           std::uint64_t inter_bytes,
                                           int inter_messages,
                                           int group_size,
                                           std::uint64_t scatter_bytes
                                           = 0) const;

  /// Fixed latency of any collective call (protocol setup). Taken from the
  /// profile so replica-scaled machines shrink it with their block sizes.
  [[nodiscard]] double base_latency() const { return profile_.base_latency; }

 private:
  sim::InterconnectProfile profile_;
};

}  // namespace mggcn::comm
