// Interconnect topology model.
//
// Converts collective operations (bytes, participant set) into simulated
// durations using the paper's own §5.1 bandwidth model: a collective rooted
// at one device moves bytes / (usable_links * link_bandwidth). The number of
// usable links depends on the topology and the participant-group size:
//
//  - DGX-A100 (NVSwitch): every group can use all 12 links of each GPU.
//  - DGX-1 (hybrid cube mesh): the full 8-GPU group exposes 6 links per
//    GPU, a 4-GPU quad only 4, and a cross-quad pair only 2 — this is the
//    asymmetry that makes 1.5D algorithms lose on DGX-1 (§5.1).
#pragma once

#include <cstdint>

#include "sim/profile.hpp"

namespace mggcn::comm {

class Topology {
 public:
  explicit Topology(sim::InterconnectProfile profile)
      : profile_(profile) {}

  [[nodiscard]] const sim::InterconnectProfile& profile() const {
    return profile_;
  }

  /// Links each participant can use for a collective spanning `group_size`
  /// devices of an 8-device machine.
  [[nodiscard]] int usable_links(int group_size) const;

  /// Aggregate one-direction bandwidth (bytes/s) for such a collective,
  /// including the protocol-efficiency factor.
  [[nodiscard]] double group_bandwidth(int group_size) const;

  /// One-to-all broadcast of `bytes`.
  [[nodiscard]] double broadcast_seconds(std::uint64_t bytes,
                                         int group_size) const;

  /// Ring allreduce of `bytes` (each rank sends/receives
  /// 2*(P-1)/P * bytes).
  [[nodiscard]] double allreduce_seconds(std::uint64_t bytes,
                                         int group_size) const;

  /// All-to-one reduction of `bytes`.
  [[nodiscard]] double reduce_seconds(std::uint64_t bytes,
                                      int group_size) const;

  /// All-to-all gather where each rank contributes bytes/P.
  [[nodiscard]] double allgather_seconds(std::uint64_t total_bytes,
                                         int group_size) const;

  /// Variable-size one-to-many exchange: the root sends `messages`
  /// per-destination payloads totalling `total_bytes`. Alpha/beta model:
  /// one base latency per message (each destination's payload is a
  /// separate send) plus the actual bytes over the group bandwidth — the
  /// compacted exchange is charged for what it really moves, unlike a
  /// broadcast which always pays for the full block.
  [[nodiscard]] double sendv_seconds(std::uint64_t total_bytes, int messages,
                                     int group_size) const;

  /// Fixed latency of any collective call (protocol setup).
  [[nodiscard]] double base_latency() const { return 4e-6; }

 private:
  sim::InterconnectProfile profile_;
};

}  // namespace mggcn::comm
