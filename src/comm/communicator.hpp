// NCCL-like collectives over simulated devices.
//
// Semantics follow NCCL: every participating rank enqueues its part of the
// collective onto one of its streams; a rank's part completes when the whole
// collective does. Data movement is real (the designated executor rank
// copies/reduces between the devices' buffers, which share the host address
// space — the stand-in for NVLink peer access); duration comes from the
// Topology model. Simulated start time is synchronized across ranks, so
// stragglers delay everyone — exactly the load-imbalance effect the paper's
// Fig. 6 visualizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <functional>

#include "comm/topology.hpp"
#include "sim/device.hpp"
#include "sim/machine.hpp"

namespace mggcn::comm {

/// Which stream each rank's collective part runs on.
enum class StreamChoice { kCompute, kComm };

/// One rank's view of a collective: its buffer and the events its part must
/// wait for before the collective can start on that rank. Each collective
/// fills `reads`/`writes` from its data-movement role (root reads, receivers
/// are written, reductions do both) so the hazard checker audits collectives
/// like any other task.
struct RankPart {
  sim::DeviceBuffer* buffer = nullptr;
  std::vector<sim::Event> waits;
  std::vector<sim::BufferAccess> reads;
  std::vector<sim::BufferAccess> writes;
};

/// A sendv payload classified by where it crosses: intra-node destinations
/// (NVLink/NVSwitch) vs inter-node destinations (the root's NIC). Built by
/// DistSpmm / the planner from the actual partition's ghost sets so stage
/// pricing reflects the real cut, not a uniform-block assumption.
/// Shape of one compacted (ghost-row) exchange, split by where each byte
/// crosses. Inter-node traffic is node-aggregated: the root sends ONE
/// message per remote node carrying the union of that node's destinations'
/// ghost rows; the receiving node's local root then scatters each
/// destination its slice over the intra-node fabric. `inter_bytes` /
/// `inter_messages` therefore count per-node unions, and `scatter_bytes`
/// is the worst remote node's redistribution volume (remote nodes scatter
/// concurrently, so only the max is on the critical path).
struct SendvShape {
  std::uint64_t intra_bytes = 0;
  int intra_messages = 0;
  std::uint64_t inter_bytes = 0;
  int inter_messages = 0;
  std::uint64_t scatter_bytes = 0;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return intra_bytes + inter_bytes;
  }
  [[nodiscard]] int messages() const {
    return intra_messages + inter_messages;
  }
};

struct CommOptions {
  /// Multiplier on every collective duration (models e.g. the older NCCL
  /// 2.4 CAGNET links against: efficiency below current NCCL).
  double duration_scale = 1.0;

  // --- Fault handling (active when the machine has a FaultPlan). --------
  /// Failed attempts tolerated per collective before surfacing CommError.
  int max_retries = 4;
  /// Simulated cost of the first failed attempt (detection timeout); each
  /// further retry doubles it (exponential backoff). The penalty is added
  /// to the collective's duration — data still moves exactly once, so
  /// numerics are unchanged and only the timeline stretches.
  double retry_timeout_seconds = 50e-6;
};

class Communicator {
 public:
  /// A communicator over all devices of a machine.
  Communicator(sim::Machine& machine, CommOptions options = {});

  /// A communicator over an explicit subset (1.5D replication groups).
  Communicator(std::vector<sim::Device*> devices, Topology topology,
               CommOptions options = {});

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  /// The options collectives are charged with (duration_scale etc.) —
  /// public so strategy planners can price with exactly what launch()
  /// will charge.
  [[nodiscard]] const CommOptions& options() const { return options_; }

  /// Broadcast `count` floats from parts[root].buffer into every rank's
  /// buffer. Returns one completion event per rank, in rank order.
  std::vector<sim::Event> broadcast(std::vector<RankPart> parts,
                                    std::size_t count, int root,
                                    StreamChoice stream = StreamChoice::kComm,
                                    int stage = -1);

  /// Compacted (ghost-row) exchange: the root packs, for each destination
  /// rank r, the rows of its block listed in `rows[r]` (row indices into
  /// the root's `d`-wide block, ascending) into the head of
  /// parts[r].buffer — destination row i receives source row rows[r][i].
  /// rows[root] is ignored; an empty list sends that rank nothing. The
  /// simulated duration charges the *actual* payload bytes (alpha per
  /// destination message + beta over the topology bandwidth,
  /// Topology::sendv_seconds) plus the root-side pack traffic — see
  /// sendv_rows_seconds, which the auto-selector prices stages with.
  /// Hazard declarations mirror broadcast: root reads, receivers written.
  std::vector<sim::Event> sendv_rows(
      std::vector<RankPart> parts,
      std::vector<std::span<const std::uint32_t>> rows, std::int64_t d,
      int root, StreamChoice stream = StreamChoice::kComm, int stage = -1);

  /// Simulated duration of a sendv_rows moving `total_bytes` across
  /// `messages` destinations, including the root's pack cost (a
  /// read + write of the payload at the device's HBM bandwidth). Public so
  /// callers choosing between dense and compacted exchange price both
  /// paths with exactly the model the simulator will charge.
  [[nodiscard]] double sendv_rows_seconds(std::uint64_t total_bytes,
                                          int messages) const;

  /// Node-aware variant: intra-node payload is priced at the intra-node
  /// fabric bandwidth and inter-node payload at the NIC, draining
  /// concurrently (Topology::sendv_split_seconds) plus the same root pack
  /// cost. This is what sendv_rows itself charges; the two-argument
  /// overload above keeps the single-fabric model for callers without a
  /// destination split.
  [[nodiscard]] double sendv_rows_seconds(const SendvShape& shape) const;

  /// Classify a sendv_rows payload into its SendvShape under node
  /// aggregation: same-node destinations each get their own message;
  /// each remote node gets ONE message carrying the union of its
  /// destinations' row lists (row lists must be ascending, as sendv_rows
  /// requires); scatter_bytes is the largest per-node redistribution
  /// volume among remote nodes with two or more destinations. This is the
  /// single source of truth for both execution charging (sendv_rows) and
  /// stage pricing (DistSpmm's dense-vs-compact selector).
  [[nodiscard]] SendvShape sendv_shape(
      const std::vector<std::span<const std::uint32_t>>& rows, std::int64_t d,
      int root) const;

  /// Node index of a communicator rank under the topology's
  /// devices_per_node grouping (machine rank / devices_per_node; 0 when
  /// the profile has no node structure).
  [[nodiscard]] int node_of(int rank) const;

  /// Element-wise sum of all ranks' buffers, result visible on every rank
  /// (ring allreduce timing).
  std::vector<sim::Event> allreduce_sum(
      std::vector<RankPart> parts, std::size_t count,
      StreamChoice stream = StreamChoice::kComm);

  /// Sum of all ranks' buffers into parts[root].buffer only.
  std::vector<sim::Event> reduce_sum(std::vector<RankPart> parts,
                                     std::size_t count, int root,
                                     StreamChoice stream = StreamChoice::kComm);

  /// All-gather: rank r contributes `counts[r]` floats from the head of
  /// its buffer; every rank ends with the concatenation (in rank order) in
  /// a buffer of capacity sum(counts).
  std::vector<sim::Event> allgather(std::vector<RankPart> parts,
                                    const std::vector<std::size_t>& counts,
                                    StreamChoice stream = StreamChoice::kComm);

  /// Synchronization-only collective (simulated-time rendezvous).
  std::vector<sim::Event> barrier(StreamChoice stream = StreamChoice::kComm);

 private:
  std::vector<sim::Event> launch(std::vector<RankPart> parts,
                                 std::size_t count, int executor,
                                 double duration, const char* label,
                                 std::function<void()> action,
                                 StreamChoice stream, int stage = -1);

  /// Fault hook run before any rank part is enqueued: throws
  /// DeviceLostError if a participant is lost (pre-checked so a collective
  /// is never left with a partial rendezvous group, which would deadlock
  /// the arrived ranks), and converts the fault plan's injected transient
  /// failures into a simulated retry/backoff delay — or CommError once the
  /// retry budget is exhausted.
  [[nodiscard]] double resolve_faults(const char* label);

  [[nodiscard]] sim::Stream& stream_of(int rank, StreamChoice choice);

  std::vector<sim::Device*> devices_;
  Topology topology_;
  CommOptions options_;
  sim::FaultPlan* fault_plan_ = nullptr;  ///< owned by the machine
};

}  // namespace mggcn::comm
