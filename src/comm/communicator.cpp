#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace mggcn::comm {

Communicator::Communicator(sim::Machine& machine, CommOptions options)
    : topology_(machine.profile().interconnect),
      options_(options),
      fault_plan_(machine.fault_plan()) {
  devices_.reserve(static_cast<std::size_t>(machine.num_devices()));
  for (int rank = 0; rank < machine.num_devices(); ++rank) {
    devices_.push_back(&machine.device(rank));
  }
}

Communicator::Communicator(std::vector<sim::Device*> devices,
                           Topology topology, CommOptions options)
    : devices_(std::move(devices)),
      topology_(topology),
      options_(options) {
  MGGCN_CHECK_MSG(!devices_.empty(), "communicator needs at least one device");
}

sim::Stream& Communicator::stream_of(int rank, StreamChoice choice) {
  sim::Device& device = *devices_[static_cast<std::size_t>(rank)];
  return choice == StreamChoice::kComm ? device.comm_stream()
                                       : device.compute_stream();
}

double Communicator::resolve_faults(const char* label) {
  for (const sim::Device* device : devices_) {
    if (device->is_failed()) {
      std::ostringstream os;
      os << "collective '" << label << "' spans lost device "
         << device->rank();
      throw DeviceLostError(os.str(), device->rank());
    }
  }
  if (fault_plan_ == nullptr) return 0.0;

  sim::Trace* trace = devices_.front()->trace();
  const int epoch = fault_plan_->current_epoch();
  double penalty = 0.0;
  int attempts = 0;
  while (fault_plan_->take_transient_failure()) {
    ++attempts;
    // Exponential backoff: timeout, 2*timeout, 4*timeout, ...
    const double backoff =
        options_.retry_timeout_seconds * static_cast<double>(1 << (attempts - 1));
    penalty += backoff;
    if (trace != nullptr) {
      trace->record_fault(sim::FaultRecord{
          .kind = sim::FaultEventKind::kTransientComm,
          .epoch = epoch,
          .device = -1,
          .detail = std::string("injected transient failure of '") + label +
                    "'",
      });
      trace->record_fault(sim::FaultRecord{
          .kind = sim::FaultEventKind::kCommRetry,
          .epoch = epoch,
          .device = -1,
          .value = backoff,
          .detail = std::string("retry ") + std::to_string(attempts) +
                    " of '" + label + "'",
      });
    }
    if (attempts > options_.max_retries) {
      std::ostringstream os;
      os << "collective '" << label << "' failed " << attempts
         << " times (retry budget " << options_.max_retries << " exhausted)";
      throw CommError(os.str(), attempts);
    }
  }

  return penalty;
}

std::vector<sim::Event> Communicator::launch(std::vector<RankPart> parts,
                                             std::size_t count, int executor,
                                             double duration,
                                             const char* label,
                                             std::function<void()> action,
                                             StreamChoice stream, int stage) {
  MGGCN_CHECK_MSG(parts.size() == devices_.size(),
                  "collective needs one part per rank");
  MGGCN_CHECK(executor >= 0 && executor < size());

  const double fault_penalty = resolve_faults(label);
  const double bandwidth_scale =
      fault_plan_ != nullptr ? fault_plan_->link_bandwidth_scale() : 1.0;

  auto group = std::make_shared<sim::CollectiveGroup>(size());
  group->duration =
      duration * options_.duration_scale / bandwidth_scale + fault_penalty;
  group->action = std::move(action);

  std::vector<sim::Event> events;
  events.reserve(parts.size());
  for (int rank = 0; rank < size(); ++rank) {
    auto& part = parts[static_cast<std::size_t>(rank)];
    sim::TaskDesc desc;
    desc.label = label;
    desc.kind = sim::TaskKind::kComm;
    desc.stage = stage;
    desc.waits = std::move(part.waits);
    desc.reads = std::move(part.reads);
    desc.writes = std::move(part.writes);
    desc.collective = group;
    desc.collective_executor = rank == executor;
    events.push_back(stream_of(rank, stream).enqueue(std::move(desc)));
  }
  (void)count;
  return events;
}

std::vector<sim::Event> Communicator::broadcast(std::vector<RankPart> parts,
                                                std::size_t count, int root,
                                                StreamChoice stream,
                                                int stage) {
  MGGCN_CHECK(root >= 0 && root < size());
  for (std::size_t r = 0; r < parts.size(); ++r) {
    if (parts[r].buffer == nullptr) continue;
    if (static_cast<int>(r) == root) {
      parts[r].reads.push_back(parts[r].buffer->access());
    } else {
      parts[r].writes.push_back(parts[r].buffer->access());
    }
  }
  if (size() == 1) {
    // Degenerate collective: nothing moves, but callers still get events.
    return launch(std::move(parts), count, 0, 0.0, "broadcast", nullptr,
                  stream, stage);
  }

  const std::uint64_t bytes = count * sizeof(float);
  const double duration = topology_.broadcast_seconds(bytes, size());

  std::vector<float*> dsts;
  const float* src = parts[static_cast<std::size_t>(root)].buffer != nullptr
                         ? parts[static_cast<std::size_t>(root)].buffer->data()
                         : nullptr;
  for (auto& part : parts) {
    dsts.push_back(part.buffer != nullptr ? part.buffer->data() : nullptr);
  }

  auto action = [src, dsts = std::move(dsts), count, root] {
    if (src == nullptr) return;  // phantom-mode buffers carry no storage
    for (std::size_t rank = 0; rank < dsts.size(); ++rank) {
      if (static_cast<int>(rank) == root) continue;
      if (dsts[rank] != nullptr && dsts[rank] != src) {
        std::memcpy(dsts[rank], src, count * sizeof(float));
      }
    }
  };
  return launch(std::move(parts), count, root, duration, "broadcast",
                std::move(action), stream, stage);
}

double Communicator::sendv_rows_seconds(std::uint64_t total_bytes,
                                        int messages) const {
  if (size() <= 1 || messages <= 0) return 0.0;
  const double wire = topology_.sendv_seconds(total_bytes, messages, size());
  // Root-side pack: the payload rows are gathered out of the source block
  // and staged into the per-destination sends — one read plus one write of
  // the payload at the root's HBM bandwidth. Folding it into the
  // collective duration keeps the pack on the comm stream, where it
  // overlaps compute exactly like the wire time does.
  const double bandwidth = devices_.front()->profile().memory_bandwidth;
  const double pack =
      bandwidth > 0.0 ? 2.0 * static_cast<double>(total_bytes) / bandwidth
                      : 0.0;
  return wire + pack;
}

double Communicator::sendv_rows_seconds(const SendvShape& shape) const {
  if (size() <= 1 || shape.messages() <= 0) return 0.0;
  const double wire = topology_.sendv_split_seconds(
      shape.intra_bytes, shape.intra_messages, shape.inter_bytes,
      shape.inter_messages, size(), shape.scatter_bytes);
  const double bandwidth = devices_.front()->profile().memory_bandwidth;
  const double pack =
      bandwidth > 0.0
          ? 2.0 * static_cast<double>(shape.total_bytes()) / bandwidth
          : 0.0;
  return wire + pack;
}

int Communicator::node_of(int rank) const {
  const int dpn = topology_.profile().devices_per_node;
  if (dpn <= 0) return 0;
  return devices_[static_cast<std::size_t>(rank)]->rank() / dpn;
}

SendvShape Communicator::sendv_shape(
    const std::vector<std::span<const std::uint32_t>>& rows, std::int64_t d,
    int root) const {
  SendvShape shape;
  const std::uint64_t row_bytes = static_cast<std::uint64_t>(d) * sizeof(float);
  const int root_node = node_of(root);

  int max_node = 0;
  for (int r = 0; r < size(); ++r) max_node = std::max(max_node, node_of(r));
  std::vector<std::uint64_t> node_row_sum(static_cast<std::size_t>(max_node) +
                                          1);
  std::vector<int> node_dests(static_cast<std::size_t>(max_node) + 1, 0);
  std::vector<std::vector<int>> node_members(
      static_cast<std::size_t>(max_node) + 1);

  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(r) == root || rows[r].empty()) continue;
    const int node = node_of(static_cast<int>(r));
    if (node == root_node) {
      shape.intra_bytes += rows[r].size() * row_bytes;
      ++shape.intra_messages;
    } else {
      node_row_sum[static_cast<std::size_t>(node)] += rows[r].size();
      ++node_dests[static_cast<std::size_t>(node)];
      node_members[static_cast<std::size_t>(node)].push_back(
          static_cast<int>(r));
    }
  }

  std::vector<std::uint32_t> merged;
  for (int node = 0; node <= max_node; ++node) {
    const auto n = static_cast<std::size_t>(node);
    if (node_dests[n] == 0) continue;
    std::uint64_t union_rows = 0;
    if (node_dests[n] == 1) {
      union_rows = rows[static_cast<std::size_t>(node_members[n][0])].size();
    } else {
      merged.clear();
      for (int member : node_members[n]) {
        const auto& list = rows[static_cast<std::size_t>(member)];
        merged.insert(merged.end(), list.begin(), list.end());
      }
      std::sort(merged.begin(), merged.end());
      union_rows = static_cast<std::uint64_t>(
          std::unique(merged.begin(), merged.end()) - merged.begin());
      // Two or more destinations share the forwarded union: the node's
      // local root redistributes everyone's slice over the intra fabric.
      shape.scatter_bytes =
          std::max(shape.scatter_bytes, node_row_sum[n] * row_bytes);
    }
    shape.inter_bytes += union_rows * row_bytes;
    ++shape.inter_messages;
  }
  return shape;
}

std::vector<sim::Event> Communicator::sendv_rows(
    std::vector<RankPart> parts,
    std::vector<std::span<const std::uint32_t>> rows, std::int64_t d,
    int root, StreamChoice stream, int stage) {
  MGGCN_CHECK(root >= 0 && root < size());
  MGGCN_CHECK(d > 0);
  MGGCN_CHECK_MSG(rows.size() == parts.size(),
                  "sendv_rows needs one row list per rank");
  for (std::size_t r = 0; r < parts.size(); ++r) {
    if (parts[r].buffer == nullptr) continue;
    if (static_cast<int>(r) == root) {
      parts[r].reads.push_back(parts[r].buffer->access());
    } else if (!rows[r].empty()) {
      parts[r].writes.push_back(parts[r].buffer->access());
    }
  }
  if (size() == 1) {
    return launch(std::move(parts), 0, 0, 0.0, "sendv_rows", nullptr, stream,
                  stage);
  }

  std::uint64_t total_rows = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(r) == root) continue;
    total_rows += rows[r].size();
  }
  const SendvShape shape = sendv_shape(rows, d, root);
  const double duration = sendv_rows_seconds(shape);

  const float* src = parts[static_cast<std::size_t>(root)].buffer != nullptr
                         ? parts[static_cast<std::size_t>(root)].buffer->data()
                         : nullptr;
  std::vector<float*> dsts;
  for (auto& part : parts) {
    dsts.push_back(part.buffer != nullptr ? part.buffer->data() : nullptr);
  }

  auto action = [src, dsts = std::move(dsts), rows = std::move(rows), d,
                 root] {
    if (src == nullptr) return;  // phantom-mode buffers carry no storage
    for (std::size_t rank = 0; rank < dsts.size(); ++rank) {
      if (static_cast<int>(rank) == root || dsts[rank] == nullptr) continue;
      float* dst = dsts[rank];
      for (std::size_t i = 0; i < rows[rank].size(); ++i) {
        std::memcpy(dst + static_cast<std::int64_t>(i) * d,
                    src + static_cast<std::int64_t>(rows[rank][i]) * d,
                    static_cast<std::size_t>(d) * sizeof(float));
      }
    }
  };
  return launch(std::move(parts),
                static_cast<std::size_t>(total_rows) *
                    static_cast<std::size_t>(d),
                root, duration, "sendv_rows", std::move(action), stream,
                stage);
}

std::vector<sim::Event> Communicator::allreduce_sum(std::vector<RankPart> parts,
                                                    std::size_t count,
                                                    StreamChoice stream) {
  for (auto& part : parts) {
    if (part.buffer == nullptr) continue;
    part.reads.push_back(part.buffer->access());
    if (size() > 1) part.writes.push_back(part.buffer->access());
  }
  if (size() == 1) {
    return launch(std::move(parts), count, 0, 0.0, "allreduce", nullptr,
                  stream);
  }

  const std::uint64_t bytes = count * sizeof(float);
  const double duration = topology_.allreduce_seconds(bytes, size());

  std::vector<float*> bufs;
  for (auto& part : parts) {
    bufs.push_back(part.buffer != nullptr ? part.buffer->data() : nullptr);
  }

  auto action = [bufs = std::move(bufs), count] {
    if (bufs.empty() || bufs[0] == nullptr) return;
    // Deterministic rank-order reduction into rank 0, then broadcast back.
    for (std::size_t rank = 1; rank < bufs.size(); ++rank) {
      if (bufs[rank] == nullptr) return;
      for (std::size_t i = 0; i < count; ++i) bufs[0][i] += bufs[rank][i];
    }
    for (std::size_t rank = 1; rank < bufs.size(); ++rank) {
      std::memcpy(bufs[rank], bufs[0], count * sizeof(float));
    }
  };
  return launch(std::move(parts), count, /*executor=*/0, duration,
                "allreduce", std::move(action), stream);
}

std::vector<sim::Event> Communicator::reduce_sum(std::vector<RankPart> parts,
                                                 std::size_t count, int root,
                                                 StreamChoice stream) {
  MGGCN_CHECK(root >= 0 && root < size());
  for (std::size_t r = 0; r < parts.size(); ++r) {
    if (parts[r].buffer == nullptr) continue;
    parts[r].reads.push_back(parts[r].buffer->access());
    if (static_cast<int>(r) == root && size() > 1) {
      parts[r].writes.push_back(parts[r].buffer->access());
    }
  }
  if (size() == 1) {
    return launch(std::move(parts), count, 0, 0.0, "reduce", nullptr, stream);
  }

  const std::uint64_t bytes = count * sizeof(float);
  const double duration = topology_.reduce_seconds(bytes, size());

  std::vector<float*> bufs;
  for (auto& part : parts) {
    bufs.push_back(part.buffer != nullptr ? part.buffer->data() : nullptr);
  }

  auto action = [bufs = std::move(bufs), count, root] {
    if (bufs.empty() || bufs[static_cast<std::size_t>(root)] == nullptr)
      return;
    float* dst = bufs[static_cast<std::size_t>(root)];
    for (std::size_t rank = 0; rank < bufs.size(); ++rank) {
      if (static_cast<int>(rank) == root) continue;
      if (bufs[rank] == nullptr) return;
      for (std::size_t i = 0; i < count; ++i) dst[i] += bufs[rank][i];
    }
  };
  return launch(std::move(parts), count, root, duration, "reduce",
                std::move(action), stream);
}

std::vector<sim::Event> Communicator::allgather(
    std::vector<RankPart> parts, const std::vector<std::size_t>& counts,
    StreamChoice stream) {
  MGGCN_CHECK(counts.size() == parts.size());
  for (auto& part : parts) {
    if (part.buffer == nullptr) continue;
    part.reads.push_back(part.buffer->access());
    if (size() > 1) part.writes.push_back(part.buffer->access());
  }
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  if (size() == 1) {
    return launch(std::move(parts), total, 0, 0.0, "allgather", nullptr,
                  stream);
  }

  const double duration =
      topology_.allgather_seconds(total * sizeof(float), size());

  std::vector<float*> bufs;
  for (auto& part : parts) {
    bufs.push_back(part.buffer != nullptr ? part.buffer->data() : nullptr);
  }
  auto action = [bufs = std::move(bufs), counts] {
    if (bufs.empty() || bufs[0] == nullptr) return;
    // Gather every rank's head segment into a scratch image, then write the
    // concatenation back to all ranks (in-place safe for rank order).
    std::size_t total = 0;
    for (const std::size_t c : counts) total += c;
    std::vector<float> image(total);
    std::size_t offset = 0;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      if (bufs[r] == nullptr) return;
      std::memcpy(image.data() + offset, bufs[r], counts[r] * sizeof(float));
      offset += counts[r];
    }
    for (float* dst : bufs) {
      std::memcpy(dst, image.data(), total * sizeof(float));
    }
  };
  return launch(std::move(parts), total, /*executor=*/0, duration,
                "allgather", std::move(action), stream);
}

std::vector<sim::Event> Communicator::barrier(StreamChoice stream) {
  std::vector<RankPart> parts(static_cast<std::size_t>(size()));
  return launch(std::move(parts), 0, 0, topology_.base_latency(), "barrier",
                nullptr, stream);
}

}  // namespace mggcn::comm
