// Exchange-mode registry for the staged-broadcast SpMM.
//
// MG-GCN's baseline exchange broadcasts each rank's *entire* dense block
// every stage (§4.1), even when the consuming tiles read only a few of its
// rows. The compacted exchange (Demirci et al.'s sparsity-aware
// communication, CaPGNN's redundant-transfer avoidance) ships only the
// ghost rows each destination's tile actually gathers:
//
//   - `dense`: always broadcast full blocks (the paper's §4.1 behaviour).
//   - `compact`: always pack + send only the required rows, per
//     destination, via Communicator::sendv_rows.
//   - `auto` (the default): per stage, pick whichever the topology cost
//     model predicts is faster — compaction wins on sparse stages, dense
//     broadcast keeps high-density graphs at exactly their old timings.
//
// Selection mirrors the kernel registry (dense/kernel_policy.hpp):
// set_comm_mode() programmatically, or the MGGCN_COMM environment variable
// ("dense" | "compact" | "auto") read once at first use; an unknown value
// fails loudly so experiment-script typos do not silently change the
// communication volume under study.
#pragma once

#include <optional>
#include <string_view>

namespace mggcn::comm {

enum class CommMode { kDense = 0, kCompact = 1, kAuto = 2 };

inline constexpr int kNumCommModes = 3;

/// Stable lower-case name ("dense" | "compact" | "auto") for logs, CLI,
/// and JSON.
[[nodiscard]] const char* comm_mode_name(CommMode mode);

/// Parses a mode name; nullopt when unknown.
[[nodiscard]] std::optional<CommMode> parse_comm_mode(std::string_view name);

/// The active mode. Defaults to kAuto, overridable once via the MGGCN_COMM
/// environment variable; throws InvalidArgumentError on an unknown
/// MGGCN_COMM value.
[[nodiscard]] CommMode comm_mode();

/// Installs `mode` as the active mode (e.g. from a --comm CLI flag).
void set_comm_mode(CommMode mode);

/// RAII mode override for tests and benches that diff the exchange paths.
class ScopedCommMode {
 public:
  explicit ScopedCommMode(CommMode mode) : previous_(comm_mode()) {
    set_comm_mode(mode);
  }
  ~ScopedCommMode() { set_comm_mode(previous_); }
  ScopedCommMode(const ScopedCommMode&) = delete;
  ScopedCommMode& operator=(const ScopedCommMode&) = delete;

 private:
  CommMode previous_;
};

}  // namespace mggcn::comm
