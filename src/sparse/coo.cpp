#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

namespace mggcn::sparse {

void Coo::symmetrize() {
  const std::int64_t original = nnz();
  reserve(static_cast<std::size_t>(2 * original));
  for (std::int64_t e = 0; e < original; ++e) {
    if (row_idx[static_cast<std::size_t>(e)] !=
        col_idx[static_cast<std::size_t>(e)]) {
      add(col_idx[static_cast<std::size_t>(e)],
          row_idx[static_cast<std::size_t>(e)],
          values[static_cast<std::size_t>(e)]);
    }
  }
}

void Coo::sort_and_merge() {
  std::vector<std::size_t> order(static_cast<std::size_t>(nnz()));
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
    return col_idx[a] < col_idx[b];
  });

  std::vector<std::uint32_t> r;
  std::vector<std::uint32_t> c;
  std::vector<float> v;
  r.reserve(order.size());
  c.reserve(order.size());
  v.reserve(order.size());
  for (std::size_t idx : order) {
    if (!r.empty() && r.back() == row_idx[idx] && c.back() == col_idx[idx]) {
      v.back() += values[idx];
    } else {
      r.push_back(row_idx[idx]);
      c.push_back(col_idx[idx]);
      v.push_back(values[idx]);
    }
  }
  row_idx = std::move(r);
  col_idx = std::move(c);
  values = std::move(v);
}

}  // namespace mggcn::sparse
