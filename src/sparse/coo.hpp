// Coordinate-format sparse matrix: the assembly format for generators and IO.
#pragma once

#include <cstdint>
#include <vector>

namespace mggcn::sparse {

struct Coo {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::uint32_t> row_idx;
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;

  Coo() = default;
  Coo(std::int64_t rows, std::int64_t cols) : rows(rows), cols(cols) {}

  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(row_idx.size());
  }

  void add(std::uint32_t r, std::uint32_t c, float v = 1.0f) {
    row_idx.push_back(r);
    col_idx.push_back(c);
    values.push_back(v);
  }

  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    values.reserve(n);
  }

  /// Adds the reverse of every edge (undirected graphs store both
  /// directions, as the GNN benchmark datasets do).
  void symmetrize();

  /// Sorts by (row, col) and merges duplicates by summation.
  void sort_and_merge();
};

}  // namespace mggcn::sparse
