// SpmmPlan inspector and plan cache. The hot executor loops live in
// spmm_planned.cpp (compiled at -O3 with the kernel ISA flags, like the
// other optimized-kernel TUs); this TU is cold one-time work.
#include "sparse/spmm_plan.hpp"

#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/error.hpp"

namespace mggcn::sparse {

SpmmPlan::Bin SpmmPlan::bin_of_degree(std::int64_t degree) {
  if (degree <= 0) return kEmpty;
  if (degree == 1) return kDeg1;
  if (degree == 2) return kDeg2;
  if (degree == 3) return kDeg3;
  if (degree < kMediumDegree) return kShort;
  if (degree < kLongDegree) return kMedium;
  return kLong;
}

std::uint64_t SpmmPlan::probe_row_ptr(std::span<const std::int64_t> row_ptr) {
  // Eight strided probes plus the endpoints: enough to reject a different
  // matrix that coincidentally landed on the same allocation with the same
  // shape and nnz, at O(1) cost per matches() call.
  const std::size_t n = row_ptr.size();
  std::uint64_t sum = 0x9e3779b97f4a7c15ULL;
  const std::size_t stride = n > 8 ? n / 8 : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    sum = sum * 31 + static_cast<std::uint64_t>(row_ptr[i]);
  }
  sum = sum * 31 + static_cast<std::uint64_t>(row_ptr[n - 1]);
  return sum;
}

SpmmPlan SpmmPlan::inspect(const Csr& a) {
  SpmmPlan plan;
  plan.rows_ = a.rows();
  plan.cols_ = a.cols();
  plan.nnz_ = a.nnz();
  plan.row_ptr_id_ = a.row_ptr().data();
  plan.col_idx_id_ = a.col_idx().data();
  plan.probe_sum_ = probe_row_ptr(a.row_ptr());

  const auto row_ptr = a.row_ptr();
  std::array<std::int64_t, kNumBins> counts{};
  for (std::int64_t r = 0; r < plan.rows_; ++r) {
    const std::int64_t degree = row_ptr[static_cast<std::size_t>(r) + 1] -
                                row_ptr[static_cast<std::size_t>(r)];
    ++counts[bin_of_degree(degree)];
  }
  plan.bin_offsets_[0] = 0;
  for (int b = 0; b < kNumBins; ++b) {
    plan.bin_offsets_[static_cast<std::size_t>(b) + 1] =
        plan.bin_offsets_[static_cast<std::size_t>(b)] + counts[b];
  }

  // Stable counting scatter: within each bin rows stay ascending. The
  // same pass collects the natural-order sweep list (every non-empty row),
  // which is what the executor actually iterates.
  plan.rows_by_bin_.resize(static_cast<std::size_t>(plan.rows_));
  plan.sweep_rows_.reserve(
      static_cast<std::size_t>(plan.rows_ - counts[kEmpty]));
  std::array<std::int64_t, kNumBins> cursor{};
  for (int b = 0; b < kNumBins; ++b) cursor[b] = plan.bin_offsets_[b];
  for (std::int64_t r = 0; r < plan.rows_; ++r) {
    const std::int64_t degree = row_ptr[static_cast<std::size_t>(r) + 1] -
                                row_ptr[static_cast<std::size_t>(r)];
    const Bin bin = bin_of_degree(degree);
    plan.rows_by_bin_[static_cast<std::size_t>(cursor[bin]++)] =
        static_cast<std::uint32_t>(r);
    if (bin != kEmpty) plan.sweep_rows_.push_back(static_cast<std::uint32_t>(r));
  }

  // Ghost set: mark the touched columns, scan the mark array into the
  // sorted distinct list (a counting sort — ascending for free), then turn
  // the marks into ranks and remap every nonzero. O(nnz + cols).
  const auto col_idx = a.col_idx();
  std::vector<std::uint32_t> rank(static_cast<std::size_t>(plan.cols_), 0);
  for (const std::uint32_t c : col_idx) rank[c] = 1;
  std::int64_t distinct = 0;
  for (std::int64_t c = 0; c < plan.cols_; ++c) {
    distinct += static_cast<std::int64_t>(rank[static_cast<std::size_t>(c)]);
  }
  plan.required_cols_.reserve(static_cast<std::size_t>(distinct));
  for (std::int64_t c = 0; c < plan.cols_; ++c) {
    if (rank[static_cast<std::size_t>(c)] == 0) continue;
    rank[static_cast<std::size_t>(c)] =
        static_cast<std::uint32_t>(plan.required_cols_.size());
    plan.required_cols_.push_back(static_cast<std::uint32_t>(c));
  }
  plan.compact_col_idx_.resize(col_idx.size());
  for (std::size_t e = 0; e < col_idx.size(); ++e) {
    plan.compact_col_idx_[e] = rank[col_idx[e]];
  }
  std::uint64_t fp = 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(plan.required_cols_.size());
  for (const std::uint32_t c : plan.required_cols_) {
    fp ^= c + 0x9e3779b97f4a7c15ULL + (fp << 6) + (fp >> 2);
  }
  plan.ghost_fingerprint_ = fp;
  return plan;
}

std::int64_t count_distinct_cols(const Csr& a) {
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(a.cols()), 0);
  for (const std::uint32_t c : a.col_idx()) seen[c] = 1;
  std::int64_t distinct = 0;
  for (const std::uint8_t s : seen) distinct += s;
  return distinct;
}

bool SpmmPlan::matches(const Csr& a) const {
  return rows_ == a.rows() && cols_ == a.cols() && nnz_ == a.nnz() &&
         row_ptr_id_ == a.row_ptr().data() &&
         col_idx_id_ == a.col_idx().data() &&
         probe_sum_ == probe_row_ptr(a.row_ptr());
}

std::span<const std::uint32_t> SpmmPlan::bin_rows(int bin) const {
  MGGCN_CHECK_MSG(bin >= 0 && bin < kNumBins, "bin out of range");
  const auto begin = static_cast<std::size_t>(bin_offsets_[
      static_cast<std::size_t>(bin)]);
  const auto end = static_cast<std::size_t>(bin_offsets_[
      static_cast<std::size_t>(bin) + 1]);
  return std::span<const std::uint32_t>(rows_by_bin_).subspan(begin,
                                                              end - begin);
}

namespace {

/// Process-wide plan cache behind the dispatched `planned` policy. Keyed
/// by the column-index allocation (unique per live nonempty CSR); entries
/// are validated with SpmmPlan::matches() before reuse, so a recycled
/// allocation rebuilds instead of executing a stale plan.
struct PlanCache {
  std::mutex mutex;
  std::unordered_map<const void*, std::shared_ptr<const SpmmPlan>> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

/// Bound on retained plans: 2·P² tiles of the largest supported machine
/// plus headroom. On overflow the cache resets wholesale — rebuilding a
/// few plans beats tracking LRU order on the hot path.
constexpr std::size_t kMaxCachedPlans = 8192;

std::shared_ptr<const SpmmPlan> cached_plan(const Csr& a) {
  const void* key =
      a.nnz() > 0 ? static_cast<const void*>(a.col_idx().data())
                  : static_cast<const void*>(a.row_ptr().data());
  PlanCache& cache = plan_cache();
  {
    std::lock_guard lock(cache.mutex);
    const auto it = cache.map.find(key);
    if (it != cache.map.end() && it->second->matches(a)) {
      ++cache.hits;
      return it->second;
    }
  }
  // Build outside the lock; a concurrent builder of the same key just
  // produces an equivalent plan and the last insert wins.
  auto plan = std::make_shared<const SpmmPlan>(SpmmPlan::inspect(a));
  std::lock_guard lock(cache.mutex);
  ++cache.misses;
  if (cache.map.size() >= kMaxCachedPlans) cache.map.clear();
  cache.map[key] = plan;
  return plan;
}

}  // namespace

namespace planned {

void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta) {
  const std::shared_ptr<const SpmmPlan> plan = cached_plan(a);
  plan->execute(a, b, c, alpha, beta);
}

}  // namespace planned

SpmmPlanCacheStats spmm_plan_cache_stats() {
  PlanCache& cache = plan_cache();
  std::lock_guard lock(cache.mutex);
  return {cache.hits, cache.misses, cache.map.size()};
}

void clear_spmm_plan_cache() {
  PlanCache& cache = plan_cache();
  std::lock_guard lock(cache.mutex);
  cache.map.clear();
  cache.hits = 0;
  cache.misses = 0;
}

sim::KernelCost spmm_inspect_cost(std::int64_t rows, std::int64_t nnz,
                                  std::int64_t cols) {
  sim::KernelCost cost;
  // Counting pass + scatter pass over the 8-byte row pointers, one 4-byte
  // write per row into each of the two row lists (bin-sorted + sweep); no
  // feature traffic, negligible flops. The ghost-set construction adds a
  // mark pass + remap scatter over the 4-byte column indices and a scan
  // over the per-column mark array.
  cost.stream_bytes = 24.0 * static_cast<double>(rows) + 8.0 +
                      12.0 * static_cast<double>(nnz) +
                      5.0 * static_cast<double>(cols);
  cost.flops = 2.0 * static_cast<double>(rows);
  cost.launches = 1;
  return cost;
}

}  // namespace mggcn::sparse
