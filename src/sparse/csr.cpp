#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mggcn::sparse {

Csr::Csr(std::int64_t rows, std::int64_t cols,
         std::vector<std::int64_t> row_ptr, std::vector<std::uint32_t> col_idx,
         std::vector<float> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  MGGCN_CHECK(rows_ >= 0 && cols_ >= 0);
  MGGCN_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  MGGCN_CHECK(col_idx_.size() == values_.size());
  MGGCN_CHECK(row_ptr_.front() == 0 &&
              row_ptr_.back() == static_cast<std::int64_t>(col_idx_.size()));
}

Csr Csr::from_coo(const Coo& coo) {
  const auto n = static_cast<std::size_t>(coo.nnz());
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(coo.rows) + 1, 0);
  for (std::size_t e = 0; e < n; ++e) {
    MGGCN_CHECK(coo.row_idx[e] < coo.rows && coo.col_idx[e] < coo.cols);
    ++row_ptr[coo.row_idx[e] + 1];
  }
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());

  std::vector<std::uint32_t> col_idx(n);
  std::vector<float> values(n);
  std::vector<std::int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (std::size_t e = 0; e < n; ++e) {
    const auto slot = static_cast<std::size_t>(cursor[coo.row_idx[e]]++);
    col_idx[slot] = coo.col_idx[e];
    values[slot] = coo.values[e];
  }

  // Sort each row by column and merge duplicates.
  std::vector<std::uint32_t> merged_cols;
  std::vector<float> merged_vals;
  merged_cols.reserve(n);
  merged_vals.reserve(n);
  std::vector<std::int64_t> merged_ptr(row_ptr.size(), 0);
  std::vector<std::size_t> order;
  for (std::int64_t r = 0; r < coo.rows; ++r) {
    const auto b = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto e =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    order.resize(e - b);
    std::iota(order.begin(), order.end(), b);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return col_idx[x] < col_idx[y]; });
    const auto row_start = static_cast<std::int64_t>(merged_cols.size());
    for (std::size_t idx : order) {
      const bool duplicate =
          static_cast<std::int64_t>(merged_cols.size()) > row_start &&
          merged_cols.back() == col_idx[idx];
      if (duplicate) {
        merged_vals.back() += values[idx];
      } else {
        merged_cols.push_back(col_idx[idx]);
        merged_vals.push_back(values[idx]);
      }
    }
    merged_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(merged_cols.size());
  }

  return Csr(coo.rows, coo.cols, std::move(merged_ptr),
             std::move(merged_cols), std::move(merged_vals));
}

Csr Csr::identity(std::int64_t n) {
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::iota(row_ptr.begin(), row_ptr.end(), std::int64_t{0});
  std::vector<std::uint32_t> col_idx(static_cast<std::size_t>(n));
  std::iota(col_idx.begin(), col_idx.end(), std::uint32_t{0});
  std::vector<float> values(static_cast<std::size_t>(n), 1.0f);
  return Csr(n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
}

Csr Csr::transpose() const {
  std::vector<std::int64_t> t_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (std::uint32_t c : col_idx_) ++t_ptr[c + 1];
  std::partial_sum(t_ptr.begin(), t_ptr.end(), t_ptr.begin());

  std::vector<std::uint32_t> t_cols(col_idx_.size());
  std::vector<float> t_vals(values_.size());
  std::vector<std::int64_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[static_cast<std::size_t>(r)];
         e < row_ptr_[static_cast<std::size_t>(r) + 1]; ++e) {
      const auto c = col_idx_[static_cast<std::size_t>(e)];
      const auto slot = static_cast<std::size_t>(cursor[c]++);
      t_cols[slot] = static_cast<std::uint32_t>(r);
      t_vals[slot] = values_[static_cast<std::size_t>(e)];
    }
  }
  return Csr(cols_, rows_, std::move(t_ptr), std::move(t_cols),
             std::move(t_vals));
}

Csr Csr::tile(std::int64_t rb, std::int64_t re, std::int64_t cb,
              std::int64_t ce) const {
  MGGCN_CHECK(0 <= rb && rb <= re && re <= rows_);
  MGGCN_CHECK(0 <= cb && cb <= ce && ce <= cols_);

  std::vector<std::int64_t> t_ptr;
  t_ptr.reserve(static_cast<std::size_t>(re - rb) + 1);
  t_ptr.push_back(0);
  std::vector<std::uint32_t> t_cols;
  std::vector<float> t_vals;

  for (std::int64_t r = rb; r < re; ++r) {
    const auto b = row_ptr_[static_cast<std::size_t>(r)];
    const auto e = row_ptr_[static_cast<std::size_t>(r) + 1];
    // Rows are column-sorted, so the tile's entries form a contiguous run.
    const auto* cols_begin = col_idx_.data() + b;
    const auto* cols_end = col_idx_.data() + e;
    const auto lo = std::lower_bound(cols_begin, cols_end,
                                     static_cast<std::uint32_t>(cb));
    const auto hi = std::lower_bound(lo, cols_end,
                                     static_cast<std::uint32_t>(ce));
    for (const auto* it = lo; it != hi; ++it) {
      t_cols.push_back(static_cast<std::uint32_t>(*it - cb));
      t_vals.push_back(values_[static_cast<std::size_t>(it - col_idx_.data())]);
    }
    t_ptr.push_back(static_cast<std::int64_t>(t_cols.size()));
  }
  return Csr(re - rb, ce - cb, std::move(t_ptr), std::move(t_cols),
             std::move(t_vals));
}

Csr Csr::permute_symmetric(std::span<const std::uint32_t> perm) const {
  MGGCN_CHECK_MSG(rows_ == cols_, "symmetric permutation needs a square matrix");
  MGGCN_CHECK(perm.size() == static_cast<std::size_t>(rows_));

  Coo coo(rows_, cols_);
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[static_cast<std::size_t>(r)];
         e < row_ptr_[static_cast<std::size_t>(r) + 1]; ++e) {
      coo.add(perm[static_cast<std::size_t>(r)],
              perm[col_idx_[static_cast<std::size_t>(e)]],
              values_[static_cast<std::size_t>(e)]);
    }
  }
  return from_coo(coo);
}

std::vector<double> Csr::column_sums() const {
  std::vector<double> sums(static_cast<std::size_t>(cols_), 0.0);
  for (std::size_t e = 0; e < col_idx_.size(); ++e) {
    sums[col_idx_[e]] += values_[e];
  }
  return sums;
}

Csr Csr::normalize_gcn() const {
  const std::vector<double> sums = column_sums();
  Csr out = *this;
  for (std::size_t e = 0; e < out.col_idx_.size(); ++e) {
    const double s = sums[out.col_idx_[e]];
    out.values_[e] = s > 0.0 ? static_cast<float>(out.values_[e] / s) : 0.0f;
  }
  return out;
}

Coo Csr::to_coo() const {
  Coo coo(rows_, cols_);
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[static_cast<std::size_t>(r)];
         e < row_ptr_[static_cast<std::size_t>(r) + 1]; ++e) {
      coo.add(static_cast<std::uint32_t>(r),
              col_idx_[static_cast<std::size_t>(e)],
              values_[static_cast<std::size_t>(e)]);
    }
  }
  return coo;
}

}  // namespace mggcn::sparse
