// Inspector–executor SpMM (the `planned` kernel policy).
//
// The adjacency tiles are static for an entire training run, yet the
// generic kernels re-derive each row's shape from raw CSR on every one of
// the ~2·L·P²·epochs launches. SpmmPlan splits that work: an *inspector*
// analyzes a CSR matrix once and emits a degree-binned execution plan —
// empty rows elided into a bulk zero/scale pass, and the remaining rows
// recorded as a natural-order sweep list the *executor* walks with a
// degree-dispatched inner loop (the edge-batched panel path for ordinary
// rows, a deep-prefetch variant for hub rows at or above kLongDegree).
// The bin-sorted row list is also retained — it drives the empty-row
// elision, per-bin stats, and tests — but execution deliberately stays in
// natural row order: bin-partitioned multi-sweep execution was measured
// consistently slower here because splitting one pass over B's gather
// working set into several destroys the cache locality between
// consecutive rows' neighborhoods. The plan captures structure only
// (row → bin assignment and the sweep order); the executor re-reads
// `values()` on every call, so value mutation (e.g. `edge_softmax`
// refreshing attention weights) never invalidates a plan.
//
// Numerical contract: every executor sub-kernel performs the same IEEE
// operation sequence per output element as `naive::spmm` (first-nonzero
// beta fusion, edges accumulated one at a time in CSR order), so the
// planned policy is bit-identical to the naive and tiled policies at
// beta == 0 — the plan only reorders *rows*, never the per-element math.
//
// Amortization surfaces:
//   - `core::TileGrid` lazily owns one plan per tile; `core::DistSpmm`
//     executes through them and charges a one-time `sim::TaskKind::kInspect`
//     task per tile so simulated timelines show the preprocessing honestly.
//   - The dispatched `sparse::spmm` entry point under the `planned` policy
//     consults a process-wide structure-keyed plan cache, so serial users
//     (reference trainer, GAT, minibatch baselines) amortize across calls
//     without holding a plan themselves.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"
#include "sparse/csr.hpp"

namespace mggcn::sparse {

class SpmmPlan {
 public:
  /// Degree bins, ordered. kEmpty rows are elided from the sweep into a
  /// bulk zero/scale pass; kDeg1..kMedium run the standard edge-batched
  /// panel path; kLong (>= 256) marks hub rows, which the executor hands
  /// to a deep-prefetch inner loop for memory-level parallelism.
  enum Bin {
    kEmpty = 0,
    kDeg1,
    kDeg2,
    kDeg3,
    kShort,
    kMedium,
    kLong,
    kNumBins,
  };

  /// First degree of the kMedium bin.
  static constexpr std::int64_t kMediumDegree = 8;
  /// First degree of the kLong bin.
  static constexpr std::int64_t kLongDegree = 256;

  SpmmPlan() = default;

  /// The inspector: one O(rows) pass over the row pointers. Safe to call
  /// on any CSR matrix, including all-empty and zero-row ones.
  [[nodiscard]] static SpmmPlan inspect(const Csr& a);

  /// Which bin a row of this degree lands in.
  [[nodiscard]] static Bin bin_of_degree(std::int64_t degree);

  /// The executor: C = alpha * A * B + beta * C. `a` must be the matrix
  /// (or a structural twin of the matrix) this plan was built from —
  /// checked via matches(); throws InvalidArgumentError otherwise.
  void execute(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
               float alpha, float beta) const;

  /// O(1) structural-compatibility check: shape, nnz, the CSR arrays'
  /// identity, and strided row-pointer probes. Value changes pass (the
  /// executor re-reads values); structural changes are rejected.
  [[nodiscard]] bool matches(const Csr& a) const;

  [[nodiscard]] bool empty() const { return rows_ == 0 && cols_ == 0; }
  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t nnz() const { return nnz_; }

  /// Rows assigned to `bin`, ascending (contiguous slice of the sorted
  /// row list).
  [[nodiscard]] std::span<const std::uint32_t> bin_rows(int bin) const;
  [[nodiscard]] std::int64_t bin_count(int bin) const {
    return static_cast<std::int64_t>(bin_rows(bin).size());
  }

  /// The non-empty rows in natural (ascending) order — the list the
  /// executor sweeps. Empty rows are handled by the bulk pass instead.
  [[nodiscard]] std::span<const std::uint32_t> sweep_rows() const {
    return sweep_rows_;
  }

  // --- Ghost set (compacted-exchange support) ---------------------------
  // The inspector also records which columns of B the tile actually
  // gathers: the sorted distinct column list ("ghost rows" of the source
  // block) plus a per-nonzero remap of col_idx into positions of that
  // list. A producer rank packs exactly ghost_rows() of its block for this
  // consumer, and execute_compact() indexes the packed buffer through the
  // remap — same math, ghost_count()/cols() of the communication volume.

  /// Sorted distinct columns with at least one nonzero — the rows of the
  /// source block this tile needs.
  [[nodiscard]] std::span<const std::uint32_t> ghost_rows() const {
    return required_cols_;
  }
  [[nodiscard]] std::int64_t ghost_count() const {
    return static_cast<std::int64_t>(required_cols_.size());
  }
  /// Required-row density in [0, 1]: ghost_count() / cols().
  [[nodiscard]] double ghost_density() const {
    return cols_ > 0 ? static_cast<double>(ghost_count()) /
                           static_cast<double>(cols_)
                     : 0.0;
  }
  /// O(1) identity of the ghost set (hash of the sorted list + its size);
  /// two tiles with equal fingerprints need the same source rows with
  /// overwhelming probability.
  [[nodiscard]] std::uint64_t ghost_fingerprint() const {
    return ghost_fingerprint_;
  }

  /// The executor over a *packed* B: `b` holds only the ghost rows, in
  /// ghost_rows() order (b.rows == ghost_count()). Bit-identical to
  /// execute() fed the full source block — the remap changes which buffer
  /// row an edge gathers, never the per-element operation sequence.
  void execute_compact(const Csr& a, dense::ConstMatrixView b,
                       dense::MatrixView c, float alpha, float beta) const;

  /// Host-side bytes the plan itself occupies (row lists + ghost map).
  [[nodiscard]] std::uint64_t plan_bytes() const {
    return (static_cast<std::uint64_t>(rows_by_bin_.size()) +
            static_cast<std::uint64_t>(sweep_rows_.size()) +
            static_cast<std::uint64_t>(required_cols_.size()) +
            static_cast<std::uint64_t>(compact_col_idx_.size())) * 4;
  }

  /// Bytes of the ghost-map structures alone (device-memory accounting of
  /// the compacted exchange: the ghost list + the remapped column indices).
  [[nodiscard]] std::uint64_t ghost_bytes() const {
    return (static_cast<std::uint64_t>(required_cols_.size()) +
            static_cast<std::uint64_t>(compact_col_idx_.size())) * 4;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t nnz_ = 0;
  /// Identity + probe fingerprint of the CSR arrays the plan was built
  /// from; see matches().
  const void* row_ptr_id_ = nullptr;
  const void* col_idx_id_ = nullptr;
  std::uint64_t probe_sum_ = 0;
  /// Rows sorted by bin; bin b occupies [bin_offsets_[b], bin_offsets_[b+1]).
  std::array<std::int64_t, kNumBins + 1> bin_offsets_{};
  std::vector<std::uint32_t> rows_by_bin_;
  /// Non-empty rows in natural order (the executor's sweep schedule).
  std::vector<std::uint32_t> sweep_rows_;
  /// Sorted distinct columns (the ghost-row list) and the per-nonzero
  /// remap of col_idx into positions of that list, in CSR edge order.
  std::vector<std::uint32_t> required_cols_;
  std::vector<std::uint32_t> compact_col_idx_;
  std::uint64_t ghost_fingerprint_ = 0;

  [[nodiscard]] static std::uint64_t probe_row_ptr(
      std::span<const std::int64_t> row_ptr);
};

/// The `planned` policy backend registered in the sparse::spmm dispatch
/// table: looks `a` up in a process-wide plan cache (building on miss) and
/// executes through the cached plan. Callers that own their matrices for
/// many calls (TileGrid) hold plans directly and skip the cache.
namespace planned {
void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta);
}  // namespace planned

/// Cache bookkeeping, exposed for tests and benches.
struct SpmmPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};
[[nodiscard]] SpmmPlanCacheStats spmm_plan_cache_stats();
void clear_spmm_plan_cache();

/// Cost of the one-time inspection of a tile: a sequential sweep over the
/// row pointers (counting pass + scatter of the sorted row list), plus the
/// ghost-set construction (mark pass over col_idx, scan over the mark
/// array, remap scatter) when `nnz`/`cols` are given. No feature traffic.
/// Charged once per tile as sim::TaskKind::kInspect.
[[nodiscard]] sim::KernelCost spmm_inspect_cost(std::int64_t rows,
                                                std::int64_t nnz = 0,
                                                std::int64_t cols = 0);

/// Number of distinct column indices of `a` (the size of its ghost set),
/// without building a plan: one O(nnz + cols) mark-and-count pass. Used by
/// memory accounting, which must not trigger the lazy plan build (plans
/// are charged as kInspect tasks on the simulated timeline).
[[nodiscard]] std::int64_t count_distinct_cols(const Csr& a);

}  // namespace mggcn::sparse
