#include "sparse/spmm.hpp"

#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"

namespace mggcn::sparse {

namespace {

void check_spmm_shapes(const Csr& a, dense::ConstMatrixView b,
                       dense::MatrixView c) {
  MGGCN_CHECK_MSG(a.cols() == b.rows, "spmm inner dimensions must agree");
  MGGCN_CHECK_MSG(a.rows() == c.rows && b.cols == c.cols,
                  "spmm output shape mismatch");
}

}  // namespace

namespace naive {

void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta) {
  check_spmm_shapes(a, b, c);
  const std::int64_t d = b.cols;
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float* out = c.row(r);
    std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
    const std::int64_t e_end = row_ptr[static_cast<std::size_t>(r) + 1];
    if (beta == 0.0f) {
      if (e == e_end) {
        for (std::int64_t j = 0; j < d; ++j) out[j] = 0.0f;
        continue;
      }
      // Initialize the output row from the first nonzero instead of a
      // separate zeroing pass (bit-identical to the tiled path).
      const float w = alpha * values[static_cast<std::size_t>(e)];
      const float* src = b.row(col_idx[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < d; ++j) out[j] = w * src[j];
      ++e;
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < d; ++j) out[j] *= beta;
    }
    for (; e < e_end; ++e) {
      const float w = alpha * values[static_cast<std::size_t>(e)];
      const float* src = b.row(col_idx[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < d; ++j) {
        out[j] += w * src[j];
      }
    }
  }
}

}  // namespace naive

// tiled::spmm lives in spmm_tiled.cpp and planned::spmm (the cache-backed
// inspector-executor wrapper) in spmm_plan.cpp / spmm_planned.cpp.

namespace {

SpmmFn* spmm_table() {
  static SpmmFn registered[dense::kNumKernelPolicies] = {
      &naive::spmm, &tiled::spmm, &planned::spmm};
  return registered;
}

}  // namespace

void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta) {
  spmm_table()[static_cast<int>(dense::kernel_policy())](a, b, c, alpha, beta);
}

void register_spmm(dense::KernelPolicy policy, SpmmFn fn) {
  MGGCN_CHECK_MSG(fn != nullptr, "spmm backend must be non-null");
  spmm_table()[static_cast<int>(policy)] = fn;
}

sim::KernelCost spmm_cost(std::int64_t nnz, std::int64_t out_rows,
                          std::int64_t src_rows, std::int64_t d) {
  sim::KernelCost cost;
  // CSR structure: 4B column index + 4B value per nonzero, 8B per row offset.
  cost.stream_bytes = 8.0 * static_cast<double>(nnz) +
                      8.0 * static_cast<double>(out_rows) +
                      // output rows written (and read for the += update).
                      8.0 * static_cast<double>(out_rows) *
                          static_cast<double>(d);
  // Feature rows gathered at random from the source tile.
  cost.gather_bytes =
      4.0 * static_cast<double>(nnz) * static_cast<double>(d);
  cost.gather_working_set =
      4.0 * static_cast<double>(src_rows) * static_cast<double>(d);
  cost.flops = 2.0 * static_cast<double>(nnz) * static_cast<double>(d);
  cost.launches = 1;
  return cost;
}

sim::KernelCost spmm_cost(const Csr& a, std::int64_t d) {
  return spmm_cost(a.nnz(), a.rows(), a.cols(), d);
}

}  // namespace mggcn::sparse
