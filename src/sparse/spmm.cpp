#include "sparse/spmm.hpp"

#include "util/error.hpp"

namespace mggcn::sparse {

void spmm(const Csr& a, dense::ConstMatrixView b, dense::MatrixView c,
          float alpha, float beta) {
  MGGCN_CHECK_MSG(a.cols() == b.rows, "spmm inner dimensions must agree");
  MGGCN_CHECK_MSG(a.rows() == c.rows && b.cols == c.cols,
                  "spmm output shape mismatch");
  const std::int64_t d = b.cols;
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float* out = c.row(r);
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < d; ++j) out[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < d; ++j) out[j] *= beta;
    }
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      const float w = alpha * values[static_cast<std::size_t>(e)];
      const float* src = b.row(col_idx[static_cast<std::size_t>(e)]);
      for (std::int64_t j = 0; j < d; ++j) {
        out[j] += w * src[j];
      }
    }
  }
}

sim::KernelCost spmm_cost(std::int64_t nnz, std::int64_t out_rows,
                          std::int64_t src_rows, std::int64_t d) {
  sim::KernelCost cost;
  // CSR structure: 4B column index + 4B value per nonzero, 8B per row offset.
  cost.stream_bytes = 8.0 * static_cast<double>(nnz) +
                      8.0 * static_cast<double>(out_rows) +
                      // output rows written (and read for the += update).
                      8.0 * static_cast<double>(out_rows) *
                          static_cast<double>(d);
  // Feature rows gathered at random from the source tile.
  cost.gather_bytes =
      4.0 * static_cast<double>(nnz) * static_cast<double>(d);
  cost.gather_working_set =
      4.0 * static_cast<double>(src_rows) * static_cast<double>(d);
  cost.flops = 2.0 * static_cast<double>(nnz) * static_cast<double>(d);
  cost.launches = 1;
  return cost;
}

sim::KernelCost spmm_cost(const Csr& a, std::int64_t d) {
  return spmm_cost(a.nnz(), a.rows(), a.cols(), d);
}

}  // namespace mggcn::sparse
