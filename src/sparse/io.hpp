// Binary sparse-matrix IO — the stand-in for the PIGO library the paper uses
// for fast graph loading (§6). The format is a flat little-endian dump:
//
//   magic "MGCSR1\0\0" | rows i64 | cols i64 | nnz i64
//   row_ptr  (rows+1) x i64
//   col_idx  nnz x u32
//   values   nnz x f32
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace mggcn::sparse {

void write_csr(const Csr& matrix, const std::string& path);
[[nodiscard]] Csr read_csr(const std::string& path);

/// Reads/writes an edge-list text file ("u v" per line, comments with '#'),
/// for interoperability with common dataset dumps.
[[nodiscard]] Coo read_edge_list(const std::string& path,
                                 std::int64_t num_vertices);
void write_edge_list(const Csr& matrix, const std::string& path);

/// Reads a MatrixMarket coordinate file (the other format PIGO ingests):
/// supports `matrix coordinate (real|pattern) (general|symmetric)`.
/// 1-based indices are converted; symmetric files are expanded.
[[nodiscard]] Coo read_matrix_market(const std::string& path);
void write_matrix_market(const Csr& matrix, const std::string& path);

}  // namespace mggcn::sparse
