#include "sparse/sddmm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mggcn::sparse {

Csr sddmm(const Csr& pattern, dense::ConstMatrixView u,
          dense::ConstMatrixView v) {
  MGGCN_CHECK_MSG(u.rows == pattern.rows() && v.rows == pattern.cols(),
                  "sddmm dense factors must cover the pattern");
  MGGCN_CHECK_MSG(u.cols == v.cols, "sddmm factor widths must agree");
  const std::int64_t d = u.cols;

  Csr out = pattern;
  const auto row_ptr = out.row_ptr();
  const auto col_idx = out.col_idx();
  auto values = out.values_mutable();
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    const float* ur = u.row(r);
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      const float* vc = v.row(col_idx[static_cast<std::size_t>(e)]);
      float dot = 0.0f;
      for (std::int64_t j = 0; j < d; ++j) {
        dot += ur[j] * vc[j];
      }
      values[static_cast<std::size_t>(e)] *= dot;
    }
  }
  return out;
}

void edge_softmax(Csr& matrix) {
  const auto row_ptr = matrix.row_ptr();
  auto values = matrix.values_mutable();
  for (std::int64_t r = 0; r < matrix.rows(); ++r) {
    const auto begin = static_cast<std::size_t>(
        row_ptr[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(
        row_ptr[static_cast<std::size_t>(r) + 1]);
    if (begin == end) continue;

    float max_value = values[begin];
    for (std::size_t e = begin + 1; e < end; ++e) {
      max_value = std::max(max_value, values[e]);
    }
    double denom = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      denom += std::exp(static_cast<double>(values[e] - max_value));
    }
    for (std::size_t e = begin; e < end; ++e) {
      values[e] = static_cast<float>(
          std::exp(static_cast<double>(values[e] - max_value)) / denom);
    }
  }
}

void leaky_relu_values(Csr& matrix, float negative_slope) {
  for (auto& value : matrix.values_mutable()) {
    if (value < 0.0f) value *= negative_slope;
  }
}

sim::KernelCost sddmm_cost(std::int64_t nnz, std::int64_t rows,
                           std::int64_t cols, std::int64_t d) {
  sim::KernelCost cost;
  cost.stream_bytes = 8.0 * static_cast<double>(nnz) +   // indices + values
                      8.0 * static_cast<double>(rows);   // row offsets
  cost.gather_bytes = 8.0 * static_cast<double>(nnz) * d;  // U and V rows
  cost.gather_working_set =
      4.0 * static_cast<double>(rows + cols) * static_cast<double>(d);
  cost.flops = 2.0 * static_cast<double>(nnz) * d;
  cost.launches = 1;
  return cost;
}

}  // namespace mggcn::sparse
