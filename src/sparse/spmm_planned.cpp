// SpmmPlan executor (the hot half of the `planned` kernel policy). Kept in
// its own translation unit so it can be compiled at -O3 with the kernel ISA
// flags (see CMakeLists.txt) while the inspector TU keeps default flags.
//
// Every path preserves the naive reference's per-element IEEE operation
// sequence (first-nonzero beta fusion, edges accumulated one at a time in
// CSR order), so the planned policy stays bit-identical to naive and tiled
// at beta == 0. The speedup comes from *row* scheduling only: the plan
// elides empty rows into one bulk zero/scale pass, and the executor makes a
// single sweep over the remaining rows in natural order — the beta mode is
// hoisted out of the loops as a template parameter, the prefetch stream
// runs ahead across row boundaries instead of re-deriving each row's shape,
// and hub rows (degree >= SpmmPlan::kLongDegree) switch to a deep-prefetch
// inner loop that pulls whole B rows ahead of the gather.
//
// Natural order is deliberate: executing the plan bin by bin (one sweep per
// degree class) was measured consistently slower on both uniform and skewed
// graphs, because consecutive rows' neighborhoods overlap in B and the
// partitioned sweeps forfeit that cache reuse. The bins still matter — they
// drive the empty-row elision, the per-row hub dispatch, and the plan's
// introspection API — but row traversal stays monotone.
#include <algorithm>
#include <cstdint>

#include "sparse/spmm_plan.hpp"
#include "util/error.hpp"

namespace mggcn::sparse {

namespace {

/// Column-panel width, matching the tiled policy: the C-row slice and the
/// in-flight gathered B slices stay L1-resident per pass.
constexpr std::int64_t kPanelD = 512;

/// Edge batch of the sweep loop (independent gather streams per element),
/// matching the tiled policy's batch width.
constexpr std::int64_t kEdgeBatch = 4;

/// How many edges ahead of the accumulation the prefetch stream runs.
constexpr std::int64_t kPrefetchDistance = 8;

/// Short rows prefetch whole upcoming rows (kRowPrefetch rows down the
/// sweep) instead of tracking an edge cursor: a one-edge row is consumed
/// in a few cycles, so only a row-granular lookahead runs deep enough to
/// hide the gather latency.
constexpr std::int64_t kRowPrefetch = 8;
constexpr std::int64_t kRowPrefetchEdgeCap = 8;


/// Hub rows gather hundreds of B rows that are each used exactly once, so
/// the two-line prefetch of the standard path leaves most of a wide B row
/// cold. The hub loop prefetches up to kHubPrefetchLines cache lines of
/// each upcoming B row (the whole row for d <= 128) at a deeper distance.
constexpr std::int64_t kHubPrefetchDistance = 16;
constexpr int kHubPrefetchLines = 8;
constexpr std::int64_t kHubEdgeBatch = 8;

/// How the output row is initialized, decided once per call and hoisted
/// out of every row loop as a template parameter.
enum class BetaMode { kZero, kOne, kScale };

struct Ctx {
  const std::int64_t* __restrict row_ptr;
  std::int64_t nnz;
  const std::uint32_t* __restrict col_idx;
  const float* __restrict values;
  const float* __restrict b;
  std::int64_t ldb;
  float* __restrict c;
  std::int64_t ldc;
  std::int64_t j0;
  std::int64_t dw;
  float alpha;
  float beta;
};

/// Prefetches up to `Lines` cache lines (16 floats each) of the B row
/// gathered by edge `e`, clamped to the panel width.
template <int Lines>
inline void prefetch_b_row(const Ctx& ctx, std::int64_t e) {
  const float* row =
      ctx.b + static_cast<std::int64_t>(ctx.col_idx[e]) * ctx.ldb + ctx.j0;
  __builtin_prefetch(row, 0, 1);
  for (int l = 1; l < Lines; ++l) {
    if (ctx.dw > static_cast<std::int64_t>(l) * 16) {
      __builtin_prefetch(row + static_cast<std::int64_t>(l) * 16, 0, 1);
    }
  }
}

/// Prefetches the B row gathered by the edge `ahead` positions past `e` in
/// the sweep's edge order: when the distance runs past the current row's
/// edges it continues into the following rows of the sweep list, so the
/// prefetch stream never stalls at a row boundary.
template <int Lines>
inline void prefetch_edge_ahead(const Ctx& ctx,
                                const std::uint32_t* __restrict rows,
                                std::int64_t count, std::int64_t i,
                                std::int64_t e, std::int64_t e_end,
                                std::int64_t ahead) {
  std::int64_t target = e + ahead;
  while (target >= e_end) {
    const std::int64_t overflow = target - e_end;
    if (++i >= count) return;
    const std::int64_t row = rows[i];
    target = ctx.row_ptr[row] + overflow;
    e_end = ctx.row_ptr[row + 1];
  }
  prefetch_b_row<Lines>(ctx, target);
}

/// Prefetches the B rows gathered by the row `kRowPrefetch` positions down
/// the sweep list, capped at kRowPrefetchEdgeCap edges so a hub row cannot
/// flood the prefetch queue.
inline void prefetch_row_ahead(const Ctx& ctx,
                               const std::uint32_t* __restrict rows,
                               std::int64_t count, std::int64_t i) {
  const std::int64_t target = i + kRowPrefetch;
  if (target >= count) return;
  const std::int64_t e = ctx.row_ptr[rows[target]];
  const std::int64_t e_end =
      std::min(ctx.row_ptr[rows[target] + 1], e + kRowPrefetchEdgeCap);
  for (std::int64_t q = e; q < e_end; ++q) prefetch_b_row<2>(ctx, q);
}

/// Empty rows never touch the edge arrays: one bulk zero (beta == 0) or
/// scale (general beta) pass, nothing at all for beta == 1.
template <BetaMode M>
void run_empty(const Ctx& ctx, const std::uint32_t* __restrict rows,
               std::int64_t count) {
  if constexpr (M == BetaMode::kOne) {
    (void)ctx;
    (void)rows;
    (void)count;
    return;
  } else {
    for (std::int64_t i = 0; i < count; ++i) {
      float* __restrict out = ctx.c + rows[i] * ctx.ldc + ctx.j0;
      for (std::int64_t j = 0; j < ctx.dw; ++j) {
        if constexpr (M == BetaMode::kZero) {
          out[j] = 0.0f;
        } else {
          out[j] *= ctx.beta;
        }
      }
    }
  }
}

/// One non-empty row of the sweep: first-nonzero beta fusion, then the
/// edge-batched accumulation (`Batch` independent gather streams, prefetch
/// `Distance` edges ahead pulling `Lines` cache lines per B row). The
/// per-element accumulation order is identical to the naive reference.
template <BetaMode M, std::int64_t DW, std::int64_t Batch,
          std::int64_t Distance, int Lines>
inline void run_row(const Ctx& ctx, const std::uint32_t* __restrict rows,
                    std::int64_t count, std::int64_t i) {
  const std::int64_t dw = DW != 0 ? DW : ctx.dw;
  std::int64_t e = ctx.row_ptr[rows[i]];
  const std::int64_t e_end = ctx.row_ptr[rows[i] + 1];
  float* __restrict out = ctx.c + rows[i] * ctx.ldc + ctx.j0;
  if constexpr (M == BetaMode::kZero) {
    const float w = ctx.alpha * ctx.values[e];
    const float* __restrict s = ctx.b + ctx.col_idx[e] * ctx.ldb + ctx.j0;
    for (std::int64_t j = 0; j < dw; ++j) out[j] = w * s[j];
    ++e;
  } else if constexpr (M == BetaMode::kScale) {
    for (std::int64_t j = 0; j < dw; ++j) out[j] *= ctx.beta;
  }
  for (; e + Batch <= e_end; e += Batch) {
    for (std::int64_t q = 0; q < Batch; ++q) {
      prefetch_edge_ahead<Lines>(ctx, rows, count, i, e + q, e_end, Distance);
    }
    float w[Batch];
    const float* __restrict s[Batch];
    for (std::int64_t q = 0; q < Batch; ++q) {
      w[q] = ctx.alpha * ctx.values[e + q];
      s[q] = ctx.b + ctx.col_idx[e + q] * ctx.ldb + ctx.j0;
    }
    for (std::int64_t j = 0; j < dw; ++j) {
      float v = out[j];
      for (std::int64_t q = 0; q < Batch; ++q) v += w[q] * s[q][j];
      out[j] = v;
    }
  }
  for (; e < e_end; ++e) {
    prefetch_edge_ahead<Lines>(ctx, rows, count, i, e, e_end, Distance);
    const float w = ctx.alpha * ctx.values[e];
    const float* __restrict s = ctx.b + ctx.col_idx[e] * ctx.ldb + ctx.j0;
    for (std::int64_t j = 0; j < dw; ++j) out[j] += w * s[j];
  }
}

/// The sweep: every non-empty row in natural order, hub rows dispatched to
/// the deep-prefetch variant. The branch costs one predictable compare per
/// row and buys each degree class its tuned inner loop without giving up
/// the locality between consecutive rows.
/// One short row (degree < kMediumDegree): plain edge loop, row-granular
/// look-ahead prefetch. Same per-element operation sequence as the others.
template <BetaMode M, std::int64_t DW>
inline void run_row_short(const Ctx& ctx, const std::uint32_t* __restrict rows,
                          std::int64_t count, std::int64_t i) {
  const std::int64_t dw = DW != 0 ? DW : ctx.dw;
  prefetch_row_ahead(ctx, rows, count, i);
  std::int64_t e = ctx.row_ptr[rows[i]];
  const std::int64_t e_end = ctx.row_ptr[rows[i] + 1];
  float* __restrict out = ctx.c + rows[i] * ctx.ldc + ctx.j0;
  if constexpr (M == BetaMode::kZero) {
    const float w = ctx.alpha * ctx.values[e];
    const float* __restrict s = ctx.b + ctx.col_idx[e] * ctx.ldb + ctx.j0;
    if (e + 1 == e_end) {
      for (std::int64_t j = 0; j < dw; ++j) out[j] = w * s[j];
      return;
    }
    for (std::int64_t j = 0; j < dw; ++j) out[j] = w * s[j];
    ++e;
  } else if constexpr (M == BetaMode::kScale) {
    for (std::int64_t j = 0; j < dw; ++j) out[j] *= ctx.beta;
  }
  for (; e < e_end; ++e) {
    const float w = ctx.alpha * ctx.values[e];
    const float* __restrict s = ctx.b + ctx.col_idx[e] * ctx.ldb + ctx.j0;
    for (std::int64_t j = 0; j < dw; ++j) out[j] += w * s[j];
  }
}

template <BetaMode M, std::int64_t DW>
void run_sweep(const Ctx& ctx, const std::uint32_t* __restrict rows,
               std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t degree =
        ctx.row_ptr[rows[i] + 1] - ctx.row_ptr[rows[i]];
    if (degree < SpmmPlan::kMediumDegree) {
      run_row_short<M, DW>(ctx, rows, count, i);
    } else if (degree >= SpmmPlan::kLongDegree) {
      run_row<M, DW, kEdgeBatch, kHubPrefetchDistance, kHubPrefetchLines>(
          ctx, rows, count, i);
    } else {
      run_row<M, DW, kEdgeBatch, kPrefetchDistance, 2>(ctx, rows, count, i);
    }
  }
}

template <BetaMode M, std::int64_t DW>
void run_plan_dw(const SpmmPlan& plan, const Ctx& ctx) {
  {
    const auto rows = plan.bin_rows(SpmmPlan::kEmpty);
    run_empty<M>(ctx, rows.data(), static_cast<std::int64_t>(rows.size()));
  }
  {
    const auto rows = plan.sweep_rows();
    run_sweep<M, DW>(ctx, rows.data(), static_cast<std::int64_t>(rows.size()));
  }
}

/// Width dispatch: the common GCN feature dimensions get fully specialized
/// instantiations (the inner loops unroll with compile-time trip counts —
/// worth several percent on short rows, where loop overhead is the cost),
/// any other width takes the runtime-dw fallback.
template <BetaMode M>
void run_plan(const SpmmPlan& plan, const Ctx& ctx) {
  switch (ctx.dw) {
    case 32: return run_plan_dw<M, 32>(plan, ctx);
    case 64: return run_plan_dw<M, 64>(plan, ctx);
    case 128: return run_plan_dw<M, 128>(plan, ctx);
    case 256: return run_plan_dw<M, 256>(plan, ctx);
    case 512: return run_plan_dw<M, 512>(plan, ctx);
    default: return run_plan_dw<M, 0>(plan, ctx);
  }
}

/// The shared panel loop of both executors; `col_idx` selects which
/// gather map indexes B (the original CSR indices, or the plan's compact
/// remap over a packed B). Everything downstream of the map is identical,
/// so the two entry points are bit-identical by construction.
void run_panels(const SpmmPlan& plan, const Csr& a,
                const std::uint32_t* col_idx, dense::ConstMatrixView b,
                dense::MatrixView c, float alpha, float beta) {
  const std::int64_t d = b.cols;
  Ctx ctx;
  ctx.row_ptr = a.row_ptr().data();
  ctx.nnz = a.nnz();
  ctx.col_idx = col_idx;
  ctx.values = a.values().data();
  ctx.b = b.data;
  ctx.ldb = d;
  ctx.c = c.data;
  ctx.ldc = d;
  ctx.alpha = alpha;
  ctx.beta = beta;

  for (std::int64_t j0 = 0; j0 < d; j0 += kPanelD) {
    ctx.j0 = j0;
    ctx.dw = std::min(kPanelD, d - j0);
    if (beta == 0.0f) {
      run_plan<BetaMode::kZero>(plan, ctx);
    } else if (beta == 1.0f) {
      run_plan<BetaMode::kOne>(plan, ctx);
    } else {
      run_plan<BetaMode::kScale>(plan, ctx);
    }
  }
}

}  // namespace

void SpmmPlan::execute(const Csr& a, dense::ConstMatrixView b,
                       dense::MatrixView c, float alpha, float beta) const {
  MGGCN_CHECK_MSG(a.cols() == b.rows, "spmm inner dimensions must agree");
  MGGCN_CHECK_MSG(a.rows() == c.rows && b.cols == c.cols,
                  "spmm output shape mismatch");
  MGGCN_CHECK_MSG(matches(a), "execution plan does not match this matrix");
  run_panels(*this, a, a.col_idx().data(), b, c, alpha, beta);
}

void SpmmPlan::execute_compact(const Csr& a, dense::ConstMatrixView b,
                               dense::MatrixView c, float alpha,
                               float beta) const {
  MGGCN_CHECK_MSG(b.rows == ghost_count(),
                  "compact spmm needs one B row per ghost row");
  MGGCN_CHECK_MSG(a.rows() == c.rows && b.cols == c.cols,
                  "spmm output shape mismatch");
  MGGCN_CHECK_MSG(matches(a), "execution plan does not match this matrix");
  run_panels(*this, a, compact_col_idx_.data(), b, c, alpha, beta);
}

}  // namespace mggcn::sparse
