#include "sparse/io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace mggcn::sparse {

namespace {

constexpr char kMagic[8] = {'M', 'G', 'C', 'S', 'R', '1', '\0', '\0'};

template <typename T>
void write_pod(std::ofstream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_vec(std::ofstream& os, std::span<const T> values) {
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  MGGCN_CHECK_MSG(static_cast<bool>(is), "truncated csr file");
  return value;
}

template <typename T>
std::vector<T> read_vec(std::ifstream& is, std::size_t count) {
  std::vector<T> values(count);
  is.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  MGGCN_CHECK_MSG(static_cast<bool>(is), "truncated csr file");
  return values;
}

}  // namespace

void write_csr(const Csr& matrix, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MGGCN_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, matrix.rows());
  write_pod(os, matrix.cols());
  write_pod(os, matrix.nnz());
  write_vec(os, matrix.row_ptr());
  write_vec(os, matrix.col_idx());
  write_vec(os, matrix.values());
  MGGCN_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

Csr read_csr(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MGGCN_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  MGGCN_CHECK_MSG(is && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  "bad csr magic in " + path);
  const auto rows = read_pod<std::int64_t>(is);
  const auto cols = read_pod<std::int64_t>(is);
  const auto nnz = read_pod<std::int64_t>(is);
  auto row_ptr =
      read_vec<std::int64_t>(is, static_cast<std::size_t>(rows) + 1);
  auto col_idx = read_vec<std::uint32_t>(is, static_cast<std::size_t>(nnz));
  auto values = read_vec<float>(is, static_cast<std::size_t>(nnz));
  return Csr(rows, cols, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Coo read_edge_list(const std::string& path, std::int64_t num_vertices) {
  std::ifstream is(path);
  MGGCN_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  Coo coo(num_vertices, num_vertices);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) continue;
    MGGCN_CHECK_MSG(static_cast<std::int64_t>(u) < num_vertices &&
                        static_cast<std::int64_t>(v) < num_vertices,
                    "edge endpoint out of range in " + path);
    coo.add(static_cast<std::uint32_t>(u), static_cast<std::uint32_t>(v));
  }
  return coo;
}

Coo read_matrix_market(const std::string& path) {
  std::ifstream is(path);
  MGGCN_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);

  std::string header;
  MGGCN_CHECK_MSG(static_cast<bool>(std::getline(is, header)),
                  "empty MatrixMarket file: " + path);
  MGGCN_CHECK_MSG(header.rfind("%%MatrixMarket", 0) == 0,
                  "missing MatrixMarket banner in " + path);
  const bool pattern = header.find("pattern") != std::string::npos;
  const bool symmetric = header.find("symmetric") != std::string::npos;
  MGGCN_CHECK_MSG(header.find("coordinate") != std::string::npos,
                  "only coordinate MatrixMarket files are supported");

  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  std::int64_t rows = 0, cols = 0, nnz = 0;
  MGGCN_CHECK_MSG(static_cast<bool>(sizes >> rows >> cols >> nnz),
                  "bad MatrixMarket size line in " + path);

  Coo coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (std::int64_t e = 0; e < nnz; ++e) {
    MGGCN_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                    "truncated MatrixMarket file: " + path);
    std::istringstream entry(line);
    std::int64_t r = 0, c2 = 0;
    double value = 1.0;
    MGGCN_CHECK_MSG(static_cast<bool>(entry >> r >> c2),
                    "bad MatrixMarket entry in " + path);
    if (!pattern) entry >> value;
    MGGCN_CHECK_MSG(r >= 1 && r <= rows && c2 >= 1 && c2 <= cols,
                    "MatrixMarket index out of range in " + path);
    coo.add(static_cast<std::uint32_t>(r - 1),
            static_cast<std::uint32_t>(c2 - 1), static_cast<float>(value));
    if (symmetric && r != c2) {
      coo.add(static_cast<std::uint32_t>(c2 - 1),
              static_cast<std::uint32_t>(r - 1), static_cast<float>(value));
    }
  }
  return coo;
}

void write_matrix_market(const Csr& matrix, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  MGGCN_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  os << "%%MatrixMarket matrix coordinate real general\n"
     << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz()
     << '\n';
  const auto row_ptr = matrix.row_ptr();
  const auto col_idx = matrix.col_idx();
  const auto values = matrix.values();
  for (std::int64_t r = 0; r < matrix.rows(); ++r) {
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      os << r + 1 << ' ' << col_idx[static_cast<std::size_t>(e)] + 1 << ' '
         << values[static_cast<std::size_t>(e)] << '\n';
    }
  }
}

void write_edge_list(const Csr& matrix, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  MGGCN_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  const auto row_ptr = matrix.row_ptr();
  const auto col_idx = matrix.col_idx();
  for (std::int64_t r = 0; r < matrix.rows(); ++r) {
    for (std::int64_t e = row_ptr[static_cast<std::size_t>(r)];
         e < row_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
      os << r << ' ' << col_idx[static_cast<std::size_t>(e)] << '\n';
    }
  }
}

}  // namespace mggcn::sparse
