// Sampled Dense-Dense Matrix Multiplication and edge softmax — the kernels
// the paper names as future work for supporting Graph Attention Networks
// ("accelerate the SDDMM kernel to enable parallel training of several
// other models such as Graph Attention Networks", §7).
//
// SDDMM computes, for every nonzero (r, c) of a sparsity pattern A,
//     out(r, c) = A(r, c) * <U_r, V_c>
// i.e. a dense product sampled at the graph's edges — the score
// computation of dot-product attention. edge_softmax then normalizes the
// scores per row, producing the attention operator that an SpMM applies.
#pragma once

#include "dense/matrix.hpp"
#include "sim/cost_model.hpp"
#include "sparse/csr.hpp"

namespace mggcn::sparse {

/// Returns a matrix with `pattern`'s sparsity whose value at (r, c) is
/// pattern(r, c) * dot(U row r, V row c). U is (rows x d), V is (cols x d).
[[nodiscard]] Csr sddmm(const Csr& pattern, dense::ConstMatrixView u,
                        dense::ConstMatrixView v);

/// In-place row-wise softmax over the values (attention normalization).
/// Rows without nonzeros are left untouched.
void edge_softmax(Csr& matrix);

/// In-place LeakyReLU over the values (GAT's score nonlinearity).
void leaky_relu_values(Csr& matrix, float negative_slope = 0.2f);

/// Cost of one SDDMM launch: two dense rows gathered per nonzero plus the
/// value write.
[[nodiscard]] sim::KernelCost sddmm_cost(std::int64_t nnz, std::int64_t rows,
                                         std::int64_t cols, std::int64_t d);

}  // namespace mggcn::sparse
